// Fault-injection and failure-pipeline tests: classified fetch
// failures, deterministic backoff/quarantine/retirement in the
// incremental crawler, bounded requeues in the periodic crawler, and
// the headline invariants — N = 1 == N = 8 byte-identical under any
// fault scenario, and a mid-backoff checkpoint resume that rejoins the
// uninterrupted trajectory exactly.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "crawler/coll_urls.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"

namespace webevo::crawler {
namespace {

simweb::WebConfig SmallWeb() {
  simweb::WebConfig config = simweb::WebConfig().Scaled(0.03);
  config.seed = 20260808;
  config.min_site_size = 10;
  config.max_site_size = 40;
  return config;
}

simweb::WebConfig FaultyWeb(const std::string& scenario) {
  simweb::WebConfig config = SmallWeb();
  Status st = simweb::ApplyFaultScenario(scenario, &config);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return config;
}

IncrementalCrawlerConfig IncConfig(int parallelism) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = 200;
  config.crawl_rate_pages_per_day = 120.0;
  config.crawl_parallelism = parallelism;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  return config;
}

PeriodicCrawlerConfig PerConfig(int parallelism) {
  PeriodicCrawlerConfig config;
  config.collection_capacity = 150;
  config.cycle_days = 4.0;
  config.crawl_window_days = 2.0;
  config.crawl_parallelism = parallelism;
  return config;
}

template <typename Crawler>
std::string CheckpointBytes(const Crawler& crawler) {
  CrawlerCheckpointOptions options;
  options.include_web = true;
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

// --------------------------------------------------- scenario plumbing

TEST(FaultScenarioTest, NamedScenariosApplyAndValidate) {
  for (const char* name : {"none", "baseline", "transient10",
                           "outage-storm", "site-death", "flash-crowd"}) {
    simweb::WebConfig config = SmallWeb();
    Status st = simweb::ApplyFaultScenario(name, &config);
    ASSERT_TRUE(st.ok()) << name << ": " << st.ToString();
    EXPECT_TRUE(config.Validate().ok()) << name;
    const bool expect_faults =
        std::string(name) != "none" && std::string(name) != "baseline";
    EXPECT_EQ(config.HasFaults(), expect_faults) << name;
  }
  simweb::WebConfig config = SmallWeb();
  EXPECT_FALSE(simweb::ApplyFaultScenario("no-such", &config).ok());
}

// ------------------------------------------------ fetch classification

TEST(FaultInjectionTest, TransientFailuresAreUnavailable) {
  simweb::WebConfig config = SmallWeb();
  config.fault_transient_prob = 1.0;
  simweb::SimulatedWeb web(config);
  auto result = web.Fetch(web.RootUrl(0), 1.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(FaultInjectionTest, TimeoutsAreDeadlineExceededAndChargeLatency) {
  simweb::WebConfig config = SmallWeb();
  config.fault_timeout_prob = 1.0;
  config.fault_timeout_latency_days = 0.03;
  simweb::SimulatedWeb web(config);
  double latency = 0.0;
  auto result = web.Fetch(web.RootUrl(0), 1.0, &latency);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(latency, 0.03);
}

TEST(FaultInjectionTest, SlowResponsesSucceedWithLatency) {
  simweb::WebConfig config = SmallWeb();
  config.fault_slow_prob = 1.0;
  config.fault_slow_latency_days = 0.02;
  simweb::SimulatedWeb web(config);
  double latency = 0.0;
  auto result = web.Fetch(web.RootUrl(0), 1.0, &latency);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(latency, 0.02);
}

TEST(FaultInjectionTest, DeadSitesStayDeadForever) {
  simweb::WebConfig config = SmallWeb();
  config.fault_site_death_prob = 1.0;
  config.fault_site_death_mean_day = 1.0;  // death in [0, 2]
  simweb::SimulatedWeb web(config);
  // Fetch times must be globally non-decreasing: sweep all sites at
  // the death horizon first, then all sites much later.
  for (uint32_t site = 0; site < web.num_sites(); ++site) {
    auto at_death = web.Fetch(web.RootUrl(site), 2.0);
    ASSERT_FALSE(at_death.ok()) << "site " << site;
    EXPECT_EQ(at_death.status().code(), StatusCode::kUnavailable);
  }
  for (uint32_t site = 0; site < web.num_sites(); ++site) {
    auto much_later = web.Fetch(web.RootUrl(site), 500.0);
    ASSERT_FALSE(much_later.ok()) << "site " << site;
    EXPECT_EQ(much_later.status().code(), StatusCode::kUnavailable);
  }
}

TEST(FaultInjectionTest, FaultOutcomesAreDeterministic) {
  simweb::WebConfig config = FaultyWeb("transient10");
  simweb::SimulatedWeb a(config);
  simweb::SimulatedWeb b(config);
  for (int i = 0; i < 40; ++i) {
    const double t = 0.1 * i;
    double la = 0.0, lb = 0.0;
    auto ra = a.Fetch(a.RootUrl(i % a.num_sites()), t, &la);
    auto rb = b.Fetch(b.RootUrl(i % b.num_sites()), t, &lb);
    EXPECT_EQ(ra.ok(), rb.ok()) << i;
    if (!ra.ok() && !rb.ok()) {
      EXPECT_EQ(ra.status().code(), rb.status().code()) << i;
    }
    EXPECT_DOUBLE_EQ(la, lb) << i;
  }
}

// A mid-stream web snapshot must carry the fault lanes: the restored
// web replays the same fault outcomes as the original.
TEST(FaultInjectionTest, WebSnapshotRoundTripsFaultState) {
  simweb::WebConfig config = FaultyWeb("outage-storm");
  simweb::SimulatedWeb web(config);
  for (int i = 0; i < 25; ++i) {
    (void)web.Fetch(web.RootUrl(i % web.num_sites()), 0.2 * i);
  }
  std::ostringstream out;
  ASSERT_TRUE(simweb::SaveWeb(web, out).ok());
  simweb::SimulatedWeb restored(config);
  std::istringstream in(out.str());
  Status st = simweb::RestoreWeb(in, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (int i = 0; i < 25; ++i) {
    const double t = 5.0 + 0.2 * i;
    auto ra = web.Fetch(web.RootUrl(i % web.num_sites()), t);
    auto rb = restored.Fetch(restored.RootUrl(i % web.num_sites()), t);
    EXPECT_EQ(ra.ok(), rb.ok()) << i;
    if (!ra.ok() && !rb.ok()) {
      EXPECT_EQ(ra.status().code(), rb.status().code()) << i;
    }
  }
}

// ------------------------------------------------ frontier quarantine

TEST(CollUrlsFaultTest, RescheduleSiteNotBeforeKeepsOrderAndTokens) {
  CollUrls queue;
  const simweb::Url a{1, 0, 0}, b{1, 1, 0}, c{2, 0, 0}, d{1, 2, 0};
  queue.Schedule(a, 1.0);
  queue.Schedule(b, 2.0);
  queue.Schedule(c, 1.5);  // other site: untouched
  queue.Schedule(d, 9.0);  // already past the floor: untouched
  EXPECT_EQ(queue.RescheduleSiteNotBefore(1, 5.0), 2u);
  EXPECT_EQ(queue.size(), 4u);
  // c keeps its original time; a and b land on the floor in their
  // original FIFO order (seq survives the move); d stays behind them.
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->url, c);
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->url, a);
  EXPECT_DOUBLE_EQ(second->when, 5.0);
  auto third = queue.Pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->url, b);
  EXPECT_DOUBLE_EQ(third->when, 5.0);
  auto fourth = queue.Pop();
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(fourth->url, d);
  EXPECT_FALSE(queue.Pop().has_value());  // no stale ghosts
}

// ------------------------------------- incremental failure pipeline

TEST(FaultPipelineTest, ClassifiesRetriesQuarantinesAndRetires) {
  simweb::WebConfig wc = SmallWeb();
  wc.fault_transient_prob = 0.9;
  wc.fault_timeout_prob = 0.1;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config = IncConfig(2);
  config.fault_quarantine_threshold = 3;
  config.fault_quarantine_days = 0.5;
  // High enough that each site's breaker (3 consecutive) trips before
  // its root URL retires; low enough that roots do retire in 8 days.
  config.fault_url_retire_failures = 10;
  config.fault_backoff_base_days = 0.05;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(8.0).ok());
  const auto& s = crawler.stats();
  EXPECT_GT(s.fetch_failures, 0u);
  EXPECT_GT(s.transient_errors, 0u);
  EXPECT_GT(s.timeout_errors, 0u);
  EXPECT_EQ(s.fetch_failures, s.transient_errors + s.timeout_errors);
  EXPECT_GT(s.failure_retries, 0u);
  EXPECT_GT(s.sites_quarantined, 0u);
  EXPECT_GT(s.urls_retired, 0u);
  EXPECT_GT(s.backoff_days.count(), 0);
  EXPECT_GT(s.backoff_days.sum(), 0.0);
  // The engine ledger mirrors the crawler's classified count.
  EXPECT_EQ(crawler.engine().stats().fetch_failures, s.fetch_failures);
}

// The estimator guard: failed observations land in the failure ledger,
// never in the visit evidence the change estimators consume.
TEST(FaultPipelineTest, FailuresNeverFeedEstimators) {
  simweb::SimulatedWeb web(FaultyWeb("transient10"));
  IncrementalCrawler crawler(&web, IncConfig(2));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(10.0).ok());
  const auto& update = crawler.update_module();
  const auto& s = crawler.stats();
  EXPECT_GT(s.fetch_failures, 0u);
  EXPECT_EQ(update.failures_recorded(), s.fetch_failures);
  // Every planned slot is either a politeness rejection (never reaches
  // the web), a classified failure, a 404, or a successful visit; only
  // the last may feed the estimators.
  EXPECT_EQ(update.visits_recorded(),
            s.crawls - s.politeness_retries - s.fetch_failures -
                web.not_found_count());
}

// The headline invariant survives every fault scenario: N = 1 and
// N = 8 runs checkpoint to byte-identical files.
TEST(FaultPipelineTest, ShardCountInvariantUnderEveryScenario) {
  for (const char* scenario : {"transient10", "outage-storm",
                               "site-death", "flash-crowd"}) {
    simweb::WebConfig wc = FaultyWeb(scenario);
    simweb::SimulatedWeb web_1(wc);
    IncrementalCrawler serial(&web_1, IncConfig(1));
    ASSERT_TRUE(serial.Bootstrap(0.0).ok());
    ASSERT_TRUE(serial.RunUntil(8.0).ok());

    simweb::SimulatedWeb web_8(wc);
    IncrementalCrawler sharded(&web_8, IncConfig(8));
    ASSERT_TRUE(sharded.Bootstrap(0.0).ok());
    ASSERT_TRUE(sharded.RunUntil(8.0).ok());

    EXPECT_EQ(CheckpointBytes(serial), CheckpointBytes(sharded))
        << scenario;
    EXPECT_EQ(serial.stats().fetch_failures,
              sharded.stats().fetch_failures)
        << scenario;
  }
}

// Save mid-backoff / mid-quarantine at one shard count, resume at
// another, and rejoin the uninterrupted trajectory byte-for-byte: the
// failure section carries the breakers and their RNG lane positions.
TEST(FaultPipelineTest, MidBackoffResumeAcrossShardCounts) {
  simweb::WebConfig wc = FaultyWeb("transient10");
  IncrementalCrawlerConfig config = IncConfig(1);
  config.fault_quarantine_threshold = 3;
  config.fault_quarantine_days = 1.0;
  config.fault_backoff_base_days = 0.5;  // backoffs straddle the save

  simweb::SimulatedWeb web_a(wc);
  IncrementalCrawler straight(&web_a, config);
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(10.0).ok());
  const std::string want = CheckpointBytes(straight);
  ASSERT_GT(straight.stats().fetch_failures, 0u);

  for (int save_shards : {1, 8}) {
    const int load_shards = save_shards == 8 ? 1 : 8;
    IncrementalCrawlerConfig save_config = config;
    save_config.crawl_parallelism = save_shards;
    simweb::SimulatedWeb web_b(wc);
    IncrementalCrawler saver(&web_b, save_config);
    ASSERT_TRUE(saver.Bootstrap(0.0).ok());
    ASSERT_TRUE(saver.RunUntil(5.0).ok());
    std::string mid = CheckpointBytes(saver);

    IncrementalCrawlerConfig load_config = config;
    load_config.crawl_parallelism = load_shards;
    simweb::SimulatedWeb web_c(wc);
    IncrementalCrawler resumed(&web_c, load_config);
    std::istringstream mid_in(mid);
    Status loaded = LoadCrawler(mid_in, &resumed);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    ASSERT_TRUE(resumed.RunUntil(10.0).ok());
    EXPECT_EQ(CheckpointBytes(resumed), want)
        << "save at N=" << save_shards << ", load at N=" << load_shards;
  }
}

// --------------------------------------- periodic failure handling

TEST(FaultPipelineTest, PeriodicBoundsRequeuesAndStaysDeterministic) {
  simweb::WebConfig wc = SmallWeb();
  wc.fault_transient_prob = 0.25;
  wc.fault_timeout_prob = 0.05;

  simweb::SimulatedWeb web_1(wc);
  PeriodicCrawler serial(&web_1, PerConfig(1));
  ASSERT_TRUE(serial.Bootstrap(0.0).ok());
  ASSERT_TRUE(serial.RunUntil(9.0).ok());
  const auto& s = serial.stats();
  EXPECT_GT(s.fetch_failures, 0u);
  EXPECT_EQ(s.fetch_failures, s.transient_errors + s.timeout_errors);
  EXPECT_GT(s.failure_retries, 0u);

  simweb::SimulatedWeb web_4(wc);
  PeriodicCrawler sharded(&web_4, PerConfig(4));
  ASSERT_TRUE(sharded.Bootstrap(0.0).ok());
  ASSERT_TRUE(sharded.RunUntil(9.0).ok());
  EXPECT_EQ(CheckpointBytes(serial), CheckpointBytes(sharded));
}

TEST(FaultPipelineTest, PeriodicMidCycleResumeReplaysRequeues) {
  simweb::WebConfig wc = SmallWeb();
  wc.fault_transient_prob = 0.3;
  PeriodicCrawlerConfig config = PerConfig(2);

  simweb::SimulatedWeb web_a(wc);
  PeriodicCrawler straight(&web_a, config);
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(9.0).ok());
  const std::string want = CheckpointBytes(straight);

  simweb::SimulatedWeb web_b(wc);
  PeriodicCrawler first_half(&web_b, config);
  ASSERT_TRUE(first_half.Bootstrap(0.0).ok());
  ASSERT_TRUE(first_half.RunUntil(5.0).ok());
  std::string mid = CheckpointBytes(first_half);

  simweb::SimulatedWeb web_c(wc);
  PeriodicCrawler resumed(&web_c, config);
  std::istringstream mid_in(mid);
  Status loaded = LoadCrawler(mid_in, &resumed);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  ASSERT_TRUE(resumed.RunUntil(9.0).ok());
  EXPECT_EQ(CheckpointBytes(resumed), want);
}

// The failure ledger reaches the query surface: a published view's
// summary relation carries the failure counters.
TEST(FaultPipelineTest, ViewSummaryCarriesFailureLedger) {
  simweb::SimulatedWeb web(FaultyWeb("transient10"));
  IncrementalCrawlerConfig config = IncConfig(2);
  config.publish_view_every_batches = 1;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(6.0).ok());
  serving::ViewRef view = crawler.views().AcquireRef();
  ASSERT_TRUE(view.get() != nullptr);
  bool found = false;
  for (const auto& [key, value] : view.get()->summary) {
    if (key == "fetch_failures") {
      found = true;
      EXPECT_EQ(value, std::to_string(crawler.stats().fetch_failures));
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace webevo::crawler
