#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace webevo {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "page gone");
  EXPECT_EQ(s.ToString(), "NotFound: page gone");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  StatusOr<NoDefault> v = NoDefault(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value, 7);
  StatusOr<NoDefault> e = Status::NotFound("none");
  EXPECT_FALSE(e.ok());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng r(0);
  uint64_t x = r.Next();
  uint64_t y = r.Next();
  EXPECT_NE(x, y);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng r(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng r(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[r.NextBounded(5)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng r(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMean) {
  Rng r(12);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng r(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(r.Exponential(0.5));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
}

TEST(RngTest, ExponentialIsMemorylessShape) {
  // P(X > 2 mean) should be about e^-2.
  Rng r(14);
  int over = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) over += r.Exponential(1.0) > 2.0;
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-2.0), 0.01);
}

TEST(RngTest, PoissonSmallMean) {
  Rng r(15);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(static_cast<double>(r.Poisson(3.0)));
  }
  EXPECT_NEAR(stat.mean(), 3.0, 0.1);
  EXPECT_NEAR(stat.variance(), 3.0, 0.2);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng r(16);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(static_cast<double>(r.Poisson(200.0)));
  }
  EXPECT_NEAR(stat.mean(), 200.0, 2.0);
  EXPECT_NEAR(stat.stddev(), std::sqrt(200.0), 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.Poisson(0.0), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng r(18);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(r.Normal(5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng r(19);
  const uint64_t n = 1000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = r.Zipf(n, 1.0);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    ++counts[k];
  }
  // Rank 1 must dominate rank 10 by roughly 10x under s = 1.
  EXPECT_GT(counts[1], counts[10] * 5);
  EXPECT_GT(counts[1], 0);
}

TEST(RngTest, ZipfSingleElement) {
  Rng r(20);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.Zipf(1, 1.2), 1u);
}

TEST(RngTest, ParetoAboveScale) {
  Rng r(21);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng r(22);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[r.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(42);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

// ------------------------------------------------------------------ Hash

TEST(HashTest, Fnv1a64KnownValues) {
  // FNV-1a reference: empty string hashes to the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, DifferentInputsDiffer) {
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashTest, SeededVariantsIndependent) {
  EXPECT_NE(Fnv1a64Seeded("data", 1), Fnv1a64Seeded("data", 2));
}

TEST(HashTest, ChecksumEqualityAndInequality) {
  Checksum128 a = ChecksumOf("page content v1");
  Checksum128 b = ChecksumOf("page content v1");
  Checksum128 c = ChecksumOf("page content v2");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, RejectsEmptyEdges) {
  auto h = Histogram::Make({});
  EXPECT_FALSE(h.ok());
}

TEST(HistogramTest, RejectsNonIncreasingEdges) {
  EXPECT_FALSE(Histogram::Make({1.0, 1.0}).ok());
  EXPECT_FALSE(Histogram::Make({2.0, 1.0}).ok());
}

TEST(HistogramTest, RejectsWrongLabelCount) {
  EXPECT_FALSE(Histogram::Make({1.0, 2.0}, {"a", "b"}).ok());
}

TEST(HistogramTest, BucketingMatchesPaperSemantics) {
  // A sample equal to an edge belongs to that bucket (x <= edge).
  Histogram h = Histogram::ChangeIntervalBuckets();
  h.Add(1.0);    // <= 1 day
  h.Add(1.5);    // <= 1 week
  h.Add(7.0);    // <= 1 week
  h.Add(30.0);   // <= 1 month
  h.Add(120.0);  // <= 4 months
  h.Add(121.0);  // > 4 months
  EXPECT_DOUBLE_EQ(h.bucket_count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h = Histogram::LifespanBuckets();
  for (double v : {0.5, 3.0, 10.0, 50.0, 200.0, 1000.0}) h.Add(v);
  double sum = 0.0;
  for (double f : h.fractions()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h = *Histogram::Make({10.0});
  h.Add(5.0, 3.0);
  h.Add(20.0, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(HistogramTest, MergeRequiresSameEdges) {
  Histogram a = *Histogram::Make({1.0, 2.0});
  Histogram b = *Histogram::Make({1.0, 3.0});
  EXPECT_FALSE(a.Merge(b).ok());
  Histogram c = *Histogram::Make({1.0, 2.0});
  c.Add(0.5);
  a.Add(1.5);
  ASSERT_TRUE(a.Merge(c).ok());
  EXPECT_DOUBLE_EQ(a.total(), 2.0);
  EXPECT_DOUBLE_EQ(a.bucket_count(0), 1.0);
  EXPECT_DOUBLE_EQ(a.bucket_count(1), 1.0);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h = *Histogram::Make({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Add(5.0);
  for (int i = 0; i < 10; ++i) h.Add(15.0);
  // Median sits at the boundary between the two buckets.
  EXPECT_NEAR(h.Quantile(0.5), 10.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.25), 5.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.75), 15.0, 1e-9);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram h = *Histogram::Make({1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ToStringShowsAllBuckets) {
  Histogram h = Histogram::ChangeIntervalBuckets();
  h.Add(0.5);
  std::string s = h.ToString();
  EXPECT_NE(s.find("<=1day"), std::string::npos);
  EXPECT_NE(s.find(">4months"), std::string::npos);
}

TEST(HistogramTest, OverflowBucketEdgeIsInfinite) {
  Histogram h = Histogram::LifespanBuckets();
  EXPECT_TRUE(std::isinf(h.bucket_upper_edge(h.num_buckets() - 1)));
}

// ----------------------------------------------------------------- Stats

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleSampleVarianceZero) {
  RunningStat s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.8413447), 1.0, 1e-4);
}

TEST(IntervalTest, MeanConfidenceIntervalShrinksWithN) {
  Interval wide = MeanConfidenceInterval(10.0, 2.0, 10, 0.95);
  Interval narrow = MeanConfidenceInterval(10.0, 2.0, 1000, 0.95);
  EXPECT_TRUE(wide.Contains(10.0));
  EXPECT_LT(narrow.width(), wide.width());
}

TEST(IntervalTest, WilsonBoundsStayInUnit) {
  Interval i = WilsonInterval(0, 10, 0.95);
  EXPECT_GE(i.lo, 0.0);
  Interval j = WilsonInterval(10, 10, 0.95);
  EXPECT_LE(j.hi, 1.0);
  EXPECT_GT(j.lo, 0.5);
}

TEST(IntervalTest, PoissonRateIntervalCoversTruth) {
  // 100 events over 50 days at true rate 2/day.
  Interval i = PoissonRateInterval(100, 50.0, 0.95);
  EXPECT_TRUE(i.Contains(2.0));
  EXPECT_LT(i.lo, 2.0);
  EXPECT_GT(i.hi, 2.0);
}

TEST(IntervalTest, PoissonRateIntervalZeroEvents) {
  Interval i = PoissonRateInterval(0, 30.0, 0.95);
  EXPECT_DOUBLE_EQ(i.lo, 0.0);
  EXPECT_GT(i.hi, 0.0);
}

TEST(FitTest, LineRecoversSlope) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 2.0);
  }
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 1e-9);
  EXPECT_NEAR(fit->intercept, -2.0, 1e-9);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(FitTest, LineRejectsDegenerateInput) {
  EXPECT_FALSE(FitLine({1.0}, {2.0}).ok());
  EXPECT_FALSE(FitLine({1.0, 1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(FitLine({1.0, 2.0}, {2.0}).ok());
}

TEST(FitTest, ExponentialRecoversRate) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(0.8 * std::exp(-0.25 * i));
  }
  auto fit = FitExponential(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rate, 0.25, 1e-9);
  EXPECT_NEAR(fit->amplitude, 0.8, 1e-9);
  EXPECT_NEAR(fit->r2, 1.0, 1e-9);
}

TEST(FitTest, ExponentialIgnoresZeroY) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {std::exp(-1.0), 0.0, std::exp(-3.0),
                           std::exp(-4.0)};
  auto fit = FitExponential(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rate, 1.0, 1e-9);
}

TEST(KsTest, ExponentialSampleHasSmallStatistic) {
  Rng r(99);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(r.Exponential(0.2));
  auto d = KsStatisticExponential(samples, 0.2);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(*d, 0.03);  // well within KS 1% threshold ~1.63/sqrt(n)
}

TEST(KsTest, WrongRateHasLargeStatistic) {
  Rng r(100);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(r.Exponential(0.2));
  auto d = KsStatisticExponential(samples, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, 0.3);
}

TEST(KsTest, RejectsBadInput) {
  EXPECT_FALSE(KsStatisticExponential({}, 1.0).ok());
  EXPECT_FALSE(KsStatisticExponential({1.0}, 0.0).ok());
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> up = {2, 4, 6, 8};
  std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, down), -1.0, 1e-12);
}

// ----------------------------------------------------------------- Table

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"freshness", "0.88"});
  table.AddRow({"x", "1"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("freshness"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(0.876543, 2), "0.88");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Percent(0.505, 1), "50.5%");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  std::string out = table.ToString();
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(AsciiChartTest, RendersGrid) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 + 0.4 * std::sin(i / 5.0));
  }
  std::string chart = AsciiChart(xs, ys, 0.0, 1.0, 10, 60);
  EXPECT_NE(chart.find('*'), std::string::npos);
  // 10 rows + axis line.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 11);
}

TEST(AsciiChartTest, EmptyInputsYieldEmptyString) {
  EXPECT_TRUE(AsciiChart({}, {}, 0, 1).empty());
}

TEST(AsciiChart2Test, OverlaysTwoSeries) {
  std::vector<double> xs = {0, 1, 2, 3};
  std::vector<double> a = {0.1, 0.1, 0.1, 0.1};
  std::vector<double> b = {0.9, 0.9, 0.9, 0.9};
  std::string chart = AsciiChart2(xs, a, b, 0.0, 1.0, 8, 40);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

}  // namespace
}  // namespace webevo
