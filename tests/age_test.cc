// Tests for the age metric (Section 4's second metric, [CGM99b]).
//
// Derivation behind BatchShadowingAge: a page crawled at offset u
// (uniform in [0, w)) serves from the swap at w until the next swap at
// T + w; its expected age t' days after its snapshot is
// g(t') = t' - (1 - e^{-lambda t'})/lambda. Integrating g over the
// service window and the crawl offset and simplifying telescoping
// exponentials yields
//   A = (T + w)/2 - 1/lambda
//       + (1 - e^{-lambda T})(1 - e^{-lambda w}) / (lambda^3 T w),
// which the Monte-Carlo test below validates independently.

#include <cmath>

#include <gtest/gtest.h>

#include "freshness/age.h"
#include "freshness/analytic.h"
#include "util/random.h"

namespace webevo::freshness {
namespace {

TEST(AgeTest, ZeroForStaticPages) {
  EXPECT_DOUBLE_EQ(InPlaceAgeOf(0.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(SteadyShadowingAge(0.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(BatchShadowingAge(0.0, 30.0, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedAgeAtCopyAge(0.0, 100.0), 0.0);
}

TEST(AgeTest, LimitsAtExtremeRates) {
  // lambda -> inf: the copy is stale from the instant it is taken.
  EXPECT_NEAR(InPlaceAgeOf(1e6, 30.0), 15.0, 1e-3);
  // Shadowed steady copy: mean time since snapshot is T/2 + T/2 = T.
  EXPECT_NEAR(SteadyShadowingAge(1e6, 30.0), 30.0, 1e-3);
  // Batch: T/2 + w/2.
  EXPECT_NEAR(BatchShadowingAge(1e6, 30.0, 7.0), 18.5, 1e-3);
}

TEST(AgeTest, SmallLambdaSeriesIsStable) {
  for (double lambda : {1e-12, 1e-9, 1e-6}) {
    double age = BatchShadowingAge(lambda, 30.0, 7.0);
    EXPECT_GT(age, 0.0);
    EXPECT_LT(age, 1.0);
    // Series: lambda ((T^2+w^2)/6 + Tw/4).
    EXPECT_NEAR(age,
                lambda * ((900.0 + 49.0) / 6.0 + 210.0 / 4.0),
                age * 1e-3);
  }
}

TEST(AgeTest, ShadowingAgesWorseThanInPlace) {
  for (double lambda : {0.01, 0.05, 0.2, 1.0}) {
    EXPECT_GT(SteadyShadowingAge(lambda, 30.0),
              InPlaceAgeOf(lambda, 30.0));
    EXPECT_GT(BatchShadowingAge(lambda, 30.0, 7.0),
              InPlaceAgeOf(lambda, 30.0));
    // Batch shadowing (short window) ages less than steady shadowing.
    EXPECT_LT(BatchShadowingAge(lambda, 30.0, 7.0),
              SteadyShadowingAge(lambda, 30.0));
  }
}

TEST(AgeTest, AgeIncreasesWithRateAndPeriod) {
  double prev = 0.0;
  for (double lambda : {0.01, 0.05, 0.2, 1.0}) {
    double a = InPlaceAgeOf(lambda, 30.0);
    EXPECT_GT(a, prev);
    prev = a;
  }
  EXPECT_GT(InPlaceAgeOf(0.1, 60.0), InPlaceAgeOf(0.1, 30.0));
}

TEST(AgeTest, ExpectedAgeAtCopyAgeMonotone) {
  double prev = -1.0;
  for (double a : {0.1, 1.0, 5.0, 20.0, 100.0}) {
    double age = ExpectedAgeAtCopyAge(0.1, a);
    EXPECT_GT(age, prev);
    EXPECT_LT(age, a);  // age cannot exceed time since sync
    prev = age;
  }
}

TEST(AgeTest, MonteCarloValidatesBatchShadowingClosedForm) {
  // Independent validation: simulate Poisson pages under the batch +
  // shadowing service pattern and average the realised age.
  Rng rng(77);
  const double lambda = 0.08, T = 30.0, w = 7.0;
  const int pages = 3000;
  double age_sum = 0.0, time_sum = 0.0;
  for (int p = 0; p < pages; ++p) {
    double u = rng.NextDouble() * w;  // crawl offset
    // First change after the snapshot:
    double first_change = u + rng.Exponential(lambda);
    // Serve from w to T + w; age(t) = max(0, t - first_change).
    const int samples = 200;
    for (int s = 0; s < samples; ++s) {
      double t = w + (T) * (s + 0.5) / samples;
      double age = t > first_change ? t - first_change : 0.0;
      age_sum += age;
      time_sum += 1.0;
    }
  }
  double simulated = age_sum / time_sum;
  EXPECT_NEAR(simulated, BatchShadowingAge(lambda, T, w),
              0.03 * BatchShadowingAge(lambda, T, w) + 0.02);
}

TEST(AgeTest, MonteCarloValidatesInPlaceAge) {
  Rng rng(78);
  const double lambda = 0.12, T = 30.0;
  const int pages = 3000;
  double age_sum = 0.0, time_sum = 0.0;
  for (int p = 0; p < pages; ++p) {
    double first_change = rng.Exponential(lambda);
    const int samples = 200;
    for (int s = 0; s < samples; ++s) {
      double t = T * (s + 0.5) / samples;  // within one sync period
      age_sum += t > first_change ? t - first_change : 0.0;
      time_sum += 1.0;
    }
  }
  EXPECT_NEAR(age_sum / time_sum, InPlaceAgeOf(lambda, T),
              0.03 * InPlaceAgeOf(lambda, T) + 0.01);
}

TEST(AgeTest, PeriodSensitivityPositiveAndBounded) {
  // dA/dT in (0, 1/2): age worsens with a longer sync period but never
  // faster than half a day per day.
  for (double lambda : {0.01, 0.1, 1.0, 10.0}) {
    double s = AgePeriodSensitivity(lambda, 30.0);
    EXPECT_GT(s, 0.0) << lambda;
    EXPECT_LE(s, 0.5) << lambda;
  }
  // Approaches 1/2 for fast pages, 0 for static ones.
  EXPECT_GT(AgePeriodSensitivity(10.0, 30.0), 0.49);
  EXPECT_LT(AgePeriodSensitivity(1e-6, 30.0), 1e-4);
}

TEST(AgeTest, SensitivityMatchesNumericalDerivative) {
  const double lambda = 0.2, T = 20.0, h = 1e-4;
  double numeric =
      (InPlaceAgeOf(lambda, T + h) - InPlaceAgeOf(lambda, T - h)) /
      (2.0 * h);
  EXPECT_NEAR(AgePeriodSensitivity(lambda, T), numeric, 1e-6);
}

}  // namespace
}  // namespace webevo::freshness
