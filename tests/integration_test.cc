// End-to-end integration tests: analytic theory vs. full simulation, and
// the paper's headline qualitative claims exercised through the whole
// stack (simweb -> crawlers -> oracle evaluation).

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "freshness/analytic.h"
#include "simweb/simulated_web.h"
#include "util/stats.h"

namespace webevo {
namespace {

using crawler::IncrementalCrawler;
using crawler::IncrementalCrawlerConfig;
using crawler::PeriodicCrawler;
using crawler::PeriodicCrawlerConfig;

// A uniform-rate web matching Table 2's model assumptions: every page
// changes with mean interval 120 days, no births/deaths.
simweb::WebConfig Table2Web(uint64_t seed) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {6, 4, 2, 2};
  c.min_site_size = 40;
  c.max_site_size = 90;
  c.uniform_change_interval_days = 120.0;
  c.uniform_lifespan_days = 1e7;
  return c;
}

double RunPeriodic(uint64_t seed, double cycle, double window,
                   bool shadowing, double horizon) {
  simweb::SimulatedWeb web(Table2Web(seed));
  PeriodicCrawlerConfig config;
  config.collection_capacity = 400;
  config.cycle_days = cycle;
  config.crawl_window_days = window;
  config.shadowing = shadowing;
  PeriodicCrawler crawler(&web, config);
  EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
  EXPECT_TRUE(crawler.RunUntil(horizon).ok());
  // Skip the first two cycles of warm-up.
  return crawler.tracker().TimeAverage(2.0 * cycle, horizon);
}

// ---------------- Table 2: simulation matches the closed forms ----------

TEST(Table2SimulationTest, SteadyInPlace) {
  double measured = RunPeriodic(201, 30.0, 30.0, false, 210.0);
  EXPECT_NEAR(measured, freshness::InPlaceFreshness(1.0 / 120.0, 30.0),
              0.03);
}

TEST(Table2SimulationTest, BatchInPlace) {
  double measured = RunPeriodic(202, 30.0, 7.0, false, 210.0);
  EXPECT_NEAR(measured, freshness::InPlaceFreshness(1.0 / 120.0, 30.0),
              0.03);
}

TEST(Table2SimulationTest, SteadyShadowing) {
  double measured = RunPeriodic(203, 30.0, 30.0, true, 210.0);
  EXPECT_NEAR(measured,
              freshness::SteadyShadowingFreshness(1.0 / 120.0, 30.0),
              0.03);
}

TEST(Table2SimulationTest, BatchShadowing) {
  double measured = RunPeriodic(204, 30.0, 7.0, true, 210.0);
  EXPECT_NEAR(measured,
              freshness::BatchShadowingFreshness(1.0 / 120.0, 30.0, 7.0),
              0.03);
}

TEST(Table2SimulationTest, OrderingMatchesPaper) {
  // in-place (0.88) > batch+shadow (0.86) > steady+shadow (0.77).
  double in_place = RunPeriodic(205, 30.0, 30.0, false, 210.0);
  double batch_shadow = RunPeriodic(206, 30.0, 7.0, true, 210.0);
  double steady_shadow = RunPeriodic(207, 30.0, 30.0, true, 210.0);
  EXPECT_GT(in_place, batch_shadow);
  EXPECT_GT(batch_shadow, steady_shadow);
}

// ------------- The incremental crawler vs the periodic crawler ----------

struct HeadToHead {
  double incremental_freshness = 0.0;
  double periodic_freshness = 0.0;
  double incremental_peak = 0.0;
  double periodic_peak = 0.0;
};

HeadToHead RunHeadToHead(uint64_t seed) {
  // Heterogeneous, churning web — the regime the incremental design
  // targets (Figure 10).
  simweb::WebConfig wc;
  wc.seed = seed;
  wc.sites_per_domain = {6, 4, 2, 2};
  wc.min_site_size = 30;
  wc.max_site_size = 70;

  HeadToHead result;
  const std::size_t capacity = 350;
  const double horizon = 120.0;
  {
    simweb::SimulatedWeb web(wc);
    IncrementalCrawlerConfig config;
    config.collection_capacity = capacity;
    config.crawl_rate_pages_per_day = capacity / 30.0;
    config.update.policy = crawler::RevisitPolicy::kOptimal;
    config.update.min_revisit_interval_days = 0.5;
    config.update.max_revisit_interval_days = 90.0;
    IncrementalCrawler inc(&web, config);
    EXPECT_TRUE(inc.Bootstrap(0.0).ok());
    EXPECT_TRUE(inc.RunUntil(horizon).ok());
    result.incremental_freshness = inc.tracker().TimeAverage(60.0, horizon);
    result.incremental_peak = inc.crawl_module().PeakDailyRate();
  }
  {
    simweb::SimulatedWeb web(wc);
    PeriodicCrawlerConfig config;
    config.collection_capacity = capacity;
    config.cycle_days = 30.0;
    config.crawl_window_days = 7.0;
    config.shadowing = true;
    PeriodicCrawler per(&web, config);
    EXPECT_TRUE(per.Bootstrap(0.0).ok());
    EXPECT_TRUE(per.RunUntil(horizon).ok());
    result.periodic_freshness = per.tracker().TimeAverage(60.0, horizon);
    result.periodic_peak = per.crawl_module().PeakDailyRate();
  }
  return result;
}

TEST(HeadToHeadTest, IncrementalIsFresherAtSameAverageSpeed) {
  HeadToHead r = RunHeadToHead(301);
  EXPECT_GT(r.incremental_freshness, r.periodic_freshness);
}

TEST(HeadToHeadTest, IncrementalHasLowerPeakLoad) {
  HeadToHead r = RunHeadToHead(302);
  EXPECT_LT(r.incremental_peak, r.periodic_peak / 2.0);
}

// ----------------- Variable vs fixed revisit frequency ------------------

// Per-rate-group outcome of one incremental-crawler run.
struct PolicyOutcome {
  double overall_freshness = 0.0;
  double tractable_freshness = 0.0;   // pages changing every ~40 days
  double tractable_copy_age = 0.0;    // mean days since last crawl
  double hopeless_copy_age = 0.0;     // pages changing ~20x/day
};

PolicyOutcome RunPolicyOutcome(uint64_t seed,
                               crawler::RevisitPolicy policy) {
  simweb::WebConfig wc;
  wc.seed = seed;
  wc.sites_per_domain = {6, 4, 2, 2};
  wc.min_site_size = 30;
  wc.max_site_size = 70;
  wc.uniform_lifespan_days = 1e7;  // isolate the revisit policy effect
  // The regime where Section 4's choice 3 pays off is a *hopeless
  // tail*: pages changing far faster than any affordable revisit
  // frequency (the paper's p2 "changes every second"). A fixed-
  // frequency crawler burns half its budget re-fetching them for ~zero
  // freshness; the optimal policy abandons them and reinvests in the
  // tractable half. (On mixes without such a tail, uniform is already
  // near-optimal — F is concave in f — which the optimizer unit tests
  // cover analytically.)
  // The tractable half must be identifiable at the crawl cadence: pages
  // faster than the visit rate all look like "changed every visit"
  // (Figure 1(a)), so intervals ~2x the sweep period are the regime
  // where adaptive scheduling demonstrably works.
  wc.custom_change_interval_mix = {{0.04, 0.06, 0.5},   // hopeless
                                   {35.0, 45.0, 0.5}};  // tractable
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config;
  config.collection_capacity = 350;
  config.crawl_rate_pages_per_day = 350.0 / 20.0;
  config.update.policy = policy;
  config.update.min_revisit_interval_days = 0.5;
  config.update.max_revisit_interval_days = 120.0;
  IncrementalCrawler crawler(&web, config);
  EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
  // Warm-up, then sample per-group freshness every 5 days and average:
  // a single end-of-run snapshot would be dominated by phase noise.
  EXPECT_TRUE(crawler.RunUntil(75.0).ok());
  PolicyOutcome out;
  RunningStat tractable_fresh;
  std::vector<double> tractable_ages, hopeless_ages;
  for (double t = 80.0; t <= 150.0; t += 5.0) {
    EXPECT_TRUE(crawler.RunUntil(t).ok());
    double now = crawler.now();
    crawler.collection().ForEach([&](const crawler::CollectionEntry& e) {
      double rate = web.OracleChangeRate(e.page);
      if (rate > 1.0) {
        hopeless_ages.push_back(now - e.crawled_at);
      } else {
        tractable_fresh.Add(
            web.OracleIsFresh(e.url, e.version, now) ? 1.0 : 0.0);
        tractable_ages.push_back(now - e.crawled_at);
      }
    });
  }
  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  out.overall_freshness = crawler.tracker().TimeAverage(75.0, 150.0);
  out.tractable_freshness = tractable_fresh.mean();
  // Medians: the mean copy age is dominated by the few pages currently
  // in an exploration phase, not by the typical scheduling behaviour.
  out.tractable_copy_age = median(tractable_ages);
  out.hopeless_copy_age = median(hopeless_ages);
  return out;
}

TEST(RevisitPolicyTest, OptimalReallocatesFromHopelessToTractable) {
  PolicyOutcome optimal =
      RunPolicyOutcome(401, crawler::RevisitPolicy::kOptimal);
  PolicyOutcome uniform =
      RunPolicyOutcome(401, crawler::RevisitPolicy::kUniform);
  // The mechanism of Section 4's variable-frequency policy: abandon the
  // hopeless pages (their copies go stale for a long time)...
  EXPECT_GT(optimal.hopeless_copy_age, 3.0 * uniform.hopeless_copy_age);
  // ...and reinvest the budget into the tractable pages, whose copies
  // end up strictly younger (more frequently refreshed) than under the
  // fixed-frequency policy.
  EXPECT_LT(optimal.tractable_copy_age, uniform.tractable_copy_age);
  EXPECT_GE(optimal.tractable_freshness,
            uniform.tractable_freshness - 0.02);
  // End-to-end freshness must not fall below uniform's: the theoretical
  // gain (validated analytically in the optimizer tests as the paper's
  // 10-23% under *known* rates) is largely consumed by rate-estimation
  // noise and exploration overhead at this scale — a genuine finding
  // EXPERIMENTS.md discusses — but the policy must never be a clear
  // net loss.
  EXPECT_GE(optimal.overall_freshness, uniform.overall_freshness - 0.02);
}

TEST(RevisitPolicyTest, ProportionalDoesNotBeatOptimal) {
  PolicyOutcome optimal =
      RunPolicyOutcome(402, crawler::RevisitPolicy::kOptimal);
  PolicyOutcome proportional =
      RunPolicyOutcome(402, crawler::RevisitPolicy::kProportional);
  EXPECT_GE(optimal.overall_freshness,
            proportional.overall_freshness - 0.02);
}

// --------------------------- determinism --------------------------------

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  auto run = [] {
    simweb::SimulatedWeb web(Table2Web(999));
    PeriodicCrawlerConfig config;
    config.collection_capacity = 200;
    PeriodicCrawler crawler(&web, config);
    EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
    EXPECT_TRUE(crawler.RunUntil(45.0).ok());
    return crawler.tracker().TimeAverage();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace webevo
