// Property-based and model-based tests: invariants that must hold
// across randomly generated inputs, and reference-model comparisons.

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/coll_urls.h"
#include "crawler/collection.h"
#include "crawler/sharded_collection.h"
#include "crawler/sharded_frontier.h"
#include "freshness/analytic.h"
#include "freshness/revisit_optimizer.h"
#include "graph/link_graph.h"
#include "graph/pagerank.h"
#include "simweb/simulated_web.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/stats.h"

namespace webevo {
namespace {

// ------------------------ CollUrls vs a reference model ----------------

// Reference implementation: a sorted multimap plus a liveness map.
class ReferenceQueue {
 public:
  void Schedule(const simweb::Url& url, double when) {
    Remove(url);
    auto [it, inserted] =
        items_.emplace(std::make_pair(when, seq_++), url);
    live_[url] = it;
    (void)inserted;
  }
  bool Remove(const simweb::Url& url) {
    auto it = live_.find(url);
    if (it == live_.end()) return false;
    items_.erase(it->second);
    live_.erase(it);
    return true;
  }
  std::optional<crawler::ScheduledUrl> Pop() {
    if (items_.empty()) return std::nullopt;
    auto it = items_.begin();
    crawler::ScheduledUrl out{it->second, it->first.first};
    live_.erase(it->second);
    items_.erase(it);
    return out;
  }
  std::size_t size() const { return items_.size(); }

 private:
  using Key = std::pair<double, uint64_t>;  // (when, fifo tie-break)
  std::map<Key, simweb::Url> items_;
  std::map<simweb::Url, std::map<Key, simweb::Url>::iterator,
           decltype([](const simweb::Url& a, const simweb::Url& b) {
             return std::tuple(a.site, a.slot, a.incarnation) <
                    std::tuple(b.site, b.slot, b.incarnation);
           })>
      live_;
  uint64_t seq_ = 0;
};

TEST(CollUrlsModelTest, RandomOpsMatchReference) {
  Rng rng(1234);
  crawler::CollUrls queue;
  ReferenceQueue reference;
  for (int op = 0; op < 20000; ++op) {
    simweb::Url url{0, static_cast<uint32_t>(rng.NextBounded(40)), 0};
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // schedule / reschedule
        double when = std::floor(rng.NextDouble() * 50.0);
        queue.Schedule(url, when);
        reference.Schedule(url, when);
        break;
      }
      case 2: {  // remove
        Status st = queue.Remove(url);
        bool existed = reference.Remove(url);
        EXPECT_EQ(st.ok(), existed);
        break;
      }
      case 3: {  // pop
        auto got = queue.Pop();
        auto want = reference.Pop();
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got.has_value()) {
          // Times must agree; URLs may differ only on exact ties, and
          // both structures break ties FIFO, so they agree exactly.
          EXPECT_DOUBLE_EQ(got->when, want->when);
          EXPECT_EQ(got->url, want->url);
        }
        break;
      }
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
}

// ---------------- ShardedFrontier vs a single CollUrls -----------------

// The headline contract of the sharded frontier: at every shard count it
// is *bit-identical* to one global CollUrls — same pop order, same pop
// times (including the synthetic front-of-queue keys), same sizes —
// because sequence numbers and the front offset are global and the
// tournament-tree merge over shard heads uses the same (when, seq)
// order as the single heap. N = 64 exceeds the 13-site universe, so
// empty shards and a deep tree are exercised too.
TEST(ShardedFrontierModelTest, RandomOpsMatchPlainCollUrls) {
  for (int shards : {1, 3, 4, 8, 64}) {
    Rng rng(4242);  // same op stream for every shard count
    crawler::CollUrls plain;
    crawler::ShardedFrontier sharded(shards);
    for (int op = 0; op < 20000; ++op) {
      simweb::Url url{static_cast<uint32_t>(rng.NextBounded(13)),
                      static_cast<uint32_t>(rng.NextBounded(9)), 0};
      switch (rng.NextBounded(6)) {
        case 0:
        case 1: {  // schedule / reschedule
          double when = std::floor(rng.NextDouble() * 40.0);
          plain.Schedule(url, when);
          sharded.Schedule(url, when);
          break;
        }
        case 2: {  // front insert
          plain.ScheduleFront(url);
          sharded.ScheduleFront(url);
          break;
        }
        case 3: {  // remove
          Status a = plain.Remove(url);
          Status b = sharded.Remove(url);
          EXPECT_EQ(a.ok(), b.ok());
          break;
        }
        case 4: {  // pop
          auto a = plain.Pop();
          auto b = sharded.Pop();
          ASSERT_EQ(a.has_value(), b.has_value()) << "shards=" << shards;
          if (a.has_value()) {
            EXPECT_EQ(a->url, b->url) << "shards=" << shards;
            EXPECT_EQ(a->when, b->when);  // bit-identical, front keys too
          }
          break;
        }
        case 5: {  // peek
          auto a = plain.Peek();
          auto b = sharded.Peek();
          ASSERT_EQ(a.has_value(), b.has_value());
          if (a.has_value()) {
            EXPECT_EQ(a->url, b->url);
            EXPECT_EQ(a->when, b->when);
          }
          break;
        }
      }
      ASSERT_EQ(plain.size(), sharded.size());
      ASSERT_EQ(plain.Contains(url), sharded.Contains(url));
    }
    // Drain completely: the full remaining pop sequences must agree.
    while (true) {
      auto a = plain.Pop();
      auto b = sharded.Pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) break;
      EXPECT_EQ(a->url, b->url);
      EXPECT_EQ(a->when, b->when);
    }
  }
}

// PlanSlots must reproduce the serial peek/pop slot loop exactly: same
// slots, same assigned times, same final clock, and the same frontier
// state afterwards (extracted-but-unplanned entries restored intact).
TEST(ShardedFrontierModelTest, PlanSlotsMatchesTheSerialSlotLoop) {
  Rng rng(99173);
  for (int shards : {1, 3, 4, 8, 64}) {
    for (int round = 0; round < 40; ++round) {
      crawler::ShardedFrontier frontier(shards);
      const int urls = 1 + static_cast<int>(rng.NextBounded(60));
      for (int i = 0; i < urls; ++i) {
        simweb::Url url{static_cast<uint32_t>(rng.NextBounded(11)),
                        static_cast<uint32_t>(i), 0};
        if (rng.NextBounded(8) == 0) {
          frontier.ScheduleFront(url);
        } else {
          frontier.Schedule(url, rng.NextDouble() * 10.0);
        }
      }
      crawler::ShardedFrontier reference = frontier;  // deep copy

      const double start = rng.NextDouble() * 2.0;
      const double horizon = start + rng.NextDouble() * 6.0;
      const double step = 0.05 + rng.NextDouble() * 0.3;
      ThreadPool threads(4);
      auto plan = frontier.PlanSlots(start, horizon, step, &threads);

      // Serial reference: the pre-ShardedFrontier plan loop.
      std::vector<crawler::ScheduledUrl> want;
      double t = start;
      while (t < horizon) {
        auto head = reference.Peek();
        if (!head.has_value()) {
          t = horizon;
          break;
        }
        if (head->when > t) {
          if (head->when >= horizon) {
            t = horizon;
            break;
          }
          t = head->when;
          continue;
        }
        auto popped = reference.Pop();
        want.push_back(crawler::ScheduledUrl{popped->url, t});
        t += step;
      }

      EXPECT_EQ(plan.end_time, t);
      ASSERT_EQ(plan.slots.size(), want.size())
          << "shards=" << shards << " round=" << round;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(plan.slots[i].url, want[i].url);
        EXPECT_EQ(plan.slots[i].when, want[i].when);
      }
      // Post-plan frontier state: both must drain identically.
      ASSERT_EQ(frontier.size(), reference.size());
      while (true) {
        auto a = frontier.Pop();
        auto b = reference.Pop();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (!a.has_value()) break;
        EXPECT_EQ(a->url, b->url);
        EXPECT_EQ(a->when, b->when);
      }
    }
  }
}

// --------------- ShardedCollection vs a single Collection --------------

// The sharded page store must be indistinguishable from one Collection
// at every shard count: same capacity enforcement, same lookups, same
// sizes, and — because both break importance ties by URL identity —
// the same eviction victim, bit for bit.
TEST(ShardedCollectionModelTest, RandomOpsMatchPlainCollection) {
  for (int shards : {1, 3, 8}) {
    Rng rng(77130);  // same op stream for every shard count
    crawler::Collection plain(40);
    crawler::ShardedCollection sharded(40, shards);
    for (int op = 0; op < 20000; ++op) {
      simweb::Url url{static_cast<uint32_t>(rng.NextBounded(11)),
                      static_cast<uint32_t>(rng.NextBounded(7)), 0};
      switch (rng.NextBounded(5)) {
        case 0:
        case 1: {  // upsert (importance ties are common by design)
          crawler::CollectionEntry e;
          e.url = url;
          e.version = rng.Next();
          e.importance = std::floor(rng.NextDouble() * 4.0);
          Status a = plain.Upsert(e);
          Status b = sharded.Upsert(e);
          ASSERT_EQ(a.code(), b.code()) << "shards=" << shards;
          break;
        }
        case 2: {  // remove
          Status a = plain.Remove(url);
          Status b = sharded.Remove(url);
          ASSERT_EQ(a.ok(), b.ok());
          break;
        }
        case 3: {  // find
          const crawler::CollectionEntry* a = plain.Find(url);
          const crawler::CollectionEntry* b = sharded.Find(url);
          ASSERT_EQ(a == nullptr, b == nullptr);
          if (a != nullptr) {
            EXPECT_EQ(a->version, b->version);
            EXPECT_EQ(a->importance, b->importance);
          }
          break;
        }
        case 4: {  // eviction victim
          const crawler::CollectionEntry* a = plain.LowestImportance();
          const crawler::CollectionEntry* b = sharded.LowestImportance();
          ASSERT_EQ(a == nullptr, b == nullptr);
          if (a != nullptr) {
            EXPECT_EQ(a->url, b->url) << "shards=" << shards;
            EXPECT_EQ(a->importance, b->importance);
          }
          break;
        }
      }
      ASSERT_EQ(plain.size(), sharded.size());
      ASSERT_EQ(plain.full(), sharded.full());
      ASSERT_EQ(plain.Contains(url), sharded.Contains(url));
    }
    // Direct shard mutations (the apply shard pass's purge path) are
    // reconciled into the cached global count on the serial path.
    for (int s = 0; s < shards; ++s) {
      auto& shard = sharded.shard(static_cast<std::size_t>(s));
      std::vector<simweb::Url> urls;
      shard.ForEach([&](const crawler::CollectionEntry& e) {
        if (urls.empty()) urls.push_back(e.url);
      });
      for (const simweb::Url& url : urls) {
        ASSERT_TRUE(shard.Remove(url).ok());
        ASSERT_TRUE(plain.Remove(url).ok());
      }
    }
    sharded.ReconcileSize();
    ASSERT_EQ(plain.size(), sharded.size());

    // The canonical walk must visit every entry exactly once, sorted.
    std::vector<simweb::Url> walked;
    sharded.ForEachCanonical([&](const crawler::CollectionEntry& e) {
      walked.push_back(e.url);
    });
    EXPECT_EQ(walked.size(), plain.size());
    for (std::size_t i = 1; i < walked.size(); ++i) {
      EXPECT_TRUE(std::tuple(walked[i - 1].site, walked[i - 1].slot,
                             walked[i - 1].incarnation) <
                  std::tuple(walked[i].site, walked[i].slot,
                             walked[i].incarnation));
    }
  }
}

TEST(CollUrlsModelTest, PopDrainIsSorted) {
  Rng rng(99);
  crawler::CollUrls queue;
  for (uint32_t i = 0; i < 500; ++i) {
    queue.Schedule(simweb::Url{0, i, 0}, rng.NextDouble() * 100.0);
  }
  double prev = -1e300;
  while (auto item = queue.Pop()) {
    ASSERT_GE(item->when, prev);
    prev = item->when;
  }
}

// ------------------- analytic freshness vs simulation ------------------

struct FreshnessCase {
  double interval_days;  // mean change interval
  double cycle_days;
  double window_days;
  bool shadowing;
};

class FreshnessAgreementTest
    : public ::testing::TestWithParam<FreshnessCase> {};

TEST_P(FreshnessAgreementTest, ClosedFormMatchesEventSimulation) {
  const FreshnessCase& c = GetParam();
  // Direct event-level simulation of N independent pages, no crawler
  // machinery: pages are synced on the configured schedule; freshness
  // sampled densely; compare with the closed form.
  Rng rng(static_cast<uint64_t>(c.interval_days * 1000 + c.window_days));
  const int pages = 1500;
  const double lambda = 1.0 / c.interval_days;
  const double horizon = 8.0 * c.cycle_days;

  // Page i is crawled at offset (i/pages) * window within each cycle.
  // In-place: visible immediately; shadowing: visible at window end.
  double fresh_time = 0.0, total_time = 0.0;
  for (int i = 0; i < pages; ++i) {
    double offset =
        (static_cast<double>(i) + 0.5) / pages * c.window_days;
    // Change times of this page over the horizon.
    std::vector<double> changes;
    for (double t = rng.Exponential(lambda); t < horizon;
         t += rng.Exponential(lambda)) {
      changes.push_back(t);
    }
    auto changed_between = [&](double a, double b) {
      auto lo = std::lower_bound(changes.begin(), changes.end(), a);
      return lo != changes.end() && *lo < b;
    };
    // Walk cycles starting from the second (warm-up skipped).
    for (int cycle = 2; (cycle + 1) * c.cycle_days <= horizon; ++cycle) {
      double crawl = cycle * c.cycle_days + offset;
      double visible = c.shadowing
                           ? cycle * c.cycle_days + c.window_days
                           : crawl;
      double next_visible =
          c.shadowing ? (cycle + 1) * c.cycle_days + c.window_days
                      : (cycle + 1) * c.cycle_days + offset;
      // Sample this page's freshness on a fine grid.
      const int samples = 64;
      for (int s = 0; s < samples; ++s) {
        double t = visible +
                   (next_visible - visible) *
                       (static_cast<double>(s) + 0.5) / samples;
        bool fresh = !changed_between(crawl, t);
        fresh_time += fresh ? (next_visible - visible) / samples : 0.0;
        total_time += (next_visible - visible) / samples;
      }
    }
  }
  double simulated = fresh_time / total_time;
  double analytic =
      c.shadowing
          ? (c.window_days == c.cycle_days
                 ? freshness::SteadyShadowingFreshness(lambda,
                                                       c.cycle_days)
                 : freshness::BatchShadowingFreshness(
                       lambda, c.cycle_days, c.window_days))
          : freshness::InPlaceFreshness(lambda, c.cycle_days);
  EXPECT_NEAR(simulated, analytic, 0.025)
      << "interval=" << c.interval_days << " window=" << c.window_days
      << " shadowing=" << c.shadowing;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FreshnessAgreementTest,
    ::testing::Values(
        // The paper's Table 2 parameters and variations around them.
        FreshnessCase{120.0, 30.0, 30.0, false},
        FreshnessCase{120.0, 30.0, 7.0, false},
        FreshnessCase{120.0, 30.0, 30.0, true},
        FreshnessCase{120.0, 30.0, 7.0, true},
        FreshnessCase{30.0, 30.0, 15.0, false},
        FreshnessCase{30.0, 30.0, 15.0, true},
        FreshnessCase{15.0, 30.0, 7.0, true},
        FreshnessCase{60.0, 30.0, 10.0, true},
        FreshnessCase{240.0, 30.0, 7.0, false}));

// --------------------- optimizer invariants under sweep ----------------

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, OptimalDominatesBaselinesAndSpendsBudget) {
  Rng rng(GetParam());
  // Random rate mix, random budget.
  std::vector<freshness::RateGroup> groups;
  int n = 2 + static_cast<int>(rng.NextBounded(8));
  for (int i = 0; i < n; ++i) {
    groups.push_back({rng.Exponential(1.0) * 0.2,
                      1.0 + static_cast<double>(rng.NextBounded(100))});
  }
  double total_weight = 0.0;
  for (const auto& g : groups) total_weight += g.weight;
  double budget = total_weight * rng.Uniform(0.005, 0.2);

  auto optimal = freshness::RevisitOptimizer::Optimize(groups, budget);
  auto uniform = freshness::RevisitOptimizer::Uniform(groups, budget);
  auto proportional =
      freshness::RevisitOptimizer::Proportional(groups, budget);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(proportional.ok());

  // Optimality: never worse than either baseline (up to solver slack).
  EXPECT_GE(optimal->freshness, uniform->freshness - 1e-6);
  EXPECT_GE(optimal->freshness, proportional->freshness - 1e-6);

  // Budget: spent to within 2%. Exactness is unattainable when a
  // group sits at its exclusion boundary — its frequency swings
  // steeply with the multiplier there (the marginal value of those
  // visits is negligible, so the objective is unaffected).
  double spent = 0.0;
  bool any_rate = false;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    spent += groups[i].weight * optimal->frequency[i];
    any_rate |= groups[i].rate > 0.0;
  }
  if (any_rate) {
    EXPECT_NEAR(spent, budget, budget * 0.02);
  }

  // Frequencies non-negative; freshness in [0, 1].
  for (double f : optimal->frequency) EXPECT_GE(f, 0.0);
  EXPECT_GE(optimal->freshness, 0.0);
  EXPECT_LE(optimal->freshness, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, OptimizerPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// ------------------------ simweb conservation laws ---------------------

class SimWebPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimWebPropertyTest, SlotAlwaysOccupiedAndHistoryConsistent) {
  simweb::WebConfig config;
  config.seed = GetParam();
  config.sites_per_domain = {2, 1, 1, 1};
  config.min_site_size = 10;
  config.max_site_size = 25;
  config.uniform_lifespan_days = 15.0;  // fast churn
  simweb::SimulatedWeb web(config);
  Rng rng(GetParam() * 7 + 1);
  double t = 0.0;
  for (int step = 0; step < 500; ++step) {
    t += rng.NextDouble() * 2.0;
    uint32_t site = static_cast<uint32_t>(rng.NextBounded(web.num_sites()));
    uint32_t slot =
        static_cast<uint32_t>(rng.NextBounded(web.site_size(site)));
    simweb::Url current = web.OracleCurrentUrl(site, slot, t);
    // The occupant is always alive at the query time...
    EXPECT_TRUE(web.OracleAlive(current, t)) << current.ToString();
    // ...its URL matches its coordinates...
    EXPECT_EQ(current.site, site);
    EXPECT_EQ(current.slot, slot);
    // ...every earlier incarnation is dead...
    if (current.incarnation > 0) {
      simweb::Url prev{site, slot, current.incarnation - 1};
      EXPECT_FALSE(web.OracleAlive(prev, t));
      // ...and incarnations tile time: prev dies no later than the
      // current one is born.
      auto prev_id = web.OracleLookup(prev);
      auto cur_id = web.OracleLookup(current);
      ASSERT_TRUE(prev_id.ok());
      ASSERT_TRUE(cur_id.ok());
      EXPECT_LE(web.OracleDeathTime(*prev_id),
                web.OracleBirthTime(*cur_id) + 1e-9);
    }
  }
}

TEST_P(SimWebPropertyTest, FetchAgreesWithOracle) {
  simweb::WebConfig config;
  config.seed = GetParam() + 100;
  config.sites_per_domain = {2, 1, 1, 1};
  config.min_site_size = 10;
  config.max_site_size = 30;
  simweb::SimulatedWeb web(config);
  Rng rng(GetParam() * 13 + 5);
  double t = 0.0;
  for (int step = 0; step < 300; ++step) {
    t += rng.NextDouble();
    uint32_t site = static_cast<uint32_t>(rng.NextBounded(web.num_sites()));
    uint32_t slot =
        static_cast<uint32_t>(rng.NextBounded(web.site_size(site)));
    simweb::Url url = web.OracleCurrentUrl(site, slot, t);
    auto fetched = web.Fetch(url, t);
    ASSERT_TRUE(fetched.ok());
    auto version = web.OracleVersion(url, t);
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(fetched->version, *version);
    // Last-Modified is consistent: in the past, and after the birth.
    EXPECT_LE(fetched->last_modified, t + 1e-9);
    auto id = web.OracleLookup(url);
    ASSERT_TRUE(id.ok());
    EXPECT_GE(fetched->last_modified,
              std::min(web.OracleBirthTime(*id), t) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimWebPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------- histogram/stat mini-properties ------------------

TEST(HistogramPropertyTest, QuantileMonotoneInQ) {
  Rng rng(5);
  Histogram h = *Histogram::Make({1.0, 5.0, 20.0, 100.0});
  for (int i = 0; i < 2000; ++i) h.Add(rng.Exponential(0.1));
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(StatsPropertyTest, WilsonIntervalCoverage) {
  // ~95% of Wilson 95% intervals must contain the true p.
  Rng rng(6);
  const double p = 0.3;
  int covered = 0;
  const int trials = 400, n = 50;
  for (int trial = 0; trial < trials; ++trial) {
    int successes = 0;
    for (int i = 0; i < n; ++i) successes += rng.Bernoulli(p);
    if (WilsonInterval(successes, n, 0.95).Contains(p)) ++covered;
  }
  double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(StatsPropertyTest, PoissonRateIntervalCoverage) {
  Rng rng(7);
  const double rate = 0.4, exposure = 60.0;
  int covered = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    auto events = static_cast<int64_t>(rng.Poisson(rate * exposure));
    if (PoissonRateInterval(events, exposure, 0.95).Contains(rate)) {
      ++covered;
    }
  }
  EXPECT_GT(static_cast<double>(covered) / trials, 0.90);
}

}  // namespace
}  // namespace webevo
