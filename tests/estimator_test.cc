#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "estimator/bayesian_estimator.h"
#include "estimator/change_estimator.h"
#include "estimator/last_modified_estimator.h"
#include "estimator/naive_estimator.h"
#include "estimator/poisson_ci_estimator.h"
#include "estimator/ratio_estimator.h"
#include "util/random.h"

namespace webevo::estimator {
namespace {

// Simulates `visits` daily observations of a Poisson page with the given
// true rate and feeds them to the estimator.
void FeedPoissonPage(ChangeEstimator& est, double true_rate, int visits,
                     double interval_days, Rng& rng) {
  for (int i = 0; i < visits; ++i) {
    bool changed = rng.NextDouble() <
                   1.0 - std::exp(-true_rate * interval_days);
    est.RecordObservation(interval_days, changed);
  }
}

// ---------------------------------------------------------------- factory

TEST(EstimatorFactoryTest, MakesEveryKind) {
  for (EstimatorKind kind :
       {EstimatorKind::kNaive, EstimatorKind::kPoissonCi,
        EstimatorKind::kBayesian, EstimatorKind::kRatio}) {
    auto est = MakeEstimator(kind);
    ASSERT_NE(est, nullptr);
    EXPECT_EQ(est->observation_count(), 0);
    if (kind == EstimatorKind::kBayesian) {
      // EB starts from its prior, so its rate estimate is the prior
      // mean rather than 0.
      EXPECT_GT(est->EstimatedRate(), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(est->EstimatedRate(), 0.0);
    }
    EXPECT_EQ(est->Name(), EstimatorKindName(kind));
  }
}

TEST(EstimatorFactoryTest, CloneIsIndependent) {
  auto est = MakeEstimator(EstimatorKind::kRatio);
  est->RecordObservation(1.0, true);
  auto clone = est->Clone();
  EXPECT_EQ(clone->observation_count(), 1);
  clone->RecordObservation(1.0, true);
  EXPECT_EQ(est->observation_count(), 1);
  EXPECT_EQ(clone->observation_count(), 2);
}

// ------------------------------------------------------------------ naive

TEST(NaiveEstimatorTest, MatchesPaperExample) {
  // Section 3.1: page in the window for 50 days, changed 5 times ->
  // average change interval 10 days.
  NaiveEstimator est;
  for (int day = 0; day < 50; ++day) {
    est.RecordObservation(1.0, day % 10 == 9);
  }
  EXPECT_EQ(est.detected_changes(), 5);
  EXPECT_DOUBLE_EQ(est.monitored_days(), 50.0);
  EXPECT_DOUBLE_EQ(est.EstimatedInterval(), 10.0);
  EXPECT_DOUBLE_EQ(est.EstimatedRate(), 0.1);
}

TEST(NaiveEstimatorTest, NoChangesMeansZeroRate) {
  NaiveEstimator est;
  for (int i = 0; i < 30; ++i) est.RecordObservation(1.0, false);
  EXPECT_DOUBLE_EQ(est.EstimatedRate(), 0.0);
  EXPECT_TRUE(std::isinf(est.EstimatedInterval()));
}

TEST(NaiveEstimatorTest, IgnoresNonPositiveIntervals) {
  NaiveEstimator est;
  est.RecordObservation(0.0, true);
  est.RecordObservation(-1.0, true);
  EXPECT_EQ(est.observation_count(), 0);
}

TEST(NaiveEstimatorTest, ResetClearsState) {
  NaiveEstimator est;
  est.RecordObservation(1.0, true);
  est.Reset();
  EXPECT_EQ(est.observation_count(), 0);
  EXPECT_DOUBLE_EQ(est.EstimatedRate(), 0.0);
}

TEST(NaiveEstimatorTest, SaturatesAtOneChangePerVisit) {
  // Figure 1(a): a page changing 4x/day monitored daily looks like a
  // daily changer — the naive estimate cannot exceed 1/interval.
  Rng rng(5);
  NaiveEstimator est;
  FeedPoissonPage(est, 4.0, 200, 1.0, rng);
  EXPECT_LE(est.EstimatedRate(), 1.0);
  EXPECT_GT(est.EstimatedRate(), 0.9);
}

// --------------------------------------------------------------------- EP

TEST(PoissonCiEstimatorTest, RecoverSlowRate) {
  Rng rng(6);
  PoissonCiEstimator est;
  FeedPoissonPage(est, 0.1, 2000, 1.0, rng);
  EXPECT_NEAR(est.EstimatedRate(), 0.1, 0.015);
}

TEST(PoissonCiEstimatorTest, OutperformsNaiveAtHighRates) {
  // True rate 2/day with daily visits: naive caps at 1; EP's MLE
  // through -ln(1-p) recovers more (until saturation).
  Rng rng(7);
  PoissonCiEstimator ep;
  NaiveEstimator naive;
  for (int i = 0; i < 3000; ++i) {
    bool changed = rng.NextDouble() < 1.0 - std::exp(-2.0);
    ep.RecordObservation(1.0, changed);
    naive.RecordObservation(1.0, changed);
  }
  EXPECT_LE(naive.EstimatedRate(), 1.0);
  EXPECT_GT(ep.EstimatedRate(), 1.6);
}

TEST(PoissonCiEstimatorTest, ConfidenceIntervalCoversTruth) {
  Rng rng(8);
  PoissonCiEstimator est;
  FeedPoissonPage(est, 0.2, 500, 1.0, rng);
  Interval ci = est.RateInterval(0.99);
  EXPECT_LE(ci.lo, 0.2);
  EXPECT_GE(ci.hi, 0.2);
}

TEST(PoissonCiEstimatorTest, IntervalShrinksWithData) {
  Rng rng(9);
  PoissonCiEstimator small, large;
  FeedPoissonPage(small, 0.2, 30, 1.0, rng);
  FeedPoissonPage(large, 0.2, 3000, 1.0, rng);
  EXPECT_GT(small.RateInterval(0.95).width(),
            large.RateInterval(0.95).width());
}

TEST(PoissonCiEstimatorTest, SaturationGivesFinitePointInfiniteUpper) {
  PoissonCiEstimator est;
  for (int i = 0; i < 10; ++i) est.RecordObservation(1.0, true);
  EXPECT_TRUE(std::isfinite(est.EstimatedRate()));
  EXPECT_GT(est.EstimatedRate(), 1.0);
  EXPECT_TRUE(std::isinf(est.RateInterval(0.95).hi));
}

TEST(PoissonCiEstimatorTest, NoDataInterval) {
  PoissonCiEstimator est;
  Interval ci = est.RateInterval(0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_TRUE(std::isinf(ci.hi));
}

// --------------------------------------------------------------------- EB

TEST(BayesianEstimatorTest, DefaultClassesSpanPaperBuckets) {
  BayesianEstimator est;
  ASSERT_EQ(est.class_rates().size(), 7u);
  // Sub-daily classes down to yearly, strictly decreasing.
  EXPECT_GT(est.class_rates().front(), 1.0);
  EXPECT_DOUBLE_EQ(est.class_rates().back(), 1.0 / 365.0);
  for (std::size_t i = 1; i < est.class_rates().size(); ++i) {
    EXPECT_LT(est.class_rates()[i], est.class_rates()[i - 1]);
  }
  double sum = 0.0;
  for (double p : est.posterior()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BayesianEstimatorTest, PaperExampleUnchangedMonthShiftsToMonthly) {
  // Section 5.3: "if the UpdateModule learns that page p1 did not
  // change for one month, it increases P{p1 in C_M} and decreases
  // P{p1 in C_W}".
  BayesianEstimator est({1.0 / 7.0, 1.0 / 30.0});  // C_W, C_M
  double before_week = est.posterior()[0];
  double before_month = est.posterior()[1];
  est.RecordObservation(30.0, false);
  EXPECT_LT(est.posterior()[0], before_week);
  EXPECT_GT(est.posterior()[1], before_month);
}

TEST(BayesianEstimatorTest, ConvergesToTrueClass) {
  Rng rng(10);
  BayesianEstimator est;  // classes: daily/weekly/monthly/4mo/yearly
  FeedPoissonPage(est, 1.0 / 30.0, 400, 1.0, rng);
  EXPECT_NEAR(est.MapRate(), 1.0 / 30.0, 1e-12);
  EXPECT_GT(est.posterior()[est.MapClass()], 0.5);
}

TEST(BayesianEstimatorTest, PosteriorMeanBetweenClassRates) {
  BayesianEstimator est;
  est.RecordObservation(7.0, true);
  double rate = est.EstimatedRate();
  EXPECT_GT(rate, est.class_rates().back());
  EXPECT_LT(rate, est.class_rates().front());
}

TEST(BayesianEstimatorTest, CustomPriorUsed) {
  BayesianEstimator est({0.5, 0.01}, {0.9, 0.1});
  EXPECT_DOUBLE_EQ(est.posterior()[0], 0.9);
  est.Reset();
  EXPECT_DOUBLE_EQ(est.posterior()[0], 0.9);
}

TEST(BayesianEstimatorTest, MismatchedPriorFallsBackToUniform) {
  BayesianEstimator est({0.5, 0.01}, {1.0});
  EXPECT_DOUBLE_EQ(est.posterior()[0], 0.5);
}

TEST(BayesianEstimatorTest, SurvivesExtremeEvidence) {
  // Massive unchanged evidence must not underflow to NaN.
  BayesianEstimator est;
  for (int i = 0; i < 10000; ++i) est.RecordObservation(30.0, false);
  EXPECT_FALSE(std::isnan(est.EstimatedRate()));
  EXPECT_LT(est.EstimatedRate(), 0.01);
}

// ------------------------------------------------------------------ ratio

TEST(RatioEstimatorTest, FiniteAtSaturation) {
  RatioEstimator est;
  for (int i = 0; i < 20; ++i) est.RecordObservation(1.0, true);
  EXPECT_TRUE(std::isfinite(est.EstimatedRate()));
  // -log(0.5/20.5) ~ 3.71 changes/day
  EXPECT_NEAR(est.EstimatedRate(), std::log(20.5 / 0.5), 1e-9);
}

TEST(RatioEstimatorTest, RecoverRateUnderIrregularVisits) {
  // The ratio estimator only sees the mean interval; with mildly
  // irregular schedules it should still land near the truth.
  Rng rng(11);
  RatioEstimator est;
  const double rate = 0.25;
  for (int i = 0; i < 4000; ++i) {
    double interval = rng.Uniform(0.5, 1.5);
    bool changed = rng.NextDouble() < 1.0 - std::exp(-rate * interval);
    est.RecordObservation(interval, changed);
  }
  EXPECT_NEAR(est.EstimatedRate(), rate, 0.03);
}

TEST(RatioEstimatorTest, LessBiasedThanNaiveSmallSample) {
  // Average estimates over many small samples: the ratio estimator's
  // bias should be smaller than the naive estimator's at rate ~ 1/day.
  Rng rng(12);
  const double rate = 1.2;
  const int pages = 3000, visits = 15;
  double naive_sum = 0.0, ratio_sum = 0.0;
  for (int p = 0; p < pages; ++p) {
    NaiveEstimator naive;
    RatioEstimator ratio;
    for (int v = 0; v < visits; ++v) {
      bool changed = rng.NextDouble() < 1.0 - std::exp(-rate);
      naive.RecordObservation(1.0, changed);
      ratio.RecordObservation(1.0, changed);
    }
    naive_sum += naive.EstimatedRate();
    ratio_sum += ratio.EstimatedRate();
  }
  double naive_bias = std::abs(naive_sum / pages - rate);
  double ratio_bias = std::abs(ratio_sum / pages - rate);
  EXPECT_LT(ratio_bias, naive_bias);
}


// ------------------------------------------------------------------- EL

TEST(LastModifiedEstimatorTest, ExactTimestampsRecoverRate) {
  // Simulate a Poisson page exposing Last-Modified: at each visit we
  // know the exact time of the most recent change.
  Rng rng(42);
  LastModifiedEstimator est;
  const double rate = 0.3;
  double last_change = -1.0;  // relative position within the gap
  for (int v = 0; v < 3000; ++v) {
    const double gap = 1.0;
    // Sample the process over the gap: time of last change, if any.
    bool changed = rng.NextDouble() < 1.0 - std::exp(-rate * gap);
    if (changed) {
      // Last event in (0, gap] given >=1 event: gap - Exp truncated.
      double tail;
      do {
        tail = rng.Exponential(rate);
      } while (tail >= gap);
      last_change = tail;  // quiet tail length
      est.RecordObservationWithTimestamp(gap, true, last_change);
    } else {
      est.RecordObservationWithTimestamp(gap, false, gap);
    }
  }
  EXPECT_NEAR(est.EstimatedRate(), rate, 0.03);
}

TEST(LastModifiedEstimatorTest, DoesNotSaturateAboveVisitRate) {
  // The whole point of Last-Modified: a page changing 5x per visit
  // interval is still identifiable, unlike with checksum-only data.
  Rng rng(43);
  LastModifiedEstimator el;
  PoissonCiEstimator ep;
  const double rate = 5.0;  // 5 changes/day, visited daily
  for (int v = 0; v < 5000; ++v) {
    double tail;
    do {
      tail = rng.Exponential(rate);
    } while (tail >= 1.0);  // a change within the day is ~certain
    el.RecordObservationWithTimestamp(1.0, true, tail);
    ep.RecordObservation(1.0, true);
  }
  EXPECT_NEAR(el.EstimatedRate(), rate, 0.25);
  // EP's point estimate is unusable at saturation (the continuity
  // correction makes it grow like log n, here ~9/day); EL is far more
  // accurate.
  EXPECT_GT(std::abs(ep.EstimatedRate() - rate),
            4.0 * std::abs(el.EstimatedRate() - rate));
}

TEST(LastModifiedEstimatorTest, TimestampClampedToGap) {
  LastModifiedEstimator est;
  // A "changed" visit reporting a modification before the previous
  // visit contradicts the change detection; the quiet tail is clamped.
  est.RecordObservationWithTimestamp(1.0, true, 10.0);
  EXPECT_DOUBLE_EQ(est.total_quiet_days(), 1.0);
  EXPECT_DOUBLE_EQ(est.EstimatedRate(), 1.0);
}

TEST(LastModifiedEstimatorTest, FallbackWithoutTimestampsIsSane) {
  Rng rng(44);
  LastModifiedEstimator est;
  const double rate = 0.1;
  for (int v = 0; v < 4000; ++v) {
    bool changed = rng.NextDouble() < 1.0 - std::exp(-rate);
    est.RecordObservation(1.0, changed);
  }
  EXPECT_NEAR(est.EstimatedRate(), rate, 0.03);
}

TEST(LastModifiedEstimatorTest, ResetAndClone) {
  LastModifiedEstimator est;
  est.RecordObservationWithTimestamp(1.0, true, 0.5);
  auto clone = est.Clone();
  EXPECT_DOUBLE_EQ(clone->EstimatedRate(), est.EstimatedRate());
  est.Reset();
  EXPECT_EQ(est.observation_count(), 0);
  EXPECT_DOUBLE_EQ(est.EstimatedRate(), 0.0);
  EXPECT_GT(clone->EstimatedRate(), 0.0);
}

TEST(LastModifiedEstimatorTest, FactoryProducesEl) {
  auto est = MakeEstimator(EstimatorKind::kLastModified);
  EXPECT_EQ(est->Name(), "EL");
  EXPECT_EQ(EstimatorKindName(EstimatorKind::kLastModified),
            std::string("EL"));
}

// ------------------------------------------- parameterized rate recovery

struct RateCase {
  EstimatorKind kind;
  double true_rate;
  double tolerance_frac;
};

class RateRecoveryTest : public ::testing::TestWithParam<RateCase> {};

TEST_P(RateRecoveryTest, ConvergesNearTruth) {
  const RateCase& c = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(c.true_rate * 100) +
          static_cast<uint64_t>(c.kind));
  auto est = MakeEstimator(c.kind);
  FeedPoissonPage(*est, c.true_rate, 5000, 1.0, rng);
  EXPECT_NEAR(est->EstimatedRate(), c.true_rate,
              c.true_rate * c.tolerance_frac)
      << est->Name() << " at rate " << c.true_rate;
}

INSTANTIATE_TEST_SUITE_P(
    SlowAndModerateRates, RateRecoveryTest,
    ::testing::Values(
        // All estimators handle slow pages (lambda << 1/visit interval).
        RateCase{EstimatorKind::kNaive, 0.02, 0.25},
        RateCase{EstimatorKind::kPoissonCi, 0.02, 0.25},
        RateCase{EstimatorKind::kRatio, 0.02, 0.25},
        RateCase{EstimatorKind::kNaive, 0.1, 0.20},
        RateCase{EstimatorKind::kPoissonCi, 0.1, 0.20},
        RateCase{EstimatorKind::kRatio, 0.1, 0.20},
        // Near the sampling rate only the inverting estimators stay
        // accurate.
        RateCase{EstimatorKind::kPoissonCi, 0.7, 0.15},
        RateCase{EstimatorKind::kRatio, 0.7, 0.15}));

}  // namespace
}  // namespace webevo::estimator
