#include <cmath>

#include <gtest/gtest.h>

#include "crawler/all_urls.h"
#include "crawler/coll_urls.h"
#include "crawler/collection.h"
#include "crawler/crawl_module.h"
#include "crawler/eval.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/ranking_module.h"
#include "crawler/update_module.h"
#include "freshness/analytic.h"
#include "simweb/simulated_web.h"

namespace webevo::crawler {
namespace {

using simweb::Url;

CollectionEntry MakeEntry(Url url, double importance = 0.0) {
  CollectionEntry e;
  e.url = url;
  e.importance = importance;
  return e;
}

// -------------------------------------------------------------- Collection

TEST(CollectionTest, UpsertAndFind) {
  Collection c(2);
  ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, 1, 0})).ok());
  EXPECT_TRUE(c.Contains(Url{0, 1, 0}));
  EXPECT_NE(c.Find(Url{0, 1, 0}), nullptr);
  EXPECT_EQ(c.Find(Url{0, 2, 0}), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(CollectionTest, CapacityEnforcedForNewEntries) {
  Collection c(1);
  ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, 1, 0})).ok());
  Status st = c.Upsert(MakeEntry(Url{0, 2, 0}));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // In-place update of the existing entry still works at capacity.
  EXPECT_TRUE(c.Upsert(MakeEntry(Url{0, 1, 0}, 5.0)).ok());
  EXPECT_DOUBLE_EQ(c.Find(Url{0, 1, 0})->importance, 5.0);
}

TEST(CollectionTest, RemoveFreesSpace) {
  Collection c(1);
  ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, 1, 0})).ok());
  EXPECT_TRUE(c.Remove(Url{0, 1, 0}).ok());
  EXPECT_FALSE(c.Remove(Url{0, 1, 0}).ok());
  EXPECT_TRUE(c.Upsert(MakeEntry(Url{0, 2, 0})).ok());
}

TEST(CollectionTest, LowestImportance) {
  Collection c(3);
  ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, 1, 0}, 3.0)).ok());
  ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, 2, 0}, 1.0)).ok());
  ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, 3, 0}, 2.0)).ok());
  ASSERT_NE(c.LowestImportance(), nullptr);
  EXPECT_EQ(c.LowestImportance()->url, (Url{0, 2, 0}));
  Collection empty(1);
  EXPECT_EQ(empty.LowestImportance(), nullptr);
}

TEST(CollectionTest, ForEachVisitsAll) {
  Collection c(5);
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.Upsert(MakeEntry(Url{0, i, 0})).ok());
  }
  int visits = 0;
  c.ForEach([&](const CollectionEntry&) { ++visits; });
  EXPECT_EQ(visits, 5);
}

TEST(ShadowedCollectionTest, SwapPublishesShadow) {
  ShadowedCollection store(3);
  ASSERT_TRUE(store.shadow().Upsert(MakeEntry(Url{0, 1, 0})).ok());
  ASSERT_TRUE(store.shadow().Upsert(MakeEntry(Url{0, 2, 0})).ok());
  EXPECT_EQ(store.current().size(), 0u);
  store.Swap();
  EXPECT_EQ(store.current().size(), 2u);
  EXPECT_EQ(store.shadow().size(), 0u);
  EXPECT_EQ(store.swap_count(), 1);
}

TEST(ShadowedCollectionTest, SwapReplacesOldCurrent) {
  ShadowedCollection store(2);
  ASSERT_TRUE(store.shadow().Upsert(MakeEntry(Url{0, 1, 0})).ok());
  store.Swap();
  ASSERT_TRUE(store.shadow().Upsert(MakeEntry(Url{0, 2, 0})).ok());
  store.Swap();
  EXPECT_EQ(store.current().size(), 1u);
  EXPECT_TRUE(store.current().Contains(Url{0, 2, 0}));
  EXPECT_FALSE(store.current().Contains(Url{0, 1, 0}));
}

// ----------------------------------------------------------------- AllUrls

TEST(AllUrlsTest, AddAndInLinks) {
  AllUrls all;
  EXPECT_TRUE(all.Add(Url{0, 1, 0}, 1.0));
  EXPECT_FALSE(all.Add(Url{0, 1, 0}, 2.0));  // duplicate
  EXPECT_DOUBLE_EQ(all.Find(Url{0, 1, 0})->first_seen, 1.0);
  all.NoteInLink(Url{0, 1, 0}, 3.0);
  all.NoteInLink(Url{0, 2, 0}, 3.0);  // discovers implicitly
  EXPECT_EQ(all.Find(Url{0, 1, 0})->in_links, 1u);
  EXPECT_EQ(all.Find(Url{0, 2, 0})->in_links, 1u);
  EXPECT_DOUBLE_EQ(all.Find(Url{0, 2, 0})->first_seen, 3.0);
  EXPECT_EQ(all.size(), 2u);
}

TEST(AllUrlsTest, MarkDead) {
  AllUrls all;
  EXPECT_FALSE(all.MarkDead(Url{0, 1, 0}).ok());
  all.Add(Url{0, 1, 0}, 0.0);
  EXPECT_TRUE(all.MarkDead(Url{0, 1, 0}).ok());
  EXPECT_TRUE(all.Find(Url{0, 1, 0})->dead);
}

// ---------------------------------------------------------------- CollUrls

TEST(CollUrlsTest, PopsInTimeOrder) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 3.0);
  q.Schedule(Url{0, 2, 0}, 1.0);
  q.Schedule(Url{0, 3, 0}, 2.0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop()->url, (Url{0, 2, 0}));
  EXPECT_EQ(q.Pop()->url, (Url{0, 3, 0}));
  EXPECT_EQ(q.Pop()->url, (Url{0, 1, 0}));
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(CollUrlsTest, RescheduleSupersedes) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 5.0);
  q.Schedule(Url{0, 2, 0}, 2.0);
  q.Schedule(Url{0, 1, 0}, 1.0);  // move forward
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop()->url, (Url{0, 1, 0}));
  EXPECT_EQ(q.Pop()->url, (Url{0, 2, 0}));
  EXPECT_TRUE(q.empty());
}

TEST(CollUrlsTest, ScheduleFrontJumpsTheQueue) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 0.5);
  q.ScheduleFront(Url{0, 9, 0});
  EXPECT_EQ(q.Pop()->url, (Url{0, 9, 0}));
}

TEST(CollUrlsTest, ScheduleFrontIsFifoAmongFrontInserts) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 1.0);
  q.ScheduleFront(Url{0, 8, 0});
  q.ScheduleFront(Url{0, 9, 0});
  EXPECT_EQ(q.Pop()->url, (Url{0, 8, 0}));
  EXPECT_EQ(q.Pop()->url, (Url{0, 9, 0}));
  EXPECT_EQ(q.Pop()->url, (Url{0, 1, 0}));
}

TEST(CollUrlsTest, RemoveIsLazyButEffective) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 1.0);
  q.Schedule(Url{0, 2, 0}, 2.0);
  EXPECT_TRUE(q.Remove(Url{0, 1, 0}).ok());
  EXPECT_FALSE(q.Remove(Url{0, 1, 0}).ok());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.Pop()->url, (Url{0, 2, 0}));
  EXPECT_TRUE(q.empty());
}

TEST(CollUrlsTest, PeekDoesNotConsume) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 1.0);
  EXPECT_EQ(q.Peek()->url, (Url{0, 1, 0}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.Pop()->url, (Url{0, 1, 0}));
}

TEST(CollUrlsTest, ContainsTracksLiveEntries) {
  CollUrls q;
  q.Schedule(Url{0, 1, 0}, 1.0);
  EXPECT_TRUE(q.Contains(Url{0, 1, 0}));
  q.Pop();
  EXPECT_FALSE(q.Contains(Url{0, 1, 0}));
}

TEST(CollUrlsTest, StressRescheduleKeepsConsistency) {
  CollUrls q;
  for (int round = 0; round < 50; ++round) {
    for (uint32_t i = 0; i < 20; ++i) {
      q.Schedule(Url{0, i, 0}, static_cast<double>((round * 7 + i) % 13));
    }
  }
  EXPECT_EQ(q.size(), 20u);
  double prev = -1.0;
  int popped = 0;
  while (auto item = q.Pop()) {
    EXPECT_GE(item->when, prev);
    prev = item->when;
    ++popped;
  }
  EXPECT_EQ(popped, 20);
}

// ------------------------------------------------------------- CrawlModule

simweb::WebConfig TinyWeb(uint64_t seed = 77) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {2, 1, 1, 1};
  c.min_site_size = 10;
  c.max_site_size = 30;
  return c;
}

TEST(CrawlModuleTest, CrawlSuccessAndFailureCounted) {
  simweb::SimulatedWeb web(TinyWeb());
  CrawlModule module(&web, {});
  EXPECT_TRUE(module.Crawl(web.RootUrl(0), 0.0).ok());
  EXPECT_FALSE(module.Crawl(Url{0, 0, 9}, 0.1).ok());
  EXPECT_EQ(module.fetch_count(), 2u);
  EXPECT_EQ(module.failure_count(), 1u);
}

TEST(CrawlModuleTest, PolitenessEnforcement) {
  simweb::SimulatedWeb web(TinyWeb());
  CrawlModuleConfig config;
  config.per_site_delay_days = 0.5;
  config.enforce_politeness = true;
  CrawlModule module(&web, config);
  ASSERT_TRUE(module.Crawl(web.RootUrl(0), 0.0).ok());
  auto too_soon = module.Crawl(web.RootUrl(0), 0.1);
  EXPECT_FALSE(too_soon.ok());
  EXPECT_EQ(too_soon.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(module.politeness_rejections(), 1u);
  EXPECT_GE(module.NextAllowedTime(0), 0.5);
  EXPECT_TRUE(module.Crawl(web.RootUrl(0), 0.6).ok());
  // A different site is unaffected.
  EXPECT_TRUE(module.Crawl(web.RootUrl(1), 0.61).ok());
}

TEST(CrawlModuleTest, PeakAndAverageRates) {
  simweb::SimulatedWeb web(TinyWeb());
  CrawlModule module(&web, {});
  // 10 fetches on day 0, 2 on day 5.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(module.Crawl(web.RootUrl(0), 0.01 * i).ok());
  }
  ASSERT_TRUE(module.Crawl(web.RootUrl(0), 5.0).ok());
  ASSERT_TRUE(module.Crawl(web.RootUrl(0), 5.1).ok());
  EXPECT_DOUBLE_EQ(module.PeakDailyRate(), 10.0);
  EXPECT_NEAR(module.AverageDailyRate(), 12.0 / 5.1, 1e-9);
  EXPECT_GT(module.PeakDailyRate(), module.AverageDailyRate());
}

// ------------------------------------------------------------ UpdateModule

TEST(UpdateModuleTest, SchedulesWithinClampBounds) {
  UpdateModuleConfig config;
  config.min_revisit_interval_days = 1.0;
  config.max_revisit_interval_days = 10.0;
  config.policy = RevisitPolicy::kUniform;
  config.crawl_budget_pages_per_day = 100.0;
  UpdateModule module(config);
  double next = module.OnCrawled(Url{0, 1, 0}, 5.0, false, true);
  EXPECT_GE(next, 6.0);
  EXPECT_LE(next, 15.0);
}

TEST(UpdateModuleTest, EstimatorLearnsFromOutcomes) {
  UpdateModuleConfig config;
  config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule module(config);
  Url url{0, 1, 0};
  module.OnCrawled(url, 0.0, false, true);
  for (int day = 1; day <= 60; ++day) {
    module.OnCrawled(url, day, day % 3 == 0, false);
  }
  // Roughly one detected change every 3 days.
  EXPECT_NEAR(module.EstimatedRate(url), 1.0 / 3.0, 0.15);
}

TEST(UpdateModuleTest, FasterPagesRevisitedSoonerUnderOptimal) {
  UpdateModuleConfig config;
  config.policy = RevisitPolicy::kOptimal;
  config.crawl_budget_pages_per_day = 2.0;
  config.min_revisit_interval_days = 0.01;
  config.max_revisit_interval_days = 365.0;
  UpdateModule module(config);
  Url fast{0, 1, 0}, slow{0, 2, 0};
  module.OnCrawled(fast, 0.0, false, true);
  module.OnCrawled(slow, 0.0, false, true);
  // Feed history: fast changes every visit-ish, slow almost never.
  for (int day = 1; day <= 120; ++day) {
    module.OnCrawled(fast, day, day % 4 == 0, false);
    module.OnCrawled(slow, day, day % 60 == 0, false);
  }
  module.Rebalance();
  double next_fast = module.OnCrawled(fast, 121.0, false, false) - 121.0;
  double next_slow = module.OnCrawled(slow, 121.0, false, false) - 121.0;
  EXPECT_LT(next_fast, next_slow);
}

TEST(UpdateModuleTest, OptimalAbandonsHopelesslyFastPages) {
  // A page changing far faster than the budget permits should get the
  // maximum interval (the clamped version of "never visit").
  UpdateModuleConfig config;
  config.policy = RevisitPolicy::kOptimal;
  config.crawl_budget_pages_per_day = 1.0;
  config.max_revisit_interval_days = 50.0;
  config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule module(config);
  Url hot{0, 1, 0};
  Url warm{0, 2, 0};
  module.OnCrawled(hot, 0.0, false, true);
  module.OnCrawled(warm, 0.0, false, true);
  for (int i = 1; i <= 200; ++i) {
    module.OnCrawled(hot, i * 0.1, true, false);  // changes every visit
    module.OnCrawled(warm, i * 0.1, i % 40 == 0, false);
  }
  module.Rebalance();
  // Abandonment is verified before it sticks: the first post-abandon
  // visit is an immediate probe; once the probe confirms the page still
  // changes, it is deferred for twice the normal maximum.
  double probe_interval = module.OnCrawled(hot, 21.0, true, false) - 21.0;
  EXPECT_LT(probe_interval, 1.0);
  double confirmed =
      module.OnCrawled(hot, 21.0 + probe_interval, true, false) -
      (21.0 + probe_interval);
  EXPECT_DOUBLE_EQ(confirmed, 100.0);
}

TEST(UpdateModuleTest, SiteLevelStatsShareEstimator) {
  UpdateModuleConfig config;
  config.site_level_stats = true;
  config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule module(config);
  Url a{3, 1, 0}, b{3, 2, 0};
  module.OnCrawled(a, 0.0, false, true);
  module.OnCrawled(b, 0.0, false, true);
  for (int day = 1; day <= 30; ++day) {
    module.OnCrawled(a, day, true, false);
  }
  // b never observed changing, but shares site 3's statistics.
  EXPECT_GT(module.EstimatedRate(b), 0.5);
}

TEST(UpdateModuleTest, ForgetDropsPage) {
  UpdateModule module({});
  Url url{0, 1, 0};
  module.OnCrawled(url, 0.0, false, true);
  EXPECT_EQ(module.tracked_pages(), 1u);
  module.Forget(url);
  EXPECT_EQ(module.tracked_pages(), 0u);
  EXPECT_DOUBLE_EQ(module.EstimatedRate(url), 0.0);
}

TEST(UpdateModuleTest, ImportanceBoostShortensInterval) {
  UpdateModuleConfig config;
  config.policy = RevisitPolicy::kUniform;
  config.importance_exponent = 1.0;
  config.crawl_budget_pages_per_day = 10.0;
  config.min_revisit_interval_days = 0.001;
  config.max_revisit_interval_days = 1000.0;
  UpdateModule module(config);
  Url vip{0, 1, 0}, pleb{0, 2, 0};
  module.OnCrawled(vip, 0.0, false, true);
  module.OnCrawled(pleb, 0.0, false, true);
  module.SetImportance(vip, 10.0);
  module.SetImportance(pleb, 0.1);
  module.Rebalance();
  double vip_next = module.OnCrawled(vip, 1.0, false, false);
  double pleb_next = module.OnCrawled(pleb, 1.0, false, false);
  EXPECT_LT(vip_next, pleb_next);
}

// ----------------------------------------------------------- RankingModule

TEST(RankingModuleTest, ScoresCollectionAndProposesReplacements) {
  // Hand-built universe: collection holds pages A, B; B is unloved.
  // Candidate C is linked from both collection pages, so its estimated
  // importance exceeds B's and it should replace B.
  Collection collection(2);
  AllUrls all;
  Url a{0, 1, 0}, b{0, 2, 0}, c{0, 3, 0};
  CollectionEntry ea = MakeEntry(a);
  ea.links = {c};
  CollectionEntry eb = MakeEntry(b);
  eb.links = {a, c};
  ASSERT_TRUE(collection.Upsert(ea).ok());
  ASSERT_TRUE(collection.Upsert(eb).ok());
  all.Add(a, 0.0);
  all.Add(b, 0.0);
  all.NoteInLink(c, 0.0);
  all.NoteInLink(c, 0.0);

  RankingModuleConfig config;
  config.metric = ImportanceMetric::kPageRank;
  RankingModule ranking(config);
  RefinementResult result = ranking.Refine(all, collection);
  EXPECT_EQ(result.graph_nodes, 3u);
  EXPECT_EQ(result.graph_edges, 3u);
  // Importance written back.
  EXPECT_GT(collection.Find(a)->importance, 0.0);
  ASSERT_EQ(result.replacements.size(), 1u);
  EXPECT_EQ(result.replacements[0].discard, b);
  EXPECT_EQ(result.replacements[0].crawl, c);
  EXPECT_GT(result.replacements[0].crawl_score,
            result.replacements[0].discard_score);
}

TEST(RankingModuleTest, HysteresisBlocksMarginalSwaps) {
  Collection collection(1);
  AllUrls all;
  Url a{0, 1, 0}, c{0, 2, 0};
  // Symmetric: a links c... but a is the only member; candidate c gets
  // the same in-link mass as a gets none. With huge hysteresis no swap.
  CollectionEntry ea = MakeEntry(a);
  ea.links = {c};
  ASSERT_TRUE(collection.Upsert(ea).ok());
  all.Add(a, 0.0);
  all.NoteInLink(c, 0.0);
  RankingModuleConfig config;
  config.replacement_hysteresis = 100.0;
  RankingModule ranking(config);
  EXPECT_TRUE(ranking.Refine(all, collection).replacements.empty());
}

TEST(RankingModuleTest, DeadCandidatesIgnored) {
  Collection collection(1);
  AllUrls all;
  Url a{0, 1, 0}, dead{0, 2, 0};
  CollectionEntry ea = MakeEntry(a);
  ea.links = {dead, dead, dead};
  ASSERT_TRUE(collection.Upsert(ea).ok());
  all.Add(a, 0.0);
  all.NoteInLink(dead, 0.0);
  ASSERT_TRUE(all.MarkDead(dead).ok());
  RankingModule ranking({});
  EXPECT_TRUE(ranking.Refine(all, collection).replacements.empty());
}

TEST(RankingModuleTest, InLinkMetricWorks) {
  Collection collection(2);
  AllUrls all;
  Url a{0, 1, 0}, b{0, 2, 0};
  CollectionEntry ea = MakeEntry(a);
  ea.links = {b, b};
  ASSERT_TRUE(collection.Upsert(ea).ok());
  CollectionEntry eb = MakeEntry(b);
  ASSERT_TRUE(collection.Upsert(eb).ok());
  RankingModuleConfig config;
  config.metric = ImportanceMetric::kInLinks;
  RankingModule ranking(config);
  ranking.Refine(all, collection);
  EXPECT_DOUBLE_EQ(collection.Find(b)->importance, 2.0);
  EXPECT_DOUBLE_EQ(collection.Find(a)->importance, 0.0);
}

TEST(RankingModuleTest, HitsMetricRuns) {
  Collection collection(2);
  AllUrls all;
  Url a{0, 1, 0}, b{0, 2, 0};
  CollectionEntry ea = MakeEntry(a);
  ea.links = {b};
  ASSERT_TRUE(collection.Upsert(ea).ok());
  ASSERT_TRUE(collection.Upsert(MakeEntry(b)).ok());
  RankingModuleConfig config;
  config.metric = ImportanceMetric::kHitsAuthority;
  RankingModule ranking(config);
  ranking.Refine(all, collection);
  EXPECT_GT(collection.Find(b)->importance,
            collection.Find(a)->importance);
}

// ------------------------------------------------------------------- eval

TEST(EvalTest, FreshCollectionMeasuresOne) {
  simweb::WebConfig wc = TinyWeb(80);
  wc.uniform_change_interval_days = 1000.0;
  wc.uniform_lifespan_days = 1e6;
  simweb::SimulatedWeb web(wc);
  Collection collection(10);
  auto fetched = web.Fetch(web.RootUrl(0), 0.0);
  ASSERT_TRUE(fetched.ok());
  CollectionEntry e = MakeEntry(fetched->url);
  e.version = fetched->version;
  ASSERT_TRUE(collection.Upsert(e).ok());
  CollectionQuality q = MeasureCollection(web, collection, 0.0);
  EXPECT_EQ(q.size, 1u);
  EXPECT_EQ(q.fresh, 1u);
  EXPECT_DOUBLE_EQ(q.freshness, 1.0);
  EXPECT_EQ(q.dead, 0u);
}

TEST(EvalTest, StaleAndDeadDetected) {
  simweb::WebConfig wc = TinyWeb(81);
  wc.uniform_change_interval_days = 0.5;  // fast churn
  wc.uniform_lifespan_days = 5.0;
  simweb::SimulatedWeb web(wc);
  Collection collection(10);
  auto root = web.Fetch(web.RootUrl(0), 0.0);  // immortal but changes
  ASSERT_TRUE(root.ok());
  Url mortal_url = web.OracleCurrentUrl(0, 3, 0.0);
  auto mortal = web.Fetch(mortal_url, 0.0);
  ASSERT_TRUE(mortal.ok());
  CollectionEntry e1 = MakeEntry(root->url);
  e1.version = root->version;
  CollectionEntry e2 = MakeEntry(mortal->url);
  e2.version = mortal->version;
  ASSERT_TRUE(collection.Upsert(e1).ok());
  ASSERT_TRUE(collection.Upsert(e2).ok());
  // 50 days later: the root has surely changed; the mortal page died.
  CollectionQuality q = MeasureCollection(web, collection, 50.0);
  EXPECT_EQ(q.size, 2u);
  EXPECT_EQ(q.fresh, 0u);
  EXPECT_EQ(q.dead, 1u);
  EXPECT_GT(q.mean_stale_age_days, 0.0);
}

TEST(EvalTest, EmptyCollection) {
  simweb::SimulatedWeb web(TinyWeb(82));
  Collection collection(10);
  CollectionQuality q = MeasureCollection(web, collection, 0.0);
  EXPECT_DOUBLE_EQ(q.freshness, 0.0);
  EXPECT_EQ(q.size, 0u);
}

// ------------------------------------------------------ IncrementalCrawler

simweb::WebConfig MidWeb(uint64_t seed) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {4, 3, 2, 1};
  c.min_site_size = 30;
  c.max_site_size = 80;
  return c;
}

IncrementalCrawlerConfig MidCrawlerConfig(std::size_t capacity = 300) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = capacity;
  config.crawl_rate_pages_per_day = capacity / 3.0;  // sweep ~ 3 days
  config.refine_interval_days = 5.0;
  config.update.min_revisit_interval_days = 0.2;
  config.update.max_revisit_interval_days = 30.0;
  return config;
}

TEST(IncrementalCrawlerTest, RequiresBootstrap) {
  simweb::SimulatedWeb web(MidWeb(90));
  IncrementalCrawler crawler(&web, MidCrawlerConfig());
  EXPECT_FALSE(crawler.RunUntil(1.0).ok());
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  EXPECT_FALSE(crawler.Bootstrap(0.0).ok());  // only once
}

TEST(IncrementalCrawlerTest, FillsCollectionToCapacity) {
  simweb::SimulatedWeb web(MidWeb(91));
  IncrementalCrawler crawler(&web, MidCrawlerConfig(200));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(10.0).ok());
  // Within one page of capacity: a page can die between the refinement
  // pass that admitted it and the crawl that would store it.
  EXPECT_GE(crawler.collection().size(), 198u);
  EXPECT_LE(crawler.collection().size(), 200u);
  EXPECT_GT(crawler.stats().crawls, 200u);
  EXPECT_GT(crawler.all_urls().size(), crawler.collection().size());
}

TEST(IncrementalCrawlerTest, MaintainsHighFreshnessOnSlowWeb) {
  simweb::WebConfig wc = MidWeb(92);
  wc.uniform_change_interval_days = 120.0;  // paper's average page
  wc.uniform_lifespan_days = 1e6;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config = MidCrawlerConfig(250);
  config.crawl_rate_pages_per_day = 250.0 / 30.0;  // monthly sweep
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(120.0).ok());
  // Analytic expectation: ~0.88 for lambda T = 0.25. Allow sim noise.
  double avg = crawler.tracker().TimeAverage(60.0, 120.0);
  EXPECT_GT(avg, 0.80);
  EXPECT_LE(avg, 1.0);
}

TEST(IncrementalCrawlerTest, RemovesDeadPages) {
  simweb::WebConfig wc = MidWeb(93);
  wc.uniform_lifespan_days = 8.0;  // heavy churn
  simweb::SimulatedWeb web(wc);
  IncrementalCrawler crawler(&web, MidCrawlerConfig(200));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(40.0).ok());
  EXPECT_GT(crawler.stats().dead_pages_removed, 0u);
  // The collection keeps only pages that could be re-verified alive.
  CollectionQuality q = crawler.MeasureNow();
  EXPECT_LT(static_cast<double>(q.dead) / static_cast<double>(q.size),
            0.5);
}

TEST(IncrementalCrawlerTest, BringsInNewPagesQuickly) {
  simweb::WebConfig wc = MidWeb(94);
  wc.uniform_lifespan_days = 20.0;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config = MidCrawlerConfig(150);
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(60.0).ok());
  const auto& latency = crawler.stats().new_page_latency_days;
  ASSERT_GT(latency.count(), 0);
  // Average discovery-to-index latency should be well under a sweep.
  EXPECT_LT(latency.mean(), 10.0);
}

TEST(IncrementalCrawlerTest, RunsRefinementAndRebalance) {
  simweb::SimulatedWeb web(MidWeb(95));
  IncrementalCrawler crawler(&web, MidCrawlerConfig(100));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(20.0).ok());
  EXPECT_GE(crawler.ranking_module().refinement_count(), 3);
  EXPECT_GE(crawler.update_module().rebalance_count(), 19);
  // Importance was propagated to entries at some point.
  bool any_importance = false;
  crawler.collection().ForEach([&](const CollectionEntry& e) {
    any_importance |= e.importance > 0.0;
  });
  EXPECT_TRUE(any_importance);
}

TEST(IncrementalCrawlerTest, SteadySpeedNeverExceedsConfiguredRate) {
  simweb::SimulatedWeb web(MidWeb(96));
  IncrementalCrawlerConfig config = MidCrawlerConfig(200);
  config.crawl_rate_pages_per_day = 50.0;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(30.0).ok());
  EXPECT_LE(crawler.crawl_module().PeakDailyRate(), 51.0);
}

// --------------------------------------------------------- PeriodicCrawler

PeriodicCrawlerConfig MidPeriodicConfig(std::size_t capacity = 300) {
  PeriodicCrawlerConfig config;
  config.collection_capacity = capacity;
  config.cycle_days = 30.0;
  config.crawl_window_days = 7.0;
  return config;
}

TEST(PeriodicCrawlerTest, ValidatesWindow) {
  simweb::SimulatedWeb web(MidWeb(97));
  PeriodicCrawlerConfig config = MidPeriodicConfig();
  config.crawl_window_days = 60.0;  // > cycle
  PeriodicCrawler crawler(&web, config);
  EXPECT_FALSE(crawler.Bootstrap(0.0).ok());
}

TEST(PeriodicCrawlerTest, ShadowingPublishesAtCrawlEnd) {
  simweb::SimulatedWeb web(MidWeb(98));
  PeriodicCrawler crawler(&web, MidPeriodicConfig(200));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  // Mid-window: current collection still empty (shadowing shields it).
  ASSERT_TRUE(crawler.RunUntil(0.5).ok());
  EXPECT_EQ(crawler.current_collection().size(), 0u);
  ASSERT_TRUE(crawler.RunUntil(8.0).ok());
  EXPECT_EQ(crawler.current_collection().size(), 200u);
  EXPECT_EQ(crawler.cycles_completed(), 1);
  EXPECT_EQ(crawler.stats().swaps, 1u);
}

TEST(PeriodicCrawlerTest, InPlaceVisibleImmediately) {
  simweb::SimulatedWeb web(MidWeb(99));
  PeriodicCrawlerConfig config = MidPeriodicConfig(200);
  config.shadowing = false;
  PeriodicCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(0.5).ok());
  EXPECT_GT(crawler.current_collection().size(), 0u);
}

TEST(PeriodicCrawlerTest, RunsMultipleCycles) {
  simweb::SimulatedWeb web(MidWeb(100));
  PeriodicCrawler crawler(&web, MidPeriodicConfig(150));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(95.0).ok());
  EXPECT_EQ(crawler.cycles_completed(), 3);
  EXPECT_GT(crawler.stats().crawls, 3 * 150u);
}

TEST(PeriodicCrawlerTest, BatchPeakExceedsSteadyPeakAtSameAverage) {
  // The paper's Section 4 argument for steady crawlers: same pages per
  // month, lower peak load.
  simweb::SimulatedWeb web1(MidWeb(101));
  PeriodicCrawlerConfig batch = MidPeriodicConfig(200);
  batch.crawl_window_days = 5.0;
  PeriodicCrawler batch_crawler(&web1, batch);
  ASSERT_TRUE(batch_crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(batch_crawler.RunUntil(60.0).ok());

  simweb::SimulatedWeb web2(MidWeb(101));
  PeriodicCrawlerConfig steady = MidPeriodicConfig(200);
  steady.crawl_window_days = steady.cycle_days;  // steady mode
  PeriodicCrawler steady_crawler(&web2, steady);
  ASSERT_TRUE(steady_crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(steady_crawler.RunUntil(60.0).ok());

  EXPECT_GT(batch_crawler.crawl_module().PeakDailyRate(),
            3.0 * steady_crawler.crawl_module().PeakDailyRate());
}

TEST(PeriodicCrawlerTest, FreshnessSampledOverTime) {
  simweb::SimulatedWeb web(MidWeb(102));
  PeriodicCrawler crawler(&web, MidPeriodicConfig(150));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(40.0).ok());
  EXPECT_GT(crawler.tracker().size(), 100u);
  EXPECT_GT(crawler.tracker().MaxValue(), 0.0);
}

}  // namespace
}  // namespace webevo::crawler
