#include <cmath>

#include <gtest/gtest.h>

#include "freshness/analytic.h"
#include "freshness/freshness_tracker.h"
#include "freshness/revisit_optimizer.h"

namespace webevo::freshness {
namespace {

// Paper parameters: pages change every 4 months; cycle T = 1 month;
// batch window w = 1 week = T/4. Time unit here: months.
constexpr double kLambda = 0.25;  // 1 / (4 months)
constexpr double kPeriod = 1.0;
constexpr double kWeek = 0.25;

// ---------------------------------------------------------- closed forms

TEST(AnalyticTest, Table2InPlaceCell) {
  // Table 2: steady & batch with in-place updates = 0.88.
  EXPECT_NEAR(InPlaceFreshness(kLambda, kPeriod), 0.88, 0.005);
}

TEST(AnalyticTest, Table2SteadyShadowingCell) {
  // Table 2: steady with shadowing = 0.77.
  EXPECT_NEAR(SteadyShadowingFreshness(kLambda, kPeriod), 0.78, 0.01);
}

TEST(AnalyticTest, Table2BatchShadowingCell) {
  // Table 2: batch-mode with shadowing = 0.86.
  EXPECT_NEAR(BatchShadowingFreshness(kLambda, kPeriod, kWeek), 0.86,
              0.005);
}

TEST(AnalyticTest, SensitivityScenarioFromSection4) {
  // "pages change every month, batch crawler operates the first two
  // weeks": in-place 0.63, shadowing 0.50.
  EXPECT_NEAR(InPlaceFreshness(1.0, 1.0), 0.63, 0.005);
  EXPECT_NEAR(BatchShadowingFreshness(1.0, 1.0, 0.5), 0.50, 0.005);
}

TEST(AnalyticTest, ZeroRatePagesAlwaysFresh) {
  EXPECT_DOUBLE_EQ(InPlaceFreshness(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(SteadyShadowingFreshness(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BatchShadowingFreshness(0.0, 1.0, 0.25), 1.0);
}

TEST(AnalyticTest, FreshnessDecreasesWithChangeRate) {
  double prev = 1.0;
  for (double lambda : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    double f = InPlaceFreshness(lambda, 1.0);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(AnalyticTest, ShadowingNeverBeatsInPlace) {
  for (double lambda : {0.05, 0.25, 1.0, 3.0}) {
    for (double w : {0.1, 0.25, 0.5, 1.0}) {
      EXPECT_LE(BatchShadowingFreshness(lambda, 1.0, w),
                InPlaceFreshness(lambda, 1.0) + 1e-12);
    }
    EXPECT_LE(SteadyShadowingFreshness(lambda, 1.0),
              InPlaceFreshness(lambda, 1.0) + 1e-12);
  }
}

TEST(AnalyticTest, BatchShadowingBeatsSteadyShadowing) {
  // The paper's Section 4 conclusion: shadowing costs a steady crawler
  // much more than a batch crawler (0.77 vs 0.86).
  EXPECT_GT(BatchShadowingFreshness(kLambda, kPeriod, kWeek),
            SteadyShadowingFreshness(kLambda, kPeriod));
}

TEST(AnalyticTest, BatchShadowingApproachesSteadyAsWindowGrows) {
  // At w = T, batch + shadowing degenerates to steady + shadowing.
  EXPECT_NEAR(BatchShadowingFreshness(kLambda, kPeriod, kPeriod),
              SteadyShadowingFreshness(kLambda, kPeriod), 1e-12);
}

TEST(AnalyticTest, SmallLambdaStableNumerically) {
  double f = InPlaceFreshness(1e-12, 1.0);
  EXPECT_GT(f, 1.0 - 1e-9);
  EXPECT_LE(f, 1.0);
}

TEST(AnalyticTest, InPlaceAgeMatchesClosedForm) {
  // Sanity limits: age -> 0 as lambda -> 0; age -> T/2 as lambda -> inf.
  EXPECT_NEAR(InPlaceAge(1e-9, 30.0), 0.0, 1e-6);
  EXPECT_NEAR(InPlaceAge(1000.0, 30.0), 15.0, 0.01);
  // Mid-range hand check: T = 1, lambda = 1:
  // 0.5 - 1 + (1 - e^-1) = 0.1321.
  EXPECT_NEAR(InPlaceAge(1.0, 1.0), 0.5 - 1.0 + (1.0 - std::exp(-1.0)),
              1e-12);
}

// ------------------------------------------------------------- the curves

CurveSpec PaperSpec() {
  CurveSpec spec;
  spec.lambda = kLambda;
  spec.period = kPeriod;
  spec.crawl_window = kWeek;
  spec.horizon = 6.0;  // 6 cycles
  spec.samples = 2401;
  return spec;
}

TEST(CurveTest, ValidatesSpec) {
  CurveSpec bad = PaperSpec();
  bad.period = 0.0;
  EXPECT_FALSE(BatchInPlaceCurve(bad).ok());
  bad = PaperSpec();
  bad.crawl_window = 2.0 * bad.period;
  EXPECT_FALSE(BatchInPlaceCurve(bad).ok());
  bad = PaperSpec();
  bad.samples = 1;
  EXPECT_FALSE(SteadyInPlaceCurve(bad).ok());
  bad = PaperSpec();
  bad.lambda = -1.0;
  EXPECT_FALSE(SteadyInPlaceCurve(bad).ok());
}

TEST(CurveTest, AllCurvesBoundedInUnitInterval) {
  CurveSpec spec = PaperSpec();
  spec.lambda = 2.0;  // high rate exaggerates the shapes (like Fig 7)
  for (auto curve :
       {BatchInPlaceCurve(spec), SteadyInPlaceCurve(spec),
        SteadyShadowingCurve(spec, CurveKind::kCurrentCollection),
        SteadyShadowingCurve(spec, CurveKind::kCrawlerCollection),
        BatchShadowingCurve(spec, CurveKind::kCurrentCollection),
        BatchShadowingCurve(spec, CurveKind::kCrawlerCollection)}) {
    ASSERT_TRUE(curve.ok());
    for (double f : curve->freshness) {
      EXPECT_GE(f, -1e-12);
      EXPECT_LE(f, 1.0 + 1e-12);
    }
  }
}

TEST(CurveTest, SteadyInPlaceIsFlatAfterWarmup) {
  auto curve = SteadyInPlaceCurve(PaperSpec());
  ASSERT_TRUE(curve.ok());
  // Figure 7(b): the steady crawler's freshness is stable over time.
  double expected = InPlaceFreshness(kLambda, kPeriod);
  for (std::size_t i = 0; i < curve->time.size(); ++i) {
    if (curve->time[i] < kPeriod) continue;  // warm-up sweep
    EXPECT_NEAR(curve->freshness[i], expected, 1e-9);
  }
}

TEST(CurveTest, BatchInPlaceSawtoothAndAverage) {
  CurveSpec spec = PaperSpec();
  auto curve = BatchInPlaceCurve(spec);
  ASSERT_TRUE(curve.ok());
  // Figure 7(a): rises in the grey (crawl) region, decays in the white.
  // Check across a steady-state cycle [2T, 3T).
  double start_window = CurveTimeAverage(*curve, 2.0, 2.0 + kWeek);
  double end_idle = CurveTimeAverage(*curve, 2.9, 3.0);
  EXPECT_GT(start_window, end_idle);
  // Time-average equals the in-place closed form (the paper's claim
  // that batch and steady tie on average).
  double avg = CurveTimeAverage(*curve, 1.0, 6.0);
  EXPECT_NEAR(avg, InPlaceFreshness(kLambda, kPeriod), 0.002);
}

TEST(CurveTest, SteadyAndBatchTieOnAverageAcrossRates) {
  // The equal-average-freshness theorem, checked numerically across a
  // sweep of change rates.
  for (double lambda : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    CurveSpec spec = PaperSpec();
    spec.lambda = lambda;
    auto batch = BatchInPlaceCurve(spec);
    auto steady = SteadyInPlaceCurve(spec);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(steady.ok());
    EXPECT_NEAR(CurveTimeAverage(*batch, 1.0, 6.0),
                CurveTimeAverage(*steady, 1.0, 6.0), 0.004)
        << "lambda=" << lambda;
  }
}

TEST(CurveTest, SteadyShadowCrawlerGrowsFromZeroEachCycle) {
  auto curve =
      SteadyShadowingCurve(PaperSpec(), CurveKind::kCrawlerCollection);
  ASSERT_TRUE(curve.ok());
  // Just after each cycle boundary freshness restarts near zero
  // (Figure 8(a) top).
  for (double boundary : {1.0, 2.0, 3.0}) {
    double just_after = CurveTimeAverage(*curve, boundary, boundary + 0.02);
    EXPECT_LT(just_after, 0.05) << "cycle at " << boundary;
  }
}

TEST(CurveTest, SteadyShadowingAverageMatchesClosedForm) {
  auto curve =
      SteadyShadowingCurve(PaperSpec(), CurveKind::kCurrentCollection);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(CurveTimeAverage(*curve, 1.0, 6.0),
              SteadyShadowingFreshness(kLambda, kPeriod), 0.002);
}

TEST(CurveTest, BatchShadowingAverageMatchesClosedForm) {
  auto curve =
      BatchShadowingCurve(PaperSpec(), CurveKind::kCurrentCollection);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(CurveTimeAverage(*curve, 1.0, 6.0),
              BatchShadowingFreshness(kLambda, kPeriod, kWeek), 0.002);
}

TEST(CurveTest, ShadowingCurrentCollectionEmptyBeforeFirstSwap) {
  auto steady =
      SteadyShadowingCurve(PaperSpec(), CurveKind::kCurrentCollection);
  ASSERT_TRUE(steady.ok());
  EXPECT_DOUBLE_EQ(steady->freshness.front(), 0.0);
  auto batch =
      BatchShadowingCurve(PaperSpec(), CurveKind::kCurrentCollection);
  ASSERT_TRUE(batch.ok());
  EXPECT_DOUBLE_EQ(batch->freshness.front(), 0.0);
}

TEST(CurveTest, InPlaceDashedLineDominatesShadowedSteady) {
  // Figure 8(a): "the dashed line is always higher than the solid
  // curve" — in-place beats shadowing for the steady crawler at every
  // post-warm-up instant on cycle average.
  CurveSpec spec = PaperSpec();
  auto shadowed =
      SteadyShadowingCurve(spec, CurveKind::kCurrentCollection);
  ASSERT_TRUE(shadowed.ok());
  double inplace = InPlaceFreshness(kLambda, kPeriod);
  for (std::size_t i = 0; i < shadowed->time.size(); ++i) {
    EXPECT_LE(shadowed->freshness[i], inplace + 1e-9);
  }
}

// --------------------------------------------------------- the optimizer

TEST(OptimizerTest, FreshnessAtLimits) {
  EXPECT_DOUBLE_EQ(RevisitOptimizer::FreshnessAt(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(RevisitOptimizer::FreshnessAt(1.0, 0.0), 0.0);
  // Very fast revisiting of a slow page: freshness -> 1.
  EXPECT_NEAR(RevisitOptimizer::FreshnessAt(0.01, 100.0), 1.0, 1e-4);
  // f = lambda: F = 1 - e^-1.
  EXPECT_NEAR(RevisitOptimizer::FreshnessAt(1.0, 1.0),
              1.0 - std::exp(-1.0), 1e-12);
}

TEST(OptimizerTest, ValidatesInput) {
  EXPECT_FALSE(RevisitOptimizer::Optimize({}, 1.0).ok());
  EXPECT_FALSE(
      RevisitOptimizer::Optimize({{1.0, 1.0}}, 0.0).ok());
  EXPECT_FALSE(
      RevisitOptimizer::Optimize({{-1.0, 1.0}}, 1.0).ok());
  EXPECT_FALSE(
      RevisitOptimizer::Optimize({{1.0, 0.0}}, 1.0).ok());
}

TEST(OptimizerTest, BudgetIsExactlySpent) {
  std::vector<RateGroup> groups = {
      {0.01, 100.0}, {0.1, 50.0}, {1.0, 20.0}, {5.0, 5.0}};
  const double budget = 60.0;
  auto alloc = RevisitOptimizer::Optimize(groups, budget);
  ASSERT_TRUE(alloc.ok());
  double spent = 0.0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    spent += groups[i].weight * alloc->frequency[i];
  }
  EXPECT_NEAR(spent, budget, budget * 1e-6);
}

TEST(OptimizerTest, Figure9ShapeRisesThenFalls) {
  // Build a dense grid of rates with equal weights and check the
  // optimal frequency curve is unimodal: increasing, then decreasing
  // to zero — the paper's Figure 9.
  std::vector<RateGroup> groups;
  for (double rate = 0.01; rate <= 20.0; rate *= 1.3) {
    groups.push_back({rate, 1.0});
  }
  auto alloc = RevisitOptimizer::Optimize(groups, 5.0);
  ASSERT_TRUE(alloc.ok());
  const auto& f = alloc->frequency;
  // Find the peak.
  std::size_t peak = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i] > f[peak]) peak = i;
  }
  EXPECT_GT(peak, 0u);
  EXPECT_LT(peak, f.size() - 1);
  for (std::size_t i = 1; i <= peak; ++i) {
    EXPECT_GE(f[i], f[i - 1] - 1e-9) << "should rise before the peak";
  }
  for (std::size_t i = peak + 1; i < f.size(); ++i) {
    EXPECT_LE(f[i], f[i - 1] + 1e-9) << "should fall after the peak";
  }
  // Fast-changing tail is abandoned entirely (f = 0).
  EXPECT_DOUBLE_EQ(f.back(), 0.0);
}

TEST(OptimizerTest, OptimalBeatsUniformBeatsNothing) {
  std::vector<RateGroup> groups = {
      {0.005, 400.0}, {0.05, 300.0}, {0.3, 200.0}, {2.0, 100.0}};
  const double budget = 100.0;
  auto optimal = RevisitOptimizer::Optimize(groups, budget);
  auto uniform = RevisitOptimizer::Uniform(groups, budget);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(uniform.ok());
  EXPECT_GE(optimal->freshness, uniform->freshness);
  EXPECT_GT(uniform->freshness, 0.0);
}

TEST(OptimizerTest, OptimalGainInPapersReportedRange) {
  // [CGM99b] (cited in Section 4): optimising revisit frequencies buys
  // 10%-23% freshness over the baseline. With a heavy-tailed rate mix
  // like the measured web, our solver's gain over uniform must land in
  // that ballpark (we accept 5%-40% for the synthetic mix).
  std::vector<RateGroup> groups = {
      {1.0, 23.0},           // daily changers (Fig 2a first bar)
      {1.0 / 3.5, 15.0},     // ~ every few days
      {1.0 / 15.0, 16.0},    // weekly-monthly
      {1.0 / 60.0, 16.0},    // monthly-4mo
      {1.0 / 400.0, 30.0}};  // effectively static
  const double budget = 100.0 / 30.0;  // everything once a month
  auto optimal = RevisitOptimizer::Optimize(groups, budget);
  auto uniform = RevisitOptimizer::Uniform(groups, budget);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(uniform.ok());
  double gain = optimal->freshness / uniform->freshness - 1.0;
  EXPECT_GT(gain, 0.05);
  EXPECT_LT(gain, 0.40);
}

TEST(OptimizerTest, ProportionalCanLoseToUniform) {
  // The paper's p1/p2 example generalised: with one page changing every
  // day and one every "second" (here: 100x faster), proportional pours
  // budget into the hopeless page.
  std::vector<RateGroup> groups = {{1.0, 1.0}, {100.0, 1.0}};
  const double budget = 1.0;  // one visit/day total
  auto uniform = RevisitOptimizer::Uniform(groups, budget);
  auto proportional = RevisitOptimizer::Proportional(groups, budget);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(proportional.ok());
  EXPECT_LT(proportional->freshness, uniform->freshness);
}

TEST(OptimizerTest, AllStaticPagesNeedNoVisits) {
  std::vector<RateGroup> groups = {{0.0, 10.0}, {0.0, 5.0}};
  auto alloc = RevisitOptimizer::Optimize(groups, 3.0);
  ASSERT_TRUE(alloc.ok());
  EXPECT_DOUBLE_EQ(alloc->freshness, 1.0);
  for (double f : alloc->frequency) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(OptimizerTest, FrequencyAtMultiplierConsistentWithAllocation) {
  std::vector<RateGroup> groups = {{0.05, 10.0}, {0.5, 10.0}};
  auto alloc = RevisitOptimizer::Optimize(groups, 5.0);
  ASSERT_TRUE(alloc.ok());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_NEAR(RevisitOptimizer::FrequencyAtMultiplier(
                    groups[i].rate, alloc->multiplier),
                alloc->frequency[i], 1e-9);
  }
}

TEST(OptimizerTest, EvaluateFreshnessValidates) {
  std::vector<RateGroup> groups = {{0.1, 1.0}};
  EXPECT_FALSE(
      RevisitOptimizer::EvaluateFreshness(groups, {0.1, 0.2}).ok());
  auto f = RevisitOptimizer::EvaluateFreshness(groups, {1.0});
  ASSERT_TRUE(f.ok());
  EXPECT_GT(*f, 0.9);
}

// ------------------------------------------------------------- the tracker

TEST(TrackerTest, TimeAverageOfConstantSeries) {
  FreshnessTracker tracker;
  for (int i = 0; i <= 10; ++i) tracker.AddSample(i, 0.5);
  EXPECT_NEAR(tracker.TimeAverage(), 0.5, 1e-12);
  EXPECT_NEAR(tracker.TimeAverage(2.0, 7.0), 0.5, 1e-12);
}

TEST(TrackerTest, TimeAverageOfLinearRamp) {
  FreshnessTracker tracker;
  for (int i = 0; i <= 100; ++i) tracker.AddSample(i, i / 100.0);
  EXPECT_NEAR(tracker.TimeAverage(), 0.5, 1e-9);
  EXPECT_NEAR(tracker.TimeAverage(0.0, 50.0), 0.25, 1e-9);
}

TEST(TrackerTest, DropsBackwardsSamples) {
  FreshnessTracker tracker;
  tracker.AddSample(5.0, 1.0);
  tracker.AddSample(3.0, 0.0);  // ignored
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(TrackerTest, MinMaxAndClear) {
  FreshnessTracker tracker;
  tracker.AddSample(0.0, 0.2);
  tracker.AddSample(1.0, 0.9);
  tracker.AddSample(2.0, 0.4);
  EXPECT_DOUBLE_EQ(tracker.MinValue(), 0.2);
  EXPECT_DOUBLE_EQ(tracker.MaxValue(), 0.9);
  tracker.Clear();
  EXPECT_TRUE(tracker.empty());
  EXPECT_DOUBLE_EQ(tracker.TimeAverage(), 0.0);
}

TEST(TrackerTest, EmptyRangeGivesZero) {
  FreshnessTracker tracker;
  tracker.AddSample(0.0, 1.0);
  tracker.AddSample(1.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker.TimeAverage(5.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.TimeAverage(3.0, 2.0), 0.0);
}

}  // namespace
}  // namespace webevo::freshness
