// Incremental (base + delta-log) checkpoint tests: restoring the base
// image plus sealed delta segments must be byte-identical to restoring
// a full checkpoint taken at the same batch, at every shard count; the
// delta log must tolerate a torn tail; a restarted process must rebase
// on its first checkpoint; and the optional traffic section must make
// a resumed run's accounting cover the whole crawl.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "crawler/crawl_module_pool.h"
#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "storage/delta_log.h"

namespace webevo::crawler {
namespace {

simweb::WebConfig SmallWeb() {
  simweb::WebConfig config = simweb::WebConfig().Scaled(0.03);
  config.seed = 20260731;
  config.min_site_size = 10;
  config.max_site_size = 40;
  return config;
}

IncrementalCrawlerConfig IncConfig(int parallelism) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = 200;
  config.crawl_rate_pages_per_day = 120.0;
  config.crawl_parallelism = parallelism;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  config.checkpoint_incremental = true;  // arms delta tracking
  return config;
}

std::string CheckpointBytes(const IncrementalCrawler& crawler,
                            bool module_traffic = false) {
  CrawlerCheckpointOptions options;
  options.module_traffic = module_traffic;
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  return static_cast<std::size_t>(in.tellg());
}

// The headline guarantee: checkpoint incrementally at days 4, 6 and 8;
// a fresh process restored from base + sealed deltas must be
// byte-identical to one restored from a *full* checkpoint taken at
// day 8 — and to the never-stopped run — at N = 1 and N = 8.
TEST(IncrementalCheckpointTest, BaseAndDeltasMatchFullRestore) {
  for (int shards : {1, 8}) {
    const std::string inc_path =
        TempPath("inc_match_" + std::to_string(shards) + ".ckpt");
    const std::string full_path =
        TempPath("full_match_" + std::to_string(shards) + ".ckpt");

    simweb::SimulatedWeb web_a(SmallWeb());
    IncrementalCrawler saver(&web_a, IncConfig(shards));
    ASSERT_TRUE(saver.Bootstrap(0.0).ok());
    for (double day : {4.0, 6.0, 8.0}) {
      ASSERT_TRUE(saver.RunUntil(day).ok());
      Status ckpt = CheckpointIncremental(&saver, inc_path);
      ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
    }
    ASSERT_TRUE(SaveCrawlerToFile(saver, full_path).ok());

    // Day 4 wrote the base; days 6 and 8 appended sealed segments.
    auto log = storage::ReadDeltaLog(inc_path + ".deltas");
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ(log->segments.size(), std::size_t{2});

    simweb::SimulatedWeb web_b(SmallWeb());
    IncrementalCrawler from_deltas(&web_b, IncConfig(shards));
    Status loaded = LoadCrawlerWithDeltasFromFile(inc_path, &from_deltas);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();

    simweb::SimulatedWeb web_c(SmallWeb());
    IncrementalCrawler from_full(&web_c, IncConfig(shards));
    ASSERT_TRUE(LoadCrawlerFromFile(full_path, &from_full).ok());

    EXPECT_DOUBLE_EQ(from_deltas.now(), saver.now());
    EXPECT_EQ(CheckpointBytes(from_deltas), CheckpointBytes(from_full))
        << "base+deltas restore diverged from full restore at N="
        << shards;

    // And both keep tracking the never-stopped run.
    ASSERT_TRUE(from_deltas.RunUntil(10.0).ok());
    ASSERT_TRUE(from_full.RunUntil(10.0).ok());
    ASSERT_TRUE(saver.RunUntil(10.0).ok());
    EXPECT_EQ(CheckpointBytes(from_deltas), CheckpointBytes(saver));
    EXPECT_EQ(CheckpointBytes(from_full), CheckpointBytes(saver));
  }
}

// Segments are canonical like full checkpoints: the delta log written
// by an N = 8 run is byte-identical to the one written by an N = 1 run
// checkpointing at the same days.
TEST(IncrementalCheckpointTest, DeltaLogIsCanonicalAcrossShardCounts) {
  std::string want_base;
  std::string want_deltas;
  for (int shards : {1, 8}) {
    const std::string path =
        TempPath("inc_canon_" + std::to_string(shards) + ".ckpt");
    simweb::SimulatedWeb web(SmallWeb());
    IncrementalCrawler crawler(&web, IncConfig(shards));
    ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
    for (double day : {3.0, 5.0, 7.0}) {
      ASSERT_TRUE(crawler.RunUntil(day).ok());
      ASSERT_TRUE(CheckpointIncremental(&crawler, path).ok());
    }
    std::ifstream base_in(path, std::ios::binary);
    std::ostringstream base;
    base << base_in.rdbuf();
    std::ifstream deltas_in(path + ".deltas", std::ios::binary);
    std::ostringstream deltas;
    deltas << deltas_in.rdbuf();
    if (want_base.empty()) {
      want_base = base.str();
      want_deltas = deltas.str();
      ASSERT_FALSE(want_deltas.empty());
    } else {
      EXPECT_EQ(base.str(), want_base);
      EXPECT_EQ(deltas.str(), want_deltas);
    }
  }
}

// O(dirty): once the collection is full and the run is steady, a
// per-checkpoint delta segment is a small fraction of the full image
// (the acceptance bound is < 20% on a < 10%-dirty workload; the
// closely-spaced checkpoints here dirty far less than that). Measured
// without the web section — the freshness oracle's lazy change-process
// sampling legitimately advances (dirties) nearly every site between
// samples, so the web delta tracks oracle traffic, not crawl traffic;
// same-process checkpoints skip the web exactly as snapshot.h
// documents.
TEST(IncrementalCheckpointTest, DeltaSegmentsAreSmall) {
  const std::string path = TempPath("inc_small.ckpt");
  CrawlerCheckpointOptions options;
  options.include_web = false;
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawler crawler(&web, IncConfig(2));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  // Reach capacity / steady state, then rebase.
  ASSERT_TRUE(crawler.RunUntil(6.0).ok());
  ASSERT_TRUE(CheckpointIncremental(&crawler, path, options).ok());
  const std::size_t base_bytes = FileBytes(path);
  ASSERT_GT(base_bytes, std::size_t{0});

  // A quarter-day of steady crawling dirties only the pages touched.
  ASSERT_TRUE(crawler.RunUntil(6.25).ok());
  ASSERT_TRUE(CheckpointIncremental(&crawler, path, options).ok());
  const std::size_t delta_bytes = FileBytes(path + ".deltas");
  ASSERT_GT(delta_bytes, std::size_t{0});
  EXPECT_LT(delta_bytes * 5, base_bytes)
      << "delta segment is " << delta_bytes << "B against a "
      << base_bytes << "B base — not O(dirty)";
}

// Crash between WAL append and seal: a torn (unsealed) tail after the
// last sealed segment is ignored, and the restore equals the one from
// the intact log.
TEST(IncrementalCheckpointTest, TornTailIsIgnoredOnResume) {
  const std::string path = TempPath("inc_torn.ckpt");
  simweb::SimulatedWeb web_a(SmallWeb());
  IncrementalCrawler saver(&web_a, IncConfig(2));
  ASSERT_TRUE(saver.Bootstrap(0.0).ok());
  for (double day : {4.0, 6.0}) {
    ASSERT_TRUE(saver.RunUntil(day).ok());
    ASSERT_TRUE(CheckpointIncremental(&saver, path).ok());
  }

  simweb::SimulatedWeb web_b(SmallWeb());
  IncrementalCrawler intact(&web_b, IncConfig(2));
  ASSERT_TRUE(LoadCrawlerWithDeltasFromFile(path, &intact).ok());
  const std::string want = CheckpointBytes(intact);

  // Append the first half of a would-be next segment, unsealed.
  storage::DeltaSegment next;
  next.kind = "incremental";
  next.batch = 1u << 20;
  next.sections.push_back(storage::DeltaSection{"meta", "torn bytes"});
  const std::string encoded = storage::EncodeDeltaSegment(next);
  {
    std::ofstream out(path + ".deltas",
                      std::ios::binary | std::ios::app);
    out.write(encoded.data(),
              static_cast<std::streamsize>(encoded.size() / 2));
  }

  simweb::SimulatedWeb web_c(SmallWeb());
  IncrementalCrawler resumed(&web_c, IncConfig(2));
  Status loaded = LoadCrawlerWithDeltasFromFile(path, &resumed);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_EQ(CheckpointBytes(resumed), want);
}

// A restarted process must not append to a delta chain whose dirty
// baseline it no longer knows: the first checkpoint after a restore
// rewrites the base and truncates the log.
TEST(IncrementalCheckpointTest, FirstCheckpointAfterRestoreRebases) {
  const std::string path = TempPath("inc_rebase.ckpt");
  simweb::SimulatedWeb web_a(SmallWeb());
  IncrementalCrawler saver(&web_a, IncConfig(2));
  ASSERT_TRUE(saver.Bootstrap(0.0).ok());
  for (double day : {4.0, 6.0}) {
    ASSERT_TRUE(saver.RunUntil(day).ok());
    ASSERT_TRUE(CheckpointIncremental(&saver, path).ok());
  }
  ASSERT_EQ(storage::ReadDeltaLog(path + ".deltas")->segments.size(),
            std::size_t{1});

  simweb::SimulatedWeb web_b(SmallWeb());
  IncrementalCrawler resumed(&web_b, IncConfig(2));
  ASSERT_TRUE(LoadCrawlerWithDeltasFromFile(path, &resumed).ok());
  ASSERT_TRUE(resumed.RunUntil(8.0).ok());
  ASSERT_TRUE(CheckpointIncremental(&resumed, path).ok());

  // Rebase: fresh base at day 8, empty delta log.
  auto log = storage::ReadDeltaLog(path + ".deltas");
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->segments.empty());

  // The rebased chain still restores to the never-stopped state.
  ASSERT_TRUE(saver.RunUntil(8.0).ok());
  simweb::SimulatedWeb web_c(SmallWeb());
  IncrementalCrawler reread(&web_c, IncConfig(2));
  ASSERT_TRUE(LoadCrawlerWithDeltasFromFile(path, &reread).ok());
  EXPECT_EQ(CheckpointBytes(reread), CheckpointBytes(saver));
}

// CheckpointIncremental is only meaningful with delta tracking armed
// (config.checkpoint_incremental); without it the dirty sets are never
// populated, so the call must refuse rather than write empty deltas.
TEST(IncrementalCheckpointTest, RequiresDeltaTracking) {
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawlerConfig config = IncConfig(1);
  config.checkpoint_incremental = false;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(2.0).ok());
  Status st = CheckpointIncremental(&crawler, TempPath("inc_refuse.ckpt"));
  EXPECT_FALSE(st.ok());
}

// The optional traffic section: with checkpoint_module_traffic, a
// resumed run's pool aggregate covers the whole crawl. The final
// checkpoints (traffic section included) must match byte-for-byte, and
// so must the derived per-day peak — even when the resumed run uses a
// different shard count, since the section carries the shard-agnostic
// pool aggregate.
TEST(IncrementalCheckpointTest, TrafficAccountingSurvivesResume) {
  simweb::SimulatedWeb web_a(SmallWeb());
  IncrementalCrawler straight(&web_a, IncConfig(2));
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(8.0).ok());
  const std::string want = CheckpointBytes(straight, /*module_traffic=*/true);

  simweb::SimulatedWeb web_b(SmallWeb());
  IncrementalCrawler first_half(&web_b, IncConfig(2));
  ASSERT_TRUE(first_half.Bootstrap(0.0).ok());
  ASSERT_TRUE(first_half.RunUntil(4.0).ok());
  const std::string mid = CheckpointBytes(first_half, /*module_traffic=*/true);

  simweb::SimulatedWeb web_c(SmallWeb());
  IncrementalCrawler resumed(&web_c, IncConfig(3));
  std::istringstream mid_in(mid);
  ASSERT_TRUE(LoadCrawler(mid_in, &resumed).ok());
  ASSERT_TRUE(resumed.RunUntil(8.0).ok());

  EXPECT_EQ(CheckpointBytes(resumed, /*module_traffic=*/true), want);
  const CrawlModulePool::Traffic straight_traffic =
      straight.engine().pool().AggregateTraffic();
  const CrawlModulePool::Traffic resumed_traffic =
      resumed.engine().pool().AggregateTraffic();
  EXPECT_EQ(resumed_traffic.fetch_count, straight_traffic.fetch_count);
  EXPECT_EQ(resumed_traffic.fetches_per_day,
            straight_traffic.fetches_per_day);
  EXPECT_DOUBLE_EQ(resumed_traffic.PeakDailyRate(),
                   straight_traffic.PeakDailyRate());
}

}  // namespace
}  // namespace webevo::crawler
