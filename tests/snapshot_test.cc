#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/snapshot.h"
#include "util/text_snapshot.h"

namespace webevo::crawler {
namespace {

using simweb::Url;

Collection MakeCollection() {
  Collection c(10);
  for (uint32_t i = 0; i < 4; ++i) {
    CollectionEntry e;
    e.url = Url{i, i * 2, 1};
    e.page = 100 + i;
    e.version = 7 * i;
    e.checksum = {0x1234 + i, 0x5678 + i};
    e.crawled_at = 3.14159 * i;
    e.importance = 0.25 * i;
    e.links = {Url{0, 1, 0}, Url{2, 3, 4}};
    EXPECT_TRUE(c.Upsert(e).ok());
  }
  return c;
}

TEST(SnapshotTest, CollectionRoundTrip) {
  Collection original = MakeCollection();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(original, buffer).ok());
  auto loaded = LoadCollection(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->capacity(), original.capacity());
  EXPECT_EQ(loaded->size(), original.size());
  original.ForEach([&](const CollectionEntry& e) {
    const CollectionEntry* got = loaded->Find(e.url);
    ASSERT_NE(got, nullptr) << e.url.ToString();
    EXPECT_EQ(got->page, e.page);
    EXPECT_EQ(got->version, e.version);
    EXPECT_EQ(got->checksum, e.checksum);
    EXPECT_DOUBLE_EQ(got->crawled_at, e.crawled_at);
    EXPECT_DOUBLE_EQ(got->importance, e.importance);
    ASSERT_EQ(got->links.size(), e.links.size());
    for (std::size_t i = 0; i < e.links.size(); ++i) {
      EXPECT_EQ(got->links[i], e.links[i]);
    }
  });
}

TEST(SnapshotTest, EmptyCollectionRoundTrip) {
  Collection empty(5);
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(empty, buffer).ok());
  auto loaded = LoadCollection(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->capacity(), 5u);
}

TEST(SnapshotTest, DetectsCorruption) {
  Collection original = MakeCollection();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(original, buffer).ok());
  std::string payload = buffer.str();
  // Flip one digit somewhere in the middle of the payload.
  std::size_t pos = payload.size() / 2;
  payload[pos] = payload[pos] == '1' ? '2' : '1';
  std::istringstream corrupted(payload);
  EXPECT_FALSE(LoadCollection(corrupted).ok());
}

TEST(SnapshotTest, DetectsTruncation) {
  Collection original = MakeCollection();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(original, buffer).ok());
  std::string payload = buffer.str();
  std::istringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_FALSE(LoadCollection(truncated).ok());
}

TEST(SnapshotTest, RejectsWrongMagicAndVersion) {
  std::istringstream wrong("webevo-allurls 1 0\nwebevo-checksum 0\n");
  EXPECT_FALSE(LoadCollection(wrong).ok());
  std::istringstream versioned("webevo-collection 99 10 0\n");
  EXPECT_FALSE(LoadCollection(versioned).ok());
}

TEST(SnapshotTest, AllUrlsRoundTrip) {
  AllUrls original;
  original.Add(Url{1, 2, 3}, 4.5);
  original.NoteInLink(Url{1, 2, 3}, 5.0);
  original.NoteInLink(Url{1, 2, 3}, 5.5);
  original.Add(Url{9, 0, 0}, 1.0);
  ASSERT_TRUE(original.MarkDead(Url{9, 0, 0}).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveAllUrls(original, buffer).ok());
  auto loaded = LoadAllUrls(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  const AllUrls::UrlInfo* a = loaded->Find(Url{1, 2, 3});
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->first_seen, 4.5);
  EXPECT_EQ(a->in_links, 2u);
  EXPECT_FALSE(a->dead);
  const AllUrls::UrlInfo* b = loaded->Find(Url{9, 0, 0});
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->dead);
}

TEST(SnapshotTest, FileRoundTrip) {
  Collection original = MakeCollection();
  std::string path = ::testing::TempDir() + "/webevo_snapshot_test.snap";
  ASSERT_TRUE(SaveCollectionToFile(original, path).ok());
  auto loaded = LoadCollectionFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_FALSE(LoadCollectionFromFile("/nonexistent/nope.snap").ok());
}

// ------------------------------------------------ UpdateModule snapshots

// Drives a module through a deterministic visit history with a few
// detected changes, so estimators, probe flags, and the RNG all leave
// their default state.
UpdateModule MakeTrainedModule(const UpdateModuleConfig& config) {
  UpdateModule module(config);
  for (uint32_t i = 0; i < 12; ++i) {
    Url url{i % 3, i, 0};
    double t = 0.0;
    module.OnCrawled(url, t, false, /*first_visit=*/true);
    for (int visit = 1; visit <= 6; ++visit) {
      t += 1.0 + 0.25 * static_cast<double>(i % 4);
      bool changed = (visit + i) % 3 == 0;
      module.OnCrawled(url, t, changed, false);
    }
    module.SetImportance(url, 0.1 * static_cast<double>(i));
  }
  module.Rebalance();
  return module;
}

TEST(SnapshotTest, UpdateModuleRoundTrip) {
  UpdateModuleConfig config;
  UpdateModule original = MakeTrainedModule(config);
  ASSERT_GT(original.tracked_pages(), 0u);
  ASSERT_GT(original.multiplier(), 0.0);

  std::stringstream buffer;
  ASSERT_TRUE(SaveUpdateModule(original, buffer).ok());
  UpdateModule restored(config);
  ASSERT_TRUE(LoadUpdateModule(buffer, &restored).ok());

  EXPECT_EQ(restored.tracked_pages(), original.tracked_pages());
  EXPECT_EQ(restored.rebalance_count(), original.rebalance_count());
  EXPECT_EQ(restored.multiplier(), original.multiplier());
  for (uint32_t i = 0; i < 12; ++i) {
    Url url{i % 3, i, 0};
    EXPECT_EQ(restored.EstimatedRate(url), original.EstimatedRate(url))
        << url.ToString();
  }
  // The restored module must *continue* exactly like the original —
  // same schedules, same probe coin flips — which is the "no relearning
  // after restart" property the snapshot exists for.
  for (int visit = 0; visit < 20; ++visit) {
    Url url{static_cast<uint32_t>(visit) % 3,
            static_cast<uint32_t>(visit) % 12, 0};
    double t = 10.0 + static_cast<double>(visit);
    bool changed = visit % 4 == 0;
    EXPECT_EQ(original.OnCrawled(url, t, changed, false),
              restored.OnCrawled(url, t, changed, false))
        << "visit " << visit;
  }
}

TEST(SnapshotTest, UpdateModuleSiteLevelRoundTrip) {
  UpdateModuleConfig config;
  config.site_level_stats = true;
  config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule original = MakeTrainedModule(config);

  std::stringstream buffer;
  ASSERT_TRUE(SaveUpdateModule(original, buffer).ok());
  UpdateModule restored(config);
  ASSERT_TRUE(LoadUpdateModule(buffer, &restored).ok());
  for (uint32_t i = 0; i < 12; ++i) {
    Url url{i % 3, i, 0};
    EXPECT_EQ(restored.EstimatedRate(url), original.EstimatedRate(url));
  }
}

TEST(SnapshotTest, UpdateModuleRejectsEstimatorKindMismatch) {
  UpdateModuleConfig bayes;  // default kind: EB
  UpdateModule original = MakeTrainedModule(bayes);
  std::stringstream buffer;
  ASSERT_TRUE(SaveUpdateModule(original, buffer).ok());

  UpdateModuleConfig ratio = bayes;
  ratio.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule wrong_kind(ratio);
  Status st = LoadUpdateModule(buffer, &wrong_kind);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, UpdateModuleDetectsCorruption) {
  UpdateModuleConfig config;
  UpdateModule original = MakeTrainedModule(config);
  std::stringstream buffer;
  ASSERT_TRUE(SaveUpdateModule(original, buffer).ok());
  std::string payload = buffer.str();
  std::size_t pos = payload.size() / 2;
  payload[pos] = payload[pos] == '3' ? '4' : '3';
  std::istringstream corrupted(payload);
  UpdateModule restored(config);
  EXPECT_FALSE(LoadUpdateModule(corrupted, &restored).ok());
}

// ------------------------------------------------- frontier snapshots

// Builds a frontier with a mix of scheduled, front-inserted, removed
// and rescheduled URLs, so the snapshot has to carry exact (when, seq)
// keys and the global counters to reproduce the pop order.
ShardedFrontier MakeBusyFrontier(int shards) {
  ShardedFrontier frontier(shards);
  for (uint32_t i = 0; i < 60; ++i) {
    Url url{i % 7, i, 0};
    frontier.Schedule(url, static_cast<double>((i * 13) % 20));
  }
  for (uint32_t i = 0; i < 10; ++i) {
    frontier.ScheduleFront(Url{i % 7, 100 + i, 0});
  }
  for (uint32_t i = 0; i < 60; i += 5) {
    Status st = frontier.Remove(Url{i % 7, i, 0});
    (void)st;
  }
  for (uint32_t i = 1; i < 60; i += 7) {
    frontier.Schedule(Url{i % 7, i, 0}, 2.5);  // reschedule, ties on 2.5
  }
  return frontier;
}

TEST(SnapshotTest, FrontierRoundTripPopsBitIdentically) {
  ShardedFrontier original = MakeBusyFrontier(3);
  std::stringstream buffer;
  ASSERT_TRUE(SaveFrontier(original, buffer).ok());

  // Restore at several shard counts: the snapshot is shard-agnostic
  // and the pop order (URLs, times — front keys included — and the
  // FIFO tie-breaks) must match the original bit for bit.
  for (int shards : {1, 3, 8}) {
    std::istringstream in(buffer.str());
    auto restored = LoadFrontier(in, shards);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->num_shards(), shards);
    EXPECT_EQ(restored->size(), original.size());
    ShardedFrontier reference = original;  // drain a copy
    while (true) {
      auto want = reference.Pop();
      auto got = restored->Pop();
      ASSERT_EQ(want.has_value(), got.has_value()) << "shards=" << shards;
      if (!want.has_value()) break;
      EXPECT_EQ(want->url, got->url) << "shards=" << shards;
      EXPECT_EQ(want->when, got->when);
    }
  }
}

TEST(SnapshotTest, FrontierRoundTripKeepsGlobalCounters) {
  // Post-restore scheduling must continue the global FIFO: a new
  // front-insert on the restored frontier may not collide with (or
  // jump ahead of) the saved ones.
  ShardedFrontier original(2);
  original.ScheduleFront(Url{0, 1, 0});
  original.ScheduleFront(Url{1, 2, 0});
  std::stringstream buffer;
  ASSERT_TRUE(SaveFrontier(original, buffer).ok());
  auto restored = LoadFrontier(buffer, 2);
  ASSERT_TRUE(restored.ok());
  restored->ScheduleFront(Url{0, 3, 0});
  EXPECT_EQ(restored->Pop()->url, (Url{0, 1, 0}));
  EXPECT_EQ(restored->Pop()->url, (Url{1, 2, 0}));
  EXPECT_EQ(restored->Pop()->url, (Url{0, 3, 0}));
  EXPECT_FALSE(restored->Pop().has_value());
}

TEST(SnapshotTest, FrontierDetectsCorruptionAndTruncation) {
  ShardedFrontier original = MakeBusyFrontier(4);
  std::stringstream buffer;
  ASSERT_TRUE(SaveFrontier(original, buffer).ok());
  std::string payload = buffer.str();
  std::string corrupted_payload = payload;
  std::size_t pos = corrupted_payload.size() / 2;
  corrupted_payload[pos] = corrupted_payload[pos] == '3' ? '4' : '3';
  std::istringstream corrupted(corrupted_payload);
  EXPECT_FALSE(LoadFrontier(corrupted, 4).ok());
  std::istringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_FALSE(LoadFrontier(truncated, 4).ok());
  std::istringstream wrong("webevo-collection 1 10 0\n");
  EXPECT_FALSE(LoadFrontier(wrong, 4).ok());
}

// --------------------------------------------- sharded collection load

TEST(SnapshotTest, ShardedCollectionRoundTrip) {
  Collection original = MakeCollection();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(original, buffer).ok());
  auto loaded = LoadShardedCollection(buffer, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->capacity(), original.capacity());
  EXPECT_EQ(loaded->size(), original.size());
  original.ForEach([&](const CollectionEntry& e) {
    const CollectionEntry* got = loaded->Find(e.url);
    ASSERT_NE(got, nullptr) << e.url.ToString();
    EXPECT_EQ(got->checksum, e.checksum);
  });
  // Same logical state saved through either class produces the same
  // bytes: records are canonically ordered, never shard-ordered.
  std::stringstream again;
  ASSERT_TRUE(SaveCollection(*loaded, again).ok());
  EXPECT_EQ(again.str(), buffer.str());
}

// ------------------------------------------------- reader strictness

// Builds a snapshot with a *valid* trailer over arbitrary payload
// lines (through the shared TrailerWriter, so the framing can never
// drift from production), so the tests below exercise the record
// parsers rather than the integrity check.
std::string FramedSnapshot(const std::vector<std::string>& lines) {
  std::ostringstream out;
  TrailerWriter writer(out);
  for (const std::string& line : lines) writer.Line(line);
  writer.Finish();
  return out.str();
}

TEST(SnapshotTest, RejectsTrailingDataAfterTrailer) {
  Collection original = MakeCollection();
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(original, buffer).ok());
  std::istringstream appended(buffer.str() + "stray bytes\n");
  Status st = LoadCollection(appended).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  AllUrls urls;
  urls.Add(Url{1, 2, 3}, 4.5);
  std::stringstream ubuffer;
  ASSERT_TRUE(SaveAllUrls(urls, ubuffer).ok());
  std::istringstream uappended(ubuffer.str() + "x");
  EXPECT_FALSE(LoadAllUrls(uappended).ok());

  ShardedFrontier frontier(2);
  frontier.Schedule(Url{0, 1, 0}, 1.0);
  std::stringstream fbuffer;
  ASSERT_TRUE(SaveFrontier(frontier, fbuffer).ok());
  std::istringstream fappended(fbuffer.str() + "x");
  EXPECT_FALSE(LoadFrontier(fappended, 2).ok());
}

TEST(SnapshotTest, RejectsTrailingTokensOnRecordLines) {
  // A U record with one token too many, under a correct trailer: the
  // parser must notice, not silently ignore the tail.
  std::istringstream extra(FramedSnapshot(
      {"webevo-allurls 1 1", "U 1 2 3 4.5 0 0 EXTRA"}));
  Status st = LoadAllUrls(extra).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  // Same for a collection entry (extra token after the link list).
  std::istringstream entry_extra(FramedSnapshot(
      {"webevo-collection 1 4 1",
       "E 0 0 0 7 1 2 3 0.5 0.25 1 1 2 3 99"}));
  EXPECT_FALSE(LoadCollection(entry_extra).ok());

  // And a header with junk appended.
  std::istringstream header_extra(
      FramedSnapshot({"webevo-collection 1 4 0 junk"}));
  EXPECT_FALSE(LoadCollection(header_extra).ok());

  // A frontier record with trailing junk.
  std::istringstream frontier_extra(FramedSnapshot(
      {"webevo-frontier 1 1 5 0", "F 0 1 0 2.5 3 junk"}));
  EXPECT_FALSE(LoadFrontier(frontier_extra, 1).ok());
}

TEST(SnapshotTest, RejectsShortRecordLines) {
  // Truncated U record (missing the dead flag).
  std::istringstream short_record(FramedSnapshot(
      {"webevo-allurls 1 1", "U 1 2 3 4.5"}));
  EXPECT_FALSE(LoadAllUrls(short_record).ok());
  // Record count larger than the records present.
  std::istringstream short_count(FramedSnapshot(
      {"webevo-allurls 1 2", "U 1 2 3 4.5 0 0"}));
  EXPECT_FALSE(LoadAllUrls(short_count).ok());
}

TEST(SnapshotTest, DoublePrecisionPreserved) {
  Collection c(2);
  CollectionEntry e;
  e.url = Url{0, 0, 0};
  e.crawled_at = 123.456789012345678;
  e.importance = 1e-17;
  ASSERT_TRUE(c.Upsert(e).ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveCollection(c, buffer).ok());
  auto loaded = LoadCollection(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Find(Url{0, 0, 0})->crawled_at,
                   e.crawled_at);
  EXPECT_DOUBLE_EQ(loaded->Find(Url{0, 0, 0})->importance, e.importance);
}

}  // namespace
}  // namespace webevo::crawler
