// Pipelined batch engine tests: the staged crawl loop (plan B+1 /
// fetch+apply B / measure B-1) must be an invisible optimisation.
// Pipelined and non-pipelined runs — at every shard count, under fault
// scenarios, through in-batch retry rounds, and across a mid-pipeline
// auto-checkpoint resume — produce byte-identical checkpoints and
// identical view fingerprint chains.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/sharded_crawl_engine.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"

namespace webevo::crawler {
namespace {

simweb::WebConfig SmallWeb(uint64_t seed) {
  simweb::WebConfig config = simweb::WebConfig().Scaled(0.03);
  config.seed = seed;
  config.min_site_size = 10;
  config.max_site_size = 40;
  return config;
}

IncrementalCrawlerConfig IncConfig(int parallelism, bool pipeline) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = 200;
  config.crawl_rate_pages_per_day = 120.0;
  config.crawl_parallelism = parallelism;
  config.pipeline = pipeline;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  return config;
}

PeriodicCrawlerConfig PerConfig(int parallelism, bool pipeline) {
  PeriodicCrawlerConfig config;
  config.collection_capacity = 150;
  config.cycle_days = 4.0;
  config.crawl_window_days = 2.0;
  config.crawl_parallelism = parallelism;
  config.pipeline = pipeline;
  return config;
}

template <typename Crawler>
std::string CheckpointBytes(const Crawler& crawler) {
  CrawlerCheckpointOptions options;
  options.include_web = true;
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

struct RunResult {
  std::string checkpoint;
  uint64_t view_chain = 0;
};

RunResult RunIncremental(const simweb::WebConfig& wc,
                         IncrementalCrawlerConfig config, double until) {
  config.publish_view_every_batches = 1;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawler crawler(&web, config);
  EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
  EXPECT_TRUE(crawler.RunUntil(until).ok());
  return {CheckpointBytes(crawler), crawler.views().fingerprint_chain()};
}

RunResult RunPeriodic(const simweb::WebConfig& wc,
                      const PeriodicCrawlerConfig& config, double until) {
  simweb::SimulatedWeb web(wc);
  PeriodicCrawler crawler(&web, config);
  EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
  EXPECT_TRUE(crawler.RunUntil(until).ok());
  return {CheckpointBytes(crawler), 0};
}

// ------------------------------- pipelined == sequential, both crawlers

// The headline invariant, randomized over web seeds: at N in {1, 3, 8}
// the pipelined incremental crawler matches the N = 1 sequential run
// byte-for-byte, views included.
TEST(PipelineTest, IncrementalPipelinedMatchesSequential) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    const simweb::WebConfig wc = SmallWeb(seed);
    const RunResult want = RunIncremental(wc, IncConfig(1, false), 8.0);
    ASSERT_FALSE(want.checkpoint.empty());
    for (int shards : {1, 3, 8}) {
      const RunResult got =
          RunIncremental(wc, IncConfig(shards, true), 8.0);
      EXPECT_EQ(got.checkpoint, want.checkpoint)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.view_chain, want.view_chain)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

TEST(PipelineTest, PeriodicPipelinedMatchesSequential) {
  for (uint64_t seed : {404u, 505u}) {
    const simweb::WebConfig wc = SmallWeb(seed);
    const RunResult want = RunPeriodic(wc, PerConfig(1, false), 9.0);
    ASSERT_FALSE(want.checkpoint.empty());
    for (int shards : {1, 3, 8}) {
      const RunResult got = RunPeriodic(wc, PerConfig(shards, true), 9.0);
      EXPECT_EQ(got.checkpoint, want.checkpoint)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

// ------------------------------------------------- faults and retries

// Fault scenarios drive the apply barrier's hard cases — failure
// backoffs, quarantine walks (RescheduleSiteNotBefore against live
// lanes) and lease revocations — and the identity must survive all of
// them.
TEST(PipelineTest, FaultScenariosStayByteIdenticalPipelined) {
  for (const char* scenario : {"transient10", "outage-storm",
                               "flash-crowd"}) {
    simweb::WebConfig wc = SmallWeb(777);
    ASSERT_TRUE(simweb::ApplyFaultScenario(scenario, &wc).ok());
    IncrementalCrawlerConfig config = IncConfig(1, false);
    config.fault_quarantine_threshold = 3;
    config.fault_quarantine_days = 1.0;
    config.fault_backoff_base_days = 0.25;
    const RunResult want = RunIncremental(wc, config, 8.0);
    for (int shards : {1, 8}) {
      IncrementalCrawlerConfig piped = config;
      piped.crawl_parallelism = shards;
      piped.pipeline = true;
      const RunResult got = RunIncremental(wc, piped, 8.0);
      EXPECT_EQ(got.checkpoint, want.checkpoint)
          << scenario << " shards=" << shards;
      EXPECT_EQ(got.view_chain, want.view_chain)
          << scenario << " shards=" << shards;
    }
  }
}

// In-batch politeness retry rounds run extra engine sub-batches after
// the speculation hooks have fired; their reschedules land on live
// lanes and must absorb or flush without breaking the identity.
TEST(PipelineTest, InBatchRetryRoundsStayIdenticalPipelined) {
  simweb::WebConfig wc = SmallWeb(888);
  wc.uniform_lifespan_days = 1e7;  // no deaths: retries dominate
  IncrementalCrawlerConfig config = IncConfig(1, false);
  config.collection_capacity = 150;
  config.crawl_rate_pages_per_day = 60.0;
  config.freshness_sample_interval_days = 1.0;
  config.rebalance_interval_days = 1.0;
  config.refine_interval_days = 50.0;
  config.crawl.per_site_delay_days = 0.05;

  std::string want;
  {
    simweb::SimulatedWeb web(wc);
    IncrementalCrawler crawler(&web, config);
    ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
    ASSERT_TRUE(crawler.RunUntil(8.0).ok());
    ASSERT_GT(crawler.stats().in_batch_retries, 0u);
    want = CheckpointBytes(crawler);
  }
  for (int shards : {1, 4}) {
    IncrementalCrawlerConfig piped = config;
    piped.crawl_parallelism = shards;
    piped.pipeline = true;
    simweb::SimulatedWeb web(wc);
    IncrementalCrawler crawler(&web, piped);
    ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
    ASSERT_TRUE(crawler.RunUntil(8.0).ok());
    EXPECT_GT(crawler.stats().in_batch_retries, 0u);
    EXPECT_EQ(CheckpointBytes(crawler), want) << "shards=" << shards;
  }
}

// --------------------------------------------------- reconciliation

// The speculation must actually engage (lanes reused) AND the apply
// barrier must actually invalidate some of it (lanes flushed by
// admissions, revocations or front inserts) — otherwise these tests
// would pass vacuously with the pipeline never taking the fast path,
// or never exercising reconciliation.
TEST(PipelineTest, ReconciliationBothReusesAndInvalidatesLanes) {
  simweb::WebConfig wc = SmallWeb(999);
  simweb::SimulatedWeb web(wc);
  IncrementalCrawler crawler(&web, IncConfig(4, true));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(10.0).ok());
  const ShardedCrawlEngine::Stats& stats = crawler.engine().stats();
  // Speculative plans happened...
  ASSERT_GT(stats.spec_lanes_reused.count(), 0);
  // ...some lanes survived the apply barrier intact...
  EXPECT_GT(stats.spec_lanes_reused.mean() *
                static_cast<double>(stats.spec_lanes_reused.count()),
            0.0);
  // ...and some were invalidated by apply-time mutations.
  EXPECT_GT(stats.spec_lanes_invalidated.mean() *
                static_cast<double>(stats.spec_lanes_invalidated.count()),
            0.0);
}

// Pipelining must not change what the engine fetches: an engaged
// pipeline with zero overlap-ledger samples would mean the staged loop
// silently fell back to sequential execution.
TEST(PipelineTest, OverlapLedgerRecordsStagedWork) {
  simweb::WebConfig wc = SmallWeb(1212);
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config = IncConfig(2, true);
  config.freshness_sample_interval_days = 1.0;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(10.0).ok());
  const ShardedCrawlEngine::Stats& stats = crawler.engine().stats();
  EXPECT_GT(stats.plan_overlap_seconds.count(), 0);
  EXPECT_GT(stats.measure_overlap_seconds.count(), 0);
}

// ------------------------------------- mid-pipeline checkpoint resume

// An auto-checkpoint fires at a batch boundary while the pipeline is
// armed; the save must drain the speculation (lanes are a cache, never
// state), and a crawler resumed from those bytes — even at another
// shard count — rejoins the uninterrupted trajectory exactly.
TEST(PipelineTest, MidPipelineAutoCheckpointResumeRejoins) {
  const simweb::WebConfig wc = SmallWeb(1313);
  const std::string path =
      testing::TempDir() + "/pipeline_auto_checkpoint.bin";

  IncrementalCrawlerConfig config = IncConfig(2, true);
  std::string want;
  {
    simweb::SimulatedWeb web(wc);
    IncrementalCrawler straight(&web, config);
    ASSERT_TRUE(straight.Bootstrap(0.0).ok());
    ASSERT_TRUE(straight.RunUntil(10.0).ok());
    want = CheckpointBytes(straight);
  }

  // Auto-checkpoint every 3 batches, stop mid-run: the newest file on
  // disk was written with batches still ahead of it — mid-pipeline.
  IncrementalCrawlerConfig auto_config = config;
  auto_config.checkpoint_every_batches = 3;
  auto_config.checkpoint_path = path;
  double saved_at = 0.0;
  {
    simweb::SimulatedWeb web(wc);
    IncrementalCrawler saver(&web, auto_config);
    ASSERT_TRUE(saver.Bootstrap(0.0).ok());
    ASSERT_TRUE(saver.RunUntil(6.0).ok());
    saved_at = saver.now();
    ASSERT_GT(saver.engine().stats().spec_lanes_reused.count(), 0);
  }

  for (int load_shards : {1, 8}) {
    IncrementalCrawlerConfig load_config = config;
    load_config.crawl_parallelism = load_shards;
    simweb::SimulatedWeb web(wc);
    IncrementalCrawler resumed(&web, load_config);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    Status loaded = LoadCrawler(in, &resumed);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    EXPECT_LE(resumed.now(), saved_at);
    ASSERT_TRUE(resumed.RunUntil(10.0).ok());
    EXPECT_EQ(CheckpointBytes(resumed), want)
        << "load at N=" << load_shards;
  }
  std::remove(path.c_str());
}

// Periodic crawler: a mid-run save/resume under the pipelined loop
// (deferred measure fused into the next cycle's window) rejoins too.
TEST(PipelineTest, PeriodicPipelinedMidRunResumeRejoins) {
  const simweb::WebConfig wc = SmallWeb(1414);
  const PeriodicCrawlerConfig config = PerConfig(2, true);

  simweb::SimulatedWeb web_a(wc);
  PeriodicCrawler straight(&web_a, config);
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(9.0).ok());
  const std::string want = CheckpointBytes(straight);

  simweb::SimulatedWeb web_b(wc);
  PeriodicCrawler first_half(&web_b, config);
  ASSERT_TRUE(first_half.Bootstrap(0.0).ok());
  ASSERT_TRUE(first_half.RunUntil(5.0).ok());
  const std::string mid = CheckpointBytes(first_half);

  simweb::SimulatedWeb web_c(wc);
  PeriodicCrawler resumed(&web_c, config);
  std::istringstream mid_in(mid);
  Status loaded = LoadCrawler(mid_in, &resumed);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  ASSERT_TRUE(resumed.RunUntil(9.0).ok());
  EXPECT_EQ(CheckpointBytes(resumed), want);
}

}  // namespace
}  // namespace webevo::crawler
