#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "experiment/csv_export.h"
#include "experiment/monitoring_experiment.h"
#include "simweb/simulated_web.h"

namespace webevo::experiment {
namespace {

PageStatsTable MakeTable() {
  PageStatsTable table;
  Observation obs;
  obs.url = simweb::Url{1, 2, 0};
  obs.page = 9;
  table.Record(simweb::Domain::kEdu, 0, obs);
  obs.changed = true;
  table.Record(simweb::Domain::kEdu, 4, obs);
  return table;
}

TEST(CsvExportTest, PageStatsHeaderAndRows) {
  std::ostringstream out;
  ASSERT_TRUE(WritePageStatsCsv(MakeTable(), out).ok());
  std::string csv = out.str();
  EXPECT_NE(csv.find("url,domain,first_day"), std::string::npos);
  EXPECT_NE(csv.find("site1/p2_v0,edu,0,4,2,1,4,1,4,5"),
            std::string::npos);
}

TEST(CsvExportTest, InfiniteIntervalSpelledOut) {
  PageStatsTable table;
  Observation obs;
  obs.url = simweb::Url{0, 0, 0};
  table.Record(simweb::Domain::kCom, 0, obs);
  table.Record(simweb::Domain::kCom, 1, obs);  // never changed
  std::ostringstream out;
  ASSERT_TRUE(WritePageStatsCsv(table, out).ok());
  EXPECT_NE(out.str().find(",inf,"), std::string::npos);
}

TEST(CsvExportTest, SurvivalSeries) {
  SurvivalResult result;
  result.day = {0.0, 1.0};
  result.overall = {1.0, 0.5};
  for (auto& v : result.by_domain) v = {1.0, 0.25};
  std::ostringstream out;
  ASSERT_TRUE(WriteSurvivalCsv(result, out).ok());
  std::string csv = out.str();
  EXPECT_NE(csv.find("day,overall,com,edu,netorg,gov"),
            std::string::npos);
  EXPECT_NE(csv.find("1,0.5,0.25,0.25,0.25,0.25"), std::string::npos);
}

TEST(CsvExportTest, HistogramRows) {
  Histogram h = Histogram::LifespanBuckets();
  h.Add(3.0);
  h.Add(500.0);
  std::ostringstream out;
  ASSERT_TRUE(WriteHistogramCsv(h, out).ok());
  std::string csv = out.str();
  EXPECT_NE(csv.find("label,upper_edge,count,fraction"),
            std::string::npos);
  EXPECT_NE(csv.find("<=1week,7,1,0.5"), std::string::npos);
  EXPECT_NE(csv.find(">4months,inf,1,0.5"), std::string::npos);
}

TEST(CsvExportTest, EndToEndCampaignExports) {
  simweb::WebConfig wc;
  wc.seed = 3;
  wc.sites_per_domain = {2, 1, 1, 1};
  wc.min_site_size = 10;
  wc.max_site_size = 20;
  simweb::SimulatedWeb web(wc);
  MonitoringConfig config;
  config.num_days = 5;
  config.window_size = 15;
  MonitoringExperiment experiment(&web, config);
  ASSERT_TRUE(experiment.Run().ok());
  std::ostringstream out;
  ASSERT_TRUE(WritePageStatsCsv(experiment.table(), out).ok());
  // Header plus one line per sighted page.
  std::string csv = out.str();
  auto lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, experiment.table().num_pages() + 1);
}

}  // namespace
}  // namespace webevo::experiment
