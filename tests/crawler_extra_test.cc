// Additional crawler coverage: politeness integration, site-level
// statistics, Last-Modified scheduling, importance weighting, and the
// under-capacity admission path.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/crawl_module_pool.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/ranking_module.h"
#include "crawler/update_module.h"
#include "simweb/simulated_web.h"
#include "util/random.h"

namespace webevo::crawler {
namespace {

using simweb::Url;

simweb::WebConfig SmallWeb(uint64_t seed) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {3, 2, 1, 1};
  c.min_site_size = 20;
  c.max_site_size = 50;
  return c;
}

// ------------------------------------------------ politeness integration

TEST(PolitenessIntegrationTest, RejectionsRescheduleInsteadOfKilling) {
  simweb::WebConfig wc = SmallWeb(1);
  wc.uniform_lifespan_days = 1e7;  // nothing actually dies
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config;
  config.collection_capacity = 100;
  config.crawl_rate_pages_per_day = 400.0;  // fast enough to collide
  config.crawl.per_site_delay_days = 0.01;
  config.crawl.enforce_politeness = true;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(20.0).ok());
  EXPECT_GT(crawler.stats().politeness_retries, 0u);
  // No page was wrongly declared dead: the web has no deaths.
  EXPECT_EQ(crawler.stats().dead_pages_removed, 0u);
  EXPECT_GT(crawler.collection().size(), 50u);
}

TEST(PolitenessIntegrationTest, DelayBoundsPerSiteRate) {
  simweb::WebConfig wc = SmallWeb(2);
  simweb::SimulatedWeb web(wc);
  CrawlModuleConfig config;
  config.per_site_delay_days = 0.5;
  config.enforce_politeness = true;
  CrawlModule module(&web, config);
  Url root = web.RootUrl(0);
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    if (module.Crawl(root, i * 0.1).ok()) ++successes;
  }
  // 10 days of attempts, one success allowed per 0.5 days.
  EXPECT_LE(successes, 21);
  EXPECT_GT(successes, 15);
}

// --------------------------------------------------- site-level statistics

TEST(SiteLevelStatsTest, HomogeneousSiteConvergesFasterThanPageLevel) {
  // Section 5.3: site-level statistics give a tighter estimate when a
  // site's pages change at similar rates. Feed both modes the same
  // short history of a homogeneous site and compare the error.
  const double rate = 0.2;
  Rng rng(7);
  UpdateModuleConfig site_config;
  site_config.site_level_stats = true;
  site_config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule site_module(site_config);
  UpdateModuleConfig page_config;
  page_config.site_level_stats = false;
  page_config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule page_module(page_config);

  const int pages = 40, visits = 4;  // short history per page
  for (uint32_t p = 0; p < pages; ++p) {
    Url url{5, p, 0};
    site_module.OnCrawled(url, 0.0, false, true);
    page_module.OnCrawled(url, 0.0, false, true);
    for (int v = 1; v <= visits; ++v) {
      bool changed = rng.NextDouble() < 1.0 - std::exp(-rate);
      site_module.OnCrawled(url, v, changed, false);
      page_module.OnCrawled(url, v, changed, false);
    }
  }
  // Site-level: one estimate from 160 observations; page-level: 40
  // estimates from 4 observations each. Compare mean absolute error.
  double site_err = 0.0, page_err = 0.0;
  for (uint32_t p = 0; p < pages; ++p) {
    Url url{5, p, 0};
    site_err += std::abs(site_module.EstimatedRate(url) - rate);
    page_err += std::abs(page_module.EstimatedRate(url) - rate);
  }
  EXPECT_LT(site_err, page_err);
}

TEST(SiteLevelStatsTest, ForgetKeepsSiteAggregate) {
  UpdateModuleConfig config;
  config.site_level_stats = true;
  config.estimator_kind = estimator::EstimatorKind::kRatio;
  UpdateModule module(config);
  Url a{3, 1, 0}, b{3, 2, 0};
  module.OnCrawled(a, 0.0, false, true);
  module.OnCrawled(b, 0.0, false, true);
  for (int d = 1; d <= 20; ++d) module.OnCrawled(a, d, true, false);
  double before = module.EstimatedRate(b);
  module.Forget(a);  // page discarded; the site statistic survives
  EXPECT_DOUBLE_EQ(module.EstimatedRate(b), before);
  EXPECT_GT(before, 0.0);
}

// ------------------------------------------------- Last-Modified end-to-end

TEST(LastModifiedSchedulingTest, CrawlerIdentifiesSubDailyPagesViaEl) {
  // With the EL estimator the crawler prices rapid changers correctly
  // even though every checksum comparison says "changed".
  simweb::WebConfig wc = SmallWeb(3);
  wc.uniform_change_interval_days = 0.05;  // 20 changes/day
  wc.uniform_lifespan_days = 1e7;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config;
  config.collection_capacity = 120;
  config.crawl_rate_pages_per_day = 20.0;
  config.update.estimator_kind = estimator::EstimatorKind::kLastModified;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(40.0).ok());
  // Median estimated rate across collection pages should be near the
  // truth (20/day), far beyond the visit cadence.
  std::vector<double> rates;
  crawler.collection().ForEach([&](const CollectionEntry& e) {
    rates.push_back(
        const_cast<UpdateModule&>(crawler.update_module())
            .EstimatedRate(e.url));
  });
  ASSERT_FALSE(rates.empty());
  std::nth_element(rates.begin(),
                   rates.begin() + static_cast<long>(rates.size() / 2),
                   rates.end());
  EXPECT_GT(rates[rates.size() / 2], 5.0);
}

// ------------------------------------------------------ proportional policy

TEST(ProportionalPolicyTest, FrequencyTracksEstimatedRate) {
  UpdateModuleConfig config;
  config.policy = RevisitPolicy::kProportional;
  config.estimator_kind = estimator::EstimatorKind::kRatio;
  config.crawl_budget_pages_per_day = 10.0;
  config.min_revisit_interval_days = 0.01;
  config.max_revisit_interval_days = 1000.0;
  config.probe_probability = 0.0;  // deterministic schedule
  UpdateModule module(config);
  Url fast{0, 1, 0}, slow{0, 2, 0};
  module.OnCrawled(fast, 0.0, false, true);
  module.OnCrawled(slow, 0.0, false, true);
  for (int d = 1; d <= 60; ++d) {
    module.OnCrawled(fast, d, d % 2 == 0, false);
    module.OnCrawled(slow, d, d % 30 == 0, false);
  }
  module.Rebalance();
  double f_fast = 1.0 / (module.OnCrawled(fast, 61.0, false, false) - 61.0);
  double f_slow = 1.0 / (module.OnCrawled(slow, 61.0, false, false) - 61.0);
  // Rates differ ~10x; proportional frequencies must reflect that.
  EXPECT_GT(f_fast, 4.0 * f_slow);
}

// --------------------------------------------------- importance weighting

TEST(ImportanceWeightingTest, EndToEndImportantPagesFresher) {
  simweb::WebConfig wc = SmallWeb(5);
  wc.uniform_change_interval_days = 20.0;
  wc.uniform_lifespan_days = 1e7;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config;
  config.collection_capacity = 150;
  config.crawl_rate_pages_per_day = 150.0 / 25.0;
  config.update.policy = RevisitPolicy::kUniform;  // isolate the boost
  config.update.importance_exponent = 1.0;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(90.0).ok());
  // Pages with above-median importance should hold fresher copies.
  std::vector<const CollectionEntry*> entries;
  crawler.collection().ForEach(
      [&](const CollectionEntry& e) { entries.push_back(&e); });
  ASSERT_GT(entries.size(), 20u);
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return a->importance > b->importance;
            });
  double top_age = 0.0, bottom_age = 0.0;
  std::size_t quarter = entries.size() / 4;
  for (std::size_t i = 0; i < quarter; ++i) {
    top_age += crawler.now() - entries[i]->crawled_at;
    bottom_age +=
        crawler.now() - entries[entries.size() - 1 - i]->crawled_at;
  }
  EXPECT_LT(top_age, bottom_age);
}

// ------------------------------------------------ under-capacity admission

TEST(AdmissionTest, RefinementAdmitsIntoFreeSpaceWithoutVictims) {
  Collection collection(3);
  AllUrls all;
  Url member{0, 1, 0}, cand_a{0, 2, 0}, cand_b{0, 3, 0};
  CollectionEntry e;
  e.url = member;
  e.links = {cand_a, cand_b, cand_a};
  ASSERT_TRUE(collection.Upsert(e).ok());
  all.Add(member, 0.0);
  all.NoteInLink(cand_a, 0.0);
  all.NoteInLink(cand_a, 0.0);
  all.NoteInLink(cand_b, 0.0);
  RankingModule ranking({});
  RefinementResult result = ranking.Refine(all, collection);
  // Two free slots, two candidates: both admitted, no replacements.
  EXPECT_EQ(result.admissions.size(), 2u);
  EXPECT_TRUE(result.replacements.empty());
  // Best-scored first: cand_a has two in-links.
  EXPECT_EQ(result.admissions.front(), cand_a);
}

TEST(AdmissionTest, FullCollectionAdmitsNothingOutright) {
  Collection collection(1);
  AllUrls all;
  Url member{0, 1, 0}, cand{0, 2, 0};
  CollectionEntry e;
  e.url = member;
  e.links = {cand};
  ASSERT_TRUE(collection.Upsert(e).ok());
  all.Add(member, 0.0);
  all.NoteInLink(cand, 0.0);
  RankingModule ranking({});
  RefinementResult result = ranking.Refine(all, collection);
  EXPECT_TRUE(result.admissions.empty());
}

// ------------------------------------------------- periodic in-place dead

TEST(PeriodicInPlaceTest, DeadPagesLeaveTheCollection) {
  simweb::WebConfig wc = SmallWeb(6);
  wc.uniform_lifespan_days = 10.0;  // rapid deaths
  simweb::SimulatedWeb web(wc);
  PeriodicCrawlerConfig config;
  config.collection_capacity = 120;
  config.cycle_days = 15.0;
  config.crawl_window_days = 5.0;
  config.shadowing = false;
  PeriodicCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  // Run three full cycles, then measure just after the fourth crawl
  // window closes: every entry was re-fetched within the last ~5 days.
  ASSERT_TRUE(crawler.RunUntil(50.5).ok());
  EXPECT_GT(crawler.stats().dead_fetches, 0u);
  // In-place recrawls revisit the whole collection and purge vanished
  // pages, so dead entries are bounded by deaths since the last crawl
  // (~5 days against a 10-day lifespan), not accumulated forever.
  CollectionQuality q = crawler.MeasureNow();
  EXPECT_LT(static_cast<double>(q.dead),
            0.6 * static_cast<double>(q.size));
}


// ------------------------------------------------------ CrawlModulePool

TEST(CrawlModulePoolTest, ShardsSitesAcrossModules) {
  simweb::SimulatedWeb web(SmallWeb(10));
  CrawlModulePool pool(&web, {}, 3);
  EXPECT_EQ(pool.parallelism(), 3);
  // Sites 0..6 shard round-robin; each fetch lands on its owner.
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    ASSERT_TRUE(pool.Crawl(web.RootUrl(s), 0.1).ok());
  }
  uint64_t per_module_total = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    per_module_total += pool.module_for_site(s).fetch_count();
  }
  EXPECT_EQ(per_module_total, pool.fetch_count());
  EXPECT_EQ(pool.fetch_count(), web.num_sites());
}

TEST(CrawlModulePoolTest, PolitenessIsolatedPerShardOwner) {
  simweb::SimulatedWeb web(SmallWeb(11));
  CrawlModuleConfig config;
  config.per_site_delay_days = 1.0;
  config.enforce_politeness = true;
  CrawlModulePool pool(&web, config, 2);
  // Site 0 and site 2 share module 0; site 1 lives on module 1.
  ASSERT_TRUE(pool.Crawl(web.RootUrl(0), 0.0).ok());
  // Same site too soon: rejected by its owner.
  EXPECT_FALSE(pool.Crawl(web.RootUrl(0), 0.1).ok());
  EXPECT_GE(pool.NextAllowedTime(0), 1.0);
  // Different sites are unaffected, whichever module owns them.
  EXPECT_TRUE(pool.Crawl(web.RootUrl(1), 0.1).ok());
  EXPECT_TRUE(pool.Crawl(web.RootUrl(2), 0.1).ok());
  EXPECT_EQ(pool.politeness_rejections(), 1u);
}

TEST(CrawlModulePoolTest, ParallelismClampedToOne) {
  simweb::SimulatedWeb web(SmallWeb(12));
  CrawlModulePool pool(&web, {}, 0);
  EXPECT_EQ(pool.parallelism(), 1);
  EXPECT_TRUE(pool.Crawl(web.RootUrl(0), 0.0).ok());
}

TEST(CrawlModulePoolTest, AggregateLoadAccounting) {
  simweb::SimulatedWeb web(SmallWeb(13));
  CrawlModulePool pool(&web, {}, 4);
  for (int day = 0; day < 3; ++day) {
    for (uint32_t s = 0; s < web.num_sites(); ++s) {
      ASSERT_TRUE(pool.Crawl(web.RootUrl(s), day + 0.01 * s).ok());
    }
  }
  EXPECT_EQ(pool.fetch_count(), 3u * web.num_sites());
  EXPECT_EQ(pool.failure_count(), 0u);
  EXPECT_GE(pool.CombinedPeakDailyRate(),
            static_cast<double>(web.num_sites()));
}

// ------------------------------------------------------ multiplier expose

TEST(UpdateModuleTest2, MultiplierExposedAfterOptimalRebalance) {
  UpdateModuleConfig config;
  config.policy = RevisitPolicy::kOptimal;
  UpdateModule module(config);
  EXPECT_DOUBLE_EQ(module.multiplier(), 0.0);
  Url url{0, 1, 0};
  module.OnCrawled(url, 0.0, false, true);
  for (int d = 1; d <= 10; ++d) module.OnCrawled(url, d, d % 2, false);
  module.Rebalance();
  EXPECT_GT(module.multiplier(), 0.0);
}

}  // namespace
}  // namespace webevo::crawler
