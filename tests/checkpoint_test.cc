// Whole-crawler checkpoint tests: SaveCrawler/LoadCrawler must make a
// restored crawler bit-identical to one that never stopped — across
// processes (fresh web restored from the web section), across shard
// counts, and under corruption.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"

namespace webevo::crawler {
namespace {

simweb::WebConfig SmallWeb() {
  simweb::WebConfig config = simweb::WebConfig().Scaled(0.03);
  config.seed = 20260731;
  config.min_site_size = 10;
  config.max_site_size = 40;
  return config;
}

IncrementalCrawlerConfig IncConfig(int parallelism) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = 200;
  config.crawl_rate_pages_per_day = 120.0;
  config.crawl_parallelism = parallelism;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  return config;
}

PeriodicCrawlerConfig PerConfig(int parallelism) {
  PeriodicCrawlerConfig config;
  config.collection_capacity = 150;
  config.cycle_days = 4.0;
  config.crawl_window_days = 2.0;
  config.crawl_parallelism = parallelism;
  return config;
}

template <typename Crawler>
std::string CheckpointBytes(const Crawler& crawler,
                            bool include_web = true) {
  CrawlerCheckpointOptions options;
  options.include_web = include_web;
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

// The headline guarantee: run A straight through; run B half way, save
// a checkpoint, restore it into a *fresh* crawler over a *fresh* web
// (the cross-process restart), finish the run — and the two final
// states must checkpoint to byte-identical files. Saves land on whole
// days, which sit on the freshness-sample grid (batch boundaries), as
// the checkpoint contract requires.
TEST(CheckpointTest, IncrementalResumeIsBitIdenticalAcrossProcesses) {
  simweb::SimulatedWeb web_a(SmallWeb());
  IncrementalCrawler straight(&web_a, IncConfig(2));
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(10.0).ok());
  std::string want = CheckpointBytes(straight);

  simweb::SimulatedWeb web_b(SmallWeb());
  IncrementalCrawler first_half(&web_b, IncConfig(2));
  ASSERT_TRUE(first_half.Bootstrap(0.0).ok());
  ASSERT_TRUE(first_half.RunUntil(5.0).ok());
  std::string mid = CheckpointBytes(first_half);

  // "New process": nothing shared with first_half but the bytes.
  simweb::SimulatedWeb web_c(SmallWeb());
  IncrementalCrawler resumed(&web_c, IncConfig(2));
  std::istringstream mid_in(mid);
  Status loaded = LoadCrawler(mid_in, &resumed);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_DOUBLE_EQ(resumed.now(), first_half.now());
  EXPECT_EQ(resumed.stats().crawls, first_half.stats().crawls);
  ASSERT_TRUE(resumed.RunUntil(10.0).ok());

  EXPECT_EQ(CheckpointBytes(resumed), want);
  EXPECT_EQ(resumed.stats().crawls, straight.stats().crawls);
  EXPECT_EQ(resumed.MeasureNow().freshness, straight.MeasureNow().freshness);
  // The restored tracker carries the pre-checkpoint samples too.
  EXPECT_EQ(resumed.tracker().size(), straight.tracker().size());
}

// PR 3 invariant, extended to checkpoints: save at N = 8, load at
// N = 1 (and vice versa), continue, and stay bit-identical to the
// uninterrupted run — checkpoints are canonical, so even the files
// written by different shard counts in the same logical state match.
TEST(CheckpointTest, ResumeAcrossShardCounts) {
  simweb::SimulatedWeb web_a(SmallWeb());
  IncrementalCrawler straight(&web_a, IncConfig(1));
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(8.0).ok());
  const std::string want = CheckpointBytes(straight);

  for (int save_shards : {1, 8}) {
    const int load_shards = save_shards == 8 ? 1 : 8;
    simweb::SimulatedWeb web_b(SmallWeb());
    IncrementalCrawler saver(&web_b, IncConfig(save_shards));
    ASSERT_TRUE(saver.Bootstrap(0.0).ok());
    ASSERT_TRUE(saver.RunUntil(4.0).ok());
    std::string mid = CheckpointBytes(saver);

    simweb::SimulatedWeb web_c(SmallWeb());
    IncrementalCrawler resumed(&web_c, IncConfig(load_shards));
    std::istringstream mid_in(mid);
    Status loaded = LoadCrawler(mid_in, &resumed);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    ASSERT_TRUE(resumed.RunUntil(8.0).ok());
    EXPECT_EQ(CheckpointBytes(resumed), want)
        << "save at N=" << save_shards << ", load at N=" << load_shards;
  }
}

// In-process restart over the *same* live web: the checkpoint may skip
// the web section entirely, because the web's state is exactly what
// the interrupted crawler left behind.
TEST(CheckpointTest, SameWebResumeWithoutWebSection) {
  simweb::SimulatedWeb web_a(SmallWeb());
  IncrementalCrawler straight(&web_a, IncConfig(4));
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(10.0).ok());
  const std::string want = CheckpointBytes(straight, false);

  simweb::SimulatedWeb web_b(SmallWeb());
  std::string mid;
  {
    IncrementalCrawler first_half(&web_b, IncConfig(4));
    ASSERT_TRUE(first_half.Bootstrap(0.0).ok());
    ASSERT_TRUE(first_half.RunUntil(5.0).ok());
    mid = CheckpointBytes(first_half, false);
  }  // crawler gone; the web object survives the "restart"
  IncrementalCrawler resumed(&web_b, IncConfig(4));
  std::istringstream mid_in(mid);
  ASSERT_TRUE(LoadCrawler(mid_in, &resumed).ok());
  ASSERT_TRUE(resumed.RunUntil(10.0).ok());
  EXPECT_EQ(CheckpointBytes(resumed, false), want);
}

TEST(CheckpointTest, PeriodicResumeIsBitIdentical) {
  for (bool shadowing : {true, false}) {
    PeriodicCrawlerConfig config = PerConfig(2);
    config.shadowing = shadowing;

    simweb::SimulatedWeb web_a(SmallWeb());
    PeriodicCrawler straight(&web_a, config);
    ASSERT_TRUE(straight.Bootstrap(0.0).ok());
    ASSERT_TRUE(straight.RunUntil(9.0).ok());
    std::string want = CheckpointBytes(straight);

    simweb::SimulatedWeb web_b(SmallWeb());
    PeriodicCrawler first_half(&web_b, config);
    ASSERT_TRUE(first_half.Bootstrap(0.0).ok());
    ASSERT_TRUE(first_half.RunUntil(5.0).ok());
    std::string mid = CheckpointBytes(first_half);

    simweb::SimulatedWeb web_c(SmallWeb());
    PeriodicCrawler resumed(&web_c, config);
    std::istringstream mid_in(mid);
    Status loaded = LoadCrawler(mid_in, &resumed);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    EXPECT_EQ(resumed.cycles_completed(), first_half.cycles_completed());
    ASSERT_TRUE(resumed.RunUntil(9.0).ok());
    EXPECT_EQ(CheckpointBytes(resumed), want)
        << "shadowing=" << shadowing;
    EXPECT_EQ(resumed.stats().pages_stored, straight.stats().pages_stored);
  }
}

TEST(CheckpointTest, RejectsKindMismatch) {
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawler crawler(&web, IncConfig(1));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(2.0).ok());
  std::string bytes = CheckpointBytes(crawler);

  simweb::SimulatedWeb other_web(SmallWeb());
  PeriodicCrawler periodic(&other_web, PerConfig(1));
  std::istringstream in(bytes);
  Status st = LoadCrawler(in, &periodic);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, DetectsCorruptTruncatedAndTrailingContainers) {
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawler crawler(&web, IncConfig(2));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(3.0).ok());
  const std::string bytes = CheckpointBytes(crawler);

  auto load_fails = [&](std::string payload) {
    simweb::SimulatedWeb fresh(SmallWeb());
    IncrementalCrawler target(&fresh, IncConfig(2));
    std::istringstream in(payload);
    Status st = LoadCrawler(in, &target);
    EXPECT_FALSE(st.ok());
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
    }
  };

  // One flipped byte deep inside a section payload.
  std::string corrupted = bytes;
  std::size_t pos = corrupted.size() / 2;
  corrupted[pos] = corrupted[pos] == '7' ? '8' : '7';
  load_fails(corrupted);
  // A flipped byte in the section table (first table line, right after
  // the container header) must fail the header trailer.
  std::string bad_table = bytes;
  std::size_t first_nl = bytes.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  bad_table[first_nl + 3] ^= 1;
  load_fails(bad_table);
  // Truncation at several depths.
  load_fails(bytes.substr(0, bytes.size() / 2));
  load_fails(bytes.substr(0, bytes.size() - 3));
  load_fails(bytes.substr(0, 10));
  // Trailing garbage after a fully valid container.
  load_fails(bytes + "junk\n");
  // A failed load must leave the target untouched (still usable from
  // its pristine state).
  simweb::SimulatedWeb fresh(SmallWeb());
  IncrementalCrawler target(&fresh, IncConfig(2));
  std::istringstream in(corrupted);
  ASSERT_FALSE(LoadCrawler(in, &target).ok());
  ASSERT_TRUE(target.Bootstrap(0.0).ok());
  ASSERT_TRUE(target.RunUntil(1.0).ok());
}

TEST(CheckpointTest, RejectsCapacityMismatch) {
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawler crawler(&web, IncConfig(1));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(2.0).ok());
  std::string bytes = CheckpointBytes(crawler);

  simweb::SimulatedWeb fresh(SmallWeb());
  IncrementalCrawlerConfig other = IncConfig(1);
  other.collection_capacity = 50;
  IncrementalCrawler target(&fresh, other);
  std::istringstream in(bytes);
  Status st = LoadCrawler(in, &target);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// Auto-checkpointing: every K completed batches RunUntil writes the
// container to the configured path (atomically); the file on disk is a
// valid checkpoint at some batch boundary, and resuming from it lands
// back on the uninterrupted trajectory.
TEST(CheckpointTest, AutoCheckpointCadenceAndResume) {
  const std::string path =
      ::testing::TempDir() + "/webevo_auto_checkpoint.ck";
  std::remove(path.c_str());

  IncrementalCrawlerConfig config = IncConfig(2);
  config.checkpoint_every_batches = 2;
  config.checkpoint_path = path;
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(4.0).ok());
  ASSERT_GT(crawler.batches_completed(), 0u);

  simweb::SimulatedWeb fresh(SmallWeb());
  IncrementalCrawler resumed(&fresh, IncConfig(2));
  Status loaded = LoadCrawlerFromFile(path, &resumed);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_GT(resumed.batches_completed(), 0u);
  EXPECT_EQ(resumed.batches_completed() % 2, 0u);
  ASSERT_TRUE(resumed.RunUntil(8.0).ok());

  // The resumed run must rejoin the uninterrupted trajectory exactly.
  simweb::SimulatedWeb web_b(SmallWeb());
  IncrementalCrawler straight(&web_b, IncConfig(2));
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(8.0).ok());
  EXPECT_EQ(CheckpointBytes(resumed), CheckpointBytes(straight));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(CheckpointTest, FileRoundTripIsAtomicallyPublished) {
  const std::string path = ::testing::TempDir() + "/webevo_checkpoint.ck";
  simweb::SimulatedWeb web(SmallWeb());
  IncrementalCrawler crawler(&web, IncConfig(1));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(2.0).ok());
  Status saved = SaveCrawlerToFile(crawler, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  // The temp staging file must not survive a successful save.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  // And the published file must round-trip.
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), CheckpointBytes(crawler));
  simweb::SimulatedWeb fresh(SmallWeb());
  IncrementalCrawler resumed(&fresh, IncConfig(1));
  ASSERT_TRUE(LoadCrawlerFromFile(path, &resumed).ok());
  EXPECT_DOUBLE_EQ(resumed.now(), crawler.now());
  std::remove(path.c_str());
}

// The hot-site retry fix: a batch dominated by one site must retire
// its politeness retries in few rounds (multiple polite slots per site
// per round), and the rounds must land in the engine's ledger.
TEST(CheckpointTest, RetryRoundsAreRecordedAndDeterministic) {
  simweb::WebConfig wc = SmallWeb();
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config = IncConfig(1);
  // A long polite delay forces in-batch rejections.
  config.crawl.per_site_delay_days = 5e-3;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(6.0).ok());
  const auto& stats = crawler.engine().stats();
  ASSERT_GT(stats.retry_rounds.count(), 0);
  // Determinism of the ledger across shard counts.
  simweb::SimulatedWeb web_b(wc);
  IncrementalCrawlerConfig config8 = config;
  config8.crawl_parallelism = 8;
  IncrementalCrawler sharded(&web_b, config8);
  ASSERT_TRUE(sharded.Bootstrap(0.0).ok());
  ASSERT_TRUE(sharded.RunUntil(6.0).ok());
  EXPECT_EQ(sharded.engine().stats().retry_rounds.sum(),
            stats.retry_rounds.sum());
  EXPECT_EQ(sharded.stats().in_batch_retries,
            crawler.stats().in_batch_retries);
  EXPECT_EQ(sharded.stats().crawls, crawler.stats().crawls);
}

}  // namespace
}  // namespace webevo::crawler
