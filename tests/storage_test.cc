// Storage-layer tests: the PageFile slotted-page scratch store, the
// sealed write-ahead delta log, and the map-vs-paged RecordStore
// property suite — identical operation streams through both backends
// must produce bit-identical canonical walks and checkpoint bytes at
// every shard count.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/all_urls.h"
#include "crawler/incremental_crawler.h"
#include "crawler/sharded_collection.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "storage/delta_log.h"
#include "storage/page_file.h"
#include "util/random.h"

namespace webevo::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PageFileTest, InsertReadEraseRoundtrip) {
  PageFile file(TempPath("pf_roundtrip"), 256, 4);
  Rng rng(1);
  std::vector<std::pair<PageFile::Loc, std::string>> live;
  for (int i = 0; i < 200; ++i) {
    std::string bytes(1 + rng.NextBounded(100), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    live.emplace_back(file.Insert(bytes), bytes);
  }
  for (const auto& [loc, bytes] : live) {
    EXPECT_EQ(file.Read(loc), bytes);
  }
  EXPECT_EQ(file.stats().live_records, live.size());

  // Erase every other record; the survivors must be untouched, and
  // later inserts must reuse the freed space.
  for (std::size_t i = 0; i < live.size(); i += 2) {
    file.Erase(live[i].first);
  }
  const std::size_t pages_before = file.stats().pages;
  for (int i = 0; i < 100; ++i) {
    std::string bytes(1 + rng.NextBounded(100), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    live.emplace_back(file.Insert(bytes), bytes);
  }
  for (std::size_t i = 1; i < live.size(); i += 2) {
    EXPECT_EQ(file.Read(live[i].first), live[i].second);
  }
  // First-fit into tombstoned space keeps the file from growing much.
  EXPECT_LE(file.stats().pages, pages_before + 2);
}

TEST(PageFileTest, SmallCacheFaultsPagesBackCorrectly) {
  PageFile file(TempPath("pf_cache"), 256, 1);
  std::vector<std::pair<PageFile::Loc, std::string>> records;
  for (int i = 0; i < 64; ++i) {
    std::string bytes(100, static_cast<char>('a' + i % 26));
    records.emplace_back(file.Insert(bytes), bytes);
  }
  EXPECT_GT(file.stats().pages, std::size_t{1});
  EXPECT_LE(file.stats().cached_pages, std::size_t{1});
  for (const auto& [loc, bytes] : records) {
    EXPECT_EQ(file.Read(loc), bytes);
  }
  // Sweeping more pages than the cache holds must have faulted from
  // disk (write-back correctness is what the content checks verify).
  EXPECT_GT(file.stats().page_reads, std::size_t{0});
  EXPECT_GT(file.stats().page_evictions, std::size_t{0});
}

TEST(PageFileTest, ClearDropsEverything) {
  PageFile file(TempPath("pf_clear"), 256, 4);
  for (int i = 0; i < 32; ++i) file.Insert(std::string(64, 'x'));
  EXPECT_GT(file.stats().pages, std::size_t{0});
  file.Clear();
  EXPECT_EQ(file.stats().pages, std::size_t{0});
  EXPECT_EQ(file.stats().live_records, std::size_t{0});
  // The file is usable again after Clear.
  PageFile::Loc loc = file.Insert("hello");
  EXPECT_EQ(file.Read(loc), "hello");
}

DeltaSegment MakeSegment(uint64_t batch) {
  DeltaSegment segment;
  segment.kind = "incremental";
  segment.batch = batch;
  segment.sections.push_back(
      DeltaSection{"alpha", "line one\nline two\n"});
  // Sections are length-framed, so payload bytes may contain anything.
  segment.sections.push_back(
      DeltaSection{"beta", std::string("\0\x01\x02\n\xff", 5)});
  return segment;
}

TEST(DeltaLogTest, AppendReadRoundtrip) {
  const std::string path = TempPath("delta_roundtrip.log");
  ASSERT_TRUE(TruncateDeltaLog(path).ok());
  ASSERT_TRUE(AppendDeltaSegment(path, MakeSegment(3)).ok());
  ASSERT_TRUE(AppendDeltaSegment(path, MakeSegment(7)).ok());

  auto log = ReadDeltaLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->torn_tail_bytes, uint64_t{0});
  ASSERT_EQ(log->segments.size(), std::size_t{2});
  EXPECT_EQ(log->segments[0].batch, uint64_t{3});
  EXPECT_EQ(log->segments[1].batch, uint64_t{7});
  for (const DeltaSegment& segment : log->segments) {
    EXPECT_EQ(segment.kind, "incremental");
    ASSERT_EQ(segment.sections.size(), std::size_t{2});
    const DeltaSection* beta = segment.FindSection("beta");
    ASSERT_NE(beta, nullptr);
    EXPECT_EQ(beta->bytes, std::string("\0\x01\x02\n\xff", 5));
    EXPECT_EQ(segment.FindSection("missing"), nullptr);
  }
}

TEST(DeltaLogTest, MissingFileIsEmpty) {
  auto log = ReadDeltaLog(TempPath("delta_never_written.log"));
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->segments.empty());
  EXPECT_EQ(log->torn_tail_bytes, uint64_t{0});
}

TEST(DeltaLogTest, TornTailIsIgnored) {
  const std::string path = TempPath("delta_torn.log");
  ASSERT_TRUE(TruncateDeltaLog(path).ok());
  ASSERT_TRUE(AppendDeltaSegment(path, MakeSegment(1)).ok());
  ASSERT_TRUE(AppendDeltaSegment(path, MakeSegment(2)).ok());
  // Simulate a crash mid-append: half of an unsealed third segment.
  const std::string third = EncodeDeltaSegment(MakeSegment(3));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(third.data(),
              static_cast<std::streamsize>(third.size() / 2));
  }
  auto log = ReadDeltaLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_EQ(log->segments.size(), std::size_t{2});
  EXPECT_EQ(log->segments[1].batch, uint64_t{2});
  EXPECT_EQ(log->torn_tail_bytes, third.size() / 2);
}

TEST(DeltaLogTest, CorruptSealedSegmentIsAnError) {
  const std::string path = TempPath("delta_corrupt.log");
  ASSERT_TRUE(TruncateDeltaLog(path).ok());
  ASSERT_TRUE(AppendDeltaSegment(path, MakeSegment(1)).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  // Flip one payload byte *inside* a sealed segment: that is
  // corruption, not a torn tail, and must be reported.
  const std::size_t flip = bytes.find("line one");
  ASSERT_NE(flip, std::string::npos);
  bytes[flip] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  auto log = ReadDeltaLog(path);
  EXPECT_FALSE(log.ok());
}

TEST(DeltaLogTest, TruncateEmptiesTheLog) {
  const std::string path = TempPath("delta_trunc.log");
  ASSERT_TRUE(AppendDeltaSegment(path, MakeSegment(1)).ok());
  ASSERT_TRUE(TruncateDeltaLog(path).ok());
  auto log = ReadDeltaLog(path);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->segments.empty());
}

}  // namespace
}  // namespace webevo::storage

namespace webevo::crawler {
namespace {

storage::StoreOptions PagedOptions() {
  storage::StoreOptions options;
  options.backend = storage::StoreOptions::Backend::kPaged;
  options.dir = ::testing::TempDir();
  // Tiny pages and cache so a few hundred records exercise paging,
  // eviction and compaction, not just the overlay.
  options.page_bytes = 1024;
  options.cache_pages = 4;
  options.overlay_entries = 16;
  return options;
}

simweb::Url MakeUrl(uint64_t site, uint64_t slot) {
  simweb::Url url;
  url.site = static_cast<uint32_t>(site);
  url.slot = static_cast<uint32_t>(slot);
  url.incarnation = 0;
  return url;
}

CollectionEntry MakeEntry(Rng& rng, const simweb::Url& url) {
  CollectionEntry entry;
  entry.url = url;
  entry.page = rng.Next();
  entry.version = rng.Next();
  entry.checksum.lo = rng.Next();
  entry.checksum.hi = rng.Next();
  entry.crawled_at = rng.NextDouble() * 100.0;
  entry.importance = rng.NextDouble();
  const uint64_t nlinks = rng.NextBounded(5);
  for (uint64_t i = 0; i < nlinks; ++i) {
    entry.links.push_back(
        MakeUrl(rng.NextBounded(40), rng.NextBounded(50)));
  }
  return entry;
}

std::string CollectionSnapshotBytes(const ShardedCollection& collection) {
  std::ostringstream os;
  Status st = SaveCollection(collection, os);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return os.str();
}

// The core property: one randomized Upsert/Remove/FindMutable/Flush
// stream, replayed into a memory-backed and a paged ShardedCollection
// at N in {1, 3, 8}, must leave all six stores with byte-identical
// canonical snapshots.
TEST(StoragePropertyTest, MapAndPagedCollectionsStayBitIdentical) {
  constexpr std::size_t kCapacity = 300;
  std::string want;
  for (int shards : {1, 3, 8}) {
    ShardedCollection mem(kCapacity, shards);
    ShardedCollection paged(kCapacity, shards, PagedOptions());
    Rng rng(42);  // same stream for every backend and shard count
    std::vector<simweb::Url> known;
    for (int step = 0; step < 3000; ++step) {
      const uint64_t op = rng.NextBounded(10);
      if (op < 5 || known.empty()) {
        simweb::Url url =
            MakeUrl(rng.NextBounded(40), rng.NextBounded(50));
        Rng entry_rng(rng.Next());
        Rng entry_rng_copy = entry_rng;
        Status a = mem.Upsert(MakeEntry(entry_rng, url));
        Status b = paged.Upsert(MakeEntry(entry_rng_copy, url));
        ASSERT_EQ(a.ok(), b.ok());
        if (a.ok()) known.push_back(url);
      } else if (op < 7) {
        const simweb::Url url = known[rng.NextBounded(known.size())];
        Status a = mem.Remove(url);
        Status b = paged.Remove(url);
        ASSERT_EQ(a.ok(), b.ok());
      } else if (op < 9) {
        const simweb::Url url = known[rng.NextBounded(known.size())];
        CollectionEntry* a = mem.FindMutable(url);
        CollectionEntry* b = paged.FindMutable(url);
        ASSERT_EQ(a == nullptr, b == nullptr);
        if (a != nullptr) {
          const double importance = rng.NextDouble();
          a->importance = importance;
          b->importance = importance;
        }
      } else {
        // Barrier hook mid-stream: must not change logical contents.
        mem.Flush();
        paged.Flush();
      }
    }
    mem.Flush();
    paged.Flush();
    EXPECT_EQ(mem.size(), paged.size());
    const std::string mem_bytes = CollectionSnapshotBytes(mem);
    EXPECT_EQ(mem_bytes, CollectionSnapshotBytes(paged))
        << "backend divergence at N=" << shards;
    if (want.empty()) {
      want = mem_bytes;
    } else {
      EXPECT_EQ(mem_bytes, want) << "shard-count divergence at N="
                                 << shards;
    }
  }
}

std::string AllUrlsSnapshotBytes(const AllUrls& urls) {
  std::ostringstream os;
  Status st = SaveAllUrls(urls, os);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return os.str();
}

TEST(StoragePropertyTest, MapAndPagedAllUrlsStayBitIdentical) {
  std::string want;
  for (int shards : {1, 3, 8}) {
    AllUrls mem(shards);
    AllUrls paged(shards, PagedOptions(), "allurls-prop");
    Rng rng(7);
    std::vector<simweb::Url> known;
    for (int step = 0; step < 4000; ++step) {
      const uint64_t op = rng.NextBounded(10);
      if (op < 5 || known.empty()) {
        simweb::Url url =
            MakeUrl(rng.NextBounded(60), rng.NextBounded(80));
        const double t = rng.NextDouble() * 50.0;
        mem.NoteInLink(url, t);
        paged.NoteInLink(url, t);
        known.push_back(url);
      } else if (op < 8) {
        const simweb::Url url = known[rng.NextBounded(known.size())];
        const double t = rng.NextDouble() * 50.0;
        mem.Add(url, t);
        paged.Add(url, t);
      } else if (op < 9) {
        const simweb::Url url = known[rng.NextBounded(known.size())];
        Status a = mem.MarkDead(url);
        Status b = paged.MarkDead(url);
        ASSERT_EQ(a.ok(), b.ok());
      } else {
        mem.Flush();
        paged.Flush();
      }
    }
    EXPECT_EQ(mem.size(), paged.size());
    const std::string mem_bytes = AllUrlsSnapshotBytes(mem);
    EXPECT_EQ(mem_bytes, AllUrlsSnapshotBytes(paged))
        << "backend divergence at N=" << shards;
    if (want.empty()) {
      want = mem_bytes;
    } else {
      EXPECT_EQ(mem_bytes, want) << "shard-count divergence at N="
                                 << shards;
    }
  }
}

// End-to-end: a whole crawler on the paged backend checkpoints to the
// same bytes as one on the memory backend, at N in {1, 3, 8} — the
// storage layer is invisible to the simulation.
TEST(StoragePropertyTest, CrawlerCheckpointsMatchAcrossBackends) {
  simweb::WebConfig web_config = simweb::WebConfig().Scaled(0.02);
  web_config.seed = 20260808;
  web_config.min_site_size = 8;
  web_config.max_site_size = 30;

  std::string want;
  for (int shards : {1, 3, 8}) {
    for (bool paged : {false, true}) {
      simweb::SimulatedWeb web(web_config);
      IncrementalCrawlerConfig config;
      config.collection_capacity = 150;
      config.crawl_rate_pages_per_day = 90.0;
      config.crawl_parallelism = shards;
      if (paged) config.store = PagedOptions();
      IncrementalCrawler crawler(&web, config);
      ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
      ASSERT_TRUE(crawler.RunUntil(6.0).ok());
      CrawlerCheckpointOptions options;
      std::ostringstream out;
      Status saved = SaveCrawler(crawler, out, options);
      ASSERT_TRUE(saved.ok()) << saved.ToString();
      if (want.empty()) {
        want = out.str();
      } else {
        EXPECT_EQ(out.str(), want)
            << "divergence at N=" << shards << " paged=" << paged;
      }
    }
  }
}

}  // namespace
}  // namespace webevo::crawler
