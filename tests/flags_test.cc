#include <gtest/gtest.h>

#include <cstdint>

#include "util/flags.h"

namespace webevo {
namespace {

FlagParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = Parse({"--days=42", "--scale=0.5"});
  EXPECT_EQ(flags.GetInt("days", 0), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.0), 0.5);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = Parse({"--days", "42", "--name", "webevo"});
  EXPECT_EQ(flags.GetInt("days", 0), 42);
  EXPECT_EQ(flags.GetString("name", ""), "webevo");
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser flags = Parse({"--verbose", "--also=false"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("also", true));
}

TEST(FlagParserTest, BareFlagFollowedByFlagStaysBoolean) {
  FlagParser flags = Parse({"--a", "--b=1"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_EQ(flags.GetInt("b", 0), 1);
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = Parse({"study", "--days=3", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "study");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagParserTest, MalformedNumbersFallBack) {
  FlagParser flags = Parse({"--days=abc", "--scale=1.5x"});
  EXPECT_EQ(flags.GetInt("days", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 2.0), 2.0);
}

TEST(FlagParserTest, MissingFlagsUseFallbacks) {
  FlagParser flags = Parse({});
  EXPECT_FALSE(flags.Has("days"));
  EXPECT_EQ(flags.GetInt("days", -1), -1);
  EXPECT_EQ(flags.GetString("mode", "x"), "x");
  EXPECT_TRUE(flags.GetBool("on", true));
}

TEST(FlagParserTest, LaterDuplicateWins) {
  FlagParser flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

TEST(FlagParserTest, BoolSpellings) {
  FlagParser flags =
      Parse({"--a=yes", "--b=no", "--c=on", "--d=off", "--e=garbage"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", true));  // fallback on garbage
}

TEST(FlagParserTest, ValidateCatchesUnknown) {
  FlagParser flags = Parse({"--days=1", "--capasity=2"});
  Status st = flags.Validate({"days", "capacity"});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("capasity"), std::string::npos);
  EXPECT_TRUE(Parse({"--days=1"}).Validate({"days"}).ok());
}

TEST(FlagParserTest, NegativeNumbers) {
  FlagParser flags = Parse({"--offset=-5", "--temp=-1.5"});
  EXPECT_EQ(flags.GetInt("offset", 0), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("temp", 0.0), -1.5);
}

TEST(FlagParserTest, NonFiniteDoublesFallBack) {
  // nan/inf parse as valid doubles but would poison every downstream
  // rate/probability computation; GetDouble rejects them.
  FlagParser flags = Parse({"--a=nan", "--b=inf", "--c=-inf",
                            "--d=NaN", "--e=INFINITY"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("a", 1.5), 1.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("b", 2.5), 2.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("c", 3.5), 3.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 4.5), 4.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("e", 5.5), 5.5);
}

TEST(FlagParserTest, OverflowingDoubleFallsBack) {
  // 1e999 overflows to +inf inside strtod; the isfinite guard treats
  // that the same as a literal "inf".
  FlagParser flags = Parse({"--big=1e999", "--small=-1e999"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("big", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("small", 0.75), 0.75);
}

TEST(FlagParserTest, OverflowingIntFallsBack) {
  // strtoll clamps out-of-range input to LLONG_MAX/LLONG_MIN and only
  // reports the overflow via errno; a silently saturated value must
  // fall back exactly like an unparsable one.
  FlagParser flags = Parse({"--big=9223372036854775808",
                            "--huge=999999999999999999999999"});
  EXPECT_EQ(flags.GetInt("big", 13), 13);
  EXPECT_EQ(flags.GetInt("huge", 17), 17);
}

TEST(FlagParserTest, UnderflowingIntFallsBack) {
  FlagParser flags = Parse({"--small=-9223372036854775809"});
  EXPECT_EQ(flags.GetInt("small", -13), -13);
  // The exact representable bounds still parse.
  FlagParser bounds = Parse({"--min=-9223372036854775808",
                             "--max=9223372036854775807"});
  EXPECT_EQ(bounds.GetInt("min", 0), INT64_MIN);
  EXPECT_EQ(bounds.GetInt("max", 0), INT64_MAX);
}

TEST(FlagParserTest, PartialIntParseFallsBack) {
  FlagParser flags = Parse({"--a=12abc", "--b=1 2", "--c=", "--d=0x10"});
  EXPECT_EQ(flags.GetInt("a", 5), 5);
  EXPECT_EQ(flags.GetInt("b", 5), 5);
  EXPECT_EQ(flags.GetInt("c", 5), 5);
  EXPECT_EQ(flags.GetInt("d", 5), 5);  // base-10 parser: "x10" trails
}

TEST(FlagParserTest, TrailingGarbageDoubleFallsBack) {
  FlagParser flags = Parse({"--a=1.5abc", "--b=0.5 0.6", "--c="});
  EXPECT_DOUBLE_EQ(flags.GetDouble("a", 9.0), 9.0);
  EXPECT_DOUBLE_EQ(flags.GetDouble("b", 9.0), 9.0);
  EXPECT_DOUBLE_EQ(flags.GetDouble("c", 9.0), 9.0);
}

}  // namespace
}  // namespace webevo
