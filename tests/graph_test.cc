#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/hits.h"
#include "graph/link_graph.h"
#include "graph/pagerank.h"
#include "graph/site_graph.h"
#include "simweb/simulated_web.h"

namespace webevo::graph {
namespace {

// --------------------------------------------------------------- LinkGraph

TEST(LinkGraphTest, EmptyGraph) {
  LinkGraph g(3);
  g.Finalize();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.OutDegree(0), 0u);
  EXPECT_EQ(g.InDegree(2), 0u);
}

TEST(LinkGraphTest, AddEdgeValidation) {
  LinkGraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_FALSE(g.AddEdge(0, 2).ok());
  EXPECT_FALSE(g.AddEdge(2, 0).ok());
  g.Finalize();
  EXPECT_FALSE(g.AddEdge(0, 1).ok());  // frozen after finalize
}

TEST(LinkGraphTest, CsrAdjacencyBothDirections) {
  LinkGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 0).ok());
  g.Finalize();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  auto out0 = g.OutNeighbors(0);
  EXPECT_EQ(out0.size(), 2u);
  auto in2 = g.InNeighbors(2);
  EXPECT_EQ(in2.size(), 2u);
  EXPECT_EQ(g.OutNeighbors(2).size(), 0u);
  EXPECT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0], 3u);
}

TEST(LinkGraphTest, ParallelEdgesCounted) {
  LinkGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.Finalize();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(LinkGraphTest, FinalizeIdempotent) {
  LinkGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.Finalize();
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 1u);
}

// ---------------------------------------------------------------- PageRank

TEST(PageRankTest, RequiresFinalizedNonEmptyGraph) {
  LinkGraph g(2);
  EXPECT_FALSE(ComputePageRank(g).ok());
  LinkGraph empty(0);
  empty.Finalize();
  EXPECT_FALSE(ComputePageRank(empty).ok());
}

TEST(PageRankTest, RejectsBadDamping) {
  LinkGraph g(1);
  g.Finalize();
  PageRankOptions options;
  options.damping = 1.0;
  EXPECT_FALSE(ComputePageRank(g, options).ok());
  options.damping = -0.1;
  EXPECT_FALSE(ComputePageRank(g, options).ok());
}

TEST(PageRankTest, RankSumsToNodeCount) {
  LinkGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  ASSERT_TRUE(g.AddEdge(3, 0).ok());
  ASSERT_TRUE(g.AddEdge(4, 0).ok());
  g.Finalize();
  auto pr = ComputePageRank(g);
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(pr->converged);
  double sum = std::accumulate(pr->rank.begin(), pr->rank.end(), 0.0);
  EXPECT_NEAR(sum, 5.0, 1e-6);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  const NodeId n = 6;
  LinkGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % n).ok());
  }
  g.Finalize();
  auto pr = ComputePageRank(g);
  ASSERT_TRUE(pr.ok());
  for (NodeId v = 0; v < n; ++v) EXPECT_NEAR(pr->rank[v], 1.0, 1e-8);
}

TEST(PageRankTest, HubReceivesHighestRank) {
  // Star: everyone links to node 0.
  LinkGraph g(5);
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(g.AddEdge(v, 0).ok());
  g.Finalize();
  auto pr = ComputePageRank(g);
  ASSERT_TRUE(pr.ok());
  for (NodeId v = 1; v < 5; ++v) EXPECT_GT(pr->rank[0], pr->rank[v]);
}

TEST(PageRankTest, KnownTwoNodeSolution) {
  // 0 -> 1 only. With damping d and dangling redistribution, solve the
  // 2x2 system by hand and compare.
  LinkGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  g.Finalize();
  PageRankOptions options;
  options.damping = 0.9;
  auto pr = ComputePageRank(g, options);
  ASSERT_TRUE(pr.ok());
  // r0 = 0.1 + 0.45 r1 ; r1 = 0.1 + 0.45 r1 + 0.9 r0
  // => r0 = (0.1 + 0.045/0.55) / (1 - 0.405/0.55)
  auto r1_of_r0 = [](double r0) { return (0.1 + 0.9 * r0) / 0.55; };
  double r0 = (0.1 + 0.45 * 0.1 / 0.55) / (1.0 - 0.45 * 0.9 / 0.55);
  EXPECT_NEAR(pr->rank[0], r0, 1e-6);
  EXPECT_NEAR(pr->rank[1], r1_of_r0(r0), 1e-6);
}

TEST(PageRankTest, DanglingMassPreservedWhenRedistributing) {
  LinkGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  g.Finalize();  // nodes 1, 2 dangle
  auto pr = ComputePageRank(g);
  ASSERT_TRUE(pr.ok());
  double sum = std::accumulate(pr->rank.begin(), pr->rank.end(), 0.0);
  EXPECT_NEAR(sum, 3.0, 1e-6);
}

TEST(PageRankTest, TopKByRankOrdersAndClamps) {
  std::vector<double> rank = {0.5, 2.0, 1.0, 2.0};
  auto top = TopKByRank(rank, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie with 3 broken by lower index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(TopKByRank(rank, 99).size(), 4u);
}

// -------------------------------------------------------------------- HITS

TEST(HitsTest, RequiresFinalizedNonEmptyGraph) {
  LinkGraph g(2);
  EXPECT_FALSE(ComputeHits(g).ok());
}

TEST(HitsTest, StarAuthority) {
  LinkGraph g(5);
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(g.AddEdge(v, 0).ok());
  g.Finalize();
  auto hits = ComputeHits(g);
  ASSERT_TRUE(hits.ok());
  // Node 0 is the only authority; others are pure hubs.
  EXPECT_NEAR(hits->authority[0], 1.0, 1e-6);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_NEAR(hits->authority[v], 0.0, 1e-6);
    EXPECT_NEAR(hits->hub[v], 0.5, 1e-6);  // unit L2 over 4 equal hubs
  }
}

TEST(HitsTest, ScoresAreUnitNorm) {
  LinkGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 1).ok());
  g.Finalize();
  auto hits = ComputeHits(g);
  ASSERT_TRUE(hits.ok());
  double a = 0.0, h = 0.0;
  for (NodeId v = 0; v < 4; ++v) {
    a += hits->authority[v] * hits->authority[v];
    h += hits->hub[v] * hits->hub[v];
  }
  EXPECT_NEAR(a, 1.0, 1e-9);
  EXPECT_NEAR(h, 1.0, 1e-9);
}

// --------------------------------------------------------------- SiteGraph

TEST(SiteGraphTest, BuildsFromWebAndRanks) {
  simweb::WebConfig c;
  c.seed = 31;
  c.sites_per_domain = {8, 5, 3, 3};
  c.min_site_size = 15;
  c.max_site_size = 40;
  simweb::SimulatedWeb web(c);
  SiteGraph sg = SiteGraph::FromWeb(web, 0.0);
  EXPECT_EQ(sg.num_sites(), web.num_sites());
  EXPECT_GT(sg.graph().num_edges(), 0u);
  auto rank = sg.ComputeSiteRank();
  ASSERT_TRUE(rank.ok());
  double sum =
      std::accumulate(rank->rank.begin(), rank->rank.end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(web.num_sites()), 1e-5);
}

TEST(SiteGraphTest, PopularSitesOutrankObscureOnes) {
  // Site popularity is Zipf by index, so low-index sites should get
  // systematically more rank mass.
  simweb::WebConfig c;
  c.seed = 32;
  c.sites_per_domain = {25, 25, 25, 25};
  c.min_site_size = 10;
  c.max_site_size = 30;
  c.cross_site_link_prob = 0.5;
  simweb::SimulatedWeb web(c);
  SiteGraph sg = SiteGraph::FromWeb(web, 0.0);
  auto rank = sg.ComputeSiteRank();
  ASSERT_TRUE(rank.ok());
  double first_decile = 0.0, last_decile = 0.0;
  uint32_t n = web.num_sites();
  for (uint32_t s = 0; s < n / 10; ++s) first_decile += rank->rank[s];
  for (uint32_t s = n - n / 10; s < n; ++s) last_decile += rank->rank[s];
  EXPECT_GT(first_decile, 2.0 * last_decile);
}

}  // namespace
}  // namespace webevo::graph
