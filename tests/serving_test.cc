// Serving-layer tests: the ViewRegistry's MVCC acquire/release
// lifecycle (retention, deferred destruction, reader holds across
// many publishes, concurrent readers under a live writer — the TSan
// target), the published BatchView's byte-identity across shard
// counts, and the LoadCrawler contract (held views survive a restore
// unchanged; fresh acquires see the restored state).

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/snapshot.h"
#include "serving/batch_view.h"
#include "serving/view_builder.h"
#include "serving/view_registry.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"

namespace webevo::serving {
namespace {

std::unique_ptr<const BatchView> SyntheticView(uint64_t batch) {
  auto view = std::make_unique<BatchView>();
  view->crawler = "synthetic";
  view->batch = batch;
  // A reader-checkable invariant: a coherent view always satisfies
  // collection_size == 3 * batch (readers in the concurrency test
  // assert it to catch torn publishes).
  view->collection_size = 3 * batch;
  return view;
}

std::string ViewBytes(const BatchView& view) {
  std::ostringstream os;
  view.Serialize(os);
  return os.str();
}

// ------------------------------------------------------------ lifecycle

TEST(ViewRegistryTest, EmptyRegistryAcquiresNothing) {
  ViewRegistry registry(3);
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_FALSE(registry.AcquireRef());
  EXPECT_EQ(registry.published(), 0u);
}

TEST(ViewRegistryTest, AcquireReturnsLatestPublish) {
  ViewRegistry registry(3);
  registry.Publish(SyntheticView(1));
  registry.Publish(SyntheticView(2));
  ViewRef view = registry.AcquireRef();
  ASSERT_TRUE(view);
  EXPECT_EQ(view->batch, 2u);
  EXPECT_EQ(registry.published(), 2u);
  EXPECT_EQ(registry.retired(), 0u);
}

TEST(ViewRegistryTest, RetentionRetiresExactlyTheOldest) {
  ViewRegistry registry(3);
  for (uint64_t i = 1; i <= 5; ++i) registry.Publish(SyntheticView(i));
  // K = 3: epochs 1 and 2 are retired, 3..5 retained.
  EXPECT_EQ(registry.retired(), 2u);
  EXPECT_EQ(registry.destroyed(), 2u);
  ViewRef view = registry.AcquireRef();
  ASSERT_TRUE(view);
  EXPECT_EQ(view->batch, 5u);
}

TEST(ViewRegistryTest, ReaderHoldsViewAcrossManyPublishes) {
  // A reader may hold a view across any number of batches — far more
  // than the retention K — and the view stays valid and unchanged
  // (destruction is deferred to the last Release, not retirement).
  ViewRegistry registry(2);
  registry.Publish(SyntheticView(1));
  const BatchView* held = registry.Acquire();
  ASSERT_NE(held, nullptr);
  const std::string before = ViewBytes(*held);
  for (uint64_t i = 2; i <= 12; ++i) registry.Publish(SyntheticView(i));
  // Epoch 1 was retired long ago but the held reference keeps it
  // alive; every *other* retired view is destroyed.
  EXPECT_EQ(registry.retired(), 10u);
  EXPECT_EQ(registry.destroyed(), 9u);
  EXPECT_EQ(held->batch, 1u);
  EXPECT_EQ(ViewBytes(*held), before);
  registry.Release(held);
  EXPECT_EQ(registry.destroyed(), 10u);
}

TEST(ViewRegistryTest, ClearRetiresButHeldReferencesSurvive) {
  ViewRegistry registry(4);
  registry.Publish(SyntheticView(1));
  registry.Publish(SyntheticView(2));
  ViewRef held = registry.AcquireRef();
  registry.Clear();
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.retired(), 2u);
  ASSERT_TRUE(held);
  EXPECT_EQ(held->batch, 2u);
  held.reset();
  EXPECT_EQ(registry.destroyed(), 2u);
}

TEST(ViewRegistryTest, FingerprintChainCoversEveryPublish) {
  ViewRegistry a(2);
  ViewRegistry b(2);
  for (uint64_t i = 1; i <= 6; ++i) {
    a.Publish(SyntheticView(i));
    b.Publish(SyntheticView(i));
  }
  EXPECT_NE(a.fingerprint_chain(), 0u);
  EXPECT_EQ(a.fingerprint_chain(), b.fingerprint_chain());
  ViewRegistry c(2);
  for (uint64_t i = 1; i <= 5; ++i) c.Publish(SyntheticView(i));
  EXPECT_NE(a.fingerprint_chain(), c.fingerprint_chain());
}

// The TSan target: M readers acquire/inspect/release in a tight loop
// while the single writer publishes far more views than the retention
// window holds. Run under -DWEBEVO_TSAN=ON this proves the epoch/pin
// protocol has no data race; in any build it proves no use-after-free
// and no torn view.
TEST(ViewRegistryTest, ConcurrentReadersUnderLiveWriter) {
  ViewRegistry registry(3);
  registry.Publish(SyntheticView(1));
  constexpr int kReaders = 4;
  constexpr uint64_t kPublishes = 3000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&registry, &stop, &reads] {
      uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ViewRef view = registry.AcquireRef();
        ASSERT_TRUE(view);
        // Coherence: never a torn view, never time running backwards.
        ASSERT_EQ(view->collection_size, 3 * view->batch);
        ASSERT_GE(view->batch, last_seen);
        last_seen = view->batch;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (uint64_t i = 2; i <= kPublishes; ++i) {
    registry.Publish(SyntheticView(i));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(registry.published(), kPublishes);
  // Retirement stayed deterministic under concurrency: everything but
  // the retained window was retired.
  EXPECT_EQ(registry.retired(), kPublishes - 3);
}

// ------------------------------------------- determinism across shards

simweb::WebConfig SmallWeb() {
  simweb::WebConfig config = simweb::WebConfig().Scaled(0.03);
  config.seed = 20260808;
  config.min_site_size = 10;
  config.max_site_size = 40;
  return config;
}

crawler::IncrementalCrawlerConfig IncConfig(int parallelism) {
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 200;
  config.crawl_rate_pages_per_day = 120.0;
  config.crawl_parallelism = parallelism;
  config.publish_view_every_batches = 1;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  return config;
}

crawler::PeriodicCrawlerConfig PerConfig(int parallelism) {
  crawler::PeriodicCrawlerConfig config;
  config.collection_capacity = 150;
  config.cycle_days = 4.0;
  config.crawl_window_days = 2.0;
  config.crawl_parallelism = parallelism;
  config.publish_view_every_batches = 1;
  return config;
}

TEST(BatchViewDeterminismTest, IncrementalViewsByteIdenticalAcrossShards) {
  std::string bytes[2];
  uint64_t chains[2];
  const int shard_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    simweb::SimulatedWeb web(SmallWeb());
    crawler::IncrementalCrawler crawl(&web, IncConfig(shard_counts[i]));
    ASSERT_TRUE(crawl.Bootstrap(0.0).ok());
    ASSERT_TRUE(crawl.RunUntil(6.0).ok());
    ViewRef view = crawl.views().AcquireRef();
    ASSERT_TRUE(view);
    bytes[i] = ViewBytes(*view);
    chains[i] = crawl.views().fingerprint_chain();
    EXPECT_EQ(crawl.views().published(),
              crawl.engine().stats().views_published);
  }
  // Byte identity of the latest view AND chain identity over every
  // view ever published — N = 8 publishes the same sequence as N = 1.
  EXPECT_EQ(bytes[0], bytes[1]);
  EXPECT_EQ(chains[0], chains[1]);
  EXPECT_FALSE(bytes[0].empty());
}

TEST(BatchViewDeterminismTest, PeriodicViewsByteIdenticalAcrossShards) {
  std::string bytes[2];
  uint64_t chains[2];
  const int shard_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    simweb::SimulatedWeb web(SmallWeb());
    crawler::PeriodicCrawler crawl(&web, PerConfig(shard_counts[i]));
    ASSERT_TRUE(crawl.Bootstrap(0.0).ok());
    ASSERT_TRUE(crawl.RunUntil(6.0).ok());
    ViewRef view = crawl.views().AcquireRef();
    ASSERT_TRUE(view);
    bytes[i] = ViewBytes(*view);
    chains[i] = crawl.views().fingerprint_chain();
  }
  EXPECT_EQ(bytes[0], bytes[1]);
  EXPECT_EQ(chains[0], chains[1]);
  EXPECT_FALSE(bytes[0].empty());
}

TEST(BatchViewDeterminismTest, ViewRowsAreInCanonicalOrder) {
  simweb::SimulatedWeb web(SmallWeb());
  crawler::IncrementalCrawler crawl(&web, IncConfig(2));
  ASSERT_TRUE(crawl.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawl.RunUntil(4.0).ok());
  ViewRef view = crawl.views().AcquireRef();
  ASSERT_TRUE(view);
  ASSERT_FALSE(view->pages.empty());
  simweb::UrlIdentityLess less;
  for (std::size_t i = 1; i < view->pages.size(); ++i) {
    EXPECT_TRUE(less(view->pages[i - 1].url, view->pages[i].url));
  }
  for (std::size_t i = 1; i < view->sites.size(); ++i) {
    EXPECT_LT(view->sites[i - 1].site, view->sites[i].site);
  }
  for (std::size_t i = 1; i < view->estimates.size(); ++i) {
    EXPECT_TRUE(less(view->estimates[i - 1].url, view->estimates[i].url));
  }
  // The summary carries the size the relations must agree with.
  EXPECT_EQ(view->pages.size(), view->collection_size);
  uint64_t site_pages = 0;
  for (const SiteRow& site : view->sites) site_pages += site.pages;
  EXPECT_EQ(site_pages, view->collection_size);
}

// ------------------------------------------------- restore (LoadCrawler)

TEST(ServingRestoreTest, HeldViewSurvivesRestoreAndFreshAcquireSeesIt) {
  simweb::SimulatedWeb web(SmallWeb());
  crawler::IncrementalCrawler crawl(&web, IncConfig(2));
  ASSERT_TRUE(crawl.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawl.RunUntil(3.0).ok());

  std::ostringstream checkpoint;
  ASSERT_TRUE(
      crawler::SaveCrawler(crawl, checkpoint, {.include_web = true})
          .ok());
  const uint64_t saved_batches = crawl.batches_completed();

  // Keep crawling past the checkpoint, holding a pre-restore view.
  ASSERT_TRUE(crawl.RunUntil(5.0).ok());
  ViewRef held = crawl.views().AcquireRef();
  ASSERT_TRUE(held);
  const std::string held_bytes = ViewBytes(*held);
  EXPECT_GT(held->batch, saved_batches);

  // Restore in place. The held reference must stay valid and
  // unchanged; a fresh acquire must see the *restored* state, not the
  // stale pre-restore history.
  std::istringstream in(checkpoint.str());
  ASSERT_TRUE(crawler::LoadCrawler(in, &crawl).ok());
  EXPECT_EQ(held_bytes, ViewBytes(*held));
  ViewRef fresh = crawl.views().AcquireRef();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(fresh->batch, saved_batches);
  EXPECT_EQ(fresh->published_at, crawl.now());

  // The republished view matches what an uninterrupted builder would
  // produce from the same state.
  EXPECT_EQ(ViewBytes(*fresh), ViewBytes(*BuildBatchView(crawl)));
}

TEST(ServingRestoreTest, RestoredRunPublishesIdenticalViewChain) {
  // Bit-identical resume extends to the serving layer: run to day 6
  // uninterrupted vs checkpoint-at-3-then-resume — the final view
  // bytes match (chains diverge only by the restore's republish).
  simweb::SimulatedWeb web_a(SmallWeb());
  crawler::IncrementalCrawler uninterrupted(&web_a, IncConfig(1));
  ASSERT_TRUE(uninterrupted.Bootstrap(0.0).ok());
  ASSERT_TRUE(uninterrupted.RunUntil(6.0).ok());

  simweb::SimulatedWeb web_b(SmallWeb());
  crawler::IncrementalCrawler source(&web_b, IncConfig(1));
  ASSERT_TRUE(source.Bootstrap(0.0).ok());
  ASSERT_TRUE(source.RunUntil(3.0).ok());
  std::ostringstream checkpoint;
  ASSERT_TRUE(
      crawler::SaveCrawler(source, checkpoint, {.include_web = true})
          .ok());

  simweb::SimulatedWeb web_c(SmallWeb());
  crawler::IncrementalCrawler resumed(&web_c, IncConfig(1));
  std::istringstream in(checkpoint.str());
  ASSERT_TRUE(crawler::LoadCrawler(in, &resumed).ok());
  ASSERT_TRUE(resumed.RunUntil(6.0).ok());

  ViewRef a = uninterrupted.views().AcquireRef();
  ViewRef b = resumed.views().AcquireRef();
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(ViewBytes(*a), ViewBytes(*b));
}

TEST(ServingRestoreTest, RestoreWithoutPublishingLeavesRegistryEmpty) {
  simweb::SimulatedWeb web(SmallWeb());
  crawler::IncrementalCrawlerConfig config = IncConfig(1);
  crawler::IncrementalCrawler source(&web, config);
  ASSERT_TRUE(source.Bootstrap(0.0).ok());
  ASSERT_TRUE(source.RunUntil(2.0).ok());
  std::ostringstream checkpoint;
  ASSERT_TRUE(
      crawler::SaveCrawler(source, checkpoint, {.include_web = true})
          .ok());

  simweb::SimulatedWeb web_b(SmallWeb());
  config.publish_view_every_batches = 0;  // serving disabled
  crawler::IncrementalCrawler target(&web_b, config);
  std::istringstream in(checkpoint.str());
  ASSERT_TRUE(crawler::LoadCrawler(in, &target).ok());
  EXPECT_FALSE(target.views().AcquireRef());
}

}  // namespace
}  // namespace webevo::serving
