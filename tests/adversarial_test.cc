// Adversarial-web and defense-layer tests: deterministic spider traps,
// mirror farms, and domain migrations in the simulated web; the
// crawler's diminishing-returns trap throttle, fingerprint-based mirror
// dedup with a shard-invariant canonical winner, and migration
// following with estimator carry-over; the defense checkpoint section;
// and the headline invariants — N = 1 == N = 8 byte-identical with the
// defense on AND off, fault + adversarial composition included.

#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "crawler/update_module.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"

namespace webevo::crawler {
namespace {

simweb::WebConfig SmallWeb() {
  simweb::WebConfig config = simweb::WebConfig().Scaled(0.03);
  config.seed = 20260808;
  config.min_site_size = 10;
  config.max_site_size = 40;
  return config;
}

simweb::WebConfig AdvWeb(const std::string& scenario) {
  simweb::WebConfig config = SmallWeb();
  Status st = simweb::ApplyAdversarialScenario(scenario, &config);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return config;
}

IncrementalCrawlerConfig IncConfig(int parallelism, bool defense) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = 200;
  config.crawl_rate_pages_per_day = 120.0;
  config.crawl_parallelism = parallelism;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  config.defense_enabled = defense;
  return config;
}

std::string CheckpointBytes(const IncrementalCrawler& crawler) {
  CrawlerCheckpointOptions options;
  options.include_web = true;
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

// --------------------------------------------------- scenario plumbing

TEST(AdversarialScenarioTest, NamedScenariosApplyAndValidate) {
  for (const char* name : {"none", "baseline", "spider-trap",
                           "mirror-farm", "domain-migration",
                           "heavy-tail"}) {
    simweb::WebConfig config = SmallWeb();
    Status st = simweb::ApplyAdversarialScenario(name, &config);
    ASSERT_TRUE(st.ok()) << name << ": " << st.ToString();
    EXPECT_TRUE(config.Validate().ok()) << name;
    const bool expect_adv =
        std::string(name) != "none" && std::string(name) != "baseline";
    EXPECT_EQ(config.HasAdversarial(), expect_adv) << name;
  }
  simweb::WebConfig config = SmallWeb();
  Status bad = simweb::ApplyAdversarialScenario("no-such", &config);
  ASSERT_FALSE(bad.ok());
  // The error enumerates the valid names (the CLI surfaces it).
  EXPECT_NE(bad.ToString().find("spider-trap"), std::string::npos);
}

TEST(AdversarialScenarioTest, ComposesWithFaultScenarios) {
  simweb::WebConfig config = AdvWeb("spider-trap");
  ASSERT_TRUE(simweb::ApplyFaultScenario("transient10", &config).ok());
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_TRUE(config.HasFaults());
  EXPECT_TRUE(config.HasAdversarial());
}

// ------------------------------------------------- adversarial web

TEST(AdversarialWebTest, TrapSitesMintFreshSameSiteLinks) {
  simweb::WebConfig config = SmallWeb();
  config.adv_trap_site_prob = 1.0;  // every site is a trap
  config.adv_trap_links_per_fetch = 3;
  simweb::SimulatedWeb web(config);
  ASSERT_TRUE(web.IsTrapSite(0));
  auto first = web.Fetch(web.RootUrl(0), 1.0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Count the minted virtual-slot links and verify they fetch
  // successfully, serve one shared body, and mint more.
  std::vector<simweb::Url> minted;
  for (const simweb::Url& link : first->links) {
    if (link.site == 0 && link.slot >= 1000000) minted.push_back(link);
  }
  // Virtual slots are "past the site's real size"; rather than guess
  // the threshold, re-derive it: minted links are exactly the ones a
  // second fetch has never produced before.
  if (minted.empty()) {
    for (const simweb::Url& link : first->links) {
      if (link.site == 0) minted.push_back(link);
    }
  }
  ASSERT_GE(minted.size(), 3u);
  auto trap_a = web.Fetch(minted[minted.size() - 1], 1.5);
  auto trap_b = web.Fetch(minted[minted.size() - 2], 2.0);
  ASSERT_TRUE(trap_a.ok()) << trap_a.status().ToString();
  ASSERT_TRUE(trap_b.ok()) << trap_b.status().ToString();
  EXPECT_EQ(trap_a->checksum, trap_b->checksum);  // one body per trap
  // The trap keeps minting: the trap page's own fetch emitted links
  // the root fetch had not.
  bool fresh = false;
  for (const simweb::Url& link : trap_a->links) {
    bool seen = false;
    for (const simweb::Url& old : first->links) {
      if (old == link) seen = true;
    }
    if (!seen && link.site == 0) fresh = true;
  }
  EXPECT_TRUE(fresh);
}

TEST(AdversarialWebTest, MirrorMembersServeIdenticalContent) {
  simweb::WebConfig config = SmallWeb();
  config.adv_mirror_group_size = 3;  // sites {0,1,2} form one group
  config.adv_mirror_groups = 1;
  simweb::SimulatedWeb web(config);
  ASSERT_GE(web.num_sites(), 3u);
  EXPECT_TRUE(web.IsMirroredSite(1));
  EXPECT_TRUE(web.IsMirroredSite(2));
  EXPECT_EQ(web.MirrorLeaderOf(1), 0u);
  EXPECT_EQ(web.MirrorLeaderOf(2), 0u);
  // Two members of the same group serve byte-identical content under
  // distinct URLs.
  auto a = web.Fetch(web.RootUrl(1), 1.0);
  auto b = web.Fetch(web.RootUrl(2), 1.0);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_FALSE(a->url == b->url);
  EXPECT_EQ(a->checksum, b->checksum);
}

TEST(AdversarialWebTest, MigratedSitesGoDarkAndTwinsResurrect) {
  simweb::WebConfig config = SmallWeb();
  config.adv_migration_prob = 1.0;  // every even site migrates
  config.adv_migration_mean_day = 1.0;
  config.adv_migration_links_per_fetch = 4;
  simweb::SimulatedWeb web(config);
  ASSERT_GE(web.num_sites(), 2u);
  const double mday = web.MigrationDayOf(0);
  ASSERT_TRUE(std::isfinite(mday));
  EXPECT_EQ(web.TwinSourceOf(1), 0u);
  EXPECT_FALSE(std::isfinite(web.MigrationDayOf(1)));  // odd: never
  auto source = web.Fetch(web.RootUrl(0), mday + 0.5);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kUnavailable);
  auto twin = web.Fetch(web.RootUrl(1), mday + 0.5);
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  // The twin announces resurrected pages under its own hostname.
  bool announced = false;
  for (const simweb::Url& link : twin->links) {
    if (link.site == 1) announced = true;
  }
  EXPECT_TRUE(announced);
}

// A mid-stream web snapshot must carry the adversarial mint counters
// (Y records): the restored web mints the same trap URLs in the same
// order instead of restarting its counters.
TEST(AdversarialWebTest, WebSnapshotRoundTripsAdversarialState) {
  simweb::WebConfig config = AdvWeb("spider-trap");
  simweb::SimulatedWeb web(config);
  for (int i = 0; i < 25; ++i) {
    (void)web.Fetch(web.RootUrl(i % web.num_sites()), 0.2 * i);
  }
  std::ostringstream out;
  ASSERT_TRUE(simweb::SaveWeb(web, out).ok());
  simweb::SimulatedWeb restored(config);
  std::istringstream in(out.str());
  Status st = simweb::RestoreWeb(in, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (int i = 0; i < 25; ++i) {
    const double t = 5.0 + 0.2 * i;
    const uint32_t site = i % web.num_sites();
    auto ra = web.Fetch(web.RootUrl(site), t);
    auto rb = restored.Fetch(restored.RootUrl(site), t);
    ASSERT_EQ(ra.ok(), rb.ok()) << i;
    if (ra.ok() && rb.ok()) {
      ASSERT_EQ(ra->links.size(), rb->links.size()) << i;
      for (std::size_t j = 0; j < ra->links.size(); ++j) {
        EXPECT_EQ(ra->links[j], rb->links[j]) << i;
      }
    }
  }
}

// --------------------------------------------------- defense layer

TEST(DefenseTest, TrapSitesGetThrottled) {
  simweb::SimulatedWeb web(AdvWeb("spider-trap"));
  IncrementalCrawlerConfig config = IncConfig(2, true);
  config.defense_yield_window = 12;  // trip fast at test scale
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(12.0).ok());
  const auto& s = crawler.stats();
  EXPECT_GT(s.wasted_fetches, 0u);
  EXPECT_GT(s.trap_sites_throttled, 0u);
}

TEST(DefenseTest, UndefendedRunObservesWasteButTakesNoAction) {
  simweb::SimulatedWeb web(AdvWeb("spider-trap"));
  IncrementalCrawler crawler(&web, IncConfig(2, false));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(12.0).ok());
  const auto& s = crawler.stats();
  // wasted_fetches is pure observation (it accrues either way — the
  // bench's waste gate depends on that); the action counters are the
  // defense's alone.
  EXPECT_GT(s.wasted_fetches, 0u);
  EXPECT_EQ(s.trap_sites_throttled, 0u);
  EXPECT_EQ(s.duplicate_urls_suppressed, 0u);
  EXPECT_EQ(s.pages_migrated, 0u);
}

// Mirror dedup's canonical winner is a pure function of the simulation:
// N = 1, 3, and 8 agree on which URL owns each fingerprint, so the
// checkpoints are byte-identical.
TEST(DefenseTest, MirrorDedupPicksShardInvariantCanonicalWinner) {
  simweb::WebConfig wc = AdvWeb("mirror-farm");
  std::string want;
  uint64_t suppressed = 0;
  for (int shards : {1, 3, 8}) {
    simweb::SimulatedWeb web(wc);
    IncrementalCrawler crawler(&web, IncConfig(shards, true));
    ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
    ASSERT_TRUE(crawler.RunUntil(10.0).ok());
    const std::string got = CheckpointBytes(crawler);
    if (want.empty()) {
      want = got;
      suppressed = crawler.stats().duplicate_urls_suppressed;
      EXPECT_GT(suppressed, 0u);
    } else {
      EXPECT_EQ(got, want) << "N=" << shards;
      EXPECT_EQ(crawler.stats().duplicate_urls_suppressed, suppressed)
          << "N=" << shards;
    }
  }
}

TEST(DefenseTest, CarryEstimatorMovesLearnedState) {
  UpdateModuleConfig config;
  UpdateModule update(config);
  const simweb::Url from{3, 1, 0}, to{4, 7, 0};
  update.OnCrawled(from, 1.0, false, true);
  update.OnCrawled(from, 2.0, true, false);
  update.OnCrawled(from, 3.0, true, false);
  const double learned = update.EstimatedRate(from);
  ASSERT_GT(learned, 0.0);
  update.CarryEstimator(from, to);
  EXPECT_DOUBLE_EQ(update.EstimatedRate(to), learned);
  EXPECT_DOUBLE_EQ(update.EstimatedRate(from), 0.0);
  // Carrying an untracked URL is a no-op.
  update.CarryEstimator(simweb::Url{9, 9, 0}, to);
  EXPECT_DOUBLE_EQ(update.EstimatedRate(to), learned);
}

TEST(DefenseTest, MigrationsRehomePagesWithEstimatorState) {
  simweb::WebConfig wc = AdvWeb("domain-migration");
  simweb::SimulatedWeb web(wc);
  IncrementalCrawler crawler(&web, IncConfig(2, true));
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(20.0).ok());
  EXPECT_GT(crawler.stats().pages_migrated, 0u);
}

// ----------------------------------------------- headline invariants

TEST(DefensePipelineTest, ShardCountInvariantUnderEveryScenario) {
  for (const char* scenario : {"spider-trap", "mirror-farm",
                               "domain-migration", "heavy-tail"}) {
    for (bool defense : {true, false}) {
      simweb::WebConfig wc = AdvWeb(scenario);
      simweb::SimulatedWeb web_1(wc);
      IncrementalCrawler serial(&web_1, IncConfig(1, defense));
      ASSERT_TRUE(serial.Bootstrap(0.0).ok());
      ASSERT_TRUE(serial.RunUntil(8.0).ok());

      simweb::SimulatedWeb web_8(wc);
      IncrementalCrawler sharded(&web_8, IncConfig(8, defense));
      ASSERT_TRUE(sharded.Bootstrap(0.0).ok());
      ASSERT_TRUE(sharded.RunUntil(8.0).ok());

      EXPECT_EQ(CheckpointBytes(serial), CheckpointBytes(sharded))
          << scenario << " defense=" << defense;
      EXPECT_EQ(serial.stats().wasted_fetches,
                sharded.stats().wasted_fetches)
          << scenario << " defense=" << defense;
    }
  }
}

// Save mid-throttle / mid-quarantine at one shard count, resume at
// another, rejoin the uninterrupted trajectory byte-for-byte: the
// defense section carries throttle levels, quarantine clocks, and the
// fingerprint registry.
TEST(DefensePipelineTest, MidThrottleResumeAcrossShardCounts) {
  simweb::WebConfig wc = AdvWeb("spider-trap");
  IncrementalCrawlerConfig config = IncConfig(1, true);
  config.defense_yield_window = 12;

  simweb::SimulatedWeb web_a(wc);
  IncrementalCrawler straight(&web_a, config);
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(12.0).ok());
  const std::string want = CheckpointBytes(straight);
  ASSERT_GT(straight.stats().trap_sites_throttled, 0u);

  for (int save_shards : {1, 8}) {
    const int load_shards = save_shards == 8 ? 1 : 8;
    IncrementalCrawlerConfig save_config = config;
    save_config.crawl_parallelism = save_shards;
    simweb::SimulatedWeb web_b(wc);
    IncrementalCrawler saver(&web_b, save_config);
    ASSERT_TRUE(saver.Bootstrap(0.0).ok());
    ASSERT_TRUE(saver.RunUntil(6.0).ok());
    std::string mid = CheckpointBytes(saver);

    IncrementalCrawlerConfig load_config = config;
    load_config.crawl_parallelism = load_shards;
    simweb::SimulatedWeb web_c(wc);
    IncrementalCrawler resumed(&web_c, load_config);
    std::istringstream mid_in(mid);
    Status loaded = LoadCrawler(mid_in, &resumed);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    ASSERT_TRUE(resumed.RunUntil(12.0).ok());
    EXPECT_EQ(CheckpointBytes(resumed), want)
        << "save at N=" << save_shards << ", load at N=" << load_shards;
  }
}

// Faults and adversarial structure compose: transient errors inside a
// trap-riddled web stay deterministic across shard counts and keep the
// estimator-evidence ledger clean.
TEST(DefensePipelineTest, ComposedFaultsAndTrapsStayClean) {
  simweb::WebConfig wc = AdvWeb("spider-trap");
  ASSERT_TRUE(simweb::ApplyFaultScenario("transient10", &wc).ok());

  simweb::SimulatedWeb web_1(wc);
  IncrementalCrawler serial(&web_1, IncConfig(1, true));
  ASSERT_TRUE(serial.Bootstrap(0.0).ok());
  ASSERT_TRUE(serial.RunUntil(10.0).ok());

  simweb::SimulatedWeb web_8(wc);
  IncrementalCrawler sharded(&web_8, IncConfig(8, true));
  ASSERT_TRUE(sharded.Bootstrap(0.0).ok());
  ASSERT_TRUE(sharded.RunUntil(10.0).ok());

  EXPECT_EQ(CheckpointBytes(serial), CheckpointBytes(sharded));

  const auto& s = serial.stats();
  const auto& update = serial.update_module();
  EXPECT_GT(s.fetch_failures, 0u);
  EXPECT_EQ(update.failures_recorded(), s.fetch_failures);
  // Every planned slot is a politeness rejection, a classified failure,
  // a 404, or a successful visit; only the last feeds the estimators —
  // suppressed duplicates included (they were successful fetches).
  EXPECT_EQ(update.visits_recorded(),
            s.crawls - s.politeness_retries - s.fetch_failures -
                web_1.not_found_count());
}

// The defense ledger reaches the query surface.
TEST(DefensePipelineTest, ViewSummaryCarriesDefenseLedger) {
  simweb::SimulatedWeb web(AdvWeb("mirror-farm"));
  IncrementalCrawlerConfig config = IncConfig(2, true);
  config.publish_view_every_batches = 1;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(6.0).ok());
  serving::ViewRef view = crawler.views().AcquireRef();
  ASSERT_TRUE(view.get() != nullptr);
  int found = 0;
  for (const auto& [key, value] : view.get()->summary) {
    if (key == "wasted_fetches") {
      ++found;
      EXPECT_EQ(value, std::to_string(crawler.stats().wasted_fetches));
    }
    if (key == "trap_sites_throttled" ||
        key == "duplicate_urls_suppressed" || key == "pages_migrated") {
      ++found;
    }
  }
  EXPECT_EQ(found, 4);
}

}  // namespace
}  // namespace webevo::crawler
