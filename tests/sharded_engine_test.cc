// Coverage for the sharded crawl engine stack: ThreadPool semantics,
// RunningStat::Merge, CrawlModulePool politeness isolation under the
// engine's shard partitioning, and the headline guarantee — simulation
// results are bit-identical no matter how many shards execute the
// fetches.

#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/crawl_module_pool.h"
#include "crawler/eval.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/sharded_crawl_engine.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace webevo::crawler {
namespace {

simweb::WebConfig SmallWeb(uint64_t seed) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {5, 4, 2, 2};
  c.min_site_size = 20;
  c.max_site_size = 80;
  return c;
}

// --------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunAndWaitExecutesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { ++counter; });
  }
  pool.RunAndWait(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RunAndWaitIsABarrier) {
  // Tasks of very different durations: RunAndWait must not return until
  // the slowest has finished.
  ThreadPool pool(3);
  std::atomic<int> finished{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([&finished, i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(i * 3));
      ++finished;
    });
  }
  pool.RunAndWait(std::move(tasks));
  EXPECT_EQ(finished.load(), 6);
}

TEST(ThreadPoolTest, SubmitRunsAsynchronouslyAndDrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.RunAndWait({[&ran] { ran = true; }});
  EXPECT_TRUE(ran.load());
}

// --------------------------------------------------------- RunningStat merge

TEST(RunningStatMergeTest, MatchesSequentialAccumulation) {
  Rng rng(17);
  RunningStat sequential;
  RunningStat shard_a, shard_b, shard_c;
  for (int i = 0; i < 3000; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sequential.Add(x);
    (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c).Add(x);
  }
  RunningStat merged;
  merged.Merge(shard_a);
  merged.Merge(shard_b);
  merged.Merge(shard_c);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
}

TEST(RunningStatMergeTest, MergingEmptyIsIdentity) {
  RunningStat stat;
  stat.Add(1.0);
  stat.Add(5.0);
  RunningStat empty;
  stat.Merge(empty);
  EXPECT_EQ(stat.count(), 2);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  empty.Merge(stat);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// ------------------------------------------------------ politeness isolation

TEST(ShardedEngineTest, SameSiteFetchesStayPoliteWithinOneBatch) {
  // Two fetches of one site inside a single parallel batch: the site's
  // owning module must serialise them and reject the second, for every
  // shard count.
  for (int shards : {1, 2, 8}) {
    simweb::SimulatedWeb web(SmallWeb(31));
    CrawlModuleConfig config;
    config.per_site_delay_days = 0.5;
    config.enforce_politeness = true;
    ShardedCrawlEngine engine(&web, config, shards);
    std::vector<PlannedFetch> batch;
    for (uint32_t s = 0; s < web.num_sites(); ++s) {
      batch.push_back({web.RootUrl(s), 0.0});
      batch.push_back({web.RootUrl(s), 0.1});  // within the delay
    }
    auto outcomes = engine.ExecuteBatch(batch);
    ASSERT_EQ(outcomes.size(), batch.size());
    for (std::size_t i = 0; i < outcomes.size(); i += 2) {
      EXPECT_TRUE(outcomes[i].ok()) << "shards=" << shards << " i=" << i;
      ASSERT_FALSE(outcomes[i + 1].ok());
      EXPECT_EQ(outcomes[i + 1].status().code(),
                StatusCode::kFailedPrecondition);
    }
    EXPECT_EQ(engine.pool().politeness_rejections(), web.num_sites());
  }
}

TEST(ShardedEngineTest, SiteOwnershipIsStableUnderTheShardMapping) {
  simweb::SimulatedWeb web(SmallWeb(32));
  CrawlModulePool pool(&web, {}, 5);
  for (uint32_t site = 0; site < web.num_sites(); ++site) {
    // Same module every time — politeness state has a single owner.
    const CrawlModule* owner = &pool.module_for_site(site);
    EXPECT_EQ(owner, &pool.module(pool.ShardOf(site)));
    EXPECT_EQ(pool.ShardOf(site), site % 5u);
  }
}

TEST(ShardedEngineTest, OutcomesComeBackInPlanOrder) {
  simweb::SimulatedWeb web(SmallWeb(33));
  ShardedCrawlEngine engine(&web, {}, 4);
  std::vector<PlannedFetch> batch;
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    batch.push_back({web.RootUrl(s), 0.25});
  }
  auto outcomes = engine.ExecuteBatch(batch);
  ASSERT_EQ(outcomes.size(), batch.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i]->url, batch[i].url);
  }
  EXPECT_EQ(engine.stats().batches, 1u);
  EXPECT_EQ(engine.stats().fetches, batch.size());
  EXPECT_GT(engine.stats().busiest_shard_fetches.max(), 0.0);
  // Per-shard latency accumulators merged at the barrier: one sample
  // per fetch.
  EXPECT_EQ(engine.stats().fetch_latency_seconds.count(),
            static_cast<int64_t>(batch.size()));
  EXPECT_GE(engine.stats().fetch_latency_seconds.min(), 0.0);
}

// ------------------------------------------------------- per-shard retry lane

TEST(ShardedEngineTest, RetryTimeIsCapturedAtTheAttemptNotBatchEnd) {
  // One site, three planned fetches: t=0 succeeds, t=0.1 is rejected
  // (within the 0.5-day delay), t=0.7 succeeds and pushes the site's
  // NextAllowedTime to 1.2. The retry lane must report 0.5 for the
  // rejected fetch — the polite time as of the attempt — not the
  // batch-end 1.2, at every shard count.
  for (int shards : {1, 4}) {
    simweb::SimulatedWeb web(SmallWeb(51));
    CrawlModuleConfig config;
    config.per_site_delay_days = 0.5;
    config.enforce_politeness = true;
    ShardedCrawlEngine engine(&web, config, shards);
    simweb::Url root = web.RootUrl(0);
    std::vector<PlannedFetch> batch = {
        {root, 0.0}, {root, 0.1}, {root, 0.7}};
    std::vector<double> retry_at;
    auto outcomes = engine.ExecuteBatch(batch, &retry_at);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    ASSERT_FALSE(outcomes[1].ok());
    EXPECT_EQ(outcomes[1].status().code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(outcomes[2].ok());
    ASSERT_EQ(retry_at.size(), 3u);
    EXPECT_DOUBLE_EQ(retry_at[1], 0.5) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(retry_at[2], 1.2);
    EXPECT_DOUBLE_EQ(engine.pool().NextAllowedTime(root.site), 1.2);
  }
}

// --------------------------------------------- sharded freshness measurement

TEST(ShardedEngineTest, ShardedMeasureIsBitIdenticalToSerialMeasure) {
  // Build a collection by fetching real pages, then let the web churn so
  // the measurement sees fresh, stale and dead entries.
  simweb::WebConfig wc = SmallWeb(61);
  wc.uniform_lifespan_days = 40.0;
  simweb::SimulatedWeb web(wc);
  Collection collection(10000);
  ShardedCrawlEngine engine(&web, {}, 1);
  std::vector<PlannedFetch> batch;
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    for (uint32_t slot = 0; slot < web.site_size(s); ++slot) {
      batch.push_back({simweb::Url{s, slot, 0}, 0.5});
    }
  }
  auto outcomes = engine.ExecuteBatch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!outcomes[i].ok()) continue;
    CollectionEntry entry;
    entry.url = batch[i].url;
    entry.page = outcomes[i]->page;
    entry.version = outcomes[i]->version;
    entry.checksum = outcomes[i]->checksum;
    entry.crawled_at = 0.5;
    ASSERT_TRUE(collection.Upsert(std::move(entry)).ok());
  }
  ASSERT_GT(collection.size(), 100u);

  const double t = 30.0;  // well past many change/death events
  CollectionQuality serial = MeasureCollection(web, collection, t);
  EXPECT_GT(serial.size, 0u);
  EXPECT_GT(serial.dead, 0u);  // churn exercised the dead path
  EXPECT_GT(serial.fresh, 0u);
  EXPECT_GT(serial.mean_stale_age_days, 0.0);
  for (int shards : {2, 3, 8}) {
    ThreadPool threads(shards);
    CollectionQuality sharded =
        MeasureCollectionSharded(web, collection, t, threads, shards);
    // Bit-identical, doubles included: the canonical site-ordered
    // reduction makes the split invisible to the floating-point sums.
    EXPECT_EQ(sharded.freshness, serial.freshness) << "shards=" << shards;
    EXPECT_EQ(sharded.mean_stale_age_days, serial.mean_stale_age_days);
    EXPECT_EQ(sharded.size, serial.size);
    EXPECT_EQ(sharded.fresh, serial.fresh);
    EXPECT_EQ(sharded.dead, serial.dead);
  }
}

// ------------------------------------------------------ engine determinism

struct IncrementalFingerprint {
  CollectionQuality quality;
  IncrementalCrawler::Stats stats;
  std::size_t collection_size = 0;
  uint64_t web_fetches = 0;
  uint64_t web_not_found = 0;
  uint64_t pages_created = 0;
};

IncrementalFingerprint RunIncremental(int parallelism, uint64_t seed) {
  simweb::WebConfig wc = SmallWeb(seed);
  wc.uniform_lifespan_days = 25.0;  // churn exercises the dead-page path
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config;
  config.collection_capacity = 150;
  config.crawl_rate_pages_per_day = 60.0;
  config.crawl_parallelism = parallelism;
  // Longer than one crawl slot (1/60 day), so back-to-back same-site
  // slots — common during greedy fill — get rejected and retried.
  config.crawl.per_site_delay_days = 0.02;
  config.crawl.enforce_politeness = true;
  IncrementalCrawler crawler(&web, config);
  EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
  EXPECT_TRUE(crawler.RunUntil(30.0).ok());
  IncrementalFingerprint fp;
  fp.quality = crawler.MeasureNow();
  fp.stats = crawler.stats();
  fp.collection_size = crawler.collection().size();
  fp.web_fetches = web.fetch_count();
  fp.web_not_found = web.not_found_count();
  fp.pages_created = web.OracleTotalPagesCreated();
  return fp;
}

void ExpectIdentical(const IncrementalFingerprint& a,
                     const IncrementalFingerprint& b) {
  // Bit-identical, not approximately equal: every double must match
  // exactly.
  EXPECT_EQ(a.quality.freshness, b.quality.freshness);
  EXPECT_EQ(a.quality.mean_stale_age_days, b.quality.mean_stale_age_days);
  EXPECT_EQ(a.quality.size, b.quality.size);
  EXPECT_EQ(a.quality.fresh, b.quality.fresh);
  EXPECT_EQ(a.quality.dead, b.quality.dead);
  EXPECT_EQ(a.stats.crawls, b.stats.crawls);
  EXPECT_EQ(a.stats.in_place_updates, b.stats.in_place_updates);
  EXPECT_EQ(a.stats.pages_added, b.stats.pages_added);
  EXPECT_EQ(a.stats.pages_evicted, b.stats.pages_evicted);
  EXPECT_EQ(a.stats.replacements_executed, b.stats.replacements_executed);
  EXPECT_EQ(a.stats.dead_pages_removed, b.stats.dead_pages_removed);
  EXPECT_EQ(a.stats.changes_detected, b.stats.changes_detected);
  EXPECT_EQ(a.stats.politeness_retries, b.stats.politeness_retries);
  EXPECT_EQ(a.stats.in_batch_retries, b.stats.in_batch_retries);
  EXPECT_EQ(a.stats.new_page_latency_days.count(),
            b.stats.new_page_latency_days.count());
  EXPECT_EQ(a.stats.new_page_latency_days.mean(),
            b.stats.new_page_latency_days.mean());
  EXPECT_EQ(a.stats.new_page_latency_days.min(),
            b.stats.new_page_latency_days.min());
  EXPECT_EQ(a.stats.new_page_latency_days.max(),
            b.stats.new_page_latency_days.max());
  EXPECT_EQ(a.collection_size, b.collection_size);
  EXPECT_EQ(a.web_fetches, b.web_fetches);
  EXPECT_EQ(a.web_not_found, b.web_not_found);
  EXPECT_EQ(a.pages_created, b.pages_created);
}

TEST(ShardedEngineTest, PhaseTimingsCoverTheWholeBatchCycle) {
  simweb::SimulatedWeb web(SmallWeb(71));
  IncrementalCrawlerConfig config;
  config.collection_capacity = 100;
  config.crawl_rate_pages_per_day = 50.0;
  config.crawl_parallelism = 4;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(5.0).ok());
  const ShardedCrawlEngine::Stats& stats = crawler.engine().stats();
  // Plan, fetch and apply carry one sample per non-empty batch; the
  // measure phase one per freshness sample.
  EXPECT_EQ(stats.plan_seconds.count(),
            static_cast<int64_t>(stats.batches));
  EXPECT_EQ(stats.fetch_seconds.count(),
            static_cast<int64_t>(stats.batches));
  EXPECT_EQ(stats.apply_seconds.count(),
            static_cast<int64_t>(stats.batches));
  EXPECT_GT(stats.fetch_seconds.count(), 0);
  EXPECT_GT(stats.measure_seconds.count(), 0);
  EXPECT_GE(stats.plan_seconds.min(), 0.0);
  EXPECT_GE(stats.measure_seconds.min(), 0.0);
}

TEST(ShardedEngineTest, IncrementalCrawlIsIdenticalAcrossShardCounts) {
  IncrementalFingerprint serial = RunIncremental(1, 41);
  ASSERT_GT(serial.stats.crawls, 500u);
  ASSERT_GT(serial.stats.politeness_retries, 0u);  // contention exercised
  ExpectIdentical(serial, RunIncremental(8, 41));
  ExpectIdentical(serial, RunIncremental(3, 41));
}

// --------------------------------------------------- in-batch retries

TEST(ShardedEngineTest, PolitenessRetriesAreRetiredWithinTheBatch) {
  // Slots are 1/60 day apart but the polite delay is 0.05 days, so
  // back-to-back same-site slots collide; with day-long batch windows
  // (sample == rebalance == 1 day, refinement far away) the polite
  // window reopens well before the window closes, and the rejected
  // fetches must be refetched inside their own batch instead of
  // waiting for the next one.
  for (int shards : {1, 4}) {
    simweb::WebConfig wc = SmallWeb(83);
    wc.uniform_lifespan_days = 1e7;  // no deaths: retries only
    simweb::SimulatedWeb web(wc);
    IncrementalCrawlerConfig config;
    config.collection_capacity = 150;
    config.crawl_rate_pages_per_day = 60.0;
    config.freshness_sample_interval_days = 1.0;
    config.rebalance_interval_days = 1.0;
    config.refine_interval_days = 50.0;
    config.crawl_parallelism = shards;
    config.crawl.per_site_delay_days = 0.05;
    config.crawl.enforce_politeness = true;
    IncrementalCrawler crawler(&web, config);
    ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
    ASSERT_TRUE(crawler.RunUntil(10.0).ok());
    EXPECT_GT(crawler.stats().politeness_retries, 0u)
        << "shards=" << shards;
    // The regression guard: rejected URLs are fetched in-batch again.
    EXPECT_GT(crawler.stats().in_batch_retries, 0u) << "shards=" << shards;
    // Every crawl is either a slot fetch or an in-batch retry fetch;
    // the retry fetches really hit the web (rejections do not).
    EXPECT_EQ(web.fetch_count() + crawler.stats().politeness_retries,
              crawler.stats().crawls);
  }
}

TEST(ShardedEngineTest, MostShortDelayRejectionsRetireInBatch) {
  // The latency point of the feature: with a 0.05-day polite delay
  // inside day-long batch windows, the window nearly always reopens
  // in-batch, so the bulk of rejections must be retired by an in-batch
  // refetch rather than deferred a whole batch.
  simweb::WebConfig wc = SmallWeb(84);
  wc.uniform_lifespan_days = 1e7;
  simweb::SimulatedWeb web(wc);
  IncrementalCrawlerConfig config;
  config.collection_capacity = 150;
  config.crawl_rate_pages_per_day = 60.0;
  config.freshness_sample_interval_days = 1.0;
  config.rebalance_interval_days = 1.0;
  config.refine_interval_days = 50.0;
  config.crawl.per_site_delay_days = 0.05;
  config.crawl.enforce_politeness = true;
  IncrementalCrawler crawler(&web, config);
  ASSERT_TRUE(crawler.Bootstrap(0.0).ok());
  ASSERT_TRUE(crawler.RunUntil(8.0).ok());
  ASSERT_GT(crawler.stats().politeness_retries, 0u);
  EXPECT_GT(2 * crawler.stats().in_batch_retries,
            crawler.stats().politeness_retries);
}

// ----------------------------------- snapshot bytes across shard counts

TEST(ShardedEngineTest, SnapshotBytesAreIdenticalAcrossShardCounts) {
  // The full apply + snapshot determinism case: run the same simulation
  // at 1 and 5 shards, snapshot collection, update module and frontier,
  // and require *byte-identical* files — records are canonically
  // ordered, so equal logical state means equal bytes. Then restore
  // the frontier at yet another shard count and require a bit-identical
  // pop order.
  auto snapshot_bytes = [](int parallelism) {
    simweb::WebConfig wc = SmallWeb(85);
    wc.uniform_lifespan_days = 25.0;
    simweb::SimulatedWeb web(wc);
    IncrementalCrawlerConfig config;
    config.collection_capacity = 150;
    config.crawl_rate_pages_per_day = 60.0;
    config.crawl_parallelism = parallelism;
    config.crawl.per_site_delay_days = 0.02;
    config.crawl.enforce_politeness = true;
    IncrementalCrawler crawler(&web, config);
    EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
    EXPECT_TRUE(crawler.RunUntil(12.0).ok());
    std::ostringstream collection, update, frontier;
    EXPECT_TRUE(SaveCollection(crawler.collection(), collection).ok());
    EXPECT_TRUE(SaveUpdateModule(crawler.update_module(), update).ok());
    EXPECT_TRUE(SaveFrontier(crawler.coll_urls(), frontier).ok());
    return std::tuple{collection.str(), update.str(), frontier.str()};
  };
  auto serial = snapshot_bytes(1);
  auto sharded = snapshot_bytes(5);
  EXPECT_EQ(std::get<0>(serial), std::get<0>(sharded));
  EXPECT_EQ(std::get<1>(serial), std::get<1>(sharded));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(sharded));

  // Round-trip: the restored frontier pops exactly like the live one.
  std::istringstream frontier_in(std::get<2>(serial));
  auto restored = LoadFrontier(frontier_in, 3);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::ostringstream again;
  ASSERT_TRUE(SaveFrontier(*restored, again).ok());
  EXPECT_EQ(again.str(), std::get<2>(serial));
}

TEST(ShardedEngineTest, PeriodicCrawlIsIdenticalAcrossShardCounts) {
  auto run = [](int parallelism) {
    simweb::WebConfig wc = SmallWeb(42);
    simweb::SimulatedWeb web(wc);
    PeriodicCrawlerConfig config;
    config.collection_capacity = 120;
    config.cycle_days = 10.0;
    config.crawl_window_days = 3.0;
    config.crawl_parallelism = parallelism;
    PeriodicCrawler crawler(&web, config);
    EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
    EXPECT_TRUE(crawler.RunUntil(25.0).ok());
    return std::tuple{crawler.MeasureNow().freshness,
                      crawler.MeasureNow().size,
                      crawler.stats().crawls,
                      crawler.stats().pages_stored,
                      crawler.stats().dead_fetches,
                      crawler.cycles_completed(),
                      web.fetch_count(),
                      web.OracleTotalPagesCreated()};
  };
  auto serial = run(1);
  EXPECT_GT(std::get<2>(serial), 200u);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace webevo::crawler
