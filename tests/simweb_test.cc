#include <cmath>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "simweb/domain.h"
#include "simweb/domain_profile.h"
#include "simweb/simulated_web.h"
#include "simweb/url.h"
#include "simweb/web_config.h"
#include "util/random.h"
#include "util/stats.h"

namespace webevo::simweb {
namespace {

WebConfig SmallConfig(uint64_t seed = 7) {
  WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {4, 3, 2, 2};
  c.min_site_size = 20;
  c.max_site_size = 60;
  return c;
}

// ------------------------------------------------------------------- Url

TEST(UrlTest, EqualityAndToString) {
  Url a{1, 2, 3};
  Url b{1, 2, 3};
  Url c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "site1/p2_v3");
}

TEST(UrlTest, HashDistinguishesFields) {
  UrlHash h;
  EXPECT_NE(h(Url{1, 2, 3}), h(Url{3, 2, 1}));
  EXPECT_EQ(h(Url{1, 2, 3}), h(Url{1, 2, 3}));
}

// ----------------------------------------------------------- WebConfig

TEST(WebConfigTest, DefaultIsValid) {
  EXPECT_TRUE(WebConfig().Validate().ok());
}

TEST(WebConfigTest, RejectsBadValues) {
  WebConfig c;
  c.sites_per_domain = {0, 0, 0, 0};
  EXPECT_FALSE(c.Validate().ok());

  c = WebConfig();
  c.min_site_size = 10;
  c.max_site_size = 5;
  EXPECT_FALSE(c.Validate().ok());

  c = WebConfig();
  c.tree_branching = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = WebConfig();
  c.cross_site_link_prob = 1.5;
  EXPECT_FALSE(c.Validate().ok());

  c = WebConfig();
  c.cross_links_per_page = -1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(WebConfigTest, ScaledKeepsAtLeastOneSite) {
  WebConfig c = WebConfig().Scaled(0.001);
  for (int n : c.sites_per_domain) EXPECT_GE(n, 1);
}

// -------------------------------------------------------- DomainProfile

TEST(DomainProfileTest, CalibratedProfilesExistForAllDomains) {
  for (Domain d : kAllDomains) {
    const DomainProfile& p = DomainProfile::Calibrated(d);
    EXPECT_FALSE(p.change_interval_mixture().empty());
    EXPECT_FALSE(p.lifespan_mixture().empty());
  }
}

TEST(DomainProfileTest, ComHasMostDailyChangers) {
  // Fig 2b: > 40% of com pages changed every day; < 10% elsewhere (for
  // the *measured*, length-biased population — birth mass may sit a
  // touch higher, so the non-com bound here is 0.12).
  double com = DomainProfile::Calibrated(Domain::kCom)
                   .IntervalMassBetween(0.0, 1.0);
  EXPECT_GT(com, 0.40);
  for (Domain d : {Domain::kEdu, Domain::kNetOrg, Domain::kGov}) {
    EXPECT_LT(DomainProfile::Calibrated(d).IntervalMassBetween(0.0, 1.0),
              0.12)
        << DomainName(d);
  }
}

TEST(DomainProfileTest, EduGovMostlyStatic) {
  // Fig 2b: > 50% of edu and gov pages unchanged over 4 months. The
  // *birth* mass here is a bit lower; the standing population measured
  // by the study is length-biased toward these long-interval pages and
  // exceeds 50% (asserted end-to-end by the experiment tests).
  for (Domain d : {Domain::kEdu, Domain::kGov}) {
    EXPECT_GE(DomainProfile::Calibrated(d).IntervalMassBetween(120.0, 1e9),
              0.45)
        << DomainName(d);
  }
}

TEST(DomainProfileTest, SamplesRespectMixtureSupport) {
  Rng rng(3);
  const DomainProfile& p = DomainProfile::Calibrated(Domain::kCom);
  for (int i = 0; i < 2000; ++i) {
    double interval = p.SampleChangeInterval(rng);
    EXPECT_GE(interval, 0.02);
    EXPECT_LE(interval, 3000.0);
    double life = p.SampleLifespan(rng);
    EXPECT_GE(life, 1.0);
    EXPECT_LE(life, 1500.0);
  }
}

TEST(DomainProfileTest, SampledBucketFractionsMatchWeights) {
  Rng rng(4);
  const DomainProfile& p = DomainProfile::Calibrated(Domain::kCom);
  int daily = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    daily += p.SampleChangeInterval(rng) <= 1.0;
  }
  EXPECT_NEAR(static_cast<double>(daily) / n, 0.50, 0.02);
}

TEST(DomainProfileTest, IntervalMassIsAProbability) {
  const DomainProfile& p = DomainProfile::Calibrated(Domain::kGov);
  double total = p.IntervalMassBetween(0.0, 1e12);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(p.IntervalMassBetween(1.0, 7.0), 0.0);
}

// --------------------------------------------------------- SimulatedWeb

TEST(SimulatedWebTest, ConstructionMatchesConfig) {
  WebConfig c = SmallConfig();
  SimulatedWeb web(c);
  EXPECT_EQ(web.num_sites(), 11u);
  int by_domain[kNumDomains] = {};
  uint64_t slots = 0;
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    ++by_domain[static_cast<int>(web.site_domain(s))];
    EXPECT_GE(web.site_size(s), c.min_site_size);
    EXPECT_LE(web.site_size(s), c.max_site_size);
    slots += web.site_size(s);
  }
  EXPECT_EQ(by_domain[0], 4);
  EXPECT_EQ(by_domain[1], 3);
  EXPECT_EQ(by_domain[2], 2);
  EXPECT_EQ(by_domain[3], 2);
  EXPECT_EQ(web.TotalSlots(), slots);
}

TEST(SimulatedWebTest, DeterministicAcrossInstances) {
  SimulatedWeb a(SmallConfig(11));
  SimulatedWeb b(SmallConfig(11));
  auto ra = a.Fetch(a.RootUrl(0), 0.5);
  auto rb = b.Fetch(b.RootUrl(0), 0.5);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->checksum, rb->checksum);
  EXPECT_EQ(ra->links.size(), rb->links.size());
}

TEST(SimulatedWebTest, FetchRootSucceeds) {
  SimulatedWeb web(SmallConfig());
  auto result = web.Fetch(web.RootUrl(0), 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->url, web.RootUrl(0));
  EXPECT_FALSE(result->links.empty());
}

TEST(SimulatedWebTest, FetchBadSiteIsNotFound) {
  SimulatedWeb web(SmallConfig());
  auto result = web.Fetch(Url{999, 0, 0}, 0.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SimulatedWebTest, FetchRejectsTimeTravel) {
  SimulatedWeb web(SmallConfig());
  ASSERT_TRUE(web.Fetch(web.RootUrl(0), 10.0).ok());
  auto result = web.Fetch(web.RootUrl(0), 5.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimulatedWebTest, ChecksumChangesExactlyWithVersion) {
  SimulatedWeb web(SmallConfig());
  Url root = web.RootUrl(0);
  auto first = web.Fetch(root, 0.0);
  ASSERT_TRUE(first.ok());
  // Find a time where the version differs.
  for (double t = 5.0; t <= 400.0; t += 5.0) {
    auto next = web.Fetch(root, t);
    ASSERT_TRUE(next.ok());
    if (next->version != first->version) {
      EXPECT_FALSE(next->checksum == first->checksum);
      return;
    }
    EXPECT_EQ(next->checksum, first->checksum);
  }
  GTEST_SKIP() << "root never changed in 400 days (rare seed)";
}

TEST(SimulatedWebTest, ChecksumMatchesBody) {
  SimulatedWeb web(SmallConfig());
  auto result = web.Fetch(web.RootUrl(1), 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->checksum,
            ChecksumOf(web.PageBody(result->page, result->version)));
}

TEST(SimulatedWebTest, LinksStayWithinValidSlots) {
  SimulatedWeb web(SmallConfig());
  auto result = web.Fetch(web.RootUrl(0), 0.0);
  ASSERT_TRUE(result.ok());
  for (const Url& link : result->links) {
    ASSERT_LT(link.site, web.num_sites());
    ASSERT_LT(link.slot, web.site_size(link.site));
  }
}

TEST(SimulatedWebTest, TreeChildrenLinked) {
  WebConfig c = SmallConfig();
  c.cross_links_per_page = 0;
  SimulatedWeb web(c);
  auto result = web.Fetch(web.RootUrl(0), 0.0);
  ASSERT_TRUE(result.ok());
  // With no cross links, the root's links are exactly slots 1..branching.
  ASSERT_EQ(result->links.size(),
            static_cast<std::size_t>(c.tree_branching));
  for (int b = 0; b < c.tree_branching; ++b) {
    EXPECT_EQ(result->links[static_cast<std::size_t>(b)].slot,
              static_cast<uint32_t>(b + 1));
    EXPECT_EQ(result->links[static_cast<std::size_t>(b)].site, 0u);
  }
}

TEST(SimulatedWebTest, RootIsImmortal) {
  SimulatedWeb web(SmallConfig());
  auto root = web.Fetch(web.RootUrl(3), 0.0);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(std::isinf(web.OracleDeathTime(root->page)));
  auto later = web.Fetch(web.RootUrl(3), 1000.0);
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(later->page, root->page);  // same page, same URL, still alive
}

TEST(SimulatedWebTest, DeadPageReturnsNotFoundAndSlotIsReborn) {
  WebConfig c = SmallConfig(21);
  // Short uniform lifespans force turnover quickly.
  c.uniform_lifespan_days = 5.0;
  SimulatedWeb web(c);
  Url first = web.OracleCurrentUrl(0, 3, 0.0);
  EXPECT_EQ(first.incarnation, 0u);
  // After several lifespans the slot must host a later incarnation.
  Url later = web.OracleCurrentUrl(0, 3, 30.0);
  EXPECT_GT(later.incarnation, first.incarnation);
  auto dead_fetch = web.Fetch(first, 31.0);
  EXPECT_FALSE(dead_fetch.ok());
  EXPECT_EQ(dead_fetch.status().code(), StatusCode::kNotFound);
  auto live_fetch = web.Fetch(later, 31.0);
  EXPECT_TRUE(live_fetch.ok());
}

TEST(SimulatedWebTest, UniformLifespanIsExact) {
  WebConfig c = SmallConfig(22);
  c.uniform_lifespan_days = 10.0;
  SimulatedWeb web(c);
  // A page born during the run (incarnation >= 1) lives exactly 10 days.
  Url u = web.OracleCurrentUrl(1, 5, 25.0);
  ASSERT_GE(u.incarnation, 1u);
  auto id = web.OracleLookup(u);
  ASSERT_TRUE(id.ok());
  EXPECT_NEAR(web.OracleDeathTime(*id) - web.OracleBirthTime(*id), 10.0,
              1e-9);
}

TEST(SimulatedWebTest, VersionMonotonicNonDecreasing) {
  SimulatedWeb web(SmallConfig(23));
  Url root = web.RootUrl(0);
  uint64_t prev = 0;
  for (double t = 0.0; t <= 200.0; t += 10.0) {
    auto v = web.OracleVersion(root, t);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(*v, prev);
    prev = *v;
  }
}

TEST(SimulatedWebTest, PoissonChangeCountMatchesRate) {
  // Property: over horizon H, E[version] = rate * H for an immortal page.
  WebConfig c = SmallConfig(24);
  c.uniform_change_interval_days = 4.0;
  c.uniform_lifespan_days = 1e6;
  SimulatedWeb web(c);
  const double horizon = 400.0;
  RunningStat changes_per_day;
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    for (uint32_t slot = 0; slot < web.site_size(s); ++slot) {
      Url u = web.OracleCurrentUrl(s, slot, 0.0);
      auto v = web.OracleVersion(u, horizon);
      if (!v.ok()) continue;
      changes_per_day.Add(static_cast<double>(*v) / horizon);
    }
  }
  EXPECT_GT(changes_per_day.count(), 200);
  EXPECT_NEAR(changes_per_day.mean(), 0.25, 0.01);
}

TEST(SimulatedWebTest, OracleIsFreshTracksVersion) {
  WebConfig c = SmallConfig(25);
  c.uniform_change_interval_days = 2.0;
  c.uniform_lifespan_days = 1e6;
  SimulatedWeb web(c);
  Url u = web.OracleCurrentUrl(0, 1, 0.0);
  auto fetched = web.Fetch(u, 0.0);
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(web.OracleIsFresh(u, fetched->version, 0.0));
  // After many mean intervals the page has almost surely changed.
  EXPECT_FALSE(web.OracleIsFresh(u, fetched->version, 100.0));
}

TEST(SimulatedWebTest, OracleLastChangeTimeWithinBounds) {
  WebConfig c = SmallConfig(26);
  c.uniform_change_interval_days = 1.0;
  c.uniform_lifespan_days = 1e6;
  SimulatedWeb web(c);
  Url u = web.OracleCurrentUrl(0, 2, 0.0);
  auto t0 = web.OracleLastChangeTime(u, 50.0);
  ASSERT_TRUE(t0.ok());
  EXPECT_LE(*t0, 50.0);
  EXPECT_GE(*t0, 0.0);
}

TEST(SimulatedWebTest, OracleLookupRejectsUnknown) {
  SimulatedWeb web(SmallConfig());
  EXPECT_FALSE(web.OracleLookup(Url{0, 0, 99}).ok());
  EXPECT_FALSE(web.OracleLookup(Url{99, 0, 0}).ok());
}

TEST(SimulatedWebTest, FetchStatisticsAccumulate) {
  SimulatedWeb web(SmallConfig());
  ASSERT_TRUE(web.Fetch(web.RootUrl(0), 0.0).ok());
  ASSERT_TRUE(web.Fetch(web.RootUrl(0), 0.1).ok());
  EXPECT_FALSE(web.Fetch(Url{0, 1, 55}, 0.2).ok());
  EXPECT_EQ(web.fetch_count(), 3u);
  EXPECT_EQ(web.not_found_count(), 1u);
  EXPECT_EQ(web.site_fetch_count(0), 3u);
}

TEST(SimulatedWebTest, SiteLinksAreCrossSiteOnly) {
  SimulatedWeb web(SmallConfig(27));
  auto links = web.OracleSiteLinks(0.0);
  EXPECT_FALSE(links.empty());
  for (const auto& link : links) {
    EXPECT_NE(link.from, link.to);
    EXPECT_GT(link.count, 0u);
    EXPECT_LT(link.from, web.num_sites());
    EXPECT_LT(link.to, web.num_sites());
  }
}

TEST(SimulatedWebTest, StationaryPopulationHasMixedAges) {
  // Initial pages should not all be newborn: birth times must spread
  // into the past.
  SimulatedWeb web(SmallConfig(28));
  int backdated = 0, total = 0;
  for (uint32_t slot = 1; slot < web.site_size(0); ++slot) {
    Url u = web.OracleCurrentUrl(0, slot, 0.0);
    auto id = web.OracleLookup(u);
    ASSERT_TRUE(id.ok());
    backdated += web.OracleBirthTime(*id) < 0.0;
    ++total;
  }
  EXPECT_GT(backdated, total / 2);
}

TEST(SimulatedWebTest, MeanChangeIntervalNearFourMonths) {
  // Section 3.1's crude estimate: the all-domain average change
  // interval is about 4 months. Check the calibrated web's harmonic
  // structure: mean interval (capped at 1 year like the paper's
  // assumption) should land in the 3-6 month range.
  WebConfig c;
  c.seed = 5;
  c.sites_per_domain = {13, 8, 3, 3};  // Table 1 mix, scaled down
  c.min_site_size = 30;
  c.max_site_size = 120;
  SimulatedWeb web(c);
  RunningStat interval_days;
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    for (uint32_t slot = 0; slot < web.site_size(s); ++slot) {
      Url u = web.OracleCurrentUrl(s, slot, 0.0);
      auto id = web.OracleLookup(u);
      ASSERT_TRUE(id.ok());
      double interval = 1.0 / web.OracleChangeRate(*id);
      interval_days.Add(std::min(interval, 365.0));
    }
  }
  // The standing population is length-biased toward slow pages, so its
  // mean sits above the paper's crude 4-month birth-mix estimate.
  EXPECT_GT(interval_days.mean(), 90.0);
  EXPECT_LT(interval_days.mean(), 270.0);
}

}  // namespace
}  // namespace webevo::simweb
