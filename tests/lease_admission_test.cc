// Coverage for the capacity-lease admission protocol: the
// SettleAdmissionLease keep-first-budget settle against an independent
// serial frozen-budget greedy reference, eviction-heavy crawls held
// bit-identical (byte-identical checkpoints included) at shard counts
// up to 64, and checkpoints taken mid-fill with in-flight lease state
// resuming across shard counts.

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/admission_lease.h"
#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/random.h"

namespace webevo::crawler {
namespace {

// ------------------------------------------------ settle: unit cases

TEST(SettleAdmissionLeaseTest, UncontendedLeasesSettleWithoutRevocation) {
  std::vector<std::vector<AdmissionRef>> admitted(3);
  admitted[0] = {{0, 0}, {4, 1}};
  admitted[2] = {{1, 0}};
  EXPECT_TRUE(SettleAdmissionLease(admitted, 3).empty());
  EXPECT_TRUE(SettleAdmissionLease(admitted, 100).empty());
}

TEST(SettleAdmissionLeaseTest, OverdraftRevokesPastBudgetInGlobalOrder) {
  // Global (slot, pos) order: (0,0) s0, (1,0) s1, (2,1) s0, (3,0) s1.
  std::vector<std::vector<AdmissionRef>> admitted(2);
  admitted[0] = {{0, 0}, {2, 1}};
  admitted[1] = {{1, 0}, {3, 0}};
  std::vector<RevokedAdmission> revoked =
      SettleAdmissionLease(admitted, 2);
  ASSERT_EQ(revoked.size(), 2u);
  EXPECT_EQ(revoked[0].shard, 0u);  // (2,1)
  EXPECT_EQ(revoked[0].index, 1u);
  EXPECT_EQ(revoked[1].shard, 1u);  // (3,0)
  EXPECT_EQ(revoked[1].index, 1u);
}

TEST(SettleAdmissionLeaseTest, ZeroBudgetRevokesEverything) {
  std::vector<std::vector<AdmissionRef>> admitted(2);
  admitted[1] = {{0, 0}, {0, 1}};
  EXPECT_EQ(SettleAdmissionLease(admitted, 0).size(), 2u);
}

// --------------------------- settle: property vs the serial reference
//
// The protocol's contract: per-shard greedy admission with the full
// budget as a local ceiling, followed by keep-first-budget settlement,
// equals one serial frozen-budget greedy over the global stream — for
// any stream, any duplicate pattern, any shard split.

struct StreamItem {
  uint32_t slot;
  uint32_t pos;
  uint32_t url;  // dedup key; owner shard = url % shards
};

TEST(SettleAdmissionLeaseTest, MatchesSerialFrozenBudgetGreedy) {
  Rng rng(20260731);
  for (int round = 0; round < 60; ++round) {
    const int shards = std::vector<int>{1, 2, 3, 8}[round % 4];
    const std::size_t budget = rng.UniformInt(0, 40);
    // A stream with heavy duplication so dedup interacts with the
    // budget cutoff.
    std::vector<StreamItem> stream;
    uint32_t slot = 0;
    while (stream.size() < 120) {
      const auto links = static_cast<uint32_t>(rng.UniformInt(0, 5));
      for (uint32_t p = 0; p < links; ++p) {
        stream.push_back(StreamItem{
            slot, p, static_cast<uint32_t>(rng.UniformInt(0, 30))});
      }
      ++slot;
    }

    // Serial reference: one global counter, one seen-set.
    std::set<uint32_t> serial_admitted;
    for (const StreamItem& item : stream) {
      if (serial_admitted.size() >= budget) continue;
      serial_admitted.insert(item.url);
    }

    // Sharded: local ceilings + settle.
    std::vector<std::vector<AdmissionRef>> admitted(shards);
    std::vector<std::vector<uint32_t>> admitted_urls(shards);
    std::vector<std::set<uint32_t>> seen(shards);
    for (const StreamItem& item : stream) {
      const int s = static_cast<int>(item.url) % shards;
      if (seen[s].size() >= budget) continue;  // lease ceiling
      if (!seen[s].insert(item.url).second) continue;
      admitted[s].push_back(AdmissionRef{item.slot, item.pos});
      admitted_urls[s].push_back(item.url);
    }
    for (const RevokedAdmission& r : SettleAdmissionLease(admitted,
                                                          budget)) {
      seen[r.shard].erase(admitted_urls[r.shard][r.index]);
    }
    std::set<uint32_t> sharded_admitted;
    for (const auto& s : seen) {
      sharded_admitted.insert(s.begin(), s.end());
    }
    EXPECT_EQ(sharded_admitted, serial_admitted)
        << "round=" << round << " shards=" << shards
        << " budget=" << budget;
  }
}

// ------------------------------- eviction-heavy cross-N determinism

simweb::WebConfig ChurnWeb(uint64_t seed) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {5, 4, 2, 2};
  c.min_site_size = 20;
  c.max_site_size = 80;
  c.uniform_lifespan_days = 20.0;  // constant churn: deaths + births
  return c;
}

struct LeaseRunResult {
  std::string checkpoint;  // canonical bytes, web section excluded
  IncrementalCrawler::Stats stats;
  double evictions_settled = 0.0;
  double lease_budget = 0.0;
};

LeaseRunResult RunEvictionHeavy(int parallelism, uint64_t seed,
                                double days) {
  simweb::SimulatedWeb web(ChurnWeb(seed));
  IncrementalCrawlerConfig config;
  // A capacity far below the reachable page count keeps the crawler
  // permanently at the fill boundary: greedy-fill admissions contend
  // for the lease budget, inserts overdraw, and the settle evicts —
  // the adversarial regime for the protocol.
  config.collection_capacity = 60;
  config.crawl_rate_pages_per_day = 50.0;
  config.refine_interval_days = 2.0;
  config.crawl_parallelism = parallelism;
  config.crawl.per_site_delay_days = 0.02;
  config.crawl.enforce_politeness = true;
  IncrementalCrawler crawler(&web, config);
  EXPECT_TRUE(crawler.Bootstrap(0.0).ok());
  EXPECT_TRUE(crawler.RunUntil(days).ok());
  LeaseRunResult r;
  CrawlerCheckpointOptions options;
  options.include_web = false;
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  r.checkpoint = out.str();
  r.stats = crawler.stats();
  r.evictions_settled = crawler.engine().stats().settle_evictions.sum();
  r.lease_budget = crawler.engine().stats().lease_admit_budget.sum();
  return r;
}

TEST(LeaseAdmissionTest, EvictionHeavyCrawlsAreBitIdenticalUpToN64) {
  for (uint64_t seed : {101u, 202u}) {
    LeaseRunResult base = RunEvictionHeavy(1, seed, 12.0);
    // The regime really is adversarial: evictions and admissions both
    // happened, and the serial run (N = 1) never revokes.
    EXPECT_GT(base.stats.pages_evicted, 0u) << "seed=" << seed;
    EXPECT_GT(base.stats.lease_admissions, 0u);
    EXPECT_GT(base.stats.lease_budget_granted, 0u);
    EXPECT_GT(base.stats.dead_pages_removed, 0u);
    for (int shards : {3, 4, 8, 64}) {
      LeaseRunResult run = RunEvictionHeavy(shards, seed, 12.0);
      // Byte-identical checkpoints subsume every piece of canonical
      // state: collection, frontier (seq lanes included), AllUrls,
      // pending admissions, counters, the lease ledger.
      EXPECT_EQ(run.checkpoint, base.checkpoint)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(run.stats.pages_evicted, base.stats.pages_evicted);
      EXPECT_EQ(run.stats.lease_admissions, base.stats.lease_admissions);
      EXPECT_EQ(run.stats.lease_budget_granted,
                base.stats.lease_budget_granted);
      EXPECT_EQ(run.evictions_settled, base.evictions_settled);
      EXPECT_EQ(run.lease_budget, base.lease_budget);
    }
  }
}

// ------------------- checkpoints carrying in-flight lease state

simweb::WebConfig FillWeb() {
  simweb::WebConfig c = simweb::WebConfig().Scaled(0.03);
  c.seed = 20260801;
  c.min_site_size = 10;
  c.max_site_size = 40;
  return c;
}

IncrementalCrawlerConfig FillConfig(int parallelism) {
  IncrementalCrawlerConfig config;
  config.collection_capacity = 300;
  config.crawl_rate_pages_per_day = 80.0;
  config.crawl_parallelism = parallelism;
  config.crawl.per_site_delay_days = 1e-3;
  config.crawl.enforce_politeness = true;
  return config;
}

std::string Checkpoint(const IncrementalCrawler& crawler) {
  std::ostringstream out;
  Status saved = SaveCrawler(crawler, out, {});
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

TEST(LeaseAdmissionTest, MidFillCheckpointResumesAcrossShardCounts) {
  // Save at day 1, deep inside the greedy fill, so the checkpoint
  // carries in-flight lease state: admitted-but-uncrawled URLs (the
  // pending reservations the next batch's budget is computed from)
  // and the cumulative lease ledger.
  simweb::SimulatedWeb web_a(FillWeb());
  IncrementalCrawler straight(&web_a, FillConfig(1));
  ASSERT_TRUE(straight.Bootstrap(0.0).ok());
  ASSERT_TRUE(straight.RunUntil(6.0).ok());
  const std::string want = Checkpoint(straight);

  for (int save_shards : {1, 8}) {
    const int load_shards = save_shards == 8 ? 1 : 8;
    simweb::SimulatedWeb web_b(FillWeb());
    IncrementalCrawler saver(&web_b, FillConfig(save_shards));
    ASSERT_TRUE(saver.Bootstrap(0.0).ok());
    ASSERT_TRUE(saver.RunUntil(1.0).ok());
    // Mid-fill: the collection is not full and admissions are in
    // flight — the lease state a restart must not lose.
    ASSERT_LT(saver.collection().size(),
              saver.collection().capacity());
    ASSERT_GT(saver.stats().lease_admissions, 0u);
    std::string mid = Checkpoint(saver);

    simweb::SimulatedWeb web_c(FillWeb());
    IncrementalCrawler resumed(&web_c, FillConfig(load_shards));
    std::istringstream mid_in(mid);
    Status loaded = LoadCrawler(mid_in, &resumed);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    // The ledger survived the round trip.
    EXPECT_EQ(resumed.stats().lease_admissions,
              saver.stats().lease_admissions);
    EXPECT_EQ(resumed.stats().lease_budget_granted,
              saver.stats().lease_budget_granted);
    ASSERT_TRUE(resumed.RunUntil(6.0).ok());
    EXPECT_EQ(Checkpoint(resumed), want)
        << "save at N=" << save_shards << ", load at N=" << load_shards;
  }
}

}  // namespace
}  // namespace webevo::crawler
