#include <cmath>

#include <gtest/gtest.h>

#include "experiment/analyzers.h"
#include "experiment/monitoring_experiment.h"
#include "experiment/page_stats.h"
#include "experiment/page_window.h"
#include "experiment/site_selector.h"
#include "simweb/simulated_web.h"

namespace webevo::experiment {
namespace {

using simweb::Domain;
using simweb::Url;

simweb::WebConfig SmallStudyWeb(uint64_t seed = 55) {
  simweb::WebConfig c;
  c.seed = seed;
  c.sites_per_domain = {5, 3, 2, 2};
  c.min_site_size = 30;
  c.max_site_size = 80;
  return c;
}

// --------------------------------------------------------------- PageWindow

TEST(PageWindowTest, FirstVisitMarksEverythingNew) {
  simweb::SimulatedWeb web(SmallStudyWeb());
  PageWindow window(0, 20);
  WindowVisit visit = window.Visit(web, 0.0);
  EXPECT_LE(visit.pages.size(), 20u);
  EXPECT_GT(visit.pages.size(), 1u);
  for (const Observation& obs : visit.pages) {
    EXPECT_TRUE(obs.first_sighting);
    EXPECT_FALSE(obs.changed);
    EXPECT_EQ(obs.url.site, 0u);
  }
  EXPECT_TRUE(visit.left.empty());
}

TEST(PageWindowTest, WindowCapRespected) {
  simweb::SimulatedWeb web(SmallStudyWeb());
  PageWindow window(0, 5);
  WindowVisit visit = window.Visit(web, 0.0);
  EXPECT_EQ(visit.pages.size(), 5u);
}

TEST(PageWindowTest, BfsStartsAtRoot) {
  simweb::SimulatedWeb web(SmallStudyWeb());
  PageWindow window(1, 10);
  WindowVisit visit = window.Visit(web, 0.0);
  ASSERT_FALSE(visit.pages.empty());
  EXPECT_EQ(visit.pages.front().url, web.RootUrl(1));
}

TEST(PageWindowTest, UnchangedPagesNotFlagged) {
  simweb::WebConfig c = SmallStudyWeb();
  c.uniform_change_interval_days = 1e5;  // effectively frozen
  c.uniform_lifespan_days = 1e6;
  simweb::SimulatedWeb web(c);
  PageWindow window(0, 20);
  window.Visit(web, 0.0);
  WindowVisit second = window.Visit(web, 1.0);
  for (const Observation& obs : second.pages) {
    EXPECT_FALSE(obs.changed) << obs.url.ToString();
    EXPECT_FALSE(obs.first_sighting);
  }
}

TEST(PageWindowTest, FastPagesFlaggedChanged) {
  simweb::WebConfig c = SmallStudyWeb();
  c.uniform_change_interval_days = 0.05;  // many changes per day
  c.uniform_lifespan_days = 1e6;
  simweb::SimulatedWeb web(c);
  PageWindow window(0, 20);
  window.Visit(web, 0.0);
  WindowVisit second = window.Visit(web, 1.0);
  int changed = 0;
  for (const Observation& obs : second.pages) changed += obs.changed;
  EXPECT_EQ(changed, static_cast<int>(second.pages.size()));
}

TEST(PageWindowTest, DepartedPagesReported) {
  simweb::WebConfig c = SmallStudyWeb(56);
  c.uniform_lifespan_days = 3.0;  // rapid turnover
  simweb::SimulatedWeb web(c);
  PageWindow window(0, 30);
  window.Visit(web, 0.0);
  WindowVisit later = window.Visit(web, 10.0);
  EXPECT_FALSE(later.left.empty());
  int fresh_urls = 0;
  for (const Observation& obs : later.pages) {
    fresh_urls += obs.first_sighting;
  }
  EXPECT_GT(fresh_urls, 0);  // replacements entered the window
}

// ---------------------------------------------------------------- PageStats

TEST(PageStatsTest, RecordAccumulates) {
  PageStatsTable table;
  Observation obs;
  obs.url = Url{0, 1, 0};
  obs.page = 7;
  table.Record(Domain::kEdu, 0, obs);
  obs.changed = true;
  table.Record(Domain::kEdu, 5, obs);
  table.Record(Domain::kEdu, 9, obs);
  const PageStats& ps = table.stats().at(Url{0, 1, 0});
  EXPECT_EQ(ps.domain, Domain::kEdu);
  EXPECT_EQ(ps.first_day, 0);
  EXPECT_EQ(ps.last_day, 9);
  EXPECT_EQ(ps.sightings, 3);
  EXPECT_EQ(ps.changes, 2);
  EXPECT_EQ(ps.first_change_day, 5);
  EXPECT_EQ(ps.change_days.size(), 2u);
  EXPECT_EQ(table.last_recorded_day(), 9);
}

TEST(PageStatsTest, GapDetection) {
  PageStatsTable table;
  Observation obs;
  obs.url = Url{0, 1, 0};
  table.Record(Domain::kCom, 0, obs);
  table.Record(Domain::kCom, 1, obs);
  table.Record(Domain::kCom, 7, obs);  // absent days 2-6
  EXPECT_EQ(table.stats().at(Url{0, 1, 0}).first_gap_day, 2);
}

TEST(PageStatsTest, EstimatedInterval) {
  PageStats ps;
  ps.first_day = 0;
  ps.last_day = 50;
  ps.changes = 5;
  EXPECT_DOUBLE_EQ(ps.EstimatedChangeIntervalDays(), 10.0);
  ps.changes = 0;
  EXPECT_TRUE(std::isinf(ps.EstimatedChangeIntervalDays()));
  EXPECT_EQ(ps.VisibleLifespanDays(), 51);
}

// -------------------------------------------------- MonitoringExperiment

TEST(MonitoringExperimentTest, RunsCampaignAndRecordsStats) {
  simweb::SimulatedWeb web(SmallStudyWeb(57));
  MonitoringConfig config;
  config.num_days = 15;
  config.window_size = 25;
  MonitoringExperiment experiment(&web, config);
  ASSERT_TRUE(experiment.Run().ok());
  EXPECT_EQ(experiment.days_completed(), 15);
  EXPECT_GT(experiment.table().num_pages(), 50u);
  EXPECT_GT(experiment.total_fetches(), 15u * 12u * 10u);
  EXPECT_FALSE(experiment.Run().ok());  // no double runs
}

TEST(MonitoringExperimentTest, DaysMustRunInOrder) {
  simweb::SimulatedWeb web(SmallStudyWeb(58));
  MonitoringConfig config;
  config.num_days = 5;
  config.window_size = 10;
  MonitoringExperiment experiment(&web, config);
  EXPECT_FALSE(experiment.RunDay(2).ok());
  EXPECT_TRUE(experiment.RunDay(0).ok());
  EXPECT_FALSE(experiment.RunDay(0).ok());
  EXPECT_TRUE(experiment.RunDay(1).ok());
}

// ---------------------------------------------------------------- analyses

class StudyFixture : public ::testing::Test {
 protected:
  // One shared 60-day campaign for all analysis tests (static to avoid
  // re-running per test; the table is read-only afterwards).
  static void SetUpTestSuite() {
    web_ = new simweb::SimulatedWeb(SmallStudyWeb(59));
    MonitoringConfig config;
    config.num_days = 60;
    config.window_size = 40;
    experiment_ = new MonitoringExperiment(web_, config);
    ASSERT_TRUE(experiment_->Run().ok());
  }
  static void TearDownTestSuite() {
    delete experiment_;
    delete web_;
    experiment_ = nullptr;
    web_ = nullptr;
  }

  static simweb::SimulatedWeb* web_;
  static MonitoringExperiment* experiment_;
};

simweb::SimulatedWeb* StudyFixture::web_ = nullptr;
MonitoringExperiment* StudyFixture::experiment_ = nullptr;

TEST_F(StudyFixture, ChangeIntervalFractionsSumToOne) {
  ChangeIntervalResult r = AnalyzeChangeIntervals(experiment_->table());
  EXPECT_GT(r.pages_analyzed, 100u);
  double sum = 0.0;
  for (double f : r.overall.fractions()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(StudyFixture, ComChangesFasterThanGov) {
  ChangeIntervalResult r = AnalyzeChangeIntervals(experiment_->table());
  double com_daily =
      r.by_domain[static_cast<int>(Domain::kCom)].fraction(0);
  double gov_daily =
      r.by_domain[static_cast<int>(Domain::kGov)].fraction(0);
  EXPECT_GT(com_daily, gov_daily);
  EXPECT_GT(com_daily, 0.25);  // paper: > 40% (tolerance for small web)
}

TEST_F(StudyFixture, LifespanMethodsAgreeOnShortLivedPages) {
  LifespanResult r = AnalyzeLifespans(experiment_->table(), 60);
  EXPECT_GT(r.pages_analyzed, 0u);
  // Method 2 only moves censored (long-lived) pages upward, so the
  // short-bucket fractions can only shrink or stay equal.
  EXPECT_LE(r.method2.fraction(0), r.method1.fraction(0) + 1e-12);
  // Overall mass is conserved.
  EXPECT_NEAR(r.method1.total(), r.method2.total(), 1e-9);
}

TEST_F(StudyFixture, SurvivalCurveMonotoneFromOne) {
  SurvivalResult r = AnalyzeSurvival(experiment_->table(), 60);
  ASSERT_EQ(r.overall.size(), 60u);
  EXPECT_GT(r.cohort_size, 100u);
  EXPECT_NEAR(r.overall[0], 1.0, 0.05);
  for (std::size_t i = 1; i < r.overall.size(); ++i) {
    EXPECT_LE(r.overall[i], r.overall[i - 1] + 1e-12);
  }
}

TEST_F(StudyFixture, ComDecaysFasterThanGov) {
  SurvivalResult r = AnalyzeSurvival(experiment_->table(), 60);
  const auto& com = r.by_domain[static_cast<int>(Domain::kCom)];
  const auto& gov = r.by_domain[static_cast<int>(Domain::kGov)];
  int com_half = SurvivalResult::DaysToReach(com, 0.5);
  int gov_half = SurvivalResult::DaysToReach(gov, 0.5);
  // The paper: com 50% in ~11 days; gov took ~4 months (beyond this
  // 60-day horizon, i.e. -1, or at least much later than com).
  ASSERT_GE(com_half, 1);
  EXPECT_LE(com_half, 25);
  EXPECT_TRUE(gov_half == -1 || gov_half > 2 * com_half);
}

TEST_F(StudyFixture, DaysToReachHandlesEdgeCases) {
  EXPECT_EQ(SurvivalResult::DaysToReach({1.0, 0.8, 0.4}, 0.5), 2);
  EXPECT_EQ(SurvivalResult::DaysToReach({1.0, 0.9}, 0.5), -1);
  EXPECT_EQ(SurvivalResult::DaysToReach({}, 0.5), -1);
}

TEST_F(StudyFixture, PoissonIntervalsFitExponential) {
  auto r = AnalyzePoisson(experiment_->table(), 10.0, 0.35);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->pages_selected, 0u);
  EXPECT_GT(r->intervals_collected, 30u);
  // The fitted decay rate should be near 1/10 per day and the fit good
  // on a log scale — the paper's Figure 6 conclusion.
  EXPECT_NEAR(r->fit.rate, 0.1, 0.05);
  // The 60-day test campaign yields few intervals, so the log-scale fit
  // is noisy; the full-scale bench (bench_fig6_poisson) sees r2 > 0.9.
  EXPECT_GT(r->fit.r2, 0.5);
  // Prediction vector aligns with the observation grid.
  ASSERT_EQ(r->predicted.size(), r->fraction.size());
  double predicted_sum = 0.0;
  for (double p : r->predicted) predicted_sum += p;
  EXPECT_LE(predicted_sum, 1.0 + 1e-9);
}

TEST_F(StudyFixture, PoissonAnalysisValidatesInput) {
  EXPECT_FALSE(AnalyzePoisson(experiment_->table(), -1.0, 0.2).ok());
  // An absurd target interval selects nothing.
  auto r = AnalyzePoisson(experiment_->table(), 1e7, 0.01);
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------------ SiteSelector

TEST(SiteSelectorTest, UniverseConfigMatchesMix) {
  SiteSelectorConfig config;
  config.universe_sites = 1000;
  simweb::WebConfig web = MakeUniverseConfig(config);
  ASSERT_TRUE(web.Validate().ok());
  int total = 0;
  for (int n : web.sites_per_domain) total += n;
  EXPECT_NEAR(total, 1000, 5);
  EXPECT_GT(web.sites_per_domain[0], web.sites_per_domain[3]);
}

TEST(SiteSelectorTest, SelectsRoughly270Of400) {
  SiteSelectorConfig config;
  config.universe_sites = 600;
  config.candidates = 400;
  simweb::SimulatedWeb universe(MakeUniverseConfig(config));
  auto result = SelectSites(universe, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 400u);
  EXPECT_NEAR(static_cast<double>(result->selected.size()), 270.0, 40.0);
  int total = 0;
  for (int n : result->selected_by_domain) total += n;
  EXPECT_EQ(total, static_cast<int>(result->selected.size()));
}

TEST(SiteSelectorTest, DomainMixResemblesTable1) {
  SiteSelectorConfig config;
  config.universe_sites = 1500;
  simweb::SimulatedWeb universe(MakeUniverseConfig(config));
  auto result = SelectSites(universe, config);
  ASSERT_TRUE(result.ok());
  // Table 1 ordering: com > edu > netorg ~ gov.
  EXPECT_GT(result->selected_by_domain[0], result->selected_by_domain[1]);
  EXPECT_GT(result->selected_by_domain[1], result->selected_by_domain[2]);
}

TEST(SiteSelectorTest, ValidatesConfig) {
  SiteSelectorConfig config;
  simweb::SimulatedWeb universe(MakeUniverseConfig(config));
  config.candidates = 0;
  EXPECT_FALSE(SelectSites(universe, config).ok());
  config.candidates = 10;
  config.permission_prob = 1.5;
  EXPECT_FALSE(SelectSites(universe, config).ok());
}

}  // namespace
}  // namespace webevo::experiment
