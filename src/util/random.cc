#include "util/random.h"

#include <cassert>
#include <cmath>

namespace webevo {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& lane : s_) lane = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection of the biased low range.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  // Inversion. 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - NextDouble()) / lambda;
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double v = std::round(Normal(mean, std::sqrt(mean)));
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v);
}

double Rng::Normal() {
  // Box-Muller; discards the second variate to stay stateless.
  double u1 = 1.0 - NextDouble();  // (0, 1]
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n >= 1);
  if (n == 1) return 1;
  // Rejection-inversion sampling (Hormann & Derflinger 1996).
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    // Integral of 1/x^s: log for s == 1, power otherwise.
    const double log_x = std::log(x);
    if (std::abs(s - 1.0) < 1e-12) return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  const double scale = h_n - h_x1;
  while (true) {
    const double u = h_x1 + NextDouble() * scale;
    // Inverse of h_integral.
    double x;
    if (std::abs(s - 1.0) < 1e-12) {
      x = std::exp(u);
    } else {
      x = std::exp(std::log1p(u * (1.0 - s)) / (1.0 - s));
    }
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > nd) k = nd;
    if (u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<uint64_t>(k);
    }
  }
}

double Rng::Pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  return x_m / std::pow(1.0 - NextDouble(), 1.0 / alpha);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the parent's next output with the stream id; SplitMix64 in the
  // constructor decorrelates the children.
  return Rng(Next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
}

}  // namespace webevo
