#ifndef WEBEVO_UTIL_TABLE_H_
#define WEBEVO_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace webevo {

/// Formats rows of mixed text/numeric cells into an aligned ASCII table,
/// the output format every bench binary uses to print the paper's tables
/// and figure series.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(int64_t v);
  static std::string Percent(double fraction, int precision = 1);

  /// Renders the table with a header separator line.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an (x, y) series as a fixed-height ASCII chart, used by the
/// figure benches to show curve *shapes* (e.g. the sawtooth freshness of
/// a batch crawler) directly in terminal output.
///
/// y values are clipped to [y_min, y_max]; x samples map left to right.
std::string AsciiChart(const std::vector<double>& xs,
                       const std::vector<double>& ys, double y_min,
                       double y_max, int height = 12, int width = 72);

/// Overlays two series on one chart ('*' for the first, 'o' for the
/// second, '@' where they coincide).
std::string AsciiChart2(const std::vector<double>& xs,
                        const std::vector<double>& ys1,
                        const std::vector<double>& ys2, double y_min,
                        double y_max, int height = 12, int width = 72);

}  // namespace webevo

#endif  // WEBEVO_UTIL_TABLE_H_
