#ifndef WEBEVO_UTIL_FLAGS_H_
#define WEBEVO_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace webevo {

/// Minimal command-line flag parser for the tools and examples:
/// `--name=value` or `--name value`; bare `--name` is a boolean true;
/// everything else is a positional argument.
///
/// No registration step — callers query by name with typed accessors
/// and defaults, and can Validate() against a list of known names.
class FlagParser {
 public:
  /// Parses argv. Later duplicates override earlier ones.
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed accessors; return `fallback` when absent or malformed.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// InvalidArgument naming the first flag not in `known` (catches
  /// typos like --capasity).
  Status Validate(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace webevo

#endif  // WEBEVO_UTIL_FLAGS_H_
