#include "util/hash.h"

namespace webevo {
namespace {
constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

uint64_t Fnv1a64Seeded(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view data) {
  return Fnv1a64Seeded(data, kFnvOffsetBasis);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of boost::hash_combine with a splitmix-style mixer.
  uint64_t z = value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return seed ^ (z ^ (z >> 31));
}

Checksum128 ChecksumOf(std::string_view data) {
  Checksum128 sum;
  sum.lo = Fnv1a64Seeded(data, kFnvOffsetBasis);
  sum.hi = Fnv1a64Seeded(data, 0x84222325cbf29ce4ULL);
  return sum;
}

}  // namespace webevo
