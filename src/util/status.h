#ifndef WEBEVO_UTIL_STATUS_H_
#define WEBEVO_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace webevo {

/// Error category for a failed operation.
///
/// Library code never throws; fallible operations return a Status (or a
/// StatusOr<T> when they also produce a value), in the style of RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  /// Transient failure: the target is temporarily unreachable (fault
  /// injection's transient errors, outages, overload). Safe to retry.
  kUnavailable,
  /// The operation ran out of time (fault injection's timeouts). The
  /// caller paid the configured latency before the failure surfaced.
  kDeadlineExceeded,
};

/// Result of an operation that can fail.
///
/// A Status is cheap to copy when OK (no allocation) and carries a
/// human-readable message otherwise. Callers must check `ok()` before
/// relying on side effects of the operation that produced it.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: window must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status; never both.
///
/// Accessors assert that the expected state holds, so callers must test
/// `ok()` first on any path where failure is possible.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error Status, mirroring absl::StatusOr,
  /// so `return value;` and `return Status::NotFound(...);` both work.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace webevo

#endif  // WEBEVO_UTIL_STATUS_H_
