#ifndef WEBEVO_UTIL_STATS_H_
#define WEBEVO_UTIL_STATS_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace webevo {

/// Online accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  /// Folds another accumulator into this one (Chan et al.'s parallel
  /// combine), as if every sample of `other` had been Add()ed here.
  /// Lets per-shard accumulators merge deterministically at the
  /// ShardedCrawlEngine's batch barriers: merging in a fixed shard
  /// order yields a fixed result regardless of thread scheduling.
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Raw accumulator state, for checkpoint/restore: a state captured
  /// here and fed back through RestoreState resumes the accumulation
  /// exactly (bit for bit, Add-order included).
  struct State {
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State SaveState() const { return {count_, mean_, m2_, min_, max_}; }
  void RestoreState(const State& s) {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return lo <= x && x <= hi; }
  double width() const { return hi - lo; }
};

/// Normal-approximation confidence interval for a mean given sample
/// statistics. `confidence` in (0, 1), e.g. 0.95.
Interval MeanConfidenceInterval(double mean, double stddev, int64_t n,
                                double confidence);

/// Wilson score interval for a binomial proportion with `successes` out
/// of `n` trials. Well-behaved near 0 and 1, unlike the Wald interval.
Interval WilsonInterval(int64_t successes, int64_t n, double confidence);

/// Confidence interval for a Poisson rate given `events` observed over
/// `exposure` time units, via the normal approximation on the square-root
/// scale (variance-stabilising); this is the interval estimator EP of the
/// paper's UpdateModule uses (Section 5.3 / [CGM99a]).
Interval PoissonRateInterval(int64_t events, double exposure,
                             double confidence);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9). `p` must be in (0, 1).
double InverseNormalCdf(double p);

/// Result of a least-squares line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination in [0, 1]
};

/// Fits a line to (x, y) pairs. Requires at least two distinct x values.
StatusOr<LinearFit> FitLine(const std::vector<double>& x,
                            const std::vector<double>& y);

/// Result of fitting y = amplitude * exp(-rate * x).
struct ExponentialFit {
  double rate = 0.0;       ///< decay rate (lambda)
  double amplitude = 0.0;  ///< value at x = 0
  double r2 = 0.0;         ///< R^2 of the log-linear fit
};

/// Fits an exponential decay by least squares on (x, log y), ignoring
/// non-positive y values (they carry no information on a log scale).
/// Used to verify the Poisson model in Figure 6: change intervals of a
/// Poisson page must fit amplitude * exp(-rate * t) with rate near the
/// page's change rate. Requires at least two usable points.
StatusOr<ExponentialFit> FitExponential(const std::vector<double>& x,
                                        const std::vector<double>& y);

/// Kolmogorov-Smirnov statistic of `samples` against the exponential
/// distribution with the given rate: sup_t |F_empirical(t) - F_exp(t)|.
/// Requires a non-empty sample and rate > 0.
StatusOr<double> KsStatisticExponential(std::vector<double> samples,
                                        double rate);

/// Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace webevo

#endif  // WEBEVO_UTIL_STATS_H_
