#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace webevo {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const int64_t combined = count_ + other.count_;
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(combined);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(combined);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = combined;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double InverseNormalCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

Interval MeanConfidenceInterval(double mean, double stddev, int64_t n,
                                double confidence) {
  if (n <= 0) return {mean, mean};
  double z = InverseNormalCdf(0.5 + confidence / 2.0);
  double half = z * stddev / std::sqrt(static_cast<double>(n));
  return {mean - half, mean + half};
}

Interval WilsonInterval(int64_t successes, int64_t n, double confidence) {
  if (n <= 0) return {0.0, 1.0};
  double z = InverseNormalCdf(0.5 + confidence / 2.0);
  double nd = static_cast<double>(n);
  double p = static_cast<double>(successes) / nd;
  double z2 = z * z;
  double denom = 1.0 + z2 / nd;
  double center = (p + z2 / (2.0 * nd)) / denom;
  double half =
      z * std::sqrt(p * (1.0 - p) / nd + z2 / (4.0 * nd * nd)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval PoissonRateInterval(int64_t events, double exposure,
                             double confidence) {
  if (exposure <= 0.0) return {0.0, 0.0};
  // sqrt(X) is approximately Normal(sqrt(mu), 1/2); invert and square.
  double z = InverseNormalCdf(0.5 + confidence / 2.0);
  double s = std::sqrt(static_cast<double>(events));
  double lo = std::max(0.0, s - z / 2.0);
  double hi = s + z / 2.0;
  return {lo * lo / exposure, hi * hi / exposure};
}

StatusOr<LinearFit> FitLine(const std::vector<double>& x,
                            const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y sizes differ");
  }
  size_t n = x.size();
  if (n < 2) return Status::InvalidArgument("need at least two points");
  double sx = 0, sy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) {
    return Status::InvalidArgument("all x values identical");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

StatusOr<ExponentialFit> FitExponential(const std::vector<double>& x,
                                        const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y sizes differ");
  }
  std::vector<double> xs, logys;
  for (size_t i = 0; i < x.size(); ++i) {
    if (y[i] > 0.0) {
      xs.push_back(x[i]);
      logys.push_back(std::log(y[i]));
    }
  }
  auto line = FitLine(xs, logys);
  if (!line.ok()) return line.status();
  ExponentialFit fit;
  fit.rate = -line->slope;
  fit.amplitude = std::exp(line->intercept);
  fit.r2 = line->r2;
  return fit;
}

StatusOr<double> KsStatisticExponential(std::vector<double> samples,
                                        double rate) {
  if (samples.empty()) return Status::InvalidArgument("empty sample");
  if (rate <= 0.0) return Status::InvalidArgument("rate must be positive");
  std::sort(samples.begin(), samples.end());
  double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double cdf = 1.0 - std::exp(-rate * samples[i]);
    double lo = static_cast<double>(i) / n;
    double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(cdf - lo), std::abs(hi - cdf)));
  }
  return d;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  auto fit = FitLine(x, y);
  if (!fit.ok()) return 0.0;
  double r = std::sqrt(fit->r2);
  return fit->slope < 0 ? -r : r;
}

}  // namespace webevo
