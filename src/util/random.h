#ifndef WEBEVO_UTIL_RANDOM_H_
#define WEBEVO_UTIL_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace webevo {

/// Deterministic 64-bit PRNG (xoshiro256++) seeded via SplitMix64.
///
/// Every stochastic component in the library draws through an explicitly
/// seeded Rng so that experiments are reproducible bit-for-bit. The
/// generator is small, fast, and passes BigCrush; it is not
/// cryptographically secure, which is irrelevant here.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` with SplitMix64, which
  /// guarantees a non-zero state for any seed (including 0).
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  /// sampling (Lemire) so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponential variate with rate `lambda` (mean 1/lambda).
  /// Requires lambda > 0.
  double Exponential(double lambda);

  /// Poisson variate with the given mean. Uses Knuth's method for small
  /// means and a normal approximation (rounded, clamped at 0) for means
  /// above 64, which keeps the tail error far below our use cases' needs.
  uint64_t Poisson(double mean);

  /// Standard normal variate (Box-Muller, one value per call).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal variate: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Zipf-distributed rank in [1, n] with exponent `s` (s >= 0).
  /// P(k) proportional to 1/k^s. Uses rejection-inversion (Hormann),
  /// O(1) per draw for any n.
  uint64_t Zipf(uint64_t n, double s);

  /// Pareto variate with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent child generator; children with distinct
  /// `stream` values are statistically independent of the parent and of
  /// each other.
  Rng Fork(uint64_t stream);

  /// Raw 256-bit generator state, for checkpoint/restore. A state
  /// captured here and fed back through SetState resumes the exact
  /// output stream.
  std::array<uint64_t, 4> State() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  /// Restores a State() snapshot. The state must come from a seeded
  /// generator (all-zero is degenerate for xoshiro and never produced
  /// by the SplitMix64 seeding).
  void SetState(const std::array<uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  uint64_t s_[4];
};

}  // namespace webevo

#endif  // WEBEVO_UTIL_RANDOM_H_
