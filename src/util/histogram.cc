#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace webevo {

Histogram::Histogram(std::vector<double> edges,
                     std::vector<std::string> labels)
    : edges_(std::move(edges)),
      labels_(std::move(labels)),
      counts_(edges_.size() + 1, 0.0) {}

StatusOr<Histogram> Histogram::Make(std::vector<double> upper_edges,
                                    std::vector<std::string> labels) {
  if (upper_edges.empty()) {
    return Status::InvalidArgument("histogram needs at least one edge");
  }
  for (size_t i = 1; i < upper_edges.size(); ++i) {
    if (upper_edges[i] <= upper_edges[i - 1]) {
      return Status::InvalidArgument("edges must be strictly increasing");
    }
  }
  if (labels.empty()) {
    for (double e : upper_edges) {
      std::ostringstream os;
      os << "<= " << e;
      labels.push_back(os.str());
    }
    std::ostringstream os;
    os << "> " << upper_edges.back();
    labels.push_back(os.str());
  } else if (labels.size() != upper_edges.size() + 1) {
    return Status::InvalidArgument(
        "labels must cover every bucket including overflow");
  }
  return Histogram(std::move(upper_edges), std::move(labels));
}

Histogram Histogram::ChangeIntervalBuckets() {
  auto h = Make({1.0, 7.0, 30.0, 120.0},
                {"<=1day", "<=1week", "<=1month", "<=4months", ">4months"});
  return std::move(h).value();
}

Histogram Histogram::LifespanBuckets() {
  auto h = Make({7.0, 30.0, 120.0},
                {"<=1week", "<=1month", "<=4months", ">4months"});
  return std::move(h).value();
}

void Histogram::Add(double value, double weight) {
  auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  size_t idx = static_cast<size_t>(it - edges_.begin());
  counts_[idx] += weight;
  total_ += weight;
}

Status Histogram::Merge(const Histogram& other) {
  if (other.edges_ != edges_) {
    return Status::InvalidArgument("histogram edges differ");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  return Status::Ok();
}

double Histogram::bucket_upper_edge(size_t i) const {
  if (i < edges_.size()) return edges_[i];
  return std::numeric_limits<double>::infinity();
}

double Histogram::fraction(size_t i) const {
  if (total_ <= 0.0) return 0.0;
  return counts_[i] / total_;
}

std::vector<double> Histogram::fractions() const {
  std::vector<double> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = fraction(i);
  return out;
}

double Histogram::Quantile(double q) const {
  if (total_ <= 0.0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * total_;
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (acc + counts_[i] >= target) {
      double lo = i == 0 ? 0.0 : edges_[i - 1];
      double hi = bucket_upper_edge(i);
      if (!std::isfinite(hi)) return edges_.back();
      double within = counts_[i] > 0.0 ? (target - acc) / counts_[i] : 0.0;
      return lo + within * (hi - lo);
    }
    acc += counts_[i];
  }
  return edges_.back();
}

std::string Histogram::ToString(int bar_width) const {
  size_t label_width = 0;
  for (const auto& l : labels_) label_width = std::max(label_width, l.size());
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double f = fraction(i);
    os << labels_[i] << std::string(label_width - labels_[i].size(), ' ')
       << "  ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%6.3f", f);
    os << buf << "  ";
    int bars = static_cast<int>(std::lround(f * bar_width));
    for (int b = 0; b < bars; ++b) os << '#';
    os << '\n';
  }
  return os.str();
}

}  // namespace webevo
