#ifndef WEBEVO_UTIL_TEXT_SNAPSHOT_H_
#define WEBEVO_UTIL_TEXT_SNAPSHOT_H_

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace webevo {

/// Line-oriented snapshot framing shared by every durable stream in the
/// library (crawler snapshots, the crawler checkpoint container, the
/// simulated-web state): payload lines are accumulated into an FNV-1a
/// hash and terminated by a `webevo-checksum <hash>` trailer, so
/// truncated or corrupted streams are rejected rather than silently
/// loaded.

/// The trailer line's leading token.
inline constexpr const char* kSnapshotTrailerMagic = "webevo-checksum";

/// Accumulates payload lines and emits them with an integrity trailer.
class TrailerWriter {
 public:
  explicit TrailerWriter(std::ostream& out) : out_(out) {}

  void Line(const std::string& line);

  void Finish();

 private:
  std::ostream& out_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Reads payload lines, verifying the trailer at the end.
class TrailerReader {
 public:
  explicit TrailerReader(std::istream& in) : in_(in) {}

  /// Next payload line; NotFound past the payload (after the trailer
  /// was consumed and verified), InvalidArgument on corruption.
  StatusOr<std::string> Next();

  bool done() const { return done_; }

 private:
  std::istream& in_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
  bool done_ = false;
};

/// Rejects trailing tokens on a parsed record line: after the caller
/// has extracted every expected field, anything but whitespace left in
/// `is` means the record carries garbage (or the parser and writer
/// disagree) and the snapshot must not be trusted.
Status ExpectLineEnd(std::istream& is, const char* what);

/// The shared reader epilogue: consumes and verifies the trailer
/// (rejecting payload lines beyond the declared record counts), then
/// requires end-of-stream. Every framed-stream reader finishes with
/// this, so the end-of-payload rules can never drift apart.
Status FinishFramedStream(TrailerReader& reader, std::istream& in,
                          const char* what);

/// Rejects trailing data after a snapshot's trailer: a well-formed
/// standalone snapshot ends at its trailer, so any non-whitespace
/// bytes that follow mean the file was appended to or mis-framed.
Status ExpectStreamEnd(std::istream& in, const char* what);

/// Writes `bytes` to `path` crash-consistently: the content goes to a
/// temporary file in the same directory, is fsync'd, and is renamed
/// over `path` atomically (the directory entry is fsync'd too). A
/// crash at any point leaves either the old file or the new one —
/// never a torn mix.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

}  // namespace webevo

#endif  // WEBEVO_UTIL_TEXT_SNAPSHOT_H_
