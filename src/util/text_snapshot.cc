#include "util/text_snapshot.h"

#include <cstdio>
#include <sstream>

#include "util/hash.h"

#ifdef _WIN32
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace webevo {

void TrailerWriter::Line(const std::string& line) {
  hash_ = Fnv1a64Seeded(line, hash_);
  hash_ = Fnv1a64Seeded("\n", hash_);
  out_ << line << '\n';
}

void TrailerWriter::Finish() {
  out_ << kSnapshotTrailerMagic << ' ' << hash_ << '\n';
}

StatusOr<std::string> TrailerReader::Next() {
  std::string line;
  if (!std::getline(in_, line)) {
    return Status::InvalidArgument("snapshot truncated (no trailer)");
  }
  if (line.rfind(kSnapshotTrailerMagic, 0) == 0) {
    std::istringstream trailer(line);
    std::string magic;
    uint64_t stored = 0;
    trailer >> magic >> stored;
    if (trailer.fail() || stored != hash_) {
      return Status::InvalidArgument("snapshot integrity check failed");
    }
    done_ = true;
    return Status::NotFound("end of payload");
  }
  hash_ = Fnv1a64Seeded(line, hash_);
  hash_ = Fnv1a64Seeded("\n", hash_);
  return line;
}

Status ExpectLineEnd(std::istream& is, const char* what) {
  char c = 0;
  while (is.get(c)) {
    if (c != ' ' && c != '\t' && c != '\r') {
      return Status::InvalidArgument(std::string("trailing data in ") +
                                     what + " record");
    }
  }
  return Status::Ok();
}

Status FinishFramedStream(TrailerReader& reader, std::istream& in,
                          const char* what) {
  auto end = reader.Next();
  if (end.ok()) {
    return Status::InvalidArgument("trailing data in snapshot");
  }
  if (!reader.done()) return end.status();
  return ExpectStreamEnd(in, what);
}

Status ExpectStreamEnd(std::istream& in, const char* what) {
  char c = 0;
  while (in.get(c)) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') {
      return Status::InvalidArgument(
          std::string("trailing data after ") + what + " trailer");
    }
  }
  return Status::Ok();
}

#ifdef _WIN32

// Portability fallback: plain write + rename (no directory fsync).
Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::NotFound("cannot open " + tmp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return Status::Internal("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename failed: " + path);
  }
  return Status::Ok();
}

#else

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::NotFound("cannot open " + tmp + " for writing: " +
                            std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("write failed: " + tmp + ": " +
                              std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // Data must be durable before the rename publishes it; otherwise a
  // crash could leave a fully renamed but empty checkpoint.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    return Status::Internal("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename failed: " + path + ": " +
                            std::strerror(errno));
  }
  // Make the rename itself durable.
  std::string dir = path;
  std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; some filesystems refuse dir fsync
    ::close(dfd);
  }
  return Status::Ok();
}

#endif  // _WIN32

}  // namespace webevo
