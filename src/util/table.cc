#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace webevo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

void Plot(std::vector<std::string>& grid, const std::vector<double>& xs,
          const std::vector<double>& ys, double x_min, double x_max,
          double y_min, double y_max, char mark, char overlap) {
  const int height = static_cast<int>(grid.size());
  const int width = static_cast<int>(grid[0].size());
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    double xf = x_max > x_min ? (xs[i] - x_min) / (x_max - x_min) : 0.0;
    double yf =
        y_max > y_min
            ? (std::clamp(ys[i], y_min, y_max) - y_min) / (y_max - y_min)
            : 0.0;
    int col = std::clamp(static_cast<int>(std::lround(xf * (width - 1))), 0,
                         width - 1);
    int row = std::clamp(
        height - 1 - static_cast<int>(std::lround(yf * (height - 1))), 0,
        height - 1);
    char& cell = grid[static_cast<size_t>(row)][static_cast<size_t>(col)];
    if (cell == ' ' || cell == mark) {
      cell = mark;
    } else {
      cell = overlap;
    }
  }
}

std::string Render(const std::vector<std::string>& grid, double y_min,
                   double y_max) {
  std::ostringstream os;
  char buf[32];
  for (size_t r = 0; r < grid.size(); ++r) {
    if (r == 0) {
      std::snprintf(buf, sizeof(buf), "%7.3f |", y_max);
    } else if (r + 1 == grid.size()) {
      std::snprintf(buf, sizeof(buf), "%7.3f |", y_min);
    } else {
      std::snprintf(buf, sizeof(buf), "%7s |", "");
    }
    os << buf << grid[r] << '\n';
  }
  os << std::string(9, ' ') << std::string(grid[0].size(), '-') << '\n';
  return os.str();
}

}  // namespace

std::string AsciiChart(const std::vector<double>& xs,
                       const std::vector<double>& ys, double y_min,
                       double y_max, int height, int width) {
  if (xs.empty() || ys.empty() || height < 2 || width < 2) return "";
  double x_min = *std::min_element(xs.begin(), xs.end());
  double x_max = *std::max_element(xs.begin(), xs.end());
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  Plot(grid, xs, ys, x_min, x_max, y_min, y_max, '*', '*');
  return Render(grid, y_min, y_max);
}

std::string AsciiChart2(const std::vector<double>& xs,
                        const std::vector<double>& ys1,
                        const std::vector<double>& ys2, double y_min,
                        double y_max, int height, int width) {
  if (xs.empty() || height < 2 || width < 2) return "";
  double x_min = *std::min_element(xs.begin(), xs.end());
  double x_max = *std::max_element(xs.begin(), xs.end());
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  Plot(grid, xs, ys1, x_min, x_max, y_min, y_max, '*', '@');
  Plot(grid, xs, ys2, x_min, x_max, y_min, y_max, 'o', '@');
  return Render(grid, y_min, y_max);
}

}  // namespace webevo
