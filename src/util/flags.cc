#include "util/flags.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace webevo {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  // strtoll clamps out-of-range input to LLONG_MIN/LLONG_MAX and only
  // reports it through errno; a silently saturated value is as wrong
  // as an unparsable one (mirrors GetDouble's non-finite rejection).
  if (errno == ERANGE) return fallback;
  return v;
}

double FlagParser::GetDouble(const std::string& name,
                             double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  // strtod happily parses "nan", "inf", and overflowing exponents;
  // none of those is an acceptable rate/probability/latency, so treat
  // non-finite values exactly like unparsable ones.
  if (!std::isfinite(v)) return fallback;
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

Status FlagParser::Validate(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return Status::Ok();
}

}  // namespace webevo
