#ifndef WEBEVO_UTIL_HASH_H_
#define WEBEVO_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace webevo {

/// 64-bit FNV-1a hash of a byte string.
uint64_t Fnv1a64(std::string_view data);

/// 64-bit FNV-1a with a custom offset basis, used to derive independent
/// hash functions from one implementation.
uint64_t Fnv1a64Seeded(std::string_view data, uint64_t seed);

/// Mixes a new 64-bit value into an accumulated hash (Boost-style).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// 128-bit content checksum, the crawler's stand-in for the page digest
/// the paper's UpdateModule records "from the last crawl" to detect
/// changes. Two independently seeded FNV-1a streams make accidental
/// collisions on realistic collection sizes negligible.
struct Checksum128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Checksum128&) const = default;
};

/// Computes the checksum of a page body.
Checksum128 ChecksumOf(std::string_view data);

/// Hash functor for checksum-keyed containers (the crawler's content-
/// fingerprint registry). The two halves are already independent hash
/// streams; one extra mix spreads them over the bucket space.
struct Checksum128Hash {
  std::size_t operator()(const Checksum128& c) const {
    return static_cast<std::size_t>(HashCombine(c.hi, c.lo));
  }
};

}  // namespace webevo

#endif  // WEBEVO_UTIL_HASH_H_
