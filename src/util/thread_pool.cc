#include "util/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace webevo {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Completion latch shared by the wrapped tasks; the caller blocks
  // until the last wrapper counts down.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    Submit([fn = std::move(task), latch] {
      fn();
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

void ThreadPool::RunForIndices(
    const std::vector<std::size_t>& indices,
    const std::function<void(std::size_t)>& task) {
  if (indices.size() <= 1) {
    for (std::size_t i : indices) task(i);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(indices.size());
  for (std::size_t i : indices) {
    tasks.push_back([&task, i] { task(i); });
  }
  RunAndWait(std::move(tasks));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace webevo
