#ifndef WEBEVO_UTIL_THREAD_POOL_H_
#define WEBEVO_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace webevo {

/// A fixed-size pool of worker threads for batch-parallel simulation
/// work (the ShardedCrawlEngine dispatches one task per shard per
/// batch).
///
/// The pool is deliberately minimal: tasks are `void()` closures, run in
/// FIFO order across workers, and must not throw (library code reports
/// errors through Status, never exceptions). Synchronisation follows the
/// classic mutex + condition-variable worker loop (cf. the UrlFrontier
/// coordination in production crawlers).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (< 1 is clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs every task on the pool and returns once all of them have
  /// finished — the engine's batch barrier. Must not be called from a
  /// worker thread (the barrier would deadlock waiting on itself).
  void RunAndWait(std::vector<std::function<void()>> tasks);

  /// Runs `task(i)` for every index in `indices` and waits. With two or
  /// more indices the tasks go through the pool, one per index; with
  /// fewer they run inline — same code path, same results, no thread
  /// handoff. This is the shard fan-out the crawl phases (plan extract,
  /// fetch, apply shard pass, link noting, measure) all share.
  void RunForIndices(const std::vector<std::size_t>& indices,
                     const std::function<void(std::size_t)>& task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace webevo

#endif  // WEBEVO_UTIL_THREAD_POOL_H_
