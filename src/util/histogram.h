#ifndef WEBEVO_UTIL_HISTOGRAM_H_
#define WEBEVO_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace webevo {

/// Histogram over explicit, strictly increasing upper bucket edges plus a
/// trailing overflow bucket, matching the paper's presentation of change
/// intervals and lifespans ("<= 1 day", "<= 1 week", ..., "> 4 months").
///
/// A sample x lands in the first bucket whose upper edge satisfies
/// x <= edge; samples above the last edge land in the overflow bucket.
class Histogram {
 public:
  /// Creates a histogram. `upper_edges` must be non-empty and strictly
  /// increasing; `labels`, if non-empty, must have upper_edges.size() + 1
  /// entries (one per bucket including overflow).
  static StatusOr<Histogram> Make(std::vector<double> upper_edges,
                                  std::vector<std::string> labels = {});

  /// Buckets at day granularity for the paper's change-interval figures:
  /// <=1 day, <=1 week, <=1 month (30 d), <=4 months (120 d), >4 months.
  static Histogram ChangeIntervalBuckets();

  /// Buckets for the paper's lifespan figures (Figure 4):
  /// <=1 week, <=1 month, <=4 months, >4 months.
  static Histogram LifespanBuckets();

  /// Adds one observation with the given weight (default 1).
  void Add(double value, double weight = 1.0);

  /// Adds all counts of `other`, which must have identical edges.
  Status Merge(const Histogram& other);

  size_t num_buckets() const { return counts_.size(); }
  double bucket_count(size_t i) const { return counts_[i]; }
  const std::string& bucket_label(size_t i) const { return labels_[i]; }
  /// Upper edge of bucket i; the overflow bucket has edge +infinity.
  double bucket_upper_edge(size_t i) const;

  /// Total weight added so far.
  double total() const { return total_; }

  /// Fraction of total weight in bucket i (0 if the histogram is empty).
  double fraction(size_t i) const;

  /// All bucket fractions in order.
  std::vector<double> fractions() const;

  /// Smallest value v such that at least quantile `q` in [0,1] of the
  /// weight lies in buckets with upper edge <= v, interpolating linearly
  /// within a bucket. Returns the last finite edge if q falls in the
  /// overflow bucket, and 0 for an empty histogram.
  double Quantile(double q) const;

  /// Renders "label: fraction" lines with ASCII bars for benches.
  std::string ToString(int bar_width = 40) const;

 private:
  Histogram(std::vector<double> edges, std::vector<std::string> labels);

  std::vector<double> edges_;         // strictly increasing upper edges
  std::vector<std::string> labels_;   // edges_.size() + 1 labels
  std::vector<double> counts_;        // edges_.size() + 1 buckets
  double total_ = 0.0;
};

}  // namespace webevo

#endif  // WEBEVO_UTIL_HISTOGRAM_H_
