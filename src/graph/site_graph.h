#ifndef WEBEVO_GRAPH_SITE_GRAPH_H_
#define WEBEVO_GRAPH_SITE_GRAPH_H_

#include <vector>

#include "graph/link_graph.h"
#include "graph/pagerank.h"
#include "simweb/simulated_web.h"
#include "util/status.h"

namespace webevo::graph {

/// The paper's site-level hypergraph (Section 2.2): nodes are web sites,
/// edges are the links between sites, and the PageRank of this graph
/// measures site popularity — the metric used to pick the 400 candidate
/// sites for the study.
class SiteGraph {
 public:
  /// Builds the hypergraph from all cross-site links alive in `web` at
  /// time `t`. A link with multiplicity m contributes m parallel edges,
  /// so heavily linked site pairs carry proportional weight.
  static SiteGraph FromWeb(simweb::SimulatedWeb& web, double t);

  const LinkGraph& graph() const { return graph_; }
  uint32_t num_sites() const { return graph_.num_nodes(); }

  /// Site PageRank with the paper's damping factor (0.9 by default).
  StatusOr<PageRankResult> ComputeSiteRank(
      const PageRankOptions& options = {}) const;

 private:
  explicit SiteGraph(LinkGraph graph) : graph_(std::move(graph)) {}

  LinkGraph graph_;
};

}  // namespace webevo::graph

#endif  // WEBEVO_GRAPH_SITE_GRAPH_H_
