#include "graph/site_graph.h"

namespace webevo::graph {

SiteGraph SiteGraph::FromWeb(simweb::SimulatedWeb& web, double t) {
  LinkGraph graph(web.num_sites());
  for (const auto& link : web.OracleSiteLinks(t)) {
    for (uint64_t i = 0; i < link.count; ++i) {
      // Endpoints come from the web itself, so AddEdge cannot fail here.
      Status st = graph.AddEdge(link.from, link.to);
      (void)st;
    }
  }
  graph.Finalize();
  return SiteGraph(std::move(graph));
}

StatusOr<PageRankResult> SiteGraph::ComputeSiteRank(
    const PageRankOptions& options) const {
  return ComputePageRank(graph_, options);
}

}  // namespace webevo::graph
