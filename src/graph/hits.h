#ifndef WEBEVO_GRAPH_HITS_H_
#define WEBEVO_GRAPH_HITS_H_

#include <vector>

#include "graph/link_graph.h"
#include "util/status.h"

namespace webevo::graph {

/// Options for the HITS (Hub & Authority) solver [Kle98], the paper's
/// alternative importance metric for the RankingModule (Section 5.2).
struct HitsOptions {
  int max_iterations = 100;
  /// L2 convergence threshold on the authority vector.
  double tolerance = 1e-12;
};

/// Hub and authority scores, each normalised to unit L2 norm.
struct HitsResult {
  std::vector<double> hub;
  std::vector<double> authority;
  int iterations = 0;
  bool converged = false;
};

/// Computes HITS scores by mutual power iteration:
/// authority(v) = sum of hub over in-neighbors, hub(v) = sum of
/// authority over out-neighbors, renormalised each round.
StatusOr<HitsResult> ComputeHits(const LinkGraph& graph,
                                 const HitsOptions& options = {});

}  // namespace webevo::graph

#endif  // WEBEVO_GRAPH_HITS_H_
