#include "graph/hits.h"

#include <cmath>

namespace webevo::graph {
namespace {

// Normalises v to unit L2 norm; returns the prior norm (0 if all-zero).
double NormalizeL2(std::vector<double>& v) {
  double sq = 0.0;
  for (double x : v) sq += x * x;
  double norm = std::sqrt(sq);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
  return norm;
}

}  // namespace

StatusOr<HitsResult> ComputeHits(const LinkGraph& graph,
                                 const HitsOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  const NodeId n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");

  HitsResult result;
  result.hub.assign(n, 1.0);
  result.authority.assign(n, 1.0);
  NormalizeL2(result.hub);
  NormalizeL2(result.authority);

  std::vector<double> prev_auth = result.authority;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Authority from hubs pointing in.
    for (NodeId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (NodeId u : graph.InNeighbors(v)) sum += result.hub[u];
      result.authority[v] = sum;
    }
    NormalizeL2(result.authority);
    // Hub from authorities pointed at.
    for (NodeId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (NodeId w : graph.OutNeighbors(v)) sum += result.authority[w];
      result.hub[v] = sum;
    }
    NormalizeL2(result.hub);

    double delta_sq = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double d = result.authority[v] - prev_auth[v];
      delta_sq += d * d;
    }
    prev_auth = result.authority;
    result.iterations = iter + 1;
    if (std::sqrt(delta_sq) < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace webevo::graph
