#include "graph/link_graph.h"

#include <cassert>

namespace webevo::graph {

LinkGraph::LinkGraph(NodeId num_nodes) : num_nodes_(num_nodes) {}

Status LinkGraph::AddEdge(NodeId from, NodeId to) {
  if (finalized_) {
    return Status::FailedPrecondition("graph already finalized");
  }
  if (from >= num_nodes_ || to >= num_nodes_) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  edges_.push_back(Edge{from, to});
  return Status::Ok();
}

void LinkGraph::Finalize() {
  if (finalized_) return;
  out_offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (NodeId n = 0; n < num_nodes_; ++n) {
    out_offsets_[n + 1] += out_offsets_[n];
    in_offsets_[n + 1] += in_offsets_[n];
  }
  out_targets_.resize(edges_.size());
  in_sources_.resize(edges_.size());
  std::vector<uint64_t> out_pos(out_offsets_.begin(),
                                out_offsets_.end() - 1);
  std::vector<uint64_t> in_pos(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    out_targets_[out_pos[e.from]++] = e.to;
    in_sources_[in_pos[e.to]++] = e.from;
  }
  finalized_ = true;
}

uint32_t LinkGraph::OutDegree(NodeId n) const {
  assert(finalized_ && n < num_nodes_);
  return static_cast<uint32_t>(out_offsets_[n + 1] - out_offsets_[n]);
}

uint32_t LinkGraph::InDegree(NodeId n) const {
  assert(finalized_ && n < num_nodes_);
  return static_cast<uint32_t>(in_offsets_[n + 1] - in_offsets_[n]);
}

std::span<const NodeId> LinkGraph::OutNeighbors(NodeId n) const {
  assert(finalized_ && n < num_nodes_);
  return {out_targets_.data() + out_offsets_[n],
          out_targets_.data() + out_offsets_[n + 1]};
}

std::span<const NodeId> LinkGraph::InNeighbors(NodeId n) const {
  assert(finalized_ && n < num_nodes_);
  return {in_sources_.data() + in_offsets_[n],
          in_sources_.data() + in_offsets_[n + 1]};
}

}  // namespace webevo::graph
