#ifndef WEBEVO_GRAPH_LINK_GRAPH_H_
#define WEBEVO_GRAPH_LINK_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace webevo::graph {

/// Node index within a LinkGraph.
using NodeId = uint32_t;

/// A directed multigraph in compressed sparse row form, used for both
/// the page-level link graph the RankingModule scans and the site-level
/// hypergraph of the paper's Section 2.2.
///
/// Build phase: AddEdge any number of times (parallel edges allowed and
/// meaningful — a page with two links to the same target contributes
/// twice to the paper's PR denominator c_i). Then Finalize() once;
/// neighbor queries are invalid before that and adding edges is invalid
/// after.
class LinkGraph {
 public:
  explicit LinkGraph(NodeId num_nodes);

  /// Adds a directed edge. Returns InvalidArgument for out-of-range
  /// endpoints, FailedPrecondition after Finalize().
  Status AddEdge(NodeId from, NodeId to);

  /// Builds CSR adjacency (both directions). Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }
  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return edges_.size(); }

  /// Out-/in-degree counting multiplicity. Requires Finalize().
  uint32_t OutDegree(NodeId n) const;
  uint32_t InDegree(NodeId n) const;

  /// Successor / predecessor lists. Requires Finalize().
  std::span<const NodeId> OutNeighbors(NodeId n) const;
  std::span<const NodeId> InNeighbors(NodeId n) const;

 private:
  struct Edge {
    NodeId from;
    NodeId to;
  };

  NodeId num_nodes_;
  bool finalized_ = false;
  std::vector<Edge> edges_;
  // CSR storage, filled by Finalize().
  std::vector<uint64_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_sources_;
};

}  // namespace webevo::graph

#endif  // WEBEVO_GRAPH_LINK_GRAPH_H_
