#ifndef WEBEVO_GRAPH_PAGERANK_H_
#define WEBEVO_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/link_graph.h"
#include "util/status.h"

namespace webevo::graph {

/// Options for the power-iteration PageRank solver.
struct PageRankOptions {
  /// Probability of following a link (vs. jumping to a random page).
  /// The paper's Section 2.2 formula PR(P) = d + (1-d)[sum PR(P_i)/c_i]
  /// with "damping factor 0.9" corresponds to a random surfer who
  /// follows links with probability 0.9, which is how we implement it
  /// (the widely used formulation from [PB98]).
  double damping = 0.9;
  /// Power iteration converges like damping^k; 1e-10 L1 tolerance at
  /// d = 0.9 needs a few hundred iterations.
  int max_iterations = 600;
  /// L1 convergence threshold on the rank vector between iterations.
  double tolerance = 1e-10;
  /// Dangling nodes (no out-links) redistribute their mass uniformly,
  /// the standard fix; disable to drop their mass instead.
  bool redistribute_dangling = true;
};

/// Result of a PageRank computation. `rank` sums to num_nodes (the
/// paper's convention of starting "with all PR values equal to 1");
/// divide by num_nodes for a probability vector.
struct PageRankResult {
  std::vector<double> rank;
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Computes PageRank by power iteration. The graph must be finalized
/// and non-empty.
StatusOr<PageRankResult> ComputePageRank(const LinkGraph& graph,
                                         const PageRankOptions& options = {});

/// Indices of the top `k` nodes by rank, ties broken by lower index
/// (deterministic). `k` is clamped to the number of nodes.
std::vector<NodeId> TopKByRank(const std::vector<double>& rank, size_t k);

}  // namespace webevo::graph

#endif  // WEBEVO_GRAPH_PAGERANK_H_
