#include "graph/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace webevo::graph {

StatusOr<PageRankResult> ComputePageRank(const LinkGraph& graph,
                                         const PageRankOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  const NodeId n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  const double nd = static_cast<double>(n);
  const double d = options.damping;

  PageRankResult result;
  std::vector<double> rank(n, 1.0);  // paper: start all PR at 1
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    if (options.redistribute_dangling) {
      for (NodeId v = 0; v < n; ++v) {
        if (graph.OutDegree(v) == 0) dangling += rank[v];
      }
    }
    const double base = (1.0 - d) + d * dangling / nd;
    std::fill(next.begin(), next.end(), base);
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t deg = graph.OutDegree(v);
      if (deg == 0) continue;
      const double share = d * rank[v] / static_cast<double>(deg);
      for (NodeId to : graph.OutNeighbors(v)) next[to] += share;
    }
    double residual = 0.0;
    for (NodeId v = 0; v < n; ++v) residual += std::abs(next[v] - rank[v]);
    rank.swap(next);
    result.iterations = iter + 1;
    result.residual = residual;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.rank = std::move(rank);
  return result;
}

std::vector<NodeId> TopKByRank(const std::vector<double>& rank, size_t k) {
  std::vector<NodeId> order(rank.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&rank](NodeId a, NodeId b) {
                      if (rank[a] != rank[b]) return rank[a] > rank[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace webevo::graph
