#ifndef WEBEVO_SIMWEB_SIMULATED_WEB_H_
#define WEBEVO_SIMWEB_SIMULATED_WEB_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "simweb/domain.h"
#include "simweb/domain_profile.h"
#include "simweb/page.h"
#include "simweb/url.h"
#include "simweb/web_config.h"
#include "util/random.h"
#include "util/status.h"

namespace webevo::simweb {

/// A synthetic evolving web: the experimental substrate replacing the
/// live 1999 web of the paper's study (see DESIGN.md, Substitutions).
///
/// Structure: a fixed population of sites, each a tree of page *slots*
/// (slot 0 = root, always alive) plus random cross links. Each slot is
/// occupied by a succession of pages; when a page's lifespan ends, a new
/// page with a fresh URL, change rate and lifespan replaces it, so the
/// web exhibits exactly the page birth/death dynamics of Section 3.2.
///
/// Dynamics: each page changes according to a Poisson process with a
/// per-page rate drawn from its domain's calibrated profile (the model
/// the paper validates in Section 3.4). Time is continuous, measured in
/// days. State advances *lazily*: a page's version is materialised only
/// when it is observed, by sampling Poisson(rate * elapsed) — exact and
/// O(1) per observation, which lets benches run months of virtual time
/// over hundreds of thousands of pages in seconds.
///
/// Determinism and concurrency: every page owns a private RNG stream
/// seeded from (web seed, site, slot, incarnation), and PageIds are a
/// pure function of the URL, so a page's evolution is independent of
/// the order in which *other* pages are observed. Shared structures are
/// guarded by one mutex per site plus atomic counters, which makes the
/// fetch and oracle paths safe for concurrent crawl shards — and, with
/// per-page streams, bit-identical across shard counts as long as each
/// individual page is observed at the same times. The only ordering
/// requirement is per page: one page's observation times must be
/// non-decreasing (naturally true for a crawler driving a simulation
/// clock, and preserved by the ShardedCrawlEngine's per-site shard
/// ownership).
///
/// Serial callers keep the historical contract that global fetch times
/// never move backwards. A concurrent batch relaxes it: between
/// BeginConcurrentBatch(floor) and EndConcurrentBatch(), shard threads
/// may interleave fetches with non-monotonic times >= floor.
///
/// The class distinguishes the *crawler-visible* API (`Fetch`, which
/// counts as traffic and returns only what a real crawler could see)
/// from the *oracle* API (ground truth for evaluation: true versions,
/// change rates, liveness).
class SimulatedWeb;

/// Snapshot/restore of the web's lazily materialised evolution state
/// (web_snapshot.cc). Page versions are sampled per observation
/// interval from per-page RNG streams, so a *fresh* web re-observed
/// only at later times would diverge from one that lived through the
/// earlier observations — a crawler checkpoint that promises
/// bit-identical resume across processes must therefore carry the
/// web's state alongside the crawler's.
Status SaveWeb(const SimulatedWeb& web, std::ostream& out);
Status RestoreWeb(std::istream& in, SimulatedWeb* web);

/// Incremental variant (web_snapshot.cc): SaveWebDelta writes the full
/// state of only the *dirty* sites — those touched since ClearDirtySites
/// — plus the absolute global counters; ApplyWebDelta replaces exactly
/// those sites' state in an already-restored web. Requires
/// EnableDirtyTracking.
Status SaveWebDelta(const SimulatedWeb& web, std::ostream& out);
Status ApplyWebDelta(std::istream& in, SimulatedWeb* web);

class SimulatedWeb {
 public:
  /// Builds the initial web at time 0. Pages present at the start are
  /// given stationary ages (uniform within their lifespan), so the
  /// population starts in steady state rather than all-new. CHECK-fails
  /// (assert) on invalid config; call config.Validate() first to handle
  /// errors gracefully.
  explicit SimulatedWeb(const WebConfig& config);

  // Not copyable (large, and it owns mutexes).
  SimulatedWeb(const SimulatedWeb&) = delete;
  SimulatedWeb& operator=(const SimulatedWeb&) = delete;

  /// Current simulation time (days); the max time observed so far.
  double now() const { return now_.load(std::memory_order_relaxed); }

  /// --- Concurrent batch window ---------------------------------------

  /// Enters a concurrent fetch window: until EndConcurrentBatch, Fetch
  /// may be called from multiple shard threads with non-monotonic times,
  /// provided every time is >= `floor`. Called by the engine's serial
  /// driver thread, never concurrently with fetches.
  void BeginConcurrentBatch(double floor);

  /// Leaves the concurrent fetch window and restores the serial
  /// monotonic-time contract.
  void EndConcurrentBatch();

  /// --- Crawler-visible API -------------------------------------------

  /// Fetches `url` at time `t`. Returns NotFound if the URL's page is
  /// dead or not yet born, InvalidArgument if `t` moves backwards
  /// (before the current time outside a batch; before the batch floor
  /// inside one). Counts toward fetch statistics either way.
  ///
  /// With fault injection active (config.HasFaults()) a fetch may also
  /// fail Unavailable (transient error, outage, overload, dead site) or
  /// DeadlineExceeded (timeout), or succeed slowly. Fault outcomes are
  /// drawn from per-site lanes advanced once per fetch, so they require
  /// each *site*'s fetch times to be non-decreasing — the same ordering
  /// the engine's per-site shard ownership already guarantees. A faulted
  /// fetch counts as traffic but never advances the page's own change
  /// process. When `latency_days` is non-null it receives the stall the
  /// caller paid (timeout and slow outcomes; 0 otherwise), which a
  /// polite crawler adds to the site's politeness window.
  StatusOr<FetchResult> Fetch(const Url& url, double t,
                              double* latency_days = nullptr);

  const WebConfig& config() const { return config_; }

  /// Root URL of a site (the root page is immortal, like the paper's
  /// monitored site roots).
  Url RootUrl(uint32_t site) const;

  /// Synthetic page body for a given page and version; the checksum in
  /// FetchResult is the digest of exactly this string. Pure function of
  /// (page, version, config), so bodies are reproducible across runs
  /// and shard counts.
  std::string PageBody(PageId page, uint64_t version) const;

  uint32_t num_sites() const { return static_cast<uint32_t>(sites_.size()); }
  Domain site_domain(uint32_t site) const { return sites_[site].domain; }
  uint32_t site_size(uint32_t site) const {
    return static_cast<uint32_t>(sites_[site].slots.size());
  }
  /// Total page slots across all sites (= live pages at any instant).
  uint64_t TotalSlots() const { return total_slots_; }

  uint64_t fetch_count() const {
    return fetch_count_.load(std::memory_order_relaxed);
  }
  uint64_t not_found_count() const {
    return not_found_count_.load(std::memory_order_relaxed);
  }
  uint64_t site_fetch_count(uint32_t site) const {
    return site_fetches_[site].load(std::memory_order_relaxed);
  }

  /// --- Oracle API (evaluation only; does not count as traffic) -------

  /// PageId for a URL, alive or dead. NotFound for a never-created URL.
  StatusOr<PageId> OracleLookup(const Url& url) const;

  /// True content version of `url` at time `t`; NotFound if dead/unborn.
  StatusOr<uint64_t> OracleVersion(const Url& url, double t);

  /// Whether `url`'s page is alive at `t`.
  bool OracleAlive(const Url& url, double t) const;

  /// Whether a stored copy (url, version) is fresh at `t`: the page is
  /// alive and has not changed past the stored version. This is the
  /// per-page freshness indicator of [CGM99b] that collection-level
  /// freshness averages.
  bool OracleIsFresh(const Url& url, uint64_t stored_version, double t);

  /// URL currently occupying (site, slot) at time `t`.
  Url OracleCurrentUrl(uint32_t site, uint32_t slot, double t);

  /// The page's true Poisson change rate (per day).
  double OracleChangeRate(PageId page) const;
  /// Time of the page's most recent change at or before `t` (its birth
  /// time if it has never changed). Advances the lazy change process.
  StatusOr<double> OracleLastChangeTime(const Url& url, double t);
  /// The page's birth time and death time (death may be +infinity).
  double OracleBirthTime(PageId page) const;
  double OracleDeathTime(PageId page) const;
  Domain OraclePageDomain(PageId page) const;
  Url OraclePageUrl(PageId page) const;

  /// Total pages ever created (live + dead).
  uint64_t OracleTotalPagesCreated() const {
    return pages_created_.load(std::memory_order_relaxed);
  }

  /// --- Adversarial classification (pure in (config, site)) -----------
  /// Which sites are traps / mirrors / migrators is a pure hash draw of
  /// (seed, site), never advanced by observation — the adversarial
  /// *shape* is identical at every shard count. These are oracle-grade
  /// facts: the crawler's defense layer must not consult them (it
  /// detects traps by yield and mirrors by fingerprint), but tests and
  /// benches may.

  /// Whether `site` is a spider trap: every successful fetch on it
  /// mints fresh never-before-seen same-site URLs (virtual slots past
  /// the site's real size) that fetch successfully and mint more.
  bool IsTrapSite(uint32_t site) const;

  /// Whether `site` belongs to a mirror farm (its content is
  /// byte-identical to its group leader's, under distinct URLs).
  bool IsMirroredSite(uint32_t site) const;

  /// Mirror-group leader of `site`; `site` itself when not mirrored.
  uint32_t MirrorLeaderOf(uint32_t site) const;

  /// The day source `site` migrates away (+infinity when it never
  /// does). From that day the site answers kUnavailable forever while
  /// its twin (site + 1) resurrects its pages under new URLs.
  double MigrationDayOf(uint32_t site) const;

  /// The source site that `site` resurrects as a migration twin, or
  /// num_sites() when `site` is no one's twin.
  uint32_t TwinSourceOf(uint32_t site) const;

  /// One directed site-to-site link with multiplicity.
  struct SiteLink {
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t count = 0;
  };

  /// Aggregated cross-site links of all pages alive at time `t`; the
  /// edge set of the paper's site-level hypergraph (Section 2.2), used
  /// to compute site PageRank for the Table 1 selection pipeline.
  std::vector<SiteLink> OracleSiteLinks(double t);

  /// Full-state snapshot/restore (see the free-function comments).
  friend Status SaveWeb(const SimulatedWeb& web, std::ostream& out);
  friend Status RestoreWeb(std::istream& in, SimulatedWeb* web);
  friend Status SaveWebDelta(const SimulatedWeb& web, std::ostream& out);
  friend Status ApplyWebDelta(std::istream& in, SimulatedWeb* web);

  /// Per-site dirty flags for incremental checkpoints: every mutating
  /// entry point (Fetch, link resolution, the state-advancing oracles)
  /// marks the sites whose lazily materialised state it may have
  /// moved. Flags are atomic bytes so concurrent shard fetches mark
  /// without coordination; the *set* of marked sites is a pure function
  /// of the observation history, identical at every shard count.
  void EnableDirtyTracking();
  bool dirty_tracking() const { return site_dirty_ != nullptr; }
  void AppendDirtySites(std::set<uint32_t>* out) const;
  void ClearDirtySites();

 private:
  struct PageRecord {
    Url url;
    double change_rate = 0.0;  // lambda, per day
    double birth_time = 0.0;
    double death_time = 0.0;  // +inf for immortal roots
    uint64_t version = 0;
    double state_time = 0.0;       // version is exact as of this time
    double last_change_time = 0.0;
    // Cross links as (site, slot); resolved to the slot's current
    // occupant at fetch time.
    std::vector<std::pair<uint32_t, uint32_t>> cross_links;
    // Private stream driving this page's change process, seeded from
    // (web seed, page identity): evolution is a pure function of the
    // page's own observation times, never of global observation order.
    Rng rng{0};
  };

  struct SlotState {
    // Successive occupants; index == incarnation. Their lifetimes
    // partition time: history[i] covers [birth_i, death_i) with
    // death_i == birth_{i+1}.
    std::vector<PageRecord> history;
  };

  struct SiteState {
    Domain domain = Domain::kCom;
    std::vector<SlotState> slots;
  };

  /// Per-site fault-injection state, materialized lazily on a site's
  /// first fetch (so it exists for exactly the sites that were crawled,
  /// at every shard count). Guarded by the site's mutex.
  struct SiteFaultState {
    bool init = false;
    /// Per-fetch outcome lane — one uniform consumed per fetch that
    /// reaches the classified draw (dead-site and outage fetches short-
    /// circuit before it, but those conditions are pure in (site, t)).
    Rng draw{0};
    /// Outage-window renewal lane, advanced only as windows are
    /// materialized to cover the fetch time.
    Rng outage{0};
    double outage_start = 0.0;
    double outage_end = 0.0;  // next/current window is [start, end)
    double death_day = std::numeric_limits<double>::infinity();
    int64_t flash_bucket = -1;
    uint32_t flash_count = 0;
  };

  enum class FaultOutcome { kNone, kSlow, kTransient, kTimeout };

  /// Draws the fault outcome for a fetch of `site` at `t`, advancing
  /// the site's fault lanes; fills `latency_days` for timeout/slow
  /// outcomes. Caller holds the site mutex.
  FaultOutcome EvalFaultLocked(uint32_t site, double t,
                               double* latency_days);

  /// Per-site adversarial state: the only *evolving* adversarial state
  /// (classification is pure). Counters advance under the site's mutex
  /// in per-site fetch order, which the engine's shard ownership makes
  /// deterministic at every shard count.
  struct SiteAdvState {
    /// Fresh trap URLs minted so far by this (trap) site.
    uint64_t trap_minted = 0;
    /// Resurrected source slots announced so far by this (twin) site.
    uint64_t twin_emitted = 0;
  };

  /// Appends `adv_trap_links_per_fetch` freshly minted trap URLs for a
  /// successful fetch on trap site `site`. Caller holds the site mutex.
  void MintTrapLinksLocked(uint32_t site, std::vector<Url>* links);

  /// Appends the next unannounced resurrected-source URLs for a
  /// successful post-migration fetch on twin `site`. Caller holds the
  /// site mutex.
  void EmitTwinLinksLocked(uint32_t site, uint32_t source,
                           std::vector<Url>* links);

  /// Fresh deterministic RNG stream for one page identity.
  Rng PageStream(PageId id) const;

  /// Appends a new page to (site, slot)'s history, born at `birth`.
  /// `stationary` backdates the birth by a uniform fraction of the
  /// lifespan, for the initial steady-state population. Caller holds
  /// the site mutex (or is the constructor).
  PageRecord& CreatePageLocked(uint32_t site, uint32_t slot, double birth,
                               bool stationary);

  /// Extends (site, slot)'s history with successor pages until it
  /// covers time `t`. Caller holds the site mutex.
  void EnsureCoverageLocked(uint32_t site, uint32_t slot, double t);

  /// The record occupying (site, slot) at time `t`; requires coverage.
  /// Caller holds the site mutex.
  PageRecord& OccupantAtLocked(uint32_t site, uint32_t slot, double t);

  /// Record for a PageId known to exist. Caller holds the site mutex.
  PageRecord& RecordOf(PageId id);
  const PageRecord& RecordOf(PageId id) const;

  /// Locks a slot's site, ensures coverage, and returns the occupant's
  /// URL at `t` — the link-resolution primitive.
  Url ResolveOccupantUrl(uint32_t site, uint32_t slot, double t);

  /// Advances a page's lazily sampled change process to time `t`.
  /// Caller holds the page's site mutex.
  static void AdvancePage(PageRecord& page, double t);

  /// Raises now() to at least `t` (atomic max).
  void BumpNow(double t);

  /// Marks `site`'s state as moved since the last ClearDirtySites
  /// (no-op unless tracking is enabled).
  void MarkSiteDirty(uint32_t site) {
    if (site_dirty_ != nullptr) {
      site_dirty_[site].store(1, std::memory_order_relaxed);
    }
  }

  /// The earliest admissible fetch time right now.
  double TimeFloor() const;

  WebConfig config_;
  Rng rng_;  // construction-time layout draws only (site sizes, shuffle)
  std::atomic<double> now_{0.0};
  bool concurrent_batch_ = false;
  double batch_floor_ = 0.0;
  std::vector<SiteState> sites_;
  // Sized to num_sites when config_.HasFaults(); empty otherwise.
  std::vector<SiteFaultState> site_faults_;
  // Sized to num_sites when config_.HasAdvState(); empty otherwise.
  std::vector<SiteAdvState> site_adv_;
  // One mutex per site, guarding that site's slot histories.
  std::unique_ptr<std::mutex[]> site_mu_;
  uint64_t total_slots_ = 0;
  std::atomic<uint64_t> fetch_count_{0};
  std::atomic<uint64_t> not_found_count_{0};
  std::atomic<uint64_t> pages_created_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> site_fetches_;
  // Allocated (num_sites flags) by EnableDirtyTracking; null = off.
  std::unique_ptr<std::atomic<uint8_t>[]> site_dirty_;
};

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_SIMULATED_WEB_H_
