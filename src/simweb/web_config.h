#ifndef WEBEVO_SIMWEB_WEB_CONFIG_H_
#define WEBEVO_SIMWEB_WEB_CONFIG_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simweb/domain.h"
#include "simweb/domain_profile.h"
#include "simweb/page.h"
#include "util/status.h"

namespace webevo::simweb {

/// Parameters of the synthetic web.
///
/// Defaults model the paper's study population: 270 sites with the
/// Table 1 domain mix (com 132, edu 78, netorg 30, gov 30). Site sizes
/// are drawn log-uniformly in [min_site_size, max_site_size]; the paper
/// crawled a 3,000-page window per site, which our experiment layer
/// reproduces with a configurable window.
struct WebConfig {
  /// Master seed; all web randomness derives from it deterministically.
  uint64_t seed = 19990217;  // the experiment's start date

  /// Sites per domain, Table 1 order: com, edu, netorg, gov.
  std::array<int, kNumDomains> sites_per_domain = {132, 78, 30, 30};

  /// Page-slot count per site, drawn log-uniformly in this range.
  uint32_t min_site_size = 50;
  uint32_t max_site_size = 400;

  /// Fan-out of the intra-site navigation tree (slot j's children are
  /// slots j*b+1 ... j*b+b).
  int tree_branching = 5;

  /// Extra random out-links per page, on top of the navigation tree.
  int cross_links_per_page = 3;

  /// Probability that a cross link points to another site (otherwise it
  /// stays within the page's own site).
  double cross_site_link_prob = 0.3;

  /// Zipf exponent for choosing the target site of cross-site links;
  /// produces the skewed popularity that site-level PageRank relies on.
  double site_popularity_zipf = 1.05;

  /// Probability that a new page's lifespan shares its change-interval
  /// quantile (fast pages die young). See DomainProfile::SamplePage —
  /// this is what lets the ever-seen population be churn-heavy (Fig 2)
  /// while the day-0 snapshot decays slowly (Fig 5).
  double rate_lifespan_coupling = 0.5;

  /// If > 0, every page gets exactly this mean change interval (days)
  /// instead of its domain's calibrated mixture. Used by the Table 2
  /// policy-matrix simulation, which the paper computes under "all
  /// pages change with an average 4 month interval".
  double uniform_change_interval_days = 0.0;

  /// If non-empty, page change intervals for *all* domains are drawn
  /// from this mixture instead of the calibrated per-domain profiles
  /// (lifespans still follow the domain profiles). Lets experiments
  /// construct webs with specific rate structure, e.g. the bimodal mix
  /// where variable-frequency crawling shines. Ignored when
  /// uniform_change_interval_days > 0.
  std::vector<MixtureBucket> custom_change_interval_mix;

  /// If > 0, every non-root page gets exactly this lifespan (days)
  /// instead of its domain's calibrated mixture. Set it far beyond the
  /// simulation horizon to disable page birth/death.
  double uniform_lifespan_days = 0.0;

  /// Extra deterministic filler appended to every synthetic page body,
  /// in bytes. 0 keeps bodies minimal (fast unit tests); scaling
  /// benches set a few KiB so the per-fetch body-generation + checksum
  /// work resembles fetching and digesting a real page.
  uint32_t page_body_bytes = 0;

  // ------------------------------------------------------ fault model
  // All off by default: with every knob at zero the web behaves exactly
  // as before (instant success or NotFound) and carries no fault state.
  // Outcomes are drawn from per-site RNG lanes — a pure function of
  // (seed, site) plus the site's own fetch sequence, which is itself
  // deterministic at every shard count — following the per-page stream
  // idiom, so fault injection preserves the N=1 == N=8 invariant.

  /// Per-fetch probability of a transient error (kUnavailable).
  double fault_transient_prob = 0.0;

  /// Per-fetch probability of a timeout (kDeadlineExceeded); the
  /// caller is charged `fault_timeout_latency_days` of polite-window
  /// stall before the failure surfaces.
  double fault_timeout_prob = 0.0;
  double fault_timeout_latency_days = 0.02;

  /// Per-fetch probability of a slow-but-successful response; the
  /// latency widens the caller's polite window.
  double fault_slow_prob = 0.0;
  double fault_slow_latency_days = 0.01;

  /// Site outage windows: each site independently goes dark as a
  /// renewal process (exponential gaps at this rate, fixed duration);
  /// every fetch inside a window fails kUnavailable.
  double fault_outage_rate_per_day = 0.0;
  double fault_outage_duration_days = 0.5;

  /// Permanent site death: each site dies with this probability, at a
  /// time drawn uniformly in [0, 2 * fault_site_death_mean_day]. A
  /// dead site answers kUnavailable forever.
  double fault_site_death_prob = 0.0;
  double fault_site_death_mean_day = 30.0;

  /// Flash-crowd overload: once a site has served more than
  /// `fault_flash_crowd_threshold` fetches within one
  /// `fault_flash_crowd_window_days` window, further fetches in that
  /// window fail kUnavailable with `fault_flash_crowd_error_prob`
  /// (added to the base transient probability).
  uint32_t fault_flash_crowd_threshold = 0;
  double fault_flash_crowd_window_days = 0.25;
  double fault_flash_crowd_error_prob = 0.0;

  // ------------------------------------------------ adversarial model
  // All off by default, like the fault model: every knob at zero leaves
  // the web's content exactly as before and carries no adversarial
  // state. Which sites are traps / mirrors / migrators is a pure
  // per-site hash draw of (seed, site) — no RNG stream is consumed — so
  // the adversarial shape is identical at every shard count; the only
  // evolving state (per-site mint counters) advances under the site
  // mutex in per-site fetch order, which is itself deterministic.

  /// Spider traps: each site becomes a trap with this probability.
  /// Every successful fetch on a trap site mints
  /// `adv_trap_links_per_fetch` fresh never-before-seen same-site URLs
  /// (virtual slots past the site's real size), each of which fetches
  /// successfully — serving one shared low-value body per trap site —
  /// and mints more. An undefended crawler's frontier grows without
  /// bound inside the trap.
  double adv_trap_site_prob = 0.0;
  uint32_t adv_trap_links_per_fetch = 0;

  /// Mirror farms: the first `adv_mirror_group_size * adv_mirror_groups`
  /// sites are partitioned into groups of `adv_mirror_group_size`; every
  /// member serves byte-identical content (the group leader's checksums)
  /// under its own distinct URLs. Active when group size >= 2 and
  /// groups >= 1.
  uint32_t adv_mirror_group_size = 0;
  uint32_t adv_mirror_groups = 0;

  /// Domain migrations: each even-numbered site migrates with this
  /// probability at a day drawn uniformly in
  /// [0, 2 * adv_migration_mean_day]. After the migration day the
  /// source site answers kUnavailable forever while its twin (site+1)
  /// resurrects the source's pages under new URLs — twin fetches emit
  /// up to `adv_migration_links_per_fetch` fresh twin-hosted links per
  /// fetch until the whole source collection has been re-announced.
  double adv_migration_prob = 0.0;
  double adv_migration_mean_day = 30.0;
  uint32_t adv_migration_links_per_fetch = 4;

  /// Heavy-tailed site sizes: when > 0, site page counts follow a Zipf
  /// law with this exponent over [min_site_size, max_site_size]
  /// (rank-ordered by site index) instead of the log-uniform draw.
  double adv_heavy_tail_zipf = 0.0;

  /// True when any fault knob is active; the web keeps per-site fault
  /// state (and emits fault records into its snapshot) only then.
  bool HasFaults() const {
    return fault_transient_prob > 0.0 || fault_timeout_prob > 0.0 ||
           fault_slow_prob > 0.0 || fault_outage_rate_per_day > 0.0 ||
           fault_site_death_prob > 0.0 ||
           (fault_flash_crowd_threshold > 0 &&
            fault_flash_crowd_error_prob > 0.0);
  }

  /// True when any adversarial knob is active.
  bool HasAdversarial() const {
    return (adv_trap_site_prob > 0.0 && adv_trap_links_per_fetch > 0) ||
           (adv_mirror_group_size >= 2 && adv_mirror_groups >= 1) ||
           adv_migration_prob > 0.0 || adv_heavy_tail_zipf > 0.0;
  }

  /// True when the web must keep evolving per-site adversarial state
  /// (trap/twin mint counters) — and emit Y records into its snapshot.
  /// Mirror farms and heavy-tail sizes are stateless shape changes.
  bool HasAdvState() const {
    return (adv_trap_site_prob > 0.0 && adv_trap_links_per_fetch > 0) ||
           adv_migration_prob > 0.0;
  }

  /// Returns a copy with sites_per_domain scaled by `factor` (minimum
  /// one site per domain), for quick tests and scaled-down benches.
  WebConfig Scaled(double factor) const {
    WebConfig c = *this;
    for (auto& n : c.sites_per_domain) {
      n = n > 0 ? static_cast<int>(n * factor) : 0;
      if (n < 1) n = 1;
    }
    return c;
  }

  /// Validates ranges; construction of SimulatedWeb requires OK.
  Status Validate() const {
    for (int n : sites_per_domain) {
      if (n < 0) return Status::InvalidArgument("negative site count");
    }
    int64_t total = 0;
    for (int n : sites_per_domain) total += n;
    if (total == 0) return Status::InvalidArgument("no sites configured");
    if (total > static_cast<int64_t>(kMaxSites)) {
      return Status::InvalidArgument("site count exceeds PageId site cap");
    }
    if (min_site_size < 1 || max_site_size < min_site_size) {
      return Status::InvalidArgument("bad site size range");
    }
    if (max_site_size > kMaxSlotsPerSite) {
      return Status::InvalidArgument("max_site_size exceeds PageId slot cap");
    }
    if (tree_branching < 1) {
      return Status::InvalidArgument("tree_branching must be >= 1");
    }
    if (cross_links_per_page < 0) {
      return Status::InvalidArgument("cross_links_per_page must be >= 0");
    }
    if (cross_site_link_prob < 0.0 || cross_site_link_prob > 1.0) {
      return Status::InvalidArgument("cross_site_link_prob not in [0,1]");
    }
    if (site_popularity_zipf < 0.0) {
      return Status::InvalidArgument("site_popularity_zipf must be >= 0");
    }
    if (rate_lifespan_coupling < 0.0 || rate_lifespan_coupling > 1.0) {
      return Status::InvalidArgument(
          "rate_lifespan_coupling not in [0,1]");
    }
    for (double p : {fault_transient_prob, fault_timeout_prob,
                     fault_slow_prob, fault_site_death_prob,
                     fault_flash_crowd_error_prob}) {
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("fault probability not in [0,1]");
      }
    }
    if (fault_transient_prob + fault_timeout_prob + fault_slow_prob >
        1.0) {
      return Status::InvalidArgument(
          "transient + timeout + slow probabilities exceed 1");
    }
    for (double d :
         {fault_timeout_latency_days, fault_slow_latency_days,
          fault_outage_rate_per_day, fault_outage_duration_days,
          fault_site_death_mean_day, fault_flash_crowd_window_days}) {
      if (d < 0.0) {
        return Status::InvalidArgument("negative fault parameter");
      }
    }
    if (fault_outage_rate_per_day > 0.0 &&
        fault_outage_duration_days <= 0.0) {
      return Status::InvalidArgument(
          "outage windows need a positive duration");
    }
    if (fault_flash_crowd_threshold > 0 &&
        fault_flash_crowd_window_days <= 0.0) {
      return Status::InvalidArgument(
          "flash-crowd throttling needs a positive window");
    }
    for (double p : {adv_trap_site_prob, adv_migration_prob}) {
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "adversarial probability not in [0,1]");
      }
    }
    if (adv_trap_site_prob > 0.0 && adv_trap_links_per_fetch == 0) {
      return Status::InvalidArgument(
          "spider traps need adv_trap_links_per_fetch >= 1");
    }
    if (adv_mirror_group_size == 1) {
      return Status::InvalidArgument(
          "mirror groups need adv_mirror_group_size >= 2");
    }
    if (adv_migration_mean_day < 0.0 || adv_heavy_tail_zipf < 0.0) {
      return Status::InvalidArgument("negative adversarial parameter");
    }
    if (adv_migration_prob > 0.0 && adv_migration_links_per_fetch == 0) {
      return Status::InvalidArgument(
          "migrations need adv_migration_links_per_fetch >= 1");
    }
    return Status::Ok();
  }
};

/// Applies one of the named fault scenarios used by
/// bench_fault_scenarios and `webevo_sim --faults=...`. The scenario
/// names are the bench's scenario matrix; "none"/"baseline" clears
/// every fault knob.
inline Status ApplyFaultScenario(const std::string& scenario,
                                 WebConfig* config) {
  WebConfig clean = *config;
  clean.fault_transient_prob = 0.0;
  clean.fault_timeout_prob = 0.0;
  clean.fault_slow_prob = 0.0;
  clean.fault_outage_rate_per_day = 0.0;
  clean.fault_site_death_prob = 0.0;
  clean.fault_flash_crowd_threshold = 0;
  clean.fault_flash_crowd_error_prob = 0.0;
  *config = clean;
  if (scenario == "none" || scenario == "baseline") return Status::Ok();
  if (scenario == "transient10") {
    config->fault_transient_prob = 0.08;
    config->fault_timeout_prob = 0.02;
    return Status::Ok();
  }
  if (scenario == "outage-storm") {
    config->fault_outage_rate_per_day = 0.25;
    config->fault_outage_duration_days = 0.5;
    config->fault_transient_prob = 0.02;
    return Status::Ok();
  }
  if (scenario == "site-death") {
    config->fault_site_death_prob = 0.2;
    config->fault_site_death_mean_day = 6.0;
    config->fault_transient_prob = 0.02;
    return Status::Ok();
  }
  if (scenario == "flash-crowd") {
    config->fault_flash_crowd_threshold = 8;
    config->fault_flash_crowd_window_days = 0.25;
    config->fault_flash_crowd_error_prob = 0.5;
    config->fault_slow_prob = 0.1;
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "unknown fault scenario '" + scenario +
      "' (valid: none, baseline, transient10, outage-storm, site-death, "
      "flash-crowd)");
}

/// Applies one of the named adversarial scenarios used by
/// bench_adversarial_scenarios and `webevo_sim --adversarial=...`.
/// "none"/"baseline" clears every adversarial knob.
inline Status ApplyAdversarialScenario(const std::string& scenario,
                                       WebConfig* config) {
  config->adv_trap_site_prob = 0.0;
  config->adv_trap_links_per_fetch = 0;
  config->adv_mirror_group_size = 0;
  config->adv_mirror_groups = 0;
  config->adv_migration_prob = 0.0;
  config->adv_heavy_tail_zipf = 0.0;
  if (scenario == "none" || scenario == "baseline") return Status::Ok();
  if (scenario == "spider-trap") {
    config->adv_trap_site_prob = 0.3;
    config->adv_trap_links_per_fetch = 3;
    return Status::Ok();
  }
  if (scenario == "mirror-farm") {
    config->adv_mirror_group_size = 4;
    config->adv_mirror_groups = 64;
    return Status::Ok();
  }
  if (scenario == "domain-migration") {
    config->adv_migration_prob = 0.5;
    config->adv_migration_mean_day = 4.0;
    config->adv_migration_links_per_fetch = 6;
    return Status::Ok();
  }
  if (scenario == "heavy-tail") {
    config->adv_heavy_tail_zipf = 1.3;
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "unknown adversarial scenario '" + scenario +
      "' (valid: none, baseline, spider-trap, mirror-farm, "
      "domain-migration, heavy-tail)");
}

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_WEB_CONFIG_H_
