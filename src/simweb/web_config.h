#ifndef WEBEVO_SIMWEB_WEB_CONFIG_H_
#define WEBEVO_SIMWEB_WEB_CONFIG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "simweb/domain.h"
#include "simweb/domain_profile.h"
#include "simweb/page.h"
#include "util/status.h"

namespace webevo::simweb {

/// Parameters of the synthetic web.
///
/// Defaults model the paper's study population: 270 sites with the
/// Table 1 domain mix (com 132, edu 78, netorg 30, gov 30). Site sizes
/// are drawn log-uniformly in [min_site_size, max_site_size]; the paper
/// crawled a 3,000-page window per site, which our experiment layer
/// reproduces with a configurable window.
struct WebConfig {
  /// Master seed; all web randomness derives from it deterministically.
  uint64_t seed = 19990217;  // the experiment's start date

  /// Sites per domain, Table 1 order: com, edu, netorg, gov.
  std::array<int, kNumDomains> sites_per_domain = {132, 78, 30, 30};

  /// Page-slot count per site, drawn log-uniformly in this range.
  uint32_t min_site_size = 50;
  uint32_t max_site_size = 400;

  /// Fan-out of the intra-site navigation tree (slot j's children are
  /// slots j*b+1 ... j*b+b).
  int tree_branching = 5;

  /// Extra random out-links per page, on top of the navigation tree.
  int cross_links_per_page = 3;

  /// Probability that a cross link points to another site (otherwise it
  /// stays within the page's own site).
  double cross_site_link_prob = 0.3;

  /// Zipf exponent for choosing the target site of cross-site links;
  /// produces the skewed popularity that site-level PageRank relies on.
  double site_popularity_zipf = 1.05;

  /// Probability that a new page's lifespan shares its change-interval
  /// quantile (fast pages die young). See DomainProfile::SamplePage —
  /// this is what lets the ever-seen population be churn-heavy (Fig 2)
  /// while the day-0 snapshot decays slowly (Fig 5).
  double rate_lifespan_coupling = 0.5;

  /// If > 0, every page gets exactly this mean change interval (days)
  /// instead of its domain's calibrated mixture. Used by the Table 2
  /// policy-matrix simulation, which the paper computes under "all
  /// pages change with an average 4 month interval".
  double uniform_change_interval_days = 0.0;

  /// If non-empty, page change intervals for *all* domains are drawn
  /// from this mixture instead of the calibrated per-domain profiles
  /// (lifespans still follow the domain profiles). Lets experiments
  /// construct webs with specific rate structure, e.g. the bimodal mix
  /// where variable-frequency crawling shines. Ignored when
  /// uniform_change_interval_days > 0.
  std::vector<MixtureBucket> custom_change_interval_mix;

  /// If > 0, every non-root page gets exactly this lifespan (days)
  /// instead of its domain's calibrated mixture. Set it far beyond the
  /// simulation horizon to disable page birth/death.
  double uniform_lifespan_days = 0.0;

  /// Extra deterministic filler appended to every synthetic page body,
  /// in bytes. 0 keeps bodies minimal (fast unit tests); scaling
  /// benches set a few KiB so the per-fetch body-generation + checksum
  /// work resembles fetching and digesting a real page.
  uint32_t page_body_bytes = 0;

  /// Returns a copy with sites_per_domain scaled by `factor` (minimum
  /// one site per domain), for quick tests and scaled-down benches.
  WebConfig Scaled(double factor) const {
    WebConfig c = *this;
    for (auto& n : c.sites_per_domain) {
      n = n > 0 ? static_cast<int>(n * factor) : 0;
      if (n < 1) n = 1;
    }
    return c;
  }

  /// Validates ranges; construction of SimulatedWeb requires OK.
  Status Validate() const {
    for (int n : sites_per_domain) {
      if (n < 0) return Status::InvalidArgument("negative site count");
    }
    int64_t total = 0;
    for (int n : sites_per_domain) total += n;
    if (total == 0) return Status::InvalidArgument("no sites configured");
    if (total > static_cast<int64_t>(kMaxSites)) {
      return Status::InvalidArgument("site count exceeds PageId site cap");
    }
    if (min_site_size < 1 || max_site_size < min_site_size) {
      return Status::InvalidArgument("bad site size range");
    }
    if (max_site_size > kMaxSlotsPerSite) {
      return Status::InvalidArgument("max_site_size exceeds PageId slot cap");
    }
    if (tree_branching < 1) {
      return Status::InvalidArgument("tree_branching must be >= 1");
    }
    if (cross_links_per_page < 0) {
      return Status::InvalidArgument("cross_links_per_page must be >= 0");
    }
    if (cross_site_link_prob < 0.0 || cross_site_link_prob > 1.0) {
      return Status::InvalidArgument("cross_site_link_prob not in [0,1]");
    }
    if (site_popularity_zipf < 0.0) {
      return Status::InvalidArgument("site_popularity_zipf must be >= 0");
    }
    if (rate_lifespan_coupling < 0.0 || rate_lifespan_coupling > 1.0) {
      return Status::InvalidArgument(
          "rate_lifespan_coupling not in [0,1]");
    }
    return Status::Ok();
  }
};

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_WEB_CONFIG_H_
