#ifndef WEBEVO_SIMWEB_URL_H_
#define WEBEVO_SIMWEB_URL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/hash.h"

namespace webevo::simweb {

/// Address of a page in the simulated web.
///
/// A site is a fixed set of page *slots* arranged as a navigation tree
/// (slot 0 is the root). When the page occupying a slot dies, a new page
/// with a fresh URL is created in the same slot; `incarnation` counts
/// these generations, so a URL uniquely identifies one page for its whole
/// life and fetching a stale URL yields NotFound — exactly the behaviour
/// a real crawler sees when a page disappears and a new one replaces it.
struct Url {
  uint32_t site = 0;
  uint32_t slot = 0;
  uint32_t incarnation = 0;

  bool operator==(const Url&) const = default;

  /// Renders e.g. "site42/p7_v3" for logs and examples.
  std::string ToString() const {
    return "site" + std::to_string(site) + "/p" + std::to_string(slot) +
           "_v" + std::to_string(incarnation);
  }
};

/// Hash functor so Url can key unordered containers.
struct UrlHash {
  size_t operator()(const Url& u) const {
    uint64_t h = HashCombine(u.site, u.slot);
    return static_cast<size_t>(HashCombine(h, u.incarnation));
  }
};

/// The one canonical URL order — ascending (site, slot, incarnation).
/// Everything that must be bit-identical across shard counts (eviction
/// tie-breaks, snapshot record order, ranking walks, rebalance sums)
/// sorts with this single definition.
struct UrlIdentityLess {
  bool operator()(const Url& a, const Url& b) const {
    if (a.site != b.site) return a.site < b.site;
    if (a.slot != b.slot) return a.slot < b.slot;
    return a.incarnation < b.incarnation;
  }
};

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_URL_H_
