#include "simweb/domain_profile.h"

#include <cassert>
#include <cmath>

namespace webevo::simweb {
namespace {

// Change-interval mixture edges follow the paper's Figure 2 buckets:
// (0,1] day, (1,7], (7,30], (30,120], >120 days. The "daily" bucket
// spans 0.02-0.1 day (half an hour to ~2.5 hours): for a daily monitor
// to report "changed whenever we visited" over a 4-month span, the
// per-visit detection probability 1 - e^{-interval_days/interval} must
// be essentially 1 — pages changing only ~once a day would occasionally
// be missed and leak into the next bucket (the Figure 1(a) granularity
// effect). The top bucket extends to 3000 days so a sizeable share of
// pages never change within any experiment horizon (the paper's "did
// not change at all for 4 months").
std::vector<MixtureBucket> ChangeMix(double b1, double b2, double b3,
                                     double b4, double b5) {
  return {{0.02, 0.1, b1},
          {1.0, 7.0, b2},
          {7.0, 30.0, b3},
          {30.0, 120.0, b4},
          {120.0, 3000.0, b5}};
}

// Lifespan mixture edges follow Figure 4's buckets: (1,7] days, (7,30],
// (30,120], >120 (up to ~4 years).
std::vector<MixtureBucket> LifeMix(double b1, double b2, double b3,
                                   double b4) {
  return {{1.0, 7.0, b1},
          {7.0, 30.0, b2},
          {30.0, 120.0, b3},
          {120.0, 1500.0, b4}};
}

}  // namespace

DomainProfile::DomainProfile(std::vector<MixtureBucket> change_interval_days,
                             std::vector<MixtureBucket> lifespan_days)
    : change_interval_(std::move(change_interval_days)),
      lifespan_(std::move(lifespan_days)) {
  assert(!change_interval_.empty() && !lifespan_.empty());
}

const DomainProfile& DomainProfile::Calibrated(Domain d) {
  // Weights per bucket (see DESIGN.md "Calibration targets"). These are
  // *birth* distributions; the measured histograms differ because the
  // standing population is length-biased and daily sampling smears
  // bucket edges — the weights below are tuned so the *measured*
  // Figure 2/4/5 statistics land on the paper's values.
  static const DomainProfile kCom(ChangeMix(0.50, 0.17, 0.12, 0.08, 0.13),
                                  LifeMix(0.12, 0.22, 0.36, 0.30));
  static const DomainProfile kEdu(ChangeMix(0.04, 0.08, 0.14, 0.26, 0.48),
                                  LifeMix(0.04, 0.09, 0.32, 0.55));
  static const DomainProfile kNetOrg(ChangeMix(0.11, 0.18, 0.22, 0.24, 0.25),
                                     LifeMix(0.07, 0.16, 0.37, 0.40));
  static const DomainProfile kGov(ChangeMix(0.03, 0.06, 0.13, 0.26, 0.52),
                                  LifeMix(0.03, 0.08, 0.31, 0.58));
  switch (d) {
    case Domain::kCom:
      return kCom;
    case Domain::kEdu:
      return kEdu;
    case Domain::kNetOrg:
      return kNetOrg;
    case Domain::kGov:
      return kGov;
  }
  return kCom;
}

double DomainProfile::MixtureQuantile(
    const std::vector<MixtureBucket>& mix, double u) {
  double total = 0.0;
  for (const auto& b : mix) total += b.weight;
  double r = u * total;
  const MixtureBucket* chosen = &mix.back();
  double within = 1.0;
  for (const auto& b : mix) {
    if (r < b.weight) {
      chosen = &b;
      within = b.weight > 0.0 ? r / b.weight : 0.0;
      break;
    }
    r -= b.weight;
  }
  // Log-uniform within the bucket.
  double lo = std::log(chosen->min_value);
  double hi = std::log(chosen->max_value);
  return std::exp(lo + within * (hi - lo));
}

double DomainProfile::SampleMixture(const std::vector<MixtureBucket>& mix,
                                    Rng& rng) {
  return MixtureQuantile(mix, rng.NextDouble());
}

double DomainProfile::SampleChangeInterval(Rng& rng) const {
  return SampleMixture(change_interval_, rng);
}

double DomainProfile::SampleLifespan(Rng& rng) const {
  return SampleMixture(lifespan_, rng);
}

DomainProfile::PageDraw DomainProfile::SamplePage(Rng& rng,
                                                  double coupling) const {
  PageDraw draw;
  double u = rng.NextDouble();
  draw.change_interval_days = MixtureQuantile(change_interval_, u);
  // Sharing the quantile with probability `coupling` leaves both
  // marginals exactly intact while inducing rank correlation.
  double v = rng.Bernoulli(coupling) ? u : rng.NextDouble();
  draw.lifespan_days = MixtureQuantile(lifespan_, v);
  return draw;
}

double DomainProfile::IntervalMassBetween(double lo, double hi) const {
  double total = 0.0, inside = 0.0;
  for (const auto& b : change_interval_) {
    total += b.weight;
    // Overlap of (lo, hi] with the bucket on a log scale.
    double blo = std::log(b.min_value);
    double bhi = std::log(b.max_value);
    double qlo = std::max(blo, std::log(std::max(lo, 1e-12)));
    double qhi = std::min(bhi, std::log(std::max(hi, 1e-12)));
    if (qhi > qlo && bhi > blo) {
      inside += b.weight * (qhi - qlo) / (bhi - blo);
    }
  }
  return total > 0.0 ? inside / total : 0.0;
}

}  // namespace webevo::simweb
