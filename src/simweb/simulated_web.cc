#include "simweb/simulated_web.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace webevo::simweb {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
// Tolerance for "time moved backwards" checks; fetch schedules produced
// by accumulating floating-point steps can jitter at this magnitude.
constexpr double kTimeSlack = 1e-9;

}  // namespace

SimulatedWeb::SimulatedWeb(const WebConfig& config)
    : config_(config), rng_(config.seed) {
  Status st = config_.Validate();
  assert(st.ok());
  (void)st;

  // Lay out sites domain by domain, then shuffle so site index (which
  // Zipf popularity keys on) is not correlated with domain order.
  std::vector<Domain> domains;
  for (int d = 0; d < kNumDomains; ++d) {
    for (int i = 0; i < config_.sites_per_domain[static_cast<size_t>(d)];
         ++i) {
      domains.push_back(static_cast<Domain>(d));
    }
  }
  rng_.Shuffle(domains);

  sites_.resize(domains.size());
  site_fetches_.assign(domains.size(), 0);
  const double log_lo = std::log(static_cast<double>(config_.min_site_size));
  const double log_hi = std::log(static_cast<double>(config_.max_site_size));
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    sites_[s].domain = domains[s];
    auto size =
        static_cast<uint32_t>(std::lround(std::exp(rng_.Uniform(log_lo,
                                                                log_hi))));
    if (size < config_.min_site_size) size = config_.min_site_size;
    if (size > config_.max_site_size) size = config_.max_site_size;
    sites_[s].slots.resize(size);
    total_slots_ += size;
  }
  // Populate every slot with a stationary-age initial page.
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    for (uint32_t j = 0; j < sites_[s].slots.size(); ++j) {
      CreatePage(s, j, 0.0, /*stationary=*/true);
    }
  }
}

PageId SimulatedWeb::CreatePage(uint32_t site, uint32_t slot, double birth,
                                bool stationary) {
  const DomainProfile& profile =
      DomainProfile::Calibrated(sites_[site].domain);
  DomainProfile::PageDraw draw =
      profile.SamplePage(rng_, config_.rate_lifespan_coupling);
  if (stationary && config_.uniform_lifespan_days <= 0.0 && slot != 0) {
    // A snapshot at a random instant sees a slot's occupant with
    // probability proportional to its lifespan (length-biased renewal
    // sampling), not with the birth distribution — long-lived stable
    // pages dominate the standing population even when births are
    // dominated by short-lived churners. Rejection-sample accordingly.
    double max_lifespan = 0.0;
    for (const auto& bucket : profile.lifespan_mixture()) {
      max_lifespan = std::max(max_lifespan, bucket.max_value);
    }
    while (rng_.NextDouble() * max_lifespan > draw.lifespan_days) {
      draw = profile.SamplePage(rng_, config_.rate_lifespan_coupling);
    }
  }
  PageRecord page;
  if (config_.uniform_change_interval_days > 0.0) {
    page.change_rate = 1.0 / config_.uniform_change_interval_days;
  } else if (!config_.custom_change_interval_mix.empty()) {
    page.change_rate =
        1.0 / DomainProfile::MixtureQuantile(
                  config_.custom_change_interval_mix, rng_.NextDouble());
  } else {
    page.change_rate = 1.0 / draw.change_interval_days;
  }
  double lifespan = config_.uniform_lifespan_days > 0.0
                        ? config_.uniform_lifespan_days
                        : draw.lifespan_days;
  if (slot == 0) {
    // Site roots are immortal: the paper's monitored sites persist for
    // the whole study, and killing a root would orphan the site.
    page.birth_time = birth;
    page.death_time = kInfinity;
  } else if (stationary) {
    // Draw the page mid-life so the initial population is in steady
    // state: age uniform in [0, lifespan).
    double age = rng_.NextDouble() * lifespan;
    page.birth_time = birth - age;
    page.death_time = page.birth_time + lifespan;
  } else {
    page.birth_time = birth;
    page.death_time = birth + lifespan;
  }
  page.state_time = std::max(page.birth_time, 0.0);
  page.last_change_time = page.state_time;

  SlotState& slot_state = sites_[site].slots[slot];
  page.url = Url{site, slot,
                 static_cast<uint32_t>(slot_state.history.size())};

  for (int k = 0; k < config_.cross_links_per_page; ++k) {
    uint32_t target_site = site;
    if (sites_.size() > 1 && rng_.Bernoulli(config_.cross_site_link_prob)) {
      // Popular (low-index) sites attract more links.
      target_site = static_cast<uint32_t>(
          rng_.Zipf(sites_.size(), config_.site_popularity_zipf) - 1);
    }
    uint32_t target_slot = static_cast<uint32_t>(
        rng_.NextBounded(sites_[target_site].slots.size()));
    page.cross_links.emplace_back(target_site, target_slot);
  }

  PageId id = pages_.size();
  pages_.push_back(std::move(page));
  slot_state.history.push_back(id);
  slot_state.current = id;
  return id;
}

void SimulatedWeb::RollSlot(uint32_t site, uint32_t slot, double t) {
  SlotState& state = sites_[site].slots[slot];
  while (pages_[state.current].death_time <= t) {
    double death = pages_[state.current].death_time;
    CreatePage(site, slot, death, /*stationary=*/false);
  }
}

void SimulatedWeb::AdvancePage(PageRecord& page, double t) {
  if (t <= page.state_time) return;
  double dt = t - page.state_time;
  if (page.change_rate > 0.0) {
    uint64_t k = rng_.Poisson(page.change_rate * dt);
    if (k > 0) {
      page.version += k;
      // Conditioned on k Poisson events in (state_time, t], the latest
      // event is distributed as state_time + dt * max(U_1..U_k), and
      // max of k uniforms is U^(1/k).
      double u = rng_.NextDouble();
      page.last_change_time =
          page.state_time + dt * std::pow(u, 1.0 / static_cast<double>(k));
    }
  }
  page.state_time = t;
}

std::vector<Url> SimulatedWeb::CollectLinks(const PageRecord& page,
                                            double t) {
  std::vector<Url> links;
  const uint32_t site = page.url.site;
  const auto site_size = static_cast<uint64_t>(sites_[site].slots.size());
  // Navigation-tree children of this slot.
  uint64_t first_child =
      static_cast<uint64_t>(page.url.slot) *
          static_cast<uint64_t>(config_.tree_branching) +
      1;
  for (int b = 0; b < config_.tree_branching; ++b) {
    uint64_t child = first_child + static_cast<uint64_t>(b);
    if (child >= site_size) break;
    auto child_slot = static_cast<uint32_t>(child);
    RollSlot(site, child_slot, t);
    links.push_back(pages_[sites_[site].slots[child_slot].current].url);
  }
  // Cross links, resolved to the targets' current occupants.
  for (const auto& [ts, tslot] : page.cross_links) {
    RollSlot(ts, tslot, t);
    links.push_back(pages_[sites_[ts].slots[tslot].current].url);
  }
  return links;
}

StatusOr<FetchResult> SimulatedWeb::Fetch(const Url& url, double t) {
  if (url.site >= sites_.size() ||
      url.slot >= sites_[url.site].slots.size()) {
    ++fetch_count_;
    ++not_found_count_;
    return Status::NotFound("no such site/slot: " + url.ToString());
  }
  if (t + kTimeSlack < now_) {
    return Status::InvalidArgument("fetch time moved backwards");
  }
  now_ = std::max(now_, t);
  ++fetch_count_;
  ++site_fetches_[url.site];

  RollSlot(url.site, url.slot, t);
  SlotState& slot_state = sites_[url.site].slots[url.slot];
  PageRecord& occupant = pages_[slot_state.current];
  if (occupant.url != url) {
    // The requested incarnation is dead (or, for a malformed URL, was
    // never created) — a real crawler would see 404.
    ++not_found_count_;
    return Status::NotFound("page gone: " + url.ToString());
  }
  AdvancePage(occupant, t);

  FetchResult result;
  result.url = url;
  result.page = slot_state.current;
  result.version = occupant.version;
  result.checksum = ChecksumOf(PageBody(result.page, result.version));
  result.fetched_at = t;
  result.last_modified = occupant.version > 0
                             ? occupant.last_change_time
                             : std::max(occupant.birth_time, 0.0);
  result.links = CollectLinks(occupant, t);
  return result;
}

Url SimulatedWeb::RootUrl(uint32_t site) const {
  assert(site < sites_.size());
  return Url{site, 0, 0};
}

std::string SimulatedWeb::PageBody(PageId page, uint64_t version) const {
  // Deterministic pseudo-content: distinct per (page, version) so the
  // checksum changes exactly when the page changes.
  std::string body = "<html><head><title>page ";
  body += std::to_string(page);
  body += "</title></head><body>revision ";
  body += std::to_string(version);
  body += " token ";
  body += std::to_string(HashCombine(page, version));
  body += "</body></html>";
  return body;
}

StatusOr<PageId> SimulatedWeb::OracleLookup(const Url& url) const {
  if (url.site >= sites_.size() ||
      url.slot >= sites_[url.site].slots.size()) {
    return Status::NotFound("no such site/slot");
  }
  const auto& history = sites_[url.site].slots[url.slot].history;
  if (url.incarnation >= history.size()) {
    return Status::NotFound("incarnation never created");
  }
  return history[url.incarnation];
}

StatusOr<uint64_t> SimulatedWeb::OracleVersion(const Url& url, double t) {
  auto id = OracleLookup(url);
  if (!id.ok()) return id.status();
  PageRecord& page = pages_[*id];
  if (page.death_time <= t || page.birth_time > t) {
    return Status::NotFound("page not alive");
  }
  now_ = std::max(now_, t);
  AdvancePage(page, t);
  return page.version;
}

bool SimulatedWeb::OracleAlive(const Url& url, double t) {
  auto id = OracleLookup(url);
  if (!id.ok()) return false;
  const PageRecord& page = pages_[*id];
  return page.birth_time <= t && t < page.death_time;
}

bool SimulatedWeb::OracleIsFresh(const Url& url, uint64_t stored_version,
                                 double t) {
  auto version = OracleVersion(url, t);
  return version.ok() && *version == stored_version;
}

Url SimulatedWeb::OracleCurrentUrl(uint32_t site, uint32_t slot, double t) {
  assert(site < sites_.size() && slot < sites_[site].slots.size());
  now_ = std::max(now_, t);
  RollSlot(site, slot, t);
  return pages_[sites_[site].slots[slot].current].url;
}

StatusOr<double> SimulatedWeb::OracleLastChangeTime(const Url& url,
                                                    double t) {
  auto id = OracleLookup(url);
  if (!id.ok()) return id.status();
  PageRecord& page = pages_[*id];
  if (page.death_time <= t || page.birth_time > t) {
    return Status::NotFound("page not alive");
  }
  now_ = std::max(now_, t);
  AdvancePage(page, t);
  return page.last_change_time;
}

double SimulatedWeb::OracleChangeRate(PageId page) const {
  assert(page < pages_.size());
  return pages_[page].change_rate;
}

double SimulatedWeb::OracleBirthTime(PageId page) const {
  assert(page < pages_.size());
  return pages_[page].birth_time;
}

double SimulatedWeb::OracleDeathTime(PageId page) const {
  assert(page < pages_.size());
  return pages_[page].death_time;
}

Domain SimulatedWeb::OraclePageDomain(PageId page) const {
  assert(page < pages_.size());
  return sites_[pages_[page].url.site].domain;
}

Url SimulatedWeb::OraclePageUrl(PageId page) const {
  assert(page < pages_.size());
  return pages_[page].url;
}

std::vector<SimulatedWeb::SiteLink> SimulatedWeb::OracleSiteLinks(double t) {
  now_ = std::max(now_, t);
  // Dense accumulation per source site keeps this O(slots + edges).
  std::vector<SiteLink> out;
  std::vector<uint64_t> row(sites_.size(), 0);
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    std::vector<uint32_t> touched;
    for (uint32_t j = 0; j < sites_[s].slots.size(); ++j) {
      RollSlot(s, j, t);
      const PageRecord& page = pages_[sites_[s].slots[j].current];
      for (const auto& [ts, tslot] : page.cross_links) {
        (void)tslot;
        if (ts == s) continue;
        if (row[ts] == 0) touched.push_back(ts);
        ++row[ts];
      }
    }
    for (uint32_t ts : touched) {
      out.push_back(SiteLink{s, ts, row[ts]});
      row[ts] = 0;
    }
  }
  return out;
}

}  // namespace webevo::simweb
