#include "simweb/simulated_web.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/hash.h"

namespace webevo::simweb {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
// Tolerance for "time moved backwards" checks; fetch schedules produced
// by accumulating floating-point steps can jitter at this magnitude.
constexpr double kTimeSlack = 1e-9;
// Salt separating the per-page streams from the construction-time
// layout stream derived from the same seed.
constexpr uint64_t kPageStreamSalt = 0x9E3779B97F4A7C15ull;
// Salts separating the per-site fault lanes from the page streams and
// from each other.
constexpr uint64_t kFaultDrawSalt = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kFaultOutageSalt = 0x165667B19E3779F9ull;
constexpr uint64_t kSiteDeathSalt = 0x27D4EB2F165667C5ull;
// Salts separating the adversarial classification draws (pure per-site
// hash draws, never advanced by observation) from everything above.
constexpr uint64_t kTrapSalt = 0x94D049BB133111EBull;
constexpr uint64_t kMigrationSalt = 0xBF58476D1CE4E5B9ull;

// The shared low-value body every minted trap URL of `site` serves:
// distinct from any real page body, identical within the site, so a
// trap yields exactly one content fingerprint no matter how many URLs
// it mints.
std::string TrapBody(uint32_t site) {
  return "<html><body>webevo-trap-site " + std::to_string(site) +
         "</body></html>";
}

}  // namespace

SimulatedWeb::SimulatedWeb(const WebConfig& config)
    : config_(config), rng_(config.seed) {
  Status st = config_.Validate();
  assert(st.ok());
  (void)st;

  // Lay out sites domain by domain, then shuffle so site index (which
  // Zipf popularity keys on) is not correlated with domain order.
  std::vector<Domain> domains;
  for (int d = 0; d < kNumDomains; ++d) {
    for (int i = 0; i < config_.sites_per_domain[static_cast<size_t>(d)];
         ++i) {
      domains.push_back(static_cast<Domain>(d));
    }
  }
  rng_.Shuffle(domains);

  sites_.resize(domains.size());
  if (config_.HasFaults()) site_faults_.resize(domains.size());
  if (config_.HasAdvState()) site_adv_.resize(domains.size());
  site_mu_ = std::make_unique<std::mutex[]>(domains.size());
  site_fetches_ =
      std::make_unique<std::atomic<uint64_t>[]>(domains.size());
  for (std::size_t s = 0; s < domains.size(); ++s) site_fetches_[s] = 0;
  const double log_lo = std::log(static_cast<double>(config_.min_site_size));
  const double log_hi = std::log(static_cast<double>(config_.max_site_size));
  std::vector<uint32_t> sizes(sites_.size());
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    sites_[s].domain = domains[s];
    uint32_t size;
    if (config_.adv_heavy_tail_zipf > 0.0) {
      // Heavy-tailed sizes: a Zipf law over the configured range,
      // rank-ordered by site index (site 0 is the giant).
      const double span = static_cast<double>(config_.max_site_size -
                                              config_.min_site_size);
      size = config_.min_site_size +
             static_cast<uint32_t>(std::lround(
                 span * std::pow(static_cast<double>(s) + 1.0,
                                 -config_.adv_heavy_tail_zipf)));
    } else {
      size = static_cast<uint32_t>(
          std::lround(std::exp(rng_.Uniform(log_lo, log_hi))));
    }
    if (size < config_.min_site_size) size = config_.min_site_size;
    if (size > config_.max_site_size) size = config_.max_site_size;
    sizes[s] = size;
  }
  // Mirror followers copy their leader's size so the groups' slot
  // spaces align URL for URL.
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    const uint32_t leader = MirrorLeaderOf(s);
    if (leader != s) sizes[s] = sizes[leader];
  }
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    sites_[s].slots.resize(sizes[s]);
    total_slots_ += sizes[s];
  }
  // Populate every slot with a stationary-age initial page. Serial, so
  // no locking; every draw comes from the slot's own incarnation-0
  // stream, keeping the standing population independent of site order.
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    for (uint32_t j = 0; j < sites_[s].slots.size(); ++j) {
      CreatePageLocked(s, j, 0.0, /*stationary=*/true);
    }
  }
}

Rng SimulatedWeb::PageStream(PageId id) const {
  return Rng(HashCombine(config_.seed ^ kPageStreamSalt, id));
}

bool SimulatedWeb::IsTrapSite(uint32_t site) const {
  if (config_.adv_trap_site_prob <= 0.0 ||
      config_.adv_trap_links_per_fetch == 0) {
    return false;
  }
  // A migration twin's virtual slots belong to its resurrected source;
  // it can't double as a trap.
  if (TwinSourceOf(site) < num_sites()) return false;
  Rng draw(HashCombine(config_.seed ^ kTrapSalt, site));
  return draw.Bernoulli(config_.adv_trap_site_prob);
}

bool SimulatedWeb::IsMirroredSite(uint32_t site) const {
  if (config_.adv_mirror_group_size < 2 || config_.adv_mirror_groups < 1) {
    return false;
  }
  const uint64_t span = static_cast<uint64_t>(config_.adv_mirror_group_size) *
                        config_.adv_mirror_groups;
  return site < span && site < sites_.size();
}

uint32_t SimulatedWeb::MirrorLeaderOf(uint32_t site) const {
  if (!IsMirroredSite(site)) return site;
  return site - site % config_.adv_mirror_group_size;
}

double SimulatedWeb::MigrationDayOf(uint32_t site) const {
  if (config_.adv_migration_prob <= 0.0) return kInfinity;
  // Only even sites migrate; the odd neighbor is the twin that
  // resurrects them (so a source is never itself a twin).
  if (site % 2 != 0 || site + 1 >= sites_.size()) return kInfinity;
  Rng draw(HashCombine(config_.seed ^ kMigrationSalt, site));
  if (!draw.Bernoulli(config_.adv_migration_prob)) return kInfinity;
  return draw.NextDouble() * 2.0 * config_.adv_migration_mean_day;
}

uint32_t SimulatedWeb::TwinSourceOf(uint32_t site) const {
  if (config_.adv_migration_prob <= 0.0 || site % 2 != 1) {
    return num_sites();
  }
  const uint32_t source = site - 1;
  return MigrationDayOf(source) < kInfinity ? source : num_sites();
}

void SimulatedWeb::MintTrapLinksLocked(uint32_t site,
                                       std::vector<Url>* links) {
  SiteAdvState& adv = site_adv_[site];
  const auto real = static_cast<uint64_t>(sites_[site].slots.size());
  const uint64_t span = kMaxSlotsPerSite - real;
  for (uint32_t k = 0; k < config_.adv_trap_links_per_fetch; ++k) {
    const auto slot = static_cast<uint32_t>(real + adv.trap_minted % span);
    ++adv.trap_minted;
    links->push_back(Url{site, slot, 0});
  }
}

void SimulatedWeb::EmitTwinLinksLocked(uint32_t site, uint32_t source,
                                       std::vector<Url>* links) {
  SiteAdvState& adv = site_adv_[site];
  const auto real = static_cast<uint64_t>(sites_[site].slots.size());
  const auto source_size =
      static_cast<uint64_t>(sites_[source].slots.size());
  for (uint32_t k = 0; k < config_.adv_migration_links_per_fetch &&
                       adv.twin_emitted < source_size;
       ++k) {
    links->push_back(
        Url{site, static_cast<uint32_t>(real + adv.twin_emitted), 0});
    ++adv.twin_emitted;
  }
}

SimulatedWeb::PageRecord& SimulatedWeb::CreatePageLocked(uint32_t site,
                                                         uint32_t slot,
                                                         double birth,
                                                         bool stationary) {
  SlotState& slot_state = sites_[site].slots[slot];
  auto incarnation = static_cast<uint32_t>(slot_state.history.size());
  assert(incarnation < kMaxIncarnationsPerSlot);

  PageRecord page;
  page.url = Url{site, slot, incarnation};
  page.rng = PageStream(MakePageId(site, slot, incarnation));

  const DomainProfile& profile =
      DomainProfile::Calibrated(sites_[site].domain);
  DomainProfile::PageDraw draw =
      profile.SamplePage(page.rng, config_.rate_lifespan_coupling);
  if (stationary && config_.uniform_lifespan_days <= 0.0 && slot != 0) {
    // A snapshot at a random instant sees a slot's occupant with
    // probability proportional to its lifespan (length-biased renewal
    // sampling), not with the birth distribution — long-lived stable
    // pages dominate the standing population even when births are
    // dominated by short-lived churners. Rejection-sample accordingly.
    double max_lifespan = 0.0;
    for (const auto& bucket : profile.lifespan_mixture()) {
      max_lifespan = std::max(max_lifespan, bucket.max_value);
    }
    while (page.rng.NextDouble() * max_lifespan > draw.lifespan_days) {
      draw = profile.SamplePage(page.rng, config_.rate_lifespan_coupling);
    }
  }
  if (config_.uniform_change_interval_days > 0.0) {
    page.change_rate = 1.0 / config_.uniform_change_interval_days;
  } else if (!config_.custom_change_interval_mix.empty()) {
    page.change_rate =
        1.0 / DomainProfile::MixtureQuantile(
                  config_.custom_change_interval_mix, page.rng.NextDouble());
  } else {
    page.change_rate = 1.0 / draw.change_interval_days;
  }
  if (IsMirroredSite(site) || MigrationDayOf(site) < kInfinity) {
    // Mirror members and migration sources are static (version stays
    // 0): their checksums alias across sites and incarnations (see
    // Fetch), and aliased *live* content would couple one page's
    // observation times to another's — breaking the per-page-stream
    // independence the shard-count invariant rests on.
    page.change_rate = 0.0;
  }
  double lifespan = config_.uniform_lifespan_days > 0.0
                        ? config_.uniform_lifespan_days
                        : draw.lifespan_days;
  if (slot == 0) {
    // Site roots are immortal: the paper's monitored sites persist for
    // the whole study, and killing a root would orphan the site.
    page.birth_time = birth;
    page.death_time = kInfinity;
  } else if (stationary) {
    // Draw the page mid-life so the initial population is in steady
    // state: age uniform in [0, lifespan).
    double age = page.rng.NextDouble() * lifespan;
    page.birth_time = birth - age;
    page.death_time = page.birth_time + lifespan;
  } else {
    page.birth_time = birth;
    page.death_time = birth + lifespan;
  }
  page.state_time = std::max(page.birth_time, 0.0);
  page.last_change_time = page.state_time;

  for (int k = 0; k < config_.cross_links_per_page; ++k) {
    uint32_t target_site = site;
    if (sites_.size() > 1 &&
        page.rng.Bernoulli(config_.cross_site_link_prob)) {
      // Popular (low-index) sites attract more links.
      target_site = static_cast<uint32_t>(
          page.rng.Zipf(sites_.size(), config_.site_popularity_zipf) - 1);
    }
    // Slot counts are immutable after construction, so reading another
    // site's size here needs no lock.
    uint32_t target_slot = static_cast<uint32_t>(
        page.rng.NextBounded(sites_[target_site].slots.size()));
    page.cross_links.emplace_back(target_site, target_slot);
  }

  slot_state.history.push_back(std::move(page));
  pages_created_.fetch_add(1, std::memory_order_relaxed);
  return slot_state.history.back();
}

void SimulatedWeb::EnsureCoverageLocked(uint32_t site, uint32_t slot,
                                        double t) {
  SlotState& slot_state = sites_[site].slots[slot];
  while (slot_state.history.back().death_time <= t) {
    double death = slot_state.history.back().death_time;
    CreatePageLocked(site, slot, death, /*stationary=*/false);
  }
}

SimulatedWeb::PageRecord& SimulatedWeb::OccupantAtLocked(uint32_t site,
                                                         uint32_t slot,
                                                         double t) {
  std::vector<PageRecord>& history = sites_[site].slots[slot].history;
  // Occupant lifetimes partition time, so the occupant at `t` is the
  // first record whose death lies beyond `t`. Indexing by time instead
  // of a mutable "current occupant" pointer keeps lookups at earlier
  // times correct even after another shard has observed the slot at a
  // later time.
  auto it = std::upper_bound(
      history.begin(), history.end(), t,
      [](double value, const PageRecord& r) { return value < r.death_time; });
  assert(it != history.end());
  return *it;
}

SimulatedWeb::PageRecord& SimulatedWeb::RecordOf(PageId id) {
  assert(PageIdSite(id) < sites_.size());
  assert(PageIdSlot(id) < sites_[PageIdSite(id)].slots.size());
  assert(PageIdIncarnation(id) <
         sites_[PageIdSite(id)].slots[PageIdSlot(id)].history.size());
  return sites_[PageIdSite(id)]
      .slots[PageIdSlot(id)]
      .history[PageIdIncarnation(id)];
}

const SimulatedWeb::PageRecord& SimulatedWeb::RecordOf(PageId id) const {
  assert(PageIdSite(id) < sites_.size());
  assert(PageIdSlot(id) < sites_[PageIdSite(id)].slots.size());
  assert(PageIdIncarnation(id) <
         sites_[PageIdSite(id)].slots[PageIdSlot(id)].history.size());
  return sites_[PageIdSite(id)]
      .slots[PageIdSlot(id)]
      .history[PageIdIncarnation(id)];
}

void SimulatedWeb::AdvancePage(PageRecord& page, double t) {
  if (t <= page.state_time) return;
  double dt = t - page.state_time;
  if (page.change_rate > 0.0) {
    uint64_t k = page.rng.Poisson(page.change_rate * dt);
    if (k > 0) {
      page.version += k;
      // Conditioned on k Poisson events in (state_time, t], the latest
      // event is distributed as state_time + dt * max(U_1..U_k), and
      // max of k uniforms is U^(1/k).
      double u = page.rng.NextDouble();
      page.last_change_time =
          page.state_time + dt * std::pow(u, 1.0 / static_cast<double>(k));
    }
  }
  page.state_time = t;
}

void SimulatedWeb::BumpNow(double t) {
  double observed = now_.load(std::memory_order_relaxed);
  while (t > observed &&
         !now_.compare_exchange_weak(observed, t,
                                     std::memory_order_relaxed)) {
  }
}

double SimulatedWeb::TimeFloor() const {
  return concurrent_batch_ ? batch_floor_
                           : now_.load(std::memory_order_relaxed);
}

void SimulatedWeb::EnableDirtyTracking() {
  if (site_dirty_ != nullptr) return;
  site_dirty_ = std::make_unique<std::atomic<uint8_t>[]>(sites_.size());
  for (std::size_t s = 0; s < sites_.size(); ++s) site_dirty_[s] = 0;
}

void SimulatedWeb::AppendDirtySites(std::set<uint32_t>* out) const {
  if (site_dirty_ == nullptr) return;
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    if (site_dirty_[s].load(std::memory_order_relaxed) != 0) {
      out->insert(s);
    }
  }
}

void SimulatedWeb::ClearDirtySites() {
  if (site_dirty_ == nullptr) return;
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    site_dirty_[s].store(0, std::memory_order_relaxed);
  }
}

void SimulatedWeb::BeginConcurrentBatch(double floor) {
  assert(!concurrent_batch_);
  concurrent_batch_ = true;
  batch_floor_ = floor;
}

void SimulatedWeb::EndConcurrentBatch() {
  assert(concurrent_batch_);
  concurrent_batch_ = false;
}

Url SimulatedWeb::ResolveOccupantUrl(uint32_t site, uint32_t slot,
                                     double t) {
  MarkSiteDirty(site);  // coverage extension mutates the target site
  std::lock_guard<std::mutex> lock(site_mu_[site]);
  EnsureCoverageLocked(site, slot, t);
  return OccupantAtLocked(site, slot, t).url;
}

SimulatedWeb::FaultOutcome SimulatedWeb::EvalFaultLocked(
    uint32_t site, double t, double* latency_days) {
  SiteFaultState& f = site_faults_[site];
  if (!f.init) {
    f.init = true;
    f.draw = Rng(HashCombine(config_.seed ^ kFaultDrawSalt, site));
    f.outage = Rng(HashCombine(config_.seed ^ kFaultOutageSalt, site));
    if (config_.fault_site_death_prob > 0.0) {
      // Death is a pure per-site hash draw: whether and when the site
      // dies never depends on observation order.
      Rng death(HashCombine(config_.seed ^ kSiteDeathSalt, site));
      if (death.Bernoulli(config_.fault_site_death_prob)) {
        f.death_day = death.NextDouble() * 2.0 *
                      config_.fault_site_death_mean_day;
      }
    }
  }
  if (t >= f.death_day) return FaultOutcome::kTransient;
  if (config_.fault_outage_rate_per_day > 0.0) {
    // Materialize outage windows lazily up to t; per-site fetch times
    // are non-decreasing, so the renewal walk never rewinds.
    while (f.outage_end <= t) {
      f.outage_start =
          f.outage_end +
          f.outage.Exponential(config_.fault_outage_rate_per_day);
      f.outage_end = f.outage_start + config_.fault_outage_duration_days;
    }
    if (f.outage_start <= t) return FaultOutcome::kTransient;
  }
  double transient_p = config_.fault_transient_prob;
  if (config_.fault_flash_crowd_threshold > 0 &&
      config_.fault_flash_crowd_window_days > 0.0) {
    auto bucket = static_cast<int64_t>(
        std::floor(t / config_.fault_flash_crowd_window_days));
    if (bucket != f.flash_bucket) {
      f.flash_bucket = bucket;
      f.flash_count = 0;
    }
    ++f.flash_count;
    if (f.flash_count > config_.fault_flash_crowd_threshold) {
      transient_p = std::min(
          1.0, transient_p + config_.fault_flash_crowd_error_prob);
    }
  }
  const double u = f.draw.NextDouble();
  if (u < transient_p) return FaultOutcome::kTransient;
  if (u < transient_p + config_.fault_timeout_prob) {
    *latency_days = config_.fault_timeout_latency_days;
    return FaultOutcome::kTimeout;
  }
  if (u < transient_p + config_.fault_timeout_prob +
              config_.fault_slow_prob) {
    *latency_days = config_.fault_slow_latency_days;
    return FaultOutcome::kSlow;
  }
  return FaultOutcome::kNone;
}

StatusOr<FetchResult> SimulatedWeb::Fetch(const Url& url, double t,
                                          double* latency_days) {
  if (latency_days != nullptr) *latency_days = 0.0;
  bool virtual_slot = false;
  if (url.site >= sites_.size()) {
    fetch_count_.fetch_add(1, std::memory_order_relaxed);
    not_found_count_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no such site/slot: " + url.ToString());
  }
  if (url.slot >= sites_[url.site].slots.size()) {
    // Virtual slots (past a site's real size) exist only on spider
    // traps — which mint them without bound — and migration twins,
    // which use them to resurrect their source's pages.
    virtual_slot =
        url.incarnation == 0 &&
        (IsTrapSite(url.site) || TwinSourceOf(url.site) < num_sites());
    if (!virtual_slot) {
      fetch_count_.fetch_add(1, std::memory_order_relaxed);
      not_found_count_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound("no such site/slot: " + url.ToString());
    }
  }
  if (t + kTimeSlack < TimeFloor()) {
    return Status::InvalidArgument("fetch time moved backwards");
  }
  BumpNow(t);
  fetch_count_.fetch_add(1, std::memory_order_relaxed);
  site_fetches_[url.site].fetch_add(1, std::memory_order_relaxed);
  MarkSiteDirty(url.site);

  FetchResult result;
  // What body the checksum digests: usually the fetched page itself,
  // but mirror members and resurrected pages alias to their canonical
  // original, and trap URLs share one low-value body per site. Computed
  // outside the lock (pure).
  PageId checksum_page = 0;
  uint64_t checksum_version = 0;
  bool trap_body = false;
  // Cross-site link targets resolve after our own site's lock is
  // dropped: lock acquisition stays one-at-a-time (no nesting), so
  // shards can never deadlock on each other. Own-site targets — all
  // tree children and most cross links — resolve while the lock is
  // already held. `remote` records (index into links, target) pairs
  // so link order is preserved.
  std::vector<std::pair<std::size_t, std::pair<uint32_t, uint32_t>>> remote;
  {
    std::lock_guard<std::mutex> lock(site_mu_[url.site]);
    if (!site_faults_.empty()) {
      // Fault outcomes preempt the page entirely: a failed fetch counts
      // as traffic but never advances the page's change process, so a
      // crawler that retries later observes the same evolution it would
      // have seen without the failure.
      double latency = 0.0;
      FaultOutcome fault = EvalFaultLocked(url.site, t, &latency);
      if (fault == FaultOutcome::kTransient) {
        return Status::Unavailable("site unreachable: " + url.ToString());
      }
      if (fault == FaultOutcome::kTimeout) {
        if (latency_days != nullptr) *latency_days = latency;
        return Status::DeadlineExceeded("fetch timed out: " +
                                        url.ToString());
      }
      if (fault == FaultOutcome::kSlow && latency_days != nullptr) {
        *latency_days = latency;
      }
    }
    if (t >= MigrationDayOf(url.site)) {
      // The source site of a domain migration answers kUnavailable
      // forever after its migration day — like a site death, and pure
      // in (site, t). Its twin resurrects the content.
      return Status::Unavailable("site migrated away: " + url.ToString());
    }
    if (virtual_slot) {
      result.url = url;
      result.page = MakePageId(url.site, url.slot, 0);
      result.version = 0;
      result.fetched_at = t;
      const uint32_t source = TwinSourceOf(url.site);
      if (source < num_sites()) {
        // Twin-hosted resurrection of source slot j = slot - real size.
        const uint64_t j = url.slot - sites_[url.site].slots.size();
        if (j >= sites_[source].slots.size() ||
            t < MigrationDayOf(source)) {
          not_found_count_.fetch_add(1, std::memory_order_relaxed);
          return Status::NotFound("page gone: " + url.ToString());
        }
        result.last_modified = MigrationDayOf(source);
        checksum_page = MakePageId(source, static_cast<uint32_t>(j), 0);
        checksum_version = 0;
        EmitTwinLinksLocked(url.site, source, &result.links);
      } else {
        // A minted trap URL: fetches successfully, serves the site's
        // shared low-value body, and mints more.
        result.last_modified = 0.0;
        trap_body = true;
        MintTrapLinksLocked(url.site, &result.links);
      }
    } else {
      EnsureCoverageLocked(url.site, url.slot, t);
      SlotState& slot_state = sites_[url.site].slots[url.slot];
      if (url.incarnation >= slot_state.history.size()) {
        // Requested incarnation was never born by time t.
        not_found_count_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound("page gone: " + url.ToString());
      }
      PageRecord& page = slot_state.history[url.incarnation];
      if (page.death_time <= t || page.birth_time > t) {
        // The requested incarnation is dead (or unborn) — a real
        // crawler would see 404.
        not_found_count_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound("page gone: " + url.ToString());
      }
      AdvancePage(page, t);

      result.url = url;
      result.page = PageIdOf(url);
      result.version = page.version;
      result.fetched_at = t;
      result.last_modified = page.version > 0
                                 ? page.last_change_time
                                 : std::max(page.birth_time, 0.0);
      // Checksum aliasing: every mirror member serves its group
      // leader's bytes, and a migration source's pages keep one
      // fingerprint across incarnation churn (what the twin's
      // resurrections match). Both site classes are static, so the
      // alias never lies about a change.
      if (IsMirroredSite(url.site)) {
        checksum_page = MakePageId(MirrorLeaderOf(url.site), url.slot, 0);
      } else if (MigrationDayOf(url.site) < kInfinity) {
        checksum_page = MakePageId(url.site, url.slot, 0);
      } else {
        checksum_page = result.page;
        checksum_version = result.version;
      }

      // Navigation-tree children of this slot (own-site), then cross
      // links.
      const auto site_size = static_cast<uint64_t>(
          sites_[url.site].slots.size());
      uint64_t first_child =
          static_cast<uint64_t>(url.slot) *
              static_cast<uint64_t>(config_.tree_branching) +
          1;
      result.links.reserve(
          static_cast<std::size_t>(config_.tree_branching) +
          page.cross_links.size());
      for (int b = 0; b < config_.tree_branching; ++b) {
        uint64_t child = first_child + static_cast<uint64_t>(b);
        if (child >= site_size) break;
        auto child_slot = static_cast<uint32_t>(child);
        EnsureCoverageLocked(url.site, child_slot, t);
        result.links.push_back(
            OccupantAtLocked(url.site, child_slot, t).url);
      }
      // Resolving an own-site target can grow that slot's history, but
      // never this slot's (`page` is alive at t, so its slot already
      // covers t) — the `page` reference stays valid throughout.
      for (const auto& [target_site, target_slot] : page.cross_links) {
        if (target_site == url.site) {
          EnsureCoverageLocked(url.site, target_slot, t);
          result.links.push_back(
              OccupantAtLocked(url.site, target_slot, t).url);
        } else {
          remote.emplace_back(result.links.size(),
                              std::make_pair(target_site, target_slot));
          result.links.push_back(Url{});  // placeholder, filled below
        }
      }
      // A successful fetch on a trap site mints fresh URLs; a
      // successful post-migration fetch on a twin announces the next
      // resurrected source pages.
      if (IsTrapSite(url.site)) {
        MintTrapLinksLocked(url.site, &result.links);
      }
      const uint32_t source = TwinSourceOf(url.site);
      if (source < num_sites() && t >= MigrationDayOf(source)) {
        EmitTwinLinksLocked(url.site, source, &result.links);
      }
    }
  }

  for (const auto& [index, target] : remote) {
    result.links[index] = ResolveOccupantUrl(target.first, target.second, t);
  }
  // Body synthesis + checksum are pure; do them outside the lock.
  result.checksum = trap_body
                        ? ChecksumOf(TrapBody(url.site))
                        : ChecksumOf(PageBody(checksum_page,
                                              checksum_version));
  return result;
}

Url SimulatedWeb::RootUrl(uint32_t site) const {
  assert(site < sites_.size());
  return Url{site, 0, 0};
}

std::string SimulatedWeb::PageBody(PageId page, uint64_t version) const {
  // Deterministic pseudo-content: distinct per (page, version) so the
  // checksum changes exactly when the page changes.
  std::string body = "<html><head><title>page ";
  body += std::to_string(page);
  body += "</title></head><body>revision ";
  body += std::to_string(version);
  body += " token ";
  body += std::to_string(HashCombine(page, version));
  if (config_.page_body_bytes > 0) {
    // Deterministic filler stream so per-fetch work scales with the
    // configured body size.
    const std::size_t target = body.size() + config_.page_body_bytes;
    body.reserve(target + sizeof(uint64_t) + 14);
    uint64_t x = HashCombine(HashCombine(page, version), 0x626f6479ull);
    while (body.size() < target) {
      x = HashCombine(x, body.size());
      char chunk[sizeof(uint64_t)];
      std::memcpy(chunk, &x, sizeof(chunk));
      body.append(chunk, sizeof(chunk));
    }
    body.resize(target);
  }
  body += "</body></html>";
  return body;
}

StatusOr<PageId> SimulatedWeb::OracleLookup(const Url& url) const {
  if (url.site >= sites_.size() ||
      url.slot >= sites_[url.site].slots.size()) {
    return Status::NotFound("no such site/slot");
  }
  std::lock_guard<std::mutex> lock(site_mu_[url.site]);
  const auto& history = sites_[url.site].slots[url.slot].history;
  if (url.incarnation >= history.size()) {
    return Status::NotFound("incarnation never created");
  }
  return PageIdOf(url);
}

StatusOr<uint64_t> SimulatedWeb::OracleVersion(const Url& url, double t) {
  if (url.site >= sites_.size()) {
    return Status::NotFound("no such site/slot");
  }
  if (url.slot >= sites_[url.site].slots.size()) {
    // Virtual URLs: a twin's resurrected pages are truly alive at
    // version 0 from the migration day on; minted trap URLs are never
    // real content (a stored copy of one is permanently unfresh).
    const uint32_t source = TwinSourceOf(url.site);
    if (source < num_sites() && url.incarnation == 0) {
      const uint64_t j = url.slot - sites_[url.site].slots.size();
      if (j < sites_[source].slots.size() && t >= MigrationDayOf(source)) {
        BumpNow(t);
        return uint64_t{0};
      }
    }
    return Status::NotFound("no such site/slot");
  }
  if (t >= MigrationDayOf(url.site)) {
    // The page moved to the twin; the copy under this URL is gone.
    return Status::NotFound("page migrated away");
  }
  MarkSiteDirty(url.site);  // AdvancePage below moves the change process
  BumpNow(t);
  std::lock_guard<std::mutex> lock(site_mu_[url.site]);
  auto& history = sites_[url.site].slots[url.slot].history;
  if (url.incarnation >= history.size()) {
    return Status::NotFound("incarnation never created");
  }
  PageRecord& page = history[url.incarnation];
  if (page.death_time <= t || page.birth_time > t) {
    return Status::NotFound("page not alive");
  }
  AdvancePage(page, t);
  return page.version;
}

bool SimulatedWeb::OracleAlive(const Url& url, double t) const {
  if (url.site >= sites_.size()) return false;
  if (url.slot >= sites_[url.site].slots.size()) {
    const uint32_t source = TwinSourceOf(url.site);
    if (source < num_sites() && url.incarnation == 0) {
      const uint64_t j = url.slot - sites_[url.site].slots.size();
      return j < sites_[source].slots.size() &&
             t >= MigrationDayOf(source);
    }
    return false;
  }
  if (t >= MigrationDayOf(url.site)) return false;
  std::lock_guard<std::mutex> lock(site_mu_[url.site]);
  const auto& history = sites_[url.site].slots[url.slot].history;
  if (url.incarnation >= history.size()) return false;
  const PageRecord& page = history[url.incarnation];
  return page.birth_time <= t && t < page.death_time;
}

bool SimulatedWeb::OracleIsFresh(const Url& url, uint64_t stored_version,
                                 double t) {
  auto version = OracleVersion(url, t);
  return version.ok() && *version == stored_version;
}

Url SimulatedWeb::OracleCurrentUrl(uint32_t site, uint32_t slot, double t) {
  assert(site < sites_.size() && slot < sites_[site].slots.size());
  BumpNow(t);
  return ResolveOccupantUrl(site, slot, t);
}

StatusOr<double> SimulatedWeb::OracleLastChangeTime(const Url& url,
                                                    double t) {
  if (url.site >= sites_.size() ||
      url.slot >= sites_[url.site].slots.size()) {
    // Twin-virtual pages never change after their resurrection.
    const uint32_t source =
        url.site < sites_.size() ? TwinSourceOf(url.site) : num_sites();
    if (source < num_sites() && url.incarnation == 0 &&
        url.slot >= sites_[url.site].slots.size()) {
      const uint64_t j = url.slot - sites_[url.site].slots.size();
      if (j < sites_[source].slots.size() && t >= MigrationDayOf(source)) {
        return MigrationDayOf(source);
      }
    }
    return Status::NotFound("no such site/slot");
  }
  if (t >= MigrationDayOf(url.site)) {
    return Status::NotFound("page migrated away");
  }
  MarkSiteDirty(url.site);
  BumpNow(t);
  std::lock_guard<std::mutex> lock(site_mu_[url.site]);
  auto& history = sites_[url.site].slots[url.slot].history;
  if (url.incarnation >= history.size()) {
    return Status::NotFound("incarnation never created");
  }
  PageRecord& page = history[url.incarnation];
  if (page.death_time <= t || page.birth_time > t) {
    return Status::NotFound("page not alive");
  }
  AdvancePage(page, t);
  return page.last_change_time;
}

double SimulatedWeb::OracleChangeRate(PageId page) const {
  std::lock_guard<std::mutex> lock(site_mu_[PageIdSite(page)]);
  return RecordOf(page).change_rate;
}

double SimulatedWeb::OracleBirthTime(PageId page) const {
  std::lock_guard<std::mutex> lock(site_mu_[PageIdSite(page)]);
  return RecordOf(page).birth_time;
}

double SimulatedWeb::OracleDeathTime(PageId page) const {
  std::lock_guard<std::mutex> lock(site_mu_[PageIdSite(page)]);
  return RecordOf(page).death_time;
}

Domain SimulatedWeb::OraclePageDomain(PageId page) const {
  assert(PageIdSite(page) < sites_.size());
  return sites_[PageIdSite(page)].domain;
}

Url SimulatedWeb::OraclePageUrl(PageId page) const {
  // Identity is the id itself; no lookup needed.
  return Url{PageIdSite(page), PageIdSlot(page), PageIdIncarnation(page)};
}

std::vector<SimulatedWeb::SiteLink> SimulatedWeb::OracleSiteLinks(double t) {
  BumpNow(t);
  // Dense accumulation per source site keeps this O(slots + edges).
  std::vector<SiteLink> out;
  std::vector<uint64_t> row(sites_.size(), 0);
  for (uint32_t s = 0; s < sites_.size(); ++s) {
    MarkSiteDirty(s);  // the coverage walk below may extend every site
    std::vector<uint32_t> touched;
    std::lock_guard<std::mutex> lock(site_mu_[s]);
    for (uint32_t j = 0; j < sites_[s].slots.size(); ++j) {
      EnsureCoverageLocked(s, j, t);
      const PageRecord& page = OccupantAtLocked(s, j, t);
      for (const auto& [ts, tslot] : page.cross_links) {
        (void)tslot;
        if (ts == s) continue;
        if (row[ts] == 0) touched.push_back(ts);
        ++row[ts];
      }
    }
    for (uint32_t ts : touched) {
      out.push_back(SiteLink{s, ts, row[ts]});
      row[ts] = 0;
    }
  }
  return out;
}

}  // namespace webevo::simweb
