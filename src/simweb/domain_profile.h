#ifndef WEBEVO_SIMWEB_DOMAIN_PROFILE_H_
#define WEBEVO_SIMWEB_DOMAIN_PROFILE_H_

#include <array>
#include <vector>

#include "simweb/domain.h"
#include "util/random.h"

namespace webevo::simweb {

/// A mixture component: values are drawn log-uniformly from
/// [min_value, max_value] with probability proportional to `weight`.
/// Log-uniform sampling spreads pages across each of the paper's
/// order-of-magnitude interval buckets instead of piling them at an edge.
struct MixtureBucket {
  double min_value = 0.0;
  double max_value = 0.0;
  double weight = 0.0;
};

/// Generative behaviour of pages in one domain: mixtures over mean change
/// intervals and lifespans, calibrated so that re-running the paper's
/// measurement procedure on the synthetic web reproduces Figures 2, 4 and
/// 5 (see DESIGN.md section 5 for the targets).
class DomainProfile {
 public:
  DomainProfile(std::vector<MixtureBucket> change_interval_days,
                std::vector<MixtureBucket> lifespan_days);

  /// Profile calibrated to the paper's published per-domain statistics:
  ///
  ///   - change intervals (Fig 2b): com >40% daily-changers; edu and gov
  ///     >50% unchanged over the 4-month study; netorg in between;
  ///   - lifespans (Fig 4b): com shortest-lived, edu/gov >50% visible
  ///     beyond 4 months;
  ///   - the mixes jointly put the all-domain mean change interval near
  ///     the paper's ~4-month estimate (Section 3.1).
  static const DomainProfile& Calibrated(Domain d);

  /// Draws a mean change interval (days) for a new page. Large values
  /// (beyond any experiment horizon) model pages that effectively never
  /// change.
  double SampleChangeInterval(Rng& rng) const;

  /// Draws a total lifespan (days) for a new page.
  double SampleLifespan(Rng& rng) const;

  /// Draws (change interval, lifespan) for a new page with rank
  /// correlation: with probability `coupling` the two values share one
  /// quantile, so fast-changing pages tend to be short-lived.
  ///
  /// This coupling is what reconciles the paper's Figure 2 with its
  /// Figure 5: the population of *all pages seen over four months* is
  /// full of short-lived rapid changers (com >40% "changed every
  /// visit"), while the *day-0 snapshot* Figure 5 follows is length-
  /// biased toward stable pages and therefore decays much more slowly
  /// (50% of the web takes ~50 days, not ~2).
  struct PageDraw {
    double change_interval_days = 0.0;
    double lifespan_days = 0.0;
  };
  PageDraw SamplePage(Rng& rng, double coupling) const;

  /// Inverse CDF of a mixture at quantile u in [0, 1).
  static double MixtureQuantile(const std::vector<MixtureBucket>& mix,
                                double u);

  const std::vector<MixtureBucket>& change_interval_mixture() const {
    return change_interval_;
  }
  const std::vector<MixtureBucket>& lifespan_mixture() const {
    return lifespan_;
  }

  /// Expected fraction of pages whose drawn change interval lies in
  /// (lo, hi]; used by calibration tests.
  double IntervalMassBetween(double lo, double hi) const;

 private:
  static double SampleMixture(const std::vector<MixtureBucket>& mix,
                              Rng& rng);

  std::vector<MixtureBucket> change_interval_;
  std::vector<MixtureBucket> lifespan_;
};

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_DOMAIN_PROFILE_H_
