// Snapshot/restore of the SimulatedWeb's lazily materialised evolution
// state, declared in simweb/simulated_web.h.
//
// Format (trailer-framed text, see util/text_snapshot.h):
//   webevo-web 3 <num_sites> <nrecords> <nfetchsites> <now>
//              <fetch_count> <not_found_count> <nfaults> <nadv>
//   A <site> <site_fetch_count>          (nfetchsites records, nonzero
//                                         counters only, ascending)
//   X <site> <d0..d3> <o0..o3> <outage_start> <outage_end> <death|inf>
//     <flash_bucket> <flash_count>       (nfaults records, initialized
//                                         per-site fault lanes only,
//                                         ascending site)
//   Y <site> <trap_minted> <twin_emitted>
//                                        (nadv records, sites with
//                                         nonzero adversarial counters
//                                         only, ascending)
//   I <site> <slot> <incarnation> <version> <change_rate> <birth>
//     <death|inf> <state_time> <last_change> <r0> <r1> <r2> <r3>
//     <nlinks> [<target_site> <target_slot>]*
//                                        (nrecords records, canonical
//                                         (site, slot, incarnation)
//                                         order)
//   webevo-checksum <fnv64>
//
// Version 2 added the per-site fault-injection lanes (`X` records and
// the <nfaults> header field); version 3 added the per-site adversarial
// counters (`Y` records and <nadv>). Version 1/2 snapshots are still
// accepted and restore with no fault/adversarial state. Every field of
// every PageRecord
// round-trips exactly (doubles at precision 17, RNG lanes raw), so a
// restored web serves bit-identical fetches — including the lazy
// Poisson increments that depend on the *observation history*, not
// just on absolute time.

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "simweb/simulated_web.h"
#include "util/text_snapshot.h"

namespace webevo::simweb {
namespace {

constexpr const char* kWebMagic = "webevo-web";
constexpr int kWebFormatVersion = 3;
// Site-delta stream: the full state of only the dirty sites, plus the
// absolute global counters (see SaveWebDelta). Version 2 added the
// <nadv> header field and Y records.
constexpr const char* kWebDeltaMagic = "webevo-webdelta";
constexpr int kWebDeltaFormatVersion = 2;
// Range guard for per-record link counts parsed before the trailer has
// been verified.
constexpr std::size_t kMaxLinksPerPage = 1 << 16;

// Infinity never parses back through operator>>, so the death time of
// an immortal root is written as a token.
std::string DeathToken(double death) {
  if (std::isinf(death)) return "inf";
  std::ostringstream os;
  os.precision(17);
  os << death;
  return os.str();
}

StatusOr<double> ParseDeath(std::istream& is) {
  std::string token;
  is >> token;
  if (is.fail()) {
    return Status::InvalidArgument("malformed web record (death)");
  }
  if (token == "inf") return std::numeric_limits<double>::infinity();
  std::istringstream ts(token);
  double value = 0.0;
  ts >> value;
  if (ts.fail()) {
    return Status::InvalidArgument("malformed web record (death)");
  }
  return value;
}

}  // namespace

Status SaveWeb(const SimulatedWeb& web, std::ostream& out) {
  // The writer walks (site, slot, incarnation) ascending — the
  // canonical order — and must see a quiescent web (no concurrent
  // batch in flight).
  if (web.concurrent_batch_) {
    return Status::FailedPrecondition(
        "cannot snapshot a web inside a concurrent batch");
  }
  uint64_t nrecords = 0;
  for (const auto& site : web.sites_) {
    for (const auto& slot : site.slots) nrecords += slot.history.size();
  }
  std::vector<std::pair<uint32_t, uint64_t>> fetch_sites;
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    uint64_t count = web.site_fetches_[s].load(std::memory_order_relaxed);
    if (count > 0) fetch_sites.emplace_back(s, count);
  }
  std::vector<uint32_t> fault_sites;
  for (uint32_t s = 0; s < web.site_faults_.size(); ++s) {
    if (web.site_faults_[s].init) fault_sites.push_back(s);
  }
  std::vector<uint32_t> adv_sites;
  for (uint32_t s = 0; s < web.site_adv_.size(); ++s) {
    if (web.site_adv_[s].trap_minted > 0 ||
        web.site_adv_[s].twin_emitted > 0) {
      adv_sites.push_back(s);
    }
  }

  TrailerWriter writer(out);
  {
    std::ostringstream header;
    header.precision(17);
    header << kWebMagic << ' ' << kWebFormatVersion << ' '
           << web.num_sites() << ' ' << nrecords << ' '
           << fetch_sites.size() << ' ' << web.now() << ' '
           << web.fetch_count() << ' ' << web.not_found_count() << ' '
           << fault_sites.size() << ' ' << adv_sites.size();
    writer.Line(header.str());
  }
  for (const auto& [site, count] : fetch_sites) {
    std::ostringstream os;
    os << "A " << site << ' ' << count;
    writer.Line(os.str());
  }
  for (uint32_t s : fault_sites) {
    const SimulatedWeb::SiteFaultState& f = web.site_faults_[s];
    std::ostringstream os;
    os.precision(17);
    os << "X " << s;
    for (uint64_t lane : f.draw.State()) os << ' ' << lane;
    for (uint64_t lane : f.outage.State()) os << ' ' << lane;
    os << ' ' << f.outage_start << ' ' << f.outage_end << ' '
       << DeathToken(f.death_day) << ' ' << f.flash_bucket << ' '
       << f.flash_count;
    writer.Line(os.str());
  }
  for (uint32_t s : adv_sites) {
    const SimulatedWeb::SiteAdvState& a = web.site_adv_[s];
    std::ostringstream os;
    os << "Y " << s << ' ' << a.trap_minted << ' ' << a.twin_emitted;
    writer.Line(os.str());
  }
  for (uint32_t s = 0; s < web.num_sites(); ++s) {
    const SimulatedWeb::SiteState& site = web.sites_[s];
    for (uint32_t j = 0; j < site.slots.size(); ++j) {
      const auto& history = site.slots[j].history;
      for (uint32_t inc = 0; inc < history.size(); ++inc) {
        const SimulatedWeb::PageRecord& page = history[inc];
        std::ostringstream os;
        os.precision(17);
        os << "I " << s << ' ' << j << ' ' << inc << ' ' << page.version
           << ' ' << page.change_rate << ' ' << page.birth_time << ' '
           << DeathToken(page.death_time) << ' ' << page.state_time
           << ' ' << page.last_change_time;
        for (uint64_t lane : page.rng.State()) os << ' ' << lane;
        os << ' ' << page.cross_links.size();
        for (const auto& [ts, tslot] : page.cross_links) {
          os << ' ' << ts << ' ' << tslot;
        }
        writer.Line(os.str());
      }
    }
  }
  writer.Finish();
  if (!out.good()) return Status::Internal("web snapshot write failed");
  return Status::Ok();
}

Status RestoreWeb(std::istream& in, SimulatedWeb* web) {
  if (web->concurrent_batch_) {
    return Status::FailedPrecondition(
        "cannot restore a web inside a concurrent batch");
  }
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  uint32_t num_sites = 0;
  uint64_t nrecords = 0, fetch_count = 0, not_found = 0;
  std::size_t nfetchsites = 0, nfaults = 0, nadv = 0;
  double now = 0.0;
  hs >> magic >> version >> num_sites >> nrecords >> nfetchsites >>
      now >> fetch_count >> not_found;
  if (hs.fail() || magic != kWebMagic) {
    return Status::InvalidArgument("not a web snapshot");
  }
  // Version 1 predates fault injection (no <nfaults> / X records),
  // version 2 predates the adversarial lane (no <nadv> / Y records);
  // both restore with those lanes empty.
  if (version < 1 || version > kWebFormatVersion) {
    return Status::InvalidArgument("unsupported web snapshot version");
  }
  if (version >= 2) {
    hs >> nfaults;
    if (hs.fail()) {
      return Status::InvalidArgument("malformed web header");
    }
  }
  if (version >= 3) {
    hs >> nadv;
    if (hs.fail()) {
      return Status::InvalidArgument("malformed web header");
    }
  }
  Status line_end = ExpectLineEnd(hs, "web header");
  if (!line_end.ok()) return line_end;
  if (num_sites != web->num_sites()) {
    return Status::InvalidArgument(
        "web snapshot site count does not match this web's "
        "configuration");
  }

  // Stage everything, swap in only after the trailer verifies. Counts
  // are parsed before the trailer covers them, so they bound loops but
  // never size an allocation directly.
  std::vector<std::pair<uint32_t, uint64_t>> fetch_sites;
  fetch_sites.reserve(std::min<std::size_t>(nfetchsites, 1 << 20));
  for (std::size_t i = 0; i < nfetchsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web snapshot fetch-site count "
                                     "mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    uint64_t count = 0;
    is >> tag >> site >> count;
    if (is.fail() || tag != "A" || site >= num_sites) {
      return Status::InvalidArgument("malformed web fetch record");
    }
    Status end = ExpectLineEnd(is, "web fetch");
    if (!end.ok()) return end;
    fetch_sites.emplace_back(site, count);
  }

  std::vector<std::pair<uint32_t, SimulatedWeb::SiteFaultState>>
      staged_faults;
  staged_faults.reserve(std::min<std::size_t>(nfaults, 1 << 20));
  for (std::size_t i = 0; i < nfaults; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web snapshot fault count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    SimulatedWeb::SiteFaultState f;
    f.init = true;
    std::array<uint64_t, 4> draw{}, outage{};
    is >> tag >> site >> draw[0] >> draw[1] >> draw[2] >> draw[3] >>
        outage[0] >> outage[1] >> outage[2] >> outage[3] >>
        f.outage_start >> f.outage_end;
    if (is.fail() || tag != "X" || site >= num_sites) {
      return Status::InvalidArgument("malformed web fault record");
    }
    auto death = ParseDeath(is);
    if (!death.ok()) return death.status();
    f.death_day = *death;
    is >> f.flash_bucket >> f.flash_count;
    if (is.fail()) {
      return Status::InvalidArgument("malformed web fault record");
    }
    Status end = ExpectLineEnd(is, "web fault");
    if (!end.ok()) return end;
    f.draw.SetState(draw);
    f.outage.SetState(outage);
    if (web->site_faults_.empty()) {
      return Status::InvalidArgument(
          "web snapshot carries fault state but this web's "
          "configuration has fault injection disabled");
    }
    staged_faults.emplace_back(site, f);
  }

  std::vector<std::pair<uint32_t, SimulatedWeb::SiteAdvState>> staged_adv;
  staged_adv.reserve(std::min<std::size_t>(nadv, 1 << 20));
  for (std::size_t i = 0; i < nadv; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument(
          "web snapshot adversarial count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    SimulatedWeb::SiteAdvState a;
    is >> tag >> site >> a.trap_minted >> a.twin_emitted;
    if (is.fail() || tag != "Y" || site >= num_sites) {
      return Status::InvalidArgument(
          "malformed web adversarial record");
    }
    Status end = ExpectLineEnd(is, "web adversarial");
    if (!end.ok()) return end;
    if (web->site_adv_.empty()) {
      return Status::InvalidArgument(
          "web snapshot carries adversarial state but this web's "
          "configuration has the adversarial lane disabled");
    }
    staged_adv.emplace_back(site, a);
  }

  struct StagedPage {
    Url url;
    SimulatedWeb::PageRecord record;
  };
  std::vector<StagedPage> staged;
  staged.reserve(static_cast<std::size_t>(
      std::min<uint64_t>(nrecords, 1 << 20)));
  for (uint64_t i = 0; i < nrecords; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web snapshot record count "
                                     "mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    StagedPage page;
    is >> tag >> page.url.site >> page.url.slot >> page.url.incarnation >>
        page.record.version >> page.record.change_rate >>
        page.record.birth_time;
    if (is.fail() || tag != "I") {
      return Status::InvalidArgument("malformed web page record");
    }
    auto death = ParseDeath(is);
    if (!death.ok()) return death.status();
    page.record.death_time = *death;
    std::array<uint64_t, 4> lanes{};
    std::size_t nlinks = 0;
    is >> page.record.state_time >> page.record.last_change_time >>
        lanes[0] >> lanes[1] >> lanes[2] >> lanes[3] >> nlinks;
    if (is.fail() || nlinks > kMaxLinksPerPage) {
      return Status::InvalidArgument("malformed web page record");
    }
    page.record.rng.SetState(lanes);
    page.record.cross_links.reserve(nlinks);
    for (std::size_t k = 0; k < nlinks; ++k) {
      uint32_t ts = 0, tslot = 0;
      is >> ts >> tslot;
      if (is.fail()) {
        return Status::InvalidArgument("malformed web link list");
      }
      page.record.cross_links.emplace_back(ts, tslot);
    }
    Status end = ExpectLineEnd(is, "web page");
    if (!end.ok()) return end;
    if (page.url.site >= num_sites ||
        page.url.slot >= web->sites_[page.url.site].slots.size()) {
      return Status::InvalidArgument(
          "web snapshot slot layout does not match this web's "
          "configuration");
    }
    page.record.url = page.url;
    staged.push_back(std::move(page));
  }
  Status stream_end = FinishFramedStream(reader, in, "web snapshot");
  if (!stream_end.ok()) return stream_end;

  // Records arrive in canonical order: each slot's incarnations must be
  // contiguous and start at 0, and every slot needs at least its
  // incarnation-0 page (slots are never empty after construction).
  // Everything is staged and validated before the web is touched, so a
  // bad snapshot never leaves it half-restored.
  std::vector<std::vector<std::vector<SimulatedWeb::PageRecord>>>
      histories(num_sites);
  uint64_t index = 0;
  for (uint32_t s = 0; s < num_sites; ++s) {
    const auto& slots = web->sites_[s].slots;
    histories[s].resize(slots.size());
    for (uint32_t j = 0; j < slots.size(); ++j) {
      std::vector<SimulatedWeb::PageRecord>& history = histories[s][j];
      while (index < staged.size() && staged[index].url.site == s &&
             staged[index].url.slot == j) {
        if (staged[index].url.incarnation != history.size()) {
          return Status::InvalidArgument(
              "web snapshot incarnations out of order");
        }
        history.push_back(std::move(staged[index].record));
        ++index;
      }
      if (history.empty()) {
        return Status::InvalidArgument(
            "web snapshot missing a slot's page history");
      }
    }
  }
  if (index != staged.size()) {
    return Status::InvalidArgument("web snapshot records out of order");
  }
  for (uint32_t s = 0; s < num_sites; ++s) {
    auto& slots = web->sites_[s].slots;
    for (uint32_t j = 0; j < slots.size(); ++j) {
      slots[j].history = std::move(histories[s][j]);
    }
  }

  web->now_.store(now, std::memory_order_relaxed);
  web->fetch_count_.store(fetch_count, std::memory_order_relaxed);
  web->not_found_count_.store(not_found, std::memory_order_relaxed);
  web->pages_created_.store(nrecords, std::memory_order_relaxed);
  for (uint32_t s = 0; s < num_sites; ++s) {
    web->site_fetches_[s].store(0, std::memory_order_relaxed);
  }
  for (const auto& [site, count] : fetch_sites) {
    web->site_fetches_[site].store(count, std::memory_order_relaxed);
  }
  for (auto& f : web->site_faults_) f = SimulatedWeb::SiteFaultState{};
  for (auto& [site, f] : staged_faults) web->site_faults_[site] = f;
  for (auto& a : web->site_adv_) a = SimulatedWeb::SiteAdvState{};
  for (auto& [site, a] : staged_adv) web->site_adv_[site] = a;
  return Status::Ok();
}

// Delta format (trailer-framed like the full snapshot):
//   webevo-webdelta 2 <num_sites> <ndirty> <nrecords> <nfetchsites>
//                   <nfaults> <now> <fetch_count> <not_found_count>
//                   <pages_created> <nadv>
//   D <site>                           (ndirty, ascending: the sites
//                                       whose full state follows)
//   A <site> <site_fetch_count>        (dirty sites, nonzero only)
//   X <site> ...                       (dirty sites, initialized only;
//                                       same fields as the full format)
//   Y <site> <trap_minted> <twin_emitted>
//                                      (dirty sites, nonzero only)
//   I <site> <slot> <incarnation> ...  (all records of the dirty
//                                       sites, canonical order)
//   webevo-checksum <fnv64>
// Globals are absolute, never increments, so applying a segment is
// idempotent and segments need no exact pairing with reads.
Status SaveWebDelta(const SimulatedWeb& web, std::ostream& out) {
  if (web.concurrent_batch_) {
    return Status::FailedPrecondition(
        "cannot snapshot a web inside a concurrent batch");
  }
  if (web.site_dirty_ == nullptr) {
    return Status::FailedPrecondition(
        "web delta requires EnableDirtyTracking");
  }
  std::set<uint32_t> dirty;
  web.AppendDirtySites(&dirty);
  uint64_t nrecords = 0;
  std::vector<std::pair<uint32_t, uint64_t>> fetch_sites;
  std::vector<uint32_t> fault_sites;
  std::vector<uint32_t> adv_sites;
  for (uint32_t s : dirty) {
    for (const auto& slot : web.sites_[s].slots) {
      nrecords += slot.history.size();
    }
    uint64_t count = web.site_fetches_[s].load(std::memory_order_relaxed);
    if (count > 0) fetch_sites.emplace_back(s, count);
    if (s < web.site_faults_.size() && web.site_faults_[s].init) {
      fault_sites.push_back(s);
    }
    if (s < web.site_adv_.size() && (web.site_adv_[s].trap_minted > 0 ||
                                     web.site_adv_[s].twin_emitted > 0)) {
      adv_sites.push_back(s);
    }
  }

  TrailerWriter writer(out);
  {
    std::ostringstream header;
    header.precision(17);
    header << kWebDeltaMagic << ' ' << kWebDeltaFormatVersion << ' '
           << web.num_sites() << ' ' << dirty.size() << ' ' << nrecords
           << ' ' << fetch_sites.size() << ' ' << fault_sites.size()
           << ' ' << web.now() << ' ' << web.fetch_count() << ' '
           << web.not_found_count() << ' '
           << web.OracleTotalPagesCreated() << ' ' << adv_sites.size();
    writer.Line(header.str());
  }
  for (uint32_t s : dirty) {
    std::ostringstream os;
    os << "D " << s;
    writer.Line(os.str());
  }
  for (const auto& [site, count] : fetch_sites) {
    std::ostringstream os;
    os << "A " << site << ' ' << count;
    writer.Line(os.str());
  }
  for (uint32_t s : fault_sites) {
    const SimulatedWeb::SiteFaultState& f = web.site_faults_[s];
    std::ostringstream os;
    os.precision(17);
    os << "X " << s;
    for (uint64_t lane : f.draw.State()) os << ' ' << lane;
    for (uint64_t lane : f.outage.State()) os << ' ' << lane;
    os << ' ' << f.outage_start << ' ' << f.outage_end << ' '
       << DeathToken(f.death_day) << ' ' << f.flash_bucket << ' '
       << f.flash_count;
    writer.Line(os.str());
  }
  for (uint32_t s : adv_sites) {
    const SimulatedWeb::SiteAdvState& a = web.site_adv_[s];
    std::ostringstream os;
    os << "Y " << s << ' ' << a.trap_minted << ' ' << a.twin_emitted;
    writer.Line(os.str());
  }
  for (uint32_t s : dirty) {
    const SimulatedWeb::SiteState& site = web.sites_[s];
    for (uint32_t j = 0; j < site.slots.size(); ++j) {
      const auto& history = site.slots[j].history;
      for (uint32_t inc = 0; inc < history.size(); ++inc) {
        const SimulatedWeb::PageRecord& page = history[inc];
        std::ostringstream os;
        os.precision(17);
        os << "I " << s << ' ' << j << ' ' << inc << ' ' << page.version
           << ' ' << page.change_rate << ' ' << page.birth_time << ' '
           << DeathToken(page.death_time) << ' ' << page.state_time
           << ' ' << page.last_change_time;
        for (uint64_t lane : page.rng.State()) os << ' ' << lane;
        os << ' ' << page.cross_links.size();
        for (const auto& [ts, tslot] : page.cross_links) {
          os << ' ' << ts << ' ' << tslot;
        }
        writer.Line(os.str());
      }
    }
  }
  writer.Finish();
  if (!out.good()) return Status::Internal("web delta write failed");
  return Status::Ok();
}

Status ApplyWebDelta(std::istream& in, SimulatedWeb* web) {
  if (web->concurrent_batch_) {
    return Status::FailedPrecondition(
        "cannot restore a web inside a concurrent batch");
  }
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  uint32_t num_sites = 0;
  uint64_t ndirty = 0, nrecords = 0;
  std::size_t nfetchsites = 0, nfaults = 0, nadv = 0;
  uint64_t fetch_count = 0, not_found = 0, pages_created = 0;
  double now = 0.0;
  hs >> magic >> version >> num_sites >> ndirty >> nrecords >>
      nfetchsites >> nfaults >> now >> fetch_count >> not_found >>
      pages_created;
  if (hs.fail() || magic != kWebDeltaMagic) {
    return Status::InvalidArgument("not a web delta");
  }
  // Version 1 predates the adversarial lane: no <nadv> / Y records.
  if (version < 1 || version > kWebDeltaFormatVersion) {
    return Status::InvalidArgument("unsupported web delta version");
  }
  if (version >= 2) {
    hs >> nadv;
    if (hs.fail()) {
      return Status::InvalidArgument("malformed web delta header");
    }
  }
  Status line_end = ExpectLineEnd(hs, "web delta header");
  if (!line_end.ok()) return line_end;
  if (num_sites != web->num_sites()) {
    return Status::InvalidArgument(
        "web delta site count does not match this web's configuration");
  }

  std::vector<uint32_t> dirty;
  dirty.reserve(std::min<std::size_t>(ndirty, 1 << 20));
  for (uint64_t i = 0; i < ndirty; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web delta dirty count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    is >> tag >> site;
    if (is.fail() || tag != "D" || site >= num_sites ||
        (!dirty.empty() && site <= dirty.back())) {
      return Status::InvalidArgument("malformed web delta site record");
    }
    Status end = ExpectLineEnd(is, "web delta site");
    if (!end.ok()) return end;
    dirty.push_back(site);
  }
  std::set<uint32_t> dirty_set(dirty.begin(), dirty.end());

  std::vector<std::pair<uint32_t, uint64_t>> fetch_sites;
  fetch_sites.reserve(std::min<std::size_t>(nfetchsites, 1 << 20));
  for (std::size_t i = 0; i < nfetchsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web delta fetch count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    uint64_t count = 0;
    is >> tag >> site >> count;
    if (is.fail() || tag != "A" || dirty_set.count(site) == 0) {
      return Status::InvalidArgument("malformed web delta fetch record");
    }
    Status end = ExpectLineEnd(is, "web delta fetch");
    if (!end.ok()) return end;
    fetch_sites.emplace_back(site, count);
  }

  std::vector<std::pair<uint32_t, SimulatedWeb::SiteFaultState>>
      staged_faults;
  staged_faults.reserve(std::min<std::size_t>(nfaults, 1 << 20));
  for (std::size_t i = 0; i < nfaults; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web delta fault count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    SimulatedWeb::SiteFaultState f;
    f.init = true;
    std::array<uint64_t, 4> draw{}, outage{};
    is >> tag >> site >> draw[0] >> draw[1] >> draw[2] >> draw[3] >>
        outage[0] >> outage[1] >> outage[2] >> outage[3] >>
        f.outage_start >> f.outage_end;
    if (is.fail() || tag != "X" || dirty_set.count(site) == 0) {
      return Status::InvalidArgument("malformed web delta fault record");
    }
    auto death = ParseDeath(is);
    if (!death.ok()) return death.status();
    f.death_day = *death;
    is >> f.flash_bucket >> f.flash_count;
    if (is.fail()) {
      return Status::InvalidArgument("malformed web delta fault record");
    }
    Status end = ExpectLineEnd(is, "web delta fault");
    if (!end.ok()) return end;
    f.draw.SetState(draw);
    f.outage.SetState(outage);
    if (web->site_faults_.empty()) {
      return Status::InvalidArgument(
          "web delta carries fault state but this web's configuration "
          "has fault injection disabled");
    }
    staged_faults.emplace_back(site, f);
  }

  std::vector<std::pair<uint32_t, SimulatedWeb::SiteAdvState>> staged_adv;
  staged_adv.reserve(std::min<std::size_t>(nadv, 1 << 20));
  for (std::size_t i = 0; i < nadv; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument(
          "web delta adversarial count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    SimulatedWeb::SiteAdvState a;
    is >> tag >> site >> a.trap_minted >> a.twin_emitted;
    if (is.fail() || tag != "Y" || dirty_set.count(site) == 0) {
      return Status::InvalidArgument(
          "malformed web delta adversarial record");
    }
    Status end = ExpectLineEnd(is, "web delta adversarial");
    if (!end.ok()) return end;
    if (web->site_adv_.empty()) {
      return Status::InvalidArgument(
          "web delta carries adversarial state but this web's "
          "configuration has the adversarial lane disabled");
    }
    staged_adv.emplace_back(site, a);
  }

  struct StagedPage {
    Url url;
    SimulatedWeb::PageRecord record;
  };
  std::vector<StagedPage> staged;
  staged.reserve(static_cast<std::size_t>(
      std::min<uint64_t>(nrecords, 1 << 20)));
  for (uint64_t i = 0; i < nrecords; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("web delta record count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    StagedPage page;
    is >> tag >> page.url.site >> page.url.slot >>
        page.url.incarnation >> page.record.version >>
        page.record.change_rate >> page.record.birth_time;
    if (is.fail() || tag != "I") {
      return Status::InvalidArgument("malformed web delta page record");
    }
    auto death = ParseDeath(is);
    if (!death.ok()) return death.status();
    page.record.death_time = *death;
    std::array<uint64_t, 4> lanes{};
    std::size_t nlinks = 0;
    is >> page.record.state_time >> page.record.last_change_time >>
        lanes[0] >> lanes[1] >> lanes[2] >> lanes[3] >> nlinks;
    if (is.fail() || nlinks > kMaxLinksPerPage) {
      return Status::InvalidArgument("malformed web delta page record");
    }
    page.record.rng.SetState(lanes);
    page.record.cross_links.reserve(nlinks);
    for (std::size_t k = 0; k < nlinks; ++k) {
      uint32_t ts = 0, tslot = 0;
      is >> ts >> tslot;
      if (is.fail()) {
        return Status::InvalidArgument("malformed web delta link list");
      }
      page.record.cross_links.emplace_back(ts, tslot);
    }
    Status end = ExpectLineEnd(is, "web delta page");
    if (!end.ok()) return end;
    if (dirty_set.count(page.url.site) == 0 ||
        page.url.slot >= web->sites_[page.url.site].slots.size()) {
      return Status::InvalidArgument(
          "web delta slot layout does not match this web's "
          "configuration");
    }
    page.record.url = page.url;
    staged.push_back(std::move(page));
  }
  Status stream_end = FinishFramedStream(reader, in, "web delta");
  if (!stream_end.ok()) return stream_end;

  // Same canonical-contiguity validation as the full restore, over the
  // dirty sites only; everything staged before the web is touched.
  std::vector<std::vector<std::vector<SimulatedWeb::PageRecord>>>
      histories(dirty.size());
  uint64_t index = 0;
  for (std::size_t d = 0; d < dirty.size(); ++d) {
    const uint32_t s = dirty[d];
    const auto& slots = web->sites_[s].slots;
    histories[d].resize(slots.size());
    for (uint32_t j = 0; j < slots.size(); ++j) {
      std::vector<SimulatedWeb::PageRecord>& history = histories[d][j];
      while (index < staged.size() && staged[index].url.site == s &&
             staged[index].url.slot == j) {
        if (staged[index].url.incarnation != history.size()) {
          return Status::InvalidArgument(
              "web delta incarnations out of order");
        }
        history.push_back(std::move(staged[index].record));
        ++index;
      }
      if (history.empty()) {
        return Status::InvalidArgument(
            "web delta missing a dirty slot's page history");
      }
    }
  }
  if (index != staged.size()) {
    return Status::InvalidArgument("web delta records out of order");
  }
  for (std::size_t d = 0; d < dirty.size(); ++d) {
    auto& slots = web->sites_[dirty[d]].slots;
    for (uint32_t j = 0; j < slots.size(); ++j) {
      slots[j].history = std::move(histories[d][j]);
    }
  }

  web->now_.store(now, std::memory_order_relaxed);
  web->fetch_count_.store(fetch_count, std::memory_order_relaxed);
  web->not_found_count_.store(not_found, std::memory_order_relaxed);
  web->pages_created_.store(pages_created, std::memory_order_relaxed);
  for (const uint32_t s : dirty) {
    web->site_fetches_[s].store(0, std::memory_order_relaxed);
    if (!web->site_faults_.empty()) {
      web->site_faults_[s] = SimulatedWeb::SiteFaultState{};
    }
    if (!web->site_adv_.empty()) {
      web->site_adv_[s] = SimulatedWeb::SiteAdvState{};
    }
  }
  for (const auto& [site, count] : fetch_sites) {
    web->site_fetches_[site].store(count, std::memory_order_relaxed);
  }
  for (auto& [site, f] : staged_faults) web->site_faults_[site] = f;
  for (auto& [site, a] : staged_adv) web->site_adv_[site] = a;
  return Status::Ok();
}

}  // namespace webevo::simweb
