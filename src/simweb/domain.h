#ifndef WEBEVO_SIMWEB_DOMAIN_H_
#define WEBEVO_SIMWEB_DOMAIN_H_

#include <array>
#include <string_view>

namespace webevo::simweb {

/// Top-level domain groups used throughout the paper's study (Table 1):
/// `.com`; `.edu`; `netorg` = `.net` + `.org`; `gov` = `.gov` + `.mil`.
enum class Domain : int {
  kCom = 0,
  kEdu = 1,
  kNetOrg = 2,
  kGov = 3,
};

inline constexpr int kNumDomains = 4;

inline constexpr std::array<Domain, kNumDomains> kAllDomains = {
    Domain::kCom, Domain::kEdu, Domain::kNetOrg, Domain::kGov};

/// Human-readable name matching the paper's figures ("com", "edu", ...).
constexpr std::string_view DomainName(Domain d) {
  switch (d) {
    case Domain::kCom:
      return "com";
    case Domain::kEdu:
      return "edu";
    case Domain::kNetOrg:
      return "netorg";
    case Domain::kGov:
      return "gov";
  }
  return "?";
}

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_DOMAIN_H_
