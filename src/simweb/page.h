#ifndef WEBEVO_SIMWEB_PAGE_H_
#define WEBEVO_SIMWEB_PAGE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "simweb/url.h"
#include "util/hash.h"

namespace webevo::simweb {

/// Stable identifier of one page for its whole life. PageIds are never
/// reused; a slot's successive occupants get fresh ids (and fresh URLs).
using PageId = uint64_t;

inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// What a crawler gets back from a successful fetch: the page content
/// digest (what the paper's UpdateModule records to detect changes) and
/// the out-links (what feeds AllUrls).
struct FetchResult {
  Url url;
  PageId page = kInvalidPage;
  /// Content version; bumps by one on every change event of the page's
  /// Poisson change process. The crawler must not peek at this directly
  /// (a real crawler can't); it is used by tests and oracle-based
  /// evaluation. Change detection uses `checksum`.
  uint64_t version = 0;
  Checksum128 checksum;
  double fetched_at = 0.0;
  /// Time of the page's most recent change (its birth time if it has
  /// never changed) — the Last-Modified header most 1999-era servers
  /// sent, which the richer estimators of [CGM99a] exploit.
  double last_modified = 0.0;
  std::vector<Url> links;
};

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_PAGE_H_
