#ifndef WEBEVO_SIMWEB_PAGE_H_
#define WEBEVO_SIMWEB_PAGE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "simweb/url.h"
#include "util/hash.h"

namespace webevo::simweb {

/// Stable identifier of one page for its whole life. PageIds are never
/// reused; a slot's successive occupants get fresh ids (and fresh URLs).
///
/// A PageId packs the page's identity (site, slot, incarnation) into 64
/// bits, so it is a pure function of the URL rather than of creation
/// order. That makes ids — and everything derived from them, such as
/// synthetic page bodies and checksums — bit-identical no matter how
/// many crawl shards observe the web concurrently or in what order
/// pages happen to be materialised.
using PageId = uint64_t;

inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

inline constexpr int kPageIdSiteBits = 24;
inline constexpr int kPageIdSlotBits = 20;
inline constexpr int kPageIdIncarnationBits = 20;
/// Hard structural caps implied by the packing (~16M sites, ~1M slots
/// per site, ~1M successive occupants per slot); WebConfig::Validate
/// enforces the site and slot caps, and a simulated page dying every
/// day would take ~2,800 years of virtual time to overflow the
/// incarnation field.
inline constexpr uint32_t kMaxSites = 1u << kPageIdSiteBits;
inline constexpr uint32_t kMaxSlotsPerSite = 1u << kPageIdSlotBits;
inline constexpr uint32_t kMaxIncarnationsPerSlot = 1u
                                                    << kPageIdIncarnationBits;

constexpr PageId MakePageId(uint32_t site, uint32_t slot,
                            uint32_t incarnation) {
  return (static_cast<PageId>(site)
          << (kPageIdSlotBits + kPageIdIncarnationBits)) |
         (static_cast<PageId>(slot) << kPageIdIncarnationBits) |
         static_cast<PageId>(incarnation);
}

constexpr uint32_t PageIdSite(PageId id) {
  return static_cast<uint32_t>(id >>
                               (kPageIdSlotBits + kPageIdIncarnationBits));
}

constexpr uint32_t PageIdSlot(PageId id) {
  return static_cast<uint32_t>(id >> kPageIdIncarnationBits) &
         (kMaxSlotsPerSite - 1);
}

constexpr uint32_t PageIdIncarnation(PageId id) {
  return static_cast<uint32_t>(id) & (kMaxIncarnationsPerSlot - 1);
}

constexpr PageId PageIdOf(const Url& url) {
  return MakePageId(url.site, url.slot, url.incarnation);
}

/// What a crawler gets back from a successful fetch: the page content
/// digest (what the paper's UpdateModule records to detect changes) and
/// the out-links (what feeds AllUrls).
struct FetchResult {
  Url url;
  PageId page = kInvalidPage;
  /// Content version; bumps by one on every change event of the page's
  /// Poisson change process. The crawler must not peek at this directly
  /// (a real crawler can't); it is used by tests and oracle-based
  /// evaluation. Change detection uses `checksum`.
  uint64_t version = 0;
  Checksum128 checksum;
  double fetched_at = 0.0;
  /// Time of the page's most recent change (its birth time if it has
  /// never changed) — the Last-Modified header most 1999-era servers
  /// sent, which the richer estimators of [CGM99a] exploit.
  double last_modified = 0.0;
  std::vector<Url> links;
};

}  // namespace webevo::simweb

#endif  // WEBEVO_SIMWEB_PAGE_H_
