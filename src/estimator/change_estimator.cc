#include "estimator/change_estimator.h"

#include "estimator/bayesian_estimator.h"
#include "estimator/last_modified_estimator.h"
#include "estimator/naive_estimator.h"
#include "estimator/poisson_ci_estimator.h"
#include "estimator/ratio_estimator.h"

namespace webevo::estimator {

std::unique_ptr<ChangeEstimator> MakeEstimator(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kNaive:
      return std::make_unique<NaiveEstimator>();
    case EstimatorKind::kPoissonCi:
      return std::make_unique<PoissonCiEstimator>();
    case EstimatorKind::kBayesian:
      return std::make_unique<BayesianEstimator>();
    case EstimatorKind::kRatio:
      return std::make_unique<RatioEstimator>();
    case EstimatorKind::kLastModified:
      return std::make_unique<LastModifiedEstimator>();
  }
  return std::make_unique<NaiveEstimator>();
}

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kNaive:
      return "naive";
    case EstimatorKind::kPoissonCi:
      return "EP";
    case EstimatorKind::kBayesian:
      return "EB";
    case EstimatorKind::kRatio:
      return "ratio";
    case EstimatorKind::kLastModified:
      return "EL";
  }
  return "?";
}

}  // namespace webevo::estimator
