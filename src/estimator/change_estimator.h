#ifndef WEBEVO_ESTIMATOR_CHANGE_ESTIMATOR_H_
#define WEBEVO_ESTIMATOR_CHANGE_ESTIMATOR_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace webevo::estimator {

/// Interface for estimating a page's Poisson change rate from repeated
/// visits, the statistic the paper's UpdateModule maintains to decide
/// revisit frequency (Section 5.3, [CGM99a]).
///
/// Estimators consume *observations*: "the page was visited
/// `interval_days` after its previous visit, and its checksum
/// did / did not differ". Keying observations on the inter-visit
/// interval (rather than absolute time) lets one estimator instance
/// aggregate statistics over any unit — a page, a directory, or a whole
/// site, as the paper discusses for site-level statistics.
class ChangeEstimator {
 public:
  virtual ~ChangeEstimator() = default;

  /// Records one visit outcome. `interval_days` must be positive;
  /// non-positive intervals are ignored (a repeat visit at the same
  /// instant carries no rate information).
  virtual void RecordObservation(double interval_days, bool changed) = 0;

  /// Current point estimate of the change rate (changes per day).
  /// 0 while no change has ever been detected.
  virtual double EstimatedRate() const = 0;

  /// Convenience: mean change interval in days (+infinity if the rate
  /// estimate is 0).
  double EstimatedInterval() const {
    double r = EstimatedRate();
    return r > 0.0 ? 1.0 / r : std::numeric_limits<double>::infinity();
  }

  /// Number of observations recorded since construction/Reset.
  virtual int64_t observation_count() const = 0;

  /// Clears all state.
  virtual void Reset() = 0;

  /// Deep copy (estimators are small value-like objects).
  virtual std::unique_ptr<ChangeEstimator> Clone() const = 0;

  /// Short name for tables ("naive", "EP", "EB", "ratio").
  virtual std::string Name() const = 0;

  /// Flat numeric snapshot of the estimator's state, for durable
  /// checkpoints (see crawler/snapshot.h). Integer counts are stored as
  /// doubles — exact, since observation counts stay far below 2^53.
  virtual std::vector<double> SaveState() const = 0;

  /// Restores a SaveState() snapshot taken from an estimator of the
  /// same concrete type; InvalidArgument if the vector does not match.
  virtual Status RestoreState(const std::vector<double>& state) = 0;
};

/// Available estimator implementations.
enum class EstimatorKind {
  kNaive,      ///< X changes / T days of monitoring (Section 3.1)
  kPoissonCi,  ///< EP: MLE with confidence interval (Section 5.3)
  kBayesian,   ///< EB: posterior over frequency classes (Section 5.3)
  kRatio,      ///< bias-corrected -log((n-X+.5)/(n+.5))/mean-interval
  kLastModified,  ///< EL: quiet-tail MLE from Last-Modified headers
};

/// True when a SaveState double is a valid stored count: finite,
/// non-negative, and exactly representable (<= 2^53). RestoreState
/// implementations must check this before casting to an integer —
/// snapshot integrity is only verified after the state is parsed, so
/// corrupt values (negative, huge, NaN) reach these casts, and an
/// out-of-range double-to-int conversion is undefined behaviour.
inline bool ValidStoredCount(double v) {
  return v >= 0.0 && v <= 9007199254740992.0;  // 2^53; rejects NaN too
}

/// Creates a fresh estimator of the given kind with default parameters.
std::unique_ptr<ChangeEstimator> MakeEstimator(EstimatorKind kind);

const char* EstimatorKindName(EstimatorKind kind);

}  // namespace webevo::estimator

#endif  // WEBEVO_ESTIMATOR_CHANGE_ESTIMATOR_H_
