#ifndef WEBEVO_ESTIMATOR_POISSON_CI_ESTIMATOR_H_
#define WEBEVO_ESTIMATOR_POISSON_CI_ESTIMATOR_H_

#include "estimator/change_estimator.h"
#include "util/stats.h"

namespace webevo::estimator {

/// Estimator EP of Section 5.3 / [CGM99a]: assumes the page follows a
/// Poisson process (validated by Section 3.4) and inverts the per-visit
/// detection probability.
///
/// With visits every Δ days, each visit detects a change with
/// probability p = 1 - e^{-λΔ}. Given X detections out of n visits, the
/// maximum-likelihood rate is λ̂ = -ln(1 - X/n) / Δ̄ (Δ̄ = mean observed
/// interval), which — unlike the naive X/T — remains consistent as λΔ
/// grows, up to the saturation point X = n. A Wilson interval on p maps
/// through the same transform to the confidence interval on λ that EP
/// reports.
class PoissonCiEstimator final : public ChangeEstimator {
 public:
  void RecordObservation(double interval_days, bool changed) override {
    if (interval_days <= 0.0) return;
    total_interval_ += interval_days;
    ++visits_;
    if (changed) ++detections_;
  }

  double EstimatedRate() const override;

  /// Two-sided confidence interval on the rate; `confidence` in (0, 1).
  /// When every visit detected a change the upper bound is infinite
  /// (the data only lower-bounds the rate — Figure 1(a)).
  Interval RateInterval(double confidence) const;

  int64_t observation_count() const override { return visits_; }
  int64_t detections() const { return detections_; }
  /// Mean inter-visit interval (0 before any observation).
  double mean_interval() const {
    return visits_ > 0 ? total_interval_ / static_cast<double>(visits_)
                       : 0.0;
  }

  void Reset() override {
    total_interval_ = 0.0;
    visits_ = 0;
    detections_ = 0;
  }

  std::unique_ptr<ChangeEstimator> Clone() const override {
    return std::make_unique<PoissonCiEstimator>(*this);
  }

  std::string Name() const override { return "EP"; }

  std::vector<double> SaveState() const override {
    return {total_interval_, static_cast<double>(visits_),
            static_cast<double>(detections_)};
  }

  Status RestoreState(const std::vector<double>& state) override {
    if (state.size() != 3 || !ValidStoredCount(state[1]) ||
        !ValidStoredCount(state[2])) {
      return Status::InvalidArgument("invalid EP estimator state");
    }
    total_interval_ = state[0];
    visits_ = static_cast<int64_t>(state[1]);
    detections_ = static_cast<int64_t>(state[2]);
    return Status::Ok();
  }

 private:
  double total_interval_ = 0.0;
  int64_t visits_ = 0;
  int64_t detections_ = 0;
};

}  // namespace webevo::estimator

#endif  // WEBEVO_ESTIMATOR_POISSON_CI_ESTIMATOR_H_
