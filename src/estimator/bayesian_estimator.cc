#include "estimator/bayesian_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace webevo::estimator {
namespace {

// Rates for "changes many times a day / several times a day / daily /
// weekly / monthly / every 4 months / yearly". The sub-daily classes
// matter: without them every rapid changer is pinned at the "daily"
// rate, which badly *under*-estimates hopeless pages and misleads the
// optimal revisit policy into spending budget on them.
std::vector<double> DefaultClassRates() {
  return {16.0,       4.0,        1.0,        1.0 / 7.0,
          1.0 / 30.0, 1.0 / 120.0, 1.0 / 365.0};
}

}  // namespace

BayesianEstimator::BayesianEstimator()
    : BayesianEstimator(DefaultClassRates()) {}

BayesianEstimator::BayesianEstimator(std::vector<double> class_rates,
                                     std::vector<double> prior)
    : class_rates_(std::move(class_rates)) {
  assert(!class_rates_.empty());
  for (double r : class_rates_) {
    assert(r > 0.0);
    (void)r;
  }
  if (prior.size() == class_rates_.size()) {
    prior_ = std::move(prior);
  } else {
    prior_.assign(class_rates_.size(), 1.0 / class_rates_.size());
  }
  posterior_ = prior_;
}

void BayesianEstimator::RecordObservation(double interval_days,
                                          bool changed) {
  if (interval_days <= 0.0) return;
  double total = 0.0;
  for (size_t c = 0; c < class_rates_.size(); ++c) {
    double p_unchanged = std::exp(-class_rates_[c] * interval_days);
    double likelihood = changed ? 1.0 - p_unchanged : p_unchanged;
    posterior_[c] *= likelihood;
    total += posterior_[c];
  }
  if (total > 0.0) {
    for (double& p : posterior_) p /= total;
  } else {
    // All likelihoods underflowed; restart from the prior rather than
    // propagating NaNs.
    posterior_ = prior_;
  }
  ++observations_;
}

double BayesianEstimator::EstimatedRate() const {
  double rate = 0.0;
  for (size_t c = 0; c < class_rates_.size(); ++c) {
    rate += posterior_[c] * class_rates_[c];
  }
  return rate;
}

double BayesianEstimator::MapRate() const {
  return class_rates_[MapClass()];
}

size_t BayesianEstimator::MapClass() const {
  return static_cast<size_t>(
      std::max_element(posterior_.begin(), posterior_.end()) -
      posterior_.begin());
}

void BayesianEstimator::Reset() {
  posterior_ = prior_;
  observations_ = 0;
}

std::vector<double> BayesianEstimator::SaveState() const {
  std::vector<double> state;
  state.reserve(2 + 3 * class_rates_.size());
  state.push_back(static_cast<double>(observations_));
  state.push_back(static_cast<double>(class_rates_.size()));
  state.insert(state.end(), class_rates_.begin(), class_rates_.end());
  state.insert(state.end(), prior_.begin(), prior_.end());
  state.insert(state.end(), posterior_.begin(), posterior_.end());
  return state;
}

Status BayesianEstimator::RestoreState(const std::vector<double>& state) {
  if (state.size() < 2) {
    return Status::InvalidArgument("EB estimator state truncated");
  }
  if (!ValidStoredCount(state[0])) {
    return Status::InvalidArgument("EB observation count out of range");
  }
  if (!(state[1] >= 1.0 && state[1] <= 1e6)) {
    return Status::InvalidArgument("EB class count out of range");
  }
  auto k = static_cast<std::size_t>(state[1]);
  if (state.size() != 2 + 3 * k) {
    return Status::InvalidArgument("EB estimator state size mismatch");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (state[2 + c] <= 0.0) {
      return Status::InvalidArgument("EB class rates must be positive");
    }
  }
  observations_ = static_cast<int64_t>(state[0]);
  class_rates_.assign(state.begin() + 2, state.begin() + 2 + k);
  prior_.assign(state.begin() + 2 + k, state.begin() + 2 + 2 * k);
  posterior_.assign(state.begin() + 2 + 2 * k, state.end());
  return Status::Ok();
}

}  // namespace webevo::estimator
