#ifndef WEBEVO_ESTIMATOR_NAIVE_ESTIMATOR_H_
#define WEBEVO_ESTIMATOR_NAIVE_ESTIMATOR_H_

#include "estimator/change_estimator.h"

namespace webevo::estimator {

/// The paper's Section 3.1 estimator: if a page was monitored for T days
/// and changed X times (at most one detection per visit), the average
/// change interval is T / X, i.e. rate = X / T.
///
/// Simple but biased: with visits every Δ days it cannot see more than
/// one change per visit, so it *underestimates* rates above 1/Δ
/// (Figure 1a) — a bias the paper accepts and interprets as measuring
/// "batches of changes". Tests quantify this against the ground truth.
class NaiveEstimator final : public ChangeEstimator {
 public:
  void RecordObservation(double interval_days, bool changed) override {
    if (interval_days <= 0.0) return;
    monitored_days_ += interval_days;
    if (changed) ++changes_;
    ++observations_;
  }

  double EstimatedRate() const override {
    if (monitored_days_ <= 0.0 || changes_ == 0) return 0.0;
    return static_cast<double>(changes_) / monitored_days_;
  }

  int64_t observation_count() const override { return observations_; }
  int64_t detected_changes() const { return changes_; }
  double monitored_days() const { return monitored_days_; }

  void Reset() override {
    monitored_days_ = 0.0;
    changes_ = 0;
    observations_ = 0;
  }

  std::unique_ptr<ChangeEstimator> Clone() const override {
    return std::make_unique<NaiveEstimator>(*this);
  }

  std::string Name() const override { return "naive"; }

  std::vector<double> SaveState() const override {
    return {monitored_days_, static_cast<double>(changes_),
            static_cast<double>(observations_)};
  }

  Status RestoreState(const std::vector<double>& state) override {
    if (state.size() != 3 || !ValidStoredCount(state[1]) ||
        !ValidStoredCount(state[2])) {
      return Status::InvalidArgument("invalid naive estimator state");
    }
    monitored_days_ = state[0];
    changes_ = static_cast<int64_t>(state[1]);
    observations_ = static_cast<int64_t>(state[2]);
    return Status::Ok();
  }

 private:
  double monitored_days_ = 0.0;
  int64_t changes_ = 0;
  int64_t observations_ = 0;
};

}  // namespace webevo::estimator

#endif  // WEBEVO_ESTIMATOR_NAIVE_ESTIMATOR_H_
