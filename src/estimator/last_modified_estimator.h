#ifndef WEBEVO_ESTIMATOR_LAST_MODIFIED_ESTIMATOR_H_
#define WEBEVO_ESTIMATOR_LAST_MODIFIED_ESTIMATOR_H_

#include "estimator/change_estimator.h"

namespace webevo::estimator {

/// Estimator exploiting Last-Modified timestamps ([CGM99a]'s "last date
/// of change" setting): when a server reports *when* the page last
/// changed, each visit reveals a known-quiet tail of the Poisson
/// process, not just a changed/unchanged bit.
///
/// Likelihood per visit over a gap of delta days:
///   - changed, last modification q days before the visit (q < delta):
///     one event at the boundary and quiet since: lambda e^{-lambda q};
///   - unchanged: quiet for the whole gap: e^{-lambda delta}.
/// The MLE is therefore simply
///   lambda = detections / total observed quiet time,
/// which — unlike the checksum-only estimators — does *not* saturate
/// when the page changes faster than the visit cadence: the quiet tail
/// keeps shrinking as the true rate grows, so even one visit per month
/// can identify a page that changes hourly. The Figure 1(a)
/// identifiability limit is specific to checksum-only monitoring.
///
/// When a timestamp is unavailable (RecordObservation), a changed visit
/// falls back to the conditional expectation of the quiet tail under
/// the current rate estimate, E[q | changed in delta] =
/// 1/lambda - delta / (e^{lambda delta} - 1), making the estimator
/// usable — with checksum-only accuracy — in mixed fleets.
class LastModifiedEstimator final : public ChangeEstimator {
 public:
  /// Records a visit with the server-reported quiet tail: the page
  /// last changed `quiet_days` before this visit. For unchanged visits
  /// pass quiet_days >= interval_days (only the gap portion counts).
  void RecordObservationWithTimestamp(double interval_days, bool changed,
                                      double quiet_days);

  // ChangeEstimator interface (timestamp-free fallback).
  void RecordObservation(double interval_days, bool changed) override;
  double EstimatedRate() const override;
  int64_t observation_count() const override { return visits_; }
  void Reset() override;
  std::unique_ptr<ChangeEstimator> Clone() const override {
    return std::make_unique<LastModifiedEstimator>(*this);
  }
  std::string Name() const override { return "EL"; }

  int64_t detections() const { return detections_; }
  double total_quiet_days() const { return quiet_days_; }

  std::vector<double> SaveState() const override {
    return {quiet_days_, static_cast<double>(visits_),
            static_cast<double>(detections_)};
  }

  Status RestoreState(const std::vector<double>& state) override {
    if (state.size() != 3 || !ValidStoredCount(state[1]) ||
        !ValidStoredCount(state[2])) {
      return Status::InvalidArgument("invalid EL estimator state");
    }
    quiet_days_ = state[0];
    visits_ = static_cast<int64_t>(state[1]);
    detections_ = static_cast<int64_t>(state[2]);
    return Status::Ok();
  }

 private:
  double quiet_days_ = 0.0;
  int64_t visits_ = 0;
  int64_t detections_ = 0;
};

}  // namespace webevo::estimator

#endif  // WEBEVO_ESTIMATOR_LAST_MODIFIED_ESTIMATOR_H_
