#include "estimator/poisson_ci_estimator.h"

#include <cmath>
#include <limits>

namespace webevo::estimator {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Maps a detection probability to a rate given the mean visit interval.
double RateFromDetectionProb(double p, double mean_interval) {
  if (mean_interval <= 0.0) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return kInfinity;
  return -std::log(1.0 - p) / mean_interval;
}

}  // namespace

double PoissonCiEstimator::EstimatedRate() const {
  if (visits_ == 0 || detections_ == 0) return 0.0;
  double n = static_cast<double>(visits_);
  // At saturation (every visit changed) the MLE diverges; back off by
  // half a detection, the standard continuity correction, so the point
  // estimate stays finite and usable for scheduling.
  double x = static_cast<double>(detections_);
  if (detections_ == visits_) x -= 0.5;
  return RateFromDetectionProb(x / n, mean_interval());
}

Interval PoissonCiEstimator::RateInterval(double confidence) const {
  if (visits_ == 0) return {0.0, kInfinity};
  Interval p = WilsonInterval(detections_, visits_, confidence);
  double mi = mean_interval();
  Interval out;
  out.lo = RateFromDetectionProb(p.lo, mi);
  out.hi = detections_ == visits_ ? kInfinity
                                  : RateFromDetectionProb(p.hi, mi);
  return out;
}

}  // namespace webevo::estimator
