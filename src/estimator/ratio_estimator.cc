#include "estimator/ratio_estimator.h"

#include <cmath>

namespace webevo::estimator {

double RatioEstimator::EstimatedRate() const {
  if (visits_ == 0 || detections_ == 0) return 0.0;
  double n = static_cast<double>(visits_);
  double x = static_cast<double>(detections_);
  double mean_interval = total_interval_ / n;
  if (mean_interval <= 0.0) return 0.0;
  return -std::log((n - x + 0.5) / (n + 0.5)) / mean_interval;
}

}  // namespace webevo::estimator
