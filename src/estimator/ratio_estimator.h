#ifndef WEBEVO_ESTIMATOR_RATIO_ESTIMATOR_H_
#define WEBEVO_ESTIMATOR_RATIO_ESTIMATOR_H_

#include "estimator/change_estimator.h"

namespace webevo::estimator {

/// Bias-corrected frequency estimator from Cho & Garcia-Molina's
/// follow-up work on "Estimating frequency of change" ([CGM99a], in
/// final form r̂ = -log((n - X + 0.5) / (n + 0.5)) / Δ̄): given n visits
/// with X detected changes and mean inter-visit interval Δ̄.
///
/// Compared to EP's raw MLE it (a) stays finite at saturation X = n,
/// (b) has markedly lower small-sample bias, and (c) needs no regular
/// visit schedule — which is why the incremental crawler, whose
/// variable-frequency policy visits pages at irregular intervals, uses
/// it as the default UpdateModule estimator.
class RatioEstimator final : public ChangeEstimator {
 public:
  void RecordObservation(double interval_days, bool changed) override {
    if (interval_days <= 0.0) return;
    total_interval_ += interval_days;
    ++visits_;
    if (changed) ++detections_;
  }

  double EstimatedRate() const override;

  int64_t observation_count() const override { return visits_; }
  int64_t detections() const { return detections_; }

  void Reset() override {
    total_interval_ = 0.0;
    visits_ = 0;
    detections_ = 0;
  }

  std::unique_ptr<ChangeEstimator> Clone() const override {
    return std::make_unique<RatioEstimator>(*this);
  }

  std::string Name() const override { return "ratio"; }

  std::vector<double> SaveState() const override {
    return {total_interval_, static_cast<double>(visits_),
            static_cast<double>(detections_)};
  }

  Status RestoreState(const std::vector<double>& state) override {
    if (state.size() != 3 || !ValidStoredCount(state[1]) ||
        !ValidStoredCount(state[2])) {
      return Status::InvalidArgument("invalid ratio estimator state");
    }
    total_interval_ = state[0];
    visits_ = static_cast<int64_t>(state[1]);
    detections_ = static_cast<int64_t>(state[2]);
    return Status::Ok();
  }

 private:
  double total_interval_ = 0.0;
  int64_t visits_ = 0;
  int64_t detections_ = 0;
};

}  // namespace webevo::estimator

#endif  // WEBEVO_ESTIMATOR_RATIO_ESTIMATOR_H_
