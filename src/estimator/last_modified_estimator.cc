#include "estimator/last_modified_estimator.h"

#include <algorithm>
#include <cmath>

namespace webevo::estimator {

void LastModifiedEstimator::RecordObservationWithTimestamp(
    double interval_days, bool changed, double quiet_days) {
  if (interval_days <= 0.0) return;
  ++visits_;
  if (changed) {
    ++detections_;
    // Only the part of the quiet tail inside this gap is new
    // information; a reported modification *before* the previous visit
    // would contradict `changed` and is clamped defensively.
    quiet_days_ += std::clamp(quiet_days, 0.0, interval_days);
  } else {
    quiet_days_ += interval_days;
  }
}

void LastModifiedEstimator::RecordObservation(double interval_days,
                                              bool changed) {
  if (interval_days <= 0.0) return;
  if (!changed) {
    RecordObservationWithTimestamp(interval_days, false, interval_days);
    return;
  }
  // No timestamp: impute the expected quiet tail under the current
  // estimate, E[q | >=1 change in delta] = 1/l - delta/(e^{l delta}-1).
  double rate = EstimatedRate();
  double imputed;
  if (rate <= 0.0) {
    imputed = interval_days / 2.0;  // uninformed prior: midpoint
  } else {
    double x = rate * interval_days;
    imputed = x < 1e-6 ? interval_days / 2.0
                       : 1.0 / rate - interval_days / std::expm1(x);
  }
  RecordObservationWithTimestamp(interval_days, true,
                                 std::min(imputed, interval_days));
}

double LastModifiedEstimator::EstimatedRate() const {
  if (detections_ == 0 || quiet_days_ <= 0.0) return 0.0;
  return static_cast<double>(detections_) / quiet_days_;
}

void LastModifiedEstimator::Reset() {
  quiet_days_ = 0.0;
  visits_ = 0;
  detections_ = 0;
}

}  // namespace webevo::estimator
