#ifndef WEBEVO_ESTIMATOR_BAYESIAN_ESTIMATOR_H_
#define WEBEVO_ESTIMATOR_BAYESIAN_ESTIMATOR_H_

#include <vector>

#include "estimator/change_estimator.h"

namespace webevo::estimator {

/// Estimator EB of Section 5.3 / [CGM99a]: Bayesian classification of a
/// page into discrete *frequency classes* (e.g. "changes every week" —
/// C_W — vs "changes every month" — C_M).
///
/// The estimator keeps P{page in class c} for each class and updates it
/// on every visit with the Poisson likelihood of the observed outcome:
/// a change within interval Δ has likelihood 1 - e^{-λ_c Δ} under class
/// c, no change e^{-λ_c Δ}. Exactly the paper's example: learning that a
/// page did not change for a month raises P{C_M} and lowers P{C_W}.
class BayesianEstimator final : public ChangeEstimator {
 public:
  /// Default classes: changes every day / week / month / 4 months / year
  /// — the paper's histogram buckets (Figure 2) reused as a prior grid.
  BayesianEstimator();

  /// Custom classes: `class_rates` are changes/day, strictly positive;
  /// `prior`, if non-empty, must match in size and sum to ~1, otherwise
  /// a uniform prior is used.
  explicit BayesianEstimator(std::vector<double> class_rates,
                             std::vector<double> prior = {});

  void RecordObservation(double interval_days, bool changed) override;

  /// Posterior-mean rate over the classes.
  double EstimatedRate() const override;

  /// Rate of the maximum a-posteriori class.
  double MapRate() const;
  /// Index of the MAP class.
  size_t MapClass() const;

  const std::vector<double>& class_rates() const { return class_rates_; }
  const std::vector<double>& posterior() const { return posterior_; }

  int64_t observation_count() const override { return observations_; }
  void Reset() override;

  std::unique_ptr<ChangeEstimator> Clone() const override {
    return std::make_unique<BayesianEstimator>(*this);
  }

  std::string Name() const override { return "EB"; }

  /// Layout: {observations, K, rates[K], prior[K], posterior[K]}.
  std::vector<double> SaveState() const override;
  Status RestoreState(const std::vector<double>& state) override;

 private:
  std::vector<double> class_rates_;
  std::vector<double> prior_;
  std::vector<double> posterior_;
  int64_t observations_ = 0;
};

}  // namespace webevo::estimator

#endif  // WEBEVO_ESTIMATOR_BAYESIAN_ESTIMATOR_H_
