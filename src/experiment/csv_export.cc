#include "experiment/csv_export.h"

#include <cmath>

namespace webevo::experiment {

Status WritePageStatsCsv(const PageStatsTable& table, std::ostream& out) {
  out << "url,domain,first_day,last_day,sightings,changes,"
         "first_change_day,first_gap_day,est_interval_days,"
         "lifespan_days\n";
  table.ForEach([&](const simweb::Url& url, const PageStats& ps) {
    double interval = ps.EstimatedChangeIntervalDays();
    out << url.ToString() << ',' << simweb::DomainName(ps.domain) << ','
        << ps.first_day << ',' << ps.last_day << ',' << ps.sightings
        << ',' << ps.changes << ',' << ps.first_change_day << ','
        << ps.first_gap_day << ',';
    if (std::isfinite(interval)) {
      out << interval;
    } else {
      out << "inf";
    }
    out << ',' << ps.VisibleLifespanDays() << '\n';
  });
  if (!out.good()) return Status::Internal("csv write failed");
  return Status::Ok();
}

Status WriteSurvivalCsv(const SurvivalResult& result, std::ostream& out) {
  out << "day,overall,com,edu,netorg,gov\n";
  for (std::size_t i = 0; i < result.day.size(); ++i) {
    out << result.day[i] << ',' << result.overall[i];
    for (int d = 0; d < simweb::kNumDomains; ++d) {
      out << ',' << result.by_domain[static_cast<std::size_t>(d)][i];
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("csv write failed");
  return Status::Ok();
}

Status WriteHistogramCsv(const Histogram& histogram, std::ostream& out) {
  out << "label,upper_edge,count,fraction\n";
  for (std::size_t b = 0; b < histogram.num_buckets(); ++b) {
    double edge = histogram.bucket_upper_edge(b);
    out << histogram.bucket_label(b) << ',';
    if (std::isfinite(edge)) {
      out << edge;
    } else {
      out << "inf";
    }
    out << ',' << histogram.bucket_count(b) << ','
        << histogram.fraction(b) << '\n';
  }
  if (!out.good()) return Status::Internal("csv write failed");
  return Status::Ok();
}

}  // namespace webevo::experiment
