#ifndef WEBEVO_EXPERIMENT_MONITORING_EXPERIMENT_H_
#define WEBEVO_EXPERIMENT_MONITORING_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "experiment/page_stats.h"
#include "experiment/page_window.h"
#include "simweb/simulated_web.h"
#include "util/status.h"

namespace webevo::experiment {

/// Parameters of the monitoring campaign. Paper values: 270 sites
/// visited daily for ~128 days (Feb 17 - Jun 24, 1999) with a 3,000
/// page window per site.
struct MonitoringConfig {
  int num_days = 128;
  std::size_t window_size = 3000;
  double start_time = 0.0;
  /// Hour-of-day offset for the nightly crawl (the paper crawled 9PM -
  /// 6AM); purely cosmetic for the statistics but keeps visit times off
  /// integer boundaries.
  double visit_hour_fraction = 0.0;
};

/// Re-runs the paper's Sections 2-3 measurement procedure against a
/// simulated web: every day, visit every monitored site's page window
/// and record sightings and checksum changes into a PageStatsTable,
/// from which the Figure 2/4/5/6 analyses are derived.
class MonitoringExperiment {
 public:
  MonitoringExperiment(simweb::SimulatedWeb* web,
                       const MonitoringConfig& config);

  /// Runs the full campaign. Call once.
  Status Run();

  /// Runs a single day (0-based); exposed for incremental drivers and
  /// tests. Days must be run in order.
  Status RunDay(int day);

  const PageStatsTable& table() const { return table_; }
  const MonitoringConfig& config() const { return config_; }
  uint64_t total_fetches() const;
  int days_completed() const { return days_completed_; }

 private:
  simweb::SimulatedWeb* web_;  // not owned
  MonitoringConfig config_;
  std::vector<PageWindow> windows_;
  PageStatsTable table_;
  int days_completed_ = 0;
};

}  // namespace webevo::experiment

#endif  // WEBEVO_EXPERIMENT_MONITORING_EXPERIMENT_H_
