#ifndef WEBEVO_EXPERIMENT_CSV_EXPORT_H_
#define WEBEVO_EXPERIMENT_CSV_EXPORT_H_

#include <ostream>

#include "experiment/analyzers.h"
#include "experiment/page_stats.h"
#include "util/status.h"

namespace webevo::experiment {

/// Writes the per-URL statistics of a monitoring campaign as CSV
/// (header + one row per sighted URL), for analysis outside the
/// library (notebooks, gnuplot, spreadsheets).
///
/// Columns: url, domain, first_day, last_day, sightings, changes,
/// first_change_day, first_gap_day, est_interval_days, lifespan_days.
Status WritePageStatsCsv(const PageStatsTable& table, std::ostream& out);

/// Writes a survival analysis as CSV: day, overall, com, edu, netorg,
/// gov (the Figure 5 series).
Status WriteSurvivalCsv(const SurvivalResult& result, std::ostream& out);

/// Writes a histogram as CSV: label, upper_edge, count, fraction.
Status WriteHistogramCsv(const Histogram& histogram, std::ostream& out);

}  // namespace webevo::experiment

#endif  // WEBEVO_EXPERIMENT_CSV_EXPORT_H_
