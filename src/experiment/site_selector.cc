#include "experiment/site_selector.h"

#include <algorithm>
#include <cmath>

#include "graph/pagerank.h"
#include "graph/site_graph.h"
#include "util/random.h"

namespace webevo::experiment {

simweb::WebConfig MakeUniverseConfig(const SiteSelectorConfig& config) {
  simweb::WebConfig web;
  web.seed = config.seed;
  double assigned = 0.0;
  for (int d = 0; d < simweb::kNumDomains; ++d) {
    auto dd = static_cast<std::size_t>(d);
    double share = config.universe_domain_mix[dd];
    web.sites_per_domain[dd] = std::max(
        1, static_cast<int>(std::lround(share * config.universe_sites)));
    assigned += share;
  }
  (void)assigned;
  // Small sites keep the universe cheap; only the cross-site link
  // structure matters for site-level PageRank.
  web.min_site_size = 10;
  web.max_site_size = 60;
  return web;
}

StatusOr<SiteSelectionResult> SelectSites(
    simweb::SimulatedWeb& universe, const SiteSelectorConfig& config) {
  if (config.candidates <= 0) {
    return Status::InvalidArgument("candidates must be positive");
  }
  if (config.permission_prob < 0.0 || config.permission_prob > 1.0) {
    return Status::InvalidArgument("permission_prob not in [0,1]");
  }
  graph::SiteGraph site_graph =
      graph::SiteGraph::FromWeb(universe, universe.now());
  graph::PageRankOptions options;
  options.damping = config.damping;
  auto rank = site_graph.ComputeSiteRank(options);
  if (!rank.ok()) return rank.status();

  SiteSelectionResult result;
  result.candidates = graph::TopKByRank(
      rank->rank, static_cast<std::size_t>(config.candidates));

  Rng rng(config.seed ^ 0x5157u);  // independent permission stream
  for (uint32_t site : result.candidates) {
    auto d = static_cast<std::size_t>(universe.site_domain(site));
    ++result.candidates_by_domain[d];
    if (rng.Bernoulli(config.permission_prob)) {
      result.selected.push_back(site);
      ++result.selected_by_domain[d];
    }
  }
  return result;
}

}  // namespace webevo::experiment
