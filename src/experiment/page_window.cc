#include "experiment/page_window.h"

#include <deque>
#include <unordered_set>

namespace webevo::experiment {

WindowVisit PageWindow::Visit(simweb::SimulatedWeb& web, double t) {
  WindowVisit visit;
  visit.time = t;

  std::deque<simweb::Url> frontier;
  std::unordered_set<simweb::Url, simweb::UrlHash> enqueued;
  std::unordered_set<simweb::Url, simweb::UrlHash> in_window;
  simweb::Url root = web.RootUrl(site_);
  frontier.push_back(root);
  enqueued.insert(root);

  while (!frontier.empty() && visit.pages.size() < window_size_) {
    simweb::Url url = frontier.front();
    frontier.pop_front();
    ++total_fetches_;
    auto result = web.Fetch(url, t);
    if (!result.ok()) continue;  // vanished between discovery and fetch

    Observation obs;
    obs.url = url;
    obs.page = result->page;
    auto it = last_checksum_.find(url);
    obs.first_sighting = it == last_checksum_.end();
    obs.changed = !obs.first_sighting && !(it->second == result->checksum);
    last_checksum_[url] = result->checksum;
    in_window.insert(url);
    visit.pages.push_back(obs);

    for (const simweb::Url& link : result->links) {
      // Windows are per-site: the paper crawled each selected site's own
      // pages; cross-site links were used only for site selection.
      if (link.site != site_) continue;
      if (enqueued.insert(link).second) frontier.push_back(link);
    }
  }

  for (const simweb::Url& url : previous_window_) {
    if (in_window.count(url) == 0) visit.left.push_back(url);
  }
  previous_window_.assign(in_window.begin(), in_window.end());
  return visit;
}

}  // namespace webevo::experiment
