#include "experiment/page_stats.h"

#include <limits>

namespace webevo::experiment {

double PageStats::EstimatedChangeIntervalDays() const {
  if (changes <= 0) return std::numeric_limits<double>::infinity();
  int span = SpanDays();
  if (span <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(span) / static_cast<double>(changes);
}

void PageStatsTable::Record(simweb::Domain domain, int day,
                            const Observation& obs) {
  PageStats& ps = stats_[obs.url];
  if (ps.sightings == 0) {
    ps.domain = domain;
    ps.page = obs.page;
    ps.first_day = day;
  } else if (ps.first_gap_day < 0 && day > ps.last_day + 1) {
    // The page skipped at least one daily visit: it left the window and
    // came back. Record where the first absence began.
    ps.first_gap_day = ps.last_day + 1;
  }
  ps.last_day = day;
  ++ps.sightings;
  if (obs.changed) {
    ++ps.changes;
    if (ps.first_change_day < 0) ps.first_change_day = day;
    ps.change_days.push_back(day);
  }
  if (day > last_recorded_day_) last_recorded_day_ = day;
}

}  // namespace webevo::experiment
