#include "experiment/analyzers.h"

#include <algorithm>
#include <cmath>

namespace webevo::experiment {
namespace {

int DomainIndex(simweb::Domain d) { return static_cast<int>(d); }

}  // namespace

ChangeIntervalResult AnalyzeChangeIntervals(const PageStatsTable& table) {
  ChangeIntervalResult result;
  table.ForEach([&](const simweb::Url& url, const PageStats& ps) {
    (void)url;
    if (ps.sightings < 2) return;  // no interval information
    double interval = ps.EstimatedChangeIntervalDays();
    // +infinity (never changed) lands in the overflow bucket, matching
    // the paper's "did not change at all" fifth bar.
    double value = std::isfinite(interval) ? interval : 1e9;
    result.overall.Add(value);
    result.by_domain[static_cast<std::size_t>(DomainIndex(ps.domain))].Add(
        value);
    ++result.pages_analyzed;
  });
  return result;
}

LifespanResult AnalyzeLifespans(const PageStatsTable& table, int num_days) {
  LifespanResult result;
  table.ForEach([&](const simweb::Url& url, const PageStats& ps) {
    (void)url;
    double s = ps.VisibleLifespanDays();
    bool censored = ps.first_day == 0 || ps.last_day == num_days - 1;
    double method2 = censored ? 2.0 * s : s;
    auto d = static_cast<std::size_t>(DomainIndex(ps.domain));
    result.method1.Add(s);
    result.method2.Add(method2);
    result.method1_by_domain[d].Add(s);
    result.method2_by_domain[d].Add(method2);
    ++result.pages_analyzed;
  });
  return result;
}

int SurvivalResult::DaysToReach(const std::vector<double>& series,
                                double level) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] <= level) return static_cast<int>(i);
  }
  return -1;
}

SurvivalResult AnalyzeSurvival(const PageStatsTable& table, int num_days) {
  SurvivalResult result;
  if (num_days <= 0) return result;
  auto nd = static_cast<std::size_t>(num_days);
  // events[d] = cohort pages that first changed or disappeared on day d.
  std::vector<std::size_t> events(nd + 1, 0);
  std::array<std::vector<std::size_t>, simweb::kNumDomains> events_by_domain;
  for (auto& v : events_by_domain) v.assign(nd + 1, 0);

  table.ForEach([&](const simweb::Url& url, const PageStats& ps) {
    (void)url;
    if (ps.first_day != 0) return;  // Figure 5 follows the day-0 cohort
    auto d = static_cast<std::size_t>(DomainIndex(ps.domain));
    ++result.cohort_size;
    ++result.cohort_by_domain[d];
    // The page "dies" for Figure 5 at its first change or its first
    // absence from the window, whichever comes first.
    int death = num_days;  // survives the horizon
    if (ps.first_change_day >= 0) death = ps.first_change_day;
    int gone = ps.first_gap_day >= 0 ? ps.first_gap_day : ps.last_day + 1;
    if (gone < death && gone < num_days) death = gone;
    if (death > num_days) death = num_days;
    ++events[static_cast<std::size_t>(death)];
    ++events_by_domain[d][static_cast<std::size_t>(death)];
  });

  result.day.resize(nd);
  result.overall.resize(nd);
  for (auto& v : result.by_domain) v.assign(nd, 1.0);
  std::size_t dead = 0;
  std::array<std::size_t, simweb::kNumDomains> dead_by_domain = {};
  for (std::size_t day = 0; day < nd; ++day) {
    dead += events[day];
    result.day[day] = static_cast<double>(day);
    result.overall[day] =
        result.cohort_size > 0
            ? 1.0 - static_cast<double>(dead) /
                        static_cast<double>(result.cohort_size)
            : 1.0;
    for (int d = 0; d < simweb::kNumDomains; ++d) {
      auto dd = static_cast<std::size_t>(d);
      dead_by_domain[dd] += events_by_domain[dd][day];
      result.by_domain[dd][day] =
          result.cohort_by_domain[dd] > 0
              ? 1.0 - static_cast<double>(dead_by_domain[dd]) /
                          static_cast<double>(result.cohort_by_domain[dd])
              : 1.0;
    }
  }
  return result;
}

StatusOr<PoissonResult> AnalyzePoisson(const PageStatsTable& table,
                                       double target_interval_days,
                                       double tolerance_frac) {
  if (target_interval_days <= 0.0) {
    return Status::InvalidArgument("target interval must be positive");
  }
  PoissonResult result;
  result.target_interval_days = target_interval_days;
  const double lo = target_interval_days * (1.0 - tolerance_frac);
  const double hi = target_interval_days * (1.0 + tolerance_frac);

  std::vector<int> intervals;
  table.ForEach([&](const simweb::Url& url, const PageStats& ps) {
    (void)url;
    if (ps.changes < 2) return;
    double est = ps.EstimatedChangeIntervalDays();
    if (!(est >= lo && est <= hi)) return;
    ++result.pages_selected;
    for (std::size_t i = 1; i < ps.change_days.size(); ++i) {
      intervals.push_back(ps.change_days[i] - ps.change_days[i - 1]);
    }
  });
  if (intervals.empty()) {
    return Status::NotFound("no pages near the target interval");
  }
  result.intervals_collected = intervals.size();

  int max_interval = *std::max_element(intervals.begin(), intervals.end());
  std::vector<double> counts(static_cast<std::size_t>(max_interval) + 1,
                             0.0);
  for (int v : intervals) counts[static_cast<std::size_t>(v)] += 1.0;
  const double total = static_cast<double>(intervals.size());
  const double lambda = 1.0 / target_interval_days;
  for (int t = 1; t <= max_interval; ++t) {
    result.interval_days.push_back(static_cast<double>(t));
    result.fraction.push_back(counts[static_cast<std::size_t>(t)] / total);
    // Poisson prediction for day-granular detection: an interval of t
    // days has probability integral over (t-1, t] of the exponential
    // density = e^{-lambda (t-1)} - e^{-lambda t}.
    result.predicted.push_back(std::exp(-lambda * (t - 1)) -
                               std::exp(-lambda * t));
  }
  auto fit = FitExponential(result.interval_days, result.fraction);
  if (!fit.ok()) return fit.status();
  result.fit = *fit;
  return result;
}

}  // namespace webevo::experiment
