#ifndef WEBEVO_EXPERIMENT_ANALYZERS_H_
#define WEBEVO_EXPERIMENT_ANALYZERS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "experiment/page_stats.h"
#include "simweb/domain.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/status.h"

namespace webevo::experiment {

/// Figure 2 — fraction of pages with a given average change interval,
/// overall and per domain. Pages sighted only once carry no interval
/// information and are excluded; pages never seen to change fall in the
/// "> 4 months" bucket (the paper's fifth bar).
struct ChangeIntervalResult {
  Histogram overall = Histogram::ChangeIntervalBuckets();
  std::array<Histogram, simweb::kNumDomains> by_domain = {
      Histogram::ChangeIntervalBuckets(), Histogram::ChangeIntervalBuckets(),
      Histogram::ChangeIntervalBuckets(), Histogram::ChangeIntervalBuckets()};
  std::size_t pages_analyzed = 0;
};
ChangeIntervalResult AnalyzeChangeIntervals(const PageStatsTable& table);

/// Figure 4 — visible lifespan, with the paper's two censoring
/// corrections: Method 1 uses the observed span s; Method 2 doubles s
/// for pages touching the start or end of the experiment (cases (a),
/// (c), (d) of Figure 3).
struct LifespanResult {
  Histogram method1 = Histogram::LifespanBuckets();
  Histogram method2 = Histogram::LifespanBuckets();
  std::array<Histogram, simweb::kNumDomains> method1_by_domain = {
      Histogram::LifespanBuckets(), Histogram::LifespanBuckets(),
      Histogram::LifespanBuckets(), Histogram::LifespanBuckets()};
  std::array<Histogram, simweb::kNumDomains> method2_by_domain = {
      Histogram::LifespanBuckets(), Histogram::LifespanBuckets(),
      Histogram::LifespanBuckets(), Histogram::LifespanBuckets()};
  std::size_t pages_analyzed = 0;
};
/// `num_days` is the experiment length (pages sighted on day 0 or day
/// num_days - 1 are censored).
LifespanResult AnalyzeLifespans(const PageStatsTable& table, int num_days);

/// Figure 5 — survival of the day-0 cohort: the fraction of pages that
/// had neither changed nor disappeared by each day.
struct SurvivalResult {
  std::vector<double> day;       ///< 0 .. num_days - 1
  std::vector<double> overall;   ///< surviving fraction, all domains
  std::array<std::vector<double>, simweb::kNumDomains> by_domain;
  std::array<std::size_t, simweb::kNumDomains> cohort_by_domain = {};
  std::size_t cohort_size = 0;

  /// First day the series drops to or below `level` (e.g. 0.5 for the
  /// paper's "how long until 50% of the web changed"); -1 if it never
  /// does within the horizon.
  static int DaysToReach(const std::vector<double>& series, double level);
};
SurvivalResult AnalyzeSurvival(const PageStatsTable& table, int num_days);

/// Figure 6 — distribution of intervals between successive detected
/// changes for pages whose estimated mean change interval is near
/// `target_interval_days`, against the Poisson prediction
/// lambda e^{-lambda t}.
struct PoissonResult {
  double target_interval_days = 0.0;
  std::vector<double> interval_days;  ///< histogram bin centres (1 day wide)
  std::vector<double> fraction;       ///< observed fraction per bin
  std::vector<double> predicted;      ///< Poisson prediction per bin
  ExponentialFit fit;                 ///< exponential fit to the observed tail
  std::size_t pages_selected = 0;
  std::size_t intervals_collected = 0;
};
/// Selects pages with estimated interval within +-`tolerance_frac` of
/// the target. Fails if no page qualifies or the fit is degenerate.
StatusOr<PoissonResult> AnalyzePoisson(const PageStatsTable& table,
                                       double target_interval_days,
                                       double tolerance_frac);

}  // namespace webevo::experiment

#endif  // WEBEVO_EXPERIMENT_ANALYZERS_H_
