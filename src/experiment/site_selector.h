#ifndef WEBEVO_EXPERIMENT_SITE_SELECTOR_H_
#define WEBEVO_EXPERIMENT_SITE_SELECTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/status.h"

namespace webevo::experiment {

/// Parameters of the Table 1 site-selection pipeline (Section 2.2).
struct SiteSelectorConfig {
  /// Size of the site universe standing in for the paper's 25M-page
  /// WebBase snapshot.
  int universe_sites = 2000;

  /// Domain mix of the universe (com, edu, netorg, gov). Calibrated so
  /// the popularity-ranked top-400 resembles the paper's candidate set;
  /// the true 1999 crawl is unavailable (see DESIGN.md).
  std::array<double, simweb::kNumDomains> universe_domain_mix = {
      0.49, 0.28, 0.12, 0.11};

  /// Number of top-ranked candidate sites to contact (paper: 400).
  int candidates = 400;

  /// Probability a contacted webmaster grants permission
  /// (paper: 270 of 400 agreed).
  double permission_prob = 270.0 / 400.0;

  /// PageRank damping for the site hypergraph (paper: 0.9).
  double damping = 0.9;

  uint64_t seed = 19990217;
};

/// Result of the selection pipeline.
struct SiteSelectionResult {
  std::vector<uint32_t> candidates;  ///< top sites by site PageRank
  std::vector<uint32_t> selected;    ///< candidates that granted permission
  std::array<int, simweb::kNumDomains> candidates_by_domain = {};
  std::array<int, simweb::kNumDomains> selected_by_domain = {};
};

/// Builds a WebConfig for the selection universe: many small sites with
/// the configured domain mix.
simweb::WebConfig MakeUniverseConfig(const SiteSelectorConfig& config);

/// Runs the pipeline against `universe`: compute the site-level
/// hypergraph PageRank, take the top `candidates` sites, and keep each
/// with `permission_prob`.
StatusOr<SiteSelectionResult> SelectSites(simweb::SimulatedWeb& universe,
                                          const SiteSelectorConfig& config);

}  // namespace webevo::experiment

#endif  // WEBEVO_EXPERIMENT_SITE_SELECTOR_H_
