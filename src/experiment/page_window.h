#ifndef WEBEVO_EXPERIMENT_PAGE_WINDOW_H_
#define WEBEVO_EXPERIMENT_PAGE_WINDOW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "simweb/page.h"
#include "simweb/simulated_web.h"
#include "simweb/url.h"
#include "util/hash.h"

namespace webevo::experiment {

/// One page observation from a daily window visit.
struct Observation {
  simweb::Url url;
  simweb::PageId page = simweb::kInvalidPage;
  bool changed = false;     ///< checksum differs from the previous sighting
  bool first_sighting = false;  ///< never seen by this window before
};

/// The result of visiting one site's window on one day.
struct WindowVisit {
  double time = 0.0;
  std::vector<Observation> pages;   ///< today's window, in BFS order
  std::vector<simweb::Url> left;    ///< URLs in yesterday's window, gone today
};

/// The paper's *page window* monitoring scheme (Section 2.1): each day,
/// start from a site's root page and follow links breadth-first, up to
/// `window_size` pages. Pages enter the window as they are created or
/// move closer to the root and leave it when deleted or buried deeper —
/// so, unlike tracking a fixed URL set, the scheme captures new pages.
///
/// The window keeps the last checksum of every URL it has ever sighted
/// (the paper's change-detection mechanism) and reports, per visit,
/// which window pages changed since their previous sighting.
class PageWindow {
 public:
  PageWindow(uint32_t site, std::size_t window_size)
      : site_(site), window_size_(window_size) {}

  /// Performs one BFS visit at time `t`. Fetches count as crawl traffic
  /// on `web`.
  WindowVisit Visit(simweb::SimulatedWeb& web, double t);

  uint32_t site() const { return site_; }
  std::size_t window_size() const { return window_size_; }
  uint64_t total_fetches() const { return total_fetches_; }

 private:
  uint32_t site_;
  std::size_t window_size_;
  std::unordered_map<simweb::Url, Checksum128, simweb::UrlHash>
      last_checksum_;
  std::vector<simweb::Url> previous_window_;
  uint64_t total_fetches_ = 0;
};

}  // namespace webevo::experiment

#endif  // WEBEVO_EXPERIMENT_PAGE_WINDOW_H_
