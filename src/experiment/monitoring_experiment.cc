#include "experiment/monitoring_experiment.h"

namespace webevo::experiment {

MonitoringExperiment::MonitoringExperiment(simweb::SimulatedWeb* web,
                                           const MonitoringConfig& config)
    : web_(web), config_(config) {
  windows_.reserve(web->num_sites());
  for (uint32_t s = 0; s < web->num_sites(); ++s) {
    windows_.emplace_back(s, config.window_size);
  }
}

Status MonitoringExperiment::RunDay(int day) {
  if (day != days_completed_) {
    return Status::FailedPrecondition("days must be run in order");
  }
  if (day >= config_.num_days) {
    return Status::OutOfRange("past the configured campaign length");
  }
  double t = config_.start_time + static_cast<double>(day) +
             config_.visit_hour_fraction;
  for (PageWindow& window : windows_) {
    simweb::Domain domain = web_->site_domain(window.site());
    WindowVisit visit = window.Visit(*web_, t);
    for (const Observation& obs : visit.pages) {
      table_.Record(domain, day, obs);
    }
  }
  ++days_completed_;
  return Status::Ok();
}

Status MonitoringExperiment::Run() {
  if (days_completed_ != 0) {
    return Status::FailedPrecondition("experiment already ran");
  }
  for (int day = 0; day < config_.num_days; ++day) {
    Status st = RunDay(day);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

uint64_t MonitoringExperiment::total_fetches() const {
  uint64_t total = 0;
  for (const PageWindow& window : windows_) {
    total += window.total_fetches();
  }
  return total;
}

}  // namespace webevo::experiment
