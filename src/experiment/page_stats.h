#ifndef WEBEVO_EXPERIMENT_PAGE_STATS_H_
#define WEBEVO_EXPERIMENT_PAGE_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "experiment/page_window.h"
#include "simweb/domain.h"
#include "simweb/url.h"

namespace webevo::experiment {

/// Everything the study's analyses need about one monitored URL,
/// accumulated from daily window sightings.
struct PageStats {
  simweb::Domain domain = simweb::Domain::kCom;
  simweb::PageId page = simweb::kInvalidPage;
  int first_day = -1;        ///< day of the first sighting
  int last_day = -1;         ///< day of the most recent sighting
  int first_gap_day = -1;    ///< first day it went missing (-1 = never)
  int sightings = 0;         ///< total days sighted
  int changes = 0;           ///< sightings whose checksum differed
  int first_change_day = -1; ///< day of the first detected change
  /// Days on which a change was detected, in order (Figure 6 needs the
  /// full sequence to histogram inter-change intervals).
  std::vector<int> change_days;

  /// Days between first and last sighting (the monitored span). 0 for a
  /// single sighting.
  int SpanDays() const { return last_day - first_day; }

  /// The paper's Section 3.1 estimate: monitored span / changes, at
  /// one-day granularity. Returns +infinity when no change was seen.
  double EstimatedChangeIntervalDays() const;

  /// Visible lifespan s (Figure 3): days from first to last sighting,
  /// inclusive — what a user probing the window daily would perceive.
  int VisibleLifespanDays() const { return SpanDays() + 1; }
};

/// Accumulates PageStats for every URL sighted by the monitoring
/// experiment. Day indices are 0-based from the experiment start.
class PageStatsTable {
 public:
  /// Records one sighting from a window visit on `day`.
  void Record(simweb::Domain domain, int day, const Observation& obs);

  const std::unordered_map<simweb::Url, PageStats, simweb::UrlHash>&
  stats() const {
    return stats_;
  }
  std::size_t num_pages() const { return stats_.size(); }
  /// Highest day index recorded so far (-1 if none).
  int last_recorded_day() const { return last_recorded_day_; }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [url, ps] : stats_) fn(url, ps);
  }

 private:
  std::unordered_map<simweb::Url, PageStats, simweb::UrlHash> stats_;
  int last_recorded_day_ = -1;
};

}  // namespace webevo::experiment

#endif  // WEBEVO_EXPERIMENT_PAGE_STATS_H_
