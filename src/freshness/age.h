#ifndef WEBEVO_FRESHNESS_AGE_H_
#define WEBEVO_FRESHNESS_AGE_H_

#include "util/status.h"

namespace webevo::freshness {

/// The paper's *second* collection metric ([CGM99b], mentioned in
/// Section 4): the age of a stored copy is 0 while it is up to date and
/// otherwise the time since the page's first unseen change. Freshness
/// counts *how many* copies are stale; age measures *how badly*.
///
/// All formulas assume the Poisson change model with rate `lambda`
/// (changes/day) and one sync per `period` days, like analytic.h.

/// Time-averaged age of an in-place-updated page (steady or batch):
///   A = T/2 - 1/lambda + (1 - e^{-lambda T}) / (lambda^2 T),
/// the integral of E[age at tau] = tau - (1 - e^{-lambda tau})/lambda
/// over the sync period. -> 0 as lambda -> 0, -> T/2 as lambda -> inf.
/// (Re-exported from analytic.h for locality; same implementation.)
double InPlaceAgeOf(double lambda, double period);

/// Time-averaged age of a page served from a *shadowed* collection that
/// a steady crawler rebuilds each period: the copy enters service T - u
/// days after its crawl at offset u and serves for a full period, so
/// its age accrues over an effective staleness horizon of up to 2T.
double SteadyShadowingAge(double lambda, double period);

/// Time-averaged age with a batch crawler and shadowing (window w).
double BatchShadowingAge(double lambda, double period, double crawl_window);

/// Instantaneous expected age of one copy synced `age_of_copy` days ago:
///   E[age] = a - (1 - e^{-lambda a}) / lambda    (a = age_of_copy).
double ExpectedAgeAtCopyAge(double lambda, double age_of_copy);

/// Age-optimal revisit frequency marginal: unlike freshness, the age
/// metric's marginal value d(-A)/df is *increasing* in lambda without
/// bound, so age-optimal allocations never abandon fast pages — a
/// qualitative difference from Figure 9 that [CGM99b] works out.
/// Returns dA/dT (the sensitivity of age to the sync period), used by
/// tests to verify the monotonicity claim.
double AgePeriodSensitivity(double lambda, double period);

}  // namespace webevo::freshness

#endif  // WEBEVO_FRESHNESS_AGE_H_
