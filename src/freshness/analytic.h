#ifndef WEBEVO_FRESHNESS_ANALYTIC_H_
#define WEBEVO_FRESHNESS_ANALYTIC_H_

#include <cmath>
#include <vector>

#include "util/status.h"

namespace webevo::freshness {

/// Closed-form freshness results under the paper's Poisson change model
/// (Section 4). All formulas assume a page changing as a Poisson process
/// with rate `lambda` (changes/day) and a crawler that revisits it once
/// per `period` days; `crawl_window` is the fraction of the period a
/// batch-mode crawler is actively crawling (the paper's "first week of
/// every month" = period 30, window 7).
///
/// Derivations (a page synced at time u is fresh at t > u with
/// probability e^{-lambda (t-u)}):
///
///  - in-place (steady or batch): each page is synced once per period
///    and immediately visible, so its time-averaged freshness is
///    (1/T) integral_0^T e^{-lambda a} da = (1 - e^{-lambda T}) /
///    (lambda T) — independent of *when* in the period it is synced,
///    which is the paper's claim that steady and batch crawlers have
///    equal average freshness at equal average speed.
///  - steady + shadowing: pages crawled uniformly over the period into a
///    shadow space and swapped in at the period boundary; averaging the
///    staleness over both the crawl time and the serving time squares
///    the in-place factor: F = ((1 - e^{-lambda T}) / (lambda T))^2.
///  - batch + shadowing: pages crawled uniformly over the window w and
///    swapped at its end: F = (1 - e^{-lambda T})(1 - e^{-lambda w}) /
///    (lambda^2 T w).
///
/// With the paper's parameters (change interval 4 months, period 1
/// month, window 1 week ~ T/4) these evaluate to Table 2's
/// 0.88 / 0.88 / 0.77 / 0.86, and with the sensitivity scenario
/// (interval 1 month, window T/2) to the text's 0.63 / 0.50.

/// Time-averaged freshness of an in-place-updated collection (steady or
/// batch). Returns 1 for lambda <= 0. Requires period > 0.
double InPlaceFreshness(double lambda, double period);

/// Time-averaged freshness with a steady crawler and shadowing.
double SteadyShadowingFreshness(double lambda, double period);

/// Time-averaged freshness with a batch crawler and shadowing;
/// crawl_window in (0, period].
double BatchShadowingFreshness(double lambda, double period,
                               double crawl_window);

/// Time-averaged age (days a stale copy has been stale) of an in-place
/// collection: T/2 - 1/lambda + (1 - e^{-lambda T}) / (lambda^2 T).
double InPlaceAge(double lambda, double period);

/// Freshness of a single page copy `age` days after it was synced.
inline double PageFreshnessAtAge(double lambda, double age) {
  return lambda <= 0.0 ? 1.0 : std::exp(-lambda * age);
}

/// --- Instantaneous freshness curves (Figures 7 and 8) ---------------

/// Which collection a curve describes under shadowing.
enum class CurveKind {
  kCurrentCollection,  ///< what users query
  kCrawlerCollection,  ///< the shadow space being (re)built
};

/// A sampled freshness trajectory.
struct FreshnessCurve {
  std::vector<double> time;       ///< days
  std::vector<double> freshness;  ///< expected freshness in [0, 1]
};

/// Parameters shared by the curve generators.
struct CurveSpec {
  double lambda = 0.1;       ///< page change rate per day
  double period = 30.0;      ///< revisit period T (days)
  double crawl_window = 7.0; ///< batch active window w (days)
  double horizon = 90.0;     ///< sample until this time
  int samples = 360;         ///< number of sample points
};

/// Figure 7(a): batch-mode crawler, in-place updates, cold start at 0.
/// Sawtooth: freshness climbs during each crawl window, decays
/// exponentially while the crawler is idle.
StatusOr<FreshnessCurve> BatchInPlaceCurve(const CurveSpec& spec);

/// Figure 7(b): steady crawler, in-place updates, cold start. Ramps up
/// during the first sweep and then holds the in-place average.
StatusOr<FreshnessCurve> SteadyInPlaceCurve(const CurveSpec& spec);

/// Figure 8(a): steady crawler with shadowing; pick which collection.
StatusOr<FreshnessCurve> SteadyShadowingCurve(const CurveSpec& spec,
                                              CurveKind kind);

/// Figure 8(b): batch crawler with shadowing; pick which collection.
StatusOr<FreshnessCurve> BatchShadowingCurve(const CurveSpec& spec,
                                             CurveKind kind);

/// Trapezoidal time-average of a curve over [from, to]; clamps to the
/// sampled range. Returns 0 for empty curves.
double CurveTimeAverage(const FreshnessCurve& curve, double from, double to);

}  // namespace webevo::freshness

#endif  // WEBEVO_FRESHNESS_ANALYTIC_H_
