#include "freshness/age.h"

#include <cmath>

#include "freshness/analytic.h"

namespace webevo::freshness {
namespace {

// g(x) = 1 - e^{-x} - x e^{-x}, the shared marginal kernel.
double G(double x) { return 1.0 - std::exp(-x) - x * std::exp(-x); }

}  // namespace

double InPlaceAgeOf(double lambda, double period) {
  return InPlaceAge(lambda, period);
}

double ExpectedAgeAtCopyAge(double lambda, double age_of_copy) {
  if (lambda <= 0.0 || age_of_copy <= 0.0) return 0.0;
  double x = lambda * age_of_copy;
  if (x < 1e-6) {
    // a - (1 - e^{-x})/lambda ~ lambda a^2 / 2 - lambda^2 a^3 / 6.
    return lambda * age_of_copy * age_of_copy *
           (0.5 - x / 6.0);
  }
  return age_of_copy - (1.0 - std::exp(-x)) / lambda;
}

double BatchShadowingAge(double lambda, double period,
                         double crawl_window) {
  if (lambda <= 0.0 || period <= 0.0 || crawl_window <= 0.0) return 0.0;
  const double t = period, w = crawl_window;
  double xt = lambda * t, xw = lambda * w;
  if (xt + xw < 1e-4) {
    // Series: A ~ lambda ((T^2 + w^2)/6 + T w / 4).
    return lambda * ((t * t + w * w) / 6.0 + t * w / 4.0);
  }
  // Closed form (derivation in tests/freshness_age_test.cc):
  //   A = (T + w)/2 - 1/lambda
  //       + (1 - e^{-lambda T})(1 - e^{-lambda w}) / (lambda^3 T w).
  return (t + w) / 2.0 - 1.0 / lambda +
         (-std::expm1(-xt)) * (-std::expm1(-xw)) /
             (lambda * lambda * lambda * t * w);
}

double SteadyShadowingAge(double lambda, double period) {
  return BatchShadowingAge(lambda, period, period);
}

double AgePeriodSensitivity(double lambda, double period) {
  if (lambda <= 0.0 || period <= 0.0) return 0.0;
  double x = lambda * period;
  if (x < 1e-4) {
    // 1/2 - g(x)/x^2 with g(x) ~ x^2/2 - x^3/3: sensitivity ~ x/3.
    return x / 3.0;
  }
  return 0.5 - G(x) / (x * x);
}

}  // namespace webevo::freshness
