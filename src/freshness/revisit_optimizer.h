#ifndef WEBEVO_FRESHNESS_REVISIT_OPTIMIZER_H_
#define WEBEVO_FRESHNESS_REVISIT_OPTIMIZER_H_

#include <vector>

#include "util/status.h"

namespace webevo::freshness {

/// A group of pages sharing one change rate.
struct RateGroup {
  double rate = 0.0;    ///< changes per day (lambda)
  double weight = 1.0;  ///< number of pages in the group
};

/// An assignment of revisit frequencies to rate groups.
struct Allocation {
  /// Visits per day for each group's pages (same order as the input).
  std::vector<double> frequency;
  /// Weighted average freshness achieved by the assignment.
  double freshness = 0.0;
  /// Lagrange multiplier at the optimum (0 for non-optimal policies).
  double multiplier = 0.0;
};

/// Computes freshness-optimal revisit frequencies under a crawl budget —
/// the variable-frequency policy of Section 4 (choice 3) whose shape is
/// Figure 9, following [CGM99b].
///
/// Problem: maximize sum_i w_i F(lambda_i, f_i) subject to
/// sum_i w_i f_i = budget, f_i >= 0, where F(lambda, f) =
/// (1 - e^{-lambda/f}) * f / lambda is the time-averaged freshness of a
/// Poisson page revisited every 1/f days.
///
/// F is concave and increasing in f with marginal value
/// dF/df = (1 - e^{-x} - x e^{-x}) / lambda at x = lambda / f, which is
/// bounded by 1/lambda: the faster a page changes, the *less* a visit
/// can ever be worth. The KKT conditions therefore equalise marginal
/// value across visited pages and give f = 0 to pages whose rate exceeds
/// 1/multiplier — reproducing the paper's counter-intuitive result that
/// beyond some change frequency the optimal revisit frequency *falls*
/// (and eventually the crawler should give up on the page entirely, as
/// in the p1/p2 example of Section 4).
class RevisitOptimizer {
 public:
  /// Time-averaged freshness of one page: F(lambda, f). F = 1 for
  /// lambda <= 0; F = 0 for f <= 0 (never synced) when lambda > 0.
  static double FreshnessAt(double rate, double frequency);

  /// Optimal allocation. `budget` is total visits/day over all pages
  /// (sum of weights * frequency). Requires positive budget, positive
  /// weights, non-negative rates, and at least one group.
  static StatusOr<Allocation> Optimize(const std::vector<RateGroup>& groups,
                                       double budget);

  /// Baseline: every page visited at the same frequency
  /// budget / total_weight (the fixed-frequency policy).
  static StatusOr<Allocation> Uniform(const std::vector<RateGroup>& groups,
                                      double budget);

  /// Baseline: frequency proportional to change rate (the intuitive
  /// policy the paper shows can lose to uniform).
  static StatusOr<Allocation> Proportional(
      const std::vector<RateGroup>& groups, double budget);

  /// Weighted average freshness of an arbitrary assignment.
  static StatusOr<double> EvaluateFreshness(
      const std::vector<RateGroup>& groups,
      const std::vector<double>& frequency);

  /// Optimal frequency for a single page of change rate `rate` at
  /// Lagrange multiplier `multiplier` (as returned in
  /// Allocation::multiplier). Lets a crawler price *any* page against a
  /// solved allocation without re-optimising: the UpdateModule stores
  /// the multiplier and maps each page's estimated rate through this.
  /// Returns 0 for pages not worth visiting (rate = 0, or rate >=
  /// 1/multiplier).
  static double FrequencyAtMultiplier(double rate, double multiplier);
};

}  // namespace webevo::freshness

#endif  // WEBEVO_FRESHNESS_REVISIT_OPTIMIZER_H_
