#include "freshness/freshness_tracker.h"

#include <algorithm>
#include <limits>

namespace webevo::freshness {

void FreshnessTracker::AddSample(double time, double value) {
  if (!time_.empty() && time < time_.back()) return;
  time_.push_back(time);
  value_.push_back(value);
}

double FreshnessTracker::TimeAverage(double from, double to) const {
  if (time_.size() < 2 || to <= from) return 0.0;
  double area = 0.0, span = 0.0;
  for (size_t i = 1; i < time_.size(); ++i) {
    double t0 = std::max(time_[i - 1], from);
    double t1 = std::min(time_[i], to);
    double dt_full = time_[i] - time_[i - 1];
    if (t1 <= t0 || dt_full <= 0.0) continue;
    auto at = [&](double t) {
      double a = (t - time_[i - 1]) / dt_full;
      return value_[i - 1] + a * (value_[i] - value_[i - 1]);
    };
    area += 0.5 * (at(t0) + at(t1)) * (t1 - t0);
    span += t1 - t0;
  }
  return span > 0.0 ? area / span : 0.0;
}

double FreshnessTracker::TimeAverage() const {
  if (time_.size() < 2) return value_.empty() ? 0.0 : value_.front();
  return TimeAverage(time_.front(), time_.back());
}

double FreshnessTracker::MinValue() const {
  if (value_.empty()) return 0.0;
  return *std::min_element(value_.begin(), value_.end());
}

double FreshnessTracker::MaxValue() const {
  if (value_.empty()) return 0.0;
  return *std::max_element(value_.begin(), value_.end());
}

void FreshnessTracker::Clear() {
  time_.clear();
  value_.clear();
}

}  // namespace webevo::freshness
