#include "freshness/revisit_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace webevo::freshness {
namespace {

// Marginal-value kernel g(x) = 1 - e^{-x} - x e^{-x}, increasing from
// g(0) = 0 to g(inf) = 1. dF/df = g(lambda / f) / lambda.
double G(double x) { return 1.0 - std::exp(-x) - x * std::exp(-x); }

// Inverse of G on (0, 1) by bisection. g is strictly increasing, so
// this is well defined; 200 halvings of [1e-12, 745] reach full double
// precision (745 keeps e^{-x} above the denormal range).
double InverseG(double y) {
  double lo = 1e-12, hi = 745.0;
  if (y <= G(lo)) return lo;
  if (y >= G(hi)) return hi;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (G(mid) < y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Status ValidateInput(const std::vector<RateGroup>& groups, double budget) {
  if (groups.empty()) return Status::InvalidArgument("no rate groups");
  if (budget <= 0.0) return Status::InvalidArgument("budget must be > 0");
  for (const auto& g : groups) {
    if (g.rate < 0.0) return Status::InvalidArgument("negative rate");
    if (g.weight <= 0.0) return Status::InvalidArgument("weight must be > 0");
  }
  return Status::Ok();
}

// Optimal frequency of a single page with rate `lambda` at multiplier
// `mu`: 0 if the page is not worth visiting, else lambda / g^{-1}(mu *
// lambda).
double FrequencyAt(double lambda, double mu) {
  if (lambda <= 0.0) return 0.0;  // never changes: a visit buys nothing
  double y = mu * lambda;
  if (y >= 1.0) return 0.0;  // marginal value below mu everywhere
  return lambda / InverseG(y);
}

double TotalVisits(const std::vector<RateGroup>& groups, double mu) {
  double total = 0.0;
  for (const auto& g : groups) total += g.weight * FrequencyAt(g.rate, mu);
  return total;
}

}  // namespace

double RevisitOptimizer::FrequencyAtMultiplier(double rate,
                                               double multiplier) {
  return FrequencyAt(rate, multiplier);
}

double RevisitOptimizer::FreshnessAt(double rate, double frequency) {
  if (rate <= 0.0) return 1.0;
  if (frequency <= 0.0) return 0.0;
  double x = rate / frequency;
  if (x < 1e-8) return 1.0 - x / 2.0 + x * x / 6.0;
  return (1.0 - std::exp(-x)) / x;
}

StatusOr<double> RevisitOptimizer::EvaluateFreshness(
    const std::vector<RateGroup>& groups,
    const std::vector<double>& frequency) {
  if (groups.size() != frequency.size()) {
    return Status::InvalidArgument("frequency size mismatch");
  }
  double total_weight = 0.0, sum = 0.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    total_weight += groups[i].weight;
    sum += groups[i].weight * FreshnessAt(groups[i].rate, frequency[i]);
  }
  if (total_weight <= 0.0) return Status::InvalidArgument("zero weight");
  return sum / total_weight;
}

StatusOr<Allocation> RevisitOptimizer::Optimize(
    const std::vector<RateGroup>& groups, double budget) {
  Status st = ValidateInput(groups, budget);
  if (!st.ok()) return st;

  bool any_positive = false;
  for (const auto& g : groups) any_positive |= g.rate > 0.0;
  Allocation alloc;
  alloc.frequency.assign(groups.size(), 0.0);
  if (!any_positive) {
    // Nothing ever changes; freshness is 1 with no visits at all.
    alloc.freshness = 1.0;
    return alloc;
  }

  // TotalVisits(mu) decreases monotonically from +inf (mu -> 0) to 0
  // (mu >= 1/min positive rate); bisect for the budget.
  double hi = 0.0;
  for (const auto& g : groups) {
    if (g.rate > 0.0) hi = std::max(hi, 1.0 / g.rate);
  }
  double lo = hi;
  while (TotalVisits(groups, lo) < budget) {
    lo /= 2.0;
    if (lo < 1e-300) break;
  }
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (TotalVisits(groups, mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double mu = 0.5 * (lo + hi);
  for (size_t i = 0; i < groups.size(); ++i) {
    alloc.frequency[i] = FrequencyAt(groups[i].rate, mu);
  }
  alloc.multiplier = mu;
  alloc.freshness = *EvaluateFreshness(groups, alloc.frequency);
  return alloc;
}

StatusOr<Allocation> RevisitOptimizer::Uniform(
    const std::vector<RateGroup>& groups, double budget) {
  Status st = ValidateInput(groups, budget);
  if (!st.ok()) return st;
  double total_weight = 0.0;
  for (const auto& g : groups) total_weight += g.weight;
  Allocation alloc;
  alloc.frequency.assign(groups.size(), budget / total_weight);
  alloc.freshness = *EvaluateFreshness(groups, alloc.frequency);
  return alloc;
}

StatusOr<Allocation> RevisitOptimizer::Proportional(
    const std::vector<RateGroup>& groups, double budget) {
  Status st = ValidateInput(groups, budget);
  if (!st.ok()) return st;
  double weighted_rate = 0.0;
  for (const auto& g : groups) weighted_rate += g.weight * g.rate;
  Allocation alloc;
  alloc.frequency.assign(groups.size(), 0.0);
  if (weighted_rate <= 0.0) {
    alloc.freshness = 1.0;
    return alloc;
  }
  for (size_t i = 0; i < groups.size(); ++i) {
    alloc.frequency[i] = budget * groups[i].rate / weighted_rate;
  }
  alloc.freshness = *EvaluateFreshness(groups, alloc.frequency);
  return alloc;
}

}  // namespace webevo::freshness
