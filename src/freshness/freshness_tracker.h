#ifndef WEBEVO_FRESHNESS_FRESHNESS_TRACKER_H_
#define WEBEVO_FRESHNESS_FRESHNESS_TRACKER_H_

#include <cstddef>
#include <vector>

namespace webevo::freshness {

/// Accumulates a (time, value) series during a simulation — typically
/// the measured freshness of a crawler's collection — and reports
/// time-weighted summaries, the quantities Table 2 and Figures 7/8
/// compare.
///
/// Samples must be added with non-decreasing timestamps.
class FreshnessTracker {
 public:
  /// Records `value` at `time`. Samples at non-monotonic times are
  /// dropped (the simulation clock only moves forward).
  void AddSample(double time, double value);

  std::size_t size() const { return time_.size(); }
  bool empty() const { return time_.empty(); }
  const std::vector<double>& times() const { return time_; }
  const std::vector<double>& values() const { return value_; }

  /// Trapezoidal time-average over [from, to] intersected with the
  /// sampled range; 0 if fewer than two samples overlap it.
  double TimeAverage(double from, double to) const;

  /// Time-average over the full sampled range.
  double TimeAverage() const;

  double MinValue() const;
  double MaxValue() const;

  void Clear();

 private:
  std::vector<double> time_;
  std::vector<double> value_;
};

}  // namespace webevo::freshness

#endif  // WEBEVO_FRESHNESS_FRESHNESS_TRACKER_H_
