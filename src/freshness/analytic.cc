#include "freshness/analytic.h"

#include <algorithm>
#include <cmath>

namespace webevo::freshness {
namespace {

// (1 - e^{-x}) / x, numerically stable near 0.
double OneMinusExpOverX(double x) {
  if (x < 1e-8) return 1.0 - x / 2.0 + x * x / 6.0;
  return (1.0 - std::exp(-x)) / x;
}

StatusOr<FreshnessCurve> SampleCurve(
    const CurveSpec& spec, double (*point)(const CurveSpec&, double)) {
  if (spec.lambda < 0.0) return Status::InvalidArgument("negative lambda");
  if (spec.period <= 0.0) return Status::InvalidArgument("period <= 0");
  if (spec.crawl_window <= 0.0 || spec.crawl_window > spec.period) {
    return Status::InvalidArgument("crawl_window not in (0, period]");
  }
  if (spec.samples < 2 || spec.horizon <= 0.0) {
    return Status::InvalidArgument("need horizon > 0 and >= 2 samples");
  }
  FreshnessCurve curve;
  curve.time.reserve(static_cast<size_t>(spec.samples));
  curve.freshness.reserve(static_cast<size_t>(spec.samples));
  for (int i = 0; i < spec.samples; ++i) {
    double t = spec.horizon * static_cast<double>(i) /
               static_cast<double>(spec.samples - 1);
    curve.time.push_back(t);
    curve.freshness.push_back(point(spec, t));
  }
  return curve;
}

// Freshness contribution of pages synced uniformly over sync offsets
// [a, b) within a window of width `width`, observed `elapsed_from_a`
// days after offset a: (1/width) * integral_a^b e^{-lambda (t - u)} du
// with t - a = elapsed_from_a.
double UniformSyncSegment(double lambda, double width, double a, double b,
                          double elapsed_from_a) {
  if (b <= a || width <= 0.0) return 0.0;
  if (lambda <= 0.0) return (b - a) / width;
  // integral_a^b e^{-lambda (a + elapsed - u)} du
  //   = (e^{-lambda (a + elapsed - b)} - e^{-lambda elapsed}) / lambda
  double upper = std::exp(-lambda * (elapsed_from_a - (b - a)));
  double lower = std::exp(-lambda * elapsed_from_a);
  return (upper - lower) / (lambda * width);
}

// --- Point evaluators; all assume cold start at t = 0 -----------------

double BatchInPlacePoint(const CurveSpec& s, double t) {
  const double T = s.period, w = s.crawl_window, lambda = s.lambda;
  const double cycle = std::floor(t / T);
  const double tau = t - cycle * T;
  double f = 0.0;
  if (tau < w) {
    // Pages already crawled this cycle, at offsets u in [0, tau].
    f += UniformSyncSegment(lambda, w, 0.0, tau, tau);
    // Pages pending this cycle: last synced in the previous cycle at
    // offsets u in (tau, w), i.e. tau + T - u days ago (the earliest,
    // u = tau, was synced exactly T days ago). Cold in cycle 0.
    if (cycle >= 1.0) {
      f += UniformSyncSegment(lambda, w, tau, w, /*elapsed_from_a=*/T);
    }
  } else {
    // All pages synced this cycle at offsets [0, w).
    f += UniformSyncSegment(lambda, w, 0.0, w, tau);
  }
  return f;
}

double SteadyInPlacePoint(const CurveSpec& s, double t) {
  const double T = s.period, lambda = s.lambda;
  const double cycle = std::floor(t / T);
  const double tau = t - cycle * T;
  double f = UniformSyncSegment(lambda, T, 0.0, tau, tau);
  if (cycle >= 1.0) {
    // Pending pages were synced in the previous sweep, tau + T - u ago.
    f += UniformSyncSegment(lambda, T, tau, T, T);
  }
  return f;
}

double SteadyShadowCrawlerPoint(const CurveSpec& s, double t) {
  const double T = s.period, lambda = s.lambda;
  const double tau = t - std::floor(t / T) * T;
  // Shadow space restarts from scratch each cycle.
  return UniformSyncSegment(lambda, T, 0.0, tau, tau);
}

double SteadyShadowCurrentPoint(const CurveSpec& s, double t) {
  const double T = s.period, lambda = s.lambda;
  const double cycle = std::floor(t / T);
  if (cycle < 1.0) return 0.0;  // nothing swapped in yet
  const double tau = t - cycle * T;
  // Serving the set crawled over the whole previous cycle: a page
  // crawled at offset u is now tau + T - u old.
  return UniformSyncSegment(lambda, T, 0.0, T, tau + T);
}

double BatchShadowCrawlerPoint(const CurveSpec& s, double t) {
  const double T = s.period, w = s.crawl_window, lambda = s.lambda;
  const double tau = t - std::floor(t / T) * T;
  if (tau < w) return UniformSyncSegment(lambda, w, 0.0, tau, tau);
  return UniformSyncSegment(lambda, w, 0.0, w, tau);
}

double BatchShadowCurrentPoint(const CurveSpec& s, double t) {
  const double T = s.period, w = s.crawl_window, lambda = s.lambda;
  const double cycle = std::floor(t / T);
  const double tau = t - cycle * T;
  if (tau >= w) {
    // Swapped at offset w: serving this cycle's crawl.
    return UniformSyncSegment(lambda, w, 0.0, w, tau);
  }
  if (cycle < 1.0) return 0.0;  // empty until the first swap
  // Before the swap: still serving the previous cycle's crawl.
  return UniformSyncSegment(lambda, w, 0.0, w, tau + T);
}

}  // namespace

double InPlaceFreshness(double lambda, double period) {
  if (lambda <= 0.0) return 1.0;
  return OneMinusExpOverX(lambda * period);
}

double SteadyShadowingFreshness(double lambda, double period) {
  double f = InPlaceFreshness(lambda, period);
  return f * f;
}

double BatchShadowingFreshness(double lambda, double period,
                               double crawl_window) {
  if (lambda <= 0.0) return 1.0;
  return OneMinusExpOverX(lambda * period) *
         OneMinusExpOverX(lambda * crawl_window);
}

double InPlaceAge(double lambda, double period) {
  if (lambda <= 0.0 || period <= 0.0) return 0.0;
  double t = period;
  double x = lambda * t;
  if (x < 1e-4) {
    // Series expansion: T/2 - 1/lambda + (1-e^{-x})/(lambda x)
    //   = lambda T^2 / 6 - lambda^2 T^3 / 24 + ...
    // avoids the catastrophic cancellation of the closed form.
    return lambda * t * t / 6.0 - lambda * lambda * t * t * t / 24.0;
  }
  return t / 2.0 - 1.0 / lambda +
         (1.0 - std::exp(-lambda * t)) / (lambda * lambda * t);
}

StatusOr<FreshnessCurve> BatchInPlaceCurve(const CurveSpec& spec) {
  return SampleCurve(spec, &BatchInPlacePoint);
}

StatusOr<FreshnessCurve> SteadyInPlaceCurve(const CurveSpec& spec) {
  return SampleCurve(spec, &SteadyInPlacePoint);
}

StatusOr<FreshnessCurve> SteadyShadowingCurve(const CurveSpec& spec,
                                              CurveKind kind) {
  return SampleCurve(spec, kind == CurveKind::kCrawlerCollection
                               ? &SteadyShadowCrawlerPoint
                               : &SteadyShadowCurrentPoint);
}

StatusOr<FreshnessCurve> BatchShadowingCurve(const CurveSpec& spec,
                                             CurveKind kind) {
  return SampleCurve(spec, kind == CurveKind::kCrawlerCollection
                               ? &BatchShadowCrawlerPoint
                               : &BatchShadowCurrentPoint);
}

double CurveTimeAverage(const FreshnessCurve& curve, double from,
                        double to) {
  if (curve.time.size() < 2 || to <= from) return 0.0;
  double area = 0.0;
  double span = 0.0;
  for (size_t i = 1; i < curve.time.size(); ++i) {
    double t0 = std::max(curve.time[i - 1], from);
    double t1 = std::min(curve.time[i], to);
    if (t1 <= t0) continue;
    // Trapezoid over the clipped segment; endpoints interpolate.
    double dt_full = curve.time[i] - curve.time[i - 1];
    if (dt_full <= 0.0) continue;
    auto at = [&](double t) {
      double a = (t - curve.time[i - 1]) / dt_full;
      return curve.freshness[i - 1] +
             a * (curve.freshness[i] - curve.freshness[i - 1]);
    };
    area += 0.5 * (at(t0) + at(t1)) * (t1 - t0);
    span += t1 - t0;
  }
  return span > 0.0 ? area / span : 0.0;
}

}  // namespace webevo::freshness
