#ifndef WEBEVO_CRAWLER_SNAPSHOT_H_
#define WEBEVO_CRAWLER_SNAPSHOT_H_

#include <istream>
#include <ostream>
#include <string>

#include "crawler/all_urls.h"
#include "crawler/collection.h"
#include "crawler/sharded_collection.h"
#include "crawler/sharded_frontier.h"
#include "crawler/update_module.h"
#include "util/status.h"

namespace webevo::crawler {

class IncrementalCrawler;
class PeriodicCrawler;

/// Durable snapshots of the crawler's local state.
///
/// A crawler restart should resume from its stored collection rather
/// than recrawl the web from scratch — the local collection is the
/// asset the whole architecture exists to maintain. The format is a
/// versioned, line-oriented text format with an FNV-1a integrity
/// trailer, so truncated or corrupted snapshots are rejected rather
/// than silently loaded.
///
/// Every writer emits records in canonical (site, slot, incarnation)
/// order — never hash-map or shard order — so equal logical state
/// produces equal bytes at every shard count: the N=1 and N=8 runs of
/// one simulation snapshot to identical files.
///
/// Format (one record per line, space-separated):
///   webevo-collection 1 <capacity> <count>
///   E <site> <slot> <incarnation> <page> <version> <checksum.lo>
///     <checksum.hi> <crawled_at> <importance> <nlinks> [<s> <p> <i>]*
///   ... (count entries)
///   webevo-checksum <fnv64 of everything above>
///
/// AllUrls snapshots are analogous with `U` records carrying
/// (first_seen, in_links, dead).
///
/// UpdateModule snapshots (version 2) carry the estimator kind and the
/// page / site / probe-stream counts in the header, one `G` record with
/// the global scheduling state (Lagrange multiplier, proportional
/// normaliser, mean importance, rebalance count, frozen page count),
/// one `P` record per tracked page (visit history, flags, flattened
/// estimator state), one `S` record per site aggregate (site-level
/// statistics mode), and one `R` record per materialised per-site
/// probe RNG stream (its four xoshiro lanes).
///
/// ShardedFrontier snapshots carry the global counters (next sequence
/// number, front-insert offset) in the header and one `F` record per
/// queued URL with its exact (when, seq) key, ordered by seq — so a
/// restored frontier pops in exactly the order the checkpointed one
/// would have, revisit timing included.

/// Writes `collection` to `out`.
Status SaveCollection(const Collection& collection, std::ostream& out);
Status SaveCollection(const ShardedCollection& collection,
                      std::ostream& out);

/// Reads a collection snapshot. Fails with InvalidArgument on format
/// or integrity errors; the returned collection carries the capacity
/// stored in the snapshot.
StatusOr<Collection> LoadCollection(std::istream& in);

/// Reads a collection snapshot into a ShardedCollection with
/// `num_shards` shards (the snapshot itself is shard-count agnostic).
StatusOr<ShardedCollection> LoadShardedCollection(std::istream& in,
                                                  int num_shards);

/// Writes `all_urls` to `out`.
Status SaveAllUrls(const AllUrls& all_urls, std::ostream& out);

/// Reads an AllUrls snapshot into `num_shards` internal shards.
StatusOr<AllUrls> LoadAllUrls(std::istream& in, int num_shards = 1);

/// Writes `module`'s learned state (estimator statistics, per-page
/// visit history, rebalance outputs, per-site probe RNG streams) to
/// `out`. The paper's change-rate estimates are the incremental
/// crawler's slowest-won asset — a restart that drops them recrawls
/// near-blind for weeks.
Status SaveUpdateModule(const UpdateModule& module, std::ostream& out);

/// Restores a SaveUpdateModule snapshot into `module`, replacing its
/// learned state. `module` must have been constructed with the same
/// configuration (its shard count may differ — records re-route); the
/// estimator kind is validated against the header.
Status LoadUpdateModule(std::istream& in, UpdateModule* module);

/// Writes the frontier's scheduled times to `out`.
Status SaveFrontier(const ShardedFrontier& frontier, std::ostream& out);

/// Restores a frontier snapshot into `num_shards` shard heaps; the pop
/// order is bit-identical to the saved frontier's at any shard count.
StatusOr<ShardedFrontier> LoadFrontier(std::istream& in, int num_shards);

/// Convenience file wrappers.
Status SaveCollectionToFile(const Collection& collection,
                            const std::string& path);
Status SaveCollectionToFile(const ShardedCollection& collection,
                            const std::string& path);
StatusOr<Collection> LoadCollectionFromFile(const std::string& path);

/// --- Whole-crawler checkpoints --------------------------------------
///
/// SaveCrawler bundles *everything* a restart needs into one versioned
/// container file, so a restored crawler is bit-identical to one that
/// never stopped — not just the four snapshot streams, but the crawl
/// clock, housekeeping timers, batch counter, politeness state,
/// pending admissions and counters that the individual Save* calls
/// cannot see.
///
/// Container format (text):
///   webevo-crawler 1 <incremental|periodic> <nsections>
///   S <name> <length-bytes> <fnv64-of-bytes>     (nsections records)
///   webevo-checksum <fnv64 of the header lines>
///   <section bytes, concatenated in table order>
/// Each section is itself a trailer-framed snapshot stream; the table's
/// per-section length + checksum framing detects truncation and
/// corruption *before* any section is parsed, and every section is
/// additionally verified by its own trailer. Nothing may follow the
/// last section's bytes.
///
/// Incremental sections: meta (clock, timers, batch counter, counters
/// including the deterministic capacity-lease ledger — meta format
/// v2), collection, allurls, update, frontier, polite (per-site
/// last-access), tracker (freshness series), pending (the in-flight
/// lease state: URLs admitted toward collection slots but not yet
/// crawled, merged canonically across the owner shards and re-split
/// on load), and — with include_web — web (the simulated web's
/// evolution state; see simweb/simulated_web.h). Periodic sections:
/// meta, collection-current
/// [, collection-shadow], bfs (BFS frontier in queue order), seen
/// (cycle seen-set), polite, tracker [, web].
///
/// Every section is canonical — equal logical state produces equal
/// bytes at every shard count — so a checkpoint saved at N = 8 loads
/// at N = 1 (and vice versa), and two runs in the same state write
/// byte-identical files. Wall-clock engine phase timings are
/// deliberately *not* checkpointed (they are not reproducible) and
/// restart at zero after a restore. Traffic accounting is optional
/// (options.module_traffic): the per-*module* split is shard-layout
/// dependent, so the "traffic" section carries the pool-level
/// *aggregate* — absolute-day fetch histogram plus global counters, a
/// pure function of the fetch stream and therefore canonical — and a
/// restore folds it in as a carried-over baseline (the live modules
/// restart their own ledgers at zero).
///
/// Restores are staged: LoadCrawler validates the container and every
/// section before touching `crawler`, so a corrupt checkpoint never
/// leaves it half-loaded. The crawler must be constructed against the
/// same configuration (its crawl_parallelism may differ) and, when the
/// checkpoint carries a web section, a web built from the same
/// WebConfig.
struct CrawlerCheckpointOptions {
  /// Bundle the simulated web's evolution state. Required for
  /// bit-identical resume in a fresh process; skip only when the
  /// resuming crawler shares the saving process's live web object.
  bool include_web = true;
  /// Bundle the crawl-module pool's aggregate traffic accounting (the
  /// "traffic" section) so a resumed run's traffic report covers the
  /// whole crawl, not just the post-resume tail.
  bool module_traffic = false;
};

/// Writes a whole-crawler checkpoint. Fails with FailedPrecondition if
/// the engine is mid-batch (checkpoints are only taken at batch
/// boundaries, where every shard-owned structure is at rest).
Status SaveCrawler(const IncrementalCrawler& crawler, std::ostream& out,
                   const CrawlerCheckpointOptions& options = {});
Status SaveCrawler(const PeriodicCrawler& crawler, std::ostream& out,
                   const CrawlerCheckpointOptions& options = {});

/// Restores a checkpoint into a freshly constructed crawler (same
/// config; shard count free). Rejects kind mismatches, unknown
/// versions, truncated or corrupted sections with InvalidArgument.
Status LoadCrawler(std::istream& in, IncrementalCrawler* crawler);
Status LoadCrawler(std::istream& in, PeriodicCrawler* crawler);

/// Crash-consistent file wrappers: the container is staged to a temp
/// file, fsync'd, and atomically renamed over `path` — a crash leaves
/// either the previous checkpoint or the new one, never a torn file.
Status SaveCrawlerToFile(const IncrementalCrawler& crawler,
                         const std::string& path,
                         const CrawlerCheckpointOptions& options = {});
Status SaveCrawlerToFile(const PeriodicCrawler& crawler,
                         const std::string& path,
                         const CrawlerCheckpointOptions& options = {});
Status LoadCrawlerFromFile(const std::string& path,
                           IncrementalCrawler* crawler);
Status LoadCrawlerFromFile(const std::string& path,
                           PeriodicCrawler* crawler);

/// --- Incremental checkpoints ----------------------------------------
///
/// The O(dirty) checkpoint mode behind
/// IncrementalCrawlerConfig::checkpoint_incremental (docs/STORAGE.md):
/// a full base image at `path` plus a write-ahead delta log of sealed
/// per-batch segments at `path + ".deltas"` (storage/delta_log.h).
///
/// The first CheckpointIncremental of a process writes the base with
/// SaveCrawlerToFile and truncates the delta log (rebase); every later
/// call appends one sealed segment whose cost is proportional to what
/// actually changed since the previous checkpoint. A segment carries
/// the cheap whole-state sections verbatim (meta, polite, pending,
/// failure, tracker and — with options.module_traffic — traffic) and
/// *delta* sections for the big state:
///   dcoll      E upserts + `D site slot inc` tombstones for the
///              collection's dirty keys (store-level dirty tracking)
///   dallurls   U upserts for AllUrls' dirty keys (never erased)
///   dupdate    the UpdateModule's G globals, dirty P records /
///              X page-tombstones, dirty S aggregates, dirty R streams
///   dfrontier  F upserts with exact (when, seq) + D tombstones for
///              the frontier marking ledger, plus the global counters
///   dweb       the simulated web's dirty-site delta (web_snapshot.h),
///              when options.include_web
/// Every delta section lists records in canonical URL-identity / site
/// order over dirty sets that are pure functions of the simulation, so
/// segments — like full checkpoints — are byte-identical at every
/// shard count.
///
/// LoadCrawlerWithDeltasFromFile restores the base, then replays every
/// sealed segment whose batch counter exceeds the base's (apply is
/// idempotent: globals are absolute, upserts replace, tombstones
/// tolerate absence). A torn tail after the last seal — the
/// crash-between-append-and-seal case — is ignored, exactly as
/// ReadDeltaLog reports it. The restored crawler is byte-identical to
/// one restored from a full checkpoint taken at the same batch.
///
/// Only the incremental crawler has this mode: its workload is
/// in-place-update dominated, so dirty sets are small between
/// checkpoints. The periodic crawler rewrites its whole collection
/// every cycle — its "delta" is the collection — so it keeps full
/// checkpoints.
Status CheckpointIncremental(IncrementalCrawler* crawler,
                             const std::string& path,
                             const CrawlerCheckpointOptions& options = {});
Status LoadCrawlerWithDeltasFromFile(const std::string& path,
                                     IncrementalCrawler* crawler);

/// Delta snapshot of the UpdateModule's learned state: the dirty
/// page / site-aggregate / probe-stream records only, plus the cheap
/// scheduling globals. Exposed for the property tests; Apply mutates
/// `module` in place (globals absolute, records upserted, tombstones
/// erased) only after the whole stream verifies.
Status SaveUpdateModuleDelta(const UpdateModule& module,
                             std::ostream& out);
Status ApplyUpdateModuleDelta(std::istream& in, UpdateModule* module);

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_SNAPSHOT_H_
