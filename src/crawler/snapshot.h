#ifndef WEBEVO_CRAWLER_SNAPSHOT_H_
#define WEBEVO_CRAWLER_SNAPSHOT_H_

#include <istream>
#include <ostream>
#include <string>

#include "crawler/all_urls.h"
#include "crawler/collection.h"
#include "crawler/update_module.h"
#include "util/status.h"

namespace webevo::crawler {

/// Durable snapshots of the crawler's local state.
///
/// A crawler restart should resume from its stored collection rather
/// than recrawl the web from scratch — the local collection is the
/// asset the whole architecture exists to maintain. The format is a
/// versioned, line-oriented text format with an FNV-1a integrity
/// trailer, so truncated or corrupted snapshots are rejected rather
/// than silently loaded.
///
/// Format (one record per line, space-separated):
///   webevo-collection 1 <capacity> <count>
///   E <site> <slot> <incarnation> <page> <version> <checksum.lo>
///     <checksum.hi> <crawled_at> <importance> <nlinks> [<s> <p> <i>]*
///   ... (count entries)
///   webevo-checksum <fnv64 of everything above>
///
/// AllUrls snapshots are analogous with `U` records carrying
/// (first_seen, in_links, dead).
///
/// UpdateModule snapshots carry the estimator kind in the header, one
/// `G` record with the global scheduling state (Lagrange multiplier,
/// proportional normaliser, mean importance, rebalance count, probe
/// RNG lanes), one `P` record per tracked page (visit history, flags,
/// flattened estimator state) and one `S` record per site aggregate
/// (site-level statistics mode).

/// Writes `collection` to `out`.
Status SaveCollection(const Collection& collection, std::ostream& out);

/// Reads a collection snapshot. Fails with InvalidArgument on format
/// or integrity errors; the returned collection carries the capacity
/// stored in the snapshot.
StatusOr<Collection> LoadCollection(std::istream& in);

/// Writes `all_urls` to `out`.
Status SaveAllUrls(const AllUrls& all_urls, std::ostream& out);

/// Reads an AllUrls snapshot.
StatusOr<AllUrls> LoadAllUrls(std::istream& in);

/// Writes `module`'s learned state (estimator statistics, per-page
/// visit history, rebalance outputs, probe RNG) to `out`. The paper's
/// change-rate estimates are the incremental crawler's slowest-won
/// asset — a restart that drops them recrawls near-blind for weeks.
Status SaveUpdateModule(const UpdateModule& module, std::ostream& out);

/// Restores a SaveUpdateModule snapshot into `module`, replacing its
/// learned state. `module` must have been constructed with the same
/// configuration; the estimator kind is validated against the header.
Status LoadUpdateModule(std::istream& in, UpdateModule* module);

/// Convenience file wrappers.
Status SaveCollectionToFile(const Collection& collection,
                            const std::string& path);
StatusOr<Collection> LoadCollectionFromFile(const std::string& path);

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_SNAPSHOT_H_
