#ifndef WEBEVO_CRAWLER_SHARDED_FRONTIER_H_
#define WEBEVO_CRAWLER_SHARDED_FRONTIER_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <set>
#include <vector>

#include "crawler/coll_urls.h"
#include "simweb/url.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace webevo::crawler {

class ShardedFrontier;
Status SaveFrontier(const ShardedFrontier& frontier, std::ostream& out);
StatusOr<ShardedFrontier> LoadFrontier(std::istream& in, int num_shards);

/// A CollUrls frontier split into N shard-local heaps (mithril-style
/// per-shard UrlFrontier), one per CrawlModule shard, with sites
/// partitioned site % N — the same ownership mapping the
/// ShardedCrawlEngine fetches under.
///
/// Behavioural contract: *bit-identical to a single CollUrls* at every
/// shard count. Sequence numbers (the FIFO tie-break) and the
/// front-of-queue key both come from counters global to the frontier,
/// so the merge order over shard heads — earliest `when`, ties broken
/// by global sequence number — is exactly the pop order the one-heap
/// queue would produce. Pop/Peek merge the N shard heads through a
/// tournament tree rebuilt lazily along dirtied leaf-to-root paths, so
/// a pop costs O(log N + log(n/N)) rather than a linear scan of shard
/// heads; Schedule/Remove route to the owning shard (O(log(n/N))).
///
/// The point of the split is PlanSlots: each shard extracts its own
/// due-before-horizon candidates in parallel on the engine's
/// ThreadPool — the heap work that used to serialise the plan phase —
/// and a cheap serial merge then assigns crawl slots deterministically.
/// Push-back rescheduling between batches (Schedule from the apply
/// barrier) lands directly in the owning shard's heap.
class ShardedFrontier {
 public:
  /// Creates `num_shards` shard heaps (>= 1; clamped, matching
  /// CrawlModulePool).
  explicit ShardedFrontier(int num_shards);

  /// Inserts `url` or moves it to position `when` if already present.
  void Schedule(const simweb::Url& url, double when);

  /// Schedules in front of everything currently queued, FIFO among
  /// front-inserts across all shards.
  void ScheduleFront(const simweb::Url& url);

  /// Removes a URL from the frontier; NotFound if absent.
  Status Remove(const simweb::Url& url);

  /// Lease-lane scheduling: inserts directly into shard `s` (which
  /// must own `url.site`) with an externally granted (when, seq) key.
  /// The apply pass's shard workers call this concurrently — each for
  /// its own shard — with sequence numbers from per-slot lanes the
  /// serial coordinator granted out of [next_seq(), next_seq() +
  /// width); the global counter itself is untouched until
  /// SettleSeqLease. Lane seqs are assigned by global slot order, so
  /// the FIFO tie-break stays a pure function of the batch at every
  /// shard count (unused lane slots leave harmless gaps).
  void ScheduleLane(std::size_t s, const simweb::Url& url, double when,
                    uint64_t seq) {
    SpecAwareSchedule(s, url, when, seq);
  }

  /// Lease-revocation removal: drops `url` only if its live entry
  /// still carries `seq` (a later reschedule supersedes the admission
  /// and must keep standing). NotFound when absent or superseded.
  Status RemoveIfSeq(const simweb::Url& url, uint64_t seq);

  /// Quarantine reschedule: pushes every frontier entry of `site`
  /// scheduled before `floor` out to `floor`, keeping each entry's
  /// sequence number (entries are deferred, never dropped). Same
  /// concurrency contract as ScheduleLane: the apply pass's shard
  /// workers may call this concurrently because shard ShardOf(site)
  /// owns the site and only that worker touches it. Returns how many
  /// entries moved.
  std::size_t RescheduleSiteNotBefore(uint32_t site, double floor) {
    const std::size_t s = ShardOf(site);
    // A lane member of the site would be walked by the sequential
    // quarantine, so the lane must dissolve back into the heap first.
    if (speculating_ && spec_valid_[s]) {
      for (const CollUrls::Entry& e : spec_lane_[s]) {
        if (e.url.site == site) {
          FlushSpecLane(s);
          break;
        }
      }
    }
    const std::size_t moved =
        shards_[s].RescheduleSiteNotBefore(site, floor);
    if (moved > 0) {
      head_dirty_[s] = 1;
      // Moved heap entries land exactly at `floor`, which can sort
      // *inside* the surviving lane's range — the lane would no longer
      // be the prefix of the shard's due order. Flushing on any
      // sub-horizon re-floor keeps reconciliation trivially exact;
      // quarantines are rare enough that the lost reuse is noise.
      if (floor < spec_horizon_) FlushSpecLane(s);
    }
    return moved;
  }

  /// First unissued sequence number — the base of the next lane grant.
  uint64_t next_seq() const { return next_seq_; }

  /// Serial settle of a lane grant: advances the global counter past
  /// the granted range. `next` must be >= next_seq().
  void SettleSeqLease(uint64_t next) { next_seq_ = next; }

  /// Pops the globally earliest-scheduled URL; nullopt if empty.
  std::optional<ScheduledUrl> Pop();

  /// Globally earliest entry without removing it; nullopt if empty.
  std::optional<ScheduledUrl> Peek();

  bool Contains(const simweb::Url& url) const {
    const std::size_t s = ShardOf(url.site);
    if (shards_[s].Contains(url)) return true;
    if (speculating_ && spec_valid_[s]) {
      for (const CollUrls::Entry& e : spec_lane_[s]) {
        if (e.url == url) return true;
      }
    }
    return false;
  }

  /// The live global (when, seq) entry of `url`; nullopt if absent.
  /// Lane-aware: a speculatively extracted entry is still logically in
  /// the frontier, so an intact lane is consulted after the heap.
  std::optional<CollUrls::Entry> LookupEntry(const simweb::Url& url) const {
    const std::size_t s = ShardOf(url.site);
    auto live = shards_[s].LookupEntry(url);
    if (live.has_value()) return live;
    if (speculating_ && spec_valid_[s]) {
      for (const CollUrls::Entry& e : spec_lane_[s]) {
        if (e.url == url) return e;
      }
    }
    return std::nullopt;
  }

  /// Inserts every live URL of `site` into `out` (see
  /// CollUrls::AppendSiteUrls). Lane-aware, like LookupEntry.
  void AppendSiteUrls(uint32_t site,
                      std::set<simweb::Url, simweb::UrlIdentityLess>* out)
      const {
    const std::size_t s = ShardOf(site);
    shards_[s].AppendSiteUrls(site, out);
    if (speculating_ && spec_valid_[s]) {
      for (const CollUrls::Entry& e : spec_lane_[s]) {
        if (e.url.site == site) out->insert(e.url);
      }
    }
  }

  /// The global front-of-queue key offset, paired with next_seq() in
  /// incremental checkpoint segments.
  double front_when() const { return front_when_; }

  /// Restores both global counters from a checkpoint segment. The
  /// shard-local CollUrls counters are untouched — in sharded mode
  /// every insert routes through ScheduleAt with globally assigned
  /// keys, so the per-shard counters are never consulted.
  void RestoreCounters(uint64_t next_seq, double front_when) {
    next_seq_ = next_seq;
    front_when_ = front_when;
  }

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t ShardOf(uint32_t site) const { return site % shards_.size(); }
  const CollUrls& shard(std::size_t i) const { return shards_[i]; }

  /// One batch of crawl slots planned at a constant crawl speed.
  struct SlotPlan {
    /// Planned fetches in slot order; `when` is the assigned slot time.
    std::vector<ScheduledUrl> slots;
    /// owner[i] is the shard that owns slots[i].url.site — stamped
    /// once here at plan time (the merge knows the winning shard), so
    /// the fetch/apply passes reuse it instead of recomputing
    /// site % num_shards per touch.
    std::vector<uint32_t> owner;
    /// The crawl clock after the batch: `horizon` unless planning
    /// stopped early (never happens at a constant rate — idle periods
    /// also advance to the horizon).
    double end_time = 0.0;
    /// Pipeline ledger for this plan: how many shard lanes were
    /// consumed from a still-intact speculative extraction vs
    /// re-extracted because the apply barrier touched the shard.
    /// Lane-level counts depend on the shard layout (like lease
    /// revocations), so they are excluded from determinism
    /// fingerprints.
    uint32_t spec_lanes_reused = 0;
    uint32_t spec_lanes_invalidated = 0;
    bool speculative = false;
  };

  /// Plans one engine batch: starting the slot clock at `start`, pops
  /// due URLs one per crawl slot (one slot every `step` days), idling
  /// forward when the next URL is due later, until the clock reaches
  /// `horizon`. Reproduces the serial CollUrls plan loop bit for bit:
  ///
  ///   1. *extract* (parallel over `threads` when > 1 shard has work):
  ///      each shard pops its own due-before-horizon candidates, at
  ///      most the batch's slot capacity, into a sorted per-shard list;
  ///   2. *merge* (serial, cheap): a deterministic tournament-tree
  ///      merge over the per-shard lists — earliest `when`, ties by
  ///      global sequence number — drives the slot clock and assigns
  ///      slot times;
  ///   3. *restore*: candidates the clock never reached go back to
  ///      their shard heaps with their original (when, seq) keys.
  ///
  /// `threads` may be null (serial extraction); results are identical.
  ///
  /// When a speculation armed by BeginSpeculation matches (start,
  /// horizon, step) exactly, stage 1 consumes the intact per-shard
  /// lanes instead of re-popping the heaps; flushed lanes re-extract.
  /// A non-matching call drains the speculation first and plans from
  /// scratch — either way the produced plan is bit-identical to the
  /// unspeculated one.
  SlotPlan PlanSlots(double start, double horizon, double step,
                     ThreadPool* threads);

  /// --- Speculative (pipelined) planning ------------------------------
  ///
  /// BeginSpeculation arms a double-buffered plan for the *next* batch:
  /// while the current batch is still in fetch, each engine shard
  /// worker calls SpeculateShard(s) — only shard s's owner, touching
  /// only shard-s state — to pop its own due-before-`horizon`
  /// candidates into a per-shard spec lane. The lanes are a cache,
  /// never an alternate truth: a later mutation of shard s either
  /// *absorbs* into the lane — keeping it exactly what fresh
  /// extraction would produce — or flushes it back into the heap with
  /// the original (when, seq) keys, restoring the exact pre-extraction
  /// state before the mutation lands. Inserts absorb
  /// (SpecAwareSchedule): a beyond-horizon reschedule sorts after
  /// every lane entry and lands straight in the heap; a sub-horizon
  /// key of a new url joins the lane at its sorted position; a
  /// removal erases the lane entry and tops the lane back up.
  /// Front-of-queue inserts, sub-horizon reschedules of a lane member,
  /// and quarantine walks that move anything below the horizon flush —
  /// front keys precede everything, and the latter two reorder within
  /// the lane's range. Reads
  /// (Contains/LookupEntry/AppendSiteUrls/size) consult intact lanes.
  /// Pop/Peek and any non-matching PlanSlots drain every lane. The
  /// result: the frontier observable at the apply barrier is exactly
  /// the one the sequential loop would have, and the reconciled plan
  /// is exactly what the sequential loop would have planned.
  void BeginSpeculation(double start, double horizon, double step);

  /// Extracts shard `s`'s candidates into its spec lane. Must only be
  /// called between BeginSpeculation and the next serial frontier op,
  /// by the worker that owns shard s.
  void SpeculateShard(std::size_t s);

  /// Flushes every intact lane back into the shard heaps and disarms
  /// the speculation. No-op when not speculating. Required before
  /// checkpointing (SaveFrontier copies heaps, not lanes).
  void DrainSpeculation();

  bool speculating() const { return speculating_; }

  /// Snapshot/restore of the frontier's scheduled times (entries with
  /// their global (when, seq) keys plus the global counters), in
  /// crawler/snapshot.cc — what makes a restarted crawler pop in
  /// exactly the order the checkpointed one would have.
  friend Status SaveFrontier(const ShardedFrontier& frontier,
                             std::ostream& out);
  friend StatusOr<ShardedFrontier> LoadFrontier(std::istream& in,
                                                int num_shards);

 private:
  /// Refreshes dirty shard heads and replays their tournament paths;
  /// returns the winning shard index, or shards_.size() when every
  /// shard is empty.
  std::size_t RepairAndWinner();

  /// Restores lane `s` into its shard heap (original keys) and marks
  /// it invalidated. Safe from shard s's apply worker: it touches only
  /// shard-s state (heap, lane, per-shard bytes). No-op when the lane
  /// is not intact.
  void FlushSpecLane(std::size_t s) {
    if (!speculating_ || !spec_valid_[s]) return;
    for (const CollUrls::Entry& e : spec_lane_[s]) {
      shards_[s].ScheduleAt(e.url, e.when, e.seq);
    }
    if (!spec_lane_[s].empty()) head_dirty_[s] = 1;
    spec_lane_[s].clear();
    spec_valid_[s] = 0;
    spec_flushed_[s] = 1;
  }

  /// Routes an insert around an intact lane without invalidating it.
  /// A sub-horizon key of a url *not* in the lane joins the lane at
  /// its sorted position (a stale heap entry of the url is dropped —
  /// sequential ScheduleAt *moves* — and the overflow entry past the
  /// slot capacity is evicted back to the heap); an at-or-beyond-
  /// horizon key inserts into the heap, since it sorts after every
  /// lane entry; a beyond-horizon supersede of a lane member erases
  /// the lane entry and inserts the new key into the heap. The one
  /// absorb we refuse — a sub-horizon reschedule of a url already in
  /// the lane — flushes instead: re-keying *within* the lane interacts
  /// with capacity evictions in ways that can strand entries, and a
  /// batch url is never in the next batch's lane, so the case is rare.
  /// An erase that left the lane short tops it back up from the heap,
  /// so the lane stays exactly what fresh extraction against the
  /// flushed heap would produce. Plain heap insert when no lane is
  /// intact. Safe from shard s's apply worker: all touched state is
  /// shard-local, and the spec_* bounds are written only by the serial
  /// BeginSpeculation.
  void SpecAwareSchedule(std::size_t s, const simweb::Url& url,
                         double when, uint64_t seq);

  /// Refills lane `s` from its heap up to the slot capacity after an
  /// erase left it short. Sub-horizon heap entries exist only when the
  /// lane is at capacity and sort at or after the lane's last entry,
  /// so pops land at the tail (sorted insert guards the tie case).
  void TopUpSpecLane(std::size_t s);

  std::vector<CollUrls> shards_;
  // Global counters shared by all shards: the FIFO tie-break sequence
  // and the front-of-queue key offset. Keeping them global is what
  // makes the tournament merge order equal to the single-heap pop
  // order.
  uint64_t next_seq_ = 0;
  double front_when_ = 0.0;

  // Tournament tree over the shard heads. leaves_ is the smallest
  // power of two >= num_shards; node i has children 2i and 2i+1, shard
  // s sits at leaf leaves_ + s, and winner_[1] holds the shard with
  // the globally earliest head (kNoShard for an empty subtree). Heads
  // are cached per shard; any operation that may move a shard's head
  // only sets that shard's dirty byte — one byte per shard, so
  // PlanSlots' parallel extraction can mark its own shard without
  // touching shared state — and Pop/Peek replay the dirty leaf-to-root
  // paths on the serial path, O(log N) per dirty shard.
  static constexpr uint32_t kNoShard = ~0u;
  std::size_t leaves_ = 1;
  std::vector<uint32_t> winner_;
  std::vector<CollUrls::Entry> head_;
  std::vector<uint8_t> head_live_;
  std::vector<uint8_t> head_dirty_;

  // Speculation (double-buffered plan) state. spec_lane_[s] holds
  // shard s's extracted candidates, sorted (when, seq); spec_valid_[s]
  // says the lane is intact (heap untouched since extraction);
  // spec_flushed_[s] records that a lane was invalidated, summed into
  // the SlotPlan ledger at reconcile. All three are per-shard slots so
  // concurrent shard workers never share a word of spec state.
  bool speculating_ = false;
  double spec_start_ = 0.0;
  double spec_horizon_ = 0.0;
  double spec_step_ = 0.0;
  std::size_t spec_max_slots_ = 0;
  std::vector<std::vector<CollUrls::Entry>> spec_lane_;
  std::vector<uint8_t> spec_valid_;
  std::vector<uint8_t> spec_flushed_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_SHARDED_FRONTIER_H_
