#ifndef WEBEVO_CRAWLER_ADMISSION_LEASE_H_
#define WEBEVO_CRAWLER_ADMISSION_LEASE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace webevo::crawler {

/// The capacity-lease admission protocol shared by both crawlers.
///
/// A batch has one frozen admission budget (remaining collection
/// capacity for the incremental crawler, remaining seen-set headroom
/// for the periodic one). The serial coordinator grants every shard a
/// lease over that budget; during the parallel apply pass each shard
/// performs its own greedy-fill admissions against the lease,
/// recording each admission's global (slot, position) coordinates; the
/// serial settle then reconciles the optimistic leases: the first
/// `budget` admissions in global stream order stand, the overdraft is
/// revoked.
///
/// Because every shard's lease carries the full remaining budget, a
/// shard's local greedy admits a *superset* of what the serial
/// frozen-budget greedy would admit from that shard's stream (an
/// admission's position within its shard never exceeds its global
/// position), so settlement only ever revokes — it never has to
/// retro-admit — and the settled outcome equals the serial reference
/// exactly, at every shard count.

/// One admission performed by a shard against its lease, identified by
/// the global stream coordinates that define the serial greedy order:
/// the batch slot that discovered the link and the link's position
/// within that slot's list.
struct AdmissionRef {
  uint32_t slot = 0;
  uint32_t pos = 0;
};

/// An admission revoked at settlement, named by the shard that
/// performed it and its index into that shard's admission list (so the
/// caller can map it back to its own bookkeeping).
struct RevokedAdmission {
  uint32_t shard = 0;
  uint32_t index = 0;
};

/// Settles the batch's leases: `admitted[s]` is shard s's admission
/// list in ascending (slot, pos) order. Returns the admissions past
/// the first `budget` in global (slot, pos) order — ordered the same
/// way — which the caller must undo. Empty whenever the combined
/// admissions fit the budget (the common, uncontended case: O(shards)
/// to discover).
std::vector<RevokedAdmission> SettleAdmissionLease(
    const std::vector<std::vector<AdmissionRef>>& admitted,
    std::size_t budget);

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_ADMISSION_LEASE_H_
