#ifndef WEBEVO_CRAWLER_STORE_CODECS_H_
#define WEBEVO_CRAWLER_STORE_CODECS_H_

#include <cassert>
#include <iomanip>
#include <sstream>
#include <string>

#include "crawler/all_urls.h"
#include "crawler/collection.h"

namespace webevo::crawler {

/// Record codecs for the paged RecordStore backend: each record type
/// round-trips through a compact text form (precision 17 doubles, the
/// same convention as the checkpoint formats, so the paged store's
/// record bytes carry exactly the state the checkpoint would).
///
/// These encodings are a private storage detail — the checkpoint wire
/// formats in snapshot.cc remain the sole durable contract.

struct CollectionEntryCodec {
  static std::string Encode(const CollectionEntry& e) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << e.url.site << ' ' << e.url.slot << ' ' << e.url.incarnation
       << ' ' << e.page << ' ' << e.version << ' ' << e.checksum.lo
       << ' ' << e.checksum.hi << ' ' << e.crawled_at << ' '
       << e.importance << ' ' << e.links.size();
    for (const simweb::Url& link : e.links) {
      os << ' ' << link.site << ' ' << link.slot << ' '
         << link.incarnation;
    }
    return os.str();
  }

  static CollectionEntry Decode(const std::string& bytes) {
    std::istringstream is(bytes);
    CollectionEntry e;
    std::size_t nlinks = 0;
    is >> e.url.site >> e.url.slot >> e.url.incarnation >> e.page >>
        e.version >> e.checksum.lo >> e.checksum.hi >> e.crawled_at >>
        e.importance >> nlinks;
    e.links.resize(nlinks);
    for (std::size_t i = 0; i < nlinks; ++i) {
      is >> e.links[i].site >> e.links[i].slot >> e.links[i].incarnation;
    }
    assert(!is.fail() && "corrupt paged CollectionEntry record");
    return e;
  }
};

struct UrlInfoCodec {
  static std::string Encode(const AllUrls::UrlInfo& info) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << info.first_seen << ' ' << info.in_links << ' '
       << (info.dead ? 1 : 0);
    return os.str();
  }

  static AllUrls::UrlInfo Decode(const std::string& bytes) {
    std::istringstream is(bytes);
    AllUrls::UrlInfo info;
    int dead = 0;
    is >> info.first_seen >> info.in_links >> dead;
    info.dead = dead != 0;
    assert(!is.fail() && "corrupt paged UrlInfo record");
    return info;
  }
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_STORE_CODECS_H_
