#include "crawler/crawl_module.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace webevo::crawler {

StatusOr<simweb::FetchResult> CrawlModule::Crawl(const simweb::Url& url,
                                                 double t) {
  if (config_.enforce_politeness && config_.per_site_delay_days > 0.0 &&
      url.site < last_access_.size() &&
      t < last_access_[url.site] + config_.per_site_delay_days) {
    ++politeness_rejections_;
    return Status::FailedPrecondition("politeness delay not elapsed");
  }
  if (url.site >= last_access_.size()) {
    last_access_.resize(url.site + 1,
                        -std::numeric_limits<double>::infinity());
  }
  last_access_[url.site] = t;

  // Accounting (counts failures too: a 404 still costs a request).
  ++fetch_count_;
  if (!any_fetch_) {
    first_fetch_time_ = t;
    any_fetch_ = true;
  }
  last_fetch_time_ = std::max(last_fetch_time_, t);
  // Absolute-day bucket: floor(t), so histograms from different
  // modules (and from a checkpoint baseline) sum exactly.
  auto day = static_cast<std::size_t>(std::max(0.0, std::floor(t)));
  if (day >= fetches_per_day_.size()) fetches_per_day_.resize(day + 1, 0);
  ++fetches_per_day_[day];

  double latency_days = 0.0;
  auto result = web_->Fetch(url, t, &latency_days);
  if (!result.ok()) ++failure_count_;
  if (latency_days > 0.0) {
    // A slow response or a timeout ties up the connection: the polite
    // window for this site starts when the stall ends, not when the
    // request was issued.
    last_access_[url.site] = t + latency_days;
  }
  return result;
}

void CrawlModule::ExportPoliteness(
    std::vector<std::pair<uint32_t, double>>* out) const {
  for (std::size_t site = 0; site < last_access_.size(); ++site) {
    if (last_access_[site] >
        -std::numeric_limits<double>::infinity()) {
      out->emplace_back(static_cast<uint32_t>(site), last_access_[site]);
    }
  }
}

void CrawlModule::RestorePoliteness(uint32_t site, double last_access) {
  if (site >= last_access_.size()) {
    last_access_.resize(site + 1,
                        -std::numeric_limits<double>::infinity());
  }
  last_access_[site] = last_access;
}

double CrawlModule::NextAllowedTime(uint32_t site) const {
  if (config_.per_site_delay_days <= 0.0 || site >= last_access_.size()) {
    return 0.0;
  }
  return last_access_[site] + config_.per_site_delay_days;
}

double CrawlModule::PeakDailyRate() const {
  uint64_t peak = 0;
  for (uint64_t day : fetches_per_day_) peak = std::max(peak, day);
  return static_cast<double>(peak);
}

double CrawlModule::AverageDailyRate() const {
  if (!any_fetch_) return 0.0;
  double span = std::max(1.0, last_fetch_time_ - first_fetch_time_);
  return static_cast<double>(fetch_count_) / span;
}

void CrawlModule::ResetTraffic() {
  fetch_count_ = 0;
  failure_count_ = 0;
  politeness_rejections_ = 0;
  fetches_per_day_.clear();
  first_fetch_time_ = 0.0;
  last_fetch_time_ = 0.0;
  any_fetch_ = false;
}

}  // namespace webevo::crawler
