#include "crawler/periodic_crawler.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "crawler/admission_lease.h"
#include "crawler/snapshot.h"
#include "serving/view_builder.h"

namespace webevo::crawler {

PeriodicCrawler::PeriodicCrawler(simweb::SimulatedWeb* web,
                                 const PeriodicCrawlerConfig& config)
    : web_(web),
      config_(config),
      store_(config.collection_capacity, config.store),
      inplace_(config.collection_capacity, config.store, "periodic-inplace"),
      engine_(web, config.crawl, config.crawl_parallelism,
              config.retained_views) {
  seen_shards_.resize(static_cast<std::size_t>(engine_.num_shards()));
}

const Collection& PeriodicCrawler::current_collection() const {
  return config_.shadowing ? store_.current() : inplace_;
}

Collection& PeriodicCrawler::target_collection() {
  return config_.shadowing ? store_.shadow() : inplace_;
}

std::size_t PeriodicCrawler::SeenCount() const {
  std::size_t total = 0;
  for (const auto& shard : seen_shards_) total += shard.size();
  return total;
}

bool PeriodicCrawler::SeenInsert(const simweb::Url& url) {
  return seen_shards_[url.site % seen_shards_.size()].insert(url).second;
}

Status PeriodicCrawler::Bootstrap(double t) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("already bootstrapped");
  }
  if (config_.cycle_days <= 0.0 || config_.crawl_window_days <= 0.0 ||
      config_.crawl_window_days > config_.cycle_days) {
    return Status::InvalidArgument("need 0 < window <= cycle");
  }
  now_ = t;
  next_sample_ = t;
  StartCycle(t);
  bootstrapped_ = true;
  return Status::Ok();
}

void PeriodicCrawler::StartCycle(double t) {
  cycle_start_ = t;
  cycle_active_ = true;
  stored_this_cycle_ = 0;
  frontier_.clear();
  for (auto& shard : seen_shards_) shard.clear();
  requeue_counts_.clear();
  for (uint32_t s = 0; s < web_->num_sites(); ++s) {
    simweb::Url root = web_->RootUrl(s);
    frontier_.push_back(root);
    SeenInsert(root);
  }
  if (!config_.shadowing) {
    // The paper's batch crawler updates *all pages in the collection*
    // each crawl: with in-place updates the existing entries join the
    // frontier, so vanished pages are re-fetched, detected dead, and
    // purged (a shadowed cycle rebuilds from scratch instead). The
    // entries join in canonical (site, slot, incarnation) order, never
    // hash-map order — map layout depends on insertion history, which
    // a checkpoint-restored collection does not share with the live
    // one, and the BFS seed order is observable in every fetch time
    // that follows.
    // Seeding is sharded over the engine pool: bucket members by
    // owning shard (site % N), then sort and seen-filter each bucket
    // on its own worker — each worker touches only its shard's
    // seen-set, and the site roots above already claimed their slots
    // serially. A canonical N-way merge then appends in exactly the
    // single globally sorted order (identity order never ties across
    // shards: same site -> same shard, and a collection holds each
    // URL at most once).
    const std::size_t shards = seen_shards_.size();
    std::vector<std::vector<simweb::Url>> members(shards);
    inplace_.ForEach([&](const CollectionEntry& entry) {
      members[entry.url.site % shards].push_back(entry.url);
    });
    std::vector<std::size_t> targets;
    for (std::size_t s = 0; s < shards; ++s) {
      if (!members[s].empty()) targets.push_back(s);
    }
    engine_.threads().RunForIndices(targets, [&](std::size_t s) {
      std::vector<simweb::Url>& urls = members[s];
      std::sort(urls.begin(), urls.end(), simweb::UrlIdentityLess{});
      std::size_t kept = 0;
      for (const simweb::Url& url : urls) {
        if (SeenInsert(url)) urls[kept++] = url;
      }
      urls.resize(kept);
    });
    std::vector<std::size_t> cursor(shards, 0);
    for (;;) {
      std::size_t best = shards;
      for (std::size_t s = 0; s < shards; ++s) {
        if (cursor[s] >= members[s].size()) continue;
        if (best == shards ||
            simweb::UrlIdentityLess{}(members[s][cursor[s]],
                                      members[best][cursor[best]])) {
          best = s;
        }
      }
      if (best == shards) break;
      frontier_.push_back(members[best][cursor[best]++]);
    }
  }
}

void PeriodicCrawler::FinishCycle() {
  if (!cycle_active_) return;
  cycle_active_ = false;
  ++cycles_completed_;
  if (config_.shadowing) {
    store_.Swap();
    ++stats_.swaps;
  }
}

void PeriodicCrawler::ApplyOutcome(
    const simweb::Url& url, StatusOr<simweb::FetchResult> result,
    const std::vector<uint8_t>* fresh_links) {
  ++stats_.crawls;
  if (!result.ok()) {
    const StatusCode code = result.status().code();
    if (code == StatusCode::kFailedPrecondition) {
      // Politeness rejection: the page is alive, this cycle just
      // skips it (the fixed-frequency crawler has no retry queue).
      // It must *not* be purged like a dead page.
      ++stats_.politeness_rejections;
      return;
    }
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kDeadlineExceeded) {
      // Classified failure: the page may be perfectly alive behind
      // the outage, so never purge. Bounded re-queue at the back of
      // the BFS frontier; past the limit the cycle gives up on the
      // URL (the next cycle starts fresh — the periodic crawler's
      // natural quarantine).
      ++stats_.fetch_failures;
      if (code == StatusCode::kUnavailable) {
        ++stats_.transient_errors;
      } else {
        ++stats_.timeout_errors;
      }
      engine_.RecordFetchFailures(1);
      uint32_t& requeues = requeue_counts_[url];
      if (requeues < config_.fault_requeue_limit) {
        ++requeues;
        ++stats_.failure_retries;
        frontier_.push_back(url);
      } else {
        ++stats_.failures_dropped;
      }
      return;
    }
    ++stats_.dead_fetches;
    // With in-place updates a page that vanished must also leave the
    // collection; a shadowed crawl simply never adds it.
    if (!config_.shadowing) {
      Status st = inplace_.Remove(url);
      (void)st;
    }
    return;
  }
  CollectionEntry entry;
  entry.url = url;
  entry.page = result->page;
  entry.version = result->version;
  entry.checksum = result->checksum;
  entry.crawled_at = now_;
  entry.links = result->links;
  Status st = target_collection().Upsert(std::move(entry));
  if (st.ok()) {
    ++stats_.pages_stored;
    ++stored_this_cycle_;
  }
  // Breadth-first expansion. The crawl loop stops once `capacity`
  // pages are stored; the frontier keeps a few extra discoveries so
  // that URLs dying between discovery and fetch do not leave the
  // collection under-filled (the 4x frontier-memory bound is the
  // lease budget the admission pass was gated by). The pass already
  // test-and-marked every link against its owning shard's seen-set in
  // slot order and the settle revoked any overdraft, so appending the
  // surviving winners here, still in slot order, reproduces the
  // serial capped expansion exactly.
  if (fresh_links == nullptr) return;  // batch discovered no links
  for (std::size_t j = 0; j < result->links.size(); ++j) {
    if ((*fresh_links)[j] != 0) frontier_.push_back(result->links[j]);
  }
}

Status PeriodicCrawler::RunUntil(double until) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("call Bootstrap first");
  }
  const double rate = static_cast<double>(config_.collection_capacity) /
                      config_.crawl_window_days;
  const double step = 1.0 / rate;
  while (now_ < until) {
    // Pipelined measure stage: when a sample is due, bucket the
    // current collection now (cheap, serial) but defer the oracle
    // walks — if a batch follows this iteration they fuse into its
    // fetch workers; every other path settles them inline below.
    // The walk reads `current_collection()` through entry pointers, so
    // settlement always happens before any ApplyOutcome mutation and
    // before FinishCycle's swap.
    StagedMeasure staged_measure;
    double sample_time = 0.0;
    double measure_serial_seconds = 0.0;
    if (now_ >= next_sample_) {
      if (config_.pipeline) {
        auto measure_begin = std::chrono::steady_clock::now();
        sample_time = now_;
        staged_measure.Prepare(*web_, current_collection(), sample_time,
                               engine_.num_shards());
        measure_serial_seconds = SecondsSince(measure_begin);
      } else {
        tracker_.AddSample(now_, MeasureNow().freshness);
      }
      while (next_sample_ <= now_) {
        next_sample_ += config_.freshness_sample_interval_days;
      }
    }
    // Settles a deferred sample: runs whatever shards the fused hooks
    // did not cover (all of them on the non-batch paths) and records
    // the sample at its due time. No-op once settled.
    auto settle_measure = [&] {
      if (!staged_measure.prepared()) return;
      auto finish_begin = std::chrono::steady_clock::now();
      tracker_.AddSample(sample_time, staged_measure.Finish().freshness);
      engine_.RecordMeasureSeconds(measure_serial_seconds +
                                   SecondsSince(finish_begin));
    };

    double cycle_end = cycle_start_ + config_.cycle_days;
    double window_end = cycle_start_ + config_.crawl_window_days;

    if (cycle_active_) {
      if (stored_this_cycle_ >= config_.collection_capacity ||
          now_ >= window_end) {
        settle_measure();
        FinishCycle();
      } else {
        // Plan one engine batch: one frontier URL per crawl slot, at
        // most the remaining storage budget, bounded by the next
        // sample and the window end.
        const double horizon = std::min({next_sample_, window_end, until});
        const std::size_t budget = static_cast<std::size_t>(
            config_.collection_capacity - stored_this_cycle_);
        const double batch_start = now_;
        auto plan_begin = std::chrono::steady_clock::now();
        const auto shards = static_cast<uint32_t>(engine_.num_shards());
        std::vector<PlannedFetch> plan;
        double t = now_;
        while (t < horizon && plan.size() < budget && !frontier_.empty()) {
          // Stamp the owning shard once at plan time; the fetch and
          // apply passes reuse it instead of recomputing site % N.
          plan.push_back(PlannedFetch{frontier_.front(), t,
                                      frontier_.front().site % shards});
          frontier_.pop_front();
          t += step;
        }
        if (!plan.empty()) {
          engine_.RecordPlanSeconds(SecondsSince(plan_begin));
        }
        if (plan.empty()) {
          settle_measure();
          FinishCycle();  // frontier exhausted before the window closed
        } else {
          ShardedCrawlEngine::StageHooks hooks;
          bool use_hooks = false;
          if (staged_measure.prepared()) {
            // Fuse the deferred measure into the fetch stage: each
            // shard walks its own sites' oracles before its fetches
            // (same shard -> same worker, so per-page observation
            // times stay non-decreasing), and shards with nothing to
            // fetch still get a visit for their measure walk.
            hooks.before_fetch = [&staged_measure](std::size_t s) {
              staged_measure.RunShard(s);
            };
            hooks.shards.resize(static_cast<std::size_t>(shards));
            for (std::size_t s = 0; s < hooks.shards.size(); ++s) {
              hooks.shards[s] = s;
            }
            use_hooks = true;
          }
          std::vector<StatusOr<simweb::FetchResult>> outcomes =
              engine_.ExecuteBatch(plan, nullptr,
                                   use_hooks ? &hooks : nullptr);
          // Settle batch B-1's sample before the apply stage touches
          // the collection the walk's entry pointers reference.
          settle_measure();
          auto apply_begin = std::chrono::steady_clock::now();

          // The shared capacity-lease admission pass: each shard
          // test-and-marks the links whose target site it owns
          // against its own seen-set, in slot order, gated by a lease
          // over the cycle's frozen frontier-memory budget (the 4x
          // cap minus the seen count, every shard's lease carrying
          // the full remainder as an optimistic ceiling). The serial
          // settle then revokes admissions past the budget in global
          // (slot, position) order — the capped serial expansion, bit
          // for bit, at every shard count.
          std::size_t total_links = 0;
          for (const auto& outcome : outcomes) {
            if (outcome.ok()) total_links += outcome->links.size();
          }
          std::vector<std::vector<uint8_t>> fresh;
          if (total_links > 0) {
            fresh.resize(plan.size());
            const std::size_t frontier_cap =
                4 * config_.collection_capacity;
            const std::size_t seen0 = SeenCount();
            const std::size_t lease_budget =
                frontier_cap > seen0 ? frontier_cap - seen0 : 0;
            // Bucket (outcome, link) pairs by the target site's shard
            // once — (slot, position) order within each bucket — so
            // each worker walks only its own links.
            struct LinkRef {
              uint32_t outcome;
              uint32_t link;
            };
            std::vector<std::vector<LinkRef>> buckets(
                seen_shards_.size());
            for (std::size_t i = 0; i < plan.size(); ++i) {
              if (!outcomes[i].ok()) continue;
              const auto& links = outcomes[i]->links;
              fresh[i].assign(links.size(), 0);
              for (std::size_t j = 0; j < links.size(); ++j) {
                buckets[links[j].site % seen_shards_.size()].push_back(
                    LinkRef{static_cast<uint32_t>(i),
                            static_cast<uint32_t>(j)});
              }
            }
            std::vector<std::size_t> targets;
            for (std::size_t t = 0; t < buckets.size(); ++t) {
              if (!buckets[t].empty()) targets.push_back(t);
            }
            std::vector<std::vector<AdmissionRef>> admitted(
                seen_shards_.size());
            std::vector<double> shard_seconds(seen_shards_.size(), 0.0);
            engine_.threads().RunForIndices(
                targets, [&](std::size_t target) {
                  auto begin = std::chrono::steady_clock::now();
                  std::size_t count = 0;
                  for (const LinkRef& ref : buckets[target]) {
                    if (count >= lease_budget) break;
                    const simweb::Url& link =
                        outcomes[ref.outcome]->links[ref.link];
                    if (seen_shards_[target].insert(link).second) {
                      fresh[ref.outcome][ref.link] = 1;
                      admitted[target].push_back(
                          AdmissionRef{ref.outcome, ref.link});
                      ++count;
                    }
                  }
                  shard_seconds[target] = SecondsSince(begin);
                });
            for (std::size_t t : targets) {
              engine_.RecordApplyShardSeconds(shard_seconds[t]);
            }
            std::size_t total_admitted = 0;
            for (const auto& a : admitted) total_admitted += a.size();
            std::vector<RevokedAdmission> revoked =
                SettleAdmissionLease(admitted, lease_budget);
            for (const RevokedAdmission& r : revoked) {
              const AdmissionRef& ref = admitted[r.shard][r.index];
              const simweb::Url& link =
                  outcomes[ref.slot]->links[ref.pos];
              seen_shards_[r.shard].erase(link);
              fresh[ref.slot][ref.pos] = 0;
            }
            engine_.RecordLeaseSettle(
                static_cast<double>(lease_budget),
                static_cast<double>(total_admitted - revoked.size()),
                static_cast<double>(revoked.size()), 0.0);
          }

          auto barrier_begin = std::chrono::steady_clock::now();
          uint64_t successes = 0;
          for (std::size_t i = 0; i < plan.size(); ++i) {
            now_ = plan[i].at;
            if (outcomes[i].ok()) ++successes;
            ApplyOutcome(plan[i].url, std::move(outcomes[i]),
                         total_links > 0 ? &fresh[i] : nullptr);
          }
          engine_.RecordApplyBarrierSeconds(SecondsSince(barrier_begin));
          engine_.RecordApplySeconds(SecondsSince(apply_begin));
          // Failed fetches refund their slots — the serial crawler
          // tried the next URL immediately — so the slot clock
          // advances only by the successful fetches (which consume a
          // slot even when the store is refused, e.g. a full in-place
          // collection, exactly like the serial crawler did).
          now_ = batch_start + static_cast<double>(successes) * step;
          // Barrier hook for the paged backend: compact mutated
          // records into pages (no-op on memory) while no entry
          // pointers are outstanding.
          target_collection().Flush();
          ++batches_completed_;
          if (config_.publish_view_every_batches > 0 &&
              batches_completed_ % config_.publish_view_every_batches ==
                  0) {
            // MVCC publish at the apply barrier; readers acquire the
            // new view lock-free while the next batch runs.
            PublishViewNow();
          }
          if (config_.checkpoint_every_batches > 0 &&
              batches_completed_ % config_.checkpoint_every_batches ==
                  0) {
            // Auto-checkpoint at the batch boundary (engine quiesced).
            CrawlerCheckpointOptions options;
            options.include_web = config_.checkpoint_include_web;
            options.module_traffic = config_.checkpoint_module_traffic;
            Status saved = SaveCrawlerToFile(
                *this, config_.checkpoint_path, options);
            if (!saved.ok()) return saved;
          }
          continue;
        }
      }
    }
    // Idle until the next cycle or housekeeping, whichever is earlier.
    settle_measure();  // no batch this iteration: run the walk inline
    double target = std::min(next_sample_, cycle_end);
    if (now_ >= cycle_end) {
      StartCycle(cycle_end);
      continue;
    }
    now_ = std::min(until, std::max(target, now_ + 1e-12));
  }
  return Status::Ok();
}

void PeriodicCrawler::PublishViewNow() {
  engine_.PublishView(serving::BuildBatchView(*this));
}

CollectionQuality PeriodicCrawler::MeasureNow() {
  auto measure_begin = std::chrono::steady_clock::now();
  CollectionQuality q =
      MeasureCollectionSharded(*web_, current_collection(), now_,
                               engine_.threads(), engine_.num_shards());
  engine_.RecordMeasureSeconds(SecondsSince(measure_begin));
  return q;
}

}  // namespace webevo::crawler
