#ifndef WEBEVO_CRAWLER_CRAWL_MODULE_POOL_H_
#define WEBEVO_CRAWLER_CRAWL_MODULE_POOL_H_

#include <memory>
#include <utility>
#include <vector>

#include "crawler/crawl_module.h"

namespace webevo::crawler {

/// A pool of CrawlModules — the paper's note that "multiple
/// CrawlModule's may run in parallel, depending on how fast we need to
/// crawl pages" (Section 5.3).
///
/// Requests are sharded by *site*, so each site's politeness state is
/// owned by exactly one module: parallelism multiplies aggregate
/// throughput without ever letting two workers hit one site
/// back-to-back. The pool itself is routing + accounting; the
/// ShardedCrawlEngine drives the modules from real worker threads,
/// partitioning each fetch batch with the same ShardOf mapping so a
/// module is only ever touched by its own shard's thread.
class CrawlModulePool {
 public:
  /// Creates `parallelism` modules (>= 1; clamped) sharing the web and
  /// configuration.
  CrawlModulePool(simweb::SimulatedWeb* web,
                  const CrawlModuleConfig& config, int parallelism);

  /// Routes the fetch to the module owning url.site.
  StatusOr<simweb::FetchResult> Crawl(const simweb::Url& url, double t);

  /// Earliest polite time for `site` (per the owning module).
  double NextAllowedTime(uint32_t site) const;

  /// Every (site, last access time) pair across all modules, ascending
  /// by site — canonical at every shard count, since each site's
  /// politeness state lives in exactly one module.
  std::vector<std::pair<uint32_t, double>> ExportPoliteness() const;

  /// Replaces the pool's politeness state with `records`, routing each
  /// site to its owning module (the records may come from a pool with a
  /// different shard count).
  void RestorePoliteness(
      const std::vector<std::pair<uint32_t, double>>& records);

  int parallelism() const { return static_cast<int>(modules_.size()); }

  /// Shard index owning `site` — the same mapping the
  /// ShardedCrawlEngine partitions fetch batches with, so one worker
  /// thread is the sole caller of each module.
  std::size_t ShardOf(uint32_t site) const {
    return site % modules_.size();
  }

  /// The module that owns a site's politeness state.
  const CrawlModule& module_for_site(uint32_t site) const {
    return *modules_[ShardOf(site)];
  }

  /// Module by shard index (for per-shard accounting).
  const CrawlModule& module(std::size_t shard) const {
    return *modules_[shard];
  }

  /// Aggregate accounting across all modules (plus any restored
  /// baseline).
  uint64_t fetch_count() const;
  uint64_t failure_count() const;
  uint64_t politeness_rejections() const;
  /// Sum of the per-module peaks: the pool's worst-case combined daily
  /// load (an upper bound on the true combined peak).
  double CombinedPeakDailyRate() const;

  /// The pool's canonical traffic aggregate: global counters plus the
  /// absolute-day fetch histogram, summed across modules. Because each
  /// fetch lands in bucket floor(t) regardless of which module served
  /// it, the aggregate is a pure function of the fetch stream —
  /// identical at every parallelism — which is what lets checkpoints
  /// carry it (the "traffic" section) without breaking the N=1 / N=8
  /// byte-identity invariant.
  struct Traffic {
    uint64_t fetch_count = 0;
    uint64_t failure_count = 0;
    uint64_t politeness_rejections = 0;
    /// Fetches per absolute simulation day (bucket d = floor(t) == d).
    std::vector<uint64_t> fetches_per_day;
    double first_fetch_time = 0.0;
    double last_fetch_time = 0.0;
    bool any_fetch = false;

    /// The Figure 10 load numbers, off the aggregate histogram.
    double PeakDailyRate() const;
    double AverageDailyRate() const;
  };

  /// Live modules + restored baseline, merged (histograms sum, time
  /// bounds union).
  Traffic AggregateTraffic() const;

  /// Checkpoint restore: zeroes every module's live ledger and installs
  /// `traffic` as the carried-over baseline, so post-restore aggregates
  /// cover the whole crawl. Politeness state is untouched.
  void RestoreTraffic(const Traffic& traffic);

 private:
  std::vector<std::unique_ptr<CrawlModule>> modules_;
  /// Carried-over aggregate from a checkpoint restore; zero-valued
  /// until RestoreTraffic installs one.
  Traffic baseline_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_CRAWL_MODULE_POOL_H_
