#ifndef WEBEVO_CRAWLER_ALL_URLS_H_
#define WEBEVO_CRAWLER_ALL_URLS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "simweb/url.h"
#include "util/status.h"

namespace webevo::crawler {

/// The `AllUrls` structure of Figure 12: every URL the crawler has ever
/// discovered, with the metadata the RankingModule needs to estimate
/// the importance of pages *not* in the collection — the paper's
/// footnote 2: "even if a page p does not exist in the Collection, the
/// RankingModule can estimate PageRank of p based on how many pages in
/// the Collection have a link to p".
///
/// Internally partitioned into `num_shards` stores, sites owned by
/// shard `site % N` (the engine's ownership rule). Concurrent mutation
/// is safe exactly when callers partition their work by `ShardOf` —
/// the incremental crawler's parallel link-noting pass does — since
/// every operation touches only the owning shard's map. The results
/// are identical at every shard count; only the (unspecified) ForEach
/// visit order differs.
class AllUrls {
 public:
  struct UrlInfo {
    double first_seen = 0.0;   ///< when the URL was first discovered
    uint64_t in_links = 0;     ///< links seen pointing at it
    bool dead = false;         ///< a crawl of it returned NotFound
  };

  /// Creates `num_shards` shard maps (>= 1; clamped).
  explicit AllUrls(int num_shards = 1);

  /// Registers a URL discovered at `time`. Returns true if it was new.
  bool Add(const simweb::Url& url, double time);

  /// Registers that some crawled page links to `url` (discovering it
  /// at `time` if new), and returns the updated record — the admission
  /// pass reads the dead flag off the same hash probe the note paid
  /// for, instead of a second Find. The reference is invalidated by
  /// any later mutation of the owning shard.
  const UrlInfo& NoteInLink(const simweb::Url& url, double time);

  /// Marks a URL dead after a failed crawl; dead URLs stay recorded so
  /// repeated discovery of a stale link does not resurrect them, but
  /// they are skipped by candidate scans.
  Status MarkDead(const simweb::Url& url);

  bool Contains(const simweb::Url& url) const {
    return shards_[ShardOf(url.site)].count(url) > 0;
  }
  const UrlInfo* Find(const simweb::Url& url) const;

  std::size_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t ShardOf(uint32_t site) const { return site % shards_.size(); }

  /// Iterates (url, info) pairs shard-major, in unspecified order
  /// within each shard. Callers whose output depends on the visit
  /// order must sort what they collect (the order varies with N).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& shard : shards_) {
      for (const auto& [url, info] : shard) fn(url, info);
    }
  }

 private:
  std::vector<std::unordered_map<simweb::Url, UrlInfo, simweb::UrlHash>>
      shards_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_ALL_URLS_H_
