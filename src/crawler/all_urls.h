#ifndef WEBEVO_CRAWLER_ALL_URLS_H_
#define WEBEVO_CRAWLER_ALL_URLS_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simweb/url.h"
#include "storage/record_store.h"
#include "util/hash.h"
#include "util/status.h"

namespace webevo::crawler {

/// The `AllUrls` structure of Figure 12: every URL the crawler has ever
/// discovered, with the metadata the RankingModule needs to estimate
/// the importance of pages *not* in the collection — the paper's
/// footnote 2: "even if a page p does not exist in the Collection, the
/// RankingModule can estimate PageRank of p based on how many pages in
/// the Collection have a link to p".
///
/// Internally partitioned into `num_shards` record stores (memory or
/// paged — see storage::StoreOptions), sites owned by shard `site % N`
/// (the engine's ownership rule). Concurrent mutation is safe exactly
/// when callers partition their work by `ShardOf` — the incremental
/// crawler's parallel link-noting pass does — since every operation
/// touches only the owning shard's store. The results are identical at
/// every shard count; only the (unspecified) ForEach visit order
/// differs.
class AllUrls {
 public:
  struct UrlInfo {
    double first_seen = 0.0;   ///< when the URL was first discovered
    uint64_t in_links = 0;     ///< links seen pointing at it
    bool dead = false;         ///< a crawl of it returned NotFound
  };

  using DirtySet = std::set<simweb::Url, simweb::UrlIdentityLess>;

  /// Creates `num_shards` shard stores (>= 1; clamped) on the memory
  /// backend.
  explicit AllUrls(int num_shards = 1)
      : AllUrls(num_shards, storage::StoreOptions{}, "allurls") {}

  /// Backend-selecting constructor; `name` seeds the paged backend's
  /// scratch-file names (one per shard).
  AllUrls(int num_shards, const storage::StoreOptions& options,
          const std::string& name);

  /// Registers a URL discovered at `time`. Returns true if it was new.
  bool Add(const simweb::Url& url, double time);

  /// Registers that some crawled page links to `url` (discovering it
  /// at `time` if new), and returns the updated record — the admission
  /// pass reads the dead flag off the same hash probe the note paid
  /// for, instead of a second Find. The reference is invalidated by
  /// any later mutation of the owning shard.
  const UrlInfo& NoteInLink(const simweb::Url& url, double time);

  /// Marks a URL dead after a failed crawl; dead URLs stay recorded so
  /// repeated discovery of a stale link does not resurrect them, but
  /// they are skipped by candidate scans.
  Status MarkDead(const simweb::Url& url);

  bool Contains(const simweb::Url& url) const {
    return shards_[ShardOf(url.site)]->Contains(url);
  }
  const UrlInfo* Find(const simweb::Url& url) const;

  std::size_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t ShardOf(uint32_t site) const { return site % shards_.size(); }

  /// Iterates (url, info) pairs shard-major, in unspecified order
  /// within each shard. Callers whose output depends on the visit
  /// order must sort what they collect (the order varies with N).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& shard : shards_) {
      shard->ForEach(
          [&fn](const simweb::Url& url, const UrlInfo& info) {
            fn(url, info);
          });
    }
  }

  /// Content-fingerprint registry (mirror detection): the canonical URL
  /// that first served each page checksum. Mutated ONLY on the
  /// crawler's serial settle path, in global slot order, so the
  /// canonical winner is a pure function of the simulation — identical
  /// at every shard count. The registry is an observation ledger, not a
  /// policy: it fills whether or not the defense layer acts on it.
  ///
  /// Returns the canonical owner of `fp`, or nullptr when unclaimed.
  const simweb::Url* FingerprintOwner(const Checksum128& fp) const;
  /// Claims `fp` for `url` if unclaimed; returns true when `url` became
  /// the canonical owner (false leaves the standing owner in place).
  bool ClaimFingerprint(const Checksum128& fp, const simweb::Url& url);
  /// Re-homes `fp` onto `url` unconditionally (migration-following and
  /// checkpoint replay).
  void ReassignFingerprint(const Checksum128& fp, const simweb::Url& url);
  std::size_t fingerprint_count() const { return fingerprints_.size(); }
  /// All (fingerprint, owner) pairs sorted by (hi, lo) — the canonical
  /// checkpoint order.
  std::vector<std::pair<Checksum128, simweb::Url>> SortedFingerprints()
      const;
  void ClearFingerprints() { fingerprints_.clear(); }

  /// Overwrites (or creates) a record verbatim — incremental-checkpoint
  /// replay.
  void Restore(const simweb::Url& url, const UrlInfo& info);

  /// Replaces all contents with a copy of `other`'s, keeping *this's
  /// backend — the checkpoint-load commit step.
  void ReplaceEntriesFrom(const AllUrls& other);

  /// Barrier hook (paged backend compaction; no-op on memory).
  void Flush();

  /// Dirty-key tracking for incremental checkpoints: enables tracking
  /// on every shard store; AppendDirty merges the per-shard dirty sets
  /// into `out` (already canonical — std::set union).
  void EnableDirtyTracking();
  void AppendDirty(DirtySet* out) const;
  void ClearDirty();

 private:
  std::vector<std::unique_ptr<storage::RecordStore<UrlInfo>>> shards_;
  /// The fingerprint registry is a single cross-site map precisely
  /// because mirrors span sites (and therefore shards); keeping it off
  /// the shard stores is safe because only the serial settle touches
  /// it.
  std::unordered_map<Checksum128, simweb::Url, Checksum128Hash>
      fingerprints_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_ALL_URLS_H_
