#include "crawler/ranking_module.h"

#include <algorithm>
#include <unordered_map>

#include "graph/hits.h"
#include "graph/link_graph.h"
#include "graph/pagerank.h"

namespace webevo::crawler {

const char* ImportanceMetricName(ImportanceMetric metric) {
  switch (metric) {
    case ImportanceMetric::kPageRank:
      return "pagerank";
    case ImportanceMetric::kHitsAuthority:
      return "hits";
    case ImportanceMetric::kInLinks:
      return "inlinks";
  }
  return "?";
}

RankingModule::RankingModule(const RankingModuleConfig& config)
    : config_(config) {}

RefinementResult RankingModule::Refine(const AllUrls& all_urls,
                                       Collection& collection) {
  ++refinement_count_;
  RefinementResult result;

  // Node universe: collection pages first, then live uncollected
  // candidates known to AllUrls.
  std::unordered_map<simweb::Url, graph::NodeId, simweb::UrlHash> index;
  std::vector<simweb::Url> urls;
  auto intern = [&](const simweb::Url& url) {
    auto [it, inserted] =
        index.try_emplace(url, static_cast<graph::NodeId>(urls.size()));
    if (inserted) urls.push_back(url);
    return it->second;
  };
  std::vector<simweb::Url> member_urls;
  collection.ForEach([&](const CollectionEntry& entry) {
    intern(entry.url);
    member_urls.push_back(entry.url);
  });

  std::vector<simweb::Url> candidates;
  all_urls.ForEach([&](const simweb::Url& url,
                       const AllUrls::UrlInfo& info) {
    if (info.dead || collection.Contains(url)) return;
    intern(url);
    candidates.push_back(url);
  });

  // Edges from the link structure captured in the Collection. Links to
  // URLs outside the universe (e.g. dead ones) are dropped.
  graph::LinkGraph graph(static_cast<graph::NodeId>(urls.size()));
  collection.ForEach([&](const CollectionEntry& entry) {
    graph::NodeId from = index.at(entry.url);
    for (const simweb::Url& to : entry.links) {
      auto it = index.find(to);
      if (it != index.end()) {
        Status st = graph.AddEdge(from, it->second);
        (void)st;
      }
    }
  });
  graph.Finalize();
  result.graph_nodes = graph.num_nodes();
  result.graph_edges = graph.num_edges();

  // Score all nodes.
  std::vector<double> score;
  switch (config_.metric) {
    case ImportanceMetric::kPageRank: {
      graph::PageRankOptions options;
      options.damping = config_.damping;
      auto pr = graph::ComputePageRank(graph, options);
      if (!pr.ok()) return result;  // empty graph: nothing to refine
      score = std::move(pr->rank);
      result.iterations = pr->iterations;
      break;
    }
    case ImportanceMetric::kHitsAuthority: {
      auto hits = graph::ComputeHits(graph);
      if (!hits.ok()) return result;
      score = std::move(hits->authority);
      result.iterations = hits->iterations;
      break;
    }
    case ImportanceMetric::kInLinks: {
      score.resize(graph.num_nodes());
      for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
        score[v] = static_cast<double>(graph.InDegree(v));
      }
      break;
    }
  }

  // Write importance back into collection entries.
  for (const simweb::Url& url : member_urls) {
    CollectionEntry* entry = collection.FindMutable(url);
    if (entry != nullptr) entry->importance = score[index.at(url)];
  }

  // Pair best candidates with worst members under hysteresis.
  std::sort(candidates.begin(), candidates.end(),
            [&](const simweb::Url& a, const simweb::Url& b) {
              return score[index.at(a)] > score[index.at(b)];
            });
  // Free space first: while below capacity, admit the best candidates
  // outright (no victim needed).
  std::size_t free_slots = collection.capacity() - collection.size();
  std::size_t admitted = std::min(free_slots, candidates.size());
  result.admissions.assign(candidates.begin(),
                           candidates.begin() +
                               static_cast<long>(admitted));
  candidates.erase(candidates.begin(),
                   candidates.begin() + static_cast<long>(admitted));
  std::sort(member_urls.begin(), member_urls.end(),
            [&](const simweb::Url& a, const simweb::Url& b) {
              return score[index.at(a)] < score[index.at(b)];
            });
  std::size_t pairs =
      std::min({candidates.size(), member_urls.size(),
                config_.max_replacements});
  for (std::size_t i = 0; i < pairs; ++i) {
    double cand_score = score[index.at(candidates[i])];
    double victim_score = score[index.at(member_urls[i])];
    if (cand_score <= victim_score * config_.replacement_hysteresis) break;
    result.replacements.push_back(Replacement{
        member_urls[i], candidates[i], victim_score, cand_score});
  }
  return result;
}

}  // namespace webevo::crawler
