#include "crawler/ranking_module.h"

#include <algorithm>
#include <unordered_map>

#include "graph/hits.h"
#include "graph/link_graph.h"
#include "graph/pagerank.h"

namespace webevo::crawler {
namespace {

constexpr simweb::UrlIdentityLess IdentityLess;

// Shared by the Collection and ShardedCollection overloads; only
// ForEach / Contains / FindMutable / size / capacity are needed. All
// iteration-order-sensitive steps (graph node numbering, edge insertion,
// score ties) run over canonically sorted URL lists, so the refinement
// outcome is a pure function of the stored state — identical for a
// sharded collection at every shard count.
template <typename CollectionT>
RefinementResult RefineImpl(const RankingModuleConfig& config,
                            const AllUrls& all_urls,
                            CollectionT& collection) {
  RefinementResult result;

  // Node universe: collection pages first, then live uncollected
  // candidates known to AllUrls — each group in canonical URL order.
  std::vector<const CollectionEntry*> members;
  collection.ForEach(
      [&](const CollectionEntry& entry) { members.push_back(&entry); });
  std::sort(members.begin(), members.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return IdentityLess(a->url, b->url);
            });
  std::vector<simweb::Url> member_urls;
  member_urls.reserve(members.size());
  for (const CollectionEntry* entry : members) {
    member_urls.push_back(entry->url);
  }

  std::vector<simweb::Url> candidates;
  all_urls.ForEach([&](const simweb::Url& url,
                       const AllUrls::UrlInfo& info) {
    if (info.dead || collection.Contains(url)) return;
    candidates.push_back(url);
  });
  std::sort(candidates.begin(), candidates.end(), IdentityLess);

  std::unordered_map<simweb::Url, graph::NodeId, simweb::UrlHash> index;
  std::vector<simweb::Url> urls;
  auto intern = [&](const simweb::Url& url) {
    auto [it, inserted] =
        index.try_emplace(url, static_cast<graph::NodeId>(urls.size()));
    if (inserted) urls.push_back(url);
    return it->second;
  };
  for (const simweb::Url& url : member_urls) intern(url);
  for (const simweb::Url& url : candidates) intern(url);

  // Edges from the link structure captured in the Collection (entries
  // are not mutated between the walk above and here). Links to URLs
  // outside the universe (e.g. dead ones) are dropped.
  graph::LinkGraph graph(static_cast<graph::NodeId>(urls.size()));
  for (const CollectionEntry* entry : members) {
    graph::NodeId from = index.at(entry->url);
    for (const simweb::Url& to : entry->links) {
      auto it = index.find(to);
      if (it != index.end()) {
        Status st = graph.AddEdge(from, it->second);
        (void)st;
      }
    }
  }
  graph.Finalize();
  result.graph_nodes = graph.num_nodes();
  result.graph_edges = graph.num_edges();

  // Score all nodes.
  std::vector<double> score;
  switch (config.metric) {
    case ImportanceMetric::kPageRank: {
      graph::PageRankOptions options;
      options.damping = config.damping;
      auto pr = graph::ComputePageRank(graph, options);
      if (!pr.ok()) return result;  // empty graph: nothing to refine
      score = std::move(pr->rank);
      result.iterations = pr->iterations;
      break;
    }
    case ImportanceMetric::kHitsAuthority: {
      auto hits = graph::ComputeHits(graph);
      if (!hits.ok()) return result;
      score = std::move(hits->authority);
      result.iterations = hits->iterations;
      break;
    }
    case ImportanceMetric::kInLinks: {
      score.resize(graph.num_nodes());
      for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
        score[v] = static_cast<double>(graph.InDegree(v));
      }
      break;
    }
  }

  // Write importance back into collection entries.
  for (const simweb::Url& url : member_urls) {
    CollectionEntry* entry = collection.FindMutable(url);
    if (entry != nullptr) entry->importance = score[index.at(url)];
  }

  // Pair best candidates with worst members under hysteresis.
  std::sort(candidates.begin(), candidates.end(),
            [&](const simweb::Url& a, const simweb::Url& b) {
              return score[index.at(a)] > score[index.at(b)];
            });
  // Free space first: while below capacity, admit the best candidates
  // outright (no victim needed).
  std::size_t free_slots = collection.capacity() - collection.size();
  std::size_t admitted = std::min(free_slots, candidates.size());
  result.admissions.assign(candidates.begin(),
                           candidates.begin() +
                               static_cast<long>(admitted));
  candidates.erase(candidates.begin(),
                   candidates.begin() + static_cast<long>(admitted));
  std::sort(member_urls.begin(), member_urls.end(),
            [&](const simweb::Url& a, const simweb::Url& b) {
              return score[index.at(a)] < score[index.at(b)];
            });
  std::size_t pairs =
      std::min({candidates.size(), member_urls.size(),
                config.max_replacements});
  for (std::size_t i = 0; i < pairs; ++i) {
    double cand_score = score[index.at(candidates[i])];
    double victim_score = score[index.at(member_urls[i])];
    if (cand_score <= victim_score * config.replacement_hysteresis) break;
    result.replacements.push_back(Replacement{
        member_urls[i], candidates[i], victim_score, cand_score});
  }
  return result;
}

}  // namespace

const char* ImportanceMetricName(ImportanceMetric metric) {
  switch (metric) {
    case ImportanceMetric::kPageRank:
      return "pagerank";
    case ImportanceMetric::kHitsAuthority:
      return "hits";
    case ImportanceMetric::kInLinks:
      return "inlinks";
  }
  return "?";
}

RankingModule::RankingModule(const RankingModuleConfig& config)
    : config_(config) {}

RefinementResult RankingModule::Refine(const AllUrls& all_urls,
                                       Collection& collection) {
  ++refinement_count_;
  return RefineImpl(config_, all_urls, collection);
}

RefinementResult RankingModule::Refine(const AllUrls& all_urls,
                                       ShardedCollection& collection) {
  ++refinement_count_;
  return RefineImpl(config_, all_urls, collection);
}

}  // namespace webevo::crawler
