#include "crawler/snapshot.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "crawler/crawl_module_pool.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "estimator/change_estimator.h"
#include "simweb/simulated_web.h"
#include "storage/delta_log.h"
#include "util/hash.h"
#include "util/text_snapshot.h"

namespace webevo::crawler {
namespace {

constexpr const char* kCollectionMagic = "webevo-collection";
constexpr const char* kAllUrlsMagic = "webevo-allurls";
constexpr const char* kUpdateModuleMagic = "webevo-update";
constexpr const char* kFrontierMagic = "webevo-frontier";
constexpr int kFormatVersion = 1;
// The UpdateModule format is versioned separately: version 2 replaced
// the module-global probe RNG with per-site streams (`R` records) and
// added the frozen scheduling page count to the `G` record.
constexpr int kUpdateFormatVersion = 2;
// Sanity bound on a flattened estimator-state vector. Integrity is only
// verified at the trailer, so parsed counts must be range-checked
// before they size an allocation.
constexpr std::size_t kMaxEstimatorState = 1 << 20;

constexpr simweb::UrlIdentityLess IdentityLess;

std::string EntryLine(const CollectionEntry& e) {
  std::ostringstream os;
  os.precision(17);
  os << "E " << e.url.site << ' ' << e.url.slot << ' '
     << e.url.incarnation << ' ' << e.page << ' ' << e.version << ' '
     << e.checksum.lo << ' ' << e.checksum.hi << ' ' << e.crawled_at
     << ' ' << e.importance << ' ' << e.links.size();
  for (const simweb::Url& link : e.links) {
    os << ' ' << link.site << ' ' << link.slot << ' ' << link.incarnation;
  }
  return os.str();
}

StatusOr<CollectionEntry> ParseEntry(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  CollectionEntry e;
  std::size_t nlinks = 0;
  is >> tag >> e.url.site >> e.url.slot >> e.url.incarnation >> e.page >>
      e.version >> e.checksum.lo >> e.checksum.hi >> e.crawled_at >>
      e.importance >> nlinks;
  if (is.fail() || tag != "E") {
    return Status::InvalidArgument("malformed entry record");
  }
  e.links.reserve(nlinks);
  for (std::size_t i = 0; i < nlinks; ++i) {
    simweb::Url link;
    is >> link.site >> link.slot >> link.incarnation;
    if (is.fail()) {
      return Status::InvalidArgument("malformed link list");
    }
    e.links.push_back(link);
  }
  Status end = ExpectLineEnd(is, "entry");
  if (!end.ok()) return end;
  return e;
}

// Canonical writer shared by the Collection and ShardedCollection
// overloads: entries are emitted in ascending URL identity so equal
// logical collections produce equal bytes at every shard count.
Status WriteCollectionSnapshot(
    std::size_t capacity,
    std::vector<const CollectionEntry*> entries, std::ostream& out) {
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return IdentityLess(a->url, b->url);
            });
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kCollectionMagic << ' ' << kFormatVersion << ' ' << capacity
         << ' ' << entries.size();
  writer.Line(header.str());
  for (const CollectionEntry* e : entries) writer.Line(EntryLine(*e));
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

/// The parsed payload of a collection snapshot, verified against the
/// integrity trailer before anything is handed back.
struct CollectionPayload {
  std::size_t capacity = 0;
  std::vector<CollectionEntry> entries;
};

StatusOr<CollectionPayload> ReadCollectionSnapshot(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  CollectionPayload payload;
  hs >> magic >> version >> payload.capacity >> count;
  if (hs.fail() || magic != kCollectionMagic) {
    return Status::InvalidArgument("not a collection snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  Status header_end = ExpectLineEnd(hs, "collection header");
  if (!header_end.ok()) return header_end;
  payload.entries.reserve(std::min<std::size_t>(count, 1 << 20));
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    auto entry = ParseEntry(*line);
    if (!entry.ok()) return entry.status();
    payload.entries.push_back(std::move(entry).value());
  }
  // Consume and verify the trailer before handing anything back, and
  // reject anything that follows it.
  Status end = FinishFramedStream(reader, in, "collection snapshot");
  if (!end.ok()) return end;
  return payload;
}

}  // namespace

Status SaveCollection(const Collection& collection, std::ostream& out) {
  std::vector<const CollectionEntry*> entries;
  entries.reserve(collection.size());
  collection.ForEach(
      [&](const CollectionEntry& e) { entries.push_back(&e); });
  return WriteCollectionSnapshot(collection.capacity(),
                                 std::move(entries), out);
}

Status SaveCollection(const ShardedCollection& collection,
                      std::ostream& out) {
  std::vector<const CollectionEntry*> entries;
  entries.reserve(collection.size());
  collection.ForEach(
      [&](const CollectionEntry& e) { entries.push_back(&e); });
  return WriteCollectionSnapshot(collection.capacity(),
                                 std::move(entries), out);
}

StatusOr<Collection> LoadCollection(std::istream& in) {
  auto payload = ReadCollectionSnapshot(in);
  if (!payload.ok()) return payload.status();
  Collection collection(payload->capacity);
  for (CollectionEntry& e : payload->entries) {
    Status stored = collection.Upsert(std::move(e));
    if (!stored.ok()) return stored;
  }
  return collection;
}

StatusOr<ShardedCollection> LoadShardedCollection(std::istream& in,
                                                  int num_shards) {
  auto payload = ReadCollectionSnapshot(in);
  if (!payload.ok()) return payload.status();
  ShardedCollection collection(payload->capacity, num_shards);
  for (CollectionEntry& e : payload->entries) {
    Status stored = collection.Upsert(std::move(e));
    if (!stored.ok()) return stored;
  }
  return collection;
}

Status SaveAllUrls(const AllUrls& all_urls, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kAllUrlsMagic << ' ' << kFormatVersion << ' '
         << all_urls.size();
  writer.Line(header.str());
  // Canonical record order regardless of internal shard layout.
  std::vector<std::pair<simweb::Url, const AllUrls::UrlInfo*>> records;
  records.reserve(all_urls.size());
  all_urls.ForEach([&](const simweb::Url& url,
                       const AllUrls::UrlInfo& info) {
    records.emplace_back(url, &info);
  });
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return IdentityLess(a.first, b.first);
            });
  for (const auto& [url, info] : records) {
    std::ostringstream os;
    os.precision(17);
    os << "U " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << info->first_seen << ' ' << info->in_links << ' '
       << (info->dead ? 1 : 0);
    writer.Line(os.str());
  }
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

StatusOr<AllUrls> LoadAllUrls(std::istream& in, int num_shards) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  hs >> magic >> version >> count;
  if (hs.fail() || magic != kAllUrlsMagic) {
    return Status::InvalidArgument("not an AllUrls snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  Status header_end = ExpectLineEnd(hs, "allurls header");
  if (!header_end.ok()) return header_end;
  AllUrls all(num_shards);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double first_seen = 0.0;
    uint64_t in_links = 0;
    int dead = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> first_seen >>
        in_links >> dead;
    if (is.fail() || tag != "U") {
      return Status::InvalidArgument("malformed url record");
    }
    Status record_end = ExpectLineEnd(is, "url");
    if (!record_end.ok()) return record_end;
    all.Add(url, first_seen);
    for (uint64_t k = 0; k < in_links; ++k) all.NoteInLink(url, first_seen);
    if (dead != 0) {
      Status st = all.MarkDead(url);
      if (!st.ok()) return st;
    }
  }
  Status end = FinishFramedStream(reader, in, "allurls snapshot");
  if (!end.ok()) return end;
  return all;
}

Status SaveUpdateModule(const UpdateModule& module, std::ostream& out) {
  // Gather the per-site records (estimator aggregates and probe RNG
  // streams) across shards in ascending site order — canonical bytes
  // at every shard count.
  std::vector<std::pair<uint32_t, const estimator::ChangeEstimator*>>
      site_records;
  for (const auto& shard : module.site_shards_) {
    for (const auto& [site, est] : shard) {
      site_records.emplace_back(site, est.get());
    }
  }
  std::sort(site_records.begin(), site_records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<uint32_t, const Rng*>> rng_records;
  for (const auto& shard : module.rng_shards_) {
    for (const auto& [site, rng] : shard) {
      rng_records.emplace_back(site, &rng);
    }
  }
  std::sort(rng_records.begin(), rng_records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  TrailerWriter writer(out);
  std::ostringstream header;
  header << kUpdateModuleMagic << ' ' << kUpdateFormatVersion << ' '
         << estimator::EstimatorKindName(module.config_.estimator_kind)
         << ' ' << module.tracked_pages() << ' ' << site_records.size()
         << ' ' << rng_records.size();
  writer.Line(header.str());

  {
    std::ostringstream os;
    os.precision(17);
    os << "G " << module.multiplier_ << ' ' << module.total_rate_ << ' '
       << module.mean_importance_ << ' ' << module.rebalance_count_
       << ' ' << module.frozen_page_count_;
    writer.Line(os.str());
  }

  // Page records sorted by identity, so equal modules produce equal
  // bytes regardless of shard count and hash-map iteration order.
  for (const auto& [url, state] : module.SortedPages()) {
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state;
    if (state->estimator != nullptr) {
      est_state = state->estimator->SaveState();
    }
    os << "P " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << state->last_visit << ' ' << (state->visited ? 1 : 0)
       << ' ' << state->importance << ' '
       << (state->probing_abandonment ? 1 : 0) << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    writer.Line(os.str());
  }

  for (const auto& [site, est] : site_records) {
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state = est->SaveState();
    os << "S " << site << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    writer.Line(os.str());
  }

  for (const auto& [site, rng] : rng_records) {
    std::ostringstream os;
    os << "R " << site;
    for (uint64_t lane : rng->State()) os << ' ' << lane;
    writer.Line(os.str());
  }

  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

Status LoadUpdateModule(std::istream& in, UpdateModule* module) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic, kind;
  int version = 0;
  std::size_t npages = 0, nsites = 0, nrngs = 0;
  hs >> magic >> version >> kind >> npages >> nsites >> nrngs;
  if (hs.fail() || magic != kUpdateModuleMagic) {
    return Status::InvalidArgument("not an UpdateModule snapshot");
  }
  if (version != kUpdateFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  Status header_end = ExpectLineEnd(hs, "update header");
  if (!header_end.ok()) return header_end;
  if (kind !=
      estimator::EstimatorKindName(module->config_.estimator_kind)) {
    return Status::InvalidArgument(
        "snapshot estimator kind '" + kind +
        "' does not match the module's configuration");
  }

  // Restore into a staging module and swap in only after the trailer
  // verifies, so a corrupt snapshot never leaves `module` half-loaded.
  UpdateModule staged(module->config_);

  auto g_line = reader.Next();
  if (!g_line.ok()) return Status::InvalidArgument("missing G record");
  {
    std::istringstream is(*g_line);
    std::string tag;
    double multiplier = 0.0, total_rate = 0.0, mean_importance = 0.0;
    int64_t rebalance_count = 0;
    std::size_t frozen_pages = 0;
    is >> tag >> multiplier >> total_rate >> mean_importance >>
        rebalance_count >> frozen_pages;
    if (is.fail() || tag != "G") {
      return Status::InvalidArgument("malformed G record");
    }
    Status record_end = ExpectLineEnd(is, "G");
    if (!record_end.ok()) return record_end;
    staged.multiplier_ = multiplier;
    staged.total_rate_ = total_rate;
    staged.mean_importance_ = mean_importance;
    staged.rebalance_count_ = rebalance_count;
    staged.frozen_page_count_ = frozen_pages;
  }

  for (std::size_t i = 0; i < npages; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot page count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double last_visit = 0.0, importance = 0.0;
    int visited = 0, probing = 0;
    std::size_t nstate = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> last_visit >>
        visited >> importance >> probing >> nstate;
    if (is.fail() || tag != "P" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed page record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed page estimator state");
    }
    Status record_end = ExpectLineEnd(is, "page");
    if (!record_end.ok()) return record_end;
    UpdateModule::PageState state;
    state.last_visit = last_visit;
    state.visited = visited != 0;
    state.importance = importance;
    state.probing_abandonment = probing != 0;
    if (!est_state.empty()) {
      state.estimator =
          estimator::MakeEstimator(staged.config_.estimator_kind);
      Status st = state.estimator->RestoreState(est_state);
      if (!st.ok()) return st;
    }
    staged.page_shards_[staged.ShardOf(url.site)][url] = std::move(state);
  }
  for (std::size_t i = 0; i < nsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot site count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::size_t nstate = 0;
    is >> tag >> site >> nstate;
    if (is.fail() || tag != "S" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed site record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed site estimator state");
    }
    Status record_end = ExpectLineEnd(is, "site");
    if (!record_end.ok()) return record_end;
    auto estimator =
        estimator::MakeEstimator(staged.config_.estimator_kind);
    Status st = estimator->RestoreState(est_state);
    if (!st.ok()) return st;
    staged.site_shards_[staged.ShardOf(site)][site] =
        std::move(estimator);
  }
  for (std::size_t i = 0; i < nrngs; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot rng count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::array<uint64_t, 4> lanes{};
    is >> tag >> site >> lanes[0] >> lanes[1] >> lanes[2] >> lanes[3];
    if (is.fail() || tag != "R") {
      return Status::InvalidArgument("malformed rng record");
    }
    Status record_end = ExpectLineEnd(is, "rng");
    if (!record_end.ok()) return record_end;
    Rng rng(0);
    rng.SetState(lanes);
    staged.rng_shards_[staged.ShardOf(site)].insert_or_assign(site, rng);
  }

  Status end = FinishFramedStream(reader, in, "update snapshot");
  if (!end.ok()) return end;
  *module = std::move(staged);
  return Status::Ok();
}

Status SaveFrontier(const ShardedFrontier& frontier, std::ostream& out) {
  // Drain a copy shard by shard: PopEntry yields each live entry with
  // its exact (when, seq) key; sorting by the globally unique seq gives
  // canonical bytes at every shard count.
  ShardedFrontier scratch = frontier;
  std::vector<CollUrls::Entry> entries;
  entries.reserve(frontier.size());
  for (CollUrls& shard : scratch.shards_) {
    while (auto entry = shard.PopEntry()) {
      entries.push_back(*entry);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CollUrls::Entry& a, const CollUrls::Entry& b) {
              return a.seq < b.seq;
            });

  TrailerWriter writer(out);
  std::ostringstream header;
  header.precision(17);
  header << kFrontierMagic << ' ' << kFormatVersion << ' '
         << entries.size() << ' ' << frontier.next_seq_ << ' '
         << frontier.front_when_;
  writer.Line(header.str());
  for (const CollUrls::Entry& e : entries) {
    std::ostringstream os;
    os.precision(17);
    os << "F " << e.url.site << ' ' << e.url.slot << ' '
       << e.url.incarnation << ' ' << e.when << ' ' << e.seq;
    writer.Line(os.str());
  }
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

StatusOr<ShardedFrontier> LoadFrontier(std::istream& in, int num_shards) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  uint64_t next_seq = 0;
  double front_when = 0.0;
  hs >> magic >> version >> count >> next_seq >> front_when;
  if (hs.fail() || magic != kFrontierMagic) {
    return Status::InvalidArgument("not a frontier snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  Status header_end = ExpectLineEnd(hs, "frontier header");
  if (!header_end.ok()) return header_end;
  ShardedFrontier frontier(num_shards);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double when = 0.0;
    uint64_t seq = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> when >> seq;
    if (is.fail() || tag != "F") {
      return Status::InvalidArgument("malformed frontier record");
    }
    Status record_end = ExpectLineEnd(is, "frontier");
    if (!record_end.ok()) return record_end;
    frontier.shards_[frontier.ShardOf(url.site)].ScheduleAt(url, when,
                                                            seq);
  }
  frontier.next_seq_ = next_seq;
  frontier.front_when_ = front_when;
  Status end = FinishFramedStream(reader, in, "frontier snapshot");
  if (!end.ok()) return end;
  return frontier;
}

Status SaveCollectionToFile(const Collection& collection,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  return SaveCollection(collection, out);
}

Status SaveCollectionToFile(const ShardedCollection& collection,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  return SaveCollection(collection, out);
}

StatusOr<Collection> LoadCollectionFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadCollection(in);
}

// ----------------------------------------------------- whole-crawler
// checkpoints: the versioned container bundling every stream a restart
// needs, plus the crawler-side state the individual Save* calls cannot
// see (see snapshot.h for the format).

namespace {

constexpr const char* kCrawlerMagic = "webevo-crawler";
constexpr int kCrawlerFormatVersion = 1;
constexpr const char* kIncMetaMagic = "webevo-incmeta";
// Incremental meta version 2: the C record grew the capacity-lease
// ledger (budget granted to shard leases, settled admissions) — the
// deterministic half of the lease protocol's accounting.
// Version 3: the C record grew the failure ledger (classified fetch
// failures, retries, quarantines, retirements) and a second L record
// carries the backoff-days RunningStat.
// Version 4: the C record grew the defense ledger (wasted fetches,
// throttled trap sites, suppressed duplicate URLs, migrated pages).
constexpr int kIncMetaVersion = 4;
constexpr const char* kPerMetaMagic = "webevo-permeta";
// Periodic meta version 2: the C record grew the failure ledger
// (classified fetch failures, bounded re-queues, per-cycle drops).
constexpr int kPerMetaVersion = 2;
// The failure-pipeline section shared by both crawlers: per-site
// circuit-breaker state (incremental only) and per-URL consecutive
// failure / re-queue counts. Optional on load — checkpoints written
// before the failure pipeline existed simply restart it from scratch.
constexpr const char* kFailureMagic = "webevo-failure";
constexpr const char* kPoliteMagic = "webevo-polite";
constexpr const char* kTrackerMagic = "webevo-tracker";
constexpr const char* kUrlsMagic = "webevo-urls";
// The adversarial-defense section (incremental crawler only): per-site
// diminishing-returns state machines and the content-fingerprint
// registry's canonical owners. Optional on load — checkpoints written
// before the defense layer existed restart it (and the registry) from
// scratch.
constexpr const char* kDefenseMagic = "webevo-defense";
// The optional pool-level traffic aggregate (absolute-day fetch
// histogram + global counters); see CrawlModulePool::Traffic.
constexpr const char* kTrafficMagic = "webevo-traffic";
// Delta-section magics of the incremental checkpoint mode.
constexpr const char* kCollDeltaMagic = "webevo-dcoll";
constexpr const char* kAllUrlsDeltaMagic = "webevo-dallurls";
constexpr const char* kUpdateDeltaMagic = "webevo-dupdate";
constexpr const char* kFrontierDeltaMagic = "webevo-dfrontier";
// Range guard on the section table, parsed before its checksum covers
// an allocation decision.
constexpr std::size_t kMaxSections = 16;
constexpr const char* kIncrementalKind = "incremental";
constexpr const char* kPeriodicKind = "periodic";

struct Section {
  std::string name;
  std::string bytes;
};

Status WriteContainer(const std::string& kind,
                      const std::vector<Section>& sections,
                      std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kCrawlerMagic << ' ' << kCrawlerFormatVersion << ' ' << kind
         << ' ' << sections.size();
  writer.Line(header.str());
  for (const Section& s : sections) {
    std::ostringstream line;
    line << "S " << s.name << ' ' << s.bytes.size() << ' '
         << Fnv1a64(s.bytes);
    writer.Line(line.str());
  }
  writer.Finish();
  for (const Section& s : sections) {
    out.write(s.bytes.data(),
              static_cast<std::streamsize>(s.bytes.size()));
  }
  if (!out.good()) return Status::Internal("checkpoint write failed");
  return Status::Ok();
}

/// Reads and fully verifies a container: the header trailer first, then
/// each section against its table length and checksum — so truncation
/// and corruption surface *before* any section is parsed — and finally
/// end-of-stream (a checkpoint with trailing garbage was not written by
/// us and must not be trusted).
StatusOr<std::vector<Section>> ReadContainer(
    std::istream& in, const std::string& expected_kind) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic, kind;
  int version = 0;
  std::size_t nsections = 0;
  hs >> magic >> version >> kind >> nsections;
  if (hs.fail() || magic != kCrawlerMagic) {
    return Status::InvalidArgument("not a crawler checkpoint");
  }
  if (version != kCrawlerFormatVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  Status header_end = ExpectLineEnd(hs, "checkpoint header");
  if (!header_end.ok()) return header_end;
  if (kind != expected_kind) {
    return Status::InvalidArgument(
        "checkpoint kind '" + kind + "' does not match this crawler ('" +
        expected_kind + "')");
  }
  if (nsections > kMaxSections) {
    return Status::InvalidArgument("implausible checkpoint section count");
  }
  struct TableEntry {
    std::string name;
    std::size_t length = 0;
    uint64_t hash = 0;
  };
  std::vector<TableEntry> table;
  table.reserve(nsections);
  for (std::size_t i = 0; i < nsections; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("checkpoint section table truncated");
    }
    std::istringstream is(*line);
    std::string tag;
    TableEntry entry;
    is >> tag >> entry.name >> entry.length >> entry.hash;
    if (is.fail() || tag != "S") {
      return Status::InvalidArgument("malformed checkpoint section record");
    }
    Status record_end = ExpectLineEnd(is, "section");
    if (!record_end.ok()) return record_end;
    table.push_back(std::move(entry));
  }
  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok() ? Status::InvalidArgument(
                          "trailing data in checkpoint header")
                    : end.status();
  }
  std::vector<Section> sections;
  sections.reserve(table.size());
  for (TableEntry& entry : table) {
    // Read in bounded chunks rather than trusting the table-claimed
    // length for one allocation: a crafted length can be recomputed
    // into a "valid" table, and the honest failure mode for a length
    // beyond the actual file is a truncation error, not bad_alloc.
    std::string bytes;
    bytes.reserve(std::min<std::size_t>(entry.length, 1 << 20));
    std::size_t remaining = entry.length;
    char buf[1 << 16];
    while (remaining > 0) {
      const std::size_t want = std::min(remaining, sizeof(buf));
      in.read(buf, static_cast<std::streamsize>(want));
      const auto got = static_cast<std::size_t>(in.gcount());
      bytes.append(buf, got);
      if (got < want) {
        return Status::InvalidArgument(
            "checkpoint truncated in section '" + entry.name + "'");
      }
      remaining -= got;
    }
    if (Fnv1a64(bytes) != entry.hash) {
      return Status::InvalidArgument("checkpoint section '" + entry.name +
                                     "' corrupted");
    }
    sections.push_back(Section{std::move(entry.name), std::move(bytes)});
  }
  Status stream_end = ExpectStreamEnd(in, "checkpoint");
  if (!stream_end.ok()) return stream_end;
  return sections;
}

const std::string* FindSection(const std::vector<Section>& sections,
                               const std::string& name) {
  for (const Section& s : sections) {
    if (s.name == name) return &s.bytes;
  }
  return nullptr;
}

Status MissingSection(const std::string& name) {
  return Status::InvalidArgument("checkpoint missing section '" + name +
                                 "'");
}

void WritePolite(const std::vector<std::pair<uint32_t, double>>& records,
                 std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kPoliteMagic << ' ' << kFormatVersion << ' ' << records.size();
  writer.Line(header.str());
  for (const auto& [site, last_access] : records) {
    std::ostringstream os;
    os.precision(17);
    os << "A " << site << ' ' << last_access;
    writer.Line(os.str());
  }
  writer.Finish();
}

StatusOr<std::vector<std::pair<uint32_t, double>>> ReadPolite(
    std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  hs >> magic >> version >> count;
  if (hs.fail() || magic != kPoliteMagic || version != kFormatVersion) {
    return Status::InvalidArgument("not a politeness snapshot");
  }
  Status header_end = ExpectLineEnd(hs, "polite header");
  if (!header_end.ok()) return header_end;
  std::vector<std::pair<uint32_t, double>> records;
  records.reserve(std::min<std::size_t>(count, 1 << 20));
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("politeness record count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    double last_access = 0.0;
    is >> tag >> site >> last_access;
    if (is.fail() || tag != "A") {
      return Status::InvalidArgument("malformed politeness record");
    }
    Status record_end = ExpectLineEnd(is, "politeness");
    if (!record_end.ok()) return record_end;
    records.emplace_back(site, last_access);
  }
  Status end = FinishFramedStream(reader, in, "politeness snapshot");
  if (!end.ok()) return end;
  return records;
}

void WriteTracker(const freshness::FreshnessTracker& tracker,
                  std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kTrackerMagic << ' ' << kFormatVersion << ' '
         << tracker.size();
  writer.Line(header.str());
  for (std::size_t i = 0; i < tracker.size(); ++i) {
    std::ostringstream os;
    os.precision(17);
    os << "V " << tracker.times()[i] << ' ' << tracker.values()[i];
    writer.Line(os.str());
  }
  writer.Finish();
}

struct TrackerSeries {
  std::vector<double> times;
  std::vector<double> values;
};

StatusOr<TrackerSeries> ReadTracker(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  hs >> magic >> version >> count;
  if (hs.fail() || magic != kTrackerMagic || version != kFormatVersion) {
    return Status::InvalidArgument("not a tracker snapshot");
  }
  Status header_end = ExpectLineEnd(hs, "tracker header");
  if (!header_end.ok()) return header_end;
  TrackerSeries series;
  series.times.reserve(std::min<std::size_t>(count, 1 << 20));
  series.values.reserve(std::min<std::size_t>(count, 1 << 20));
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("tracker sample count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    double time = 0.0, value = 0.0;
    is >> tag >> time >> value;
    if (is.fail() || tag != "V") {
      return Status::InvalidArgument("malformed tracker record");
    }
    Status record_end = ExpectLineEnd(is, "tracker");
    if (!record_end.ok()) return record_end;
    series.times.push_back(time);
    series.values.push_back(value);
  }
  Status end = FinishFramedStream(reader, in, "tracker snapshot");
  if (!end.ok()) return end;
  return series;
}

// A plain URL list (the BFS queue in queue order, the seen-set and the
// pending-admission set in canonical order).
void WriteUrlList(const std::vector<simweb::Url>& urls,
                  std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kUrlsMagic << ' ' << kFormatVersion << ' ' << urls.size();
  writer.Line(header.str());
  for (const simweb::Url& url : urls) {
    std::ostringstream os;
    os << "Q " << url.site << ' ' << url.slot << ' ' << url.incarnation;
    writer.Line(os.str());
  }
  writer.Finish();
}

StatusOr<std::vector<simweb::Url>> ReadUrlList(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  hs >> magic >> version >> count;
  if (hs.fail() || magic != kUrlsMagic || version != kFormatVersion) {
    return Status::InvalidArgument("not a url-list snapshot");
  }
  Status header_end = ExpectLineEnd(hs, "url-list header");
  if (!header_end.ok()) return header_end;
  std::vector<simweb::Url> urls;
  urls.reserve(std::min<std::size_t>(count, 1 << 20));
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("url-list record count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    is >> tag >> url.site >> url.slot >> url.incarnation;
    if (is.fail() || tag != "Q") {
      return Status::InvalidArgument("malformed url-list record");
    }
    Status record_end = ExpectLineEnd(is, "url-list");
    if (!record_end.ok()) return record_end;
    urls.push_back(url);
  }
  Status end = FinishFramedStream(reader, in, "url-list snapshot");
  if (!end.ok()) return end;
  return urls;
}

std::string RunningStatLine(const RunningStat& stat) {
  RunningStat::State state = stat.SaveState();
  std::ostringstream os;
  os.precision(17);
  os << "L " << state.count << ' ' << state.mean << ' ' << state.m2
     << ' ' << state.min << ' ' << state.max;
  return os.str();
}

StatusOr<RunningStat::State> ParseRunningStatLine(
    const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  RunningStat::State state;
  is >> tag >> state.count >> state.mean >> state.m2 >> state.min >>
      state.max;
  if (is.fail() || tag != "L") {
    return Status::InvalidArgument("malformed running-stat record");
  }
  Status record_end = ExpectLineEnd(is, "running-stat");
  if (!record_end.ok()) return record_end;
  return state;
}

// The failure-pipeline state both crawlers checkpoint: the per-site
// circuit breakers with their backoff RNG lanes (incremental; empty
// for the periodic crawler) and the per-URL failure counts (retirement
// counts / per-cycle re-queue counts). Records are written in
// canonical order — sites ascending, URLs by identity — so equal state
// yields equal bytes at every shard count.
struct SiteFailureRecord {
  uint32_t site = 0;
  uint32_t consecutive = 0;
  double quarantined_until = 0.0;
  int rng_init = 0;
  std::array<uint64_t, 4> lane{};
};

struct UrlFailureRecord {
  simweb::Url url;
  uint32_t count = 0;
};

struct FailureSnapshot {
  std::vector<SiteFailureRecord> sites;
  std::vector<UrlFailureRecord> urls;
};

void WriteFailure(const FailureSnapshot& snap, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kFailureMagic << ' ' << kFormatVersion << ' '
         << snap.sites.size() << ' ' << snap.urls.size();
  writer.Line(header.str());
  for (const SiteFailureRecord& r : snap.sites) {
    std::ostringstream os;
    os.precision(17);
    os << "S " << r.site << ' ' << r.consecutive << ' '
       << r.quarantined_until << ' ' << r.rng_init;
    for (uint64_t lane : r.lane) os << ' ' << lane;
    writer.Line(os.str());
  }
  for (const UrlFailureRecord& r : snap.urls) {
    std::ostringstream os;
    os << "U " << r.url.site << ' ' << r.url.slot << ' '
       << r.url.incarnation << ' ' << r.count;
    writer.Line(os.str());
  }
  writer.Finish();
}

StatusOr<FailureSnapshot> ReadFailure(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t nsites = 0, nurls = 0;
  hs >> magic >> version >> nsites >> nurls;
  if (hs.fail() || magic != kFailureMagic || version != kFormatVersion) {
    return Status::InvalidArgument("not a failure-state snapshot");
  }
  Status header_end = ExpectLineEnd(hs, "failure header");
  if (!header_end.ok()) return header_end;
  FailureSnapshot snap;
  snap.sites.reserve(std::min<std::size_t>(nsites, 1 << 20));
  snap.urls.reserve(std::min<std::size_t>(nurls, 1 << 20));
  for (std::size_t i = 0; i < nsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("failure site count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    SiteFailureRecord r;
    is >> tag >> r.site >> r.consecutive >> r.quarantined_until >>
        r.rng_init;
    for (uint64_t& lane : r.lane) is >> lane;
    if (is.fail() || tag != "S") {
      return Status::InvalidArgument("malformed failure site record");
    }
    Status record_end = ExpectLineEnd(is, "failure site");
    if (!record_end.ok()) return record_end;
    snap.sites.push_back(r);
  }
  for (std::size_t i = 0; i < nurls; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("failure url count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    UrlFailureRecord r;
    is >> tag >> r.url.site >> r.url.slot >> r.url.incarnation >>
        r.count;
    if (is.fail() || tag != "U") {
      return Status::InvalidArgument("malformed failure url record");
    }
    Status record_end = ExpectLineEnd(is, "failure url");
    if (!record_end.ok()) return record_end;
    snap.urls.push_back(r);
  }
  Status end = FinishFramedStream(reader, in, "failure snapshot");
  if (!end.ok()) return end;
  return snap;
}

// The defense-layer state the incremental crawler checkpoints: the
// per-site diminishing-returns machines (`D` records, sites ascending)
// and the fingerprint registry's canonical owners (`F` records, sorted
// by (hi, lo)) — both canonical orders, so equal state yields equal
// bytes at every shard count.
struct DefenseSiteRecord {
  uint32_t site = 0;
  uint64_t window_fetches = 0;
  uint64_t window_fresh = 0;
  uint32_t throttle_level = 0;
  int quarantined = 0;
  double quarantined_until = 0.0;
  uint64_t suppressed_total = 0;
};

struct DefenseFingerprintRecord {
  Checksum128 checksum;
  simweb::Url url;
};

struct DefenseSnapshot {
  std::vector<DefenseSiteRecord> sites;
  std::vector<DefenseFingerprintRecord> fingerprints;
};

void WriteDefense(const DefenseSnapshot& snap, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kDefenseMagic << ' ' << kFormatVersion << ' '
         << snap.sites.size() << ' ' << snap.fingerprints.size();
  writer.Line(header.str());
  for (const DefenseSiteRecord& r : snap.sites) {
    std::ostringstream os;
    os.precision(17);
    os << "D " << r.site << ' ' << r.window_fetches << ' '
       << r.window_fresh << ' ' << r.throttle_level << ' '
       << r.quarantined << ' ' << r.quarantined_until << ' '
       << r.suppressed_total;
    writer.Line(os.str());
  }
  for (const DefenseFingerprintRecord& r : snap.fingerprints) {
    std::ostringstream os;
    os << "F " << r.checksum.hi << ' ' << r.checksum.lo << ' '
       << r.url.site << ' ' << r.url.slot << ' ' << r.url.incarnation;
    writer.Line(os.str());
  }
  writer.Finish();
}

StatusOr<DefenseSnapshot> ReadDefense(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t nsites = 0, nfps = 0;
  hs >> magic >> version >> nsites >> nfps;
  if (hs.fail() || magic != kDefenseMagic || version != kFormatVersion) {
    return Status::InvalidArgument("not a defense-state snapshot");
  }
  Status header_end = ExpectLineEnd(hs, "defense header");
  if (!header_end.ok()) return header_end;
  DefenseSnapshot snap;
  snap.sites.reserve(std::min<std::size_t>(nsites, 1 << 20));
  snap.fingerprints.reserve(std::min<std::size_t>(nfps, 1 << 20));
  for (std::size_t i = 0; i < nsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("defense site count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    DefenseSiteRecord r;
    is >> tag >> r.site >> r.window_fetches >> r.window_fresh >>
        r.throttle_level >> r.quarantined >> r.quarantined_until >>
        r.suppressed_total;
    if (is.fail() || tag != "D") {
      return Status::InvalidArgument("malformed defense site record");
    }
    Status record_end = ExpectLineEnd(is, "defense site");
    if (!record_end.ok()) return record_end;
    snap.sites.push_back(r);
  }
  for (std::size_t i = 0; i < nfps; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("defense fingerprint count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    DefenseFingerprintRecord r;
    is >> tag >> r.checksum.hi >> r.checksum.lo >> r.url.site >>
        r.url.slot >> r.url.incarnation;
    if (is.fail() || tag != "F") {
      return Status::InvalidArgument(
          "malformed defense fingerprint record");
    }
    Status record_end = ExpectLineEnd(is, "defense fingerprint");
    if (!record_end.ok()) return record_end;
    snap.fingerprints.push_back(r);
  }
  Status end = FinishFramedStream(reader, in, "defense snapshot");
  if (!end.ok()) return end;
  return snap;
}

// The pool-level traffic aggregate (CrawlModulePool::Traffic): one `G`
// record with the global counters and time bounds, then one `D` record
// per *non-empty* absolute day bucket, ascending — canonical because
// the aggregate is a pure function of the fetch stream.
void WriteTraffic(const CrawlModulePool::Traffic& traffic,
                  std::ostream& out) {
  std::size_t ndays = 0;
  for (uint64_t count : traffic.fetches_per_day) {
    if (count != 0) ++ndays;
  }
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kTrafficMagic << ' ' << kFormatVersion << ' ' << ndays;
  writer.Line(header.str());
  {
    std::ostringstream os;
    os.precision(17);
    os << "G " << traffic.fetch_count << ' ' << traffic.failure_count
       << ' ' << traffic.politeness_rejections << ' '
       << (traffic.any_fetch ? 1 : 0) << ' ' << traffic.first_fetch_time
       << ' ' << traffic.last_fetch_time;
    writer.Line(os.str());
  }
  for (std::size_t day = 0; day < traffic.fetches_per_day.size(); ++day) {
    if (traffic.fetches_per_day[day] == 0) continue;
    std::ostringstream os;
    os << "D " << day << ' ' << traffic.fetches_per_day[day];
    writer.Line(os.str());
  }
  writer.Finish();
}

StatusOr<CrawlModulePool::Traffic> ReadTraffic(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t ndays = 0;
  hs >> magic >> version >> ndays;
  if (hs.fail() || magic != kTrafficMagic || version != kFormatVersion) {
    return Status::InvalidArgument("not a traffic snapshot");
  }
  Status header_end = ExpectLineEnd(hs, "traffic header");
  if (!header_end.ok()) return header_end;
  CrawlModulePool::Traffic traffic;
  auto g_line = reader.Next();
  if (!g_line.ok()) return Status::InvalidArgument("missing traffic G record");
  {
    std::istringstream is(*g_line);
    std::string tag;
    int any = 0;
    is >> tag >> traffic.fetch_count >> traffic.failure_count >>
        traffic.politeness_rejections >> any >> traffic.first_fetch_time >>
        traffic.last_fetch_time;
    if (is.fail() || tag != "G") {
      return Status::InvalidArgument("malformed traffic G record");
    }
    Status record_end = ExpectLineEnd(is, "traffic G");
    if (!record_end.ok()) return record_end;
    traffic.any_fetch = any != 0;
  }
  // Range guard before sizing the histogram off parsed day indices.
  constexpr std::size_t kMaxTrafficDays = 1 << 24;
  for (std::size_t i = 0; i < ndays; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("traffic day count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    std::size_t day = 0;
    uint64_t count = 0;
    is >> tag >> day >> count;
    if (is.fail() || tag != "D" || day >= kMaxTrafficDays) {
      return Status::InvalidArgument("malformed traffic day record");
    }
    Status record_end = ExpectLineEnd(is, "traffic day");
    if (!record_end.ok()) return record_end;
    if (day >= traffic.fetches_per_day.size()) {
      traffic.fetches_per_day.resize(day + 1, 0);
    }
    traffic.fetches_per_day[day] = count;
  }
  Status end = FinishFramedStream(reader, in, "traffic snapshot");
  if (!end.ok()) return end;
  return traffic;
}

}  // namespace

/// Shared plumbing of the full and incremental whole-crawler
/// checkpoints — the private-state section builders, their parsers,
/// and the delta-segment apply. Befriended by IncrementalCrawler so
/// SaveCrawler / LoadCrawler / CheckpointIncremental share one
/// implementation of each section instead of three.
struct CheckpointIo {
  /// Parsed "meta" section of an incremental-crawler checkpoint.
  struct IncMetaState {
    double now = 0.0, next_refine = 0.0, next_rebalance = 0.0,
           next_sample = 0.0, steady_since = 0.0;
    uint64_t batches_completed = 0;
    int reached_capacity = 0;
    int64_t refinements = 0;
    IncrementalCrawler::Stats stats;
  };

  static std::string IncMeta(const IncrementalCrawler& crawler) {
    std::ostringstream os;
    TrailerWriter writer(os);
    {
      std::ostringstream header;
      header << kIncMetaMagic << ' ' << kIncMetaVersion;
      writer.Line(header.str());
    }
    {
      std::ostringstream t;
      t.precision(17);
      t << "T " << crawler.now_ << ' ' << crawler.next_refine_ << ' '
        << crawler.next_rebalance_ << ' ' << crawler.next_sample_ << ' '
        << crawler.steady_since_;
      writer.Line(t.str());
    }
    {
      std::ostringstream b;
      b << "B " << crawler.batches_completed_ << ' '
        << (crawler.reached_capacity_once_ ? 1 : 0);
      writer.Line(b.str());
    }
    {
      const IncrementalCrawler::Stats& s = crawler.stats_;
      std::ostringstream c;
      c << "C " << s.crawls << ' ' << s.in_place_updates << ' '
        << s.pages_added << ' ' << s.pages_evicted << ' '
        << s.replacements_executed << ' ' << s.dead_pages_removed << ' '
        << s.changes_detected << ' ' << s.politeness_retries << ' '
        << s.in_batch_retries << ' ' << s.lease_budget_granted << ' '
        << s.lease_admissions << ' ' << s.fetch_failures << ' '
        << s.transient_errors << ' ' << s.timeout_errors << ' '
        << s.failure_retries << ' ' << s.sites_quarantined << ' '
        << s.urls_retired << ' ' << s.wasted_fetches << ' '
        << s.trap_sites_throttled << ' ' << s.duplicate_urls_suppressed
        << ' ' << s.pages_migrated << ' '
        << crawler.ranking_module_.refinement_count();
      writer.Line(c.str());
    }
    writer.Line(RunningStatLine(crawler.stats_.new_page_latency_days));
    writer.Line(RunningStatLine(crawler.stats_.backoff_days));
    writer.Finish();
    return os.str();
  }

  static StatusOr<IncMetaState> ParseIncMeta(const std::string& bytes) {
    IncMetaState meta;
    int meta_version = 0;
    std::istringstream ms(bytes);
    TrailerReader reader(ms);
    auto header = reader.Next();
    if (!header.ok()) return header.status();
    {
      std::istringstream hs(*header);
      std::string magic;
      hs >> magic >> meta_version;
      if (hs.fail() || magic != kIncMetaMagic) {
        return Status::InvalidArgument("malformed checkpoint meta header");
      }
      // Older metas stay loadable: a version-1 C record lacks the
      // lease ledger, versions 1-2 lack the failure ledger, versions
      // 1-3 lack the defense ledger — those counters simply restart
      // at zero.
      if (meta_version < 1 || meta_version > kIncMetaVersion) {
        return Status::InvalidArgument(
            "unsupported checkpoint meta version");
      }
      Status end = ExpectLineEnd(hs, "meta header");
      if (!end.ok()) return end;
    }
    auto t_line = reader.Next();
    if (!t_line.ok()) return t_line.status();
    {
      std::istringstream is(*t_line);
      std::string tag;
      is >> tag >> meta.now >> meta.next_refine >> meta.next_rebalance >>
          meta.next_sample >> meta.steady_since;
      if (is.fail() || tag != "T") {
        return Status::InvalidArgument("malformed checkpoint T record");
      }
      Status end = ExpectLineEnd(is, "T");
      if (!end.ok()) return end;
    }
    auto b_line = reader.Next();
    if (!b_line.ok()) return b_line.status();
    {
      std::istringstream is(*b_line);
      std::string tag;
      is >> tag >> meta.batches_completed >> meta.reached_capacity;
      if (is.fail() || tag != "B") {
        return Status::InvalidArgument("malformed checkpoint B record");
      }
      Status end = ExpectLineEnd(is, "B");
      if (!end.ok()) return end;
    }
    auto c_line = reader.Next();
    if (!c_line.ok()) return c_line.status();
    {
      std::istringstream is(*c_line);
      std::string tag;
      IncrementalCrawler::Stats& stats = meta.stats;
      is >> tag >> stats.crawls >> stats.in_place_updates >>
          stats.pages_added >> stats.pages_evicted >>
          stats.replacements_executed >> stats.dead_pages_removed >>
          stats.changes_detected >> stats.politeness_retries >>
          stats.in_batch_retries;
      if (meta_version >= 2) {
        is >> stats.lease_budget_granted >> stats.lease_admissions;
      }
      if (meta_version >= 3) {
        is >> stats.fetch_failures >> stats.transient_errors >>
            stats.timeout_errors >> stats.failure_retries >>
            stats.sites_quarantined >> stats.urls_retired;
      }
      if (meta_version >= 4) {
        is >> stats.wasted_fetches >> stats.trap_sites_throttled >>
            stats.duplicate_urls_suppressed >> stats.pages_migrated;
      }
      is >> meta.refinements;
      if (is.fail() || tag != "C") {
        return Status::InvalidArgument("malformed checkpoint C record");
      }
      Status end = ExpectLineEnd(is, "C");
      if (!end.ok()) return end;
    }
    auto l_line = reader.Next();
    if (!l_line.ok()) return l_line.status();
    auto latency = ParseRunningStatLine(*l_line);
    if (!latency.ok()) return latency.status();
    meta.stats.new_page_latency_days.RestoreState(*latency);
    if (meta_version >= 3) {
      auto backoff_line = reader.Next();
      if (!backoff_line.ok()) return backoff_line.status();
      auto backoff = ParseRunningStatLine(*backoff_line);
      if (!backoff.ok()) return backoff.status();
      meta.stats.backoff_days.RestoreState(*backoff);
    }
    Status end = FinishFramedStream(reader, ms, "checkpoint meta");
    if (!end.ok()) return end;
    return meta;
  }

  /// Installs a parsed meta section's scalars (everything but the
  /// sections with their own appliers).
  static void ApplyIncMeta(const IncMetaState& meta,
                           IncrementalCrawler* crawler) {
    crawler->stats_ = meta.stats;
    crawler->ranking_module_.RestoreRefinementCount(meta.refinements);
    crawler->now_ = meta.now;
    crawler->next_refine_ = meta.next_refine;
    crawler->next_rebalance_ = meta.next_rebalance;
    crawler->next_sample_ = meta.next_sample;
    crawler->steady_since_ = meta.steady_since;
    crawler->reached_capacity_once_ = meta.reached_capacity != 0;
    crawler->batches_completed_ = meta.batches_completed;
    crawler->bootstrapped_ = true;
  }

  static std::string Pending(const IncrementalCrawler& crawler) {
    // The sharded pending-admission sets merge into one canonical URL
    // list (the split is re-derived on load from the loading crawler's
    // shard count).
    std::vector<simweb::Url> pending;
    for (const auto& shard : crawler.pending_shards_) {
      pending.insert(pending.end(), shard.begin(), shard.end());
    }
    std::sort(pending.begin(), pending.end(), IdentityLess);
    std::ostringstream os;
    WriteUrlList(pending, os);
    return os.str();
  }

  static void ApplyPending(const std::vector<simweb::Url>& pending,
                           IncrementalCrawler* crawler) {
    for (auto& shard : crawler->pending_shards_) shard.clear();
    for (const simweb::Url& url : pending) crawler->PendingInsert(url);
  }

  static std::string Failure(const IncrementalCrawler& crawler) {
    // Circuit breakers (with their backoff RNG lane positions) and
    // retirement counts, in canonical order, so a resume mid-backoff
    // or mid-quarantine replays the same schedule.
    FailureSnapshot snap;
    for (const auto& shard : crawler.site_failure_shards_) {
      for (const auto& [site, state] : shard) {
        SiteFailureRecord r;
        r.site = site;
        r.consecutive = state.consecutive;
        r.quarantined_until = state.quarantined_until;
        r.rng_init = state.rng_init ? 1 : 0;
        if (state.rng_init) r.lane = state.backoff.State();
        snap.sites.push_back(r);
      }
    }
    std::sort(snap.sites.begin(), snap.sites.end(),
              [](const SiteFailureRecord& a, const SiteFailureRecord& b) {
                return a.site < b.site;
              });
    for (const auto& shard : crawler.url_failure_shards_) {
      for (const auto& [url, fails] : shard) {
        snap.urls.push_back(UrlFailureRecord{url, fails});
      }
    }
    std::sort(snap.urls.begin(), snap.urls.end(),
              [](const UrlFailureRecord& a, const UrlFailureRecord& b) {
                return IdentityLess(a.url, b.url);
              });
    std::ostringstream os;
    WriteFailure(snap, os);
    return os.str();
  }

  static void ApplyFailure(const FailureSnapshot& failure,
                           IncrementalCrawler* crawler) {
    // Failure state re-shards by the same site % N ownership rule the
    // live pipeline uses, so a resume at any shard count lands each
    // site's backoff lane (mid-sequence RNG position included) and
    // each URL's fail count in the shard that will consult it.
    const auto shards =
        static_cast<uint32_t>(crawler->site_failure_shards_.size());
    for (auto& shard : crawler->site_failure_shards_) shard.clear();
    for (const SiteFailureRecord& r : failure.sites) {
      IncrementalCrawler::SiteFailureState state;
      state.consecutive = r.consecutive;
      state.quarantined_until = r.quarantined_until;
      state.rng_init = r.rng_init != 0;
      if (state.rng_init) state.backoff.SetState(r.lane);
      crawler->site_failure_shards_[r.site % shards].emplace(r.site,
                                                            state);
    }
    for (auto& shard : crawler->url_failure_shards_) shard.clear();
    for (const UrlFailureRecord& r : failure.urls) {
      crawler->url_failure_shards_[r.url.site % shards].emplace(r.url,
                                                               r.count);
    }
  }

  static std::string Defense(const IncrementalCrawler& crawler) {
    // Per-site diminishing-returns machines and the fingerprint
    // registry, in canonical order, so a run killed mid-throttle
    // resumes byte-identically at any shard count.
    DefenseSnapshot snap;
    for (const auto& shard : crawler.site_defense_shards_) {
      for (const auto& [site, state] : shard) {
        DefenseSiteRecord r;
        r.site = site;
        r.window_fetches = state.window_fetches;
        r.window_fresh = state.window_fresh;
        r.throttle_level = state.throttle_level;
        r.quarantined = state.quarantined ? 1 : 0;
        r.quarantined_until = state.quarantined_until;
        r.suppressed_total = state.suppressed_total;
        snap.sites.push_back(r);
      }
    }
    std::sort(snap.sites.begin(), snap.sites.end(),
              [](const DefenseSiteRecord& a, const DefenseSiteRecord& b) {
                return a.site < b.site;
              });
    for (const auto& [checksum, url] :
         crawler.all_urls_.SortedFingerprints()) {
      snap.fingerprints.push_back(DefenseFingerprintRecord{checksum, url});
    }
    std::ostringstream os;
    WriteDefense(snap, os);
    return os.str();
  }

  static void ApplyDefense(const DefenseSnapshot& defense,
                           IncrementalCrawler* crawler) {
    // Re-shards by the same site % N ownership rule as the live layer.
    // Must run after the AllUrls commit (ReplaceEntriesFrom), which
    // installs the staged — registry-free — URL table.
    const auto shards =
        static_cast<uint32_t>(crawler->site_defense_shards_.size());
    for (auto& shard : crawler->site_defense_shards_) shard.clear();
    for (const DefenseSiteRecord& r : defense.sites) {
      IncrementalCrawler::SiteDefenseState state;
      state.window_fetches = r.window_fetches;
      state.window_fresh = r.window_fresh;
      state.throttle_level = r.throttle_level;
      state.quarantined = r.quarantined != 0;
      state.quarantined_until = r.quarantined_until;
      state.suppressed_total = r.suppressed_total;
      crawler->site_defense_shards_[r.site % shards].emplace(r.site,
                                                             state);
    }
    crawler->all_urls_.ClearFingerprints();
    for (const DefenseFingerprintRecord& r : defense.fingerprints) {
      crawler->all_urls_.ReassignFingerprint(r.checksum, r.url);
    }
  }

  // ---- Delta sections (incremental checkpoint segments). Records are
  // listed in canonical URL-identity / ascending-site order over dirty
  // sets that are pure functions of the simulation, so a segment is
  // byte-identical at every shard count.

  static std::string CollDelta(const IncrementalCrawler& crawler) {
    storage::RecordStore<CollectionEntry>::DirtySet dirty;
    crawler.collection_.AppendDirty(&dirty);
    std::vector<std::string> upserts;
    std::vector<simweb::Url> tombstones;
    for (const simweb::Url& url : dirty) {
      const CollectionEntry* entry = crawler.collection_.Find(url);
      if (entry != nullptr) {
        upserts.push_back(EntryLine(*entry));
      } else {
        tombstones.push_back(url);
      }
    }
    std::ostringstream os;
    TrailerWriter writer(os);
    std::ostringstream header;
    header << kCollDeltaMagic << ' ' << kFormatVersion << ' '
           << upserts.size() << ' ' << tombstones.size();
    writer.Line(header.str());
    for (const std::string& line : upserts) writer.Line(line);
    for (const simweb::Url& url : tombstones) {
      std::ostringstream t;
      t << "D " << url.site << ' ' << url.slot << ' ' << url.incarnation;
      writer.Line(t.str());
    }
    writer.Finish();
    return os.str();
  }

  static Status ApplyCollDelta(const std::string& bytes,
                               IncrementalCrawler* crawler) {
    std::istringstream in(bytes);
    TrailerReader reader(in);
    auto header = reader.Next();
    if (!header.ok()) return header.status();
    std::istringstream hs(*header);
    std::string magic;
    int version = 0;
    std::size_t nupserts = 0, ntombstones = 0;
    hs >> magic >> version >> nupserts >> ntombstones;
    if (hs.fail() || magic != kCollDeltaMagic ||
        version != kFormatVersion) {
      return Status::InvalidArgument("not a collection delta");
    }
    Status header_end = ExpectLineEnd(hs, "dcoll header");
    if (!header_end.ok()) return header_end;
    std::vector<CollectionEntry> upserts;
    upserts.reserve(std::min<std::size_t>(nupserts, 1 << 20));
    for (std::size_t i = 0; i < nupserts; ++i) {
      auto line = reader.Next();
      if (!line.ok()) {
        return Status::InvalidArgument("dcoll upsert count mismatch");
      }
      auto entry = ParseEntry(*line);
      if (!entry.ok()) return entry.status();
      upserts.push_back(std::move(entry).value());
    }
    std::vector<simweb::Url> tombstones;
    tombstones.reserve(std::min<std::size_t>(ntombstones, 1 << 20));
    for (std::size_t i = 0; i < ntombstones; ++i) {
      auto line = reader.Next();
      if (!line.ok()) {
        return Status::InvalidArgument("dcoll tombstone count mismatch");
      }
      std::istringstream is(*line);
      std::string tag;
      simweb::Url url;
      is >> tag >> url.site >> url.slot >> url.incarnation;
      if (is.fail() || tag != "D") {
        return Status::InvalidArgument("malformed dcoll tombstone");
      }
      Status record_end = ExpectLineEnd(is, "dcoll tombstone");
      if (!record_end.ok()) return record_end;
      tombstones.push_back(url);
    }
    Status end = FinishFramedStream(reader, in, "collection delta");
    if (!end.ok()) return end;
    // Tombstones first so upserts never transiently breach capacity: a
    // segment's end state satisfies size <= capacity, and erase-then-
    // insert approaches it monotonically from below.
    for (const simweb::Url& url : tombstones) {
      (void)crawler->collection_.Remove(url);  // absent is fine
    }
    for (CollectionEntry& entry : upserts) {
      Status st = crawler->collection_.Upsert(std::move(entry));
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  static std::string AllUrlsDelta(const IncrementalCrawler& crawler) {
    AllUrls::DirtySet dirty;
    crawler.all_urls_.AppendDirty(&dirty);
    std::ostringstream os;
    TrailerWriter writer(os);
    // AllUrls records are never erased (dead URLs keep their record as
    // a logical tombstone), so the delta is upserts only.
    std::vector<std::string> upserts;
    for (const simweb::Url& url : dirty) {
      const AllUrls::UrlInfo* info = crawler.all_urls_.Find(url);
      if (info == nullptr) continue;
      std::ostringstream rec;
      rec.precision(17);
      rec << "U " << url.site << ' ' << url.slot << ' '
          << url.incarnation << ' ' << info->first_seen << ' '
          << info->in_links << ' ' << (info->dead ? 1 : 0);
      upserts.push_back(rec.str());
    }
    std::ostringstream header;
    header << kAllUrlsDeltaMagic << ' ' << kFormatVersion << ' '
           << upserts.size();
    writer.Line(header.str());
    for (const std::string& line : upserts) writer.Line(line);
    writer.Finish();
    return os.str();
  }

  static Status ApplyAllUrlsDelta(const std::string& bytes,
                                  IncrementalCrawler* crawler) {
    std::istringstream in(bytes);
    TrailerReader reader(in);
    auto header = reader.Next();
    if (!header.ok()) return header.status();
    std::istringstream hs(*header);
    std::string magic;
    int version = 0;
    std::size_t count = 0;
    hs >> magic >> version >> count;
    if (hs.fail() || magic != kAllUrlsDeltaMagic ||
        version != kFormatVersion) {
      return Status::InvalidArgument("not an AllUrls delta");
    }
    Status header_end = ExpectLineEnd(hs, "dallurls header");
    if (!header_end.ok()) return header_end;
    std::vector<std::pair<simweb::Url, AllUrls::UrlInfo>> upserts;
    upserts.reserve(std::min<std::size_t>(count, 1 << 20));
    for (std::size_t i = 0; i < count; ++i) {
      auto line = reader.Next();
      if (!line.ok()) {
        return Status::InvalidArgument("dallurls record count mismatch");
      }
      std::istringstream is(*line);
      std::string tag;
      simweb::Url url;
      AllUrls::UrlInfo info;
      int dead = 0;
      is >> tag >> url.site >> url.slot >> url.incarnation >>
          info.first_seen >> info.in_links >> dead;
      if (is.fail() || tag != "U") {
        return Status::InvalidArgument("malformed dallurls record");
      }
      Status record_end = ExpectLineEnd(is, "dallurls record");
      if (!record_end.ok()) return record_end;
      info.dead = dead != 0;
      upserts.emplace_back(url, info);
    }
    Status end = FinishFramedStream(reader, in, "allurls delta");
    if (!end.ok()) return end;
    for (const auto& [url, info] : upserts) {
      crawler->all_urls_.Restore(url, info);
    }
    return Status::Ok();
  }

  static std::string FrontierDelta(const IncrementalCrawler& crawler) {
    std::ostringstream os;
    TrailerWriter writer(os);
    // The frontier marking ledger: for each URL whose queue position
    // may have moved since the last checkpoint, either its exact live
    // (when, seq) key or a tombstone. Unlike the full frontier section
    // (ordered by seq), delta records follow the ledger's canonical
    // URL-identity order.
    std::vector<std::string> upserts;
    std::vector<simweb::Url> tombstones;
    for (const simweb::Url& url : crawler.frontier_dirty_) {
      auto entry = crawler.coll_urls_.LookupEntry(url);
      if (entry.has_value()) {
        std::ostringstream rec;
        rec.precision(17);
        rec << "F " << url.site << ' ' << url.slot << ' '
            << url.incarnation << ' ' << entry->when << ' ' << entry->seq;
        upserts.push_back(rec.str());
      } else {
        tombstones.push_back(url);
      }
    }
    std::ostringstream header;
    header.precision(17);
    header << kFrontierDeltaMagic << ' ' << kFormatVersion << ' '
           << upserts.size() << ' ' << tombstones.size() << ' '
           << crawler.coll_urls_.next_seq() << ' '
           << crawler.coll_urls_.front_when();
    writer.Line(header.str());
    for (const std::string& line : upserts) writer.Line(line);
    for (const simweb::Url& url : tombstones) {
      std::ostringstream t;
      t << "D " << url.site << ' ' << url.slot << ' ' << url.incarnation;
      writer.Line(t.str());
    }
    writer.Finish();
    return os.str();
  }

  static Status ApplyFrontierDelta(const std::string& bytes,
                                   IncrementalCrawler* crawler) {
    std::istringstream in(bytes);
    TrailerReader reader(in);
    auto header = reader.Next();
    if (!header.ok()) return header.status();
    std::istringstream hs(*header);
    std::string magic;
    int version = 0;
    std::size_t nupserts = 0, ntombstones = 0;
    uint64_t next_seq = 0;
    double front_when = 0.0;
    hs >> magic >> version >> nupserts >> ntombstones >> next_seq >>
        front_when;
    if (hs.fail() || magic != kFrontierDeltaMagic ||
        version != kFormatVersion) {
      return Status::InvalidArgument("not a frontier delta");
    }
    Status header_end = ExpectLineEnd(hs, "dfrontier header");
    if (!header_end.ok()) return header_end;
    struct Upsert {
      simweb::Url url;
      double when = 0.0;
      uint64_t seq = 0;
    };
    std::vector<Upsert> upserts;
    upserts.reserve(std::min<std::size_t>(nupserts, 1 << 20));
    for (std::size_t i = 0; i < nupserts; ++i) {
      auto line = reader.Next();
      if (!line.ok()) {
        return Status::InvalidArgument("dfrontier upsert count mismatch");
      }
      std::istringstream is(*line);
      std::string tag;
      Upsert u;
      is >> tag >> u.url.site >> u.url.slot >> u.url.incarnation >>
          u.when >> u.seq;
      if (is.fail() || tag != "F") {
        return Status::InvalidArgument("malformed dfrontier record");
      }
      Status record_end = ExpectLineEnd(is, "dfrontier record");
      if (!record_end.ok()) return record_end;
      upserts.push_back(u);
    }
    std::vector<simweb::Url> tombstones;
    tombstones.reserve(std::min<std::size_t>(ntombstones, 1 << 20));
    for (std::size_t i = 0; i < ntombstones; ++i) {
      auto line = reader.Next();
      if (!line.ok()) {
        return Status::InvalidArgument(
            "dfrontier tombstone count mismatch");
      }
      std::istringstream is(*line);
      std::string tag;
      simweb::Url url;
      is >> tag >> url.site >> url.slot >> url.incarnation;
      if (is.fail() || tag != "D") {
        return Status::InvalidArgument("malformed dfrontier tombstone");
      }
      Status record_end = ExpectLineEnd(is, "dfrontier tombstone");
      if (!record_end.ok()) return record_end;
      tombstones.push_back(url);
    }
    Status end = FinishFramedStream(reader, in, "frontier delta");
    if (!end.ok()) return end;
    for (const simweb::Url& url : tombstones) {
      (void)crawler->coll_urls_.Remove(url);  // absent is fine
    }
    for (const Upsert& u : upserts) {
      // ScheduleLane replaces any live entry of the URL, and replay is
      // serial, so this reproduces LoadFrontier's end state exactly.
      crawler->coll_urls_.ScheduleLane(
          crawler->coll_urls_.ShardOf(u.url.site), u.url, u.when, u.seq);
    }
    crawler->coll_urls_.RestoreCounters(next_seq, front_when);
    return Status::Ok();
  }

  /// Replays one sealed delta segment onto `crawler`. The segment's
  /// integrity was already verified by ReadDeltaLog (header and
  /// payload checksums); a parse failure here still aborts mid-apply,
  /// so callers treat any error as "restore from the base again".
  static Status ApplySegment(const storage::DeltaSegment& segment,
                             IncrementalCrawler* crawler) {
    auto section = [&](const char* name) -> const std::string* {
      const storage::DeltaSection* s = segment.FindSection(name);
      return s == nullptr ? nullptr : &s->bytes;
    };
    for (const char* name : {"meta", "dcoll", "dallurls", "dupdate",
                             "dfrontier", "polite", "tracker", "pending",
                             "failure"}) {
      if (section(name) == nullptr) {
        return Status::InvalidArgument(
            "delta segment missing section '" + std::string(name) + "'");
      }
    }
    auto meta = ParseIncMeta(*section("meta"));
    if (!meta.ok()) return meta.status();
    Status st = ApplyCollDelta(*section("dcoll"), crawler);
    if (!st.ok()) return st;
    st = ApplyAllUrlsDelta(*section("dallurls"), crawler);
    if (!st.ok()) return st;
    {
      std::istringstream in(*section("dupdate"));
      st = ApplyUpdateModuleDelta(in, &crawler->update_module_);
      if (!st.ok()) return st;
    }
    st = ApplyFrontierDelta(*section("dfrontier"), crawler);
    if (!st.ok()) return st;
    {
      std::istringstream in(*section("polite"));
      auto polite = ReadPolite(in);
      if (!polite.ok()) return polite.status();
      crawler->engine_.pool().RestorePoliteness(*polite);
    }
    {
      std::istringstream in(*section("tracker"));
      auto tracker = ReadTracker(in);
      if (!tracker.ok()) return tracker.status();
      crawler->tracker_.Clear();
      for (std::size_t i = 0; i < tracker->times.size(); ++i) {
        crawler->tracker_.AddSample(tracker->times[i],
                                    tracker->values[i]);
      }
    }
    {
      std::istringstream in(*section("pending"));
      auto pending = ReadUrlList(in);
      if (!pending.ok()) return pending.status();
      ApplyPending(*pending, crawler);
    }
    {
      std::istringstream in(*section("failure"));
      auto failure = ReadFailure(in);
      if (!failure.ok()) return failure.status();
      ApplyFailure(*failure, crawler);
    }
    // Optional like "traffic": delta logs sealed before the defense
    // layer replay without it (the layer restarts from scratch).
    if (const std::string* defense_bytes = section("defense")) {
      std::istringstream in(*defense_bytes);
      auto defense = ReadDefense(in);
      if (!defense.ok()) return defense.status();
      ApplyDefense(*defense, crawler);
    }
    if (const std::string* traffic_bytes = section("traffic")) {
      std::istringstream in(*traffic_bytes);
      auto traffic = ReadTraffic(in);
      if (!traffic.ok()) return traffic.status();
      crawler->engine_.pool().RestoreTraffic(*traffic);
    }
    if (const std::string* web_bytes = section("dweb")) {
      std::istringstream in(*web_bytes);
      st = simweb::ApplyWebDelta(in, crawler->web_);
      if (!st.ok()) return st;
    }
    ApplyIncMeta(*meta, crawler);
    return Status::Ok();
  }

  /// Drops every dirty mark — the post-checkpoint (and post-replay)
  /// reset that starts the next delta's ledger from empty.
  static void ClearDirty(IncrementalCrawler* crawler) {
    crawler->collection_.ClearDirty();
    crawler->all_urls_.ClearDirty();
    crawler->update_module_.ClearDirty();
    crawler->frontier_dirty_.clear();
    if (crawler->web_ != nullptr && crawler->web_->dirty_tracking()) {
      crawler->web_->ClearDirtySites();
    }
  }
};

Status SaveCrawler(const IncrementalCrawler& crawler, std::ostream& out,
                   const CrawlerCheckpointOptions& options) {
  if (!crawler.engine_.quiescent()) {
    return Status::FailedPrecondition(
        "checkpoint requires a quiesced engine (batch boundary)");
  }
  std::vector<Section> sections;
  sections.push_back(Section{"meta", CheckpointIo::IncMeta(crawler)});
  {
    std::ostringstream os;
    Status st = SaveCollection(crawler.collection_, os);
    if (!st.ok()) return st;
    sections.push_back(Section{"collection", os.str()});
  }
  {
    std::ostringstream os;
    Status st = SaveAllUrls(crawler.all_urls_, os);
    if (!st.ok()) return st;
    sections.push_back(Section{"allurls", os.str()});
  }
  {
    std::ostringstream os;
    Status st = SaveUpdateModule(crawler.update_module_, os);
    if (!st.ok()) return st;
    sections.push_back(Section{"update", os.str()});
  }
  {
    std::ostringstream os;
    Status st = SaveFrontier(crawler.coll_urls_, os);
    if (!st.ok()) return st;
    sections.push_back(Section{"frontier", os.str()});
  }
  {
    std::ostringstream os;
    WritePolite(crawler.engine_.pool().ExportPoliteness(), os);
    sections.push_back(Section{"polite", os.str()});
  }
  {
    std::ostringstream os;
    WriteTracker(crawler.tracker_, os);
    sections.push_back(Section{"tracker", os.str()});
  }
  sections.push_back(Section{"pending", CheckpointIo::Pending(crawler)});
  sections.push_back(Section{"failure", CheckpointIo::Failure(crawler)});
  sections.push_back(Section{"defense", CheckpointIo::Defense(crawler)});
  if (options.module_traffic) {
    std::ostringstream os;
    WriteTraffic(crawler.engine_.pool().AggregateTraffic(), os);
    sections.push_back(Section{"traffic", os.str()});
  }
  if (options.include_web) {
    std::ostringstream os;
    Status st = simweb::SaveWeb(*crawler.web_, os);
    if (!st.ok()) return st;
    sections.push_back(Section{"web", os.str()});
  }
  return WriteContainer(kIncrementalKind, sections, out);
}

Status LoadCrawler(std::istream& in, IncrementalCrawler* crawler) {
  auto sections = ReadContainer(in, kIncrementalKind);
  if (!sections.ok()) return sections.status();
  for (const char* name :
       {"meta", "collection", "allurls", "update", "frontier", "polite",
        "tracker", "pending"}) {
    if (FindSection(*sections, name) == nullptr) {
      return MissingSection(name);
    }
  }

  // --- Parse every section into staging state; nothing in `crawler`
  // (or its web) is touched until the whole checkpoint has verified.
  auto meta = CheckpointIo::ParseIncMeta(*FindSection(*sections, "meta"));
  if (!meta.ok()) return meta.status();

  const int shards = crawler->engine_.num_shards();
  std::istringstream coll_in(*FindSection(*sections, "collection"));
  auto collection = LoadShardedCollection(coll_in, shards);
  if (!collection.ok()) return collection.status();
  if (collection->capacity() != crawler->config_.collection_capacity) {
    return Status::InvalidArgument(
        "checkpoint collection capacity does not match the configured "
        "capacity");
  }
  std::istringstream urls_in(*FindSection(*sections, "allurls"));
  auto all_urls = LoadAllUrls(urls_in, shards);
  if (!all_urls.ok()) return all_urls.status();
  UpdateModule update(crawler->update_module_.config());
  {
    std::istringstream update_in(*FindSection(*sections, "update"));
    Status st = LoadUpdateModule(update_in, &update);
    if (!st.ok()) return st;
  }
  std::istringstream frontier_in(*FindSection(*sections, "frontier"));
  auto frontier = LoadFrontier(frontier_in, shards);
  if (!frontier.ok()) return frontier.status();
  std::istringstream polite_in(*FindSection(*sections, "polite"));
  auto polite = ReadPolite(polite_in);
  if (!polite.ok()) return polite.status();
  std::istringstream tracker_in(*FindSection(*sections, "tracker"));
  auto tracker = ReadTracker(tracker_in);
  if (!tracker.ok()) return tracker.status();
  std::istringstream pending_in(*FindSection(*sections, "pending"));
  auto pending = ReadUrlList(pending_in);
  if (!pending.ok()) return pending.status();
  // Failure state is optional-on-load: pre-failure-pipeline
  // checkpoints simply restart backoff/quarantine tracking from
  // scratch.
  FailureSnapshot failure;
  if (const std::string* f = FindSection(*sections, "failure")) {
    std::istringstream failure_in(*f);
    auto snap = ReadFailure(failure_in);
    if (!snap.ok()) return snap.status();
    failure = std::move(snap).value();
  }
  // Defense state is optional-on-load for the same reason: pre-defense
  // checkpoints restart the throttle machines and the fingerprint
  // registry from scratch.
  DefenseSnapshot defense;
  if (const std::string* d = FindSection(*sections, "defense")) {
    std::istringstream defense_in(*d);
    auto snap = ReadDefense(defense_in);
    if (!snap.ok()) return snap.status();
    defense = std::move(snap).value();
  }
  // Traffic is optional-on-load too: checkpoints written without
  // module_traffic (and every pre-traffic checkpoint) restore with the
  // historical semantics — accounting restarts from zero.
  std::optional<CrawlModulePool::Traffic> traffic;
  if (const std::string* t = FindSection(*sections, "traffic")) {
    std::istringstream traffic_in(*t);
    auto parsed = ReadTraffic(traffic_in);
    if (!parsed.ok()) return parsed.status();
    traffic = std::move(parsed).value();
  }

  // The web restore stages and validates internally, so a bad web
  // section fails here with the crawler still untouched.
  if (const std::string* web = FindSection(*sections, "web")) {
    std::istringstream web_in(*web);
    Status st = simweb::RestoreWeb(web_in, crawler->web_);
    if (!st.ok()) return st;
  }

  // --- Commit. Nothing below can fail. The collection and AllUrls
  // copy *into* the crawler's live stores (ReplaceEntriesFrom) instead
  // of move-assigning the staging objects, so a paged backend keeps
  // its page files and cache.
  crawler->collection_.ReplaceEntriesFrom(*collection);
  crawler->all_urls_.ReplaceEntriesFrom(*all_urls);
  crawler->update_module_ = std::move(update);
  crawler->coll_urls_ = std::move(frontier).value();
  crawler->engine_.pool().RestorePoliteness(*polite);
  crawler->tracker_.Clear();
  for (std::size_t i = 0; i < tracker->times.size(); ++i) {
    crawler->tracker_.AddSample(tracker->times[i], tracker->values[i]);
  }
  CheckpointIo::ApplyPending(*pending, crawler);
  CheckpointIo::ApplyFailure(failure, crawler);
  CheckpointIo::ApplyDefense(defense, crawler);
  if (traffic.has_value()) {
    crawler->engine_.pool().RestoreTraffic(*traffic);
  }
  CheckpointIo::ApplyIncMeta(*meta, crawler);
  if (crawler->delta_tracking_) {
    // The move-assignments above wiped the staging objects' (absent)
    // tracking state into the live ones; re-arm it, then drop the
    // marks the wholesale replace just made — the restored state *is*
    // the new baseline, and the next checkpoint rebases anyway.
    crawler->EnableDeltaTracking();
    CheckpointIo::ClearDirty(crawler);
    crawler->base_written_ = false;
  }
  // The published-view history describes the *pre-restore* state:
  // retire it (readers' held references stay valid) and republish a
  // view of the restored state so Acquire never serves stale rows.
  crawler->engine_.views().Clear();
  if (crawler->config_.publish_view_every_batches > 0) {
    crawler->PublishViewNow();
  }
  return Status::Ok();
}

Status SaveCrawler(const PeriodicCrawler& crawler, std::ostream& out,
                   const CrawlerCheckpointOptions& options) {
  if (!crawler.engine_.quiescent()) {
    return Status::FailedPrecondition(
        "checkpoint requires a quiesced engine (batch boundary)");
  }
  std::vector<Section> sections;
  {
    std::ostringstream os;
    TrailerWriter writer(os);
    {
      std::ostringstream header;
      header << kPerMetaMagic << ' ' << kPerMetaVersion;
      writer.Line(header.str());
    }
    {
      std::ostringstream t;
      t.precision(17);
      t << "T " << crawler.now_ << ' ' << crawler.cycle_start_ << ' '
        << crawler.next_sample_;
      writer.Line(t.str());
    }
    {
      std::ostringstream b;
      b << "B " << crawler.batches_completed_ << ' '
        << (crawler.cycle_active_ ? 1 : 0) << ' '
        << crawler.cycles_completed_ << ' ' << crawler.stored_this_cycle_
        << ' ' << crawler.store_.swap_count() << ' '
        << (crawler.config_.shadowing ? 1 : 0);
      writer.Line(b.str());
    }
    {
      const PeriodicCrawler::Stats& s = crawler.stats_;
      std::ostringstream c;
      c << "C " << s.crawls << ' ' << s.pages_stored << ' '
        << s.dead_fetches << ' ' << s.politeness_rejections << ' '
        << s.swaps << ' ' << s.fetch_failures << ' '
        << s.transient_errors << ' ' << s.timeout_errors << ' '
        << s.failure_retries << ' ' << s.failures_dropped;
      writer.Line(c.str());
    }
    writer.Finish();
    sections.push_back(Section{"meta", os.str()});
  }
  {
    std::ostringstream os;
    Status st = SaveCollection(crawler.config_.shadowing
                                   ? crawler.store_.current()
                                   : crawler.inplace_,
                               os);
    if (!st.ok()) return st;
    sections.push_back(Section{"collection-current", os.str()});
  }
  if (crawler.config_.shadowing) {
    std::ostringstream os;
    Status st = SaveCollection(crawler.store_.shadow(), os);
    if (!st.ok()) return st;
    sections.push_back(Section{"collection-shadow", os.str()});
  }
  {
    std::vector<simweb::Url> bfs(crawler.frontier_.begin(),
                                 crawler.frontier_.end());
    std::ostringstream os;
    WriteUrlList(bfs, os);
    sections.push_back(Section{"bfs", os.str()});
  }
  {
    std::vector<simweb::Url> seen;
    for (const auto& shard : crawler.seen_shards_) {
      seen.insert(seen.end(), shard.begin(), shard.end());
    }
    std::sort(seen.begin(), seen.end(), IdentityLess);
    std::ostringstream os;
    WriteUrlList(seen, os);
    sections.push_back(Section{"seen", os.str()});
  }
  {
    std::ostringstream os;
    WritePolite(crawler.engine_.pool().ExportPoliteness(), os);
    sections.push_back(Section{"polite", os.str()});
  }
  {
    std::ostringstream os;
    WriteTracker(crawler.tracker_, os);
    sections.push_back(Section{"tracker", os.str()});
  }
  {
    // The cycle's bounded-requeue ledger; sites are unused here (the
    // periodic crawler has no backoff lanes) but the section format is
    // shared with the incremental crawler.
    FailureSnapshot snap;
    snap.urls.reserve(crawler.requeue_counts_.size());
    for (const auto& [url, count] : crawler.requeue_counts_) {
      snap.urls.push_back(UrlFailureRecord{url, count});
    }
    std::sort(snap.urls.begin(), snap.urls.end(),
              [](const UrlFailureRecord& a, const UrlFailureRecord& b) {
                return IdentityLess(a.url, b.url);
              });
    std::ostringstream os;
    WriteFailure(snap, os);
    sections.push_back(Section{"failure", os.str()});
  }
  if (options.module_traffic) {
    std::ostringstream os;
    WriteTraffic(crawler.engine_.pool().AggregateTraffic(), os);
    sections.push_back(Section{"traffic", os.str()});
  }
  if (options.include_web) {
    std::ostringstream os;
    Status st = simweb::SaveWeb(*crawler.web_, os);
    if (!st.ok()) return st;
    sections.push_back(Section{"web", os.str()});
  }
  return WriteContainer(kPeriodicKind, sections, out);
}

Status LoadCrawler(std::istream& in, PeriodicCrawler* crawler) {
  auto sections = ReadContainer(in, kPeriodicKind);
  if (!sections.ok()) return sections.status();
  for (const char* name : {"meta", "collection-current", "bfs", "seen",
                           "polite", "tracker"}) {
    if (FindSection(*sections, name) == nullptr) {
      return MissingSection(name);
    }
  }

  double now = 0.0, cycle_start = 0.0, next_sample = 0.0;
  uint64_t batches_completed = 0, stored_this_cycle = 0;
  int cycle_active = 0, shadowing = 0;
  int64_t cycles_completed = 0, swap_count = 0;
  int meta_version = 0;
  PeriodicCrawler::Stats stats;
  {
    std::istringstream ms(*FindSection(*sections, "meta"));
    TrailerReader reader(ms);
    auto header = reader.Next();
    if (!header.ok()) return header.status();
    {
      std::istringstream hs(*header);
      std::string magic;
      hs >> magic >> meta_version;
      // Version-1 metas (pre-failure-ledger) stay loadable: their C
      // record lacks the failure counters, which restart at zero.
      if (hs.fail() || magic != kPerMetaMagic || meta_version < 1 ||
          meta_version > kPerMetaVersion) {
        return Status::InvalidArgument("malformed checkpoint meta header");
      }
      Status end = ExpectLineEnd(hs, "meta header");
      if (!end.ok()) return end;
    }
    auto t_line = reader.Next();
    if (!t_line.ok()) return t_line.status();
    {
      std::istringstream is(*t_line);
      std::string tag;
      is >> tag >> now >> cycle_start >> next_sample;
      if (is.fail() || tag != "T") {
        return Status::InvalidArgument("malformed checkpoint T record");
      }
      Status end = ExpectLineEnd(is, "T");
      if (!end.ok()) return end;
    }
    auto b_line = reader.Next();
    if (!b_line.ok()) return b_line.status();
    {
      std::istringstream is(*b_line);
      std::string tag;
      is >> tag >> batches_completed >> cycle_active >>
          cycles_completed >> stored_this_cycle >> swap_count >>
          shadowing;
      if (is.fail() || tag != "B") {
        return Status::InvalidArgument("malformed checkpoint B record");
      }
      Status end = ExpectLineEnd(is, "B");
      if (!end.ok()) return end;
    }
    auto c_line = reader.Next();
    if (!c_line.ok()) return c_line.status();
    {
      std::istringstream is(*c_line);
      std::string tag;
      is >> tag >> stats.crawls >> stats.pages_stored >>
          stats.dead_fetches >> stats.politeness_rejections >>
          stats.swaps;
      if (meta_version >= 2) {
        is >> stats.fetch_failures >> stats.transient_errors >>
            stats.timeout_errors >> stats.failure_retries >>
            stats.failures_dropped;
      }
      if (is.fail() || tag != "C") {
        return Status::InvalidArgument("malformed checkpoint C record");
      }
      Status end = ExpectLineEnd(is, "C");
      if (!end.ok()) return end;
    }
    Status end = FinishFramedStream(reader, ms, "checkpoint meta");
    if (!end.ok()) return end;
  }
  if ((shadowing != 0) != crawler->config_.shadowing) {
    return Status::InvalidArgument(
        "checkpoint shadowing mode does not match the configuration");
  }

  std::istringstream current_in(
      *FindSection(*sections, "collection-current"));
  auto current = LoadCollection(current_in);
  if (!current.ok()) return current.status();
  if (current->capacity() != crawler->config_.collection_capacity) {
    return Status::InvalidArgument(
        "checkpoint collection capacity does not match the configured "
        "capacity");
  }
  StatusOr<Collection> shadow = Collection(0);
  if (crawler->config_.shadowing) {
    const std::string* bytes = FindSection(*sections, "collection-shadow");
    if (bytes == nullptr) return MissingSection("collection-shadow");
    std::istringstream shadow_in(*bytes);
    shadow = LoadCollection(shadow_in);
    if (!shadow.ok()) return shadow.status();
  }
  std::istringstream bfs_in(*FindSection(*sections, "bfs"));
  auto bfs = ReadUrlList(bfs_in);
  if (!bfs.ok()) return bfs.status();
  std::istringstream seen_in(*FindSection(*sections, "seen"));
  auto seen = ReadUrlList(seen_in);
  if (!seen.ok()) return seen.status();
  std::istringstream polite_in(*FindSection(*sections, "polite"));
  auto polite = ReadPolite(polite_in);
  if (!polite.ok()) return polite.status();
  std::istringstream tracker_in(*FindSection(*sections, "tracker"));
  auto tracker = ReadTracker(tracker_in);
  if (!tracker.ok()) return tracker.status();
  // Optional, as on the incremental crawler: older checkpoints simply
  // restart the cycle's requeue ledger from scratch.
  FailureSnapshot failure;
  if (const std::string* f = FindSection(*sections, "failure")) {
    std::istringstream failure_in(*f);
    auto snap = ReadFailure(failure_in);
    if (!snap.ok()) return snap.status();
    failure = std::move(snap).value();
  }
  // Optional traffic aggregate, as on the incremental crawler.
  std::optional<CrawlModulePool::Traffic> traffic;
  if (const std::string* t = FindSection(*sections, "traffic")) {
    std::istringstream traffic_in(*t);
    auto parsed = ReadTraffic(traffic_in);
    if (!parsed.ok()) return parsed.status();
    traffic = std::move(parsed).value();
  }
  if (const std::string* web = FindSection(*sections, "web")) {
    std::istringstream web_in(*web);
    Status st = simweb::RestoreWeb(web_in, crawler->web_);
    if (!st.ok()) return st;
  }

  // --- Commit. Nothing below can fail. Contents copy *into* the live
  // collections (ReplaceEntriesFrom) so a paged backend keeps its page
  // files across the restore.
  if (crawler->config_.shadowing) {
    crawler->store_.current_mutable().ReplaceEntriesFrom(*current);
    crawler->store_.shadow().ReplaceEntriesFrom(*shadow);
    crawler->store_.RestoreSwapCount(swap_count);
  } else {
    crawler->inplace_.ReplaceEntriesFrom(*current);
  }
  crawler->frontier_.assign(bfs->begin(), bfs->end());
  for (auto& shard : crawler->seen_shards_) shard.clear();
  for (const simweb::Url& url : *seen) {
    crawler->seen_shards_[url.site % crawler->seen_shards_.size()]
        .insert(url);
  }
  crawler->engine_.pool().RestorePoliteness(*polite);
  if (traffic.has_value()) {
    crawler->engine_.pool().RestoreTraffic(*traffic);
  }
  crawler->tracker_.Clear();
  for (std::size_t i = 0; i < tracker->times.size(); ++i) {
    crawler->tracker_.AddSample(tracker->times[i], tracker->values[i]);
  }
  crawler->stats_ = stats;
  crawler->requeue_counts_.clear();
  for (const UrlFailureRecord& r : failure.urls) {
    crawler->requeue_counts_.emplace(r.url, r.count);
  }
  crawler->now_ = now;
  crawler->cycle_start_ = cycle_start;
  crawler->next_sample_ = next_sample;
  crawler->cycle_active_ = cycle_active != 0;
  crawler->cycles_completed_ = cycles_completed;
  crawler->stored_this_cycle_ = stored_this_cycle;
  crawler->batches_completed_ = batches_completed;
  crawler->bootstrapped_ = true;
  // Retire the pre-restore view history and republish, as on the
  // incremental crawler.
  crawler->engine_.views().Clear();
  if (crawler->config_.publish_view_every_batches > 0) {
    crawler->PublishViewNow();
  }
  return Status::Ok();
}

Status SaveCrawlerToFile(const IncrementalCrawler& crawler,
                         const std::string& path,
                         const CrawlerCheckpointOptions& options) {
  std::ostringstream os;
  Status st = SaveCrawler(crawler, os, options);
  if (!st.ok()) return st;
  return AtomicWriteFile(path, os.str());
}

Status SaveCrawlerToFile(const PeriodicCrawler& crawler,
                         const std::string& path,
                         const CrawlerCheckpointOptions& options) {
  std::ostringstream os;
  Status st = SaveCrawler(crawler, os, options);
  if (!st.ok()) return st;
  return AtomicWriteFile(path, os.str());
}

Status LoadCrawlerFromFile(const std::string& path,
                           IncrementalCrawler* crawler) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadCrawler(in, crawler);
}

Status LoadCrawlerFromFile(const std::string& path,
                           PeriodicCrawler* crawler) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadCrawler(in, crawler);
}

Status SaveUpdateModuleDelta(const UpdateModule& module,
                             std::ostream& out) {
  if (!module.dirty_tracking_) {
    return Status::FailedPrecondition(
        "update-module delta requires dirty tracking");
  }
  std::set<simweb::Url, simweb::UrlIdentityLess> dirty_pages;
  std::set<uint32_t> dirty_sites, dirty_rngs;
  module.AppendDirty(&dirty_pages, &dirty_sites, &dirty_rngs);

  // Partition the dirty pages: still tracked -> full P record, gone
  // (Forget) -> X tombstone. The std::sets are already in canonical
  // order.
  std::vector<std::string> page_lines;
  std::vector<simweb::Url> tombstones;
  for (const simweb::Url& url : dirty_pages) {
    const auto& shard = module.page_shards_[module.ShardOf(url.site)];
    auto it = shard.find(url);
    if (it == shard.end()) {
      tombstones.push_back(url);
      continue;
    }
    const UpdateModule::PageState& state = it->second;
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state;
    if (state.estimator != nullptr) {
      est_state = state.estimator->SaveState();
    }
    os << "P " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << state.last_visit << ' ' << (state.visited ? 1 : 0)
       << ' ' << state.importance << ' '
       << (state.probing_abandonment ? 1 : 0) << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    page_lines.push_back(os.str());
  }
  // Site aggregates and probe RNG streams are never erased, so their
  // deltas are upserts only (a dirty key that vanished — impossible
  // today — would simply be skipped).
  std::vector<std::string> site_lines;
  for (uint32_t site : dirty_sites) {
    const auto& shard = module.site_shards_[module.ShardOf(site)];
    auto it = shard.find(site);
    if (it == shard.end()) continue;
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state = it->second->SaveState();
    os << "S " << site << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    site_lines.push_back(os.str());
  }
  std::vector<std::string> rng_lines;
  for (uint32_t site : dirty_rngs) {
    const auto& shard = module.rng_shards_[module.ShardOf(site)];
    auto it = shard.find(site);
    if (it == shard.end()) continue;
    std::ostringstream os;
    os << "R " << site;
    for (uint64_t lane : it->second.State()) os << ' ' << lane;
    rng_lines.push_back(os.str());
  }

  TrailerWriter writer(out);
  std::ostringstream header;
  header << kUpdateDeltaMagic << ' ' << kFormatVersion << ' '
         << estimator::EstimatorKindName(module.config_.estimator_kind)
         << ' ' << page_lines.size() << ' ' << tombstones.size() << ' '
         << site_lines.size() << ' ' << rng_lines.size();
  writer.Line(header.str());
  {
    // The scheduling globals are cheap scalars; the delta carries them
    // absolutely (they change on every rebalance).
    std::ostringstream os;
    os.precision(17);
    os << "G " << module.multiplier_ << ' ' << module.total_rate_ << ' '
       << module.mean_importance_ << ' ' << module.rebalance_count_
       << ' ' << module.frozen_page_count_;
    writer.Line(os.str());
  }
  for (const std::string& line : page_lines) writer.Line(line);
  for (const simweb::Url& url : tombstones) {
    std::ostringstream os;
    os << "X " << url.site << ' ' << url.slot << ' ' << url.incarnation;
    writer.Line(os.str());
  }
  for (const std::string& line : site_lines) writer.Line(line);
  for (const std::string& line : rng_lines) writer.Line(line);
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

Status ApplyUpdateModuleDelta(std::istream& in, UpdateModule* module) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic, kind;
  int version = 0;
  std::size_t npages = 0, ntombstones = 0, nsites = 0, nrngs = 0;
  hs >> magic >> version >> kind >> npages >> ntombstones >> nsites >>
      nrngs;
  if (hs.fail() || magic != kUpdateDeltaMagic ||
      version != kFormatVersion) {
    return Status::InvalidArgument("not an UpdateModule delta");
  }
  Status header_end = ExpectLineEnd(hs, "dupdate header");
  if (!header_end.ok()) return header_end;
  if (kind !=
      estimator::EstimatorKindName(module->config_.estimator_kind)) {
    return Status::InvalidArgument(
        "delta estimator kind '" + kind +
        "' does not match the module's configuration");
  }

  // Stage everything — including estimator reconstruction, which can
  // fail — before the first mutation, so a malformed delta leaves the
  // module untouched.
  double multiplier = 0.0, total_rate = 0.0, mean_importance = 0.0;
  int64_t rebalance_count = 0;
  std::size_t frozen_pages = 0;
  {
    auto g_line = reader.Next();
    if (!g_line.ok()) return Status::InvalidArgument("missing G record");
    std::istringstream is(*g_line);
    std::string tag;
    is >> tag >> multiplier >> total_rate >> mean_importance >>
        rebalance_count >> frozen_pages;
    if (is.fail() || tag != "G") {
      return Status::InvalidArgument("malformed G record");
    }
    Status record_end = ExpectLineEnd(is, "G");
    if (!record_end.ok()) return record_end;
  }
  std::vector<std::pair<simweb::Url, UpdateModule::PageState>> pages;
  pages.reserve(std::min<std::size_t>(npages, 1 << 20));
  for (std::size_t i = 0; i < npages; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("dupdate page count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double last_visit = 0.0, importance = 0.0;
    int visited = 0, probing = 0;
    std::size_t nstate = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> last_visit >>
        visited >> importance >> probing >> nstate;
    if (is.fail() || tag != "P" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed page record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed page estimator state");
    }
    Status record_end = ExpectLineEnd(is, "page");
    if (!record_end.ok()) return record_end;
    UpdateModule::PageState state;
    state.last_visit = last_visit;
    state.visited = visited != 0;
    state.importance = importance;
    state.probing_abandonment = probing != 0;
    if (!est_state.empty()) {
      state.estimator =
          estimator::MakeEstimator(module->config_.estimator_kind);
      Status st = state.estimator->RestoreState(est_state);
      if (!st.ok()) return st;
    }
    pages.emplace_back(url, std::move(state));
  }
  std::vector<simweb::Url> tombstones;
  tombstones.reserve(std::min<std::size_t>(ntombstones, 1 << 20));
  for (std::size_t i = 0; i < ntombstones; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("dupdate tombstone count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    is >> tag >> url.site >> url.slot >> url.incarnation;
    if (is.fail() || tag != "X") {
      return Status::InvalidArgument("malformed dupdate tombstone");
    }
    Status record_end = ExpectLineEnd(is, "dupdate tombstone");
    if (!record_end.ok()) return record_end;
    tombstones.push_back(url);
  }
  std::vector<
      std::pair<uint32_t, std::unique_ptr<estimator::ChangeEstimator>>>
      site_estimators;
  site_estimators.reserve(std::min<std::size_t>(nsites, 1 << 20));
  for (std::size_t i = 0; i < nsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("dupdate site count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::size_t nstate = 0;
    is >> tag >> site >> nstate;
    if (is.fail() || tag != "S" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed site record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed site estimator state");
    }
    Status record_end = ExpectLineEnd(is, "site");
    if (!record_end.ok()) return record_end;
    auto est = estimator::MakeEstimator(module->config_.estimator_kind);
    Status st = est->RestoreState(est_state);
    if (!st.ok()) return st;
    site_estimators.emplace_back(site, std::move(est));
  }
  std::vector<std::pair<uint32_t, Rng>> rngs;
  rngs.reserve(std::min<std::size_t>(nrngs, 1 << 20));
  for (std::size_t i = 0; i < nrngs; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("dupdate rng count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::array<uint64_t, 4> lanes{};
    is >> tag >> site >> lanes[0] >> lanes[1] >> lanes[2] >> lanes[3];
    if (is.fail() || tag != "R") {
      return Status::InvalidArgument("malformed rng record");
    }
    Status record_end = ExpectLineEnd(is, "rng");
    if (!record_end.ok()) return record_end;
    Rng rng(0);
    rng.SetState(lanes);
    rngs.emplace_back(site, rng);
  }
  Status end = FinishFramedStream(reader, in, "update delta");
  if (!end.ok()) return end;

  // --- Commit.
  module->multiplier_ = multiplier;
  module->total_rate_ = total_rate;
  module->mean_importance_ = mean_importance;
  module->rebalance_count_ = rebalance_count;
  module->frozen_page_count_ = frozen_pages;
  for (const simweb::Url& url : tombstones) {
    module->page_shards_[module->ShardOf(url.site)].erase(url);
  }
  for (auto& [url, state] : pages) {
    module->page_shards_[module->ShardOf(url.site)][url] =
        std::move(state);
  }
  for (auto& [site, est] : site_estimators) {
    module->site_shards_[module->ShardOf(site)][site] = std::move(est);
  }
  for (const auto& [site, rng] : rngs) {
    module->rng_shards_[module->ShardOf(site)].insert_or_assign(site,
                                                                rng);
  }
  return Status::Ok();
}

Status CheckpointIncremental(IncrementalCrawler* crawler,
                             const std::string& path,
                             const CrawlerCheckpointOptions& options) {
  if (!crawler->delta_tracking_) {
    return Status::FailedPrecondition(
        "incremental checkpointing requires delta tracking (set "
        "config.checkpoint_incremental)");
  }
  if (!crawler->engine_.quiescent()) {
    return Status::FailedPrecondition(
        "checkpoint requires a quiesced engine (batch boundary)");
  }
  const std::string delta_path = path + ".deltas";
  // Rebase when there is no verified base to append to — first
  // checkpoint of this process — or when a wholesale clear happened
  // (a record delta cannot express "everything vanished").
  if (!crawler->base_written_ ||
      crawler->collection_.cleared_while_tracking()) {
    Status st = SaveCrawlerToFile(*crawler, path, options);
    if (!st.ok()) return st;
    st = storage::TruncateDeltaLog(delta_path);
    if (!st.ok()) return st;
    crawler->base_written_ = true;
    CheckpointIo::ClearDirty(crawler);
    return Status::Ok();
  }

  storage::DeltaSegment segment;
  segment.kind = kIncrementalKind;
  segment.batch = crawler->batches_completed_;
  segment.sections.push_back(
      storage::DeltaSection{"meta", CheckpointIo::IncMeta(*crawler)});
  segment.sections.push_back(
      storage::DeltaSection{"dcoll", CheckpointIo::CollDelta(*crawler)});
  segment.sections.push_back(storage::DeltaSection{
      "dallurls", CheckpointIo::AllUrlsDelta(*crawler)});
  {
    std::ostringstream os;
    Status st = SaveUpdateModuleDelta(crawler->update_module_, os);
    if (!st.ok()) return st;
    segment.sections.push_back(storage::DeltaSection{"dupdate", os.str()});
  }
  segment.sections.push_back(storage::DeltaSection{
      "dfrontier", CheckpointIo::FrontierDelta(*crawler)});
  {
    std::ostringstream os;
    WritePolite(crawler->engine_.pool().ExportPoliteness(), os);
    segment.sections.push_back(storage::DeltaSection{"polite", os.str()});
  }
  {
    std::ostringstream os;
    WriteTracker(crawler->tracker_, os);
    segment.sections.push_back(storage::DeltaSection{"tracker", os.str()});
  }
  segment.sections.push_back(
      storage::DeltaSection{"pending", CheckpointIo::Pending(*crawler)});
  segment.sections.push_back(
      storage::DeltaSection{"failure", CheckpointIo::Failure(*crawler)});
  // The defense section rides every segment whole (like "failure"):
  // the throttle machines are tiny and the fingerprint registry grows
  // with *distinct content*, a small multiple of the collection.
  segment.sections.push_back(
      storage::DeltaSection{"defense", CheckpointIo::Defense(*crawler)});
  if (options.module_traffic) {
    std::ostringstream os;
    WriteTraffic(crawler->engine_.pool().AggregateTraffic(), os);
    segment.sections.push_back(storage::DeltaSection{"traffic", os.str()});
  }
  if (options.include_web) {
    std::ostringstream os;
    Status st = simweb::SaveWebDelta(*crawler->web_, os);
    if (!st.ok()) return st;
    segment.sections.push_back(storage::DeltaSection{"dweb", os.str()});
  }

  Status st = storage::AppendDeltaSegment(delta_path, segment);
  if (!st.ok()) return st;
  CheckpointIo::ClearDirty(crawler);
  return Status::Ok();
}

Status LoadCrawlerWithDeltasFromFile(const std::string& path,
                                     IncrementalCrawler* crawler) {
  Status st = LoadCrawlerFromFile(path, crawler);
  if (!st.ok()) return st;
  auto log = storage::ReadDeltaLog(path + ".deltas");
  if (!log.ok()) return log.status();
  bool applied = false;
  for (const storage::DeltaSegment& segment : log->segments) {
    if (segment.kind != kIncrementalKind) {
      return Status::InvalidArgument(
          "delta segment kind '" + segment.kind +
          "' does not match the base checkpoint");
    }
    // Idempotent replay: a segment at or before the restored batch
    // counter is already reflected in the base image (the rebase wrote
    // the base *after* sealing it) — skip it.
    if (segment.batch <= crawler->batches_completed_) continue;
    st = CheckpointIo::ApplySegment(segment, crawler);
    if (!st.ok()) {
      // ApplySegment mutates as it goes; a failure mid-segment leaves
      // the crawler unspecified. The inputs are double-checksummed
      // (the log's seal and each section's trailer), so reaching this
      // is a format bug, not routine corruption — surface it.
      return st;
    }
    applied = true;
  }
  if (applied) {
    if (crawler->delta_tracking_) {
      CheckpointIo::ClearDirty(crawler);
      crawler->base_written_ = false;
    }
    // Replays changed rows after LoadCrawler's republish: retire that
    // view and publish the final state.
    crawler->engine_.views().Clear();
    if (crawler->config_.publish_view_every_batches > 0) {
      crawler->PublishViewNow();
    }
  }
  return Status::Ok();
}

}  // namespace webevo::crawler
