#include "crawler/snapshot.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "estimator/change_estimator.h"
#include "util/hash.h"

namespace webevo::crawler {
namespace {

constexpr const char* kCollectionMagic = "webevo-collection";
constexpr const char* kAllUrlsMagic = "webevo-allurls";
constexpr const char* kUpdateModuleMagic = "webevo-update";
constexpr const char* kTrailerMagic = "webevo-checksum";
constexpr int kFormatVersion = 1;
// Sanity bound on a flattened estimator-state vector. Integrity is only
// verified at the trailer, so parsed counts must be range-checked
// before they size an allocation.
constexpr std::size_t kMaxEstimatorState = 1 << 20;

// Accumulates payload lines and emits them with an integrity trailer.
class TrailerWriter {
 public:
  explicit TrailerWriter(std::ostream& out) : out_(out) {}

  void Line(const std::string& line) {
    hash_ = Fnv1a64Seeded(line, hash_);
    hash_ = Fnv1a64Seeded("\n", hash_);
    out_ << line << '\n';
  }

  void Finish() { out_ << kTrailerMagic << ' ' << hash_ << '\n'; }

 private:
  std::ostream& out_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Reads payload lines, verifying the trailer at the end.
class TrailerReader {
 public:
  explicit TrailerReader(std::istream& in) : in_(in) {}

  /// Next payload line; NotFound past the payload (after the trailer
  /// was consumed and verified), InvalidArgument on corruption.
  StatusOr<std::string> Next() {
    std::string line;
    if (!std::getline(in_, line)) {
      return Status::InvalidArgument("snapshot truncated (no trailer)");
    }
    if (line.rfind(kTrailerMagic, 0) == 0) {
      std::istringstream trailer(line);
      std::string magic;
      uint64_t stored = 0;
      trailer >> magic >> stored;
      if (trailer.fail() || stored != hash_) {
        return Status::InvalidArgument("snapshot integrity check failed");
      }
      done_ = true;
      return Status::NotFound("end of payload");
    }
    hash_ = Fnv1a64Seeded(line, hash_);
    hash_ = Fnv1a64Seeded("\n", hash_);
    return line;
  }

  bool done() const { return done_; }

 private:
  std::istream& in_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
  bool done_ = false;
};

std::string EntryLine(const CollectionEntry& e) {
  std::ostringstream os;
  os.precision(17);
  os << "E " << e.url.site << ' ' << e.url.slot << ' '
     << e.url.incarnation << ' ' << e.page << ' ' << e.version << ' '
     << e.checksum.lo << ' ' << e.checksum.hi << ' ' << e.crawled_at
     << ' ' << e.importance << ' ' << e.links.size();
  for (const simweb::Url& link : e.links) {
    os << ' ' << link.site << ' ' << link.slot << ' ' << link.incarnation;
  }
  return os.str();
}

StatusOr<CollectionEntry> ParseEntry(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  CollectionEntry e;
  std::size_t nlinks = 0;
  is >> tag >> e.url.site >> e.url.slot >> e.url.incarnation >> e.page >>
      e.version >> e.checksum.lo >> e.checksum.hi >> e.crawled_at >>
      e.importance >> nlinks;
  if (is.fail() || tag != "E") {
    return Status::InvalidArgument("malformed entry record");
  }
  e.links.reserve(nlinks);
  for (std::size_t i = 0; i < nlinks; ++i) {
    simweb::Url link;
    is >> link.site >> link.slot >> link.incarnation;
    if (is.fail()) {
      return Status::InvalidArgument("malformed link list");
    }
    e.links.push_back(link);
  }
  return e;
}

}  // namespace

Status SaveCollection(const Collection& collection, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kCollectionMagic << ' ' << kFormatVersion << ' '
         << collection.capacity() << ' ' << collection.size();
  writer.Line(header.str());
  Status st = Status::Ok();
  collection.ForEach([&](const CollectionEntry& e) {
    writer.Line(EntryLine(e));
  });
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return st;
}

StatusOr<Collection> LoadCollection(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t capacity = 0, count = 0;
  hs >> magic >> version >> capacity >> count;
  if (hs.fail() || magic != kCollectionMagic) {
    return Status::InvalidArgument("not a collection snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  Collection collection(capacity);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    auto entry = ParseEntry(*line);
    if (!entry.ok()) return entry.status();
    Status st = collection.Upsert(std::move(entry).value());
    if (!st.ok()) return st;
  }
  // Consume and verify the trailer.
  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  return collection;
}

Status SaveAllUrls(const AllUrls& all_urls, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kAllUrlsMagic << ' ' << kFormatVersion << ' '
         << all_urls.size();
  writer.Line(header.str());
  all_urls.ForEach([&](const simweb::Url& url,
                       const AllUrls::UrlInfo& info) {
    std::ostringstream os;
    os.precision(17);
    os << "U " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << info.first_seen << ' ' << info.in_links << ' '
       << (info.dead ? 1 : 0);
    writer.Line(os.str());
  });
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

StatusOr<AllUrls> LoadAllUrls(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  hs >> magic >> version >> count;
  if (hs.fail() || magic != kAllUrlsMagic) {
    return Status::InvalidArgument("not an AllUrls snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  AllUrls all;
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double first_seen = 0.0;
    uint64_t in_links = 0;
    int dead = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> first_seen >>
        in_links >> dead;
    if (is.fail() || tag != "U") {
      return Status::InvalidArgument("malformed url record");
    }
    all.Add(url, first_seen);
    for (uint64_t k = 0; k < in_links; ++k) all.NoteInLink(url, first_seen);
    if (dead != 0) {
      Status st = all.MarkDead(url);
      if (!st.ok()) return st;
    }
  }
  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  return all;
}

Status SaveUpdateModule(const UpdateModule& module, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kUpdateModuleMagic << ' ' << kFormatVersion << ' '
         << estimator::EstimatorKindName(module.config_.estimator_kind)
         << ' ' << module.pages_.size() << ' ' << module.sites_.size();
  writer.Line(header.str());

  {
    std::ostringstream os;
    os.precision(17);
    os << "G " << module.multiplier_ << ' ' << module.total_rate_ << ' '
       << module.mean_importance_ << ' ' << module.rebalance_count_;
    for (uint64_t lane : module.rng_.State()) os << ' ' << lane;
    writer.Line(os.str());
  }

  // Records sorted by identity, so equal modules produce equal bytes
  // regardless of hash-map iteration order.
  std::vector<std::pair<simweb::Url, const UpdateModule::PageState*>> pages;
  pages.reserve(module.pages_.size());
  for (const auto& [url, state] : module.pages_) {
    pages.emplace_back(url, &state);
  }
  std::sort(pages.begin(), pages.end(), [](const auto& a, const auto& b) {
    return std::tuple(a.first.site, a.first.slot, a.first.incarnation) <
           std::tuple(b.first.site, b.first.slot, b.first.incarnation);
  });
  for (const auto& [url, state] : pages) {
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state;
    if (state->estimator != nullptr) {
      est_state = state->estimator->SaveState();
    }
    os << "P " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << state->last_visit << ' ' << (state->visited ? 1 : 0)
       << ' ' << state->importance << ' '
       << (state->probing_abandonment ? 1 : 0) << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    writer.Line(os.str());
  }

  std::vector<uint32_t> site_ids;
  site_ids.reserve(module.sites_.size());
  for (const auto& [site, est] : module.sites_) site_ids.push_back(site);
  std::sort(site_ids.begin(), site_ids.end());
  for (uint32_t site : site_ids) {
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state = module.sites_.at(site)->SaveState();
    os << "S " << site << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    writer.Line(os.str());
  }

  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

Status LoadUpdateModule(std::istream& in, UpdateModule* module) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic, kind;
  int version = 0;
  std::size_t npages = 0, nsites = 0;
  hs >> magic >> version >> kind >> npages >> nsites;
  if (hs.fail() || magic != kUpdateModuleMagic) {
    return Status::InvalidArgument("not an UpdateModule snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  if (kind !=
      estimator::EstimatorKindName(module->config_.estimator_kind)) {
    return Status::InvalidArgument(
        "snapshot estimator kind '" + kind +
        "' does not match the module's configuration");
  }

  // Restore into a staging module and swap in only after the trailer
  // verifies, so a corrupt snapshot never leaves `module` half-loaded.
  UpdateModule staged(module->config_);

  auto g_line = reader.Next();
  if (!g_line.ok()) return Status::InvalidArgument("missing G record");
  {
    std::istringstream is(*g_line);
    std::string tag;
    std::array<uint64_t, 4> lanes{};
    double multiplier = 0.0, total_rate = 0.0, mean_importance = 0.0;
    int64_t rebalance_count = 0;
    is >> tag >> multiplier >> total_rate >> mean_importance >>
        rebalance_count >> lanes[0] >> lanes[1] >> lanes[2] >> lanes[3];
    if (is.fail() || tag != "G") {
      return Status::InvalidArgument("malformed G record");
    }
    staged.multiplier_ = multiplier;
    staged.total_rate_ = total_rate;
    staged.mean_importance_ = mean_importance;
    staged.rebalance_count_ = rebalance_count;
    staged.rng_.SetState(lanes);
  }

  for (std::size_t i = 0; i < npages; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot page count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double last_visit = 0.0, importance = 0.0;
    int visited = 0, probing = 0;
    std::size_t nstate = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> last_visit >>
        visited >> importance >> probing >> nstate;
    if (is.fail() || tag != "P" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed page record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed page estimator state");
    }
    UpdateModule::PageState state;
    state.last_visit = last_visit;
    state.visited = visited != 0;
    state.importance = importance;
    state.probing_abandonment = probing != 0;
    if (!est_state.empty()) {
      state.estimator =
          estimator::MakeEstimator(staged.config_.estimator_kind);
      Status st = state.estimator->RestoreState(est_state);
      if (!st.ok()) return st;
    }
    staged.pages_[url] = std::move(state);
  }
  for (std::size_t i = 0; i < nsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot site count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::size_t nstate = 0;
    is >> tag >> site >> nstate;
    if (is.fail() || tag != "S" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed site record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed site estimator state");
    }
    auto estimator =
        estimator::MakeEstimator(staged.config_.estimator_kind);
    Status st = estimator->RestoreState(est_state);
    if (!st.ok()) return st;
    staged.sites_[site] = std::move(estimator);
  }

  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  *module = std::move(staged);
  return Status::Ok();
}

Status SaveCollectionToFile(const Collection& collection,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  return SaveCollection(collection, out);
}

StatusOr<Collection> LoadCollectionFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadCollection(in);
}

}  // namespace webevo::crawler
