#include "crawler/snapshot.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "estimator/change_estimator.h"
#include "util/hash.h"

namespace webevo::crawler {
namespace {

constexpr const char* kCollectionMagic = "webevo-collection";
constexpr const char* kAllUrlsMagic = "webevo-allurls";
constexpr const char* kUpdateModuleMagic = "webevo-update";
constexpr const char* kFrontierMagic = "webevo-frontier";
constexpr const char* kTrailerMagic = "webevo-checksum";
constexpr int kFormatVersion = 1;
// The UpdateModule format is versioned separately: version 2 replaced
// the module-global probe RNG with per-site streams (`R` records) and
// added the frozen scheduling page count to the `G` record.
constexpr int kUpdateFormatVersion = 2;
// Sanity bound on a flattened estimator-state vector. Integrity is only
// verified at the trailer, so parsed counts must be range-checked
// before they size an allocation.
constexpr std::size_t kMaxEstimatorState = 1 << 20;

constexpr simweb::UrlIdentityLess IdentityLess;

// Accumulates payload lines and emits them with an integrity trailer.
class TrailerWriter {
 public:
  explicit TrailerWriter(std::ostream& out) : out_(out) {}

  void Line(const std::string& line) {
    hash_ = Fnv1a64Seeded(line, hash_);
    hash_ = Fnv1a64Seeded("\n", hash_);
    out_ << line << '\n';
  }

  void Finish() { out_ << kTrailerMagic << ' ' << hash_ << '\n'; }

 private:
  std::ostream& out_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Reads payload lines, verifying the trailer at the end.
class TrailerReader {
 public:
  explicit TrailerReader(std::istream& in) : in_(in) {}

  /// Next payload line; NotFound past the payload (after the trailer
  /// was consumed and verified), InvalidArgument on corruption.
  StatusOr<std::string> Next() {
    std::string line;
    if (!std::getline(in_, line)) {
      return Status::InvalidArgument("snapshot truncated (no trailer)");
    }
    if (line.rfind(kTrailerMagic, 0) == 0) {
      std::istringstream trailer(line);
      std::string magic;
      uint64_t stored = 0;
      trailer >> magic >> stored;
      if (trailer.fail() || stored != hash_) {
        return Status::InvalidArgument("snapshot integrity check failed");
      }
      done_ = true;
      return Status::NotFound("end of payload");
    }
    hash_ = Fnv1a64Seeded(line, hash_);
    hash_ = Fnv1a64Seeded("\n", hash_);
    return line;
  }

  bool done() const { return done_; }

 private:
  std::istream& in_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
  bool done_ = false;
};

std::string EntryLine(const CollectionEntry& e) {
  std::ostringstream os;
  os.precision(17);
  os << "E " << e.url.site << ' ' << e.url.slot << ' '
     << e.url.incarnation << ' ' << e.page << ' ' << e.version << ' '
     << e.checksum.lo << ' ' << e.checksum.hi << ' ' << e.crawled_at
     << ' ' << e.importance << ' ' << e.links.size();
  for (const simweb::Url& link : e.links) {
    os << ' ' << link.site << ' ' << link.slot << ' ' << link.incarnation;
  }
  return os.str();
}

StatusOr<CollectionEntry> ParseEntry(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  CollectionEntry e;
  std::size_t nlinks = 0;
  is >> tag >> e.url.site >> e.url.slot >> e.url.incarnation >> e.page >>
      e.version >> e.checksum.lo >> e.checksum.hi >> e.crawled_at >>
      e.importance >> nlinks;
  if (is.fail() || tag != "E") {
    return Status::InvalidArgument("malformed entry record");
  }
  e.links.reserve(nlinks);
  for (std::size_t i = 0; i < nlinks; ++i) {
    simweb::Url link;
    is >> link.site >> link.slot >> link.incarnation;
    if (is.fail()) {
      return Status::InvalidArgument("malformed link list");
    }
    e.links.push_back(link);
  }
  return e;
}

// Canonical writer shared by the Collection and ShardedCollection
// overloads: entries are emitted in ascending URL identity so equal
// logical collections produce equal bytes at every shard count.
Status WriteCollectionSnapshot(
    std::size_t capacity,
    std::vector<const CollectionEntry*> entries, std::ostream& out) {
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return IdentityLess(a->url, b->url);
            });
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kCollectionMagic << ' ' << kFormatVersion << ' ' << capacity
         << ' ' << entries.size();
  writer.Line(header.str());
  for (const CollectionEntry* e : entries) writer.Line(EntryLine(*e));
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

/// The parsed payload of a collection snapshot, verified against the
/// integrity trailer before anything is handed back.
struct CollectionPayload {
  std::size_t capacity = 0;
  std::vector<CollectionEntry> entries;
};

StatusOr<CollectionPayload> ReadCollectionSnapshot(std::istream& in) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  CollectionPayload payload;
  hs >> magic >> version >> payload.capacity >> count;
  if (hs.fail() || magic != kCollectionMagic) {
    return Status::InvalidArgument("not a collection snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  payload.entries.reserve(std::min<std::size_t>(count, 1 << 20));
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    auto entry = ParseEntry(*line);
    if (!entry.ok()) return entry.status();
    payload.entries.push_back(std::move(entry).value());
  }
  // Consume and verify the trailer before handing anything back.
  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  return payload;
}

}  // namespace

Status SaveCollection(const Collection& collection, std::ostream& out) {
  std::vector<const CollectionEntry*> entries;
  entries.reserve(collection.size());
  collection.ForEach(
      [&](const CollectionEntry& e) { entries.push_back(&e); });
  return WriteCollectionSnapshot(collection.capacity(),
                                 std::move(entries), out);
}

Status SaveCollection(const ShardedCollection& collection,
                      std::ostream& out) {
  std::vector<const CollectionEntry*> entries;
  entries.reserve(collection.size());
  collection.ForEach(
      [&](const CollectionEntry& e) { entries.push_back(&e); });
  return WriteCollectionSnapshot(collection.capacity(),
                                 std::move(entries), out);
}

StatusOr<Collection> LoadCollection(std::istream& in) {
  auto payload = ReadCollectionSnapshot(in);
  if (!payload.ok()) return payload.status();
  Collection collection(payload->capacity);
  for (CollectionEntry& e : payload->entries) {
    Status stored = collection.Upsert(std::move(e));
    if (!stored.ok()) return stored;
  }
  return collection;
}

StatusOr<ShardedCollection> LoadShardedCollection(std::istream& in,
                                                  int num_shards) {
  auto payload = ReadCollectionSnapshot(in);
  if (!payload.ok()) return payload.status();
  ShardedCollection collection(payload->capacity, num_shards);
  for (CollectionEntry& e : payload->entries) {
    Status stored = collection.Upsert(std::move(e));
    if (!stored.ok()) return stored;
  }
  return collection;
}

Status SaveAllUrls(const AllUrls& all_urls, std::ostream& out) {
  TrailerWriter writer(out);
  std::ostringstream header;
  header << kAllUrlsMagic << ' ' << kFormatVersion << ' '
         << all_urls.size();
  writer.Line(header.str());
  // Canonical record order regardless of internal shard layout.
  std::vector<std::pair<simweb::Url, const AllUrls::UrlInfo*>> records;
  records.reserve(all_urls.size());
  all_urls.ForEach([&](const simweb::Url& url,
                       const AllUrls::UrlInfo& info) {
    records.emplace_back(url, &info);
  });
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return IdentityLess(a.first, b.first);
            });
  for (const auto& [url, info] : records) {
    std::ostringstream os;
    os.precision(17);
    os << "U " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << info->first_seen << ' ' << info->in_links << ' '
       << (info->dead ? 1 : 0);
    writer.Line(os.str());
  }
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

StatusOr<AllUrls> LoadAllUrls(std::istream& in, int num_shards) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  hs >> magic >> version >> count;
  if (hs.fail() || magic != kAllUrlsMagic) {
    return Status::InvalidArgument("not an AllUrls snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  AllUrls all(num_shards);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double first_seen = 0.0;
    uint64_t in_links = 0;
    int dead = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> first_seen >>
        in_links >> dead;
    if (is.fail() || tag != "U") {
      return Status::InvalidArgument("malformed url record");
    }
    all.Add(url, first_seen);
    for (uint64_t k = 0; k < in_links; ++k) all.NoteInLink(url, first_seen);
    if (dead != 0) {
      Status st = all.MarkDead(url);
      if (!st.ok()) return st;
    }
  }
  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  return all;
}

Status SaveUpdateModule(const UpdateModule& module, std::ostream& out) {
  // Gather the per-site records (estimator aggregates and probe RNG
  // streams) across shards in ascending site order — canonical bytes
  // at every shard count.
  std::vector<std::pair<uint32_t, const estimator::ChangeEstimator*>>
      site_records;
  for (const auto& shard : module.site_shards_) {
    for (const auto& [site, est] : shard) {
      site_records.emplace_back(site, est.get());
    }
  }
  std::sort(site_records.begin(), site_records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<uint32_t, const Rng*>> rng_records;
  for (const auto& shard : module.rng_shards_) {
    for (const auto& [site, rng] : shard) {
      rng_records.emplace_back(site, &rng);
    }
  }
  std::sort(rng_records.begin(), rng_records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  TrailerWriter writer(out);
  std::ostringstream header;
  header << kUpdateModuleMagic << ' ' << kUpdateFormatVersion << ' '
         << estimator::EstimatorKindName(module.config_.estimator_kind)
         << ' ' << module.tracked_pages() << ' ' << site_records.size()
         << ' ' << rng_records.size();
  writer.Line(header.str());

  {
    std::ostringstream os;
    os.precision(17);
    os << "G " << module.multiplier_ << ' ' << module.total_rate_ << ' '
       << module.mean_importance_ << ' ' << module.rebalance_count_
       << ' ' << module.frozen_page_count_;
    writer.Line(os.str());
  }

  // Page records sorted by identity, so equal modules produce equal
  // bytes regardless of shard count and hash-map iteration order.
  for (const auto& [url, state] : module.SortedPages()) {
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state;
    if (state->estimator != nullptr) {
      est_state = state->estimator->SaveState();
    }
    os << "P " << url.site << ' ' << url.slot << ' ' << url.incarnation
       << ' ' << state->last_visit << ' ' << (state->visited ? 1 : 0)
       << ' ' << state->importance << ' '
       << (state->probing_abandonment ? 1 : 0) << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    writer.Line(os.str());
  }

  for (const auto& [site, est] : site_records) {
    std::ostringstream os;
    os.precision(17);
    std::vector<double> est_state = est->SaveState();
    os << "S " << site << ' ' << est_state.size();
    for (double v : est_state) os << ' ' << v;
    writer.Line(os.str());
  }

  for (const auto& [site, rng] : rng_records) {
    std::ostringstream os;
    os << "R " << site;
    for (uint64_t lane : rng->State()) os << ' ' << lane;
    writer.Line(os.str());
  }

  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

Status LoadUpdateModule(std::istream& in, UpdateModule* module) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic, kind;
  int version = 0;
  std::size_t npages = 0, nsites = 0, nrngs = 0;
  hs >> magic >> version >> kind >> npages >> nsites >> nrngs;
  if (hs.fail() || magic != kUpdateModuleMagic) {
    return Status::InvalidArgument("not an UpdateModule snapshot");
  }
  if (version != kUpdateFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  if (kind !=
      estimator::EstimatorKindName(module->config_.estimator_kind)) {
    return Status::InvalidArgument(
        "snapshot estimator kind '" + kind +
        "' does not match the module's configuration");
  }

  // Restore into a staging module and swap in only after the trailer
  // verifies, so a corrupt snapshot never leaves `module` half-loaded.
  UpdateModule staged(module->config_);

  auto g_line = reader.Next();
  if (!g_line.ok()) return Status::InvalidArgument("missing G record");
  {
    std::istringstream is(*g_line);
    std::string tag;
    double multiplier = 0.0, total_rate = 0.0, mean_importance = 0.0;
    int64_t rebalance_count = 0;
    std::size_t frozen_pages = 0;
    is >> tag >> multiplier >> total_rate >> mean_importance >>
        rebalance_count >> frozen_pages;
    if (is.fail() || tag != "G") {
      return Status::InvalidArgument("malformed G record");
    }
    staged.multiplier_ = multiplier;
    staged.total_rate_ = total_rate;
    staged.mean_importance_ = mean_importance;
    staged.rebalance_count_ = rebalance_count;
    staged.frozen_page_count_ = frozen_pages;
  }

  for (std::size_t i = 0; i < npages; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot page count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double last_visit = 0.0, importance = 0.0;
    int visited = 0, probing = 0;
    std::size_t nstate = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> last_visit >>
        visited >> importance >> probing >> nstate;
    if (is.fail() || tag != "P" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed page record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed page estimator state");
    }
    UpdateModule::PageState state;
    state.last_visit = last_visit;
    state.visited = visited != 0;
    state.importance = importance;
    state.probing_abandonment = probing != 0;
    if (!est_state.empty()) {
      state.estimator =
          estimator::MakeEstimator(staged.config_.estimator_kind);
      Status st = state.estimator->RestoreState(est_state);
      if (!st.ok()) return st;
    }
    staged.page_shards_[staged.ShardOf(url.site)][url] = std::move(state);
  }
  for (std::size_t i = 0; i < nsites; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot site count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::size_t nstate = 0;
    is >> tag >> site >> nstate;
    if (is.fail() || tag != "S" || nstate > kMaxEstimatorState) {
      return Status::InvalidArgument("malformed site record");
    }
    std::vector<double> est_state(nstate);
    for (double& v : est_state) is >> v;
    if (is.fail()) {
      return Status::InvalidArgument("malformed site estimator state");
    }
    auto estimator =
        estimator::MakeEstimator(staged.config_.estimator_kind);
    Status st = estimator->RestoreState(est_state);
    if (!st.ok()) return st;
    staged.site_shards_[staged.ShardOf(site)][site] =
        std::move(estimator);
  }
  for (std::size_t i = 0; i < nrngs; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot rng count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    uint32_t site = 0;
    std::array<uint64_t, 4> lanes{};
    is >> tag >> site >> lanes[0] >> lanes[1] >> lanes[2] >> lanes[3];
    if (is.fail() || tag != "R") {
      return Status::InvalidArgument("malformed rng record");
    }
    Rng rng(0);
    rng.SetState(lanes);
    staged.rng_shards_[staged.ShardOf(site)].insert_or_assign(site, rng);
  }

  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  *module = std::move(staged);
  return Status::Ok();
}

Status SaveFrontier(const ShardedFrontier& frontier, std::ostream& out) {
  // Drain a copy shard by shard: PopEntry yields each live entry with
  // its exact (when, seq) key; sorting by the globally unique seq gives
  // canonical bytes at every shard count.
  ShardedFrontier scratch = frontier;
  std::vector<CollUrls::Entry> entries;
  entries.reserve(frontier.size());
  for (CollUrls& shard : scratch.shards_) {
    while (auto entry = shard.PopEntry()) {
      entries.push_back(*entry);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CollUrls::Entry& a, const CollUrls::Entry& b) {
              return a.seq < b.seq;
            });

  TrailerWriter writer(out);
  std::ostringstream header;
  header.precision(17);
  header << kFrontierMagic << ' ' << kFormatVersion << ' '
         << entries.size() << ' ' << frontier.next_seq_ << ' '
         << frontier.front_when_;
  writer.Line(header.str());
  for (const CollUrls::Entry& e : entries) {
    std::ostringstream os;
    os.precision(17);
    os << "F " << e.url.site << ' ' << e.url.slot << ' '
       << e.url.incarnation << ' ' << e.when << ' ' << e.seq;
    writer.Line(os.str());
  }
  writer.Finish();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

StatusOr<ShardedFrontier> LoadFrontier(std::istream& in, int num_shards) {
  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  uint64_t next_seq = 0;
  double front_when = 0.0;
  hs >> magic >> version >> count >> next_seq >> front_when;
  if (hs.fail() || magic != kFrontierMagic) {
    return Status::InvalidArgument("not a frontier snapshot");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  ShardedFrontier frontier(num_shards);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader.Next();
    if (!line.ok()) {
      return Status::InvalidArgument("snapshot entry count mismatch");
    }
    std::istringstream is(*line);
    std::string tag;
    simweb::Url url;
    double when = 0.0;
    uint64_t seq = 0;
    is >> tag >> url.site >> url.slot >> url.incarnation >> when >> seq;
    if (is.fail() || tag != "F") {
      return Status::InvalidArgument("malformed frontier record");
    }
    frontier.shards_[frontier.ShardOf(url.site)].ScheduleAt(url, when,
                                                            seq);
  }
  frontier.next_seq_ = next_seq;
  frontier.front_when_ = front_when;
  auto end = reader.Next();
  if (end.ok() || !reader.done()) {
    return end.ok()
               ? Status::InvalidArgument("trailing data in snapshot")
               : end.status();
  }
  return frontier;
}

Status SaveCollectionToFile(const Collection& collection,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  return SaveCollection(collection, out);
}

Status SaveCollectionToFile(const ShardedCollection& collection,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  return SaveCollection(collection, out);
}

StatusOr<Collection> LoadCollectionFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadCollection(in);
}

}  // namespace webevo::crawler
