#ifndef WEBEVO_CRAWLER_INCREMENTAL_CRAWLER_H_
#define WEBEVO_CRAWLER_INCREMENTAL_CRAWLER_H_

#include <cstdint>
#include <unordered_set>

#include "crawler/all_urls.h"
#include "crawler/collection.h"
#include "crawler/crawl_module.h"
#include "crawler/eval.h"
#include "crawler/ranking_module.h"
#include "crawler/sharded_crawl_engine.h"
#include "crawler/sharded_frontier.h"
#include "crawler/update_module.h"
#include "freshness/freshness_tracker.h"
#include "simweb/simulated_web.h"
#include "util/stats.h"
#include "util/status.h"

namespace webevo::crawler {

/// Configuration of the incremental crawler.
struct IncrementalCrawlerConfig {
  /// Fixed collection size (Algorithm 5.1's assumption).
  std::size_t collection_capacity = 10000;

  /// Steady crawl speed in pages/day; also the UpdateModule's budget.
  /// The paper's steady crawler visits every page about once a month,
  /// so a natural setting is collection_capacity / 30.
  double crawl_rate_pages_per_day = 300.0;

  /// How often the RankingModule re-evaluates importance (expensive).
  double refine_interval_days = 7.0;

  /// How often the UpdateModule recomputes its allocation (cheap).
  double rebalance_interval_days = 1.0;

  /// How often freshness is sampled into the tracker (oracle only).
  double freshness_sample_interval_days = 0.5;

  /// Number of ShardedCrawlEngine shards (parallel CrawlModules).
  /// Results are bit-identical for any value; > 1 spreads each batch's
  /// fetches across that many worker threads.
  int crawl_parallelism = 1;

  UpdateModuleConfig update;
  RankingModuleConfig ranking;
  CrawlModuleConfig crawl;
};

/// The paper's incremental crawler (Figure 12, Algorithm 5.1): a
/// *steady* crawler with *in-place* updates and *variable* revisit
/// frequency — the left-hand column of Figure 10.
///
/// The crawl loop runs in engine batches bounded by the next
/// housekeeping event (refine / rebalance / freshness sample):
///   1. *plan*: pop due URLs off the ShardedFrontier, one per crawl
///      slot (one slot every 1/crawl_rate days) — shard-local heaps
///      extract candidates in parallel, a deterministic k-way merge
///      assigns the slots;
///   2. *fetch*: the ShardedCrawlEngine executes the batch, shards in
///      parallel;
///   3. *apply*: walk outcomes in slot order —
///        - success on a collection page: in-place update, feed the
///          checksum comparison to the UpdateModule, reschedule;
///        - success on a new page: insert (evicting the least-important
///          entry only if refinement hasn't already made room);
///        - NotFound: drop the page everywhere and mark the URL dead;
///        - politeness rejection: reschedule at the earliest polite
///          time;
///      extracted links feed AllUrls either way.
/// URLs crawled or discovered within a batch become eligible for
/// (re)scheduling at the next batch — the batch is the engine's unit
/// of feedback, which is what keeps N-shard runs identical to serial
/// runs.
///
/// While the collection is below capacity, newly discovered URLs are
/// scheduled immediately (greedy fill); once full, admission is the
/// RankingModule's job alone.
class IncrementalCrawler {
 public:
  IncrementalCrawler(simweb::SimulatedWeb* web,
                     const IncrementalCrawlerConfig& config);

  /// Seeds AllUrls/CollUrls with every site root at time `t`. Call once
  /// before RunUntil.
  Status Bootstrap(double t);

  /// Advances the simulation to `until`, crawling at the configured
  /// steady rate.
  Status RunUntil(double until);

  double now() const { return now_; }
  const Collection& collection() const { return collection_; }
  const AllUrls& all_urls() const { return all_urls_; }
  const ShardedFrontier& coll_urls() const { return coll_urls_; }
  /// Module 0 — the only module at crawl_parallelism == 1; per-shard
  /// accounting for wider pools lives on crawl_pool().
  const CrawlModule& crawl_module() const { return engine_.pool().module(0); }
  const CrawlModulePool& crawl_pool() const { return engine_.pool(); }
  const ShardedCrawlEngine& engine() const { return engine_; }
  const UpdateModule& update_module() const { return update_module_; }
  const RankingModule& ranking_module() const { return ranking_module_; }
  const freshness::FreshnessTracker& tracker() const { return tracker_; }

  /// Oracle freshness of the collection right now.
  CollectionQuality MeasureNow();

  /// Counters for the paper's qualitative claims (timeliness of new
  /// pages, refinement churn, ...).
  struct Stats {
    uint64_t crawls = 0;
    uint64_t in_place_updates = 0;
    uint64_t pages_added = 0;
    uint64_t pages_evicted = 0;        ///< capacity-pressure evictions
    uint64_t replacements_executed = 0;
    uint64_t dead_pages_removed = 0;
    uint64_t changes_detected = 0;
    uint64_t politeness_retries = 0;  ///< fetches deferred, not failed
    /// Days from first discovery of a URL to its entering the
    /// collection — the "bring in new pages in a timely manner" metric.
    /// Only counted for URLs *discovered after* the collection first
    /// reached capacity: during the initial fill latency measures queue
    /// depth, and long-known candidates admitted late measure ranking
    /// churn — neither is the paper's "index a new page right after it
    /// is found" timeliness.
    RunningStat new_page_latency_days;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Runs one refinement pass and executes the replacements.
  void RunRefinement();

  /// Handles the links extracted from a crawled page.
  void IngestLinks(const std::vector<simweb::Url>& links);

  /// Applies one fetch outcome at now_ (the serial step 3 above).
  /// `retry_at` is the site's earliest polite fetch time captured at
  /// the attempt inside the owning shard — the reschedule target for
  /// politeness rejections.
  void ApplyOutcome(const simweb::Url& url,
                    StatusOr<simweb::FetchResult> result, double retry_at);

  simweb::SimulatedWeb* web_;  // not owned
  IncrementalCrawlerConfig config_;
  Collection collection_;
  AllUrls all_urls_;
  ShardedFrontier coll_urls_;
  ShardedCrawlEngine engine_;
  UpdateModule update_module_;
  RankingModule ranking_module_;
  freshness::FreshnessTracker tracker_;
  Stats stats_;

  double now_ = 0.0;
  bool bootstrapped_ = false;
  double next_refine_ = 0.0;
  double next_rebalance_ = 0.0;
  double next_sample_ = 0.0;
  /// URLs admitted toward collection slots but not yet crawled; exact
  /// accounting so greedy fill never overshoots capacity.
  std::unordered_set<simweb::Url, simweb::UrlHash> pending_admissions_;
  bool reached_capacity_once_ = false;
  double steady_since_ = 0.0;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_INCREMENTAL_CRAWLER_H_
