#ifndef WEBEVO_CRAWLER_INCREMENTAL_CRAWLER_H_
#define WEBEVO_CRAWLER_INCREMENTAL_CRAWLER_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crawler/admission_lease.h"
#include "crawler/all_urls.h"
#include "crawler/crawl_module.h"
#include "crawler/eval.h"
#include "crawler/ranking_module.h"
#include "crawler/sharded_collection.h"
#include "crawler/sharded_crawl_engine.h"
#include "crawler/sharded_frontier.h"
#include "crawler/update_module.h"
#include "freshness/freshness_tracker.h"
#include "simweb/simulated_web.h"
#include "storage/record_store.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"

namespace webevo::crawler {

class IncrementalCrawler;
struct CrawlerCheckpointOptions;
struct CheckpointIo;
Status SaveCrawler(const IncrementalCrawler& crawler, std::ostream& out,
                   const CrawlerCheckpointOptions& options);
Status LoadCrawler(std::istream& in, IncrementalCrawler* crawler);
Status CheckpointIncremental(IncrementalCrawler* crawler,
                             const std::string& path,
                             const CrawlerCheckpointOptions& options);
Status LoadCrawlerWithDeltasFromFile(const std::string& path,
                                     IncrementalCrawler* crawler);

/// Configuration of the incremental crawler.
struct IncrementalCrawlerConfig {
  /// Fixed collection size (Algorithm 5.1's assumption).
  std::size_t collection_capacity = 10000;

  /// Steady crawl speed in pages/day; also the UpdateModule's budget.
  /// The paper's steady crawler visits every page about once a month,
  /// so a natural setting is collection_capacity / 30.
  double crawl_rate_pages_per_day = 300.0;

  /// How often the RankingModule re-evaluates importance (expensive).
  double refine_interval_days = 7.0;

  /// How often the UpdateModule recomputes its allocation (cheap).
  double rebalance_interval_days = 1.0;

  /// How often freshness is sampled into the tracker (oracle only).
  double freshness_sample_interval_days = 0.5;

  /// Number of ShardedCrawlEngine shards (parallel CrawlModules).
  /// Results are bit-identical for any value; > 1 spreads each batch's
  /// fetches — and now each batch's apply — across that many worker
  /// threads.
  int crawl_parallelism = 1;

  /// Staged batch pipeline (default on): overlap neighbouring batches
  /// with batch B's fetch stage — batch B+1's slot plan is extracted
  /// speculatively from the pre-apply frontier inside B's fetch
  /// workers (reconciled at B's apply barrier via restore-on-touch
  /// lanes), and a freshness sample due at B's start runs its oracle
  /// walks fused into the same workers instead of a separate parallel
  /// pass. Results are bit-identical either way, at every shard count
  /// — the speculative plan reconciles to exactly what the sequential
  /// loop would have planned; `false` keeps the strictly sequential
  /// plan → fetch → apply → measure loop.
  bool pipeline = true;

  /// Auto-checkpointing: when > 0, RunUntil writes a crash-consistent
  /// SaveCrawler checkpoint to `checkpoint_path` every this many
  /// completed engine batches (always at a batch boundary, where the
  /// engine is quiesced). 0 disables.
  uint64_t checkpoint_every_batches = 0;
  std::string checkpoint_path;
  /// Whether auto-checkpoints bundle the simulated web's evolution
  /// state — required for bit-identical resume in a *fresh* process
  /// (see snapshot.h); skip it only when the resuming crawler shares
  /// this process's live web object.
  bool checkpoint_include_web = true;

  /// Incremental checkpointing (docs/STORAGE.md): the first
  /// auto-checkpoint writes a full base image to `checkpoint_path` and
  /// truncates `checkpoint_path + ".deltas"`; every later one appends
  /// an O(dirty) delta segment to the delta log instead of rewriting
  /// the base. Resume with LoadCrawlerWithDeltasFromFile.
  bool checkpoint_incremental = false;

  /// Whether checkpoints carry the per-module politeness/traffic
  /// accounting (the "traffic" section) so a resumed run's traffic
  /// report covers the whole crawl, not just the post-resume tail.
  bool checkpoint_module_traffic = false;

  /// Record-store backend of the Collection and AllUrls (memory map by
  /// default; the paged backend spills records to per-shard page
  /// files). Scheduling behaviour is identical either way.
  storage::StoreOptions store;

  /// Serving layer: when > 0, RunUntil publishes an immutable MVCC
  /// BatchView into the engine's ViewRegistry every this many
  /// completed engine batches (at the batch boundary, engine
  /// quiesced). 0 disables publishing. `retained_views` is the
  /// registry's retention K — how many published views stay
  /// acquirable by concurrent readers.
  uint64_t publish_view_every_batches = 0;
  int retained_views = serving::ViewRegistry::kDefaultRetention;

  /// Failure pipeline for classified fetch failures (Unavailable
  /// transient errors, DeadlineExceeded timeouts from the
  /// fault-injecting web). A failed URL is rescheduled with bounded
  /// exponential backoff — delay = base * 2^(k-1) * (1 + jitter * u)
  /// on the site's k-th consecutive failure, u drawn from the site's
  /// own backoff RNG lane so the schedule is deterministic at every
  /// shard count. A site reaching `fault_quarantine_threshold`
  /// consecutive failures trips its circuit breaker: every frontier
  /// entry of the site is *rescheduled* (never dropped) to no earlier
  /// than now + fault_quarantine_days. A URL failing
  /// `fault_url_retire_failures` times in a row is retired through the
  /// dead-page path (purged + tombstoned). Failed fetches never feed
  /// the change estimators or the freshness tracker.
  double fault_backoff_base_days = 0.25;
  double fault_backoff_jitter = 0.5;
  uint32_t fault_quarantine_threshold = 8;
  double fault_quarantine_days = 2.0;
  uint32_t fault_url_retire_failures = 6;
  /// Seed of the per-site backoff-jitter RNG lanes.
  uint64_t fault_backoff_seed = 0x6a09e667f3bcc908ull;

  /// Adversarial-web defense layer (docs/ARCHITECTURE.md). The
  /// content-fingerprint registry in AllUrls fills (and the
  /// wasted-fetch ledger counts) regardless of this switch — they are
  /// pure observation. `defense_enabled` gates the *actions*:
  ///  - diminishing-returns throttling: per site, every
  ///    `defense_yield_window` successful fetches the non-duplicate
  ///    yield (fetches serving content the fetched URL itself owns —
  ///    changed or not — over the window) is evaluated; a site below
  ///    `defense_min_yield` (almost everything it served was another
  ///    URL's content) has its frontier entries floored at now +
  ///    defense_throttle_base_days * 2^(level-1) and its links
  ///    barred from admission while any throttle level stands; a site
  ///    reaching `defense_quarantine_level` consecutive collapsed
  ///    windows is trap-quarantined (sticky) with a floor of now +
  ///    defense_quarantine_days. Honest sites never trip the
  ///    throttle, however static — spacing unchanged revisits is the
  ///    revisit scheduler's job, not the defense's;
  ///  - mirror dedup: a successful fetch whose fingerprint is owned by
  ///    a different live URL is suppressed (entry + frontier removed),
  ///    so duplicate content is indexed at most once, under the
  ///    first-fetch-in-slot-order canonical winner;
  ///  - migration-following: when the fingerprint's owner is a
  ///    retained page on a presumed-dead site (tripped circuit
  ///    breaker), the entry is re-homed to the new URL and the change
  ///    estimator carried over instead of relearned.
  /// With the switch off the crawl trajectory is byte-identical to a
  /// build without the defense layer.
  bool defense_enabled = false;
  uint32_t defense_yield_window = 24;
  double defense_min_yield = 0.125;
  double defense_throttle_base_days = 1.0;
  uint32_t defense_quarantine_level = 3;
  double defense_quarantine_days = 15.0;
  /// Sticky link-spam bar: once `defense_link_spam_threshold` of a
  /// site's URLs have been suppressed as duplicate content, its links
  /// stop being admitted for good — fetch yield cannot re-open
  /// admission the way it re-opens pacing, because a trap alternates
  /// healthy-looking real-page windows with link floods. The site's
  /// retained pages keep being recrawled normally. Must be >= 1.
  uint32_t defense_link_spam_threshold = 12;

  UpdateModuleConfig update;
  RankingModuleConfig ranking;
  CrawlModuleConfig crawl;
};

/// The paper's incremental crawler (Figure 12, Algorithm 5.1): a
/// *steady* crawler with *in-place* updates and *variable* revisit
/// frequency — the left-hand column of Figure 10.
///
/// The crawl loop runs in engine batches bounded by the next
/// housekeeping event (refine / rebalance / freshness sample):
///   1. *plan*: pop due URLs off the ShardedFrontier, one per crawl
///      slot (one slot every 1/crawl_rate days) — shard-local heaps
///      extract candidates in parallel, a deterministic tournament
///      merge assigns the slots;
///   2. *fetch*: the ShardedCrawlEngine executes the batch, shards in
///      parallel;
///   3. *apply*, under the capacity-lease protocol:
///        - *lease grant* (serial): the coordinator freezes the batch's
///          admission budget R = capacity - size - pending and grants
///          every shard a lease over it (each lease carries the full
///          remaining budget as an optimistic ceiling, plus the right
///          to overdraw capacity on inserts — bounded by the shard's
///          slot count — against canonical-order eviction candidates);
///        - *outcome pass* (parallel, fetch shard): each shard walks
///          its own outcomes in slot order — in-place collection
///          updates, checksum comparisons, dead-page purges and
///          AllUrls tombstones, UpdateModule visit records (whose
///          budget globals are frozen between barriers) — and queues
///          the admission-stream effects;
///        - *admission pass* (parallel, owner shard): each shard walks
///          the global-slot-ordered merge of its own slots' effects
///          and the link discoveries targeting its sites, performing
///          its own capacity-gated work against the lease: overdraft
///          inserts, greedy-fill link admissions (note + dedup + lease
///          gate in one walk), pending-admission settlement, frontier
///          schedules on coordinator-granted per-slot seq lanes, and
///          politeness-retry triage;
///        - *settle* (serial, the shrunken barrier): unused leases
///          settle as counters, overdrawn leases revoke admissions
///          past the frozen budget in global stream order, capacity
///          overdraft evicts the globally worst entries (per-shard
///          nominations merged in canonical BetterEvictionVictim
///          order), the seq-lane grant advances the global counter,
///          and the new-page latency ledger replays inserts in slot
///          order;
///   4. politeness rejections whose polite window reopens before the
///      batch window closes are refetched *within the batch* (reusing
///      their wasted slots, one retry per site per round); the rest
///      reschedule at the earliest polite time for the next batch.
/// URLs crawled or discovered within a batch become eligible for
/// (re)scheduling at the next batch — the batch is the engine's unit
/// of feedback, which is what keeps N-shard runs identical to serial
/// runs.
///
/// While the collection is below capacity, newly discovered URLs are
/// scheduled immediately (greedy fill); once full, admission is the
/// RankingModule's job alone.
class IncrementalCrawler {
 public:
  IncrementalCrawler(simweb::SimulatedWeb* web,
                     const IncrementalCrawlerConfig& config);

  /// Seeds AllUrls/CollUrls with every site root at time `t`. Call once
  /// before RunUntil.
  Status Bootstrap(double t);

  /// Advances the simulation to `until`, crawling at the configured
  /// steady rate.
  Status RunUntil(double until);

  double now() const { return now_; }
  const ShardedCollection& collection() const { return collection_; }
  const AllUrls& all_urls() const { return all_urls_; }
  const ShardedFrontier& coll_urls() const { return coll_urls_; }
  /// Module 0 — the only module at crawl_parallelism == 1; per-shard
  /// accounting for wider pools lives on crawl_pool().
  const CrawlModule& crawl_module() const { return engine_.pool().module(0); }
  const CrawlModulePool& crawl_pool() const { return engine_.pool(); }
  const ShardedCrawlEngine& engine() const { return engine_; }
  const UpdateModule& update_module() const { return update_module_; }
  const RankingModule& ranking_module() const { return ranking_module_; }
  const freshness::FreshnessTracker& tracker() const { return tracker_; }

  /// Oracle freshness of the collection right now.
  CollectionQuality MeasureNow();

  /// Counters for the paper's qualitative claims (timeliness of new
  /// pages, refinement churn, ...).
  struct Stats {
    uint64_t crawls = 0;
    uint64_t in_place_updates = 0;
    uint64_t pages_added = 0;
    uint64_t pages_evicted = 0;        ///< capacity-pressure evictions
    uint64_t replacements_executed = 0;
    uint64_t dead_pages_removed = 0;
    uint64_t changes_detected = 0;
    uint64_t politeness_retries = 0;  ///< fetches deferred, not failed
    /// Rejected fetches refetched within their own batch window —
    /// politeness retries retired without losing a batch of latency.
    uint64_t in_batch_retries = 0;
    /// Capacity-lease ledger: the admission budget granted to the
    /// shard leases (sum of each batch's frozen R) and the greedy-fill
    /// admissions that stood after settlement. Both are pure functions
    /// of the simulation — identical at every shard count — and are
    /// checkpointed. (Lease *revocations* are shard-layout dependent
    /// and live on the engine's wall-clock-free ledger instead.)
    uint64_t lease_budget_granted = 0;
    uint64_t lease_admissions = 0;
    /// Failure ledger (all pure functions of the simulation, identical
    /// at every shard count, checkpointed): classified fetch failures
    /// by kind, how they were disposed of, and the backoff the
    /// pipeline imposed. `fetch_failures` = transient + timeout;
    /// `failure_retries` counts failures rescheduled with backoff
    /// (the rest were retirements); `urls_retired` is deliberately
    /// separate from `dead_pages_removed` — a retired URL may well be
    /// alive, the crawler just gave up on it.
    uint64_t fetch_failures = 0;
    uint64_t transient_errors = 0;
    uint64_t timeout_errors = 0;
    uint64_t failure_retries = 0;
    uint64_t sites_quarantined = 0;
    uint64_t urls_retired = 0;
    /// Backoff delays imposed on failure reschedules, in days — fed
    /// serially in slot order at the settle (RunningStat accumulation
    /// order is observable through the checkpoint).
    RunningStat backoff_days;
    /// Defense ledger (pure functions of the simulation, identical at
    /// every shard count, checkpointed). `wasted_fetches` counts every
    /// successful fetch whose content fingerprint was already owned by
    /// a different URL — it accrues with the defense layer on OR off,
    /// which is what the graceful-degradation bench compares. The
    /// other three count defensive *actions* and stay 0 with the
    /// defense off: throttle events (a site's yield collapse tripping
    /// the pacing throttle 0->1, or its crossing the link-spam bar),
    /// duplicate-content URLs suppressed by mirror dedup, and
    /// collection entries re-homed by migration-following.
    uint64_t wasted_fetches = 0;
    uint64_t trap_sites_throttled = 0;
    uint64_t duplicate_urls_suppressed = 0;
    uint64_t pages_migrated = 0;
    /// Days from first discovery of a URL to its entering the
    /// collection — the "bring in new pages in a timely manner" metric.
    /// Only counted for URLs *discovered after* the collection first
    /// reached capacity: during the initial fill latency measures queue
    /// depth, and long-known candidates admitted late measure ranking
    /// churn — neither is the paper's "index a new page right after it
    /// is found" timeliness.
    RunningStat new_page_latency_days;
  };
  const Stats& stats() const { return stats_; }

  /// Completed engine batches (primary planned batches; their in-batch
  /// retry rounds are part of the batch) — the auto-checkpoint cadence
  /// counter, persisted by SaveCrawler.
  uint64_t batches_completed() const { return batches_completed_; }

  /// The serving layer's view registry (the engine's): reader threads
  /// Acquire/Release published BatchViews through it, lock-free,
  /// while RunUntil crawls. Empty until the first publish (enable
  /// with config.publish_view_every_batches).
  serving::ViewRegistry& views() { return engine_.views(); }
  const serving::ViewRegistry& views() const { return engine_.views(); }

  /// Builds and publishes a BatchView of the current state. Callable
  /// whenever the engine is quiescent (between RunUntil batches);
  /// RunUntil calls it on the publish_view_every_batches cadence, and
  /// LoadCrawler republishes the restored state through it.
  void PublishViewNow();

  /// Checkpoint/restore of the *whole* crawler — the four snapshot
  /// streams plus crawl clock, housekeeping timers, politeness state
  /// and counters, bundled into one container file (snapshot.cc).
  friend Status SaveCrawler(const IncrementalCrawler& crawler,
                            std::ostream& out,
                            const CrawlerCheckpointOptions& options);
  friend Status LoadCrawler(std::istream& in, IncrementalCrawler* crawler);

  /// Incremental checkpoint entry points (snapshot.cc): base image +
  /// O(dirty) delta segments, and the resume that replays them.
  friend Status CheckpointIncremental(IncrementalCrawler* crawler,
                                      const std::string& path,
                                      const CrawlerCheckpointOptions& options);
  friend Status LoadCrawlerWithDeltasFromFile(const std::string& path,
                                              IncrementalCrawler* crawler);
  /// The shared section builders/appliers behind all of the above
  /// (snapshot.cc) — one implementation of each checkpoint section.
  friend struct CheckpointIo;

 private:
  /// One admission-stream effect queued by the outcome pass, consumed
  /// by the owning shard's admission pass in ascending `slot` order.
  struct ApplyEffect {
    enum class Kind {
      kRetry,       ///< politeness rejection: reschedule or retry
      kDead,        ///< NotFound or retired: purged; pending settles
      kReschedule,  ///< success on a collection page: schedule + links
      kInsert,      ///< success on a new page: insert + schedule + links
      kFailed,      ///< transient/timeout: backoff reschedule
    };
    Kind kind = Kind::kReschedule;
    std::size_t slot = 0;  ///< index into the batch plan
    simweb::Url url;
    double at = 0.0;    ///< the slot's simulation time
    double when = 0.0;  ///< retry time (kRetry) or next visit
    /// Stored-copy fields for kInsert (the admission pass builds the
    /// collection entry from them).
    simweb::PageId page = simweb::kInvalidPage;
    uint64_t version = 0;
    Checksum128 checksum;
    /// Links extracted from the fetched body (successes only).
    std::vector<simweb::Url> links;
    /// kDead only: the purge actually removed a collection entry
    /// (feeds the settle's capacity replay).
    bool purged = false;
    /// Admission-pass outputs for the settle's latency/capacity
    /// ledger: the insert happened, and the URL's AllUrls first_seen
    /// at insert time (valid only when first_seen_valid).
    bool inserted = false;
    bool first_seen_valid = false;
    double first_seen = 0.0;
    /// kFailed only: the backoff delay imposed (for the serial ledger
    /// replay) and, when the failure tripped the site's circuit
    /// breaker, the quarantine floor the admission pass must apply to
    /// the site's frontier entries.
    double backoff_delay = 0.0;
    bool quarantine = false;
    double quarantine_until = 0.0;
  };

  /// Everything one shard's outcome pass produces: counter deltas plus
  /// the effect queue, both in the shard's slot order.
  struct ShardApplyResult {
    uint64_t crawls = 0;
    uint64_t in_place_updates = 0;
    uint64_t changes_detected = 0;
    uint64_t politeness_retries = 0;
    uint64_t dead_pages_removed = 0;
    uint64_t fetch_failures = 0;
    uint64_t transient_errors = 0;
    uint64_t timeout_errors = 0;
    uint64_t failure_retries = 0;
    uint64_t sites_quarantined = 0;
    uint64_t urls_retired = 0;
    std::vector<ApplyEffect> effects;
    double seconds = 0.0;  ///< wall-clock of this shard's pass
  };

  /// A politeness rejection eligible for refetching; `slot` orders the
  /// cross-shard merge, `shard` stamps the owner for the retry round's
  /// plan.
  struct PendingRetry {
    simweb::Url url;
    uint32_t shard = 0;
    uint32_t slot = 0;
  };

  /// One shard's admission-pass output, everything in the shard's
  /// stream order.
  struct ShardAdmitResult {
    /// Greedy-fill admissions performed against the lease, by global
    /// (slot, pos) coordinates, plus — aligned by index — what the
    /// settle needs to revoke one: the URL (a pointer into the
    /// effects' link lists), the lane seq its frontier entry was
    /// granted (a later reschedule of the same URL supersedes the
    /// admission; revocation must then leave the newer entry alone),
    /// and whether the pending insert was genuine (an admission of an
    /// already-pending URL must not clear that standing reservation).
    std::vector<AdmissionRef> admitted;
    std::vector<const simweb::Url*> admitted_urls;
    std::vector<uint64_t> admitted_seqs;
    std::vector<uint8_t> admitted_fresh_pending;
    /// Politeness rejections whose window reopens inside the batch.
    std::vector<PendingRetry> retries;
    /// Slots whose kInsert actually inserted (always, under overdraft).
    std::vector<uint32_t> insert_slots;
    double seconds = 0.0;  ///< wall-clock of this shard's pass
  };

  /// Applies one executed batch through the lease-protocol apply
  /// (outcome pass, admission pass, serial settle). Politeness
  /// rejections whose polite window reopens before `batch_end` are
  /// appended to `retries` (for the in-batch retry rounds) instead of
  /// being rescheduled onto the frontier.
  void ApplyBatch(const std::vector<PlannedFetch>& plan,
                  std::vector<StatusOr<simweb::FetchResult>>& outcomes,
                  const std::vector<double>& retry_at, double batch_end,
                  std::vector<PendingRetry>& retries);

  /// Runs one refinement pass and executes the replacements.
  void RunRefinement();

  /// Per-site circuit-breaker state, owned by shard site % N like
  /// every other per-site structure: only the owning shard's outcome
  /// pass touches it. Checkpointed (the "failure" section) so a resume
  /// mid-backoff or mid-quarantine replays the exact same schedule.
  struct SiteFailureState {
    /// Consecutive classified failures since the last successful
    /// contact (a 404 is contact); resets to 0 when the breaker trips.
    uint32_t consecutive = 0;
    /// Floor below which no fetch of this site is scheduled; 0 when
    /// never quarantined (simulation time is non-negative).
    double quarantined_until = 0.0;
    /// The site's backoff-jitter lane, lazily seeded from
    /// (fault_backoff_seed, site); draws depend only on the site's own
    /// failure sequence, never on cross-site interleaving.
    Rng backoff{0};
    bool rng_init = false;
  };

  /// Per-site diminishing-returns state machine (the defense layer's
  /// analogue of SiteFailureState): tallied and evaluated only on the
  /// serial settle, in slot then ascending-site order, so it is a pure
  /// function of the simulation. Checkpointed in the "defense" section
  /// so a resume mid-throttle replays the exact schedule.
  struct SiteDefenseState {
    /// Successful fetches / fresh-yield fetches in the current window.
    uint64_t window_fetches = 0;
    uint64_t window_fresh = 0;
    /// Collapsed-window count; healthy windows decay it one step.
    uint32_t throttle_level = 0;
    /// Sticky trap verdict: links into the site stop being admitted.
    bool quarantined = false;
    double quarantined_until = 0.0;
    /// Lifetime count of the site's URLs suppressed as duplicate
    /// content; at defense_link_spam_threshold the admission bar
    /// becomes permanent (link spam).
    uint64_t suppressed_total = 0;
  };

  /// In-flight admission accounting across the owner-sharded sets.
  std::size_t PendingTotal() const;
  void PendingInsert(const simweb::Url& url) {
    pending_shards_[collection_.ShardOf(url.site)].insert(url);
  }

  /// Switches on dirty tracking across the stores, the web, and the
  /// frontier marking ledger — called when incremental checkpointing
  /// is configured (construction and checkpoint load).
  void EnableDeltaTracking();

  /// Ledger mark: `url`'s frontier position (or absence) must be
  /// recorded in the next delta segment.
  void MarkFrontierDirty(const simweb::Url& url) {
    if (delta_tracking_) frontier_dirty_.insert(url);
  }

  simweb::SimulatedWeb* web_;  // not owned
  IncrementalCrawlerConfig config_;
  ShardedCollection collection_;
  AllUrls all_urls_;
  ShardedFrontier coll_urls_;
  ShardedCrawlEngine engine_;
  UpdateModule update_module_;
  RankingModule ranking_module_;
  freshness::FreshnessTracker tracker_;
  Stats stats_;

  double now_ = 0.0;
  bool bootstrapped_ = false;
  double next_refine_ = 0.0;
  double next_rebalance_ = 0.0;
  double next_sample_ = 0.0;
  uint64_t batches_completed_ = 0;
  /// URLs admitted toward collection slots but not yet crawled — the
  /// in-flight half of the capacity lease (the budget R the coordinator
  /// freezes each batch is capacity - size - pending). Sharded by the
  /// engine's site % N ownership so the admission pass settles each
  /// slot's pending entry and records each admission inside the owning
  /// shard; the total is the sum over shards, shard-count free.
  std::vector<std::unordered_set<simweb::Url, simweb::UrlHash>>
      pending_shards_;
  /// Failure-pipeline state, sharded by site % N ownership and
  /// persisted in the checkpoint's "failure" section: the per-site
  /// circuit breakers and the per-URL consecutive-failure counts
  /// behind dead-after-K retirement.
  std::vector<std::unordered_map<uint32_t, SiteFailureState>>
      site_failure_shards_;
  std::vector<std::unordered_map<simweb::Url, uint32_t, simweb::UrlHash>>
      url_failure_shards_;
  /// Defense-layer state, sharded by the same site % N ownership (the
  /// admission pass reads its own shard's quarantine verdicts, frozen
  /// between barriers) and persisted in the checkpoint's "defense"
  /// section. Populated only while defense_enabled.
  std::vector<std::unordered_map<uint32_t, SiteDefenseState>>
      site_defense_shards_;
  bool reached_capacity_once_ = false;
  double steady_since_ = 0.0;
  /// Incremental-checkpoint state. `frontier_dirty_` is the serial
  /// marking ledger of URLs whose frontier position may have moved
  /// since the last checkpoint — maintained only at the settle and on
  /// the other serial mutation paths (refinement, spaced retries), in
  /// rules chosen so the marked set is a pure function of the
  /// simulation (identical at every shard count; see docs/STORAGE.md).
  /// `base_written_` is deliberately *not* checkpointed: a restarted
  /// process rebases (writes a fresh full image) on its first
  /// checkpoint instead of appending to a chain it has not verified.
  bool delta_tracking_ = false;
  bool base_written_ = false;
  std::set<simweb::Url, simweb::UrlIdentityLess> frontier_dirty_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_INCREMENTAL_CRAWLER_H_
