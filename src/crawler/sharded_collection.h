#ifndef WEBEVO_CRAWLER_SHARDED_COLLECTION_H_
#define WEBEVO_CRAWLER_SHARDED_COLLECTION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "crawler/collection.h"
#include "simweb/url.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace webevo::crawler {

/// A Collection partitioned into N shard-local stores, sites owned by
/// shard `site % N` — the same ownership mapping the ShardedCrawlEngine
/// fetches under and the ShardedFrontier schedules under. This is what
/// lets the apply phase run shard-parallel: during a batch's shard-local
/// pass each worker mutates only `shard(s)` (in-place updates, dead-page
/// removals), while every cross-shard effect — inserts against the
/// *global* capacity, eviction of the *globally* least important entry —
/// is applied serially at the batch barrier.
///
/// Behavioural contract: shard count is invisible. The capacity is
/// global (a shard may hold any fraction of it), `size()` is the sum
/// over shards, and `LowestImportance()` breaks importance ties by URL
/// identity (site, slot, incarnation) rather than map order, so the
/// eviction victim is a pure function of the stored entries at every N.
class ShardedCollection {
 public:
  /// Creates `num_shards` shard stores (>= 1; clamped) sharing one
  /// global `capacity`, on the default memory backend.
  ShardedCollection(std::size_t capacity, int num_shards)
      : ShardedCollection(capacity, num_shards, storage::StoreOptions{}) {}

  /// Backend-selecting constructor (see storage::StoreOptions): every
  /// shard store uses `options`' backend.
  ShardedCollection(std::size_t capacity, int num_shards,
                    const storage::StoreOptions& options);

  /// Inserts a new entry or updates the existing one in place. Returns
  /// ResourceExhausted if the entry is new and the *global* size is at
  /// capacity. Serial-phase only (routes through global state).
  Status Upsert(CollectionEntry entry);

  /// Overdraft insert into shard `s` (which must own the entry's
  /// site): the lease-apply pass's primitive. The global capacity is
  /// deliberately *not* checked — a shard holding a capacity lease may
  /// overdraw by up to its batch slot count, and SettleOverdraft
  /// restores the bound at the barrier. Safe to call concurrently for
  /// distinct shards; the cached global size goes stale until
  /// ReconcileSize().
  void InsertOverdraft(std::size_t s, CollectionEntry entry) {
    shards_[s].UpsertUnchecked(std::move(entry));
  }

  /// The canonical eviction settle for a batch's overdraft: selects
  /// the size() - capacity() globally best eviction victims — each
  /// shard nominates its own candidates (in parallel over `threads`
  /// when provided), the nominations merge in BetterEvictionVictim
  /// order (importance, then URL identity), a pure function of the
  /// stored entries at every shard count. Requires ReconcileSize()
  /// first; returns the victims best-first *without* removing them
  /// (the caller also owns frontier/update-module cleanup per victim).
  std::vector<simweb::Url> CollectOverdraftVictims(ThreadPool* threads);

  /// Removes an entry; NotFound if absent.
  Status Remove(const simweb::Url& url);

  /// Looks up an entry; nullptr if absent. Invalidated by mutations.
  const CollectionEntry* Find(const simweb::Url& url) const;
  CollectionEntry* FindMutable(const simweb::Url& url);

  bool Contains(const simweb::Url& url) const {
    return shards_[ShardOf(url.site)].Contains(url);
  }

  /// O(1): the count is cached across Upsert/Remove/Clear. After
  /// mutating shard stores directly (the apply shard pass), call
  /// ReconcileSize() before reading any global state.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return size() >= capacity_; }

  /// Recomputes the cached count from the shard stores — the serial
  /// re-sync after a phase of direct shard(s) mutations.
  void ReconcileSize();

  /// Applies `fn` to every entry, shard-major (unspecified order within
  /// a shard). Use ForEachCanonical when the visit order is observable.
  void ForEach(const std::function<void(const CollectionEntry&)>& fn) const;

  /// Applies `fn` to every entry in ascending (site, slot, incarnation)
  /// order — independent of shard count and hash-map layout, for
  /// snapshots and ranking walks whose output depends on the order.
  void ForEachCanonical(
      const std::function<void(const CollectionEntry&)>& fn) const;

  /// Entry with the lowest importance, ties broken by smallest URL
  /// identity (nullptr if empty) — the deterministic eviction victim.
  const CollectionEntry* LowestImportance() const;

  void Clear();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t ShardOf(uint32_t site) const { return site % shards_.size(); }

  /// Shard-local store, for the parallel apply pass: during that pass a
  /// worker may only touch the shards it owns, and only through
  /// in-place updates and removals (never inserts, which are gated on
  /// the global capacity and belong to the barrier).
  Collection& shard(std::size_t i) { return shards_[i]; }
  const Collection& shard(std::size_t i) const { return shards_[i]; }

  /// Replaces all contents with a copy of `other`'s, keeping *this's
  /// backend — the checkpoint-load commit step, so a paged collection
  /// stays paged across a resume.
  void ReplaceEntriesFrom(const ShardedCollection& other);

  /// Barrier hook: per-shard store compaction (paged backend; no-op on
  /// memory). Invalidates outstanding entry pointers.
  void Flush();

  /// Dirty-key tracking for incremental checkpoints: per-shard sets,
  /// merged canonically by AppendDirty. The merged set is a pure
  /// function of the logical mutations and thus identical at every N.
  void EnableDirtyTracking();
  void AppendDirty(storage::RecordStore<CollectionEntry>::DirtySet* out)
      const;
  bool cleared_while_tracking() const;
  void ClearDirty();

 private:
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::vector<Collection> shards_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_SHARDED_COLLECTION_H_
