#include "crawler/sharded_collection.h"

#include <algorithm>
#include <utility>

namespace webevo::crawler {
namespace {

constexpr simweb::UrlIdentityLess IdentityLess;

}  // namespace

ShardedCollection::ShardedCollection(std::size_t capacity, int num_shards,
                                     const storage::StoreOptions& options)
    : capacity_(capacity) {
  const auto shards =
      static_cast<std::size_t>(std::max(1, num_shards));
  // Each shard store carries the global capacity: site hashing may skew
  // arbitrarily, so the per-shard bound must never bind. The global
  // bound is enforced here in Upsert.
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(capacity, options,
                         "collection-shard" + std::to_string(s));
  }
}

Status ShardedCollection::Upsert(CollectionEntry entry) {
  Collection& owner = shards_[ShardOf(entry.url.site)];
  const bool existed = owner.Contains(entry.url);
  if (!existed && size_ >= capacity_) {
    return Status::ResourceExhausted("collection at capacity");
  }
  Status st = owner.Upsert(std::move(entry));
  if (st.ok() && !existed) ++size_;
  return st;
}

Status ShardedCollection::Remove(const simweb::Url& url) {
  Status st = shards_[ShardOf(url.site)].Remove(url);
  if (st.ok()) --size_;
  return st;
}

void ShardedCollection::ReconcileSize() {
  size_ = 0;
  for (const Collection& shard : shards_) size_ += shard.size();
}

const CollectionEntry* ShardedCollection::Find(
    const simweb::Url& url) const {
  return shards_[ShardOf(url.site)].Find(url);
}

CollectionEntry* ShardedCollection::FindMutable(const simweb::Url& url) {
  return shards_[ShardOf(url.site)].FindMutable(url);
}

void ShardedCollection::ForEach(
    const std::function<void(const CollectionEntry&)>& fn) const {
  for (const Collection& shard : shards_) shard.ForEach(fn);
}

void ShardedCollection::ForEachCanonical(
    const std::function<void(const CollectionEntry&)>& fn) const {
  std::vector<const CollectionEntry*> entries;
  entries.reserve(size());
  ForEach([&](const CollectionEntry& e) { entries.push_back(&e); });
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return IdentityLess(a->url, b->url);
            });
  for (const CollectionEntry* e : entries) fn(*e);
}

std::vector<simweb::Url> ShardedCollection::CollectOverdraftVictims(
    ThreadPool* threads) {
  if (size_ <= capacity_) return {};
  const std::size_t needed = size_ - capacity_;
  // Each shard nominates its own `needed` best victims — enough that
  // the global best `needed` are always among the nominations.
  std::vector<std::vector<const CollectionEntry*>> nominated(
      shards_.size());
  std::vector<std::size_t> busy;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].size() > 0) busy.push_back(s);
  }
  auto nominate = [&](std::size_t s) {
    shards_[s].LowestImportanceK(needed, &nominated[s]);
  };
  if (threads != nullptr) {
    threads->RunForIndices(busy, nominate);
  } else {
    for (std::size_t s : busy) nominate(s);
  }
  // Serial canonical merge over the per-shard nomination heads.
  std::vector<std::size_t> next(shards_.size(), 0);
  std::vector<simweb::Url> victims;
  victims.reserve(needed);
  while (victims.size() < needed) {
    const CollectionEntry* best = nullptr;
    std::size_t best_shard = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (next[s] >= nominated[s].size()) continue;
      const CollectionEntry* head = nominated[s][next[s]];
      if (best == nullptr || BetterEvictionVictim(*head, *best)) {
        best = head;
        best_shard = s;
      }
    }
    if (best == nullptr) break;  // unreachable: size() > capacity()
    ++next[best_shard];
    victims.push_back(best->url);
  }
  return victims;
}

const CollectionEntry* ShardedCollection::LowestImportance() const {
  const CollectionEntry* lowest = nullptr;
  for (const Collection& shard : shards_) {
    const CollectionEntry* candidate = shard.LowestImportance();
    if (candidate == nullptr) continue;
    if (lowest == nullptr || BetterEvictionVictim(*candidate, *lowest)) {
      lowest = candidate;
    }
  }
  return lowest;
}

void ShardedCollection::Clear() {
  for (Collection& shard : shards_) shard.Clear();
  size_ = 0;
}

void ShardedCollection::ReplaceEntriesFrom(const ShardedCollection& other) {
  for (Collection& shard : shards_) shard.Clear();
  other.ForEach([this](const CollectionEntry& e) {
    shards_[ShardOf(e.url.site)].UpsertUnchecked(CollectionEntry(e));
  });
  ReconcileSize();
}

void ShardedCollection::Flush() {
  for (Collection& shard : shards_) shard.Flush();
}

void ShardedCollection::EnableDirtyTracking() {
  for (Collection& shard : shards_) shard.EnableDirtyTracking();
}

void ShardedCollection::AppendDirty(
    storage::RecordStore<CollectionEntry>::DirtySet* out) const {
  for (const Collection& shard : shards_) {
    out->insert(shard.dirty().begin(), shard.dirty().end());
  }
}

bool ShardedCollection::cleared_while_tracking() const {
  for (const Collection& shard : shards_) {
    if (shard.cleared_while_tracking()) return true;
  }
  return false;
}

void ShardedCollection::ClearDirty() {
  for (Collection& shard : shards_) shard.ClearDirty();
}

}  // namespace webevo::crawler
