#include "crawler/sharded_collection.h"

#include <algorithm>
#include <utility>

namespace webevo::crawler {
namespace {

constexpr simweb::UrlIdentityLess IdentityLess;

}  // namespace

ShardedCollection::ShardedCollection(std::size_t capacity, int num_shards)
    : capacity_(capacity) {
  const auto shards =
      static_cast<std::size_t>(std::max(1, num_shards));
  // Each shard store carries the global capacity: site hashing may skew
  // arbitrarily, so the per-shard bound must never bind. The global
  // bound is enforced here in Upsert.
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) shards_.emplace_back(capacity);
}

Status ShardedCollection::Upsert(CollectionEntry entry) {
  Collection& owner = shards_[ShardOf(entry.url.site)];
  const bool existed = owner.Contains(entry.url);
  if (!existed && size_ >= capacity_) {
    return Status::ResourceExhausted("collection at capacity");
  }
  Status st = owner.Upsert(std::move(entry));
  if (st.ok() && !existed) ++size_;
  return st;
}

Status ShardedCollection::Remove(const simweb::Url& url) {
  Status st = shards_[ShardOf(url.site)].Remove(url);
  if (st.ok()) --size_;
  return st;
}

void ShardedCollection::ReconcileSize() {
  size_ = 0;
  for (const Collection& shard : shards_) size_ += shard.size();
}

const CollectionEntry* ShardedCollection::Find(
    const simweb::Url& url) const {
  return shards_[ShardOf(url.site)].Find(url);
}

CollectionEntry* ShardedCollection::FindMutable(const simweb::Url& url) {
  return shards_[ShardOf(url.site)].FindMutable(url);
}

void ShardedCollection::ForEach(
    const std::function<void(const CollectionEntry&)>& fn) const {
  for (const Collection& shard : shards_) shard.ForEach(fn);
}

void ShardedCollection::ForEachCanonical(
    const std::function<void(const CollectionEntry&)>& fn) const {
  std::vector<const CollectionEntry*> entries;
  entries.reserve(size());
  ForEach([&](const CollectionEntry& e) { entries.push_back(&e); });
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return IdentityLess(a->url, b->url);
            });
  for (const CollectionEntry* e : entries) fn(*e);
}

const CollectionEntry* ShardedCollection::LowestImportance() const {
  const CollectionEntry* lowest = nullptr;
  for (const Collection& shard : shards_) {
    const CollectionEntry* candidate = shard.LowestImportance();
    if (candidate == nullptr) continue;
    if (lowest == nullptr || BetterEvictionVictim(*candidate, *lowest)) {
      lowest = candidate;
    }
  }
  return lowest;
}

void ShardedCollection::Clear() {
  for (Collection& shard : shards_) shard.Clear();
  size_ = 0;
}

}  // namespace webevo::crawler
