#include "crawler/admission_lease.h"

#include <algorithm>

namespace webevo::crawler {

std::vector<RevokedAdmission> SettleAdmissionLease(
    const std::vector<std::vector<AdmissionRef>>& admitted,
    std::size_t budget) {
  std::size_t total = 0;
  for (const auto& shard : admitted) total += shard.size();
  if (total <= budget) return {};

  // Contended batch: materialise the global admission order. Settling
  // is the rare path (the budget only binds around the fill boundary),
  // so a gather + sort beats maintaining merge machinery on every
  // batch.
  struct Tagged {
    AdmissionRef ref;
    uint32_t shard;
    uint32_t index;
  };
  std::vector<Tagged> all;
  all.reserve(total);
  for (std::size_t s = 0; s < admitted.size(); ++s) {
    for (std::size_t i = 0; i < admitted[s].size(); ++i) {
      all.push_back(Tagged{admitted[s][i], static_cast<uint32_t>(s),
                           static_cast<uint32_t>(i)});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.ref.slot != b.ref.slot) return a.ref.slot < b.ref.slot;
    return a.ref.pos < b.ref.pos;
  });
  std::vector<RevokedAdmission> revoked;
  revoked.reserve(total - budget);
  for (std::size_t i = budget; i < all.size(); ++i) {
    revoked.push_back(RevokedAdmission{all[i].shard, all[i].index});
  }
  return revoked;
}

}  // namespace webevo::crawler
