#include "crawler/collection.h"

#include <algorithm>
#include <utility>

#include "crawler/store_codecs.h"
#include "storage/paged_record_store.h"

namespace webevo::crawler {

Collection::Collection(std::size_t capacity,
                       const storage::StoreOptions& options,
                       const std::string& name)
    : capacity_(capacity) {
  if (options.backend == storage::StoreOptions::Backend::kPaged) {
    store_ = std::make_unique<
        storage::PagedRecordStore<CollectionEntry, CollectionEntryCodec>>(
        options, name);
  } else {
    store_ = std::make_unique<storage::MapRecordStore<CollectionEntry>>();
  }
}

Status Collection::Upsert(CollectionEntry entry) {
  const simweb::Url url = entry.url;
  if (!store_->Contains(url)) {
    if (full()) {
      return Status::ResourceExhausted("collection at capacity");
    }
  }
  store_->Put(url, std::move(entry));
  return Status::Ok();
}

void Collection::UpsertUnchecked(CollectionEntry entry) {
  const simweb::Url url = entry.url;
  store_->Put(url, std::move(entry));
}

Status Collection::Remove(const simweb::Url& url) {
  if (!store_->Erase(url)) {
    return Status::NotFound("url not in collection");
  }
  return Status::Ok();
}

const CollectionEntry* Collection::Find(const simweb::Url& url) const {
  return store_->Find(url);
}

CollectionEntry* Collection::FindMutable(const simweb::Url& url) {
  return store_->FindMutable(url);
}

void Collection::ForEach(
    const std::function<void(const CollectionEntry&)>& fn) const {
  store_->ForEach(
      [&fn](const simweb::Url& url, const CollectionEntry& entry) {
        (void)url;
        fn(entry);
      });
}

void Collection::ForEachCanonical(
    const std::function<void(const CollectionEntry&)>& fn) const {
  store_->ForEachCanonical(
      [&fn](const simweb::Url& url, const CollectionEntry& entry) {
        (void)url;
        fn(entry);
      });
}

bool BetterEvictionVictim(const CollectionEntry& a,
                          const CollectionEntry& b) {
  if (a.importance != b.importance) return a.importance < b.importance;
  return simweb::UrlIdentityLess{}(a.url, b.url);
}

const CollectionEntry* Collection::LowestImportance() const {
  const CollectionEntry* lowest = nullptr;
  ForEach([&lowest](const CollectionEntry& entry) {
    if (lowest == nullptr || BetterEvictionVictim(entry, *lowest)) {
      lowest = &entry;
    }
  });
  return lowest;
}

void Collection::LowestImportanceK(
    std::size_t k, std::vector<const CollectionEntry*>* out) const {
  if (k == 0) return;
  // Bounded selection: keep the k best victims seen so far as a heap
  // whose top is the *worst* of them, so each entry costs O(log k).
  auto worse = [](const CollectionEntry* a, const CollectionEntry* b) {
    return BetterEvictionVictim(*a, *b);  // heap top = worst victim
  };
  std::vector<const CollectionEntry*> best;
  best.reserve(k + 1);
  ForEach([&](const CollectionEntry& entry) {
    if (best.size() < k) {
      best.push_back(&entry);
      std::push_heap(best.begin(), best.end(), worse);
      return;
    }
    if (BetterEvictionVictim(entry, *best.front())) {
      std::pop_heap(best.begin(), best.end(), worse);
      best.back() = &entry;
      std::push_heap(best.begin(), best.end(), worse);
    }
  });
  std::sort(best.begin(), best.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return BetterEvictionVictim(*a, *b);
            });
  out->insert(out->end(), best.begin(), best.end());
}

Status Collection::AbsorbAll(Collection& other) {
  if (capacity_ < other.size()) {
    return Status::ResourceExhausted("absorb exceeds capacity");
  }
  other.ForEach([this](const CollectionEntry& entry) {
    store_->Put(entry.url, CollectionEntry(entry));
  });
  other.Clear();
  return Status::Ok();
}

void Collection::ReplaceEntriesFrom(const Collection& other) {
  store_->Clear();
  other.ForEach([this](const CollectionEntry& entry) {
    store_->Put(entry.url, CollectionEntry(entry));
  });
}

void ShadowedCollection::Swap() {
  current_.Clear();
  // The shadow becomes current; shadow space restarts empty.
  Status st = current_.AbsorbAll(shadow_);
  (void)st;  // capacities are equal by construction
  ++swap_count_;
}

}  // namespace webevo::crawler
