#include "crawler/collection.h"

#include <algorithm>
#include <utility>

namespace webevo::crawler {

Status Collection::Upsert(CollectionEntry entry) {
  auto it = entries_.find(entry.url);
  if (it != entries_.end()) {
    it->second = std::move(entry);
    return Status::Ok();
  }
  if (full()) {
    return Status::ResourceExhausted("collection at capacity");
  }
  simweb::Url url = entry.url;
  entries_.emplace(url, std::move(entry));
  return Status::Ok();
}

void Collection::UpsertUnchecked(CollectionEntry entry) {
  auto it = entries_.find(entry.url);
  if (it != entries_.end()) {
    it->second = std::move(entry);
    return;
  }
  simweb::Url url = entry.url;
  entries_.emplace(url, std::move(entry));
}

Status Collection::Remove(const simweb::Url& url) {
  if (entries_.erase(url) == 0) {
    return Status::NotFound("url not in collection");
  }
  return Status::Ok();
}

const CollectionEntry* Collection::Find(const simweb::Url& url) const {
  auto it = entries_.find(url);
  return it == entries_.end() ? nullptr : &it->second;
}

CollectionEntry* Collection::FindMutable(const simweb::Url& url) {
  auto it = entries_.find(url);
  return it == entries_.end() ? nullptr : &it->second;
}

void Collection::ForEach(
    const std::function<void(const CollectionEntry&)>& fn) const {
  for (const auto& [url, entry] : entries_) fn(entry);
}

bool BetterEvictionVictim(const CollectionEntry& a,
                          const CollectionEntry& b) {
  if (a.importance != b.importance) return a.importance < b.importance;
  return simweb::UrlIdentityLess{}(a.url, b.url);
}

const CollectionEntry* Collection::LowestImportance() const {
  const CollectionEntry* lowest = nullptr;
  for (const auto& [url, entry] : entries_) {
    if (lowest == nullptr || BetterEvictionVictim(entry, *lowest)) {
      lowest = &entry;
    }
  }
  return lowest;
}

void Collection::LowestImportanceK(
    std::size_t k, std::vector<const CollectionEntry*>* out) const {
  if (k == 0) return;
  // Bounded selection: keep the k best victims seen so far as a heap
  // whose top is the *worst* of them, so each entry costs O(log k).
  auto worse = [](const CollectionEntry* a, const CollectionEntry* b) {
    return BetterEvictionVictim(*a, *b);  // heap top = worst victim
  };
  std::vector<const CollectionEntry*> best;
  best.reserve(k + 1);
  for (const auto& [url, entry] : entries_) {
    if (best.size() < k) {
      best.push_back(&entry);
      std::push_heap(best.begin(), best.end(), worse);
      continue;
    }
    if (BetterEvictionVictim(entry, *best.front())) {
      std::pop_heap(best.begin(), best.end(), worse);
      best.back() = &entry;
      std::push_heap(best.begin(), best.end(), worse);
    }
  }
  std::sort(best.begin(), best.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              return BetterEvictionVictim(*a, *b);
            });
  out->insert(out->end(), best.begin(), best.end());
}

Status Collection::AbsorbAll(Collection& other) {
  if (capacity_ < other.size()) {
    return Status::ResourceExhausted("absorb exceeds capacity");
  }
  for (auto& [url, entry] : other.entries_) {
    entries_[url] = std::move(entry);
  }
  other.entries_.clear();
  return Status::Ok();
}

void ShadowedCollection::Swap() {
  current_.Clear();
  // The shadow becomes current; shadow space restarts empty.
  Status st = current_.AbsorbAll(shadow_);
  (void)st;  // capacities are equal by construction
  ++swap_count_;
}

}  // namespace webevo::crawler
