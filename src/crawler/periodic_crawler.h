#ifndef WEBEVO_CRAWLER_PERIODIC_CRAWLER_H_
#define WEBEVO_CRAWLER_PERIODIC_CRAWLER_H_

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "crawler/collection.h"
#include "crawler/crawl_module.h"
#include "crawler/eval.h"
#include "freshness/freshness_tracker.h"
#include "simweb/simulated_web.h"
#include "util/status.h"

namespace webevo::crawler {

/// Configuration of the periodic crawler.
struct PeriodicCrawlerConfig {
  std::size_t collection_capacity = 10000;

  /// Cycle length T: a fresh crawl starts every `cycle_days`.
  double cycle_days = 30.0;

  /// Active window w <= T: the crawl runs during the first
  /// `crawl_window_days` of each cycle at speed capacity / w. Setting
  /// w = T yields a *steady* crawler (continuous crawling at the low
  /// speed capacity / T); w < T yields the paper's *batch-mode* crawler
  /// with its higher peak speed.
  double crawl_window_days = 7.0;

  /// Shadowing (collect into a separate space, swap at crawl end) vs.
  /// in-place updates — Section 4, choice 2. The four combinations of
  /// (crawl_window_days == / < cycle_days) x shadowing are exactly the
  /// four cells of Table 2.
  bool shadowing = true;

  /// How often freshness is sampled into the tracker.
  double freshness_sample_interval_days = 0.25;

  CrawlModuleConfig crawl;
};

/// The paper's periodic crawler (the right-hand column of Figure 10 in
/// its default batch + shadowing configuration): every cycle it
/// recrawls from the site roots in breadth-first order, rebuilding the
/// collection from scratch, with a fixed revisit frequency for every
/// page. With in-place updates pages become visible as they are
/// fetched; with shadowing the current collection is replaced
/// atomically when the crawl finishes (or its window closes).
///
/// The BFS order is deterministic, so each page is revisited at the
/// same offset in every cycle — matching the assumptions behind the
/// analytic curves of Figures 7 and 8.
class PeriodicCrawler {
 public:
  PeriodicCrawler(simweb::SimulatedWeb* web,
                  const PeriodicCrawlerConfig& config);

  /// Starts the first cycle at time `t`.
  Status Bootstrap(double t);

  /// Advances the simulation to `until`.
  Status RunUntil(double until);

  double now() const { return now_; }

  /// The collection users query (the current collection under
  /// shadowing; the single collection otherwise).
  const Collection& current_collection() const;

  const CrawlModule& crawl_module() const { return crawl_module_; }
  const freshness::FreshnessTracker& tracker() const { return tracker_; }
  int64_t cycles_completed() const { return cycles_completed_; }

  /// Oracle freshness of the user-visible collection right now.
  CollectionQuality MeasureNow();

  struct Stats {
    uint64_t crawls = 0;
    uint64_t pages_stored = 0;
    uint64_t dead_fetches = 0;
    uint64_t swaps = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Prepares the BFS frontier for a new cycle starting at `t`.
  void StartCycle(double t);

  /// Finishes the active cycle (swap under shadowing).
  void FinishCycle();

  /// Crawls the next frontier URL at now_; returns false if the
  /// frontier is exhausted.
  bool CrawlNext();

  Collection& target_collection();

  simweb::SimulatedWeb* web_;  // not owned
  PeriodicCrawlerConfig config_;
  ShadowedCollection store_;
  Collection inplace_;  // used when shadowing is off
  CrawlModule crawl_module_;
  freshness::FreshnessTracker tracker_;
  Stats stats_;

  double now_ = 0.0;
  bool bootstrapped_ = false;
  double cycle_start_ = 0.0;
  bool cycle_active_ = false;
  int64_t cycles_completed_ = 0;
  uint64_t stored_this_cycle_ = 0;
  double next_sample_ = 0.0;
  std::deque<simweb::Url> frontier_;
  std::unordered_set<simweb::Url, simweb::UrlHash> seen_this_cycle_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_PERIODIC_CRAWLER_H_
