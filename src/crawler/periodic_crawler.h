#ifndef WEBEVO_CRAWLER_PERIODIC_CRAWLER_H_
#define WEBEVO_CRAWLER_PERIODIC_CRAWLER_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crawler/collection.h"
#include "crawler/crawl_module.h"
#include "crawler/eval.h"
#include "crawler/sharded_crawl_engine.h"
#include "freshness/freshness_tracker.h"
#include "simweb/simulated_web.h"
#include "util/status.h"

namespace webevo::crawler {

class PeriodicCrawler;
struct CrawlerCheckpointOptions;
Status SaveCrawler(const PeriodicCrawler& crawler, std::ostream& out,
                   const CrawlerCheckpointOptions& options);
Status LoadCrawler(std::istream& in, PeriodicCrawler* crawler);

/// Configuration of the periodic crawler.
struct PeriodicCrawlerConfig {
  std::size_t collection_capacity = 10000;

  /// Cycle length T: a fresh crawl starts every `cycle_days`.
  double cycle_days = 30.0;

  /// Active window w <= T: the crawl runs during the first
  /// `crawl_window_days` of each cycle at speed capacity / w. Setting
  /// w = T yields a *steady* crawler (continuous crawling at the low
  /// speed capacity / T); w < T yields the paper's *batch-mode* crawler
  /// with its higher peak speed.
  double crawl_window_days = 7.0;

  /// Shadowing (collect into a separate space, swap at crawl end) vs.
  /// in-place updates — Section 4, choice 2. The four combinations of
  /// (crawl_window_days == / < cycle_days) x shadowing are exactly the
  /// four cells of Table 2.
  bool shadowing = true;

  /// How often freshness is sampled into the tracker.
  double freshness_sample_interval_days = 0.25;

  /// Number of ShardedCrawlEngine shards (parallel CrawlModules).
  /// Results are bit-identical for any value; > 1 spreads each batch's
  /// fetches across that many worker threads.
  int crawl_parallelism = 1;

  /// Staged batch pipeline: when true, a freshness sample that is due
  /// at a batch boundary defers its oracle walk into the batch's fetch
  /// workers (each shard measures its own sites *before* its fetches,
  /// so every page's observation order is the sequential one) and
  /// settles into the tracker right after the fetch stage — the
  /// measure overlaps the fetch wall-clock instead of extending it.
  /// The periodic planner is a deque pop, so unlike the incremental
  /// crawler there is no speculative plan stage. `false` runs the
  /// strictly sequential loop. Results are bit-identical either way.
  bool pipeline = true;

  /// Auto-checkpointing, as on the incremental crawler: when > 0,
  /// RunUntil writes a SaveCrawler checkpoint to `checkpoint_path`
  /// every this many completed engine batches. 0 disables.
  uint64_t checkpoint_every_batches = 0;
  std::string checkpoint_path;
  bool checkpoint_include_web = true;
  /// Whether checkpoints carry the pool's traffic aggregate (the
  /// "traffic" section), as on the incremental crawler. Note the
  /// periodic crawler has no *incremental* checkpoint mode: every
  /// cycle rewrites the whole collection, so an O(dirty) delta
  /// degenerates to O(everything) — see snapshot.h.
  bool checkpoint_module_traffic = false;

  /// Record-store backend of the collections (memory map by default;
  /// the paged backend spills records to page files). Behaviour is
  /// identical either way.
  storage::StoreOptions store;

  /// Serving layer, as on the incremental crawler: when > 0, RunUntil
  /// publishes an immutable MVCC BatchView every this many completed
  /// engine batches; `retained_views` is the registry's retention K.
  uint64_t publish_view_every_batches = 0;
  int retained_views = serving::ViewRegistry::kDefaultRetention;

  /// Failure handling: a transient error or timeout re-queues the URL
  /// at the back of the cycle's BFS frontier (a failed slot is
  /// refunded, like a dead fetch), at most this many times per URL per
  /// cycle; past the limit the URL is dropped *for this cycle only* —
  /// the next cycle starts from scratch anyway, which is the periodic
  /// crawler's natural quarantine. Unlike a dead fetch, a failure
  /// never purges an in-place entry: the page may be perfectly alive
  /// behind the outage.
  uint32_t fault_requeue_limit = 3;

  CrawlModuleConfig crawl;
};

/// The paper's periodic crawler (the right-hand column of Figure 10 in
/// its default batch + shadowing configuration): every cycle it
/// recrawls from the site roots in breadth-first order, rebuilding the
/// collection from scratch, with a fixed revisit frequency for every
/// page. With in-place updates pages become visible as they are
/// fetched; with shadowing the current collection is replaced
/// atomically when the crawl finishes (or its window closes).
///
/// The crawl loop runs in engine batches bounded by the next freshness
/// sample and the window end: *plan* pops the BFS frontier one URL per
/// crawl slot (a deque pop — O(1), nothing to shard; the owning shard
/// is stamped on the slot here), *fetch* executes the batch across
/// shards, *apply* runs the shared capacity-lease admission pass (each
/// shard tests-and-marks the discoveries whose target site it owns
/// against its own seen-set, in slot order, gated by a lease over the
/// cycle's frozen frontier-memory budget; the serial settle revokes
/// any optimistic overdraft in global stream order) and then stores
/// pages and expands the frontier serially in slot order. The
/// freshness *measure* at each sample fans out across the engine's
/// worker pool — and with `config.pipeline` it fuses into the next
/// batch's fetch workers (each shard walks its sites' oracles before
/// its fetches), overlapping the measure with the fetch wall-clock.
/// Cycle seeding (StartCycle) is likewise sharded: per-shard
/// collect/sort/seen-filter in parallel, then a canonical merge that
/// reproduces the single globally sorted append.
/// Fetches that fail (dead URLs) refund their slots at the batch
/// boundary — the serial crawler's "try the next URL immediately" — so
/// a cycle still stores exactly `collection_capacity` pages whenever
/// frontier and window allow.
///
/// The BFS order is deterministic, so each page is revisited at the
/// same offset in every cycle — matching the assumptions behind the
/// analytic curves of Figures 7 and 8.
class PeriodicCrawler {
 public:
  PeriodicCrawler(simweb::SimulatedWeb* web,
                  const PeriodicCrawlerConfig& config);

  /// Starts the first cycle at time `t`.
  Status Bootstrap(double t);

  /// Advances the simulation to `until`.
  Status RunUntil(double until);

  double now() const { return now_; }

  /// The collection users query (the current collection under
  /// shadowing; the single collection otherwise).
  const Collection& current_collection() const;

  /// Module 0 — the only module at crawl_parallelism == 1; per-shard
  /// accounting for wider pools lives on crawl_pool().
  const CrawlModule& crawl_module() const { return engine_.pool().module(0); }
  const CrawlModulePool& crawl_pool() const { return engine_.pool(); }
  const ShardedCrawlEngine& engine() const { return engine_; }
  const freshness::FreshnessTracker& tracker() const { return tracker_; }
  int64_t cycles_completed() const { return cycles_completed_; }

  /// Oracle freshness of the user-visible collection right now.
  CollectionQuality MeasureNow();

  struct Stats {
    uint64_t crawls = 0;
    uint64_t pages_stored = 0;
    uint64_t dead_fetches = 0;
    /// Fetches skipped for this cycle by an enforced per-site delay;
    /// unlike dead fetches they never purge an in-place entry.
    uint64_t politeness_rejections = 0;
    uint64_t swaps = 0;
    /// Failure ledger: classified fetch failures by kind, the bounded
    /// re-queues they triggered, and the URLs the cycle gave up on
    /// (requeue limit reached — dropped for the cycle, not purged).
    uint64_t fetch_failures = 0;
    uint64_t transient_errors = 0;
    uint64_t timeout_errors = 0;
    uint64_t failure_retries = 0;
    uint64_t failures_dropped = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Completed engine batches — the auto-checkpoint cadence counter,
  /// persisted by SaveCrawler.
  uint64_t batches_completed() const { return batches_completed_; }

  /// URLs queued in the BFS frontier for the current cycle.
  std::size_t frontier_depth() const { return frontier_.size(); }

  /// The serving layer's view registry (the engine's); see the
  /// incremental crawler. Enable publishing with
  /// config.publish_view_every_batches.
  serving::ViewRegistry& views() { return engine_.views(); }
  const serving::ViewRegistry& views() const { return engine_.views(); }

  /// Builds and publishes a BatchView of the current state; engine
  /// must be quiescent.
  void PublishViewNow();

  /// Checkpoint/restore of the whole crawler — collections, BFS
  /// frontier and seen-set, crawl clock, cycle state, politeness —
  /// bundled into one container file (snapshot.cc).
  friend Status SaveCrawler(const PeriodicCrawler& crawler,
                            std::ostream& out,
                            const CrawlerCheckpointOptions& options);
  friend Status LoadCrawler(std::istream& in, PeriodicCrawler* crawler);

 private:
  /// Prepares the BFS frontier for a new cycle starting at `t`.
  void StartCycle(double t);

  /// Finishes the active cycle (swap under shadowing).
  void FinishCycle();

  /// Applies one fetch outcome at now_: store / purge, then expand the
  /// frontier with the links the lease-admission pass marked fresh
  /// (null means the batch discovered no links at all).
  void ApplyOutcome(const simweb::Url& url,
                    StatusOr<simweb::FetchResult> result,
                    const std::vector<uint8_t>* fresh_links);

  Collection& target_collection();

  /// Total size of the sharded seen-set.
  std::size_t SeenCount() const;

  /// Marks `url` seen this cycle; true if it was new.
  bool SeenInsert(const simweb::Url& url);

  simweb::SimulatedWeb* web_;  // not owned
  PeriodicCrawlerConfig config_;
  ShadowedCollection store_;
  Collection inplace_;  // used when shadowing is off
  ShardedCrawlEngine engine_;
  freshness::FreshnessTracker tracker_;
  Stats stats_;

  double now_ = 0.0;
  bool bootstrapped_ = false;
  double cycle_start_ = 0.0;
  bool cycle_active_ = false;
  int64_t cycles_completed_ = 0;
  uint64_t stored_this_cycle_ = 0;
  double next_sample_ = 0.0;
  uint64_t batches_completed_ = 0;
  std::deque<simweb::Url> frontier_;
  /// URLs seen this cycle, sharded by target site (site % N) so the
  /// apply phase's link dedup can run one worker per shard.
  std::vector<std::unordered_set<simweb::Url, simweb::UrlHash>>
      seen_shards_;
  /// Per-cycle failure re-queue counts (cleared by StartCycle);
  /// persisted in the checkpoint's "failure" section so a mid-cycle
  /// resume replays the same bounded retries.
  std::unordered_map<simweb::Url, uint32_t, simweb::UrlHash>
      requeue_counts_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_PERIODIC_CRAWLER_H_
