#include "crawler/coll_urls.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace webevo::crawler {

void CollUrls::ScheduleAt(const simweb::Url& url, double when,
                          uint64_t seq) {
  live_[url] = LiveRef{seq, when};  // supersedes any previous entry
  heap_.push(Entry{when, seq, url});
}

void CollUrls::ScheduleFront(const simweb::Url& url) {
  // Front keys live far below any simulation time and *increase* per
  // insert, so successive front-inserts pop in FIFO order while still
  // preceding everything scheduled normally.
  front_when_ += 1e-6;
  Schedule(url, kFrontBase + front_when_);
}

Status CollUrls::Remove(const simweb::Url& url) {
  if (live_.erase(url) == 0) return Status::NotFound("url not queued");
  return Status::Ok();  // heap entry expires lazily
}

Status CollUrls::RemoveIfSeq(const simweb::Url& url, uint64_t seq) {
  auto it = live_.find(url);
  if (it == live_.end() || it->second.seq != seq) {
    return Status::NotFound("url not queued at that seq");
  }
  live_.erase(it);
  return Status::Ok();  // heap entry expires lazily
}

std::size_t CollUrls::RescheduleSiteNotBefore(uint32_t site,
                                              double floor) {
  std::vector<std::pair<simweb::Url, uint64_t>> moved;
  for (const auto& [url, ref] : live_) {
    if (url.site == site && ref.when < floor) {
      moved.emplace_back(url, ref.seq);
    }
  }
  for (const auto& [url, seq] : moved) ScheduleAt(url, floor, seq);
  return moved.size();
}

void CollUrls::SkipStale() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto it = live_.find(top.url);
    if (it != live_.end() && it->second.seq == top.seq &&
        it->second.when == top.when) {
      return;
    }
    heap_.pop();
  }
}

std::optional<CollUrls::Entry> CollUrls::PopEntry() {
  SkipStale();
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.top();
  heap_.pop();
  live_.erase(top.url);
  return top;
}

std::optional<CollUrls::Entry> CollUrls::PeekEntry() {
  SkipStale();
  if (heap_.empty()) return std::nullopt;
  return heap_.top();
}

std::optional<ScheduledUrl> CollUrls::Pop() {
  auto entry = PopEntry();
  if (!entry.has_value()) return std::nullopt;
  return ScheduledUrl{entry->url, entry->when};
}

std::optional<ScheduledUrl> CollUrls::Peek() {
  auto entry = PeekEntry();
  if (!entry.has_value()) return std::nullopt;
  return ScheduledUrl{entry->url, entry->when};
}

}  // namespace webevo::crawler
