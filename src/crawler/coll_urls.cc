#include "crawler/coll_urls.h"

#include <algorithm>

namespace webevo::crawler {

void CollUrls::ScheduleAt(const simweb::Url& url, double when,
                          uint64_t seq) {
  live_[url] = seq;  // supersedes any previous entry for this url
  heap_.push(Entry{when, seq, url});
}

void CollUrls::ScheduleFront(const simweb::Url& url) {
  // Front keys live far below any simulation time and *increase* per
  // insert, so successive front-inserts pop in FIFO order while still
  // preceding everything scheduled normally.
  front_when_ += 1e-6;
  Schedule(url, kFrontBase + front_when_);
}

Status CollUrls::Remove(const simweb::Url& url) {
  if (live_.erase(url) == 0) return Status::NotFound("url not queued");
  return Status::Ok();  // heap entry expires lazily
}

Status CollUrls::RemoveIfSeq(const simweb::Url& url, uint64_t seq) {
  auto it = live_.find(url);
  if (it == live_.end() || it->second != seq) {
    return Status::NotFound("url not queued at that seq");
  }
  live_.erase(it);
  return Status::Ok();  // heap entry expires lazily
}

void CollUrls::SkipStale() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto it = live_.find(top.url);
    if (it != live_.end() && it->second == top.seq) return;
    heap_.pop();
  }
}

std::optional<CollUrls::Entry> CollUrls::PopEntry() {
  SkipStale();
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.top();
  heap_.pop();
  live_.erase(top.url);
  return top;
}

std::optional<CollUrls::Entry> CollUrls::PeekEntry() {
  SkipStale();
  if (heap_.empty()) return std::nullopt;
  return heap_.top();
}

std::optional<ScheduledUrl> CollUrls::Pop() {
  auto entry = PopEntry();
  if (!entry.has_value()) return std::nullopt;
  return ScheduledUrl{entry->url, entry->when};
}

std::optional<ScheduledUrl> CollUrls::Peek() {
  auto entry = PeekEntry();
  if (!entry.has_value()) return std::nullopt;
  return ScheduledUrl{entry->url, entry->when};
}

}  // namespace webevo::crawler
