#ifndef WEBEVO_CRAWLER_EVAL_H_
#define WEBEVO_CRAWLER_EVAL_H_

#include <cstddef>

#include "crawler/collection.h"
#include "crawler/sharded_collection.h"
#include "simweb/simulated_web.h"
#include "util/thread_pool.h"

namespace webevo::crawler {

/// Oracle-measured quality of a collection at one instant.
struct CollectionQuality {
  /// Fraction of entries that are up-to-date (page alive and unchanged
  /// since the stored version) — the paper's freshness metric. 0 for an
  /// empty collection.
  double freshness = 0.0;
  /// Mean age of the *stale* entries' staleness in days, measured from
  /// each page's most recent change (a lower bound on the [CGM99b] age,
  /// which counts from the first unseen change). 0 if nothing is stale.
  double mean_stale_age_days = 0.0;
  std::size_t size = 0;
  std::size_t fresh = 0;
  std::size_t dead = 0;  ///< entries whose page no longer exists
};

/// Measures `collection` against ground truth at time `t`. Uses the
/// oracle API only — no crawl traffic is generated.
///
/// Accumulation is *canonical*: entries are grouped by site, ordered by
/// (slot, incarnation) within each site, and per-site partial sums are
/// reduced in ascending site order. The canonical order makes the
/// floating-point sums independent of hash-map iteration order and of
/// how the work is split, so the serial and sharded measurements below
/// are bit-identical to each other at every shard count.
CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const Collection& collection, double t);
CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const ShardedCollection& collection,
                                    double t);

/// MeasureCollection with the per-site oracle walks fanned out over
/// `threads`, sites partitioned site % num_shards (the engine's shard
/// ownership, so each site's lazy page evolution is advanced by exactly
/// one worker). Integer counts and the canonical reduction order make
/// the result bit-identical to the serial MeasureCollection.
CollectionQuality MeasureCollectionSharded(simweb::SimulatedWeb& web,
                                           const Collection& collection,
                                           double t, ThreadPool& threads,
                                           int num_shards);
CollectionQuality MeasureCollectionSharded(
    simweb::SimulatedWeb& web, const ShardedCollection& collection,
    double t, ThreadPool& threads, int num_shards);

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_EVAL_H_
