#ifndef WEBEVO_CRAWLER_EVAL_H_
#define WEBEVO_CRAWLER_EVAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crawler/collection.h"
#include "crawler/sharded_collection.h"
#include "simweb/simulated_web.h"
#include "util/thread_pool.h"

namespace webevo::crawler {

/// Oracle-measured quality of a collection at one instant.
struct CollectionQuality {
  /// Fraction of entries that are up-to-date (page alive and unchanged
  /// since the stored version) — the paper's freshness metric. 0 for an
  /// empty collection.
  double freshness = 0.0;
  /// Mean age of the *stale* entries' staleness in days, measured from
  /// each page's most recent change (a lower bound on the [CGM99b] age,
  /// which counts from the first unseen change). 0 if nothing is stale.
  double mean_stale_age_days = 0.0;
  std::size_t size = 0;
  std::size_t fresh = 0;
  std::size_t dead = 0;  ///< entries whose page no longer exists
};

/// Measures `collection` against ground truth at time `t`. Uses the
/// oracle API only — no crawl traffic is generated.
///
/// Accumulation is *canonical*: entries are grouped by site, ordered by
/// (slot, incarnation) within each site, and per-site partial sums are
/// reduced in ascending site order. The canonical order makes the
/// floating-point sums independent of hash-map iteration order and of
/// how the work is split, so the serial and sharded measurements below
/// are bit-identical to each other at every shard count.
CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const Collection& collection, double t);
CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const ShardedCollection& collection,
                                    double t);

/// MeasureCollection with the per-site oracle walks fanned out over
/// `threads`, sites partitioned site % num_shards (the engine's shard
/// ownership, so each site's lazy page evolution is advanced by exactly
/// one worker). Integer counts and the canonical reduction order make
/// the result bit-identical to the serial MeasureCollection.
CollectionQuality MeasureCollectionSharded(simweb::SimulatedWeb& web,
                                           const Collection& collection,
                                           double t, ThreadPool& threads,
                                           int num_shards);
CollectionQuality MeasureCollectionSharded(
    simweb::SimulatedWeb& web, const ShardedCollection& collection,
    double t, ThreadPool& threads, int num_shards);

/// The measurement above split into pipeline stages, so the pipelined
/// crawl loop can fuse the per-shard oracle walks into the engine's
/// fetch workers (batch B-1's freshness evaluation riding batch B's
/// pool dispatch) instead of paying a separate parallel pass:
///
///   1. Prepare (serial): bucket entry pointers by site. Entry
///      pointers must stay stable until Finish — i.e. the collection
///      must not be mutated, which holds between a batch's plan and
///      its apply barrier.
///   2. RunShard(s) (one call per shard, concurrently from the worker
///      that owns shard s): oracle-walks sites ≡ s (mod num_shards).
///      Because a site's measure runs *before* that same worker's
///      fetches, every page's observation times stay non-decreasing
///      and partitioned exactly as in the unfused serial order.
///   3. Finish (serial): canonical ascending-site reduction.
///
/// The three stages compute bit-identically to MeasureCollectionSharded
/// — they *are* its implementation.
class StagedMeasure {
 public:
  /// Per-site accumulator; doubles are summed in (slot, incarnation)
  /// order within the site, so a site's partial is a pure function of
  /// its entries regardless of threading.
  struct SitePartial {
    std::size_t fresh = 0;
    std::size_t dead = 0;
    std::size_t stale_with_age = 0;
    double stale_age_sum = 0.0;
  };

  void Prepare(simweb::SimulatedWeb& web, const Collection& collection,
               double t, int num_shards);
  void Prepare(simweb::SimulatedWeb& web,
               const ShardedCollection& collection, double t,
               int num_shards);

  /// Walks shard `shard`'s sites. Touches only partials_[site] slots of
  /// its own sites and per-page web state of its own sites, so distinct
  /// shards may run concurrently.
  void RunShard(std::size_t shard);

  /// Runs every not-yet-run shard serially, reduces, and resets to the
  /// unprepared state.
  CollectionQuality Finish();

  bool prepared() const { return prepared_; }
  int num_shards() const { return static_cast<int>(shards_); }

 private:
  template <typename CollectionT>
  void PrepareImpl(simweb::SimulatedWeb& web, const CollectionT& collection,
                   double t, int num_shards);

  simweb::SimulatedWeb* web_ = nullptr;
  double t_ = 0.0;
  std::size_t shards_ = 1;
  std::size_t size_ = 0;
  std::size_t foreign_ = 0;  // entries from outside this web: never fresh
  bool prepared_ = false;
  std::vector<std::vector<const CollectionEntry*>> by_site_;
  std::vector<SitePartial> partials_;
  std::vector<uint8_t> shard_done_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_EVAL_H_
