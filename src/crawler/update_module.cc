#include "crawler/update_module.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "estimator/last_modified_estimator.h"
#include "freshness/revisit_optimizer.h"

namespace webevo::crawler {
namespace {

// Estimates from fewer than this many observations lean on the prior.
constexpr int64_t kMinObservations = 2;

// Derives a site's probe-stream seed from the module seed. The odd
// multiplier (SplitMix64's increment) decorrelates neighbouring sites;
// Rng's own SplitMix64 seeding does the heavy scrambling.
uint64_t ProbeSeed(uint64_t seed, uint32_t site) {
  return seed ^ (0x9e3779b97f4a7c15ULL *
                 (static_cast<uint64_t>(site) + 1));
}

}  // namespace

const char* RevisitPolicyName(RevisitPolicy policy) {
  switch (policy) {
    case RevisitPolicy::kUniform:
      return "uniform";
    case RevisitPolicy::kProportional:
      return "proportional";
    case RevisitPolicy::kOptimal:
      return "optimal";
  }
  return "?";
}

UpdateModule::UpdateModule(const UpdateModuleConfig& config)
    : config_(config) {
  const auto shards =
      static_cast<std::size_t>(std::max(1, config.num_shards));
  page_shards_.resize(shards);
  site_shards_.resize(shards);
  rng_shards_.resize(shards);
  visit_counts_.assign(shards, 0);
  failure_counts_.assign(shards, 0);
}

estimator::ChangeEstimator* UpdateModule::EstimatorFor(
    const simweb::Url& url, PageState& state) {
  if (!config_.site_level_stats) {
    if (!state.estimator) {
      state.estimator = estimator::MakeEstimator(config_.estimator_kind);
    }
    return state.estimator.get();
  }
  auto& slot = site_shards_[ShardOf(url.site)][url.site];
  if (!slot) slot = estimator::MakeEstimator(config_.estimator_kind);
  return slot.get();
}

const estimator::ChangeEstimator* UpdateModule::EstimatorFor(
    const simweb::Url& url, const PageState& state) const {
  if (!config_.site_level_stats) return state.estimator.get();
  const SiteMap& sites = site_shards_[ShardOf(url.site)];
  auto it = sites.find(url.site);
  return it == sites.end() ? nullptr : it->second.get();
}

Rng& UpdateModule::ProbeRng(uint32_t site) {
  auto& shard = rng_shards_[ShardOf(site)];
  auto it = shard.find(site);
  if (it == shard.end()) {
    it = shard.emplace(site, Rng(ProbeSeed(config_.seed, site))).first;
  }
  return it->second;
}

double UpdateModule::SchedulingRate(
    const estimator::ChangeEstimator* est) const {
  if (est == nullptr || est->observation_count() < kMinObservations) {
    return 1.0 / config_.default_interval_days;
  }
  return est->EstimatedRate();
}

double UpdateModule::FrequencyFor(double rate, double importance) const {
  // The budget-spreading fallbacks divide by the page count *frozen* at
  // the last serial refresh, never the live count: the live count moves
  // under concurrent first visits, the frozen one is the same pure
  // function of history at every shard count. Before the first refresh
  // (frozen count 0) there is no population information at all; the
  // scheduling prior stands in — granting the full budget to every
  // page of the first batch would flood the next batch with immediate
  // revisits.
  const double spread =
      frozen_page_count_ > 0
          ? config_.crawl_budget_pages_per_day /
                static_cast<double>(frozen_page_count_)
          : 1.0 / config_.default_interval_days;
  double f = 0.0;
  switch (config_.policy) {
    case RevisitPolicy::kUniform: {
      f = spread;
      break;
    }
    case RevisitPolicy::kProportional: {
      if (total_rate_ > 0.0) {
        f = config_.crawl_budget_pages_per_day *
            config_.budget_utilization * rate / total_rate_;
      } else {
        // Nothing rebalanced yet (or no changes seen): spread evenly.
        f = spread;
      }
      break;
    }
    case RevisitPolicy::kOptimal: {
      if (multiplier_ > 0.0) {
        f = freshness::RevisitOptimizer::FrequencyAtMultiplier(
            rate, multiplier_);
      } else {
        f = spread;
      }
      break;
    }
  }
  if (config_.importance_exponent > 0.0 && mean_importance_ > 0.0 &&
      importance > 0.0) {
    f *= std::pow(importance / mean_importance_,
                  config_.importance_exponent);
  }
  return f;
}

double UpdateModule::OnCrawled(const simweb::Url& url, double now,
                               bool changed, bool first_visit,
                               double quiet_days) {
  const std::size_t shard = ShardOf(url.site);
  ++visit_counts_[shard];
  if (dirty_tracking_) {
    dirty_page_shards_[shard].insert(url);
    // With site-level stats the visit record lands in the site
    // aggregate (created on first touch), so the site record moves
    // whenever the page record does.
    if (config_.site_level_stats) dirty_site_shards_[shard].insert(url.site);
  }
  PageState& state = page_shards_[shard][url];
  estimator::ChangeEstimator* est = EstimatorFor(url, state);
  if (!first_visit && state.visited && now > state.last_visit) {
    double interval = now - state.last_visit;
    auto* el = dynamic_cast<estimator::LastModifiedEstimator*>(est);
    if (el != nullptr && quiet_days >= 0.0) {
      el->RecordObservationWithTimestamp(interval, changed, quiet_days);
    } else {
      est->RecordObservation(interval, changed);
    }
  }
  state.last_visit = now;
  state.visited = true;

  double rate = SchedulingRate(est);
  double f = FrequencyFor(rate, state.importance);
  double interval =
      f > 0.0 ? 1.0 / f : config_.max_revisit_interval_days;
  interval = std::clamp(interval, config_.min_revisit_interval_days,
                        config_.max_revisit_interval_days);
  // Exploration, for every policy except the strictly fixed-frequency
  // uniform baseline. Guards against estimation lock-in: a page
  // misjudged as hopelessly fast is deferred to the maximum interval,
  // where every visit observes a change and could otherwise never clear
  // its name — the adaptive-recrawl analogue of Figure 1(a).
  //
  //  1. Abandonment verification (deterministic, stateful): whenever
  //     the policy abandons a page (f = 0), the *next* visit is an
  //     immediate probe well inside its estimated change interval.
  //     If the probe observes a change, the abandonment is confirmed
  //     and the page defers for a full max interval (a truly hopeless
  //     page thus alternates one cheap probe with one long deferral);
  //     if it observes no change, the estimate has already dropped and
  //     the verification repeats — a misjudged page climbs back within
  //     a few probes instead of being stuck forever.
  //  2. Random probes for scheduled pages, with probability growing in
  //     the scheduled interval (deferred pages get proportionally more
  //     scrutiny). The coin flips come from the site's own stream, so
  //     they depend only on the site's visit sequence.
  //
  // Probes only shorten the schedule, never delay it.
  if (config_.policy != RevisitPolicy::kUniform && !first_visit &&
      rate > 0.0) {
    double probe =
        std::max(0.25 / rate, config_.min_revisit_interval_days);
    if (f <= 0.0) {
      bool confirmed = state.probing_abandonment && changed;
      if (!confirmed) {
        interval = std::min(interval, probe);
        state.probing_abandonment = true;
      } else {
        // Confirmed hopeless: give it the longest leash the module
        // ever grants — twice the normal cap — so the probe+defer pair
        // stays a negligible share of the crawl budget.
        interval = 2.0 * config_.max_revisit_interval_days;
        state.probing_abandonment = false;
      }
    } else {
      state.probing_abandonment = false;
      // The coin flip advances the site's probe stream whichever way
      // it lands — the stream position is checkpointed state.
      if (dirty_tracking_) {
        dirty_rng_shards_[ShardOf(url.site)].insert(url.site);
      }
      if (ProbeRng(url.site).Bernoulli(config_.probe_probability)) {
        interval = std::min(interval, probe);
      }
    }
  }
  return now + interval;
}

void UpdateModule::OnFetchFailed(const simweb::Url& url, double now) {
  // Accounting only. No estimator record (an unreachable page carries
  // no change evidence), no last_visit update (the next success's
  // observation interval legitimately spans the outage), no state
  // creation for pages the module has never seen.
  (void)now;
  ++failure_counts_[ShardOf(url.site)];
}

uint64_t UpdateModule::visits_recorded() const {
  uint64_t total = 0;
  for (uint64_t n : visit_counts_) total += n;
  return total;
}

uint64_t UpdateModule::failures_recorded() const {
  uint64_t total = 0;
  for (uint64_t n : failure_counts_) total += n;
  return total;
}

void UpdateModule::SetImportance(const simweb::Url& url,
                                 double importance) {
  PageMap& pages = page_shards_[ShardOf(url.site)];
  auto it = pages.find(url);
  if (it == pages.end()) return;
  if (it->second.importance == importance) return;
  // Change-detected mark: refinement sweeps *every* entry's hint, and
  // an unchanged value must not drag the whole collection into the
  // next delta segment.
  if (dirty_tracking_) dirty_page_shards_[ShardOf(url.site)].insert(url);
  it->second.importance = importance;
}

void UpdateModule::Forget(const simweb::Url& url) {
  const std::size_t shard = ShardOf(url.site);
  if (page_shards_[shard].erase(url) > 0 && dirty_tracking_) {
    dirty_page_shards_[shard].insert(url);
  }
}

void UpdateModule::CarryEstimator(const simweb::Url& from,
                                  const simweb::Url& to) {
  const std::size_t from_shard = ShardOf(from.site);
  PageMap& from_pages = page_shards_[from_shard];
  auto it = from_pages.find(from);
  if (it == from_pages.end()) return;
  const std::size_t to_shard = ShardOf(to.site);
  if (dirty_tracking_) {
    dirty_page_shards_[from_shard].insert(from);
    dirty_page_shards_[to_shard].insert(to);
  }
  PageState carried = std::move(it->second);
  from_pages.erase(it);
  page_shards_[to_shard][to] = std::move(carried);
}

double UpdateModule::EstimatedRate(const simweb::Url& url) const {
  const PageMap& pages = page_shards_[ShardOf(url.site)];
  auto it = pages.find(url);
  if (it == pages.end()) return 0.0;
  const estimator::ChangeEstimator* est = EstimatorFor(url, it->second);
  return est == nullptr ? 0.0 : est->EstimatedRate();
}

std::size_t UpdateModule::tracked_pages() const {
  std::size_t total = 0;
  for (const PageMap& shard : page_shards_) total += shard.size();
  return total;
}

void UpdateModule::RefreshSchedulingPageCount() {
  frozen_page_count_ = tracked_pages();
}

void UpdateModule::EnableDirtyTracking() {
  dirty_tracking_ = true;
  dirty_page_shards_.resize(page_shards_.size());
  dirty_site_shards_.resize(site_shards_.size());
  dirty_rng_shards_.resize(rng_shards_.size());
}

void UpdateModule::AppendDirty(
    std::set<simweb::Url, simweb::UrlIdentityLess>* pages,
    std::set<uint32_t>* sites, std::set<uint32_t>* rngs) const {
  for (const auto& shard : dirty_page_shards_) {
    pages->insert(shard.begin(), shard.end());
  }
  for (const auto& shard : dirty_site_shards_) {
    sites->insert(shard.begin(), shard.end());
  }
  for (const auto& shard : dirty_rng_shards_) {
    rngs->insert(shard.begin(), shard.end());
  }
}

void UpdateModule::ClearDirty() {
  for (auto& shard : dirty_page_shards_) shard.clear();
  for (auto& shard : dirty_site_shards_) shard.clear();
  for (auto& shard : dirty_rng_shards_) shard.clear();
}

std::vector<std::pair<simweb::Url, const UpdateModule::PageState*>>
UpdateModule::SortedPages() const {
  std::vector<std::pair<simweb::Url, const PageState*>> pages;
  pages.reserve(tracked_pages());
  for (const PageMap& shard : page_shards_) {
    for (const auto& [url, state] : shard) {
      pages.emplace_back(url, &state);
    }
  }
  std::sort(pages.begin(), pages.end(), [](const auto& a, const auto& b) {
    return simweb::UrlIdentityLess{}(a.first, b.first);
  });
  return pages;
}

void UpdateModule::Rebalance() {
  ++rebalance_count_;
  RefreshSchedulingPageCount();
  total_rate_ = 0.0;
  double importance_sum = 0.0;
  // Canonical URL-identity walk: the floating-point accumulations below
  // sum in the same order at every shard count. Bucket pages by
  // scheduling rate on a log grid so the optimiser sees a bounded
  // number of groups regardless of collection size.
  std::map<int, freshness::RateGroup> buckets;
  const auto pages = SortedPages();
  for (const auto& [url, state] : pages) {
    const estimator::ChangeEstimator* est = EstimatorFor(url, *state);
    double rate = SchedulingRate(est);
    total_rate_ += rate;
    importance_sum += state->importance;
    int key = rate > 0.0
                  ? static_cast<int>(std::lround(8.0 * std::log2(rate)))
                  : std::numeric_limits<int>::min();
    auto [it, inserted] = buckets.try_emplace(key);
    if (inserted) it->second.rate = rate;
    it->second.weight += 1.0;
  }
  mean_importance_ =
      pages.empty() ? 0.0
                    : importance_sum / static_cast<double>(pages.size());

  if (config_.policy != RevisitPolicy::kOptimal || buckets.empty()) {
    return;
  }
  std::vector<freshness::RateGroup> groups;
  groups.reserve(buckets.size());
  bool any_positive = false;
  for (const auto& [key, group] : buckets) {
    groups.push_back(group);
    any_positive |= group.rate > 0.0;
  }
  if (!any_positive) {
    multiplier_ = 0.0;  // fall back to uniform spreading
    return;
  }
  auto alloc = freshness::RevisitOptimizer::Optimize(
      groups,
      config_.crawl_budget_pages_per_day * config_.budget_utilization);
  if (alloc.ok()) multiplier_ = alloc->multiplier;
}

}  // namespace webevo::crawler
