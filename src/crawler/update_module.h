#ifndef WEBEVO_CRAWLER_UPDATE_MODULE_H_
#define WEBEVO_CRAWLER_UPDATE_MODULE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "estimator/change_estimator.h"
#include "simweb/url.h"
#include "util/random.h"
#include "util/status.h"

namespace webevo::crawler {

/// How revisit frequency is assigned to pages (Section 4, choice 3).
enum class RevisitPolicy {
  /// Every page at the same frequency (the fixed-frequency policy
  /// natural for batch crawlers).
  kUniform,
  /// Frequency proportional to estimated change rate — the intuitive
  /// policy the paper's p1/p2 example shows can *lose* to uniform.
  kProportional,
  /// Freshness-optimal allocation from [CGM99b] (the Figure 9 curve):
  /// rises with change rate, then falls.
  kOptimal,
};

const char* RevisitPolicyName(RevisitPolicy policy);

/// Configuration of the UpdateModule.
struct UpdateModuleConfig {
  /// EB (Bayesian frequency classes) is the default because scheduling
  /// needs *shrinkage*: a frequentist estimator reports rate 0 for any
  /// page it has never seen change, and the optimal policy would then
  /// abandon pages whose changes simply haven't been caught yet. EB's
  /// posterior mean decays smoothly toward the slow classes instead.
  /// The ratio estimator remains the best choice when only accuracy on
  /// observed-change pages matters.
  estimator::EstimatorKind estimator_kind =
      estimator::EstimatorKind::kBayesian;
  RevisitPolicy policy = RevisitPolicy::kOptimal;

  /// Keep change statistics per site instead of per page — the paper's
  /// Section 5.3 alternative: tighter estimates when a site's pages
  /// change at similar rates, biased when they do not.
  bool site_level_stats = false;

  /// Total crawl budget in page visits per day; the crawler owner sets
  /// this to its steady crawl speed.
  double crawl_budget_pages_per_day = 100.0;

  /// Fraction of the budget the optimal/proportional allocations may
  /// plan for. Crucial headroom: scheduling overheads the allocation
  /// cannot see (probes, the max-interval clamp on abandoned pages,
  /// newly admitted pages) would otherwise push demand permanently
  /// above the crawl speed — and a saturated queue degenerates into
  /// round-robin, erasing the policy entirely.
  double budget_utilization = 0.8;

  /// Revisit intervals are clamped to this range. The lower bound
  /// prevents a hot page from monopolising the crawler; the upper bound
  /// guarantees that pages the optimal policy would abandon (f = 0) are
  /// still re-checked occasionally so their rate estimates can recover.
  double min_revisit_interval_days = 0.25;
  double max_revisit_interval_days = 60.0;

  /// Interval prior used before a page has enough visit history.
  double default_interval_days = 7.0;

  /// If > 0, multiply a page's revisit frequency by
  /// (importance / mean importance)^importance_exponent — the paper's
  /// note that a "highly important" page may deserve more frequent
  /// visits than its change rate alone suggests.
  double importance_exponent = 0.0;

  /// Probability of turning a reschedule into a *probe*: an early
  /// revisit at ~1/4 of the page's estimated change interval. A visit
  /// that is all but certain to observe a change carries no rate
  /// information (Figure 1(a)), so pages over-estimated as fast would
  /// otherwise be abandoned forever — every sparse revisit confirms
  /// "changed", a self-fulfilling misclassification. Probes are the
  /// cheap exploration that lets such pages be rescued.
  double probe_probability = 0.1;

  /// Seed for the probe coin flips. Each site draws from its own
  /// stream derived from (seed, site), so scheduling is deterministic
  /// at every shard count: a site's draws depend only on its own visit
  /// sequence, never on how other sites' visits interleave.
  uint64_t seed = 0x9e3779b9;

  /// Number of internal state shards, sites owned by shard `site % N`.
  /// Must match the crawl engine's shard count when OnCrawled/Forget
  /// are called concurrently from the engine's apply pass (so two
  /// workers can never touch one shard map); the module's decisions
  /// are identical at every value.
  int num_shards = 1;
};

/// The `UpdateModule` of Figure 12: decides *when to revisit* each
/// collection page (the update decision). It records checksum-change
/// outcomes into a per-page (or per-site) ChangeEstimator and maps the
/// estimated rate to a next-visit time through the configured policy.
///
/// The heavy lifting of the optimal policy — solving the budget-
/// constrained allocation — happens in Rebalance(), which the owning
/// crawler calls periodically (mirroring the paper's separation of the
/// fast update path from expensive global computation); between calls
/// every scheduling decision is O(1) via the stored Lagrange
/// multiplier.
///
/// Concurrency contract: OnCrawled / Forget / EstimatedRate /
/// SetImportance touch only the shard owning `url.site` plus
/// *frozen* global scheduling quantities (the Lagrange multiplier,
/// the proportional normaliser, the mean importance, and the page
/// count snapshot), so the engine's apply pass may call them in
/// parallel for sites of different shards. The frozen quantities are
/// recomputed only on the serial path — Rebalance() and
/// RefreshSchedulingPageCount() at batch barriers — in canonical
/// (site, slot, incarnation) order, which makes every decision a pure
/// function of the visit history regardless of shard count.
class UpdateModule {
 public:
  explicit UpdateModule(const UpdateModuleConfig& config);

  /// Records the outcome of crawling `url` at `now` and returns the
  /// next time it should be visited. `changed` is whether the checksum
  /// differed from the stored copy; `first_visit` marks pages just
  /// added to the collection (no change information yet).
  /// `quiet_days`, when >= 0, is the server-reported time since the
  /// page last changed (Last-Modified); estimators that can exploit it
  /// (EL) do, others ignore it.
  double OnCrawled(const simweb::Url& url, double now, bool changed,
                   bool first_visit, double quiet_days = -1.0);

  /// Records that a fetch of `url` at `now` *failed* (transient error
  /// or timeout). Pure accounting: an unreachable page is not an
  /// unchanged page, so this must never feed the change estimators —
  /// and it leaves `last_visit` alone, because the page may well have
  /// changed during the outage and the next successful visit's
  /// observation interval legitimately spans it.
  void OnFetchFailed(const simweb::Url& url, double now);

  /// Successful visits OnCrawled has processed (in-memory diagnostic,
  /// not checkpointed): the estimator-evidence ledger the fault benches
  /// gate on — failed fetches must contribute to failures_recorded()
  /// and never to visits_recorded().
  uint64_t visits_recorded() const;
  uint64_t failures_recorded() const;

  /// Sets the importance hint used by importance-aware scheduling.
  void SetImportance(const simweb::Url& url, double importance);

  /// Drops all state for a page discarded from the collection. With
  /// site-level statistics the site aggregate is retained.
  void Forget(const simweb::Url& url);

  /// Migration-following: moves `from`'s learned page state (estimator
  /// statistics, visit history, importance) onto `to`, so content
  /// re-homed under a new URL keeps its change-rate knowledge instead
  /// of relearning it from scratch. Overwrites whatever state `to` had;
  /// no-op when `from` is untracked. With site-level statistics the
  /// source site's aggregate stays put (the new site accumulates its
  /// own). Serial-path only — the crawler's settle — like every
  /// cross-shard mutation.
  void CarryEstimator(const simweb::Url& from, const simweb::Url& to);

  /// Estimated change rate for a page (0 if unknown).
  double EstimatedRate(const simweb::Url& url) const;

  /// Recomputes the global quantities behind the per-page decision:
  /// the optimal policy's Lagrange multiplier, the proportional
  /// policy's normaliser, and the mean importance. Call on the order of
  /// once per simulated day.
  void Rebalance();

  /// Re-freezes the tracked-page count used by the budget-spreading
  /// fallbacks (uniform policy, pre-rebalance optimal/proportional).
  /// Crawlers call this at each serial plan step — after housekeeping,
  /// before the batch executes — so the count advances once per batch
  /// on the serial path (never per page, which is what keeps OnCrawled
  /// shard-parallel *and* bit-deterministic) and reflects any pages
  /// refinement or rebalance just forgot or admitted, instead of a
  /// value frozen at the previous batch's barrier.
  void RefreshSchedulingPageCount();

  std::size_t tracked_pages() const;
  const UpdateModuleConfig& config() const { return config_; }

  /// Snapshot/restore of the module's *learned* state — estimator
  /// statistics, per-page visit history, rebalance outputs, and the
  /// per-site probe RNG streams — implemented in crawler/snapshot.cc.
  /// Persisting this is what lets a restarted incremental crawler keep
  /// its change-rate knowledge instead of relearning it from scratch.
  friend Status SaveUpdateModule(const UpdateModule& module,
                                 std::ostream& out);
  friend Status LoadUpdateModule(std::istream& in, UpdateModule* module);

  /// Incremental-checkpoint delta of the learned state: the records of
  /// the dirty pages / site aggregates / probe streams only, plus the
  /// (cheap) scheduling globals — also in crawler/snapshot.cc.
  friend Status SaveUpdateModuleDelta(const UpdateModule& module,
                                      std::ostream& out);
  friend Status ApplyUpdateModuleDelta(std::istream& in,
                                       UpdateModule* module);

  /// Dirty-key tracking for incremental checkpoints. Marks are
  /// per-shard (the apply pass's workers each touch only their own
  /// shard's sets, like every other per-shard structure) and recorded
  /// only for *logical* mutations — SetImportance marks only on a
  /// value change, failed fetches mark nothing — so the merged sets
  /// are pure functions of the simulation, identical at every N.
  void EnableDirtyTracking();
  bool dirty_tracking() const { return dirty_tracking_; }
  void AppendDirty(std::set<simweb::Url, simweb::UrlIdentityLess>* pages,
                   std::set<uint32_t>* sites,
                   std::set<uint32_t>* rngs) const;
  void ClearDirty();
  int64_t rebalance_count() const { return rebalance_count_; }
  /// Last solved Lagrange multiplier (0 before the first optimal
  /// rebalance); exposed for observability and tests.
  double multiplier() const { return multiplier_; }

  int num_shards() const { return static_cast<int>(page_shards_.size()); }
  std::size_t ShardOf(uint32_t site) const {
    return site % page_shards_.size();
  }

 private:
  struct PageState {
    /// Owned when page-level stats; with site-level stats the
    /// estimator lives in the site shard and this is null.
    std::unique_ptr<estimator::ChangeEstimator> estimator;
    double last_visit = 0.0;
    bool visited = false;
    double importance = 0.0;
    /// Whether the page's pending visit is a verification probe of an
    /// abandonment decision (see OnCrawled).
    bool probing_abandonment = false;
  };

  using PageMap =
      std::unordered_map<simweb::Url, PageState, simweb::UrlHash>;
  using SiteMap =
      std::unordered_map<uint32_t,
                         std::unique_ptr<estimator::ChangeEstimator>>;

  estimator::ChangeEstimator* EstimatorFor(const simweb::Url& url,
                                           PageState& state);
  const estimator::ChangeEstimator* EstimatorFor(
      const simweb::Url& url, const PageState& state) const;

  /// The probe stream owned by `site`, lazily seeded from
  /// (config_.seed, site); only the owning shard's worker touches it.
  Rng& ProbeRng(uint32_t site);

  /// Rate used for scheduling: the estimate when trustworthy, the
  /// prior while history is thin.
  double SchedulingRate(const estimator::ChangeEstimator* est) const;

  /// Maps a rate (and importance) to a visit frequency per the policy.
  double FrequencyFor(double rate, double importance) const;

  /// All (url, state) pairs in ascending URL identity order — the
  /// canonical walk Rebalance and the snapshot writer share, so their
  /// floating-point accumulations are shard-count independent.
  std::vector<std::pair<simweb::Url, const PageState*>> SortedPages()
      const;

  UpdateModuleConfig config_;
  std::vector<PageMap> page_shards_;
  std::vector<SiteMap> site_shards_;  // site-level aggregates
  std::vector<std::unordered_map<uint32_t, Rng>> rng_shards_;
  /// Per-shard evidence tallies (each shard's worker touches only its
  /// own slot, so the apply pass needs no synchronisation); summed on
  /// read. Diagnostics only — never checkpointed, never scheduled on.
  std::vector<uint64_t> visit_counts_;
  std::vector<uint64_t> failure_counts_;
  double multiplier_ = 0.0;        // kOptimal; 0 = not yet rebalanced
  double total_rate_ = 0.0;        // kProportional normaliser
  double mean_importance_ = 0.0;   // importance boost normaliser
  /// Page count snapshot behind FrequencyFor's fallbacks; advances only
  /// on the serial path (Rebalance / RefreshSchedulingPageCount).
  std::size_t frozen_page_count_ = 0;
  int64_t rebalance_count_ = 0;
  /// Incremental-checkpoint marking (see EnableDirtyTracking): URLs
  /// whose PageState changed, sites whose site-level estimator
  /// changed, sites whose probe RNG drew — each in the owning shard's
  /// slot.
  bool dirty_tracking_ = false;
  std::vector<std::set<simweb::Url, simweb::UrlIdentityLess>>
      dirty_page_shards_;
  std::vector<std::set<uint32_t>> dirty_site_shards_;
  std::vector<std::set<uint32_t>> dirty_rng_shards_;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_UPDATE_MODULE_H_
