#include "crawler/sharded_crawl_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <utility>

namespace webevo::crawler {

double SecondsSince(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

ShardedCrawlEngine::ShardedCrawlEngine(simweb::SimulatedWeb* web,
                                       const CrawlModuleConfig& config,
                                       int num_shards, int retained_views)
    : web_(web),
      pool_(web, config, num_shards),
      threads_(pool_.parallelism()),
      views_(retained_views) {}

bool ShardedCrawlEngine::PublishView(
    std::unique_ptr<const serving::BatchView> view) {
  if (in_batch_ || view == nullptr) return false;
  auto publish_begin = std::chrono::steady_clock::now();
  views_.Publish(std::move(view));
  ++stats_.views_published;
  stats_.publish_seconds.Add(SecondsSince(publish_begin));
  return true;
}

std::vector<StatusOr<simweb::FetchResult>> ShardedCrawlEngine::ExecuteBatch(
    const std::vector<PlannedFetch>& batch,
    std::vector<double>* retry_at, const StageHooks* hooks) {
  std::vector<StatusOr<simweb::FetchResult>> out;
  out.reserve(batch.size());
  if (retry_at != nullptr) retry_at->assign(batch.size(), 0.0);
  // Hooks fuse into fetch workers, so they need a batch to ride on;
  // callers run their stages inline when the plan came up empty.
  if (batch.empty()) return out;
  auto batch_begin = std::chrono::steady_clock::now();
  in_batch_ = true;

  const auto shards = static_cast<std::size_t>(num_shards());
  std::vector<std::vector<std::size_t>> by_shard(shards);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Plan-time shard stamps when the planner provided them (both
    // crawlers do); the modulo only for hand-built batches.
    const uint32_t s = batch[i].shard;
    by_shard[s < shards ? s : pool_.ShardOf(batch[i].url.site)]
        .push_back(i);
  }

  // Slot times may interleave across shards, so the web must accept
  // non-monotonic fetch times down to the batch's earliest slot.
  double floor = batch.front().at;
  for (const PlannedFetch& planned : batch) {
    floor = std::min(floor, planned.at);
  }

  // StatusOr has no empty state; stage outcomes in optionals that each
  // belong to exactly one shard's worker.
  std::vector<std::optional<StatusOr<simweb::FetchResult>>> staged(
      batch.size());

  web_->BeginConcurrentBatch(floor);
  std::vector<RunningStat> shard_latency(shards);
  std::vector<double> measure_overlap(shards, -1.0);
  std::vector<double> plan_overlap(shards, -1.0);
  auto run_shard = [this, &batch, &staged, retry_at, hooks,
                    &measure_overlap,
                    &plan_overlap](std::size_t shard,
                                   const std::vector<std::size_t>& indices,
                                   RunningStat& latency) {
    if (hooks != nullptr && hooks->before_fetch) {
      // Fused stage: batch B-1's deferred measure walks this shard's
      // sites *before* any of the shard's batch-B fetches, preserving
      // each page's observation order.
      auto hook_begin = std::chrono::steady_clock::now();
      hooks->before_fetch(shard);
      measure_overlap[shard] = SecondsSince(hook_begin);
    }
    for (std::size_t i : indices) {
      auto begin = std::chrono::steady_clock::now();
      staged[i].emplace(pool_.Crawl(batch[i].url, batch[i].at));
      if (retry_at != nullptr) {
        // Captured right after the attempt, inside the site's owning
        // shard: the same value at every shard count, because only
        // this shard's plan-ordered fetches touch the site's
        // politeness state.
        (*retry_at)[i] = pool_.NextAllowedTime(batch[i].url.site);
      }
      latency.Add(SecondsSince(begin));
    }
    if (hooks != nullptr && hooks->after_fetch) {
      // Fused stage: batch B+1's speculative frontier extraction, once
      // this shard is done fetching (the frontier is otherwise at rest
      // during the fetch stage).
      auto hook_begin = std::chrono::steady_clock::now();
      hooks->after_fetch(shard);
      plan_overlap[shard] = SecondsSince(hook_begin);
    }
  };
  // Shards with planned fetches, plus hook-only shards the pipeline
  // stages must visit (a shard with nothing to fetch can still owe a
  // measure walk or hold due frontier entries).
  std::vector<uint8_t> visit(shards, 0);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    if (!by_shard[shard].empty()) visit[shard] = 1;
  }
  if (hooks != nullptr) {
    for (std::size_t shard : hooks->shards) {
      if (shard < shards) visit[shard] = 1;
    }
  }
  std::vector<std::size_t> busy_shards;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    if (visit[shard]) busy_shards.push_back(shard);
  }
  if (busy_shards.size() <= 1) {
    // Single active shard (always true at parallelism 1): skip the
    // thread handoff and run inline — same code path, same results.
    for (std::size_t shard : busy_shards) {
      run_shard(shard, by_shard[shard], shard_latency[shard]);
    }
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(busy_shards.size());
    for (std::size_t shard : busy_shards) {
      tasks.push_back([&run_shard, shard, indices = &by_shard[shard],
                       latency = &shard_latency[shard]] {
        run_shard(shard, *indices, *latency);
      });
    }
    threads_.RunAndWait(std::move(tasks));
  }
  web_->EndConcurrentBatch();

  // Barrier-point accounting, merged in shard index order (not
  // completion order) so the numbers are reproducible.
  ++stats_.batches;
  stats_.fetches += batch.size();
  stats_.batch_fetches.Add(static_cast<double>(batch.size()));
  std::size_t busiest = 0;
  for (const auto& indices : by_shard) {
    busiest = std::max(busiest, indices.size());
  }
  stats_.busiest_shard_fetches.Add(static_cast<double>(busiest));
  for (const RunningStat& latency : shard_latency) {
    stats_.fetch_latency_seconds.Merge(latency);
  }
  stats_.fetch_seconds.Add(SecondsSince(batch_begin));
  if (hooks != nullptr) {
    ++stats_.pipelined_batches;
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (measure_overlap[shard] >= 0.0) {
        stats_.measure_overlap_seconds.Add(measure_overlap[shard]);
      }
      if (plan_overlap[shard] >= 0.0) {
        stats_.plan_overlap_seconds.Add(plan_overlap[shard]);
      }
    }
  }

  for (auto& staged_outcome : staged) {
    out.push_back(std::move(*staged_outcome));
  }
  in_batch_ = false;
  return out;
}

}  // namespace webevo::crawler
