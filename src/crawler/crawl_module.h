#ifndef WEBEVO_CRAWLER_CRAWL_MODULE_H_
#define WEBEVO_CRAWLER_CRAWL_MODULE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "simweb/page.h"
#include "simweb/simulated_web.h"
#include "simweb/url.h"
#include "util/status.h"

namespace webevo::crawler {

/// Politeness and accounting configuration for the CrawlModule.
struct CrawlModuleConfig {
  /// Minimum delay between two requests to the same site, in days.
  /// The paper's own study waited "at least 10 seconds between requests
  /// to a single site" (10 s ~ 1.16e-4 days). 0 disables enforcement —
  /// appropriate for policy simulations where per-site pacing is not
  /// under study.
  double per_site_delay_days = 0.0;

  /// If true, a fetch violating the per-site delay fails with
  /// FailedPrecondition instead of being served; the caller should
  /// reschedule. If false the delay is tracked but not enforced.
  bool enforce_politeness = false;
};

/// The `CrawlModule` of Figure 12: performs fetches against the
/// (simulated) web, tracks politeness per site, and accounts traffic —
/// including the peak-vs-average crawl speed the paper's Section 4
/// argues makes steady crawlers friendlier than batch crawlers.
///
/// Multiple CrawlModules over one web model the paper's note that
/// "multiple CrawlModule's may run in parallel".
class CrawlModule {
 public:
  CrawlModule(simweb::SimulatedWeb* web, const CrawlModuleConfig& config)
      : web_(web), config_(config) {}

  /// Fetches `url` at time `t`. Propagates the web's classified
  /// outcome: NotFound for dead pages, Unavailable for transient
  /// failures (errors, outages, overload, dead sites), DeadlineExceeded
  /// for timeouts; FailedPrecondition when politeness is enforced and
  /// violated. Timeout and slow-response latency widens the site's
  /// polite window (the connection was held for that long).
  StatusOr<simweb::FetchResult> Crawl(const simweb::Url& url, double t);

  /// Earliest time a request to `site` is polite.
  double NextAllowedTime(uint32_t site) const;

  /// Appends every site this module has accessed, with its last access
  /// time, to `out` — the behavioural politeness state a checkpoint
  /// must carry so a restarted crawler does not hammer a site it hit
  /// moments before the save.
  void ExportPoliteness(
      std::vector<std::pair<uint32_t, double>>* out) const;

  /// Drops all politeness state (checkpoint restore starts clean).
  void ClearPoliteness() { last_access_.clear(); }

  /// Restores one site's last access time.
  void RestorePoliteness(uint32_t site, double last_access);

  uint64_t fetch_count() const { return fetch_count_; }
  uint64_t failure_count() const { return failure_count_; }
  uint64_t politeness_rejections() const { return politeness_rejections_; }

  /// Peak fetches within any single day so far, and the all-time
  /// average rate — the load numbers Figure 10 contrasts.
  double PeakDailyRate() const;
  double AverageDailyRate() const;

  /// The raw traffic ledger, for the pool's canonical aggregate (see
  /// CrawlModulePool::AggregateTraffic). Buckets are *absolute*
  /// simulation days — bucket d counts fetches with floor(t) == d — so
  /// summing histograms across modules is a pure function of the fetch
  /// stream, independent of the site-to-module split.
  const std::vector<uint64_t>& fetches_per_day() const {
    return fetches_per_day_;
  }
  double first_fetch_time() const { return first_fetch_time_; }
  double last_fetch_time() const { return last_fetch_time_; }
  bool any_fetch() const { return any_fetch_; }

  /// Zeroes the traffic ledger (counters and histogram; politeness
  /// state is untouched). Used when a checkpoint restore replaces the
  /// pool's accounting with the carried-over aggregate baseline.
  void ResetTraffic();

 private:
  simweb::SimulatedWeb* web_;  // not owned
  CrawlModuleConfig config_;
  std::vector<double> last_access_;  // per site; grows on demand
  uint64_t fetch_count_ = 0;
  uint64_t failure_count_ = 0;
  uint64_t politeness_rejections_ = 0;
  // Histogram of fetch counts per absolute simulation day.
  std::vector<uint64_t> fetches_per_day_;
  double first_fetch_time_ = 0.0;
  double last_fetch_time_ = 0.0;
  bool any_fetch_ = false;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_CRAWL_MODULE_H_
