#ifndef WEBEVO_CRAWLER_SHARDED_CRAWL_ENGINE_H_
#define WEBEVO_CRAWLER_SHARDED_CRAWL_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "crawler/crawl_module.h"
#include "crawler/crawl_module_pool.h"
#include "serving/view_registry.h"
#include "simweb/simulated_web.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace webevo::crawler {

/// One crawl slot planned by a crawler: fetch `url` at simulation time
/// `at`. Crawlers accumulate a batch of slots (typically one
/// rebalance/sample interval's worth) and hand it to the engine.
///
/// `shard` is the owning engine shard (url.site % num_shards), stamped
/// once at plan time so the fetch/apply/noting passes reuse it instead
/// of recomputing the modulo per touch. Callers that do not plan
/// through a sharded frontier may leave it kUnassignedShard and the
/// engine computes it.
struct PlannedFetch {
  static constexpr uint32_t kUnassignedShard = ~0u;
  simweb::Url url;
  double at = 0.0;
  uint32_t shard = kUnassignedShard;
};

/// Wall-clock seconds elapsed since `begin` — the timing source for
/// the engine's phase accounting (Record*Seconds below).
double SecondsSince(std::chrono::steady_clock::time_point begin);

/// The sharded fetch engine behind the paper's "multiple CrawlModule's
/// may run in parallel" (Section 5.3): sites are partitioned across the
/// CrawlModulePool's modules, and each batch of planned fetches is
/// executed concurrently, one worker thread per shard, against the
/// SimulatedWeb's thread-safe fetch path.
///
/// Crawl loops follow a plan / fetch / apply cycle:
///   1. *plan* (parallel extract + serial merge): pop due URLs and
///      assign slot times;
///   2. *fetch* (parallel): ExecuteBatch performs the fetches, each
///      shard processing its own sites in plan order;
///   3. *apply* (parallel shard pass + serial barrier): each shard
///      applies its own outcomes to the state it owns (sharded
///      collection and update module) in plan order, then cross-shard
///      effects — inserts against the global capacity, evictions,
///      link admissions, frontier schedules — reduce serially at the
///      batch barrier in slot order.
///
/// Determinism: N = 1 and N = 8 shards produce bit-identical
/// simulations because (a) each site's fetches stay in plan order
/// inside the one shard that owns the site, (b) page evolution draws
/// from per-page RNG streams, so cross-site interleaving is
/// irrelevant, and (c) every mutation is either confined to the state
/// its shard owns (applied in the site's own plan order) or deferred
/// to the serial barrier and applied in canonical slot order. Per-
/// shard accounting is merged at the batch barrier in shard index
/// order, never in completion order.
class ShardedCrawlEngine {
 public:
  /// Creates `num_shards` crawl modules (>= 1; clamped) and as many
  /// worker threads. `retained_views` is the view registry's MVCC
  /// retention K (how many published BatchViews stay acquirable).
  ShardedCrawlEngine(simweb::SimulatedWeb* web,
                     const CrawlModuleConfig& config, int num_shards,
                     int retained_views =
                         serving::ViewRegistry::kDefaultRetention);

  /// Pipeline stage hooks fused into a batch's shard workers — how the
  /// staged (pipelined) crawl loop overlaps neighbouring batches with
  /// batch B's fetch stage on the same pool dispatch:
  ///
  ///   - `before_fetch(s)` runs in shard s's worker *before* any of its
  ///     fetches — the lane for batch B-1's deferred freshness measure
  ///     (a site's oracle walk at the sample time must precede that
  ///     same site's batch-B fetches, and both live in shard s).
  ///   - `after_fetch(s)` runs *after* the shard's fetches — the lane
  ///     for batch B+1's speculative frontier extraction (the frontier
  ///     is untouched by anything else during the fetch stage).
  ///
  /// `shards` lists every shard the hooks must visit; shards with no
  /// planned fetches still get a (hook-only) task. Hooks must follow
  /// the shard-ownership discipline: hook s touches only shard-s state.
  struct StageHooks {
    std::function<void(std::size_t)> before_fetch;
    std::function<void(std::size_t)> after_fetch;
    std::vector<std::size_t> shards;
  };

  /// Executes every planned fetch, in parallel across shards, and
  /// returns the outcomes in plan order: outcome i corresponds to
  /// batch[i]. Politeness rejections and dead pages surface as the
  /// usual CrawlModule error Statuses. Times within a batch may be
  /// non-monotonic across sites (shards interleave), but each single
  /// site's planned times must be non-decreasing — true for any
  /// batch planned by a forward-moving crawl clock.
  ///
  /// When `retry_at` is non-null it is resized to the batch and
  /// retry_at[i] receives the site's earliest polite fetch time *as of
  /// attempt i* — captured inside the owning shard immediately after
  /// the attempt, in plan order, so it is deterministic at every shard
  /// count. For politeness rejections this is the per-shard retry
  /// lane's reschedule time (earlier than the batch-end
  /// NextAllowedTime whenever later same-site fetches follow in the
  /// batch); for other outcomes it is merely the site's next polite
  /// time after the fetch.
  ///
  /// `hooks` (optional) fuses pipeline stages into the shard workers;
  /// see StageHooks. Hook wall-clock is recorded in the overlap ledger
  /// (measure_overlap_seconds / plan_overlap_seconds).
  std::vector<StatusOr<simweb::FetchResult>> ExecuteBatch(
      const std::vector<PlannedFetch>& batch,
      std::vector<double>* retry_at = nullptr,
      const StageHooks* hooks = nullptr);

  CrawlModulePool& pool() { return pool_; }
  const CrawlModulePool& pool() const { return pool_; }
  int num_shards() const { return pool_.parallelism(); }

  /// The engine's worker pool, idle between batches; crawlers borrow it
  /// for the shard-parallel plan and measure phases.
  ThreadPool& threads() { return threads_; }

  /// The serving layer's publication point: the ring of the K most
  /// recent immutable BatchViews, acquired/released lock-free by any
  /// number of reader threads while the engine crawls.
  serving::ViewRegistry& views() { return views_; }
  const serving::ViewRegistry& views() const { return views_; }

  /// Publishes `view` at the apply barrier — the MVCC publish hook.
  /// Must be called at a batch boundary (quiescent engine): a view
  /// built mid-batch would tear the per-shard state it summarises.
  /// Records the publish in the engine ledger; returns false (and
  /// drops nothing — the view is simply not published) when called
  /// mid-batch.
  bool PublishView(std::unique_ptr<const serving::BatchView> view);

  /// Barrier-merged engine accounting.
  struct Stats {
    uint64_t batches = 0;
    uint64_t fetches = 0;
    /// Classified fetch failures (transient errors + timeouts) the
    /// owning crawler's apply pass reported — a pure function of the
    /// simulation, identical at every shard count, so it belongs to
    /// the deterministic side of the ledger.
    uint64_t fetch_failures = 0;
    /// Fetches handled per batch, and by each batch's busiest shard —
    /// together they measure how well site-hashing balances the load
    /// (busiest == batch size means one shard did all the work).
    RunningStat batch_fetches;
    RunningStat busiest_shard_fetches;
    /// Wall-clock seconds per fetch, accumulated by each shard locally
    /// and merged at the batch barrier in shard index order. The
    /// *values* are wall-clock (not reproducible); the merge structure
    /// is, so shard count never reorders the accumulation.
    RunningStat fetch_latency_seconds;
    /// Wall-clock seconds per plan / fetch / apply / measure phase —
    /// the Amdahl ledger behind bench_sharded_scaling's per-phase
    /// breakdown. Fetch is recorded by ExecuteBatch; the other phases
    /// are reported by the owning crawler via RecordPlanSeconds and
    /// friends. Plan, fetch and apply each carry one sample per
    /// *non-empty* batch (matching `batches`), measure one per
    /// freshness sample. Values are wall-clock and not reproducible;
    /// the sample structure is.
    RunningStat plan_seconds;
    RunningStat fetch_seconds;
    RunningStat apply_seconds;
    RunningStat measure_seconds;
    /// The apply phase split open: per-shard wall-clock of the parallel
    /// pass (one sample per busy shard per batch, merged in shard index
    /// order) and the serial barrier reduction (one sample per batch).
    /// barrier / apply is the apply phase's remaining serial fraction.
    RunningStat apply_shard_seconds;
    RunningStat apply_barrier_seconds;
    /// In-batch politeness retry rounds per planned batch (one sample
    /// per primary batch, 0 when nothing was rejected) — the ledger
    /// entry that shows when hot-site skew is costing extra rounds.
    /// Unlike the wall-clock stats this one is deterministic.
    RunningStat retry_rounds;
    /// The capacity-lease ledger, one sample per applied batch.
    /// Budget (the frozen remaining capacity every shard's lease
    /// carries), settled admissions, and settle evictions are pure
    /// functions of the simulation — identical at every shard count,
    /// part of the bench fingerprint. Revocations count how often the
    /// optimistic leases *overdrew* and the settle had to claw back;
    /// that is a property of how the batch happened to split across
    /// shards (always 0 at N = 1), so like busiest_shard_fetches it is
    /// deliberately excluded from determinism fingerprints and
    /// checkpoints.
    RunningStat lease_admit_budget;
    RunningStat lease_admissions;
    RunningStat lease_revocations;
    RunningStat settle_evictions;
    /// Serving-layer ledger: views published through PublishView and
    /// the wall-clock cost of building + publishing each (the values
    /// are wall-clock and not reproducible; the count is a pure
    /// function of the publish cadence).
    uint64_t views_published = 0;
    RunningStat publish_seconds;
    /// Pipeline overlap ledger. The *_overlap_seconds stats record
    /// wall-clock spent inside fused stage hooks — work batch B's pool
    /// dispatch absorbed on behalf of the measure(B-1) and plan(B+1)
    /// stages (one sample per visited shard per hooked batch, merged
    /// in shard index order). speculative_plans counts plans served
    /// from a speculation; spec_lanes_reused / spec_lanes_invalidated
    /// count shard lanes consumed intact vs flushed by the apply
    /// barrier. Lane counts depend on the shard layout (always
    /// "1 lane" at N = 1), so like lease revocations they are excluded
    /// from determinism fingerprints.
    RunningStat measure_overlap_seconds;
    RunningStat plan_overlap_seconds;
    uint64_t pipelined_batches = 0;
    uint64_t speculative_plans = 0;
    RunningStat spec_lanes_reused;
    RunningStat spec_lanes_invalidated;
  };
  const Stats& stats() const { return stats_; }

  void RecordPlanSeconds(double s) { stats_.plan_seconds.Add(s); }
  void RecordApplySeconds(double s) { stats_.apply_seconds.Add(s); }
  void RecordMeasureSeconds(double s) { stats_.measure_seconds.Add(s); }
  void RecordApplyShardSeconds(double s) {
    stats_.apply_shard_seconds.Add(s);
  }
  void RecordApplyBarrierSeconds(double s) {
    stats_.apply_barrier_seconds.Add(s);
  }
  void RecordRetryRounds(double rounds) { stats_.retry_rounds.Add(rounds); }
  /// Classified fetch failures applied this batch (crawler-reported).
  void RecordFetchFailures(uint64_t n) { stats_.fetch_failures += n; }
  /// One capacity-lease settle per applied batch.
  void RecordLeaseSettle(double budget, double admissions,
                         double revocations, double evictions) {
    stats_.lease_admit_budget.Add(budget);
    stats_.lease_admissions.Add(admissions);
    stats_.lease_revocations.Add(revocations);
    stats_.settle_evictions.Add(evictions);
  }
  /// One reconciled (speculation-served) plan.
  void RecordSpeculativePlan(double lanes_reused,
                             double lanes_invalidated) {
    ++stats_.speculative_plans;
    stats_.spec_lanes_reused.Add(lanes_reused);
    stats_.spec_lanes_invalidated.Add(lanes_invalidated);
  }

  /// Pipeline stage tracker: the owning crawler arms this while any
  /// cross-batch stage is in flight (a speculative frontier extraction
  /// or a deferred measure not yet settled) and disarms it once the
  /// pipeline is drained back to a plain batch boundary.
  void SetPipelineArmed(bool armed) { pipeline_armed_ = armed; }
  bool pipeline_armed() const { return pipeline_armed_; }

  /// Quiesce-at-barrier hook for checkpointing: true whenever no batch
  /// is executing *and* the pipeline is drained — the crawler sits at
  /// a batch boundary, every shard-owned structure is at rest, and no
  /// speculative stage holds state outside the checkpointable
  /// structures. SaveCrawler refuses to snapshot a non-quiescent
  /// engine — a checkpoint taken mid-batch or mid-pipeline would tear
  /// the state it bundles.
  bool quiescent() const { return !in_batch_ && !pipeline_armed_; }

 private:
  simweb::SimulatedWeb* web_;  // not owned
  CrawlModulePool pool_;
  ThreadPool threads_;
  serving::ViewRegistry views_;
  Stats stats_;
  bool in_batch_ = false;
  bool pipeline_armed_ = false;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_SHARDED_CRAWL_ENGINE_H_
