#ifndef WEBEVO_CRAWLER_COLL_URLS_H_
#define WEBEVO_CRAWLER_COLL_URLS_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "simweb/url.h"
#include "util/status.h"

namespace webevo::crawler {

/// A URL scheduled for crawling at (or after) a given time.
struct ScheduledUrl {
  simweb::Url url;
  double when = 0.0;
};

/// The `CollUrls` priority queue of Figure 12: URLs that are (or will
/// be) in the collection, ordered so "the URLs to be crawled early are
/// placed in the front". The UpdateModule pops the head, crawls it, and
/// pushes it back with a position derived from the page's estimated
/// change frequency; the RankingModule inserts replacement pages at the
/// very front so they are crawled immediately.
///
/// Implemented as a binary min-heap on the scheduled time with lazy
/// deletion: rescheduling or removing a URL invalidates its previous
/// heap entry via a sequence number, so all operations are O(log n)
/// amortised — the property that lets the UpdateModule sustain the
/// paper's "40 pages/second" style throughput independent of collection
/// size.
///
/// The sequence number doubles as the FIFO tie-break among equal
/// scheduled times. ShardedFrontier splits one logical queue across
/// per-shard CollUrls instances by assigning sequence numbers from a
/// single global counter via ScheduleAt, which is what makes its k-way
/// merge over shard heads reproduce this class's pop order exactly.
class CollUrls {
 public:
  /// One live queue position: the scheduled time plus the sequence
  /// number that tie-breaks equal times (smaller pops first) and tokens
  /// lazy deletion.
  struct Entry {
    double when = 0.0;
    uint64_t seq = 0;
    simweb::Url url;
  };

  /// Base key for front-of-queue inserts; far below any realistic
  /// simulation time, so front entries always precede scheduled ones.
  static constexpr double kFrontBase = -1e18;

  /// Inserts `url` or moves it to position `when` if already present.
  void Schedule(const simweb::Url& url, double when) {
    ScheduleAt(url, when, next_seq_++);
  }

  /// Schedules in front of everything currently queued (the
  /// RankingModule's "crawl this new page immediately").
  void ScheduleFront(const simweb::Url& url);

  /// Schedule with an externally assigned sequence number — the
  /// ShardedFrontier's primitive for keeping one global FIFO order
  /// across shard-local heaps, and for restoring entries extracted but
  /// not consumed by a planning pass. Callers must never mix external
  /// sequence numbers with this instance's own counter.
  void ScheduleAt(const simweb::Url& url, double when, uint64_t seq);

  /// Removes a URL from the queue; NotFound if absent.
  Status Remove(const simweb::Url& url);

  /// Removes the URL only if its live entry still carries `seq` — the
  /// lease-settlement revocation guard: an admission whose entry was
  /// since superseded by a reschedule must leave the newer entry
  /// standing. NotFound when absent or superseded.
  Status RemoveIfSeq(const simweb::Url& url, uint64_t seq);

  /// Pushes every live entry of `site` scheduled before `floor` out to
  /// `floor`, keeping each entry's sequence number (so lease tokens and
  /// FIFO order among the site's entries survive) — the quarantine
  /// primitive: a tripped circuit breaker reschedules a site's frontier
  /// entries rather than dropping them. Returns how many moved. The
  /// result is independent of internal iteration order: each moved
  /// entry's new key (floor, seq) is a pure function of its old state.
  std::size_t RescheduleSiteNotBefore(uint32_t site, double floor);

  /// Pops the earliest-scheduled URL; nullopt if empty.
  std::optional<ScheduledUrl> Pop();

  /// Earliest entry without removing it; nullopt if empty.
  std::optional<ScheduledUrl> Peek();

  /// Pop/Peek variants exposing the tie-break sequence number, for the
  /// ShardedFrontier's deterministic k-way merge.
  std::optional<Entry> PopEntry();
  std::optional<Entry> PeekEntry();

  bool Contains(const simweb::Url& url) const {
    return live_.count(url) > 0;
  }

  /// The live (when, seq) entry of `url`, without disturbing the heap;
  /// nullopt if absent. Incremental checkpoints record frontier
  /// positions through this.
  std::optional<Entry> LookupEntry(const simweb::Url& url) const {
    auto it = live_.find(url);
    if (it == live_.end()) return std::nullopt;
    return Entry{it->second.when, it->second.seq, url};
  }

  /// Inserts every live URL of `site` into `out` — the quarantine walk
  /// of the incremental checkpoint's dirty marking (a site-wide
  /// reschedule touches entries no per-effect record names).
  void AppendSiteUrls(uint32_t site,
                      std::set<simweb::Url, simweb::UrlIdentityLess>* out)
      const {
    for (const auto& [url, ref] : live_) {
      if (url.site == site) out->insert(url);
    }
  }

  /// Number of live (non-superseded) entries.
  std::size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  /// Discards superseded heap heads.
  void SkipStale();

  /// The (seq, when) key of a url's single live heap entry. Staleness
  /// is tokened on *both* fields: RescheduleSiteNotBefore moves an
  /// entry to a later time while keeping its seq, so seq alone would
  /// leave the superseded earlier-time heap entry looking live.
  struct LiveRef {
    uint64_t seq = 0;
    double when = 0.0;
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<simweb::Url, LiveRef, simweb::UrlHash> live_;
  uint64_t next_seq_ = 0;
  double front_when_ = 0.0;  // increasing offset above kFrontBase
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_COLL_URLS_H_
