#include "crawler/incremental_crawler.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crawler/snapshot.h"

namespace webevo::crawler {

IncrementalCrawler::IncrementalCrawler(
    simweb::SimulatedWeb* web, const IncrementalCrawlerConfig& config)
    : web_(web),
      config_(config),
      collection_(config.collection_capacity, config.crawl_parallelism),
      all_urls_(config.crawl_parallelism),
      coll_urls_(config.crawl_parallelism),
      engine_(web, config.crawl, config.crawl_parallelism),
      update_module_([&] {
        UpdateModuleConfig u = config.update;
        u.crawl_budget_pages_per_day = config.crawl_rate_pages_per_day;
        // The module's state shards must match the engine's ownership
        // mapping: the apply shard pass calls OnCrawled/Forget
        // concurrently, one worker per engine shard.
        u.num_shards = config.crawl_parallelism;
        return u;
      }()),
      ranking_module_(config.ranking) {}

Status IncrementalCrawler::Bootstrap(double t) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("already bootstrapped");
  }
  if (config_.crawl_rate_pages_per_day <= 0.0) {
    return Status::InvalidArgument("crawl rate must be positive");
  }
  now_ = t;
  next_refine_ = t + config_.refine_interval_days;
  next_rebalance_ = t + config_.rebalance_interval_days;
  next_sample_ = t;
  for (uint32_t s = 0; s < web_->num_sites(); ++s) {
    simweb::Url root = web_->RootUrl(s);
    all_urls_.Add(root, t);
    coll_urls_.Schedule(root, t);
  }
  bootstrapped_ = true;
  return Status::Ok();
}

void IncrementalCrawler::IngestLinks(
    const std::vector<simweb::Url>& links, double at) {
  for (const simweb::Url& link : links) {
    // Discovery notes (AllUrls first_seen / in-link counts) were
    // already applied by the barrier's parallel noting pass; what
    // remains is the greedy fill: while the collection is below
    // capacity, admit discoveries directly instead of waiting for a
    // refinement pass. pending_admissions_ tracks admitted-but-
    // uncrawled URLs exactly, so admissions never overshoot capacity.
    if (collection_.Contains(link) || coll_urls_.Contains(link)) continue;
    const AllUrls::UrlInfo* info = all_urls_.Find(link);
    if (info != nullptr && info->dead) continue;
    if (collection_.size() + pending_admissions_.size() <
        collection_.capacity()) {
      coll_urls_.Schedule(link, at);
      pending_admissions_.insert(link);
    }
  }
}

void IncrementalCrawler::RunRefinement() {
  RefinementResult refinement =
      ranking_module_.Refine(all_urls_, collection_);
  for (const simweb::Url& url : refinement.admissions) {
    // The RankingModule only knows collection occupancy; respect the
    // in-flight admissions too so the collection never over-admits.
    if (collection_.size() + pending_admissions_.size() >=
        collection_.capacity()) {
      break;
    }
    if (!coll_urls_.Contains(url)) {
      coll_urls_.ScheduleFront(url);
      pending_admissions_.insert(url);
    }
  }
  for (const Replacement& r : refinement.replacements) {
    Status st = collection_.Remove(r.discard);
    if (st.ok()) {
      Status unqueue = coll_urls_.Remove(r.discard);
      (void)unqueue;  // may already be popped
      update_module_.Forget(r.discard);
      coll_urls_.ScheduleFront(r.crawl);
      ++stats_.replacements_executed;
    }
  }
  // Refresh the importance hints the UpdateModule may weigh.
  collection_.ForEach([&](const CollectionEntry& entry) {
    update_module_.SetImportance(entry.url, entry.importance);
  });
}

void IncrementalCrawler::EvictLowestImportance() {
  // Refinement normally frees space before a new page is crawled;
  // under races (e.g. a victim died first) evict the least important
  // entry, per Algorithm 5.1 steps [7]-[8].
  const CollectionEntry* victim = collection_.LowestImportance();
  if (victim == nullptr) return;
  simweb::Url victim_url = victim->url;
  Status unqueue = coll_urls_.Remove(victim_url);
  (void)unqueue;
  update_module_.Forget(victim_url);
  Status removed = collection_.Remove(victim_url);
  (void)removed;
  ++stats_.pages_evicted;
}

void IncrementalCrawler::InsertFetchedPage(const ApplyEffect& e) {
  if (collection_.size() >= collection_.capacity()) {
    EvictLowestImportance();
  }
  CollectionEntry entry;
  entry.url = e.url;
  entry.page = e.page;
  entry.version = e.version;
  entry.checksum = e.checksum;
  entry.crawled_at = e.at;
  entry.links = e.links;
  if (collection_.Upsert(std::move(entry)).ok()) {
    ++stats_.pages_added;
    const AllUrls::UrlInfo* info = all_urls_.Find(e.url);
    if (reached_capacity_once_ && info != nullptr &&
        info->first_seen >= steady_since_) {
      stats_.new_page_latency_days.Add(e.at - info->first_seen);
    }
    if (!reached_capacity_once_ && collection_.full()) {
      reached_capacity_once_ = true;
      steady_since_ = e.at;
    }
  }
}

void IncrementalCrawler::ApplyBatch(
    const std::vector<PlannedFetch>& plan,
    std::vector<StatusOr<simweb::FetchResult>>& outcomes,
    const std::vector<double>& retry_at, double batch_end,
    std::vector<PendingRetry>& retries) {
  if (plan.empty()) return;
  auto apply_begin = std::chrono::steady_clock::now();

  // ---- Phase 1: shard-local pass, parallel. Each worker walks its
  // own shard's outcomes in slot order and mutates only the state its
  // sites own: in-place collection updates, dead-page purges, the
  // UpdateModule's visit records (global budget quantities are frozen
  // between barriers). Every cross-shard effect — including settling
  // the slot's pending admission, which must stay adjacent to the
  // slot's own re-admission for exact capacity accounting — is queued
  // for the barrier.
  const auto shards = static_cast<std::size_t>(collection_.num_shards());
  std::vector<std::vector<std::size_t>> by_shard(shards);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    by_shard[collection_.ShardOf(plan[i].url.site)].push_back(i);
  }
  std::vector<ShardApplyResult> deltas(shards);
  auto shard_pass = [&](std::size_t s) {
    auto begin = std::chrono::steady_clock::now();
    ShardApplyResult& out = deltas[s];
    out.effects.reserve(by_shard[s].size());
    for (std::size_t i : by_shard[s]) {
      const simweb::Url& url = plan[i].url;
      const double at = plan[i].at;
      ++out.crawls;
      ApplyEffect effect;
      effect.slot = i;
      effect.url = url;
      effect.at = at;
      StatusOr<simweb::FetchResult>& result = outcomes[i];
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kFailedPrecondition) {
          // Politeness rejection: the page is fine, the site just
          // needs a breather. The per-shard retry lane captured the
          // earliest polite time at the attempt itself; the barrier
          // decides whether that window reopens inside this batch.
          ++out.politeness_retries;
          effect.kind = ApplyEffect::Kind::kRetry;
          effect.when = retry_at[i];
        } else {
          // Dead page (Section 5.1 goal 2: pages are constantly
          // removed; the collection must track that). The shard purges
          // the state it owns right here; the AllUrls tombstone is
          // shared read state and waits for the barrier.
          if (collection_.shard(s).Remove(url).ok()) {
            update_module_.Forget(url);
            ++out.dead_pages_removed;
          }
          effect.kind = ApplyEffect::Kind::kDead;
        }
        out.effects.push_back(std::move(effect));
        continue;
      }

      CollectionEntry* existing = collection_.shard(s).FindMutable(url);
      bool changed = false;
      const bool first_visit = existing == nullptr;
      if (existing != nullptr) {
        changed = !(existing->checksum == result->checksum);
        if (changed) ++out.changes_detected;
        existing->version = result->version;
        existing->checksum = result->checksum;
        existing->crawled_at = at;
        existing->links = result->links;
        ++out.in_place_updates;
        effect.kind = ApplyEffect::Kind::kReschedule;
      } else {
        // New page: the insert is gated on the global capacity, so it
        // belongs to the barrier; the visit record does not.
        effect.kind = ApplyEffect::Kind::kInsert;
      }
      effect.page = result->page;
      effect.version = result->version;
      effect.checksum = result->checksum;
      effect.when = update_module_.OnCrawled(
          url, at, changed, first_visit,
          /*quiet_days=*/at - result->last_modified);
      effect.links = std::move(result->links);
      out.effects.push_back(std::move(effect));
    }
    out.seconds = SecondsSince(begin);
  };
  std::vector<std::size_t> busy;
  for (std::size_t s = 0; s < shards; ++s) {
    if (!by_shard[s].empty()) busy.push_back(s);
  }
  engine_.threads().RunForIndices(busy, shard_pass);

  // Reassemble the global slot order — each slot yields exactly one
  // effect, so this is a simple scatter — and bucket the discovered
  // links by the *target* site's AllUrls shard, still in (slot,
  // position) order within each bucket.
  std::vector<ApplyEffect*> ordered(plan.size(), nullptr);
  for (ShardApplyResult& delta : deltas) {
    for (ApplyEffect& e : delta.effects) ordered[e.slot] = &e;
  }
  struct LinkNote {
    const simweb::Url* url;
    double at;
  };
  std::vector<std::vector<LinkNote>> notes(
      static_cast<std::size_t>(all_urls_.num_shards()));
  for (ApplyEffect* e : ordered) {
    for (const simweb::Url& link : e->links) {
      notes[all_urls_.ShardOf(link.site)].push_back(
          LinkNote{&link, e->at});
    }
  }

  // ---- Phase 2a: parallel link noting. Each AllUrls shard owner
  // walks only its own bucket — the same first_seen / in-link state
  // the serial walk produced, because per-URL outcomes depend only on
  // the (slot, position) order of that URL's own mentions, which the
  // buckets preserve.
  std::vector<std::size_t> note_targets;
  for (std::size_t t = 0; t < notes.size(); ++t) {
    if (!notes[t].empty()) note_targets.push_back(t);
  }
  engine_.threads().RunForIndices(note_targets, [&](std::size_t target) {
    for (const LinkNote& note : notes[target]) {
      all_urls_.NoteInLink(*note.url, note.at);
    }
  });

  // ---- Phase 2b: serial barrier reduction, in slot order — exactly
  // the cross-shard reads/writes the serial apply used to interleave:
  // frontier scheduling (global sequence numbers), capacity-gated
  // inserts and evictions, greedy-fill admissions, dead tombstones.
  // The shard pass removed dead pages behind the wrapper's back, so
  // re-sync the cached global size first.
  auto barrier_begin = std::chrono::steady_clock::now();
  collection_.ReconcileSize();
  for (ApplyEffect* pe : ordered) {
    ApplyEffect& e = *pe;
    now_ = e.at;
    // Settle this slot's in-flight admission exactly where the serial
    // apply did — at its own slot, before any re-admission below.
    pending_admissions_.erase(e.url);
    switch (e.kind) {
      case ApplyEffect::Kind::kRetry: {
        if (!collection_.Contains(e.url)) {
          pending_admissions_.insert(e.url);
        }
        const double polite = engine_.pool().NextAllowedTime(e.url.site);
        if (polite < batch_end) {
          // The polite window reopens inside this batch: retire the
          // retry now (RunUntil's retry rounds) instead of deferring a
          // whole batch.
          retries.push_back(PendingRetry{e.url});
        } else {
          coll_urls_.Schedule(e.url, e.when);
        }
        break;
      }
      case ApplyEffect::Kind::kDead: {
        Status mark = all_urls_.MarkDead(e.url);
        (void)mark;
        break;
      }
      case ApplyEffect::Kind::kReschedule: {
        if (!collection_.Contains(e.url)) {
          // The in-place update was evicted by an earlier slot's
          // insert within this same barrier: re-insert the fresh copy
          // (the serial walk's "victim died first" re-insert) rather
          // than discarding the fetch.
          InsertFetchedPage(e);
        }
        coll_urls_.Schedule(e.url, e.when);
        IngestLinks(e.links, e.at);
        break;
      }
      case ApplyEffect::Kind::kInsert: {
        InsertFetchedPage(e);
        coll_urls_.Schedule(e.url, e.when);
        IngestLinks(e.links, e.at);
        break;
      }
    }
  }
  const double barrier_seconds = SecondsSince(barrier_begin);

  // Counter deltas merge in shard index order; shard wall-clocks are
  // merged the same way (values are wall-clock, the structure is not).
  for (const ShardApplyResult& delta : deltas) {
    stats_.crawls += delta.crawls;
    stats_.in_place_updates += delta.in_place_updates;
    stats_.changes_detected += delta.changes_detected;
    stats_.politeness_retries += delta.politeness_retries;
    stats_.dead_pages_removed += delta.dead_pages_removed;
  }
  for (std::size_t s : busy) {
    engine_.RecordApplyShardSeconds(deltas[s].seconds);
  }
  engine_.RecordApplyBarrierSeconds(barrier_seconds);
  engine_.RecordApplySeconds(SecondsSince(apply_begin));
}

Status IncrementalCrawler::RunUntil(double until) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("call Bootstrap first");
  }
  const double step = 1.0 / config_.crawl_rate_pages_per_day;
  while (now_ < until) {
    // Housekeeping due at the current time. All next_* end up > now_.
    if (now_ >= next_sample_) {
      tracker_.AddSample(now_, MeasureNow().freshness);
      while (next_sample_ <= now_) {
        next_sample_ += config_.freshness_sample_interval_days;
      }
    }
    if (now_ >= next_refine_) {
      RunRefinement();
      while (next_refine_ <= now_) {
        next_refine_ += config_.refine_interval_days;
      }
    }
    if (now_ >= next_rebalance_) {
      update_module_.Rebalance();
      while (next_rebalance_ <= now_) {
        next_rebalance_ += config_.rebalance_interval_days;
      }
    }

    // Re-freeze the budget-spreading page count at the serial plan
    // step, *after* housekeeping: refinement and rebalance may just
    // have forgotten or admitted pages, and the upcoming batch's
    // scheduling fallbacks should see that truth instead of a count
    // captured at the previous batch's barrier. The plan step is
    // serial, so the freeze stays a pure function of history at every
    // shard count.
    update_module_.RefreshSchedulingPageCount();

    // Plan one engine batch of crawl slots, bounded by the next
    // housekeeping event so refinement/rebalance/sampling always see a
    // fully applied collection. The frontier extracts candidates
    // shard-parallel on the engine's worker pool and merges them
    // deterministically into slot order.
    const double horizon =
        std::min({next_sample_, next_refine_, next_rebalance_, until});
    auto plan_begin = std::chrono::steady_clock::now();
    ShardedFrontier::SlotPlan slot_plan =
        coll_urls_.PlanSlots(now_, horizon, step, &engine_.threads());
    std::vector<PlannedFetch> plan;
    plan.reserve(slot_plan.slots.size());
    for (const ScheduledUrl& slot : slot_plan.slots) {
      plan.push_back(PlannedFetch{slot.url, slot.when});
    }
    // Only batches the engine also counts, so per-batch phase ratios
    // divide like for like (idle planning passes are ~free anyway).
    if (!plan.empty()) engine_.RecordPlanSeconds(SecondsSince(plan_begin));

    std::vector<double> retry_at;
    std::vector<StatusOr<simweb::FetchResult>> outcomes =
        engine_.ExecuteBatch(plan, &retry_at);

    std::vector<PendingRetry> retries;
    ApplyBatch(plan, outcomes, retry_at, slot_plan.end_time, retries);

    // In-batch retry rounds: rejected fetches whose polite window
    // reopens before the batch window closes are refetched now,
    // reusing their wasted slots, instead of waiting a whole batch.
    // A site may receive several polite slots per round, spaced one
    // polite delay apart — a batch dominated by one hot site retires
    // in a single round instead of spinning one-URL rounds. Retries
    // the spacing pushes past the window hand their URL to the next
    // batch at the spaced polite time; every planned retry advances
    // its site's polite clock, so the loop terminates.
    uint64_t retry_rounds = 0;
    const double delay = config_.crawl.per_site_delay_days;
    while (!retries.empty()) {
      auto round_begin = std::chrono::steady_clock::now();
      std::vector<PlannedFetch> round;
      std::unordered_map<uint32_t, uint64_t> admitted;
      for (PendingRetry& r : retries) {
        const double polite = engine_.pool().NextAllowedTime(r.url.site);
        // Intra-round spacing: the site's k-th retry this round runs k
        // polite delays after its first — exactly the cadence the
        // engine's per-site plan-order fetches keep polite.
        uint64_t& k = admitted[r.url.site];
        const double at = polite + static_cast<double>(k) * delay;
        if (at >= slot_plan.end_time) {
          // The spaced slot lands past the window: hand the URL to the
          // next batch at that (estimated) earliest polite time.
          coll_urls_.Schedule(r.url, at);
          continue;
        }
        ++k;
        round.push_back(PlannedFetch{r.url, at});
      }
      if (round.empty()) break;
      ++retry_rounds;
      // Each retry round is a (small) engine batch of its own; record
      // a plan sample for it so the per-phase sample counts stay one
      // per engine batch.
      engine_.RecordPlanSeconds(SecondsSince(round_begin));
      stats_.in_batch_retries += round.size();
      std::vector<double> round_retry_at;
      std::vector<StatusOr<simweb::FetchResult>> round_outcomes =
          engine_.ExecuteBatch(round, &round_retry_at);
      std::vector<PendingRetry> rejected;
      ApplyBatch(round, round_outcomes, round_retry_at,
                 slot_plan.end_time, rejected);
      retries = std::move(rejected);
    }
    // Advance the crawl clock to the batch boundary *before* any
    // checkpoint: a checkpoint must capture the post-batch clock, or a
    // resumed run would re-plan the next batch from a mid-batch slot
    // time the uninterrupted run never used.
    now_ = slot_plan.end_time;
    if (!plan.empty()) {
      // One ledger sample per planned batch: how many retry rounds it
      // took to retire the batch's politeness rejections.
      engine_.RecordRetryRounds(static_cast<double>(retry_rounds));
      ++batches_completed_;
      if (config_.checkpoint_every_batches > 0 &&
          batches_completed_ % config_.checkpoint_every_batches == 0) {
        // Auto-checkpoint at the batch boundary (the engine is
        // quiesced here by construction).
        CrawlerCheckpointOptions options;
        options.include_web = config_.checkpoint_include_web;
        Status saved =
            SaveCrawlerToFile(*this, config_.checkpoint_path, options);
        if (!saved.ok()) return saved;
      }
    }
  }
  return Status::Ok();
}

CollectionQuality IncrementalCrawler::MeasureNow() {
  auto measure_begin = std::chrono::steady_clock::now();
  CollectionQuality q = MeasureCollectionSharded(
      *web_, collection_, now_, engine_.threads(), engine_.num_shards());
  engine_.RecordMeasureSeconds(SecondsSince(measure_begin));
  return q;
}

}  // namespace webevo::crawler
