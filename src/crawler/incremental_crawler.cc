#include "crawler/incremental_crawler.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace webevo::crawler {

IncrementalCrawler::IncrementalCrawler(
    simweb::SimulatedWeb* web, const IncrementalCrawlerConfig& config)
    : web_(web),
      config_(config),
      collection_(config.collection_capacity),
      coll_urls_(config.crawl_parallelism),
      engine_(web, config.crawl, config.crawl_parallelism),
      update_module_([&] {
        UpdateModuleConfig u = config.update;
        u.crawl_budget_pages_per_day = config.crawl_rate_pages_per_day;
        return u;
      }()),
      ranking_module_(config.ranking) {}

Status IncrementalCrawler::Bootstrap(double t) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("already bootstrapped");
  }
  if (config_.crawl_rate_pages_per_day <= 0.0) {
    return Status::InvalidArgument("crawl rate must be positive");
  }
  now_ = t;
  next_refine_ = t + config_.refine_interval_days;
  next_rebalance_ = t + config_.rebalance_interval_days;
  next_sample_ = t;
  for (uint32_t s = 0; s < web_->num_sites(); ++s) {
    simweb::Url root = web_->RootUrl(s);
    all_urls_.Add(root, t);
    coll_urls_.Schedule(root, t);
  }
  bootstrapped_ = true;
  return Status::Ok();
}

void IncrementalCrawler::IngestLinks(
    const std::vector<simweb::Url>& links) {
  for (const simweb::Url& link : links) {
    all_urls_.NoteInLink(link, now_);
    // Greedy fill: while the collection is below capacity, admit
    // discoveries directly instead of waiting for a refinement pass.
    // pending_admissions_ tracks admitted-but-uncrawled URLs exactly,
    // so admissions never overshoot capacity.
    if (collection_.Contains(link) || coll_urls_.Contains(link)) continue;
    const AllUrls::UrlInfo* info = all_urls_.Find(link);
    if (info != nullptr && info->dead) continue;
    if (collection_.size() + pending_admissions_.size() <
        collection_.capacity()) {
      coll_urls_.Schedule(link, now_);
      pending_admissions_.insert(link);
    }
  }
}

void IncrementalCrawler::RunRefinement() {
  RefinementResult refinement =
      ranking_module_.Refine(all_urls_, collection_);
  for (const simweb::Url& url : refinement.admissions) {
    // The RankingModule only knows collection occupancy; respect the
    // in-flight admissions too so the collection never over-admits.
    if (collection_.size() + pending_admissions_.size() >=
        collection_.capacity()) {
      break;
    }
    if (!coll_urls_.Contains(url)) {
      coll_urls_.ScheduleFront(url);
      pending_admissions_.insert(url);
    }
  }
  for (const Replacement& r : refinement.replacements) {
    Status st = collection_.Remove(r.discard);
    if (st.ok()) {
      Status unqueue = coll_urls_.Remove(r.discard);
      (void)unqueue;  // may already be popped
      update_module_.Forget(r.discard);
      coll_urls_.ScheduleFront(r.crawl);
      ++stats_.replacements_executed;
    }
  }
  // Refresh the importance hints the UpdateModule may weigh.
  collection_.ForEach([&](const CollectionEntry& entry) {
    update_module_.SetImportance(entry.url, entry.importance);
  });
}

void IncrementalCrawler::ApplyOutcome(const simweb::Url& url,
                                      StatusOr<simweb::FetchResult> result,
                                      double retry_at) {
  ++stats_.crawls;
  pending_admissions_.erase(url);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kFailedPrecondition) {
      // Politeness rejection: the page is fine, the site just needs a
      // breather. The per-shard retry lane captured the earliest
      // polite time at the attempt itself, so the retry is not pushed
      // out by later same-site fetches in the same batch (which the
      // old batch-end NextAllowedTime reschedule did).
      ++stats_.politeness_retries;
      coll_urls_.Schedule(url, retry_at);
      if (!collection_.Contains(url)) pending_admissions_.insert(url);
      return;
    }
    // Dead page: purge it everywhere (Section 5.1 goal 2: pages are
    // constantly removed; the collection must track that).
    Status mark = all_urls_.MarkDead(url);
    (void)mark;
    if (collection_.Remove(url).ok()) {
      update_module_.Forget(url);
      ++stats_.dead_pages_removed;
    }
    return;
  }

  CollectionEntry* existing = collection_.FindMutable(url);
  bool changed = false;
  bool first_visit = existing == nullptr;
  if (existing != nullptr) {
    changed = !(existing->checksum == result->checksum);
    if (changed) ++stats_.changes_detected;
    existing->version = result->version;
    existing->checksum = result->checksum;
    existing->crawled_at = now_;
    existing->links = result->links;
    ++stats_.in_place_updates;
  } else {
    if (collection_.full()) {
      // Refinement normally frees space before a new page is crawled;
      // under races (e.g. a victim died first) evict the least
      // important entry, per Algorithm 5.1 steps [7]-[8].
      const CollectionEntry* victim = collection_.LowestImportance();
      if (victim != nullptr) {
        simweb::Url victim_url = victim->url;
        Status unqueue = coll_urls_.Remove(victim_url);
        (void)unqueue;
        update_module_.Forget(victim_url);
        Status removed = collection_.Remove(victim_url);
        (void)removed;
        ++stats_.pages_evicted;
      }
    }
    CollectionEntry entry;
    entry.url = url;
    entry.page = result->page;
    entry.version = result->version;
    entry.checksum = result->checksum;
    entry.crawled_at = now_;
    entry.links = result->links;
    Status st = collection_.Upsert(std::move(entry));
    if (st.ok()) {
      ++stats_.pages_added;
      const AllUrls::UrlInfo* info = all_urls_.Find(url);
      if (reached_capacity_once_ && info != nullptr &&
          info->first_seen >= steady_since_) {
        stats_.new_page_latency_days.Add(now_ - info->first_seen);
      }
      if (!reached_capacity_once_ && collection_.full()) {
        reached_capacity_once_ = true;
        steady_since_ = now_;
      }
    }
  }

  double next = update_module_.OnCrawled(
      url, now_, changed, first_visit,
      /*quiet_days=*/now_ - result->last_modified);
  coll_urls_.Schedule(url, next);
  IngestLinks(result->links);
}

Status IncrementalCrawler::RunUntil(double until) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("call Bootstrap first");
  }
  const double step = 1.0 / config_.crawl_rate_pages_per_day;
  while (now_ < until) {
    // Housekeeping due at the current time. All next_* end up > now_.
    if (now_ >= next_sample_) {
      tracker_.AddSample(now_, MeasureNow().freshness);
      while (next_sample_ <= now_) {
        next_sample_ += config_.freshness_sample_interval_days;
      }
    }
    if (now_ >= next_refine_) {
      RunRefinement();
      while (next_refine_ <= now_) {
        next_refine_ += config_.refine_interval_days;
      }
    }
    if (now_ >= next_rebalance_) {
      update_module_.Rebalance();
      while (next_rebalance_ <= now_) {
        next_rebalance_ += config_.rebalance_interval_days;
      }
    }

    // Plan one engine batch of crawl slots, bounded by the next
    // housekeeping event so refinement/rebalance/sampling always see a
    // fully applied collection. The frontier extracts candidates
    // shard-parallel on the engine's worker pool and merges them
    // deterministically into slot order.
    const double horizon =
        std::min({next_sample_, next_refine_, next_rebalance_, until});
    auto plan_begin = std::chrono::steady_clock::now();
    ShardedFrontier::SlotPlan slot_plan =
        coll_urls_.PlanSlots(now_, horizon, step, &engine_.threads());
    std::vector<PlannedFetch> plan;
    plan.reserve(slot_plan.slots.size());
    for (const ScheduledUrl& slot : slot_plan.slots) {
      plan.push_back(PlannedFetch{slot.url, slot.when});
    }
    // Only batches the engine also counts, so per-batch phase ratios
    // divide like for like (idle planning passes are ~free anyway).
    if (!plan.empty()) engine_.RecordPlanSeconds(SecondsSince(plan_begin));

    std::vector<double> retry_at;
    std::vector<StatusOr<simweb::FetchResult>> outcomes =
        engine_.ExecuteBatch(plan, &retry_at);

    auto apply_begin = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < plan.size(); ++i) {
      now_ = plan[i].at;
      ApplyOutcome(plan[i].url, std::move(outcomes[i]), retry_at[i]);
    }
    if (!plan.empty()) engine_.RecordApplySeconds(SecondsSince(apply_begin));
    now_ = slot_plan.end_time;
  }
  return Status::Ok();
}

CollectionQuality IncrementalCrawler::MeasureNow() {
  auto measure_begin = std::chrono::steady_clock::now();
  CollectionQuality q = MeasureCollectionSharded(
      *web_, collection_, now_, engine_.threads(), engine_.num_shards());
  engine_.RecordMeasureSeconds(SecondsSince(measure_begin));
  return q;
}

}  // namespace webevo::crawler
